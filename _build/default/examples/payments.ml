(* A monetary exchange on the ResilientDB fabric — the paper's motivating
   class of application (stock trading, monetary exchanges, §4.2), with
   client-batched multi-operation transactions.

   Each transaction transfers funds between accounts; replicas reject
   overdrafts deterministically, a backup replica crashes mid-stream, and
   the books still balance identically on every live replica.

   Run with:  dune exec examples/payments.exe *)

module Rt = Rdb_core.Local_runtime
module Mem_store = Rdb_storage.Mem_store
module Rng = Rdb_des.Rng

let balance store account =
  match Mem_store.get store account with Some v -> int_of_string v | None -> 0

let set_balance store account v = Mem_store.put store account (string_of_int v)

(* payload: "TRANSFER from to amount[;TRANSFER ...]" — a client burst of
   operations under one signature, as in §4.2. *)
let apply ~replica:_ store ~client:_ ~payload =
  let results =
    List.map
      (fun op ->
        match String.split_on_char ' ' (String.trim op) with
        | [ "OPEN"; account; amount ] ->
          set_balance store account (int_of_string amount);
          "opened"
        | [ "TRANSFER"; src; dst; amount ] ->
          let amount = int_of_string amount in
          let from_bal = balance store src in
          if amount <= 0 then "rejected:bad-amount"
          else if from_bal < amount then "rejected:insufficient"
          else begin
            set_balance store src (from_bal - amount);
            set_balance store dst (balance store dst + amount);
            "transferred"
          end
        | _ -> "rejected:parse")
      (String.split_on_char ';' payload)
  in
  String.concat ";" results

let () =
  let rt = Rt.create ~config:{ Rt.default_config with Rt.batch_size = 5 } ~apply () in
  let rng = Rng.create 2024L in
  let accounts = [| "treasury"; "alice"; "bob"; "carol"; "dave"; "erin" |] in

  (* Seed the bank. *)
  ignore (Rt.submit rt ~client:1 ~payload:"OPEN treasury 1000000");
  Array.iter
    (fun a -> if a <> "treasury" then ignore (Rt.submit rt ~client:1 ~payload:(Printf.sprintf "OPEN %s 1000" a)))
    accounts;
  Rt.flush rt;
  Rt.run rt;

  let total_supply =
    Array.fold_left (fun acc a -> acc + balance (Rt.store rt 0) a) 0 accounts
  in
  Printf.printf "initial supply: %d\n" total_supply;

  (* A stream of randomized transfer bursts from many clients; replica 3
     crashes partway through (PBFT tolerates f = 1 of 4). *)
  for round = 1 to 40 do
    if round = 20 then begin
      print_endline "!! replica 3 crashes";
      Rt.crash rt 3
    end;
    let client = 100 + Rng.int rng 8 in
    let burst =
      List.init 3 (fun _ ->
          let src = accounts.(Rng.int rng (Array.length accounts)) in
          let dst = accounts.(Rng.int rng (Array.length accounts)) in
          Printf.sprintf "TRANSFER %s %s %d" src dst (1 + Rng.int rng 500))
    in
    ignore (Rt.submit rt ~client ~payload:(String.concat ";" burst))
  done;
  Rt.flush rt;
  Rt.run rt;

  Printf.printf "completed bursts: %d\n" (List.length (Rt.completed rt));

  (* Conservation of money, on every live replica. *)
  List.iter
    (fun r ->
      let total = Array.fold_left (fun acc a -> acc + balance (Rt.store rt r) a) 0 accounts in
      Printf.printf "replica %d: total supply %d, last executed seq %d\n" r total
        (Rt.last_executed rt r);
      assert (total = total_supply))
    [ 0; 1; 2 ];

  Array.iter
    (fun a -> Printf.printf "  %-10s %8d\n" a (balance (Rt.store rt 0) a))
    accounts;

  (match Rt.verify rt with
  | Ok () -> print_endline "audit: live replicas agree despite the crash; ledgers verify"
  | Error e -> failwith e);
  print_endline "payments: OK"

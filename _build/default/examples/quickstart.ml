(* Quickstart: a 4-replica PBFT cluster in one process.

   Shows the embeddable runtime end to end: signed client requests, real
   SHA-256 batch digests, CMAC-authenticated protocol messages, per-replica
   execution against an in-memory store, and a commit-certificate-linked
   blockchain on every replica.

   Run with:  dune exec examples/quickstart.exe *)

module Rt = Rdb_core.Local_runtime
module Mem_store = Rdb_storage.Mem_store
module Ledger = Rdb_chain.Ledger
module Block = Rdb_chain.Block

(* The application: a tiny key-value store.  [payload] is "SET key value";
   the result echoes what was written.  It must be deterministic — every
   replica executes it independently. *)
let apply ~replica:_ store ~client:_ ~payload =
  match String.split_on_char ' ' payload with
  | [ "SET"; key; value ] ->
    Mem_store.put store key value;
    "OK " ^ key
  | [ "GET"; key ] -> (
    match Mem_store.get store key with Some v -> v | None -> "(nil)")
  | _ -> "ERR unknown command"

let () =
  let rt = Rt.create ~apply () in

  (* Three clients submit commands; the primary batches them (batch = 10 by
     default, so we flush the partial batch at the end). *)
  let t1 = Rt.submit rt ~client:100 ~payload:"SET alice 30" in
  let t2 = Rt.submit rt ~client:101 ~payload:"SET bob 12" in
  let t3 = Rt.submit rt ~client:102 ~payload:"GET alice" in
  Rt.flush rt;
  Rt.run rt;

  Printf.printf "view: %d (primary = replica %d)\n" (Rt.view rt) (Rt.primary rt);
  Printf.printf "completed requests (client got f+1 matching replies):\n";
  List.iter (fun (txn, result) -> Printf.printf "  txn %d -> result digest %s\n" txn result) (Rt.completed rt);
  assert (List.mem_assoc t1 (Rt.completed rt));
  assert (List.mem_assoc t2 (Rt.completed rt));
  assert (List.mem_assoc t3 (Rt.completed rt));

  (* Every replica holds the same state... *)
  Array.iter
    (fun r ->
      Printf.printf "replica %d: alice=%s bob=%s executed_up_to=%d\n" r
        (Option.value ~default:"?" (Mem_store.get (Rt.store rt r) "alice"))
        (Option.value ~default:"?" (Mem_store.get (Rt.store rt r) "bob"))
        (Rt.last_executed rt r))
    [| 0; 1; 2; 3 |];

  (* ...and the same blockchain. *)
  Printf.printf "ledger at replica 0:\n";
  Ledger.iter_retained (Rt.ledger rt 0) (fun b -> Format.printf "  %a@." Block.pp b);
  (match Rt.verify rt with
  | Ok () -> print_endline "audit: all replicas agree; ledgers verify"
  | Error e -> failwith e);

  (* Forged traffic is rejected by the MAC layer. *)
  Rt.inject_forged_message rt ~dst:1;
  Rt.run rt;
  Printf.printf "forged messages rejected: %d\n" (Rt.auth_failures rt);
  assert (Rt.auth_failures rt = 1);
  print_endline "quickstart: OK"

examples/payments.mli:

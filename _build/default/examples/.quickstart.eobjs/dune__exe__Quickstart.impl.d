examples/quickstart.ml: Array Format List Option Printf Rdb_chain Rdb_core Rdb_storage String

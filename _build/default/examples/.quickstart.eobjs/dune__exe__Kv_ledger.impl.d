examples/kv_ledger.ml: Filename Format List Printf Rdb_chain Rdb_core Rdb_des Rdb_storage Rdb_workload String Sys

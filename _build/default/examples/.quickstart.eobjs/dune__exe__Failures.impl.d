examples/failures.ml: List Printf Rdb_core Rdb_des Rdb_storage

examples/light_client.ml: List Printf Rdb_chain Rdb_core Rdb_storage

examples/payments.ml: Array List Printf Rdb_core Rdb_des Rdb_storage String

examples/failures.mli:

examples/kv_ledger.mli:

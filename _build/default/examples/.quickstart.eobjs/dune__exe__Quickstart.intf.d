examples/quickstart.mli:

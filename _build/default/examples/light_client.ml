(* A light client: verify that your transaction is in the blockchain without
   downloading the blocks.

   The full nodes run a ResilientDB cluster and build a Merkle tree over each
   batch; a light client keeps only the block headers (seq, Merkle root,
   commit certificate) and checks logarithmic inclusion proofs — the
   standard SPV pattern, here on top of the embeddable runtime.

   Run with:  dune exec examples/light_client.exe *)

module Rt = Rdb_core.Local_runtime
module Mem_store = Rdb_storage.Mem_store
module Merkle = Rdb_chain.Merkle
module Ledger = Rdb_chain.Ledger
module Block = Rdb_chain.Block

let apply ~replica:_ store ~client:_ ~payload =
  Mem_store.put store payload "recorded";
  "ok"

(* The full node keeps, per block, the payloads it committed (so it can serve
   proofs); the light client keeps only roots. *)
let () =
  let batch = 8 in
  let rt = Rt.create ~config:{ Rt.default_config with Rt.batch_size = batch } ~apply () in
  let submitted = ref [] in
  for i = 0 to 23 do
    let payload = Printf.sprintf "shipment-%04d" i in
    ignore (Rt.submit rt ~client:(700 + (i mod 5)) ~payload);
    submitted := payload :: !submitted
  done;
  Rt.run rt;
  let submitted = List.rev !submitted in

  (* Full node side: rebuild each block's Merkle tree from the committed
     payload stream (batches are contiguous slices in commit order). *)
  let trees =
    List.init 3 (fun b -> Merkle.build (List.filteri (fun i _ -> i / batch = b) submitted))
  in
  (* The light client state: per block, just (seq, merkle root). *)
  let headers = List.mapi (fun i tree -> (i + 1, Merkle.root tree)) trees in
  Printf.printf "light client holds %d headers of 32 bytes each\n" (List.length headers);

  (* The client asks the full node to prove shipment-0013 (block 2, index 5). *)
  let target = "shipment-0013" in
  let block_idx = 13 / batch and leaf_idx = 13 mod batch in
  let tree = List.nth trees block_idx in
  let proof = Merkle.prove tree leaf_idx in
  let _, root = List.nth headers block_idx in
  Printf.printf "proof for %S: %d sibling hashes (batch of %d)\n" target
    (Merkle.proof_length proof) batch;
  assert (Merkle.verify ~root ~leaf:target ~index:leaf_idx proof);
  Printf.printf "inclusion proof verifies against header %d\n" (block_idx + 1);

  (* A forged proof or a tampered payload fails. *)
  assert (not (Merkle.verify ~root ~leaf:"shipment-9999" ~index:leaf_idx proof));
  assert (not (Merkle.verify ~root ~leaf:target ~index:(leaf_idx + 1) proof));
  print_endline "forgeries rejected";

  (* And the headers themselves are anchored in the replicated chain: every
     replica committed exactly these batches. *)
  (match Rt.verify rt with
  | Ok () -> print_endline "replicas agree; certificate-linked chain verifies"
  | Error e -> failwith e);
  Ledger.iter_retained (Rt.ledger rt 0) (fun b ->
      if b.Block.seq > 0 then
        Printf.printf "  block %d: %d txns, certificate-linked\n" b.Block.seq b.Block.txn_count);
  print_endline "light_client: OK"

(* resdb_node: one ResilientDB replica as a real networked process.

   Runs the pure PBFT core over TCP with the binary wire codec, CMAC
   authenticators on consensus messages, digital-signature verification on
   client requests, a key-value execution layer and a certificate-linked
   ledger.  A 4-node cluster on one machine:

     resdb_sim_build=_build/default/bin
     for i in 0 1 2 3; do
       $resdb_sim_build/resdb_node.exe --id $i \
         --peers 127.0.0.1:5000,127.0.0.1:5001,127.0.0.1:5002,127.0.0.1:5003 \
         --batch 10 --duration 30 &
     done
     $resdb_sim_build/resdb_client.exe \
       --peers 127.0.0.1:5000,127.0.0.1:5001,127.0.0.1:5002,127.0.0.1:5003 \
       --count 2000

   Demo key provisioning: all parties derive the client keypair and the
   replica group MAC secret from fixed seeds, standing in for the offline
   key ceremony of a permissioned deployment. *)

open Cmdliner
module Pbft = Rdb_consensus.Pbft_replica
module Action = Rdb_consensus.Action
module Msg = Rdb_consensus.Message
module Config = Rdb_consensus.Config
module Tcp = Rdb_net.Tcp_transport
module Wire = Rdb_core.Wire
module Signer = Rdb_crypto.Signer
module Cmac = Rdb_crypto.Cmac
module Sha256 = Rdb_crypto.Sha256
module Mem_store = Rdb_storage.Mem_store
module Ledger = Rdb_chain.Ledger
module Block = Rdb_chain.Block

let group_mac = Cmac.of_secret "resdb-demo-mac!!"

let client_verifier () =
  Signer.verifier (Signer.create (Rdb_des.Rng.create 4242L) Signer.Ed25519)

type pending_req = { p_client : int; p_payload : string; p_host : string; p_port : int }

let parse_peers s =
  String.split_on_char ',' s
  |> List.mapi (fun i hp ->
         match String.split_on_char ':' hp with
         | [ host; port ] -> (i, (host, int_of_string port))
         | _ -> failwith ("bad peer: " ^ hp))

let apply_kv store payload =
  match String.split_on_char ' ' payload with
  | [ "SET"; k; v ] ->
    Mem_store.put store k v;
    "OK"
  | [ "GET"; k ] -> Option.value ~default:"(nil)" (Mem_store.get store k)
  | [ "DEL"; k ] ->
    Mem_store.delete store k;
    "OK"
  | _ -> "ERR"

let run id peers_s batch_size duration verbose =
  let peers = parse_peers peers_s in
  let n = List.length peers in
  let _, (_, my_port) = List.nth peers id in
  let cfg = Config.make ~n () in
  let core = Pbft.create cfg ~id in
  let store = Mem_store.create () in
  let ledger = Ledger.create ~primary_id:0 in
  let verifier = client_verifier () in
  let lock = Mutex.create () in
  let pending : int Queue.t = Queue.create () in
  let requests : (int, pending_req) Hashtbl.t = Hashtbl.create 256 in
  let executed_txns = ref 0 in
  let transport = ref None in
  let tp () = Option.get !transport in
  (* Client ids are mapped into the transport directory above the replica
     id space. *)
  let client_peer_id c = n + c in
  let send_consensus ?(attachments = []) ~to_ msg =
    let tag = Cmac.mac group_mac (Msg.auth_string msg) in
    ignore (Tcp.send (tp ()) ~to_ (Wire.encode (Wire.Consensus { msg; tag; attachments })))
  in
  (* Pre-prepares ship the request bodies and client reply addresses the
     batch references: the protocol core itself is payload-agnostic. *)
  let attachments_for msg =
    match msg with
    | Msg.Pre_prepare { batch; _ } ->
      List.filter_map
        (fun (r : Msg.request_ref) ->
          match Hashtbl.find_opt requests r.Msg.txn_id with
          | Some req ->
            Some
              {
                Wire.a_txn_id = r.Msg.txn_id;
                a_client = req.p_client;
                a_reply_host = req.p_host;
                a_reply_port = req.p_port;
                a_payload = req.p_payload;
              }
          | None -> None)
        batch.Msg.reqs
    | _ -> []
  in
  let broadcast_consensus msg =
    let attachments = attachments_for msg in
    List.iter (fun (pid, _) -> if pid <> id then send_consensus ~attachments ~to_:pid msg) peers
  in
  let rec dispatch actions =
    List.iter
      (fun a ->
        match a with
        | Action.Broadcast m -> broadcast_consensus m
        | Action.Send (dst, m) -> send_consensus ~to_:dst m
        | Action.Send_client (client, m) -> (
          match m with
          | Msg.Reply { txn_id; from; result; _ } ->
            ignore
              (Tcp.send (tp ()) ~to_:(client_peer_id client)
                 (Wire.encode (Wire.Reply { txn_id; from; result })))
          | _ -> ())
        | Action.Execute batch ->
          let results =
            List.map
              (fun (r : Msg.request_ref) ->
                incr executed_txns;
                match Hashtbl.find_opt requests r.Msg.txn_id with
                | Some req -> apply_kv store req.p_payload
                | None -> "missing")
              batch.Msg.reqs
          in
          let cert = List.init (Config.commit_quorum cfg) (fun i -> (i, "share")) in
          if Ledger.next_seq ledger = batch.Msg.seq then
            Ledger.append ledger
              {
                Block.seq = batch.Msg.seq;
                view = batch.Msg.view;
                digest = batch.Msg.digest;
                txn_count = List.length batch.Msg.reqs;
                link = Block.Certificate cert;
              };
          let result = Sha256.hex (String.sub (Sha256.digest (String.concat "|" results)) 0 8) in
          dispatch
            (Pbft.handle_executed core ~seq:batch.Msg.seq ~state_digest:(Mem_store.digest store)
               ~result)
        | Action.Stable_checkpoint seq -> ignore (Ledger.prune_below ledger seq))
      actions
  in
  let try_batch ~force =
    if Pbft.is_primary core then begin
      let form k =
        let txns = List.init k (fun _ -> Queue.pop pending) in
        let payloads = List.map (fun t -> (Hashtbl.find requests t).p_payload) txns in
        let digest = Sha256.digest (String.concat "\x00" payloads) in
        let reqs =
          List.map (fun txn_id -> { Msg.client = (Hashtbl.find requests txn_id).p_client; txn_id }) txns
        in
        let wire = List.fold_left (fun a p -> a + String.length p) 0 payloads in
        let _, actions = Pbft.propose core ~reqs ~digest ~wire_bytes:wire in
        dispatch actions
      in
      while Queue.length pending >= batch_size do
        form batch_size
      done;
      if force && not (Queue.is_empty pending) then form (Queue.length pending)
    end
  in
  let on_message ~payload =
    match Wire.decode payload with
    | Error e -> if verbose then Printf.eprintf "[node %d] bad frame: %s\n%!" id e
    | Ok (Wire.Request { client; reply_host; reply_port; txn_id; payload; signature }) ->
      if Wire.verify_request verifier ~client ~txn_id ~payload ~signature then begin
        Mutex.lock lock;
        Tcp.add_peer (tp ()) (client_peer_id client) (reply_host, reply_port);
        if not (Hashtbl.mem requests txn_id) then begin
          Hashtbl.replace requests txn_id
            { p_client = client; p_payload = payload; p_host = reply_host; p_port = reply_port };
          Queue.push txn_id pending
        end;
        try_batch ~force:false;
        Mutex.unlock lock
      end
      else if verbose then Printf.eprintf "[node %d] bad request signature\n%!" id
    | Ok (Wire.Consensus { msg; tag; attachments }) ->
      if Cmac.verify group_mac (Msg.auth_string msg) ~tag then begin
        Mutex.lock lock;
        List.iter
          (fun (a : Wire.attachment) ->
            Tcp.add_peer (tp ()) (client_peer_id a.Wire.a_client) (a.Wire.a_reply_host, a.Wire.a_reply_port);
            if not (Hashtbl.mem requests a.Wire.a_txn_id) then
              Hashtbl.replace requests a.Wire.a_txn_id
                {
                  p_client = a.Wire.a_client;
                  p_payload = a.Wire.a_payload;
                  p_host = a.Wire.a_reply_host;
                  p_port = a.Wire.a_reply_port;
                })
          attachments;
        dispatch (Pbft.handle_message core msg);
        Mutex.unlock lock
      end
      else if verbose then Printf.eprintf "[node %d] bad MAC\n%!" id
    | Ok (Wire.Reply _) -> ()
  in
  let t = Tcp.create ~port:my_port ~on_message () in
  transport := Some t;
  Tcp.set_peers t peers;
  Printf.printf "[node %d] listening on port %d (%s), n=%d f=%d batch=%d\n%!" id my_port
    (if Pbft.is_primary core then "PRIMARY" else "backup")
    n ((n - 1) / 3) batch_size;
  (* Flush partial batches and report progress. *)
  let start = Unix.gettimeofday () in
  let last_report = ref start in
  let last_count = ref 0 in
  let running = ref true in
  while !running do
    Thread.delay 0.005;
    Mutex.lock lock;
    try_batch ~force:true;
    Mutex.unlock lock;
    let now = Unix.gettimeofday () in
    if now -. !last_report >= 2.0 then begin
      Mutex.lock lock;
      let ex = !executed_txns in
      let seq = Pbft.last_executed core in
      Mutex.unlock lock;
      Printf.printf "[node %d] executed %d txns (%.0f/s), seq %d, chain %d blocks\n%!" id ex
        (float_of_int (ex - !last_count) /. (now -. !last_report))
        seq (Ledger.length ledger);
      last_count := ex;
      last_report := now
    end;
    if duration > 0.0 && now -. start > duration then running := false
  done;
  Printf.printf "[node %d] shutting down: %d txns executed, state digest %s\n%!" id !executed_txns
    (String.sub (Sha256.hex (Mem_store.digest store)) 0 16);
  Tcp.shutdown t;
  0

let cmd =
  let open Arg in
  let id = required & opt (some int) None & info [ "id" ] ~doc:"This replica's id (0-based)." in
  let peers =
    required
    & opt (some string) None
    & info [ "peers" ] ~doc:"Comma-separated host:port list; position = replica id."
  in
  let batch = value & opt int 10 & info [ "batch" ] ~doc:"Transactions per batch." in
  let duration =
    value & opt float 0.0 & info [ "duration" ] ~doc:"Exit after this many seconds (0 = run forever)."
  in
  let verbose = value & flag & info [ "v"; "verbose" ] ~doc:"Log rejected traffic." in
  Cmd.v
    (Cmd.info "resdb_node" ~doc:"Run one ResilientDB PBFT replica over real TCP")
    Term.(const run $ id $ peers $ batch $ duration $ verbose)

let () = exit (Cmd.eval' cmd)

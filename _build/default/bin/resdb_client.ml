(* resdb_client: a closed-loop client for a networked resdb_node cluster.

   Signs each request (demo keys, see resdb_node.ml), sends it to the
   primary, listens for replies on its own socket, accepts a result once
   f+1 distinct replicas returned matching answers, and reports throughput
   and latency percentiles at the end. *)

open Cmdliner
module Tcp = Rdb_net.Tcp_transport
module Wire = Rdb_core.Wire
module Signer = Rdb_crypto.Signer
module Stats = Rdb_des.Stats

let parse_peers s =
  String.split_on_char ',' s
  |> List.mapi (fun i hp ->
         match String.split_on_char ':' hp with
         | [ host; port ] -> (i, (host, int_of_string port))
         | _ -> failwith ("bad peer: " ^ hp))

type track = {
  mutable results : (string * int) list;  (** result -> distinct reply count *)
  mutable senders : int list;
  mutable done_ : bool;
  sent_at : float;
}

let run peers_s client_id count window =
  let peers = parse_peers peers_s in
  let n = List.length peers in
  let f = (n - 1) / 3 in
  let quorum = f + 1 in
  let signer = Signer.create (Rdb_des.Rng.create 4242L) Signer.Ed25519 in
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let inflight : (int, track) Hashtbl.t = Hashtbl.create 64 in
  let completed = ref 0 in
  let latencies = Stats.create () in
  let on_message ~payload =
    match Wire.decode payload with
    | Ok (Wire.Reply { txn_id; from; result }) ->
      Mutex.lock lock;
      (match Hashtbl.find_opt inflight txn_id with
      | Some t when (not t.done_) && not (List.mem from t.senders) ->
        t.senders <- from :: t.senders;
        let c = try List.assoc result t.results + 1 with Not_found -> 1 in
        t.results <- (result, c) :: List.remove_assoc result t.results;
        if c >= quorum then begin
          t.done_ <- true;
          Hashtbl.remove inflight txn_id;
          incr completed;
          Stats.add latencies (Unix.gettimeofday () -. t.sent_at);
          Condition.signal cond
        end
      | _ -> ());
      Mutex.unlock lock
    | Ok _ | Error _ -> ()
  in
  let transport = Tcp.create ~on_message () in
  let my_port = Tcp.port transport in
  Tcp.set_peers transport peers;
  Printf.printf "[client %d] replies on port %d; %d requests, window %d, quorum %d of %d\n%!"
    client_id my_port count window quorum n;
  let primary = 0 in
  let start = Unix.gettimeofday () in
  for txn_id = 0 to count - 1 do
    let payload = Printf.sprintf "SET key%d v%d" (txn_id mod 1000) txn_id in
    let signature = Wire.sign_request signer ~client:client_id ~txn_id ~payload in
    Mutex.lock lock;
    (* Closed-loop window: wait until fewer than [window] outstanding. *)
    while Hashtbl.length inflight >= window do
      Condition.wait cond lock
    done;
    Hashtbl.replace inflight txn_id
      { results = []; senders = []; done_ = false; sent_at = Unix.gettimeofday () };
    Mutex.unlock lock;
    ignore
      (Tcp.send transport ~to_:primary
         (Wire.encode
            (Wire.Request
               { client = client_id; reply_host = "127.0.0.1"; reply_port = my_port; txn_id; payload; signature })))
  done;
  (* Drain. *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  Mutex.lock lock;
  while Hashtbl.length inflight > 0 && Unix.gettimeofday () < deadline do
    Mutex.unlock lock;
    Thread.delay 0.02;
    Mutex.lock lock
  done;
  let leftover = Hashtbl.length inflight in
  Mutex.unlock lock;
  let elapsed = Unix.gettimeofday () -. start in
  Printf.printf "[client %d] %d/%d completed in %.2fs = %.0f txn/s\n%!" client_id !completed count
    elapsed
    (float_of_int !completed /. elapsed);
  if Stats.count latencies > 0 then
    Printf.printf "[client %d] latency avg %.4fs p50 %.4fs p99 %.4fs\n%!" client_id
      (Stats.mean latencies)
      (Stats.percentile latencies 50.0)
      (Stats.percentile latencies 99.0);
  if leftover > 0 then Printf.printf "[client %d] WARNING: %d requests unanswered\n%!" client_id leftover;
  Tcp.shutdown transport;
  if leftover > 0 then 1 else 0

let cmd =
  let open Arg in
  let peers =
    required
    & opt (some string) None
    & info [ "peers" ] ~doc:"Comma-separated replica host:port list (position = id)."
  in
  let client_id = value & opt int 1 & info [ "client-id" ] ~doc:"This client's id." in
  let count = value & opt int 1000 & info [ "count" ] ~doc:"Requests to send." in
  let window = value & opt int 64 & info [ "window" ] ~doc:"Max outstanding requests." in
  Cmd.v
    (Cmd.info "resdb_client" ~doc:"Drive a networked resdb_node cluster")
    Term.(const run $ peers $ client_id $ count $ window)

let () = exit (Cmd.eval' cmd)

(** Object pool, as in the paper's §4.8 "Buffer Pool Management".

    ResilientDB preallocates message and transaction objects at startup and
    recycles them instead of calling malloc/free per message.  This module is
    the same idea as a reusable component: a typed pool with a factory, a
    reset hook, bounded capacity, and hit/miss statistics (the statistics
    feed the cost accounting in the simulator's allocation model). *)

type 'a t

val create : ?capacity:int -> make:(unit -> 'a) -> reset:('a -> unit) -> unit -> 'a t
(** [capacity] bounds how many idle objects are retained (default 4096).
    Nothing is preallocated until {!preallocate} or the first {!release}. *)

val preallocate : 'a t -> int -> unit
(** Fills the pool with up to [n] fresh objects (capped at capacity). *)

val acquire : 'a t -> 'a
(** Pops an idle object (a pool hit) or manufactures one (a miss). *)

val release : 'a t -> 'a -> unit
(** Resets the object and returns it to the pool; drops it when the pool is
    at capacity. *)

val idle : 'a t -> int

val hits : 'a t -> int

val misses : 'a t -> int

val hit_rate : 'a t -> float
(** hits / (hits + misses); 0 when unused. *)

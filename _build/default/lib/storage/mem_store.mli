(** The in-memory key-value store used by the execution layer.

    This is the paper's default storage mode ("records are written and
    accessed in an in-memory key-value data-structure", §5.7).  Snapshots
    support checkpointing: a snapshot is an O(n) copy taken when a
    checkpoint is cut, cheap at the paper's checkpoint interval (every 10K
    transactions). *)

type t

val create : ?initial_capacity:int -> unit -> t

val put : t -> string -> string -> unit

val get : t -> string -> string option

val delete : t -> string -> unit

val mem : t -> string -> bool

val size : t -> int

val iter : t -> (string -> string -> unit) -> unit

val snapshot : t -> t
(** Independent copy; later writes to either side are not shared. *)

val digest : t -> string
(** Order-independent SHA-256 digest of the full state; two replicas with
    equal state produce equal digests (used by checkpoint agreement). *)

type 'a t = {
  make : unit -> 'a;
  reset : 'a -> unit;
  capacity : int;
  idle : 'a Stack.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 4096) ~make ~reset () =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { make; reset; capacity; idle = Stack.create (); hits = 0; misses = 0 }

let preallocate t n =
  let room = t.capacity - Stack.length t.idle in
  for _ = 1 to min n room do
    Stack.push (t.make ()) t.idle
  done

let acquire t =
  if Stack.is_empty t.idle then begin
    t.misses <- t.misses + 1;
    t.make ()
  end
  else begin
    t.hits <- t.hits + 1;
    Stack.pop t.idle
  end

let release t x =
  if Stack.length t.idle < t.capacity then begin
    t.reset x;
    Stack.push x t.idle
  end

let idle t = Stack.length t.idle

let hits t = t.hits

let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

lib/storage/mem_store.ml: Bytes Char Hashtbl Rdb_crypto String

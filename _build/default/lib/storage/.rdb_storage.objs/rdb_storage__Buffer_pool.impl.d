lib/storage/buffer_pool.ml: Stack

lib/storage/btree.mli:

lib/storage/mem_store.mli:

lib/storage/wal.mli:

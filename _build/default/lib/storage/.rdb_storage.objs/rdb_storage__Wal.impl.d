lib/storage/wal.ml: Char Rdb_crypto Stdlib String Sys

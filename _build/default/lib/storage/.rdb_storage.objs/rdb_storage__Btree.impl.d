lib/storage/btree.ml: Array Bytes Char Format Hashtbl List Rdb_crypto String Unix

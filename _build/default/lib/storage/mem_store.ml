type t = (string, string) Hashtbl.t

let create ?(initial_capacity = 1024) () = Hashtbl.create initial_capacity

let put t k v = Hashtbl.replace t k v

let get t k = Hashtbl.find_opt t k

let delete t k = Hashtbl.remove t k

let mem t k = Hashtbl.mem t k

let size t = Hashtbl.length t

let iter t f = Hashtbl.iter f t

let snapshot t = Hashtbl.copy t

(* XOR of per-entry digests is order-independent and collision-resistant
   enough for state comparison between trusted-code replicas. *)
let digest t =
  let acc = Bytes.make 32 '\x00' in
  Hashtbl.iter
    (fun k v ->
      let h = Rdb_crypto.Sha256.digest (string_of_int (String.length k) ^ ":" ^ k ^ v) in
      for i = 0 to 31 do
        Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code h.[i]))
      done)
    t;
  Rdb_crypto.Sha256.digest (Bytes.unsafe_to_string acc)

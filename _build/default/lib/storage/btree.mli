(** A file-backed, paged B-tree key-value store — the repository's stand-in
    for SQLite in the paper's in-memory vs off-memory experiment (Fig. 14).

    Real pages, real page I/O, real splits: 4 KiB checksummed pages, an
    in-memory page cache with bounded size, variable-length keys and values
    (combined at most {!max_entry_size} bytes per entry).  Deletes do not
    rebalance (a classic trade-off; sparse pages are reclaimed by
    {!compact}), which keeps the code small without losing correctness.

    I/O counters expose physical reads and writes so tests — and the
    storage-latency argument of the paper — can observe actual disk
    traffic. *)

type t

val page_size : int
val max_entry_size : int

val open_file : ?cache_pages:int -> string -> t
(** Opens (creating and initialising if needed) a B-tree at [path].
    [cache_pages] bounds the in-memory page cache (default 256).
    Raises [Failure] on a corrupt meta page. *)

val put : t -> string -> string -> unit
(** Insert or replace.  Raises [Invalid_argument] if the entry exceeds
    {!max_entry_size} or the key is empty. *)

val get : t -> string -> string option

val delete : t -> string -> bool
(** [true] when the key existed. *)

val mem : t -> string -> bool

val count : t -> int
(** Live entries. *)

val iter : t -> (string -> string -> unit) -> unit
(** In ascending key order. *)

val fold : t -> init:'a -> f:('a -> string -> string -> 'a) -> 'a

val range : t -> lo:string -> hi:string -> (string * string) list
(** Entries with [lo <= key <= hi], ascending. *)

val flush : t -> unit
(** Writes all dirty pages and the meta page to disk. *)

val close : t -> unit
(** Flushes and closes the file descriptor. *)

val compact : t -> unit
(** Rebuilds the tree, dropping dead space left by deletes and splits. *)

val verify : t -> (unit, string) result
(** Structural check: key ordering within and across nodes, entry count,
    child reachability.  Used by the property tests. *)

(** Physical I/O and cache statistics since open. *)
type stats = {
  page_reads : int;
  page_writes : int;
  cache_hits : int;
  cache_misses : int;
  height : int;
  pages_allocated : int;
}

val stats : t -> stats

val path : t -> string
(** The backing file. *)

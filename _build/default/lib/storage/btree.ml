let page_size = 4096
let max_entry_size = 1024
let magic = "RDBBTRE1"

(* Page 0 is the meta page; node pages start at 1. *)

type node =
  | Leaf of { keys : string array; values : string array }
  | Internal of { keys : string array; children : int array }

type cached = { mutable node : node; mutable dirty : bool; mutable last_used : int }

type t = {
  fd : Unix.file_descr;
  path : string;
  cache : (int, cached) Hashtbl.t;
  cache_pages : int;
  mutable root : int;
  mutable next_page : int;
  mutable entries : int;
  mutable tick : int;
  mutable page_reads : int;
  mutable page_writes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable closed : bool;
}

(* ---- serialization ---------------------------------------------------- *)

let put_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let get_u16 buf off = (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let put_u32 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 3) (Char.chr (v land 0xFF))

let get_u32 buf off =
  (Char.code (Bytes.get buf off) lsl 24)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 8)
  lor Char.code (Bytes.get buf (off + 3))

let checksum_of buf =
  (* First 4 bytes of SHA-256 over bytes 4..end. *)
  let body = Bytes.sub_string buf 4 (Bytes.length buf - 4) in
  String.sub (Rdb_crypto.Sha256.digest body) 0 4

let node_size = function
  | Leaf { keys; values } ->
    let acc = ref 7 in
    Array.iteri (fun i k -> acc := !acc + 4 + String.length k + String.length values.(i)) keys;
    !acc
  | Internal { keys; children } ->
    let acc = ref (7 + (4 * Array.length children)) in
    Array.iter (fun k -> acc := !acc + 2 + String.length k) keys;
    !acc

let serialize_node node =
  let buf = Bytes.make page_size '\x00' in
  (match node with
  | Leaf { keys; values } ->
    Bytes.set buf 4 '\x01';
    put_u16 buf 5 (Array.length keys);
    let off = ref 7 in
    Array.iteri
      (fun i k ->
        let v = values.(i) in
        put_u16 buf !off (String.length k);
        put_u16 buf (!off + 2) (String.length v);
        Bytes.blit_string k 0 buf (!off + 4) (String.length k);
        Bytes.blit_string v 0 buf (!off + 4 + String.length k) (String.length v);
        off := !off + 4 + String.length k + String.length v)
      keys
  | Internal { keys; children } ->
    Bytes.set buf 4 '\x02';
    put_u16 buf 5 (Array.length keys);
    let off = ref 7 in
    Array.iter
      (fun k ->
        put_u16 buf !off (String.length k);
        Bytes.blit_string k 0 buf (!off + 2) (String.length k);
        off := !off + 2 + String.length k)
      keys;
    Array.iter
      (fun c ->
        put_u32 buf !off c;
        off := !off + 4)
      children);
  Bytes.blit_string (checksum_of buf) 0 buf 0 4;
  buf

let deserialize_node buf =
  let stored = Bytes.sub_string buf 0 4 in
  if not (String.equal stored (checksum_of buf)) then failwith "Btree: corrupt page (bad checksum)";
  let nkeys = get_u16 buf 5 in
  match Bytes.get buf 4 with
  | '\x01' ->
    let keys = Array.make nkeys "" and values = Array.make nkeys "" in
    let off = ref 7 in
    for i = 0 to nkeys - 1 do
      let klen = get_u16 buf !off and vlen = get_u16 buf (!off + 2) in
      keys.(i) <- Bytes.sub_string buf (!off + 4) klen;
      values.(i) <- Bytes.sub_string buf (!off + 4 + klen) vlen;
      off := !off + 4 + klen + vlen
    done;
    Leaf { keys; values }
  | '\x02' ->
    let keys = Array.make nkeys "" in
    let off = ref 7 in
    for i = 0 to nkeys - 1 do
      let klen = get_u16 buf !off in
      keys.(i) <- Bytes.sub_string buf (!off + 2) klen;
      off := !off + 2 + klen
    done;
    let children = Array.make (nkeys + 1) 0 in
    for i = 0 to nkeys do
      children.(i) <- get_u32 buf !off;
      off := !off + 4
    done;
    Internal { keys; children }
  | _ -> failwith "Btree: corrupt page (bad tag)"

(* ---- raw page I/O ------------------------------------------------------ *)

let read_page t page =
  let buf = Bytes.create page_size in
  ignore (Unix.lseek t.fd (page * page_size) Unix.SEEK_SET);
  let rec fill off =
    if off < page_size then begin
      let n = Unix.read t.fd buf off (page_size - off) in
      if n = 0 then failwith "Btree: short read";
      fill (off + n)
    end
  in
  fill 0;
  t.page_reads <- t.page_reads + 1;
  buf

let write_page t page buf =
  ignore (Unix.lseek t.fd (page * page_size) Unix.SEEK_SET);
  let rec drain off =
    if off < page_size then begin
      let n = Unix.write t.fd buf off (page_size - off) in
      drain (off + n)
    end
  in
  drain 0;
  t.page_writes <- t.page_writes + 1

let write_meta t =
  let buf = Bytes.make page_size '\x00' in
  Bytes.blit_string magic 0 buf 4 8;
  put_u32 buf 12 1 (* version *);
  put_u32 buf 16 t.root;
  put_u32 buf 20 t.next_page;
  put_u32 buf 24 t.entries;
  Bytes.blit_string (checksum_of buf) 0 buf 0 4;
  write_page t 0 buf

(* ---- cache ------------------------------------------------------------- *)

let touch t c =
  t.tick <- t.tick + 1;
  c.last_used <- t.tick

let flush_cached t page c =
  if c.dirty then begin
    write_page t page (serialize_node c.node);
    c.dirty <- false
  end

let evict_if_needed t =
  if Hashtbl.length t.cache > t.cache_pages then begin
    (* Evict the least recently used page (flushing it if dirty). *)
    let victim = ref None in
    Hashtbl.iter
      (fun page c ->
        match !victim with
        | None -> victim := Some (page, c)
        | Some (_, best) -> if c.last_used < best.last_used then victim := Some (page, c))
      t.cache;
    match !victim with
    | None -> ()
    | Some (page, c) ->
      flush_cached t page c;
      Hashtbl.remove t.cache page
  end

let load t page =
  match Hashtbl.find_opt t.cache page with
  | Some c ->
    t.cache_hits <- t.cache_hits + 1;
    touch t c;
    c.node
  | None ->
    t.cache_misses <- t.cache_misses + 1;
    let node = deserialize_node (read_page t page) in
    let c = { node; dirty = false; last_used = 0 } in
    touch t c;
    Hashtbl.add t.cache page c;
    evict_if_needed t;
    node

let store t page node ~dirty =
  (match Hashtbl.find_opt t.cache page with
  | Some c ->
    c.node <- node;
    c.dirty <- c.dirty || dirty;
    touch t c
  | None ->
    let c = { node; dirty; last_used = 0 } in
    touch t c;
    Hashtbl.add t.cache page c;
    evict_if_needed t)

let alloc t node =
  let page = t.next_page in
  t.next_page <- t.next_page + 1;
  store t page node ~dirty:true;
  page

(* ---- open / close ------------------------------------------------------ *)

let open_file ?(cache_pages = 256) path =
  if cache_pages < 8 then invalid_arg "Btree.open_file: cache too small";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let t =
    {
      fd;
      path;
      cache = Hashtbl.create 64;
      cache_pages;
      root = 1;
      next_page = 2;
      entries = 0;
      tick = 0;
      page_reads = 0;
      page_writes = 0;
      cache_hits = 0;
      cache_misses = 0;
      closed = false;
    }
  in
  let len = (Unix.fstat fd).Unix.st_size in
  if len = 0 then begin
    (* Fresh file: empty leaf root. *)
    store t 1 (Leaf { keys = [||]; values = [||] }) ~dirty:true;
    write_meta t;
    t
  end
  else begin
    let buf = read_page t 0 in
    let stored = Bytes.sub_string buf 0 4 in
    if not (String.equal stored (checksum_of buf)) then failwith "Btree: corrupt meta page";
    if not (String.equal (Bytes.sub_string buf 4 8) magic) then failwith "Btree: bad magic";
    t.root <- get_u32 buf 16;
    t.next_page <- get_u32 buf 20;
    t.entries <- get_u32 buf 24;
    t
  end

let flush t =
  Hashtbl.iter (fun page c -> flush_cached t page c) t.cache;
  write_meta t

let close t =
  if not t.closed then begin
    flush t;
    Unix.close t.fd;
    t.closed <- true
  end

(* ---- search ------------------------------------------------------------ *)

(* Index of the first key >= k, or [n] if none. *)
let lower_bound keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_in t page k =
  match load t page with
  | Leaf { keys; values } ->
    let i = lower_bound keys k in
    if i < Array.length keys && String.equal keys.(i) k then Some values.(i) else None
  | Internal { keys; children } ->
    let i = lower_bound keys k in
    (* Separator convention: keys.(i) is the smallest key of children.(i+1). *)
    let child = if i < Array.length keys && String.equal keys.(i) k then i + 1 else i in
    find_in t children.(child) k

let get t k = find_in t t.root k

let mem t k = get t k <> None

(* ---- insertion --------------------------------------------------------- *)

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

type insert_result =
  | Done
  | SplitInto of string * int (* separator, right sibling page *)

(* Splits an oversized leaf, balancing by serialized bytes. *)
let split_leaf keys values =
  let n = Array.length keys in
  let total = ref 0 in
  Array.iteri (fun i k -> total := !total + 4 + String.length k + String.length values.(i)) keys;
  let half = !total / 2 in
  let cut = ref 0 and acc = ref 0 in
  while !acc < half && !cut < n - 1 do
    acc := !acc + 4 + String.length keys.(!cut) + String.length values.(!cut);
    incr cut
  done;
  let cut = max 1 (min (n - 1) !cut) in
  let left = Leaf { keys = Array.sub keys 0 cut; values = Array.sub values 0 cut } in
  let right =
    Leaf { keys = Array.sub keys cut (n - cut); values = Array.sub values cut (n - cut) }
  in
  let sep = keys.(cut) in
  (left, sep, right)

let split_internal keys children =
  let n = Array.length keys in
  let mid = n / 2 in
  let left = Internal { keys = Array.sub keys 0 mid; children = Array.sub children 0 (mid + 1) } in
  let right =
    Internal
      {
        keys = Array.sub keys (mid + 1) (n - mid - 1);
        children = Array.sub children (mid + 1) (n - mid);
      }
  in
  (left, keys.(mid), right)

let rec insert_at t page k v =
  match load t page with
  | Leaf { keys; values } ->
    let i = lower_bound keys k in
    let keys, values, added =
      if i < Array.length keys && String.equal keys.(i) k then begin
        let values = Array.copy values in
        values.(i) <- v;
        (keys, values, false)
      end
      else (array_insert keys i k, array_insert values i v, true)
    in
    if added then t.entries <- t.entries + 1;
    let node = Leaf { keys; values } in
    if node_size node <= page_size then begin
      store t page node ~dirty:true;
      Done
    end
    else begin
      let left, sep, right = split_leaf keys values in
      store t page left ~dirty:true;
      let right_page = alloc t right in
      SplitInto (sep, right_page)
    end
  | Internal { keys; children } ->
    let i = lower_bound keys k in
    let child_idx = if i < Array.length keys && String.equal keys.(i) k then i + 1 else i in
    (match insert_at t children.(child_idx) k v with
    | Done -> Done
    | SplitInto (sep, right_page) ->
      let keys = array_insert keys child_idx sep in
      let children = array_insert children (child_idx + 1) right_page in
      let node = Internal { keys; children } in
      if node_size node <= page_size then begin
        store t page node ~dirty:true;
        Done
      end
      else begin
        let left, sep', right = split_internal keys children in
        store t page left ~dirty:true;
        let right_page = alloc t right in
        SplitInto (sep', right_page)
      end)

let put t k v =
  if String.length k = 0 then invalid_arg "Btree.put: empty key";
  if String.length k + String.length v > max_entry_size then
    invalid_arg "Btree.put: entry exceeds max_entry_size";
  match insert_at t t.root k v with
  | Done -> ()
  | SplitInto (sep, right_page) ->
    let new_root = Internal { keys = [| sep |]; children = [| t.root; right_page |] } in
    t.root <- alloc t new_root

(* ---- deletion (no rebalancing; see interface) -------------------------- *)

let rec delete_at t page k =
  match load t page with
  | Leaf { keys; values } ->
    let i = lower_bound keys k in
    if i < Array.length keys && String.equal keys.(i) k then begin
      store t page (Leaf { keys = array_remove keys i; values = array_remove values i }) ~dirty:true;
      t.entries <- t.entries - 1;
      true
    end
    else false
  | Internal { keys; children } ->
    let i = lower_bound keys k in
    let child_idx = if i < Array.length keys && String.equal keys.(i) k then i + 1 else i in
    delete_at t children.(child_idx) k

let delete t k = delete_at t t.root k

let count t = t.entries

(* ---- iteration --------------------------------------------------------- *)

let rec iter_page t page f =
  match load t page with
  | Leaf { keys; values } -> Array.iteri (fun i k -> f k values.(i)) keys
  | Internal { children; _ } -> Array.iter (fun c -> iter_page t c f) children

let iter t f = iter_page t t.root f

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let range t ~lo ~hi =
  let out = ref [] in
  let rec walk page =
    match load t page with
    | Leaf { keys; values } ->
      Array.iteri
        (fun i k -> if String.compare lo k <= 0 && String.compare k hi <= 0 then out := (k, values.(i)) :: !out)
        keys
    | Internal { keys; children } ->
      (* Visit only children whose key range can intersect [lo, hi]. *)
      let n = Array.length keys in
      for c = 0 to n do
        let child_min = if c = 0 then None else Some keys.(c - 1) in
        let child_max = if c = n then None else Some keys.(c) in
        let lo_ok = match child_max with None -> true | Some m -> String.compare lo m <= 0 in
        let hi_ok = match child_min with None -> true | Some m -> String.compare m hi <= 0 in
        if lo_ok && hi_ok then walk children.(c)
      done
  in
  walk t.root;
  List.rev !out

(* ---- maintenance ------------------------------------------------------- *)

let compact t =
  let all = fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc) in
  Hashtbl.reset t.cache;
  Unix.ftruncate t.fd 0;
  t.root <- 1;
  t.next_page <- 2;
  t.entries <- 0;
  store t 1 (Leaf { keys = [||]; values = [||] }) ~dirty:true;
  List.iter (fun (k, v) -> put t k v) (List.rev all);
  flush t

let rec height_of t page =
  match load t page with
  | Leaf _ -> 1
  | Internal { children; _ } -> 1 + height_of t children.(0)

type stats = {
  page_reads : int;
  page_writes : int;
  cache_hits : int;
  cache_misses : int;
  height : int;
  pages_allocated : int;
}

let stats (t : t) =
  {
    page_reads = t.page_reads;
    page_writes = t.page_writes;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    height = height_of t t.root;
    pages_allocated = t.next_page - 1;
  }

let verify t =
  let errors = ref [] in
  let seen = ref 0 in
  let rec check page ~min_k ~max_k ~depth =
    match load t page with
    | Leaf { keys; values } ->
      if Array.length keys <> Array.length values then
        errors := "leaf keys/values length mismatch" :: !errors;
      Array.iteri
        (fun i k ->
          incr seen;
          if i > 0 && String.compare keys.(i - 1) k >= 0 then
            errors := Format.asprintf "leaf key order violated at %S" k :: !errors;
          (match min_k with
          | Some m when String.compare k m < 0 ->
            errors := Format.asprintf "leaf key %S below subtree minimum" k :: !errors
          | _ -> ());
          match max_k with
          | Some m when String.compare k m >= 0 ->
            errors := Format.asprintf "leaf key %S above subtree maximum" k :: !errors
          | _ -> ())
        keys;
      depth
    | Internal { keys; children } ->
      if Array.length children <> Array.length keys + 1 then
        errors := "internal arity mismatch" :: !errors;
      Array.iteri
        (fun i k ->
          if i > 0 && String.compare keys.(i - 1) k >= 0 then
            errors := "internal key order violated" :: !errors)
        keys;
      let depths =
        Array.mapi
          (fun c child ->
            let min_k = if c = 0 then min_k else Some keys.(c - 1) in
            let max_k = if c = Array.length keys then max_k else Some keys.(c) in
            check child ~min_k ~max_k ~depth:(depth + 1))
          children
      in
      Array.iter (fun d -> if d <> depths.(0) then errors := "uneven leaf depth" :: !errors) depths;
      depths.(0)
  in
  ignore (check t.root ~min_k:None ~max_k:None ~depth:0);
  if !seen <> t.entries then
    errors := Format.asprintf "entry count mismatch: counted %d, meta %d" !seen t.entries :: !errors;
  match !errors with [] -> Ok () | e :: _ -> Error e

let path t = t.path

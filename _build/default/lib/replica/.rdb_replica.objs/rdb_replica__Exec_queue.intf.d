lib/replica/exec_queue.mli:

lib/replica/stage.ml: Queue Rdb_des

lib/replica/stage.mli: Rdb_des

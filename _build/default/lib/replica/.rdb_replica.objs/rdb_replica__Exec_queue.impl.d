lib/replica/exec_queue.ml: Array Printf

type 'a slot = Empty | Full of int * 'a

type 'a t = {
  slots : 'a slot array;
  mutable next : int;
  mutable pending : int;
}

let create ~slots =
  if slots < 1 then invalid_arg "Exec_queue.create: need at least one slot";
  { slots = Array.make slots Empty; next = 1; pending = 0 }

let recommended_slots ~num_clients ~num_req =
  if num_clients < 1 || num_req < 1 then invalid_arg "Exec_queue.recommended_slots";
  2 * num_clients * num_req

let index t seq = seq mod Array.length t.slots

let offer t ~seq v =
  if seq < t.next then Error (Printf.sprintf "sequence %d already executed" seq)
  else if seq >= t.next + Array.length t.slots then
    Error (Printf.sprintf "sequence %d outside the window [%d, %d)" seq t.next (t.next + Array.length t.slots))
  else begin
    match t.slots.(index t seq) with
    | Full (other, _) when other <> seq ->
      (* Cannot happen when the window invariant holds; report loudly. *)
      Error (Printf.sprintf "slot collision: %d vs %d" other seq)
    | Full _ -> Ok () (* duplicate offer is idempotent *)
    | Empty ->
      t.slots.(index t seq) <- Full (seq, v);
      t.pending <- t.pending + 1;
      Ok ()
  end

let poll t =
  match t.slots.(index t t.next) with
  | Full (seq, v) when seq = t.next ->
    t.slots.(index t t.next) <- Empty;
    t.next <- t.next + 1;
    t.pending <- t.pending - 1;
    Some v
  | Full _ | Empty -> None

let next_seq t = t.next

let pending t = t.pending

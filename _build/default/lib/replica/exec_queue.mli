(** The execute-thread's queue array from the paper's §4.6.

    Consensus completes out of order, but execution must be in order.  A
    naive execute-thread would repeatedly scan or re-queue messages until
    the next transaction in order shows up.  ResilientDB instead gives the
    execute-thread [QC = 2 * Num_Clients * Num_Req] logical queues and
    places the message for transaction [txn_id] into queue
    [txn_id mod QC]; the execute-thread then waits on exactly the queue
    where the next-in-order transaction must appear — no scanning, no
    re-queueing, no hash computation.

    The queues are logical: empty slots cost one array cell, so the space
    overhead over a single queue is constant per slot, as the paper notes.

    [slots] must be an upper bound on how far ahead of the execution
    cursor any offered item can be (in ResilientDB: the maximum number of
    in-flight client requests); {!offer} rejects items outside that window
    rather than silently overwriting. *)

type 'a t

val create : slots:int -> 'a t
(** [slots] >= 1; see {!recommended_slots}. *)

val recommended_slots : num_clients:int -> num_req:int -> int
(** The paper's sizing rule: [QC = 2 * Num_Clients * Num_Req]. *)

val offer : 'a t -> seq:int -> 'a -> (unit, string) result
(** Place the item for sequence number [seq] into its slot.  Fails when the
    slot is already occupied by a different sequence number (the window
    invariant was violated) or when [seq] was already executed. *)

val poll : 'a t -> 'a option
(** If the next-in-order item has arrived, dequeue and return it (advancing
    the cursor); [None] when its slot is still empty.  O(1). *)

val next_seq : 'a t -> int
(** The sequence number {!poll} is waiting for (starts at 1). *)

val pending : 'a t -> int
(** Items offered but not yet polled. *)

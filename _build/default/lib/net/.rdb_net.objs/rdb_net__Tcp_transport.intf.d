lib/net/tcp_transport.mli:

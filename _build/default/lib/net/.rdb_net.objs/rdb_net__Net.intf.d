lib/net/net.mli: Rdb_des

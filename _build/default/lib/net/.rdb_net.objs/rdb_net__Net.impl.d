lib/net/net.ml: Array Rdb_des

lib/net/net.ml: Array Fun Hashtbl List Printf Rdb_des

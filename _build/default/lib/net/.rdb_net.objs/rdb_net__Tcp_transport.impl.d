lib/net/tcp_transport.ml: Buffer Bytes Hashtbl List Mutex Rdb_consensus Thread Unix

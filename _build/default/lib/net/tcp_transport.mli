(** Real TCP transport for deploying the protocol cores across processes or
    machines — the networked counterpart of the simulated {!Net}.

    Each node binds a listening socket (an ephemeral port by default, so
    in-process multi-node tests never collide), accepts connections on a
    background thread, and deframes incoming {!Rdb_consensus.Codec} frames
    on per-connection reader threads.  Outgoing connections are opened
    lazily on first send and kept alive.

    Delivery guarantees mirror TCP: reliable, ordered per connection; a
    peer that is down simply receives nothing (BFT protocols tolerate
    this).  First connections retry with bounded backoff (five attempts,
    10..80 ms apart) so cluster nodes may start in any order; a stale
    connection is reopened once per {!send}.  Definitive failures are
    counted in {!send_failures}.

    The [on_message] callback runs on reader threads but is serialized by
    an internal lock, so a single-threaded consensus core behind it needs
    no further synchronization. *)

type t

val create : ?host:string -> ?port:int -> on_message:(payload:string -> unit) -> unit -> t
(** Binds and starts accepting.  [host] defaults to 127.0.0.1; [port]
    defaults to 0 (ephemeral — query the binding with {!port}). *)

val port : t -> int
(** The actual bound port (useful with the default ephemeral binding). *)

val set_peers : t -> (int * (string * int)) list -> unit
(** Declare the peer directory: node id -> (host, port).  May be called
    once the full cluster's ports are known. *)

val add_peer : t -> int -> string * int -> unit
(** Add or update a single directory entry (e.g. a client that announced
    its reply address inside a request). *)

val send : t -> to_:int -> string -> bool
(** Frame and send a payload to a peer; [false] if the peer is unknown or
    unreachable (after the bounded reconnection attempts). *)

val broadcast : t -> string -> int
(** Send to every peer; returns how many sends succeeded. *)

val messages_received : t -> int

val send_failures : t -> int
(** Sends that definitively failed (unknown peer, or unreachable after the
    bounded reconnect attempts). *)

val shutdown : t -> unit
(** Closes the listener and all connections; joins background threads. *)

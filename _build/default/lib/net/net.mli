(** Simulated datacenter network.

    Model (matching the paper's Google-Cloud single-region deployment):
    - every node owns an egress NIC of configurable bandwidth; outgoing
      messages serialize through it FIFO (transmission delay =
      bytes / bandwidth), which is what makes large Pre-prepare messages a
      bandwidth bottleneck (paper Fig. 12);
    - after transmission, a message experiences a propagation latency with
      optional uniform jitter;
    - crashed nodes silently drop traffic in both directions (crash faults,
      the fault model of the paper's Fig. 17);
    - delivery is per-destination; there is no multicast offload, so a
      broadcast pays [n-1] transmissions, as on real hardware.

    Message payloads are opaque to the network ('a); sizes are explicit. *)

type 'a t

val create :
  Rdb_des.Sim.t ->
  nodes:int ->
  bandwidth_gbps:float ->
  latency:Rdb_des.Sim.time ->
  ?jitter:Rdb_des.Sim.time ->
  rng:Rdb_des.Rng.t ->
  deliver:(dst:int -> src:int -> 'a -> unit) ->
  unit ->
  'a t
(** [deliver] is invoked at the destination's arrival instant. *)

val send : 'a t -> src:int -> dst:int -> bytes:int -> 'a -> unit
(** Queues the message on [src]'s NIC.  No-op if either side is crashed
    (a crashed source cannot send; traffic to a crashed node vanishes —
    the drop for a crashed destination is decided at arrival time, so a
    node that crashes mid-flight still loses the message). *)

val crash : 'a t -> int -> unit

val recover : 'a t -> int -> unit

val is_crashed : 'a t -> int -> bool

val messages_sent : 'a t -> int

val bytes_sent : 'a t -> int

val nic_busy_ns : 'a t -> int -> int
(** Cumulative egress transmission time of one node's NIC, for
    bandwidth-utilisation accounting. *)

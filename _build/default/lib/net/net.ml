module Sim = Rdb_des.Sim
module Rng = Rdb_des.Rng

type 'a t = {
  sim : Sim.t;
  bytes_per_ns : float; (* NIC egress rate *)
  latency : Sim.time;
  jitter : Sim.time;
  rng : Rng.t;
  deliver : dst:int -> src:int -> 'a -> unit;
  nics : Rdb_des.Cpu.t array; (* one single-"core" resource per node: the egress NIC *)
  crashed : bool array;
  mutable messages_sent : int;
  mutable bytes_sent : int;
}

let create sim ~nodes ~bandwidth_gbps ~latency ?(jitter = 0) ~rng ~deliver () =
  if nodes <= 0 then invalid_arg "Net.create: nodes must be positive";
  if bandwidth_gbps <= 0.0 then invalid_arg "Net.create: bandwidth must be positive";
  {
    sim;
    bytes_per_ns = bandwidth_gbps /. 8.0; (* Gbit/s = bytes/ns / 0.125 *)
    latency;
    jitter;
    rng;
    deliver;
    nics = Array.init nodes (fun _ -> Rdb_des.Cpu.create sim ~cores:1);
    crashed = Array.make nodes false;
    messages_sent = 0;
    bytes_sent = 0;
  }

let transmission_ns t bytes = int_of_float (float_of_int bytes /. t.bytes_per_ns)

let send t ~src ~dst ~bytes payload =
  if t.crashed.(src) then ()
  else begin
    t.messages_sent <- t.messages_sent + 1;
    t.bytes_sent <- t.bytes_sent + bytes;
    let service = transmission_ns t bytes in
    (* The NIC serializes transmissions FIFO; propagation starts when the
       last byte leaves the wire. *)
    Rdb_des.Cpu.submit t.nics.(src) ~service (fun () ->
        let extra = if t.jitter > 0 then Rng.int t.rng t.jitter else 0 in
        ignore
          (Sim.schedule t.sim ~after:(t.latency + extra) (fun () ->
               if not t.crashed.(dst) then t.deliver ~dst ~src payload)))
  end

let crash t node = t.crashed.(node) <- true

let recover t node = t.crashed.(node) <- false

let is_crashed t node = t.crashed.(node)

let messages_sent t = t.messages_sent

let bytes_sent t = t.bytes_sent

let nic_busy_ns t node = Rdb_des.Cpu.busy_ns t.nics.(node)

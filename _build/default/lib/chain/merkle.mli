(** Merkle trees over transaction batches.

    ResilientDB's §4.3 digest optimization hashes the single string
    representation of a whole batch; a Merkle root is the standard
    alternative when clients need light-weight {e membership proofs} (my
    transaction is in block k) without downloading the batch.  This module
    provides both construction and logarithmic inclusion proofs.

    Leaves are domain-separated from interior nodes (prefix bytes 0x00 /
    0x01) so a leaf cannot be confused with an interior node — the classic
    second-preimage defence. *)

type t

val build : string list -> t
(** Builds a tree over the given leaf payloads (not pre-hashed).
    Raises [Invalid_argument] on an empty list. *)

val root : t -> string
(** 32-byte root digest. *)

val leaf_count : t -> int

type proof
(** An inclusion proof for one leaf. *)

val prove : t -> int -> proof
(** [prove t i] for the i-th leaf.  Raises [Invalid_argument] when out of
    range. *)

val verify : root:string -> leaf:string -> index:int -> proof -> bool
(** Checks that [leaf] was the [index]-th element under [root]. *)

val proof_length : proof -> int
(** Number of sibling hashes (= tree depth). *)

val proof_to_list : proof -> string list
val proof_of_list : string list -> proof
(** Wire transport of proofs. *)

(** The per-replica immutable ledger: an append-only chain of {!Block.t}.

    Every replica maintains its own copy (paper §2.2).  Appends must be in
    strict sequence order — this is exactly the paper's "in-order execution"
    invariant, so a violated append is a protocol bug and raises.  Old
    blocks are pruned when a stable checkpoint is reached (§4.7); pruning
    retains the chain's cumulative digest so integrity checks still work. *)

type t

val create : primary_id:int -> t
(** Starts with the genesis block at sequence 0. *)

val append : t -> Block.t -> unit
(** Raises [Invalid_argument] unless the block's sequence number is exactly
    [next_seq t]. *)

val next_seq : t -> int

val last : t -> Block.t

val length : t -> int
(** Total blocks ever appended, including pruned ones and genesis. *)

val find : t -> int -> Block.t option
(** [find t seq]; [None] when pruned or not yet appended. *)

val prune_below : t -> int -> int
(** [prune_below t seq] discards blocks with sequence < [seq] (never the
    genesis digest chain), returning how many were discarded. *)

val verify :
  t ->
  check_certificate:(seq:int -> digest:string -> (int * string) list -> bool) ->
  (unit, string) result
(** Walks retained blocks in order, checking sequence continuity and
    linkage: [Prev_hash] links must equal the hash of the previous retained
    block; [Certificate] links are delegated to [check_certificate]
    (signature verification lives with the caller's keyring). *)

val cumulative_digest : t -> string
(** Digest covering every block ever appended (survives pruning): a running
    hash folded over the blocks' hashes. *)

val sync_from : t -> src:t -> unit
(** State transfer: make this ledger identical to [src] (retained blocks,
    counters, cumulative digest).  Used when a recovering replica catches
    up from a stable checkpoint — the 2f+1 matching checkpoint digests are
    its proof that [src]'s content is correct. *)

val iter_retained : t -> (Block.t -> unit) -> unit

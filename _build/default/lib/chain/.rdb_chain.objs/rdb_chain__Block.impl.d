lib/chain/block.ml: Buffer Format List Printf Rdb_crypto String

lib/chain/ledger.mli: Block

lib/chain/merkle.ml: Array List Rdb_crypto String

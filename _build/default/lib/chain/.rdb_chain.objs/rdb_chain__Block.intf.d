lib/chain/block.mli: Format

lib/chain/merkle.mli:

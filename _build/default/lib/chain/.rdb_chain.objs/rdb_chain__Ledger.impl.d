lib/chain/ledger.ml: Block List Printf Rdb_crypto String

type linkage =
  | Prev_hash of string
  | Certificate of (int * string) list

type t = {
  seq : int;
  view : int;
  digest : string;
  txn_count : int;
  link : linkage;
}

let genesis ~primary_id =
  {
    seq = 0;
    view = 0;
    digest = Rdb_crypto.Sha256.digest (Printf.sprintf "genesis-primary-%d" primary_id);
    txn_count = 0;
    link = Prev_hash (String.make 32 '\x00');
  }

let serialize t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "%d|%d|%d|" t.seq t.view t.txn_count);
  Buffer.add_string buf t.digest;
  (match t.link with
  | Prev_hash h ->
    Buffer.add_string buf "|H|";
    Buffer.add_string buf h
  | Certificate shares ->
    Buffer.add_string buf "|C|";
    List.iter
      (fun (id, sg) ->
        Buffer.add_string buf (string_of_int id);
        Buffer.add_char buf ':';
        Buffer.add_string buf sg;
        Buffer.add_char buf ';')
      shares);
  Buffer.contents buf

let hash t = Rdb_crypto.Sha256.digest (serialize t)

let pp ppf t =
  let link =
    match t.link with
    | Prev_hash _ -> "prev-hash"
    | Certificate shares -> Printf.sprintf "cert(%d)" (List.length shares)
  in
  Format.fprintf ppf "block{seq=%d view=%d txns=%d digest=%s.. link=%s}" t.seq t.view
    t.txn_count
    (Rdb_crypto.Sha256.hex (String.sub t.digest 0 4))
    link

type t = {
  (* Retained blocks in reverse order (newest first). *)
  mutable retained : Block.t list;
  mutable appended : int;
  mutable next_seq : int;
  mutable running : string; (* cumulative digest over all appended blocks *)
}

let create ~primary_id =
  let g = Block.genesis ~primary_id in
  {
    retained = [ g ];
    appended = 1;
    next_seq = 1;
    running = Block.hash g;
  }

let next_seq t = t.next_seq

let last t =
  match t.retained with
  | b :: _ -> b
  | [] -> assert false (* genesis is never pruned without replacement *)

let append t b =
  if b.Block.seq <> t.next_seq then
    invalid_arg
      (Printf.sprintf "Ledger.append: expected seq %d, got %d" t.next_seq b.Block.seq);
  t.retained <- b :: t.retained;
  t.appended <- t.appended + 1;
  t.next_seq <- t.next_seq + 1;
  t.running <- Rdb_crypto.Sha256.digest (t.running ^ Block.hash b)

let length t = t.appended

let find t seq = List.find_opt (fun b -> b.Block.seq = seq) t.retained

let prune_below t seq =
  let keep, drop = List.partition (fun b -> b.Block.seq >= seq) t.retained in
  (* Never drop the newest block: [last] must stay meaningful. *)
  match keep with
  | [] -> 0
  | _ ->
    t.retained <- keep;
    List.length drop

let verify t ~check_certificate =
  let blocks = List.rev t.retained in
  let rec walk prev = function
    | [] -> Ok ()
    | (b : Block.t) :: rest ->
      let seq_ok =
        match prev with
        | None -> true
        | Some (p : Block.t) -> b.seq = p.seq + 1
      in
      if not seq_ok then Error (Printf.sprintf "sequence gap before %d" b.seq)
      else begin
        let link_ok =
          match (b.link, prev) with
          | Block.Prev_hash h, Some p -> String.equal h (Block.hash p)
          | Block.Prev_hash _, None -> true (* chain head after pruning *)
          | Block.Certificate shares, _ ->
            check_certificate ~seq:b.seq ~digest:b.digest shares
        in
        if not link_ok then Error (Printf.sprintf "bad linkage at seq %d" b.seq)
        else walk (Some b) rest
      end
  in
  match blocks with
  | [] -> Ok ()
  | first :: _ when first.Block.seq = 0 -> walk None blocks
  | _ -> walk None blocks

let cumulative_digest t = t.running

let sync_from t ~src =
  t.retained <- src.retained;
  t.appended <- src.appended;
  t.next_seq <- src.next_seq;
  t.running <- src.running

let iter_retained t f = List.iter f (List.rev t.retained)

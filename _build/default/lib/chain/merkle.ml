module Sha256 = Rdb_crypto.Sha256

(* Levels bottom-up: levels.(0) = leaf hashes, levels.(top) = [| root |].
   Odd nodes are paired with themselves (Bitcoin-style duplication). *)
type t = { levels : string array array }

type proof = string list

let hash_leaf data = Sha256.digest ("\x00" ^ data)
let hash_node l r = Sha256.digest ("\x01" ^ l ^ r)

let build leaves =
  if leaves = [] then invalid_arg "Merkle.build: empty leaf list";
  let level0 = Array.of_list (List.map hash_leaf leaves) in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let parent =
        Array.init ((n + 1) / 2) (fun i ->
            let l = level.(2 * i) in
            let r = if (2 * i) + 1 < n then level.((2 * i) + 1) else l in
            hash_node l r)
      in
      up (level :: acc) parent
    end
  in
  { levels = Array.of_list (up [] level0) }

let root t = t.levels.(Array.length t.levels - 1).(0)

let leaf_count t = Array.length t.levels.(0)

let prove t index =
  if index < 0 || index >= leaf_count t then invalid_arg "Merkle.prove: index out of range";
  let rec collect level i acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let nodes = t.levels.(level) in
      let sibling_idx = if i mod 2 = 0 then i + 1 else i - 1 in
      let sibling = if sibling_idx < Array.length nodes then nodes.(sibling_idx) else nodes.(i) in
      collect (level + 1) (i / 2) (sibling :: acc)
    end
  in
  collect 0 index []

let verify ~root:expected ~leaf ~index proof =
  if index < 0 then false
  else begin
    let rec climb h i = function
      | [] -> (h, i)
      | sibling :: rest ->
        let h' = if i mod 2 = 0 then hash_node h sibling else hash_node sibling h in
        climb h' (i / 2) rest
    in
    let final, top_index = climb (hash_leaf leaf) index proof in
    top_index = 0 && String.equal final expected
  end

let proof_length p = List.length p
let proof_to_list p = p
let proof_of_list l = l

(** Application-level wire format for networked deployments
    ([bin/resdb_node] / [bin/resdb_client]): what flows over
    {!Rdb_net.Tcp_transport} connections, carrying either a signed client
    request, an authenticated consensus message, or a reply.

    Client requests embed the client's own listening address so replicas
    can open the return path (clients are not part of the static peer
    directory). Consensus messages carry a CMAC tag over their canonical
    {!Rdb_consensus.Message.auth_string}. *)

type t =
  | Request of {
      client : int;
      reply_host : string;
      reply_port : int;
      txn_id : int;
      payload : string;
      signature : string;  (** client's digital signature over the payload *)
    }
  | Consensus of {
      msg : Rdb_consensus.Message.t;
      tag : string;
      attachments : attachment list;
          (** request bodies riding along with a Pre-prepare: the protocol
              core is payload-agnostic, so the hosting node ships the
              payloads (and the clients' reply addresses) next to the
              message that references them *)
    }
  | Reply of { txn_id : int; from : int; result : string }

and attachment = {
  a_txn_id : int;
  a_client : int;
  a_reply_host : string;
  a_reply_port : int;
  a_payload : string;
}

val encode : t -> string

val decode : string -> (t, string) result

val sign_request : Rdb_crypto.Signer.t -> client:int -> txn_id:int -> payload:string -> string
(** The canonical signing input covers client id, txn id and payload. *)

val verify_request :
  Rdb_crypto.Signer.verifier ->
  client:int ->
  txn_id:int ->
  payload:string ->
  signature:string ->
  bool

(** Declarative fault injection ("nemesis") for the simulated cluster.

    A schedule is a list of [(time, fault)] entries applied against the
    running cluster's discrete-event clock — crash the primary at 200 ms,
    cut {0,1} off from {2,3} for 100 ms, open a 2% loss window, and so on.
    Schedules live in {!Params.t} (field [nemesis]), so any experiment can
    be made adversarial without code changes; {!Cluster.create} installs
    them automatically.

    Times are absolute simulation time (warmup starts at 0), in
    nanoseconds; {!at_ms} and the [*_window] helpers cover the common
    cases. *)

type fault =
  | Crash_primary
      (** crash whatever replica is primary at the scheduled instant *)
  | Crash of int  (** crash one replica (fail-stop) *)
  | Recover of int
  | Partition of { name : string; side_a : int list; side_b : int list }
      (** cut all traffic between the two (disjoint) replica sets *)
  | Heal of string  (** remove the named partition *)
  | Loss of float  (** set the global per-message drop probability *)
  | Duplication of float  (** set the global duplication probability *)
  | Extra_jitter of Rdb_des.Sim.time
      (** set the additional reordering jitter on every link *)

type entry = { at : Rdb_des.Sim.time; fault : fault }

type schedule = entry list

val at : Rdb_des.Sim.time -> fault -> entry

val at_ms : float -> fault -> entry

val loss_window : from_:Rdb_des.Sim.time -> until:Rdb_des.Sim.time -> float -> schedule
(** Loss at the given rate between [from_] and [until], then back to 0. *)

val duplication_window :
  from_:Rdb_des.Sim.time -> until:Rdb_des.Sim.time -> float -> schedule

val partition_window :
  from_:Rdb_des.Sim.time ->
  until:Rdb_des.Sim.time ->
  name:string ->
  int list ->
  int list ->
  schedule
(** Named partition installed at [from_] and healed at [until]. *)

val crash_primary_at : Rdb_des.Sim.time -> schedule

val describe : fault -> string

val pp_fault : Format.formatter -> fault -> unit

val validate : n:int -> schedule -> unit
(** Raises [Invalid_argument] on out-of-range replica ids, overlapping
    partition sides, rates outside [\[0, 1)] or negative times. *)

(** {2 Driving a schedule}

    The cluster exposes itself as a narrow capability record; {!install}
    schedules every entry on the DES clock. *)

type driver = {
  sim : Rdb_des.Sim.t;
  current_primary : unit -> int;
  crash : int -> unit;
  recover : int -> unit;
  partition : name:string -> int list -> int list -> unit;
  heal : name:string -> unit;
  set_loss : float -> unit;
  set_duplication : float -> unit;
  set_extra_jitter : Rdb_des.Sim.time -> unit;
  note : fault -> unit;  (** observation hook, fired as each fault is injected *)
}

val apply : driver -> fault -> unit
(** Inject one fault immediately. *)

val install : driver -> schedule -> unit
(** Schedule every entry of the schedule on [driver.sim]. *)

(** The paper's Fig. 7 upper-bound measurement: no consensus protocol, no
    inter-replica communication, no ordering.  Clients send requests to the
    primary, two independent threads process them (optionally executing the
    operation), and a response goes straight back.  This bounds what any
    protocol on the same fabric could achieve. *)

module Sim = Rdb_des.Sim
module Rng = Rdb_des.Rng
module Cpu = Rdb_des.Cpu
module Stats = Rdb_des.Stats
module Stage = Rdb_replica.Stage
module Net = Rdb_net.Net
module Cost = Rdb_crypto.Cost_model

type msg =
  | Requests of { txn_ids : int array }
  | Responses of { txn_ids : int array }

type result = {
  throughput_tps : float;
  latency : Stats.t;
}

let run ~(p : Params.t) ~execute () =
  let sim = Sim.create () in
  let rng = Rng.create p.Params.seed in
  let cpu = Cpu.create ~cs_alpha:p.Params.cost.Cost.context_switch_alpha sim ~cores:p.Params.cores in
  let workers = Stage.create sim ~cpu ~name:"worker" ~workers:2 () in
  let latencies = Stats.create () in
  let submit_time = Hashtbl.create 4096 in
  let next_txn = ref 0 in
  let completed = ref 0 in
  let measuring = ref false in
  let net = ref None in
  let the_net () = match !net with Some n -> n | None -> assert false in
  let client_node = 1 in
  let fresh k =
    Array.init k (fun _ ->
        let id = !next_txn in
        incr next_txn;
        id)
  in
  let submit txn_ids =
    let now = Sim.now sim in
    Array.iter (fun id -> Hashtbl.replace submit_time id now) txn_ids;
    Net.send (the_net ()) ~src:client_node ~dst:0
      ~bytes:(Array.length txn_ids * (p.Params.txn_wire_bytes + 64))
      (Requests { txn_ids })
  in
  let cost = p.Params.cost in
  let per_txn =
    cost.Cost.msg_handle + cost.Cost.reply_per_txn + cost.Cost.out_handle
    + Cost.sign_cost cost p.Params.reply_scheme
    + (if execute then Cost.execute_cost cost ~sqlite:p.Params.sqlite ~ops:p.Params.ops_per_txn else 0)
  in
  let deliver ~dst ~src payload =
    ignore src;
    match payload with
    | Requests { txn_ids } when dst = 0 ->
      let k = Array.length txn_ids in
      Stage.enqueue workers ~service:(k * per_txn) (fun () ->
          Net.send (the_net ()) ~src:0 ~dst:client_node ~bytes:(k * 96) (Responses { txn_ids }))
    | Responses { txn_ids } ->
      let now = Sim.now sim in
      if !measuring then begin
        completed := !completed + Array.length txn_ids;
        Array.iter
          (fun id ->
            match Hashtbl.find_opt submit_time id with
            | Some s -> Stats.add latencies (Sim.to_seconds (now - s))
            | None -> ())
          txn_ids
      end;
      Array.iter (Hashtbl.remove submit_time) txn_ids;
      submit (fresh (Array.length txn_ids))
    | Requests _ -> ()
  in
  let n =
    Net.create sim ~nodes:2 ~bandwidth_gbps:p.Params.bandwidth_gbps ~latency:p.Params.latency
      ~jitter:p.Params.jitter ~rng:(Rng.split rng) ~deliver ()
  in
  net := Some n;
  (* Seed the closed loop in groups to bound event counts. *)
  let group = 100 in
  let remaining = ref p.Params.clients in
  let stagger = Sim.ms 50.0 in
  let groups = (p.Params.clients + group - 1) / group in
  let i = ref 0 in
  while !remaining > 0 do
    let k = min group !remaining in
    remaining := !remaining - k;
    let at = !i * stagger / max 1 groups in
    incr i;
    ignore (Sim.schedule_at sim ~at (fun () -> submit (fresh k)))
  done;
  Sim.run ~until:p.Params.warmup sim;
  measuring := true;
  let t0 = Sim.now sim in
  Sim.run ~until:(p.Params.warmup + p.Params.measure) sim;
  let window = Sim.to_seconds (Sim.now sim - t0) in
  { throughput_tps = (if window > 0.0 then float_of_int !completed /. window else 0.0); latency = latencies }

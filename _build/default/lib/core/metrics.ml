(** Results of one simulated cluster run. *)

module Stats = Rdb_des.Stats

type stage_saturation = { stage : string; percent : float }

(** Fault-injection accounting, over the whole run (not just the measured
    window): how hostile the network was and how the cluster coped. *)
type faults = {
  msgs_dropped : int;  (** by crash + loss + partition, at the network *)
  msgs_duplicated : int;
  retransmissions : int;  (** client request re-sends (with backoff) *)
  view_changes : int;  (** completed view changes (final view number) *)
  time_to_recovery_s : float;
      (** primary crash to the first client completion afterwards;
          negative when no primary crash was injected or nothing completed *)
}

let no_faults =
  {
    msgs_dropped = 0;
    msgs_duplicated = 0;
    retransmissions = 0;
    view_changes = 0;
    time_to_recovery_s = -1.0;
  }

type replica_report = {
  replica : int;
  is_primary : bool;
  stages : stage_saturation list;
  cpu_utilization : float;  (** fraction of core capacity used, 0..1 *)
}

type t = {
  throughput_tps : float;  (** transactions completed per second, measured window *)
  ops_per_second : float;  (** operations completed per second *)
  latency : Stats.t;  (** seconds, per transaction *)
  completed_txns : int;
  fast_path_txns : int;  (** Zyzzyva: completed with 3f+1 matching replies *)
  cert_path_txns : int;  (** Zyzzyva: completed through a commit certificate *)
  replicas : replica_report list;
  messages_sent : int;
  bytes_sent : int;
  ledger_blocks : int;  (** blocks appended at replica 0 during the run *)
  faults : faults;
}

let latency_avg t = Stats.mean t.latency

let pp ppf t =
  Format.fprintf ppf
    "@[<v>throughput: %.0f txn/s (%.0f op/s)@ latency: avg %.4fs p50 %.4fs p99 %.4fs@ completed: %d (fast %d, cert %d)@ network: %d msgs, %.1f MB@ blocks: %d"
    t.throughput_tps t.ops_per_second (Stats.mean t.latency)
    (Stats.percentile t.latency 50.0)
    (Stats.percentile t.latency 99.0)
    t.completed_txns t.fast_path_txns t.cert_path_txns t.messages_sent
    (float_of_int t.bytes_sent /. 1e6)
    t.ledger_blocks;
  if t.faults <> no_faults then
    Format.fprintf ppf
      "@ faults: %d dropped, %d duplicated, %d retransmissions, %d view changes%s"
      t.faults.msgs_dropped t.faults.msgs_duplicated t.faults.retransmissions
      t.faults.view_changes
      (if t.faults.time_to_recovery_s >= 0.0 then
         Printf.sprintf ", recovered in %.3fs" t.faults.time_to_recovery_s
       else "");
  Format.fprintf ppf "@]"

let pp_saturation ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "@[replica %d%s cpu %.0f%%:" r.replica
        (if r.is_primary then " (primary)" else "")
        (100.0 *. r.cpu_utilization);
      List.iter (fun s -> Format.fprintf ppf " %s=%.0f%%" s.stage s.percent) r.stages;
      Format.fprintf ppf "@]@ ")
    t.replicas

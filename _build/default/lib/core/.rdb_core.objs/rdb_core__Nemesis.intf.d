lib/core/nemesis.mli: Format Rdb_des

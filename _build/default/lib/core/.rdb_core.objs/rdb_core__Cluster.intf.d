lib/core/cluster.mli: Metrics Nemesis Params Rdb_des

lib/core/cluster.mli: Metrics Params Rdb_des

lib/core/metrics.ml: Format List Printf Rdb_des

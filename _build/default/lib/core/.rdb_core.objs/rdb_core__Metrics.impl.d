lib/core/metrics.ml: Format List Rdb_des

lib/core/local_runtime.ml: Array Hashtbl List Printf Queue Rdb_chain Rdb_consensus Rdb_crypto Rdb_des Rdb_storage String

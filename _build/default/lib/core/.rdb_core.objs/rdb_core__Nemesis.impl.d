lib/core/nemesis.ml: Format List Printf Rdb_des String

lib/core/cluster.ml: Array Hashtbl List Metrics Nemesis Params Printf Queue Rdb_chain Rdb_consensus Rdb_crypto Rdb_des Rdb_net Rdb_replica String

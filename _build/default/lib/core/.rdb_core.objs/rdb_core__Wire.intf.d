lib/core/wire.mli: Rdb_consensus Rdb_crypto

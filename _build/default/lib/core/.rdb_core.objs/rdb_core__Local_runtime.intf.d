lib/core/local_runtime.mli: Rdb_chain Rdb_storage

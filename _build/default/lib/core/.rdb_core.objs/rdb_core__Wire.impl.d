lib/core/wire.ml: Buffer Char List Printf Rdb_consensus Rdb_crypto String

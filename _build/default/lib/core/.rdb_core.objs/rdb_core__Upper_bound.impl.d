lib/core/upper_bound.ml: Array Hashtbl Params Rdb_crypto Rdb_des Rdb_net Rdb_replica

lib/core/params.ml: Nemesis Rdb_crypto Rdb_des

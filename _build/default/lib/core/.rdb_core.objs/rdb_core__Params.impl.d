lib/core/params.ml: Rdb_crypto Rdb_des

(** The simulated ResilientDB deployment (see the module comment in the
    implementation for the full model description).

    One call to {!run} builds the cluster of {!Params.t}, drives the
    closed-loop client population through warmup and measurement windows
    under the deterministic discrete-event clock, and returns the measured
    {!Metrics.t}.  Runs are bit-reproducible for a given parameter set. *)

type t

val create : Params.t -> t
(** Builds replicas, network and client pool; validates the parameters. *)

val start : t -> unit
(** Seeds the client population (staggered over the first 50 ms). *)

val sim : t -> Rdb_des.Sim.t
(** The simulation clock, for callers that drive time manually. *)

val debug_dump : t -> unit
(** One-line diagnostic snapshot (queue depths, instance counts) to stdout. *)

val run : Params.t -> Metrics.t
(** [create] + [start] + run to [warmup + measure], returning the metrics
    of the measurement window. *)

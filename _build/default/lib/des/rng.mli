(** Deterministic pseudo-random number generation for simulations.

    The generator is SplitMix64: tiny state, excellent statistical quality
    for simulation purposes, and — crucially for reproducibility — fully
    deterministic given a seed.  Every stochastic component of the simulator
    owns its own [t] split off a root generator, so adding a new component
    never perturbs the random stream of existing ones. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then evolve
    independently but identically if driven identically. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (> 0). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

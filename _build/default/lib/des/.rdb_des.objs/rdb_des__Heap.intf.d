lib/des/heap.mli:

lib/des/stats.mli: Format

lib/des/rng.mli:

lib/des/sim.ml: Heap List

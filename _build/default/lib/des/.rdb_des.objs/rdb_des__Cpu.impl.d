lib/des/cpu.ml: List Queue Sim

lib/des/stats.ml: Array Format List Stdlib

lib/des/cpu.mli: Sim

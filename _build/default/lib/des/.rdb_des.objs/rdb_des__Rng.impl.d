lib/des/rng.ml: Array Int64

lib/des/sim.mli:

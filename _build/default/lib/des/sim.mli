(** Deterministic discrete-event simulation engine.

    Time is measured in integer nanoseconds, so experiment outputs are exact
    and bit-reproducible.  Events scheduled for the same instant fire in
    scheduling order (FIFO tie-break), which keeps multi-component models
    deterministic without any hidden ordering assumptions. *)

type t

type time = int
(** Nanoseconds since simulation start. *)

type event
(** Handle for a scheduled event; allows cancellation (e.g. timeouts). *)

val ns : int -> time
val us : float -> time
val ms : float -> time
val seconds : float -> time

val to_seconds : time -> float

val create : unit -> t

val now : t -> time

val schedule : t -> after:time -> (unit -> unit) -> event
(** [schedule t ~after f] runs [f] at [now t + after]. [after] must be
    non-negative. *)

val schedule_at : t -> at:time -> (unit -> unit) -> event
(** [schedule_at t ~at f] runs [f] at absolute time [at >= now t]. *)

val cancel : event -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val cancelled : event -> bool

val run : ?until:time -> t -> unit
(** Processes events in time order.  Stops when the queue drains, or at
    [until] (events at exactly [until] are processed). *)

val step : t -> bool
(** Processes a single event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

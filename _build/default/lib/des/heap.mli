(** Minimal binary min-heap, specialised by a client-supplied ordering.

    Used as the event queue of the simulator and as a priority queue in a few
    other places.  All operations are the classic O(log n); [peek] is O(1). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option

val pop : 'a t -> 'a option
(** Removes and returns the minimum element, or [None] when empty. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in unspecified order. *)

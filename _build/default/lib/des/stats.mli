(** Online statistics accumulators used by the experiment harness.

    [t] tracks count / mean / variance (Welford) / min / max incrementally and
    keeps the raw samples for exact percentile queries.  For the experiment
    sizes in this repository (at most a few million samples per run) keeping
    the samples is cheap and avoids approximation arguments in the results. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance; 0 with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], nearest-rank method.
    [nan] when empty. *)

val median : t -> float

val merge : t -> t -> t
(** Fresh accumulator holding the union of samples. *)

val pp : Format.formatter -> t -> unit

(** Fixed-bucket histogram, used for latency distribution reporting. *)
module Histogram : sig
  type h

  val create : buckets:float array -> h
  (** [buckets] are the upper bounds of each bucket, strictly increasing;
      an implicit overflow bucket catches the rest. *)

  val add : h -> float -> unit

  val counts : h -> int array
  (** Length is [Array.length buckets + 1]; last slot is the overflow. *)

  val pp : Format.formatter -> h -> unit
end

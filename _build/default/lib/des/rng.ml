type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split t = create (next_raw t)

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for simulation purposes: modulo bias is negligible for
     bounds far below 2^62.  Keep 62 bits so the native conversion stays
     non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  v mod bound

let float t =
  (* 53 random bits mapped to [0,1). *)
  let bits = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t in
  -. mean *. log (1.0 -. u)

let bool t = Int64.logand (next_raw t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

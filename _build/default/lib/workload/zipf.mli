(** Zipfian item selection over [\[0, n)], as used by YCSB.

    Implements the constant-time sampler of Gray et al. ("Quickly generating
    billion-record synthetic databases", SIGMOD '94) — the same algorithm
    YCSB's [ZipfianGenerator] uses: an O(n) precomputation of the harmonic
    number zeta(n, theta), then O(1) per sample.

    [theta = 0] degenerates to the uniform distribution, matching the
    paper's "uniform Zipfian" workload description when run with a small
    skew. *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** [theta] in [\[0, 1)]; default 0.99 (the YCSB default). *)

val sample : t -> Rdb_des.Rng.t -> int
(** An index in [\[0, n)]; item 0 is the most popular. *)

val n : t -> int

val theta : t -> float

(** The YCSB benchmark workload (Cooper et al., SoCC '10) as used by the
    paper's evaluation: a single table with an active set of records, keys
    drawn from a Zipfian distribution, and write-only transactions ("a
    majority of blockchain requests are updates to the existing data",
    §5.1).

    A workload instance is a deterministic transaction factory; replicas
    apply the produced operations against any {!type:store}. *)

type op =
  | Write of { key : string; value : string }
  | Read of { key : string }

type txn = {
  txn_id : int;  (** globally unique, assigned by the generator *)
  client : int;
  ops : op list;
  payload_bytes : int;  (** extra opaque payload carried by the request *)
}

type t

(** The standard YCSB core workload mixes.  The paper's evaluation uses a
    write-only variant ("a majority of blockchain requests are updates"). *)
type preset =
  | Workload_a  (** 50% read / 50% update, Zipfian *)
  | Workload_b  (** 95% read / 5% update, Zipfian *)
  | Workload_c  (** read-only, Zipfian *)
  | Write_only  (** the paper's blockchain mix *)

val preset_write_ratio : preset -> float

val of_preset : ?records:int -> ?ops_per_txn:int -> preset -> seed:int64 -> t

val create :
  ?records:int ->
  ?field_size:int ->
  ?theta:float ->
  ?ops_per_txn:int ->
  ?payload_bytes:int ->
  ?write_ratio:float ->
  seed:int64 ->
  unit ->
  t
(** Defaults mirror the paper's setup: 600_000 records, 100-byte values,
    Zipfian key choice, 1 operation per transaction, no extra payload,
    write-only ([write_ratio = 1.0]). *)

val records : t -> int

val next_txn : t -> client:int -> txn
(** Deterministic stream: equal seeds and call sequences give equal
    transactions. *)

val key_of_index : int -> string
(** The canonical key encoding shared by generators and table loaders. *)

val load_table : t -> (string -> string -> unit) -> unit
(** [load_table t put] installs the initial record set by calling [put] for
    each record — used to give every replica an identical starting table. *)

val apply_op : get:(string -> string option) -> put:(string -> string -> unit) -> op -> unit
(** Executes one operation against a store. *)

val txn_wire_size : txn -> int
(** Bytes this transaction occupies in a request message (keys, values,
    payload, fixed header). *)

type op =
  | Write of { key : string; value : string }
  | Read of { key : string }

type txn = { txn_id : int; client : int; ops : op list; payload_bytes : int }

type t = {
  records : int;
  field_size : int;
  ops_per_txn : int;
  payload_bytes : int;
  write_ratio : float;
  zipf : Zipf.t;
  rng : Rdb_des.Rng.t;
  mutable next_id : int;
}

let create ?(records = 600_000) ?(field_size = 100) ?(theta = 0.99) ?(ops_per_txn = 1)
    ?(payload_bytes = 0) ?(write_ratio = 1.0) ~seed () =
  if records <= 0 then invalid_arg "Ycsb.create: records must be positive";
  if ops_per_txn <= 0 then invalid_arg "Ycsb.create: ops_per_txn must be positive";
  if write_ratio < 0.0 || write_ratio > 1.0 then invalid_arg "Ycsb.create: bad write_ratio";
  {
    records;
    field_size;
    ops_per_txn;
    payload_bytes;
    write_ratio;
    zipf = Zipf.create ~theta ~n:records ();
    rng = Rdb_des.Rng.create seed;
    next_id = 0;
  }

type preset = Workload_a | Workload_b | Workload_c | Write_only

let preset_write_ratio = function
  | Workload_a -> 0.5
  | Workload_b -> 0.05
  | Workload_c -> 0.0
  | Write_only -> 1.0

let records t = t.records

let key_of_index i = Printf.sprintf "user%010d" i

let of_preset ?records ?ops_per_txn preset ~seed =
  create ?records ?ops_per_txn ~write_ratio:(preset_write_ratio preset) ~seed ()

(* Deterministic field content: cheap to generate, unique per write. *)
let value_of t txn_id op_idx =
  let stamp = Printf.sprintf "%d.%d|" txn_id op_idx in
  let pad = t.field_size - String.length stamp in
  if pad <= 0 then String.sub stamp 0 t.field_size else stamp ^ String.make pad 'x'

let next_txn t ~client =
  let txn_id = t.next_id in
  t.next_id <- t.next_id + 1;
  let ops =
    List.init t.ops_per_txn (fun op_idx ->
        let key = key_of_index (Zipf.sample t.zipf t.rng) in
        if Rdb_des.Rng.float t.rng < t.write_ratio then
          Write { key; value = value_of t txn_id op_idx }
        else Read { key })
  in
  { txn_id; client; ops; payload_bytes = t.payload_bytes }

let load_table t put =
  for i = 0 to t.records - 1 do
    put (key_of_index i) (String.make t.field_size 'i')
  done

let apply_op ~get ~put = function
  | Write { key; value } -> put key value
  | Read { key } -> ignore (get key)

let op_wire_size = function
  | Write { key; value } -> 1 + String.length key + String.length value
  | Read { key } -> 1 + String.length key

let txn_wire_size (txn : txn) =
  (* 16-byte fixed header: txn id, client id. *)
  16 + txn.payload_bytes + List.fold_left (fun acc op -> acc + op_wire_size op) 0 txn.ops

lib/workload/zipf.ml: Float Rdb_des

lib/workload/ycsb.ml: List Printf Rdb_des String Zipf

lib/workload/ycsb.mli:

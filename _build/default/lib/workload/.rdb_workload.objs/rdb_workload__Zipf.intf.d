lib/workload/zipf.mli: Rdb_des

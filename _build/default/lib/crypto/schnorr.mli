(** Schnorr signatures over a prime-order subgroup of Z_p*.

    This is the repository's ED25519 stand-in (see DESIGN.md §3): no
    elliptic-curve library is available offline, and Schnorr preserves the
    structure that matters to the system — short DL-based signatures with
    one modular exponentiation to sign and two to verify, providing
    non-repudiation (unlike MACs).  The simulator charges ED25519 costs from
    {!Cost_model}; this module makes the signing path real and testable.

    Domain parameters are DSA-style: primes [p], [q] with [q | p - 1] and a
    generator [g] of the order-[q] subgroup, generated deterministically. *)

type params = { p : Bignum.t; q : Bignum.t; g : Bignum.t }

type public
type secret

type keypair = { public : public; secret : secret }

val generate_params : Rdb_des.Rng.t -> p_bits:int -> q_bits:int -> params
(** Real DSA-style parameter generation: find a prime [q], then search for
    [p = q*k + 1] prime, then [g = h^((p-1)/q) <> 1]. *)

val default_params : unit -> params
(** 256-bit [p], 160-bit [q], generated deterministically from a fixed seed
    and memoized.  Small by production standards; see the module comment. *)

val generate : Rdb_des.Rng.t -> params -> keypair

val sign : Rdb_des.Rng.t -> secret -> string -> string
(** Signature is [e || s], each element padded to the byte width of [q]. *)

val verify : public -> string -> signature:string -> bool

val signature_size : params -> int

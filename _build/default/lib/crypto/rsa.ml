type public = { n : Bignum.t; e : Bignum.t }
type secret = { sn : Bignum.t; d : Bignum.t }
type keypair = { public : public; secret : secret }

let e_default = Bignum.of_int 65537

(* Hash the message, then expand the digest to just below the modulus width
   (a simple deterministic MGF), so the signing base covers the full domain. *)
let encode_message n msg =
  let n_bytes = (Bignum.bit_length n + 7) / 8 in
  let digest = Sha256.digest msg in
  let buf = Buffer.create n_bytes in
  let counter = ref 0 in
  while Buffer.length buf < n_bytes do
    Buffer.add_string buf (Sha256.digest (digest ^ string_of_int !counter));
    incr counter
  done;
  let expanded = String.sub (Buffer.contents buf) 0 n_bytes in
  (* Clear the top byte so the value is < n. *)
  let expanded = "\x00" ^ String.sub expanded 1 (n_bytes - 1) in
  Bignum.of_bytes_be expanded

let generate rng ~bits =
  if bits < 10 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec go () =
    let p = Bignum.generate_prime rng ~bits:half in
    let q = Bignum.generate_prime rng ~bits:(bits - half) in
    if Bignum.equal p q then go ()
    else begin
      let n = Bignum.mul p q in
      let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
      match Bignum.mod_inverse e_default phi with
      | None -> go ()
      | Some d -> { public = { n; e = e_default }; secret = { sn = n; d } }
    end
  in
  go ()

let sign secret msg =
  let m = encode_message secret.sn msg in
  let s = Bignum.mod_pow m secret.d secret.sn in
  let n_bytes = (Bignum.bit_length secret.sn + 7) / 8 in
  Bignum.to_bytes_be ~pad_to:n_bytes s

let verify public msg ~signature =
  let s = Bignum.of_bytes_be signature in
  if Bignum.compare s public.n >= 0 then false
  else begin
    let recovered = Bignum.mod_pow s public.e public.n in
    Bignum.equal recovered (encode_message public.n msg)
  end

let signature_size public = (Bignum.bit_length public.n + 7) / 8

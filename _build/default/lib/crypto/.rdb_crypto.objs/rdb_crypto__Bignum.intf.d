lib/crypto/bignum.mli: Format Rdb_des

lib/crypto/cmac.ml: Aes128 Bytes Char String

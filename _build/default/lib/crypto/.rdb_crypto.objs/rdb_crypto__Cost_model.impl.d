lib/crypto/cost_model.ml: Signer

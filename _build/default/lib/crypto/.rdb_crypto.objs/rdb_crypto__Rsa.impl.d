lib/crypto/rsa.ml: Bignum Buffer Sha256 String

lib/crypto/cmac.mli:

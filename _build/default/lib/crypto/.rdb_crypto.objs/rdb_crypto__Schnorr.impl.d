lib/crypto/schnorr.ml: Bignum Lazy Rdb_des Sha256 String

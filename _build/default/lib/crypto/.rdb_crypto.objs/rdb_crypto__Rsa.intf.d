lib/crypto/rsa.mli: Bignum Rdb_des

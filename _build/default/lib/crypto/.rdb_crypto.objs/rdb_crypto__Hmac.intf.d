lib/crypto/hmac.mli:

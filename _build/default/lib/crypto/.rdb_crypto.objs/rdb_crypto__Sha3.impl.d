lib/crypto/sha3.ml: Array Bytes Char Int64 Sha256 String

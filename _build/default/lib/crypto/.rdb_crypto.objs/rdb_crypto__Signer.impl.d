lib/crypto/signer.ml: Cmac Rdb_des Rsa Schnorr

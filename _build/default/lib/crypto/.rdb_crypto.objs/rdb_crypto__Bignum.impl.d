lib/crypto/bignum.ml: Array Buffer Bytes Char Format Int64 List Rdb_des Stdlib String

lib/crypto/schnorr.mli: Bignum Rdb_des

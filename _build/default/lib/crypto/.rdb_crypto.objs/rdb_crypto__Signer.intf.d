lib/crypto/signer.mli: Rdb_des

(* Little-endian arrays of 31-bit limbs, always normalized (no trailing zero
   limb); zero is the empty array.  31-bit limbs keep every intermediate
   product and dividend estimate within OCaml's 63-bit native int. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero t = Array.length t = 0

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  if n = 0 then zero
  else begin
    let rec limbs n = if n = 0 then [] else (n land limb_mask) :: limbs (n lsr limb_bits) in
    Array.of_list (limbs n)
  end

let to_int t =
  (* A native int holds at most 62 value bits: two limbs always fit. *)
  match Array.length t with
  | 0 -> Some 0
  | 1 -> Some t.(0)
  | 2 -> Some ((t.(1) lsl limb_bits) lor t.(0))
  | 3 when t.(2) = 0 -> Some ((t.(1) lsl limb_bits) lor t.(0))
  | _ -> None

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let is_even t = Array.length t = 0 || t.(0) land 1 = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let acc = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- acc land limb_mask;
        carry := acc lsr limb_bits
      done;
      (* Propagate the final carry (it can span multiple limbs). *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let acc = out.(!k) + !carry in
        out.(!k) <- acc land limb_mask;
        carry := acc lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

let bit_length t =
  let n = Array.length t in
  if n = 0 then 0
  else begin
    let top = t.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let test_bit t i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length t && (t.(limb) lsr off) land 1 = 1

let shift_left t k =
  if k < 0 then invalid_arg "Bignum.shift_left";
  if is_zero t || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t in
    let out = Array.make (n + limbs + 1) 0 in
    for i = 0 to n - 1 do
      let v = t.(i) lsl bits in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- out.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    normalize out
  end

let shift_right t k =
  if k < 0 then invalid_arg "Bignum.shift_right";
  if is_zero t || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t in
    if limbs >= n then zero
    else begin
      let m = n - limbs in
      let out = Array.make m 0 in
      for i = 0 to m - 1 do
        let lo = t.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < n then (t.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
        out.(i) <- if bits = 0 then t.(i + limbs) else lo lor hi
      done;
      normalize out
    end
  end

(* Knuth Algorithm D (Hacker's Delight divmnu), base 2^31. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    (* Short division by a single limb. *)
    let d = b.(0) in
    let n = Array.length a in
    let q = Array.make n 0 in
    let r = ref 0 in
    for i = n - 1 downto 0 do
      let cur = (!r lsl limb_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (normalize q, of_int !r)
  end
  else begin
    let n = Array.length b in
    let m = Array.length a - n in
    (* Normalize so the top divisor limb has its high bit set. *)
    let shift = limb_bits - bit_length [| b.(n - 1) |] in
    let u =
      let s = shift_left a shift in
      let arr = Array.make (Array.length a + n + 2) 0 in
      Array.blit s 0 arr 0 (Array.length s);
      arr
    in
    let v =
      let s = shift_left b shift in
      let arr = Array.make n 0 in
      Array.blit s 0 arr 0 (Array.length s);
      arr
    in
    let q = Array.make (m + 1) 0 in
    for j = m downto 0 do
      let top = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let qhat = ref (top / v.(n - 1)) in
      let rhat = ref (top mod v.(n - 1)) in
      let continue = ref true in
      while
        !continue
        && (!qhat >= base
           || !qhat * v.(n - 2) > (!rhat lsl limb_bits) lor u.(j + n - 2))
      do
        decr qhat;
        rhat := !rhat + v.(n - 1);
        if !rhat >= base then continue := false
      done;
      (* Multiply and subtract. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * v.(i) + !carry in
        carry := p lsr limb_bits;
        let d = u.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          u.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          u.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back. *)
        u.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !c in
          u.(i + j) <- s land limb_mask;
          c := s lsr limb_bits
        done;
        u.(j + n) <- (u.(j + n) + !c) land limb_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let of_hex s =
  let s =
    let s = if String.length s >= 2 && (s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')) then String.sub s 2 (String.length s - 2) else s in
    String.concat "" (String.split_on_char '_' s)
  in
  let value c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bignum.of_hex: invalid character"
  in
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 4) (of_int (value c))) s;
  !acc

let to_hex t =
  if is_zero t then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod v (of_int 16) in
        go q;
        let d = match to_int r with Some d -> d | None -> assert false in
        Buffer.add_char buf "0123456789abcdef".[d]
      end
    in
    go t;
    Buffer.contents buf
  end

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ?pad_to t =
  let n_bytes = (bit_length t + 7) / 8 in
  let n_bytes = max n_bytes 1 in
  let buf = Bytes.make n_bytes '\x00' in
  let v = ref t in
  for i = n_bytes - 1 downto 0 do
    let q, r = divmod !v (of_int 256) in
    let d = match to_int r with Some d -> d | None -> assert false in
    Bytes.set buf i (Char.chr d);
    v := q
  done;
  let s = Bytes.unsafe_to_string buf in
  match pad_to with
  | None -> s
  | Some w when w <= n_bytes -> s
  | Some w -> String.make (w - n_bytes) '\x00' ^ s

let mod_pow b e m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let result = ref one in
    let b = ref (rem b m) in
    let nbits = bit_length e in
    for i = 0 to nbits - 1 do
      if test_bit e i then result := rem (mul !result !b) m;
      if i < nbits - 1 then b := rem (mul !b !b) m
    done;
    !result
  end

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  if compare a b >= 0 then go a b else go b a

(* Extended Euclid over naturals, tracking signs of the Bezout coefficient
   for [a] explicitly. *)
let mod_inverse a m =
  if is_zero m then invalid_arg "Bignum.mod_inverse: zero modulus";
  let a = rem a m in
  if is_zero a then None
  else begin
    (* Invariants: r0 = x0*a mod m (with sign s0), r1 = x1*a mod m. *)
    let rec go r0 x0 s0 r1 x1 s1 =
      if is_zero r1 then
        if equal r0 one then
          let x = if s0 then sub m (rem x0 m) else rem x0 m in
          Some (rem x m)
        else None
      else begin
        let q, r2 = divmod r0 r1 in
        (* x2 = x0 - q*x1, tracking sign. *)
        let qx1 = mul q x1 in
        let x2, s2 =
          if s0 = s1 then
            if compare x0 qx1 >= 0 then (sub x0 qx1, s0)
            else (sub qx1 x0, not s0)
          else (add x0 qx1, s0)
        in
        go r1 x1 s1 r2 x2 s2
      end
    in
    go m zero false a one false
  end

let random_bits rng bits =
  if bits < 1 then invalid_arg "Bignum.random_bits";
  let n_limbs = ((bits - 1) / limb_bits) + 1 in
  let out = Array.make n_limbs 0 in
  for i = 0 to n_limbs - 1 do
    out.(i) <- Int64.to_int (Int64.logand (Rdb_des.Rng.int64 rng) (Int64.of_int limb_mask))
  done;
  (* Clear bits above the requested width, then force the top bit. *)
  let top = (bits - 1) mod limb_bits in
  let top_limb = (bits - 1) / limb_bits in
  out.(top_limb) <- out.(top_limb) land ((1 lsl (top + 1)) - 1);
  out.(top_limb) <- out.(top_limb) lor (1 lsl top);
  for i = top_limb + 1 to n_limbs - 1 do
    out.(i) <- 0
  done;
  normalize out

let random_below rng bound =
  if is_zero bound then invalid_arg "Bignum.random_below: zero bound";
  let bits = bit_length bound in
  let rec try_once () =
    let n_limbs = ((bits - 1) / limb_bits) + 1 in
    let out = Array.make n_limbs 0 in
    for i = 0 to n_limbs - 1 do
      out.(i) <- Int64.to_int (Int64.logand (Rdb_des.Rng.int64 rng) (Int64.of_int limb_mask))
    done;
    let top = (bits - 1) mod limb_bits in
    let top_limb = (bits - 1) / limb_bits in
    out.(top_limb) <- out.(top_limb) land ((1 lsl (top + 1)) - 1);
    for i = top_limb + 1 to n_limbs - 1 do
      out.(i) <- 0
    done;
    let v = normalize out in
    if compare v bound < 0 then v else try_once ()
  in
  try_once ()

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223; 227; 229 ]

let is_probable_prime ?(rounds = 24) rng n =
  if compare n two < 0 then false
  else if equal n two then true
  else if is_even n then false
  else begin
    let divisible_by_small =
      List.exists
        (fun p ->
          let p = of_int p in
          if compare n p <= 0 then false else is_zero (rem n p))
        small_primes
    in
    let is_small_prime = List.exists (fun p -> equal n (of_int p)) small_primes in
    if is_small_prime then true
    else if divisible_by_small then false
    else begin
      (* n-1 = 2^s * d with d odd. *)
      let n_minus_1 = sub n one in
      let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
      let d, s = split n_minus_1 0 in
      let witness_passes a =
        let x = mod_pow a d n in
        if equal x one || equal x n_minus_1 then true
        else begin
          let rec loop x i =
            if i >= s - 1 then false
            else begin
              let x = rem (mul x x) n in
              if equal x n_minus_1 then true else loop x (i + 1)
            end
          in
          loop x 0
        end
      in
      let rec rounds_loop i =
        if i >= rounds then true
        else begin
          let a = add two (random_below rng (sub n (of_int 4))) in
          if witness_passes a then rounds_loop (i + 1) else false
        end
      in
      rounds_loop 0
    end
  end

let generate_prime rng ~bits =
  if bits < 4 then invalid_arg "Bignum.generate_prime: need at least 4 bits";
  let rec go () =
    let candidate = random_bits rng bits in
    let candidate = if is_even candidate then add candidate one else candidate in
    if bit_length candidate = bits && is_probable_prime rng candidate then candidate
    else go ()
  in
  go ()

let pp ppf t = Format.pp_print_string ppf (to_hex t)

type scheme = No_sig | Cmac_aes | Ed25519 | Rsa

let scheme_name = function
  | No_sig -> "none"
  | Cmac_aes -> "cmac-aes"
  | Ed25519 -> "ed25519"
  | Rsa -> "rsa"

(* All CMAC-based nodes share one group secret, as in a permissioned
   deployment where pairwise keys are distributed at membership time. *)
let group_secret = "ResilientDB-grp!"

type t =
  | S_none
  | S_mac of Cmac.key
  | S_schnorr of { rng : Rdb_des.Rng.t; kp : Schnorr.keypair }
  | S_rsa of Rsa.keypair

type verifier =
  | V_none
  | V_mac of Cmac.key
  | V_schnorr of Schnorr.public
  | V_rsa of Rsa.public

let create rng = function
  | No_sig -> S_none
  | Cmac_aes -> S_mac (Cmac.of_secret group_secret)
  | Ed25519 ->
    let kp = Schnorr.generate rng (Schnorr.default_params ()) in
    S_schnorr { rng = Rdb_des.Rng.split rng; kp }
  | Rsa -> S_rsa (Rsa.generate rng ~bits:512)

let scheme = function
  | S_none -> No_sig
  | S_mac _ -> Cmac_aes
  | S_schnorr _ -> Ed25519
  | S_rsa _ -> Rsa

let verifier = function
  | S_none -> V_none
  | S_mac k -> V_mac k
  | S_schnorr { kp; _ } -> V_schnorr kp.Schnorr.public
  | S_rsa kp -> V_rsa kp.Rsa.public

let sign t msg =
  match t with
  | S_none -> ""
  | S_mac k -> Cmac.mac k msg
  | S_schnorr { rng; kp } -> Schnorr.sign rng kp.Schnorr.secret msg
  | S_rsa kp -> Rsa.sign kp.Rsa.secret msg

let verify v msg ~signature =
  match v with
  | V_none -> true
  | V_mac k -> Cmac.verify k msg ~tag:signature
  | V_schnorr pub -> Schnorr.verify pub msg ~signature
  | V_rsa pub -> Rsa.verify pub msg ~signature

let signature_size = function
  | No_sig -> 0
  | Cmac_aes -> 16
  | Ed25519 -> 64
  | Rsa -> 256

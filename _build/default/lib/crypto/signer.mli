(** Uniform message-authentication façade over the four schemes the paper's
    Fig. 13 compares: none, CMAC+AES, ED25519-class digital signatures
    (Schnorr stand-in, see {!Schnorr}), and RSA.

    In the permissioned setting all identities are known a priori, so
    verifiers (public keys, or the shared MAC secret) are exchanged during
    system setup — exactly the paper's deployment model. *)

type scheme =
  | No_sig  (** sign/verify are no-ops; unsafe, used only as a baseline *)
  | Cmac_aes  (** symmetric; fast; no non-repudiation *)
  | Ed25519  (** digital signature; the paper's client/replica default *)
  | Rsa  (** digital signature; slow signing *)

val scheme_name : scheme -> string

type t
(** Private signing state of one node. *)

type verifier
(** Public verification state, distributable to other nodes. *)

val create : Rdb_des.Rng.t -> scheme -> t
(** MAC keys are derived from the generator, modelling the pre-shared group
    secret of a permissioned deployment. RSA keys are 512-bit and Schnorr
    uses {!Schnorr.default_params} — small for test speed; the simulator
    charges production-scheme costs from {!Cost_model}. *)

val scheme : t -> scheme

val verifier : t -> verifier

val sign : t -> string -> string
(** Empty string under [No_sig]. *)

val verify : verifier -> string -> signature:string -> bool
(** Always [true] under [No_sig]. *)

val signature_size : scheme -> int
(** Wire bytes, for message-size accounting (production sizes: 0 / 16 / 64 /
    256 — independent of the reduced test key sizes). *)

type params = { p : Bignum.t; q : Bignum.t; g : Bignum.t }

type public = { pub_params : params; y : Bignum.t }
type secret = { sec_params : params; x : Bignum.t }
type keypair = { public : public; secret : secret }

let generate_params rng ~p_bits ~q_bits =
  if q_bits >= p_bits then invalid_arg "Schnorr.generate_params: q_bits must be < p_bits";
  let q = Bignum.generate_prime rng ~bits:q_bits in
  (* Search p = q*k + 1 with the right bit length. *)
  let rec find_p () =
    let k = Bignum.random_bits rng (p_bits - q_bits) in
    let p = Bignum.add (Bignum.mul q k) Bignum.one in
    if Bignum.bit_length p = p_bits && Bignum.is_probable_prime rng p then (p, k)
    else find_p ()
  in
  let p, k = find_p () in
  let rec find_g () =
    let h = Bignum.add Bignum.two (Bignum.random_below rng (Bignum.sub p (Bignum.of_int 3))) in
    let g = Bignum.mod_pow h k p in
    if Bignum.equal g Bignum.one then find_g () else g
  in
  { p; q; g = find_g () }

let default =
  lazy (generate_params (Rdb_des.Rng.create 0x52444253436E7231L) ~p_bits:256 ~q_bits:160)

let default_params () = Lazy.force default

let generate rng params =
  let x = Bignum.add Bignum.one (Bignum.random_below rng (Bignum.sub params.q Bignum.one)) in
  let y = Bignum.mod_pow params.g x params.p in
  { public = { pub_params = params; y }; secret = { sec_params = params; x } }

let q_bytes params = (Bignum.bit_length params.q + 7) / 8

(* Challenge e = H(r || m) reduced mod q. *)
let challenge params r msg =
  let r_bytes = Bignum.to_bytes_be r in
  Bignum.rem (Bignum.of_bytes_be (Sha256.digest (r_bytes ^ msg))) params.q

let sign rng secret msg =
  let params = secret.sec_params in
  let rec go () =
    let k = Bignum.add Bignum.one (Bignum.random_below rng (Bignum.sub params.q Bignum.one)) in
    let r = Bignum.mod_pow params.g k params.p in
    let e = challenge params r msg in
    if Bignum.is_zero e then go ()
    else begin
      (* s = k + x*e mod q *)
      let s = Bignum.rem (Bignum.add k (Bignum.mul secret.x e)) params.q in
      if Bignum.is_zero s then go ()
      else begin
        let w = q_bytes params in
        Bignum.to_bytes_be ~pad_to:w e ^ Bignum.to_bytes_be ~pad_to:w s
      end
    end
  in
  go ()

let verify public msg ~signature =
  let params = public.pub_params in
  let w = q_bytes params in
  if String.length signature <> 2 * w then false
  else begin
    let e = Bignum.of_bytes_be (String.sub signature 0 w) in
    let s = Bignum.of_bytes_be (String.sub signature w w) in
    if Bignum.is_zero e || Bignum.compare e params.q >= 0 || Bignum.compare s params.q >= 0
    then false
    else begin
      (* r' = g^s * y^(-e) = g^s * y^(q-e) mod p; then H(r' || m) must be e. *)
      let gs = Bignum.mod_pow params.g s params.p in
      let y_neg_e = Bignum.mod_pow public.y (Bignum.sub params.q e) params.p in
      let r' = Bignum.rem (Bignum.mul gs y_neg_e) params.p in
      Bignum.equal (challenge params r' msg) e
    end
  end

let signature_size params = 2 * q_bytes params

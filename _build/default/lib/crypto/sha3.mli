(** SHA3-256 (FIPS 202, Keccak-f[1600]), implemented from scratch.

    The paper names SHA-256 and SHA3 as the standard digest choices for a
    permissioned blockchain (§3, "Expensive Cryptographic Practices"); both
    are provided so applications can choose.  Verified against the FIPS 202
    example vectors in the test suite. *)

val digest : string -> string
(** 32-byte raw digest. *)

val digest_hex : string -> string

(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for request digests, block hashes and as the compression function of
    {!Hmac}.  Verified in the test suite against the NIST/RFC test vectors. *)

type ctx

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb more input; may be called repeatedly (streaming). *)

val feed_bytes : ctx -> bytes -> off:int -> len:int -> unit

val finalize : ctx -> string
(** The 32-byte raw digest.  The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot: [digest s] is the 32-byte raw digest of [s]. *)

val hex : string -> string
(** Lower-case hex encoding of a raw string (not SHA-specific, exposed for
    convenience and tests). *)

val digest_hex : string -> string
(** [digest_hex s = hex (digest s)]. *)

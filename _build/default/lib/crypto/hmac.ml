let block_size = 64

let mac ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  let ipad = String.init block_size (fun i -> Char.chr (Char.code (Bytes.get padded i) lxor 0x36)) in
  let opad = String.init block_size (fun i -> Char.chr (Char.code (Bytes.get padded i) lxor 0x5c)) in
  let inner = Sha256.digest (ipad ^ msg) in
  Sha256.digest (opad ^ inner)

let verify ~key msg ~tag = String.equal (mac ~key msg) tag

(** HMAC-SHA256 (RFC 2104), used where a hash-based MAC is preferable to
    CMAC (e.g. keyed request digests).  Verified against RFC 4231 vectors. *)

val mac : key:string -> string -> string
(** 32-byte tag. Keys longer than 64 bytes are hashed first, per the RFC. *)

val verify : key:string -> string -> tag:string -> bool

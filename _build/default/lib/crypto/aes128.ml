(* AES-128: 10 rounds, 11 round keys of 16 bytes each. *)

let sbox =
  "\x63\x7c\x77\x7b\xf2\x6b\x6f\xc5\x30\x01\x67\x2b\xfe\xd7\xab\x76\
   \xca\x82\xc9\x7d\xfa\x59\x47\xf0\xad\xd4\xa2\xaf\x9c\xa4\x72\xc0\
   \xb7\xfd\x93\x26\x36\x3f\xf7\xcc\x34\xa5\xe5\xf1\x71\xd8\x31\x15\
   \x04\xc7\x23\xc3\x18\x96\x05\x9a\x07\x12\x80\xe2\xeb\x27\xb2\x75\
   \x09\x83\x2c\x1a\x1b\x6e\x5a\xa0\x52\x3b\xd6\xb3\x29\xe3\x2f\x84\
   \x53\xd1\x00\xed\x20\xfc\xb1\x5b\x6a\xcb\xbe\x39\x4a\x4c\x58\xcf\
   \xd0\xef\xaa\xfb\x43\x4d\x33\x85\x45\xf9\x02\x7f\x50\x3c\x9f\xa8\
   \x51\xa3\x40\x8f\x92\x9d\x38\xf5\xbc\xb6\xda\x21\x10\xff\xf3\xd2\
   \xcd\x0c\x13\xec\x5f\x97\x44\x17\xc4\xa7\x7e\x3d\x64\x5d\x19\x73\
   \x60\x81\x4f\xdc\x22\x2a\x90\x88\x46\xee\xb8\x14\xde\x5e\x0b\xdb\
   \xe0\x32\x3a\x0a\x49\x06\x24\x5c\xc2\xd3\xac\x62\x91\x95\xe4\x79\
   \xe7\xc8\x37\x6d\x8d\xd5\x4e\xa9\x6c\x56\xf4\xea\x65\x7a\xae\x08\
   \xba\x78\x25\x2e\x1c\xa6\xb4\xc6\xe8\xdd\x74\x1f\x4b\xbd\x8b\x8a\
   \x70\x3e\xb5\x66\x48\x03\xf6\x0e\x61\x35\x57\xb9\x86\xc1\x1d\x9e\
   \xe1\xf8\x98\x11\x69\xd9\x8e\x94\x9b\x1e\x87\xe9\xce\x55\x28\xdf\
   \x8c\xa1\x89\x0d\xbf\xe6\x42\x68\x41\x99\x2d\x0f\xb0\x54\xbb\x16"

let sub b = Char.code sbox.[b]

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

type key = int array (* 44 32-bit words *)

let expand_key k =
  if String.length k <> 16 then invalid_arg "Aes128.expand_key: key must be 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code k.[4 * i] lsl 24)
      lor (Char.code k.[(4 * i) + 1] lsl 16)
      lor (Char.code k.[(4 * i) + 2] lsl 8)
      lor Char.code k.[(4 * i) + 3]
  done;
  for i = 4 to 43 do
    let temp = ref w.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord then SubWord then Rcon. *)
      let t = ((!temp lsl 8) lor (!temp lsr 24)) land 0xFFFFFFFF in
      let t =
        (sub ((t lsr 24) land 0xFF) lsl 24)
        lor (sub ((t lsr 16) land 0xFF) lsl 16)
        lor (sub ((t lsr 8) land 0xFF) lsl 8)
        lor sub (t land 0xFF)
      in
      temp := t lxor (rcon.((i / 4) - 1) lsl 24)
    end;
    w.(i) <- w.(i - 4) lxor !temp
  done;
  w

let xtime b = if b land 0x80 <> 0 then ((b lsl 1) lxor 0x1b) land 0xFF else (b lsl 1) land 0xFF

let encrypt_block key block =
  if String.length block <> 16 then invalid_arg "Aes128.encrypt_block: block must be 16 bytes";
  (* State as a 16-byte array in column-major order (FIPS 197 layout). *)
  let s = Array.make 16 0 in
  for i = 0 to 15 do
    s.(i) <- Char.code block.[i]
  done;
  let add_round_key round =
    for c = 0 to 3 do
      let w = key.((4 * round) + c) in
      s.(4 * c) <- s.(4 * c) lxor ((w lsr 24) land 0xFF);
      s.((4 * c) + 1) <- s.((4 * c) + 1) lxor ((w lsr 16) land 0xFF);
      s.((4 * c) + 2) <- s.((4 * c) + 2) lxor ((w lsr 8) land 0xFF);
      s.((4 * c) + 3) <- s.((4 * c) + 3) lxor (w land 0xFF)
    done
  in
  let sub_bytes () =
    for i = 0 to 15 do
      s.(i) <- sub s.(i)
    done
  in
  let shift_rows () =
    (* Row r (bytes at index 4c + r) rotates left by r. *)
    let t = s.(1) in
    s.(1) <- s.(5); s.(5) <- s.(9); s.(9) <- s.(13); s.(13) <- t;
    let t0 = s.(2) and t1 = s.(6) in
    s.(2) <- s.(10); s.(6) <- s.(14); s.(10) <- t0; s.(14) <- t1;
    let t = s.(15) in
    s.(15) <- s.(11); s.(11) <- s.(7); s.(7) <- s.(3); s.(3) <- t
  in
  let mix_columns () =
    for c = 0 to 3 do
      let a0 = s.(4 * c) and a1 = s.((4 * c) + 1) and a2 = s.((4 * c) + 2) and a3 = s.((4 * c) + 3) in
      let m b = xtime b in
      s.(4 * c) <- m a0 lxor (m a1 lxor a1) lxor a2 lxor a3;
      s.((4 * c) + 1) <- a0 lxor m a1 lxor (m a2 lxor a2) lxor a3;
      s.((4 * c) + 2) <- a0 lxor a1 lxor m a2 lxor (m a3 lxor a3);
      s.((4 * c) + 3) <- (m a0 lxor a0) lxor a1 lxor a2 lxor m a3
    done
  in
  add_round_key 0;
  for round = 1 to 9 do
    sub_bytes ();
    shift_rows ();
    mix_columns ();
    add_round_key round
  done;
  sub_bytes ();
  shift_rows ();
  add_round_key 10;
  String.init 16 (fun i -> Char.chr s.(i))

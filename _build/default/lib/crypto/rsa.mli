(** Textbook RSA signatures with full-domain SHA-256 hashing.

    Included because the paper's Fig. 13 compares RSA against ED25519 and
    CMAC; the test suite exercises real keygen / sign / verify round-trips.
    This is *not* hardened RSA (no PSS salting, no constant-time arithmetic):
    the simulator uses the {!Cost_model} for timing, and the implementation
    exists to make the signing path real and testable, not to protect
    production traffic. *)

type public = { n : Bignum.t; e : Bignum.t }
type secret

type keypair = { public : public; secret : secret }

val generate : Rdb_des.Rng.t -> bits:int -> keypair
(** [bits] is the modulus size (use >= 10; tests use 256–512 for speed). *)

val sign : secret -> string -> string
(** Signature over SHA-256(message), sized to the modulus. *)

val verify : public -> string -> signature:string -> bool

val signature_size : public -> int
(** Bytes on the wire, for network-size accounting. *)

(* SHA3-256: Keccak-f[1600] over 25 64-bit lanes, rate 1088 bits (136
   bytes), capacity 512, domain-separation suffix 0x06. *)

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808AL; 0x8000000080008000L;
    0x000000000000808BL; 0x0000000080000001L; 0x8000000080008081L; 0x8000000000008009L;
    0x000000000000008AL; 0x0000000000000088L; 0x0000000080008009L; 0x000000008000000AL;
    0x000000008000808BL; 0x800000000000008BL; 0x8000000000008089L; 0x8000000000008003L;
    0x8000000000008002L; 0x8000000000000080L; 0x000000000000800AL; 0x800000008000000AL;
    0x8000000080008081L; 0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

(* Rotation offsets, indexed by x + 5y. *)
let rho =
  [|
    0; 1; 62; 28; 27;
    36; 44; 6; 55; 20;
    3; 10; 43; 25; 39;
    41; 45; 15; 21; 8;
    18; 2; 61; 56; 14;
  |]

let rotl x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f state =
  let c = Array.make 5 0L in
  let d = Array.make 5 0L in
  let b = Array.make 25 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor state.(x)
          (Int64.logxor state.(x + 5)
             (Int64.logxor state.(x + 10) (Int64.logxor state.(x + 15) state.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl c.((x + 1) mod 5) 1)
    done;
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + (5 * y)) <- Int64.logxor state.(x + (5 * y)) d.(x)
      done
    done;
    (* rho + pi: B[y, (2x + 3y) mod 5] = rotl(A[x, y], r[x, y]) *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let nx = y and ny = ((2 * x) + (3 * y)) mod 5 in
        b.(nx + (5 * ny)) <- rotl state.(x + (5 * y)) rho.(x + (5 * y))
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + (5 * y)) <-
          Int64.logxor
            b.(x + (5 * y))
            (Int64.logand
               (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) round_constants.(round)
  done

let rate_bytes = 136

let digest msg =
  let state = Array.make 25 0L in
  (* Pad: message || 0x06 || 0* || 0x80, to a multiple of the rate. *)
  let padded_len = (String.length msg / rate_bytes * rate_bytes) + rate_bytes in
  let padded = Bytes.make padded_len '\x00' in
  Bytes.blit_string msg 0 padded 0 (String.length msg);
  Bytes.set padded (String.length msg) '\x06';
  let last = Char.code (Bytes.get padded (padded_len - 1)) in
  Bytes.set padded (padded_len - 1) (Char.chr (last lor 0x80));
  (* Absorb. *)
  let block = ref 0 in
  while !block < padded_len do
    for lane = 0 to (rate_bytes / 8) - 1 do
      let v = ref 0L in
      for byte = 7 downto 0 do
        v :=
          Int64.logor (Int64.shift_left !v 8)
            (Int64.of_int (Char.code (Bytes.get padded (!block + (8 * lane) + byte))))
      done;
      state.(lane) <- Int64.logxor state.(lane) !v
    done;
    keccak_f state;
    block := !block + rate_bytes
  done;
  (* Squeeze 32 bytes (little-endian lanes). *)
  let out = Bytes.create 32 in
  for lane = 0 to 3 do
    for byte = 0 to 7 do
      Bytes.set out ((8 * lane) + byte)
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical state.(lane) (8 * byte)) 0xFFL)))
    done
  done;
  Bytes.unsafe_to_string out

let digest_hex msg = Sha256.hex (digest msg)

(** Arbitrary-precision natural numbers, from scratch.

    This is the arithmetic engine underneath {!Rsa} and {!Schnorr}.  Values
    are immutable.  Only naturals are supported: the signature algorithms in
    this repository never need negative numbers, and keeping the domain to
    naturals removes a whole class of sign-handling bugs.  Subtraction of a
    larger number from a smaller one raises [Invalid_argument].

    Division uses Knuth's Algorithm D over 31-bit limbs, so modular
    exponentiation on 512–1024-bit operands is fast enough for tests. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int option
(** [None] if the value does not fit in a native int. *)

val of_hex : string -> t
(** Accepts upper or lower case; ignores a ["0x"] prefix and underscores. *)

val to_hex : t -> string
(** Lower-case, no prefix, no leading zeros (["0"] for zero). *)

val of_bytes_be : string -> t
(** Big-endian bytes to natural (e.g. a SHA-256 digest). *)

val to_bytes_be : ?pad_to:int -> t -> string
(** Big-endian bytes, optionally left-padded with zeros to [pad_to] bytes. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** Raises [Invalid_argument "Bignum.sub"] if the result would be negative. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], [0 <= r < b].
    Raises [Division_by_zero] if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Number of significant bits; 0 for zero. *)

val test_bit : t -> int -> bool

val mod_pow : t -> t -> t -> t
(** [mod_pow base exp m] = base^exp mod m. Raises on [m = 0]. *)

val mod_inverse : t -> t -> t option
(** [mod_inverse a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1]. *)

val gcd : t -> t -> t

val random_bits : Rdb_des.Rng.t -> int -> t
(** Uniform with exactly the given number of bits (top bit set), bits >= 1. *)

val random_below : Rdb_des.Rng.t -> t -> t
(** Uniform in [\[0, bound)]; [bound] must be nonzero. *)

val is_probable_prime : ?rounds:int -> Rdb_des.Rng.t -> t -> bool
(** Miller–Rabin preceded by trial division by small primes.
    Default 24 rounds. *)

val generate_prime : Rdb_des.Rng.t -> bits:int -> t
(** Deterministic given the generator state: repeatedly samples odd
    [bits]-bit candidates until one passes {!is_probable_prime}. *)

val pp : Format.formatter -> t -> unit

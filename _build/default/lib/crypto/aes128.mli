(** AES-128 block cipher (FIPS 197), implemented from scratch.

    Only the forward cipher is exposed: the system uses AES exclusively as
    the PRF inside {!Cmac} (the replica-to-replica "CMAC+AES" scheme of the
    paper), which never needs decryption.  Verified against the FIPS 197 and
    RFC 4493 vectors in the test suite. *)

type key

val expand_key : string -> key
(** [expand_key k] expects exactly 16 bytes. *)

val encrypt_block : key -> string -> string
(** [encrypt_block key block] encrypts one 16-byte block. *)

(** AES-CMAC (RFC 4493): the message-authentication scheme ResilientDB uses
    between replicas ("CMAC+AES" in the paper).

    Verified in the test suite against the four RFC 4493 test vectors. *)

type key

val of_secret : string -> key
(** [of_secret k] derives the CMAC subkeys from a 16-byte AES key. *)

val mac : key -> string -> string
(** 16-byte tag over an arbitrary-length message. *)

val verify : key -> string -> tag:string -> bool

type key = { aes : Aes128.key; k1 : string; k2 : string }

let xor_block a b = String.init 16 (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

(* Left-shift a 16-byte string by one bit. *)
let shl1 s =
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let v = (Char.code s.[i] lsl 1) lor !carry in
    Bytes.set out i (Char.chr (v land 0xFF));
    carry := (v lsr 8) land 1
  done;
  (Bytes.unsafe_to_string out, !carry)

let const_rb = String.init 16 (fun i -> if i = 15 then '\x87' else '\x00')

let of_secret secret =
  let aes = Aes128.expand_key secret in
  let zero = String.make 16 '\x00' in
  let l = Aes128.encrypt_block aes zero in
  let k1, c1 = shl1 l in
  let k1 = if c1 = 1 then xor_block k1 const_rb else k1 in
  let k2, c2 = shl1 k1 in
  let k2 = if c2 = 1 then xor_block k2 const_rb else k2 in
  { aes; k1; k2 }

let mac key msg =
  let len = String.length msg in
  let n = if len = 0 then 1 else (len + 15) / 16 in
  let complete = len > 0 && len mod 16 = 0 in
  let last =
    if complete then xor_block (String.sub msg (16 * (n - 1)) 16) key.k1
    else begin
      (* Pad the final partial block with 0x80 then zeros. *)
      let part_len = len - (16 * (n - 1)) in
      let padded = Bytes.make 16 '\x00' in
      Bytes.blit_string msg (16 * (n - 1)) padded 0 part_len;
      Bytes.set padded part_len '\x80';
      xor_block (Bytes.unsafe_to_string padded) key.k2
    end
  in
  let x = ref (String.make 16 '\x00') in
  for i = 0 to n - 2 do
    x := Aes128.encrypt_block key.aes (xor_block !x (String.sub msg (16 * i) 16))
  done;
  Aes128.encrypt_block key.aes (xor_block !x last)

let verify key msg ~tag = String.equal (mac key msg) tag

(** Binary wire codec for protocol messages.

    Fixed-width big-endian integers, length-prefixed strings; no external
    serialization library.  [decode (encode m) = Ok m] for every message —
    checked exhaustively by property tests — and decoding never raises on
    malformed input. *)

val encode : Message.t -> string

val decode : string -> (Message.t, string) result
(** [Error reason] on truncated, oversized or corrupt input. *)

val frame : string -> string
(** Length-prefix a payload for a stream transport (4-byte big-endian
    length, then the bytes). *)

val read_frame : Buffer.t -> (string -> unit) -> unit
(** [read_frame buf deliver] consumes every complete frame currently in
    [buf] (in order), calling [deliver] with each payload and leaving any
    trailing partial frame in place — the classic streaming deframer. *)

val max_frame_bytes : int
(** Frames beyond this are rejected as corrupt (protects against a bad
    length prefix allocating unbounded memory). *)

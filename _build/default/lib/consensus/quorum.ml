(** Distinct-sender counting, the bookkeeping primitive behind every
    "collect 2f (+1) matching messages" rule. *)

type 'k t = ('k, (int, unit) Hashtbl.t) Hashtbl.t

let create () : 'k t = Hashtbl.create 64

(** [add t key sender] records the sender and returns the number of distinct
    senders now recorded under [key].  Duplicate sends are idempotent. *)
let add (t : 'k t) key sender =
  let senders =
    match Hashtbl.find_opt t key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.add t key s;
      s
  in
  Hashtbl.replace senders sender ();
  Hashtbl.length senders

let count (t : 'k t) key =
  match Hashtbl.find_opt t key with None -> 0 | Some s -> Hashtbl.length s

let senders (t : 'k t) key =
  match Hashtbl.find_opt t key with
  | None -> []
  | Some s -> Hashtbl.fold (fun k () acc -> k :: acc) s []

let keys (t : 'k t) = Hashtbl.fold (fun k _ acc -> k :: acc) t []

let remove (t : 'k t) key = Hashtbl.remove t key

let filter_keys (t : 'k t) keep =
  let doomed = Hashtbl.fold (fun k _ acc -> if keep k then acc else k :: acc) t [] in
  List.iter (Hashtbl.remove t) doomed

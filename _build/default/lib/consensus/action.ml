(** Actions emitted by protocol cores.

    Cores are pure state machines: they never touch the network, the clock
    or storage.  Each [handle_*] call returns the list of actions the
    hosting system must carry out — sends via its transport, executions via
    its execution layer.  The same cores therefore run unchanged under the
    discrete-event simulator, the unit tests and the examples. *)

type t =
  | Broadcast of Message.t  (** to every other replica *)
  | Send of int * Message.t  (** to one replica *)
  | Send_client of int * Message.t  (** to one client *)
  | Execute of Message.batch
      (** run the batch against the application state; cores emit these in
          strict sequence order (the paper's ordered-execution invariant) *)
  | Stable_checkpoint of int
      (** a checkpoint at this sequence number became stable; old state can
          be garbage-collected *)

let pp ppf = function
  | Broadcast m -> Format.fprintf ppf "broadcast %s" (Message.type_name m)
  | Send (r, m) -> Format.fprintf ppf "send %s -> replica %d" (Message.type_name m) r
  | Send_client (c, m) -> Format.fprintf ppf "send %s -> client %d" (Message.type_name m) c
  | Execute b -> Format.fprintf ppf "execute seq %d (%d reqs)" b.Message.seq (List.length b.Message.reqs)
  | Stable_checkpoint s -> Format.fprintf ppf "stable checkpoint %d" s

(** Distinct-sender counting, the bookkeeping primitive behind every
    "collect 2f (+1) matching messages" rule in the protocol cores.

    Keys are whatever identifies a matching set — (view, seq, digest) for
    prepares, (seq, state digest) for checkpoints — and duplicate votes
    from the same sender never count twice. *)

type 'k t

val create : unit -> 'k t

val add : 'k t -> 'k -> int -> int
(** [add t key sender] records the vote and returns how many distinct
    senders [key] now has.  Idempotent per (key, sender). *)

val count : 'k t -> 'k -> int

val senders : 'k t -> 'k -> int list
(** Unordered. *)

val keys : 'k t -> 'k list
(** Every key with at least one vote (unordered). *)

val remove : 'k t -> 'k -> unit

val filter_keys : 'k t -> ('k -> bool) -> unit
(** Drops every key the predicate rejects (garbage collection at
    checkpoints). *)

type action =
  | Send of int * Message.t
  | Broadcast of Message.t
  | Complete of { txn_id : int; fast : bool }
  | Retransmit of int

type phase = Speculative | Certifying

type pending = {
  mutable phase : phase;
  (* (view, seq, history) -> replica senders *)
  spec : (int * int * string) Quorum.t;
  mutable cert_key : (int * int * string) option;
  commits : int Quorum.t; (* seq -> senders of local-commit *)
}

type t = {
  config : Config.t;
  id : int;
  pending : (int, pending) Hashtbl.t;
}

let create config ~id = { config; id; pending = Hashtbl.create 64 }

let id t = t.id

let submit t ~txn_id =
  if not (Hashtbl.mem t.pending txn_id) then
    Hashtbl.add t.pending txn_id
      { phase = Speculative; spec = Quorum.create (); cert_key = None; commits = Quorum.create () };
  []

let all_replicas t = t.config.Config.n

let best_spec_key p =
  (* The (view, seq, history) key with the most distinct senders. *)
  let best = ref None in
  List.iter
    (fun key ->
      let c = Quorum.count p.spec key in
      match !best with
      | Some (_, bc) when bc >= c -> ()
      | _ -> best := Some (key, c))
    (Quorum.keys p.spec);
  !best

let handle_message t (msg : Message.t) =
  match msg with
  | Message.Spec_reply { view; seq; txn_id; from; history; _ } ->
    (match Hashtbl.find_opt t.pending txn_id with
    | None -> []
    | Some p ->
      let n = Quorum.add p.spec (view, seq, history) from in
      if p.phase = Speculative && n >= all_replicas t then begin
        Hashtbl.remove t.pending txn_id;
        [ Complete { txn_id; fast = true } ]
      end
      else [])
  | Message.Local_commit { seq; from; _ } ->
    (* Local commits are per (client, seq); find the certifying request for
       this sequence number. *)
    let found = ref [] in
    Hashtbl.iter
      (fun txn_id p ->
        match p.cert_key with
        | Some (_, s, _) when s = seq && p.phase = Certifying ->
          let n = Quorum.add p.commits seq from in
          if n >= Config.commit_quorum t.config then found := txn_id :: !found
        | _ -> ())
      t.pending;
    List.map
      (fun txn_id ->
        Hashtbl.remove t.pending txn_id;
        Complete { txn_id; fast = false })
      !found
  | _ -> []

let handle_timeout t ~txn_id =
  match Hashtbl.find_opt t.pending txn_id with
  | None -> []
  | Some p ->
    (match best_spec_key p with
    | Some (((view, seq, _digest_hist) as key), count) when count >= Config.commit_quorum t.config ->
      if p.phase = Certifying then
        (* Certificate already out; nudge it again. *)
        []
      else begin
        p.phase <- Certifying;
        p.cert_key <- Some key;
        let responders = Quorum.senders p.spec key in
        let _, _, hist = key in
        [ Broadcast
            (Message.Commit_cert
               { view; seq; digest = hist; client = t.id; responders }) ]
      end
    | _ -> [ Retransmit txn_id ])

let outstanding t = Hashtbl.length t.pending

lib/consensus/zyzzyva_replica.ml: Action Config Hashtbl List Message Option Quorum Rdb_crypto String

lib/consensus/pbft_client.ml: Config Hashtbl Message Quorum

lib/consensus/pbft_replica.mli: Action Config Message

lib/consensus/quorum.mli:

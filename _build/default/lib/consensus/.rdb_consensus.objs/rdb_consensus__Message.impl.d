lib/consensus/message.ml: Buffer List Printf

lib/consensus/config.ml:

lib/consensus/pbft_replica.ml: Action Config Hashtbl List Message Option Quorum String

lib/consensus/action.ml: Format List Message

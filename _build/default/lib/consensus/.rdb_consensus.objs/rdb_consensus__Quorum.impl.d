lib/consensus/quorum.ml: Hashtbl List

lib/consensus/zyzzyva_client.mli: Config Message

lib/consensus/zyzzyva_client.ml: Config Hashtbl List Message Quorum

lib/consensus/zyzzyva_replica.mli: Action Config Message

lib/consensus/codec.ml: Buffer Char List Message Printf String

lib/consensus/codec.mli: Buffer Message

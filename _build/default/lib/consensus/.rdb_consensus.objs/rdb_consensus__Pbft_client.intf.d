lib/consensus/pbft_client.mli: Config Message

(** Static cluster configuration shared by every protocol core.

    A permissioned deployment knows all replica identities a priori; replica
    ids are [0 .. n-1] and client ids live in a separate namespace. *)

type t = {
  n : int;  (** number of replicas *)
  f : int;  (** tolerated byzantine faults; [n >= 3f + 1] *)
  checkpoint_interval : int;  (** sequence numbers between checkpoints *)
  high_water_mark : int;  (** max in-flight sequence numbers past the last stable checkpoint *)
}

let make ?(checkpoint_interval = 100) ?(high_water_mark = 10_000) ~n () =
  if n < 4 then invalid_arg "Config.make: need at least 4 replicas";
  let f = (n - 1) / 3 in
  if checkpoint_interval <= 0 then invalid_arg "Config.make: bad checkpoint interval";
  { n; f; checkpoint_interval; high_water_mark }

(** The primary rotates round-robin with the view number (PBFT's rule). *)
let primary_of_view t view = view mod t.n

(** Size of a prepared certificate: matching messages from [2f] others. *)
let prepare_quorum t = 2 * t.f

(** Size of a commit / checkpoint / view-change quorum. *)
let commit_quorum t = (2 * t.f) + 1

(** Replies a client needs from distinct replicas to accept a result. *)
let reply_quorum t = t.f + 1

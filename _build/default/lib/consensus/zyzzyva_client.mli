(** The Zyzzyva client — where the protocol's agreement burden actually
    lives, and the root of its behaviour under failures (paper Fig. 17).

    Completion rules (Kotla et al., SOSP '07):
    - {b Fast path}: all [3f+1] speculative replies match (same view, seq,
      history, result) → the request completes in a single phase.
    - {b Commit-certificate path}: after a timeout, if between [2f+1] and
      [3f] replies match, the client broadcasts a commit certificate built
      from those replies and completes once [2f+1] replicas acknowledge it
      with Local-commits.
    - Fewer than [2f+1] matching replies → retransmit and keep waiting.

    With even one crashed backup the fast path can never fire (the client
    cannot collect [3f+1] replies), so {e every} request pays the timeout —
    exactly the cliff the paper measures. *)

type t

type action =
  | Send of int * Message.t  (** to one replica *)
  | Broadcast of Message.t  (** to all replicas *)
  | Complete of { txn_id : int; fast : bool }
  | Retransmit of int  (** txn id *)

val create : Config.t -> id:int -> t

val id : t -> int

val submit : t -> txn_id:int -> action list

val handle_message : t -> Message.t -> action list
(** Feed Spec-replies and Local-commits. *)

val handle_timeout : t -> txn_id:int -> action list
(** The speculative-reply timer fired for this request. *)

val outstanding : t -> int

type action =
  | Send of int * Message.t
  | Broadcast_request of int
  | Complete of { txn_id : int; result : string }

type pending = { replies : string Quorum.t (* result -> senders *) }

type t = {
  config : Config.t;
  id : int;
  mutable primary : int;
  pending : (int, pending) Hashtbl.t;
}

let create config ~id = { config; id; primary = 0; pending = Hashtbl.create 64 }

let id t = t.id

let submit t ~txn_id =
  if not (Hashtbl.mem t.pending txn_id) then
    Hashtbl.add t.pending txn_id { replies = Quorum.create () };
  []

let handle_reply t msg =
  match msg with
  | Message.Reply { txn_id; from; result; _ } ->
    (match Hashtbl.find_opt t.pending txn_id with
    | None -> []
    | Some p ->
      let n = Quorum.add p.replies result from in
      if n >= Config.reply_quorum t.config then begin
        Hashtbl.remove t.pending txn_id;
        [ Complete { txn_id; result } ]
      end
      else [])
  | _ -> []

let handle_timeout t ~txn_id =
  if Hashtbl.mem t.pending txn_id then [ Broadcast_request txn_id ] else []

let outstanding t = Hashtbl.length t.pending

(* Tests for the discrete-event simulation substrate: RNG determinism,
   heap ordering, statistics, simulator semantics, CPU resource. *)

module Rng = Rdb_des.Rng
module Heap = Rdb_des.Heap
module Stats = Rdb_des.Stats
module Sim = Rdb_des.Sim
module Cpu = Rdb_des.Cpu

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

(* ---- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different seeds differ" false (Rng.int64 a = Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_float_range () =
  let rng = Rng.create 9L in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_float_mean () =
  let rng = Rng.create 11L in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  let mean = !acc /. float_of_int n in
  if abs_float (mean -. 0.5) > 0.01 then Alcotest.failf "mean suspicious: %f" mean

let test_rng_exponential_mean () =
  let rng = Rng.create 13L in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~mean:5.0
  done;
  let mean = !acc /. float_of_int n in
  if abs_float (mean -. 5.0) > 0.15 then Alcotest.failf "exp mean suspicious: %f" mean

let test_rng_split_independence () =
  let root = Rng.create 21L in
  let a = Rng.split root in
  let b = Rng.split root in
  Alcotest.(check bool) "split streams differ" false (Rng.int64 a = Rng.int64 b)

let test_rng_copy () =
  let a = Rng.create 5L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copies agree" (Rng.int64 a) (Rng.int64 b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 50 (fun i -> i)) sorted

(* ---- Heap --------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some x ->
      out := x :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "sorted output" [ 9; 8; 7; 5; 3; 2; 1 ] !out

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) l;
      let rec drain acc = match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc in
      drain [] = List.sort compare l)

(* ---- Stats -------------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.max s);
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.median s);
  check (Alcotest.float 1e-9) "total" 15.0 (Stats.total s);
  check Alcotest.int "count" 5 (Stats.count s);
  check (Alcotest.float 1e-9) "variance" 2.5 (Stats.variance s)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile s 50.0);
  check (Alcotest.float 1e-9) "p99" 99.0 (Stats.percentile s 99.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile s 100.0);
  check (Alcotest.float 1e-9) "p0 -> first" 1.0 (Stats.percentile s 0.5)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 1e-9) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.(check bool) "percentile of empty is nan" true (Float.is_nan (Stats.percentile s 50.0))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  check Alcotest.int "merged count" 4 (Stats.count m);
  check (Alcotest.float 1e-9) "merged mean" 2.5 (Stats.mean m)

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 2.0; 5.0 |] in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 3.0; 10.0 ];
  check Alcotest.(array int) "bucket counts" [| 1; 2; 1; 1 |] (Stats.Histogram.counts h)

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"online mean equals naive mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun l ->
      let s = Stats.create () in
      List.iter (Stats.add s) l;
      let naive = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
      abs_float (Stats.mean s -. naive) < 1e-6)

(* ---- Sim ---------------------------------------------------------------- *)

let test_sim_time_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~after:(Sim.ns 30) (fun () -> log := 3 :: !log));
  ignore (Sim.schedule sim ~after:(Sim.ns 10) (fun () -> log := 1 :: !log));
  ignore (Sim.schedule sim ~after:(Sim.ns 20) (fun () -> log := 2 :: !log));
  Sim.run sim;
  check Alcotest.(list int) "fires in time order" [ 1; 2; 3 ] (List.rev !log)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~after:(Sim.ns 10) (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  check Alcotest.(list int) "same-time events keep scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.schedule sim ~after:(Sim.ns 10) (fun () -> fired := true) in
  Sim.cancel ev;
  Sim.run sim;
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check bool) "cancelled" true (Sim.cancelled ev)

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~after:(Sim.ns (i * 10)) (fun () -> incr count))
  done;
  Sim.run ~until:(Sim.ns 50) sim;
  check Alcotest.int "only first five fire" 5 !count;
  check Alcotest.int "clock parked at limit" 50 (Sim.now sim);
  Sim.run sim;
  check Alcotest.int "rest fire on resume" 10 !count

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~after:(Sim.ns 10) (fun () ->
         log := "outer" :: !log;
         ignore (Sim.schedule sim ~after:(Sim.ns 5) (fun () -> log := "inner" :: !log))));
  Sim.run sim;
  check Alcotest.(list string) "nested event fires" [ "outer"; "inner" ] (List.rev !log);
  check Alcotest.int "clock" 15 (Sim.now sim)

let test_sim_units () =
  check Alcotest.int "us" 1_000 (Sim.us 1.0);
  check Alcotest.int "ms" 1_000_000 (Sim.ms 1.0);
  check Alcotest.int "s" 1_000_000_000 (Sim.seconds 1.0);
  check (Alcotest.float 1e-12) "roundtrip" 2.5 (Sim.to_seconds (Sim.seconds 2.5))

let test_sim_past_schedule_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~after:(Sim.ns 10) (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "past schedule" (Invalid_argument "Sim.schedule_at: time is in the past")
    (fun () -> ignore (Sim.schedule_at sim ~at:5 (fun () -> ())))

(* ---- Cpu ---------------------------------------------------------------- *)

let test_cpu_serializes_on_one_core () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Cpu.submit cpu ~service:(Sim.ns 100) (fun () -> done_at := Sim.now sim :: !done_at)
  done;
  Sim.run sim;
  check Alcotest.(list int) "FIFO completion times" [ 100; 200; 300 ] (List.rev !done_at)

let test_cpu_parallel_cores () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:2 in
  let done_at = ref [] in
  for _ = 1 to 4 do
    Cpu.submit cpu ~service:(Sim.ns 100) (fun () -> done_at := Sim.now sim :: !done_at)
  done;
  Sim.run sim;
  check Alcotest.(list int) "two at a time" [ 100; 100; 200; 200 ] (List.rev !done_at)

let test_cpu_busy_accounting () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:2 in
  Cpu.submit cpu ~service:(Sim.ns 100) (fun () -> ());
  Cpu.submit cpu ~service:(Sim.ns 50) (fun () -> ());
  Sim.run sim;
  check Alcotest.int "busy time summed" 150 (Cpu.busy_ns cpu)

let test_cpu_utilization () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  Cpu.submit cpu ~service:(Sim.ns 100) (fun () -> ());
  ignore (Sim.schedule sim ~after:(Sim.ns 200) (fun () -> ()));
  Sim.run sim;
  check (Alcotest.float 1e-9) "50% utilized" 0.5 (Cpu.utilization cpu ~since_busy_ns:0 ~since_time:0)

let test_cpu_oversubscription_inflates () =
  let sim = Sim.create () in
  let cpu = Cpu.create ~cs_alpha:1.0 sim ~cores:1 in
  let done_at = ref [] in
  (* Two runnable jobs on one core: the second dispatch sees contention. *)
  Cpu.submit cpu ~service:(Sim.ns 100) (fun () -> done_at := Sim.now sim :: !done_at);
  Cpu.submit cpu ~service:(Sim.ns 100) (fun () -> done_at := Sim.now sim :: !done_at);
  Sim.run sim;
  match List.rev !done_at with
  | [ first; second ] ->
    (* First job dispatched with queue behind it -> inflated. *)
    Alcotest.(check bool) "inflation applied" true (first > 100 || second > first + 100)
  | _ -> Alcotest.fail "expected two completions"

let () =
  Alcotest.run "rdb_des"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "shuffle is permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          qtest prop_heap_sorts;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          qtest prop_stats_mean_matches_naive;
        ] );
      ( "sim",
        [
          Alcotest.test_case "time ordering" `Quick test_sim_time_ordering;
          Alcotest.test_case "FIFO tie-break" `Quick test_sim_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_schedule;
          Alcotest.test_case "time units" `Quick test_sim_units;
          Alcotest.test_case "past schedule rejected" `Quick test_sim_past_schedule_rejected;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "one core serializes" `Quick test_cpu_serializes_on_one_core;
          Alcotest.test_case "parallel cores" `Quick test_cpu_parallel_cores;
          Alcotest.test_case "busy accounting" `Quick test_cpu_busy_accounting;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization;
          Alcotest.test_case "oversubscription inflates" `Quick test_cpu_oversubscription_inflates;
        ] );
    ]

(* Pipeline-stage tests: FIFO processing, multi-worker concurrency over a
   shared queue (the paper's batch-thread pool), occupation accounting and
   saturation, interplay with a core-limited CPU. *)

module Sim = Rdb_des.Sim
module Cpu = Rdb_des.Cpu
module Stage = Rdb_replica.Stage

let check = Alcotest.check

let test_single_worker_fifo () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:4 in
  let st = Stage.create sim ~cpu ~name:"w" () in
  let log = ref [] in
  for i = 1 to 5 do
    Stage.enqueue st ~service:(Sim.ns 100) (fun () -> log := (i, Sim.now sim) :: !log)
  done;
  Sim.run sim;
  check
    Alcotest.(list (pair int int))
    "jobs complete one after another, in order"
    [ (1, 100); (2, 200); (3, 300); (4, 400); (5, 500) ]
    (List.rev !log);
  check Alcotest.int "jobs counted" 5 (Stage.jobs_completed st);
  check Alcotest.int "occupied = total service" 500 (Stage.occupied_ns st)

let test_two_workers_shared_queue () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:4 in
  let st = Stage.create sim ~cpu ~name:"batch" ~workers:2 () in
  let completions = ref [] in
  for _ = 1 to 4 do
    Stage.enqueue st ~service:(Sim.ns 100) (fun () -> completions := Sim.now sim :: !completions)
  done;
  Sim.run sim;
  (* Two at a time: pairs complete at 100 and 200. *)
  check Alcotest.(list int) "pairwise completion" [ 100; 100; 200; 200 ] (List.rev !completions)

let test_workers_limited_by_cores () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  let st = Stage.create sim ~cpu ~name:"contended" ~workers:3 () in
  let completions = ref [] in
  for _ = 1 to 3 do
    Stage.enqueue st ~service:(Sim.ns 100) (fun () -> completions := Sim.now sim :: !completions)
  done;
  Sim.run sim;
  (* Three logical workers but one core: fully serialized. *)
  check Alcotest.(list int) "core-bound" [ 100; 200; 300 ] (List.rev !completions)

let test_saturation_window () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:4 in
  let st = Stage.create sim ~cpu ~name:"s" () in
  Stage.enqueue st ~service:(Sim.ns 300) (fun () -> ());
  ignore (Sim.schedule sim ~after:(Sim.ns 1000) (fun () -> ()));
  Sim.run sim;
  (* Busy 300 of 1000 ns -> 30% of one worker. *)
  check (Alcotest.float 0.01) "saturation" 30.0
    (Stage.saturation st ~since_occupied_ns:0 ~since_time:0 ~now:(Sim.now sim));
  (* A 2-worker stage with the same single job is half as saturated. *)
  let st2 = Stage.create sim ~cpu ~name:"s2" ~workers:2 () in
  check (Alcotest.float 0.01) "per-worker normalization" 0.0
    (Stage.saturation st2 ~since_occupied_ns:0 ~since_time:0 ~now:(Sim.now sim))

let test_jobs_enqueued_during_run () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:2 in
  let st = Stage.create sim ~cpu ~name:"nested" () in
  let log = ref [] in
  Stage.enqueue st ~service:(Sim.ns 50) (fun () ->
      log := "first" :: !log;
      Stage.enqueue st ~service:(Sim.ns 50) (fun () -> log := "second" :: !log));
  Sim.run sim;
  check Alcotest.(list string) "follow-up job runs" [ "first"; "second" ] (List.rev !log);
  check Alcotest.int "clock" 100 (Sim.now sim)

let test_queue_length_visibility () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  let st = Stage.create sim ~cpu ~name:"q" () in
  for _ = 1 to 5 do
    Stage.enqueue st ~service:(Sim.ns 10) (fun () -> ())
  done;
  (* One running, four queued. *)
  check Alcotest.int "queued" 4 (Stage.queue_length st);
  Sim.run sim;
  check Alcotest.int "drained" 0 (Stage.queue_length st)

let test_zero_service_jobs () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  let st = Stage.create sim ~cpu ~name:"z" () in
  let count = ref 0 in
  for _ = 1 to 100 do
    Stage.enqueue st ~service:0 (fun () -> incr count)
  done;
  Sim.run sim;
  check Alcotest.int "all ran" 100 !count;
  check Alcotest.int "no time passed" 0 (Sim.now sim)

let test_bad_workers_rejected () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  Alcotest.check_raises "zero workers" (Invalid_argument "Stage.create: need at least one worker")
    (fun () -> ignore (Stage.create sim ~cpu ~name:"x" ~workers:0 ()))

(* ---- exec queue (paper §4.6) ------------------------------------------- *)

module Eq = Rdb_replica.Exec_queue

let test_eq_in_order () =
  let q = Eq.create ~slots:8 in
  Alcotest.(check (option string)) "nothing yet" None (Eq.poll q);
  (match Eq.offer q ~seq:1 "a" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (option string)) "head arrives" (Some "a") (Eq.poll q);
  check Alcotest.int "cursor advanced" 2 (Eq.next_seq q)

let test_eq_out_of_order () =
  let q = Eq.create ~slots:8 in
  List.iter
    (fun (seq, v) -> match Eq.offer q ~seq v with Ok () -> () | Error e -> Alcotest.fail e)
    [ (3, "c"); (1, "a"); (4, "d"); (2, "b") ];
  let drained = List.init 4 (fun _ -> Option.get (Eq.poll q)) in
  check Alcotest.(list string) "drained in order" [ "a"; "b"; "c"; "d" ] drained;
  Alcotest.(check (option string)) "empty" None (Eq.poll q);
  check Alcotest.int "nothing pending" 0 (Eq.pending q)

let test_eq_gap_blocks () =
  let q = Eq.create ~slots:8 in
  (match Eq.offer q ~seq:2 "b" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (option string)) "gap: poll blocks" None (Eq.poll q);
  (match Eq.offer q ~seq:1 "a" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (option string)) "hole filled" (Some "a") (Eq.poll q);
  Alcotest.(check (option string)) "then next" (Some "b") (Eq.poll q)

let test_eq_window_enforced () =
  let q = Eq.create ~slots:4 in
  Alcotest.(check bool) "beyond window rejected" true (Result.is_error (Eq.offer q ~seq:5 "x"));
  (match Eq.offer q ~seq:1 "a" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "duplicate idempotent" true (Eq.offer q ~seq:1 "a" = Ok ());
  ignore (Eq.poll q);
  Alcotest.(check bool) "stale rejected" true (Result.is_error (Eq.offer q ~seq:1 "a"))

let test_eq_sizing_rule () =
  check Alcotest.int "QC = 2 * clients * reqs" 160_000
    (Eq.recommended_slots ~num_clients:80_000 ~num_req:1)

let prop_eq_random_order =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"exec_queue: any arrival order drains in sequence order" ~count:200
       QCheck.(int_range 1 50)
       (fun n ->
         let rng = Rdb_des.Rng.create (Int64.of_int (n + 7)) in
         let order = Array.init n (fun i -> i + 1) in
         Rdb_des.Rng.shuffle rng order;
         let q = Eq.create ~slots:(n + 1) in
         let drained = ref [] in
         Array.iter
           (fun seq ->
             (match Eq.offer q ~seq seq with Ok () -> () | Error e -> failwith e);
             let rec drain () =
               match Eq.poll q with
               | Some v ->
                 drained := v :: !drained;
                 drain ()
               | None -> ()
             in
             drain ())
           order;
         List.rev !drained = List.init n (fun i -> i + 1)))

let () =
  Alcotest.run "rdb_replica"
    [
      ( "exec_queue",
        [
          Alcotest.test_case "in order" `Quick test_eq_in_order;
          Alcotest.test_case "out of order" `Quick test_eq_out_of_order;
          Alcotest.test_case "gap blocks the cursor" `Quick test_eq_gap_blocks;
          Alcotest.test_case "window enforced" `Quick test_eq_window_enforced;
          Alcotest.test_case "paper's QC sizing" `Quick test_eq_sizing_rule;
          prop_eq_random_order;
        ] );
      ( "stage",
        [
          Alcotest.test_case "single worker FIFO" `Quick test_single_worker_fifo;
          Alcotest.test_case "two workers, shared queue" `Quick test_two_workers_shared_queue;
          Alcotest.test_case "core contention" `Quick test_workers_limited_by_cores;
          Alcotest.test_case "saturation windows" `Quick test_saturation_window;
          Alcotest.test_case "nested enqueues" `Quick test_jobs_enqueued_during_run;
          Alcotest.test_case "queue visibility" `Quick test_queue_length_visibility;
          Alcotest.test_case "zero-service jobs" `Quick test_zero_service_jobs;
          Alcotest.test_case "validation" `Quick test_bad_workers_rejected;
        ] );
    ]

(* Tests for the embeddable in-process runtime: real signatures and MACs on
   the critical path, batching, agreement across replicas, crash tolerance,
   view changes, checkpointing, and rejection of forged traffic. *)

module Rt = Rdb_core.Local_runtime
module Mem_store = Rdb_storage.Mem_store
module Ledger = Rdb_chain.Ledger

let check = Alcotest.check

let kv_apply ~replica:_ store ~client:_ ~payload =
  (match String.split_on_char '=' payload with
  | [ k; v ] -> Mem_store.put store k v
  | _ -> Mem_store.put store payload "1");
  "ok"

let mk ?(batch_size = 4) () = Rt.create ~config:{ Rt.default_config with Rt.batch_size } ~apply:kv_apply ()

let test_basic_agreement () =
  let rt = mk () in
  let ids = List.init 8 (fun i -> Rt.submit rt ~client:(100 + i) ~payload:(Printf.sprintf "k%d=v%d" i i)) in
  Rt.run rt;
  List.iter (fun id -> Alcotest.(check bool) "completed" true (List.mem_assoc id (Rt.completed rt))) ids;
  for r = 0 to 3 do
    for i = 0 to 7 do
      check
        Alcotest.(option string)
        (Printf.sprintf "replica %d key %d" r i)
        (Some (Printf.sprintf "v%d" i))
        (Mem_store.get (Rt.store rt r) (Printf.sprintf "k%d" i))
    done
  done;
  (match Rt.verify rt with Ok () -> () | Error e -> Alcotest.fail e)

let test_partial_batch_needs_flush () =
  let rt = mk () in
  let id = Rt.submit rt ~client:1 ~payload:"solo=1" in
  Rt.run rt;
  Alcotest.(check bool) "partial batch pending" false (List.mem_assoc id (Rt.completed rt));
  Rt.flush rt;
  Rt.run rt;
  Alcotest.(check bool) "flushed and completed" true (List.mem_assoc id (Rt.completed rt))

let test_ledgers_identical () =
  let rt = mk () in
  for i = 0 to 15 do
    ignore (Rt.submit rt ~client:1 ~payload:(Printf.sprintf "x%d=%d" i i))
  done;
  Rt.run rt;
  let d0 = Ledger.cumulative_digest (Rt.ledger rt 0) in
  for r = 1 to 3 do
    check Alcotest.string
      (Printf.sprintf "ledger %d digest" r)
      (Rdb_crypto.Sha256.hex d0)
      (Rdb_crypto.Sha256.hex (Ledger.cumulative_digest (Rt.ledger rt r)))
  done;
  check Alcotest.int "blocks = batches + genesis" 5 (Ledger.length (Rt.ledger rt 0))

let test_backup_crash () =
  let rt = mk () in
  Rt.crash rt 3;
  for i = 0 to 7 do
    ignore (Rt.submit rt ~client:2 ~payload:(Printf.sprintf "c%d=%d" i i))
  done;
  Rt.run rt;
  check Alcotest.int "all executed on live replicas" 2 (Rt.last_executed rt 0);
  (match Rt.verify rt with Ok () -> () | Error e -> Alcotest.fail e);
  check Alcotest.int "crashed replica executed nothing" 0 (Rt.last_executed rt 3)

let test_view_change_after_primary_crash () =
  let rt = mk ~batch_size:2 () in
  ignore (Rt.submit rt ~client:1 ~payload:"a=1");
  ignore (Rt.submit rt ~client:2 ~payload:"b=2");
  Rt.run rt;
  Rt.crash rt 0;
  Rt.force_view_change rt;
  check Alcotest.int "view advanced" 1 (Rt.view rt);
  check Alcotest.int "primary rotated" 1 (Rt.primary rt);
  ignore (Rt.submit rt ~client:3 ~payload:"c=3");
  ignore (Rt.submit rt ~client:4 ~payload:"d=4");
  Rt.run rt;
  List.iter
    (fun r ->
      check Alcotest.(option string) "post-view-change write" (Some "3")
        (Mem_store.get (Rt.store rt r) "c"))
    [ 1; 2; 3 ];
  (match Rt.verify rt with Ok () -> () | Error e -> Alcotest.fail e)

let test_forged_messages_rejected () =
  let rt = mk () in
  Rt.inject_forged_message rt ~dst:2;
  Rt.inject_forged_message rt ~dst:1;
  Rt.run rt;
  check Alcotest.int "both rejected by MAC check" 2 (Rt.auth_failures rt);
  ignore (Rt.submit rt ~client:1 ~payload:"still=works");
  Rt.flush rt;
  Rt.run rt;
  (match Rt.verify rt with Ok () -> () | Error e -> Alcotest.fail e);
  check Alcotest.(option string) "cluster unharmed" (Some "works")
    (Mem_store.get (Rt.store rt 0) "still")

let test_checkpoint_prunes () =
  let rt =
    Rt.create
      ~config:{ Rt.default_config with Rt.batch_size = 1; checkpoint_interval = 5 }
      ~apply:kv_apply ()
  in
  for i = 0 to 24 do
    ignore (Rt.submit rt ~client:1 ~payload:(Printf.sprintf "k%d=%d" i i))
  done;
  Rt.run rt;
  check Alcotest.int "executed 25 batches" 25 (Rt.last_executed rt 0);
  (* Retained chain was pruned at the stable checkpoint but total length and
     the cumulative digest survive. *)
  check Alcotest.int "length counts all blocks" 26 (Ledger.length (Rt.ledger rt 0));
  Alcotest.(check bool) "old blocks pruned" true (Ledger.find (Rt.ledger rt 0) 3 = None);
  (match Rt.verify rt with Ok () -> () | Error e -> Alcotest.fail e)

let test_recovery_with_state_transfer () =
  (* A replica crashes, misses work, recovers, and catches up through the
     checkpoint + state-transfer path; afterwards the whole cluster agrees
     again — including the recovered replica. *)
  let rt =
    Rt.create
      ~config:{ Rt.default_config with Rt.batch_size = 1; checkpoint_interval = 4 }
      ~apply:kv_apply ()
  in
  for i = 0 to 3 do
    ignore (Rt.submit rt ~client:1 ~payload:(Printf.sprintf "pre%d=%d" i i))
  done;
  Rt.run rt;
  check Alcotest.int "replica 3 in sync before crash" 4 (Rt.last_executed rt 3);
  Rt.crash rt 3;
  for i = 0 to 5 do
    ignore (Rt.submit rt ~client:1 ~payload:(Printf.sprintf "missed%d=%d" i i))
  done;
  Rt.run rt;
  check Alcotest.int "replica 3 missed work" 4 (Rt.last_executed rt 3);
  Rt.recover rt 3;
  (* Enough new work to cross the next checkpoint boundary. *)
  for i = 0 to 7 do
    ignore (Rt.submit rt ~client:1 ~payload:(Printf.sprintf "post%d=%d" i i))
  done;
  Rt.run rt;
  Alcotest.(check bool) "replica 3 caught up" true (Rt.applied rt 3 >= 12);
  check Alcotest.(option string) "missed write transferred" (Some "2")
    (Rdb_storage.Mem_store.get (Rt.store rt 3) "missed2");
  check Alcotest.(option string) "post-recovery write executed" (Some "7")
    (Rdb_storage.Mem_store.get (Rt.store rt 3) "post7");
  match Rt.verify rt with Ok () -> () | Error e -> Alcotest.fail e

let test_determinism_across_runs () =
  let run_once () =
    let rt = mk () in
    for i = 0 to 11 do
      ignore (Rt.submit rt ~client:(i mod 3) ~payload:(Printf.sprintf "k%d=%d" i i))
    done;
    Rt.run rt;
    Rdb_crypto.Sha256.hex (Mem_store.digest (Rt.store rt 0))
  in
  check Alcotest.string "identical state digests" (run_once ()) (run_once ())

let test_config_validation () =
  Alcotest.check_raises "too few replicas"
    (Invalid_argument "Local_runtime.create: need at least 4 replicas") (fun () ->
      ignore (Rt.create ~config:{ Rt.default_config with Rt.n = 3 } ~apply:kv_apply ()))

let () =
  Alcotest.run "local_runtime"
    [
      ( "runtime",
        [
          Alcotest.test_case "agreement + execution" `Quick test_basic_agreement;
          Alcotest.test_case "partial batch flush" `Quick test_partial_batch_needs_flush;
          Alcotest.test_case "identical ledgers" `Quick test_ledgers_identical;
          Alcotest.test_case "backup crash tolerated" `Quick test_backup_crash;
          Alcotest.test_case "view change" `Quick test_view_change_after_primary_crash;
          Alcotest.test_case "forged messages rejected" `Quick test_forged_messages_rejected;
          Alcotest.test_case "checkpoint pruning" `Quick test_checkpoint_prunes;
          Alcotest.test_case "recovery + state transfer" `Quick test_recovery_with_state_transfer;
          Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]

(* Network layer tests: the wire codec (exhaustive roundtrips + malformed
   input), stream framing, the simulated datacenter network (latency,
   bandwidth serialization, crash drops), and the real TCP transport —
   including a full 4-replica PBFT agreement over localhost sockets. *)

module Codec = Rdb_consensus.Codec
module Msg = Rdb_consensus.Message
module Net = Rdb_net.Net
module Tcp = Rdb_net.Tcp_transport
module Sim = Rdb_des.Sim
module Rng = Rdb_des.Rng

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

(* ---- codec ----------------------------------------------------------------- *)

let sample_batch =
  {
    Msg.view = 3;
    seq = 123_456_789_012;
    digest = "digest-bytes\x00\xff";
    reqs = [ { Msg.client = 7; txn_id = 99 }; { Msg.client = 8; txn_id = 100 } ];
    wire_bytes = 4096;
  }

let sample_messages =
  [
    Msg.Pre_prepare { view = 1; seq = 42; batch = sample_batch; from = 0 };
    Msg.Prepare { view = 1; seq = 42; digest = "d"; from = 3 };
    Msg.Commit { view = 0; seq = 1; digest = String.make 32 '\x01'; from = 15 };
    Msg.Checkpoint { seq = 10_000; state_digest = "state"; from = 2 };
    Msg.View_change
      {
        new_view = 2;
        last_stable = 100;
        prepared =
          [ { Msg.p_view = 1; p_seq = 101; p_digest = "pd"; p_batch = sample_batch } ];
        from = 1;
      };
    Msg.New_view { view = 2; vc_senders = [ 1; 2; 3 ]; pre_prepares = [ sample_batch ]; from = 2 };
    Msg.Order_request { view = 0; seq = 7; batch = sample_batch; history = "h"; from = 0 };
    Msg.Commit_cert { view = 0; seq = 7; digest = "h"; client = 1000; responders = [ 0; 1; 2 ] };
    Msg.Reply { view = 0; seq = 7; txn_id = 55; client = 1000; from = 3; result = "ok" };
    Msg.Spec_reply { view = 0; seq = 7; txn_id = 55; client = 1000; from = 3; history = "hh" };
    Msg.Local_commit { view = 0; seq = 7; client = 1000; from = 3 };
    Msg.Fill_hole { view = 1; from_seq = 10; to_seq = 20; from = 2 };
  ]

let test_codec_roundtrip_all_variants () =
  List.iter
    (fun m ->
      match Codec.decode (Codec.encode m) with
      | Ok m' ->
        Alcotest.(check bool) (Msg.type_name m ^ " roundtrips") true (m = m')
      | Error e -> Alcotest.failf "%s failed to decode: %s" (Msg.type_name m) e)
    sample_messages

let test_codec_rejects_malformed () =
  Alcotest.(check bool) "empty" true (Result.is_error (Codec.decode ""));
  Alcotest.(check bool) "unknown tag" true (Result.is_error (Codec.decode "\xfe\x00\x00"));
  let good = Codec.encode (List.hd sample_messages) in
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Codec.decode (String.sub good 0 (String.length good / 2))));
  Alcotest.(check bool) "trailing garbage" true (Result.is_error (Codec.decode (good ^ "x")))

let test_codec_never_raises_on_fuzz () =
  let rng = Rng.create 31337L in
  for _ = 1 to 5_000 do
    let len = Rng.int rng 64 in
    let s = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    match Codec.decode s with Ok _ | Error _ -> ()
  done

let arb_message =
  let open QCheck.Gen in
  let small = int_bound 1000 in
  let str = string_size ~gen:(map Char.chr (int_range 0 255)) (0 -- 40) in
  let req = map2 (fun c t -> { Msg.client = c; txn_id = t }) small small in
  let batch =
    map (fun (view, seq, digest, reqs, wire) -> { Msg.view; seq; digest; reqs; wire_bytes = wire })
      (tup5 small small str (list_size (0 -- 5) req) small)
  in
  let gen =
    frequency
      [
        (2, map2 (fun b f -> Msg.Pre_prepare { view = b.Msg.view; seq = b.Msg.seq; batch = b; from = f }) batch small);
        (3, map (fun (v, s, d, f) -> Msg.Prepare { view = v; seq = s; digest = d; from = f }) (tup4 small small str small));
        (3, map (fun (v, s, d, f) -> Msg.Commit { view = v; seq = s; digest = d; from = f }) (tup4 small small str small));
        (1, map (fun (s, d, f) -> Msg.Checkpoint { seq = s; state_digest = d; from = f }) (tup3 small str small));
        (1, map2 (fun b (v, h, f) -> Msg.Order_request { view = v; seq = b.Msg.seq; batch = b; history = h; from = f }) batch (tup3 small str small));
        (1, map (fun (v, s, t, c) -> Msg.Reply { view = v; seq = s; txn_id = t; client = c; from = 0; result = "r" }) (tup4 small small small small));
      ]
  in
  QCheck.make ~print:Msg.type_name gen

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec: decode . encode = id" ~count:500 arb_message (fun m ->
      Codec.decode (Codec.encode m) = Ok m)

(* ---- application wire format (deployment layer) ----------------------------- *)

module Wire = Rdb_core.Wire

let test_wire_request_roundtrip () =
  let r =
    Wire.Request
      {
        client = 7;
        reply_host = "10.0.0.3";
        reply_port = 5123;
        txn_id = 99;
        payload = "SET k \x00binary";
        signature = String.make 64 's';
      }
  in
  Alcotest.(check bool) "request roundtrips" true (Wire.decode (Wire.encode r) = Ok r)

let test_wire_consensus_with_attachments () =
  let m = Msg.Pre_prepare { view = 0; seq = 5; batch = sample_batch; from = 0 } in
  let w =
    Wire.Consensus
      {
        msg = m;
        tag = String.make 16 't';
        attachments =
          [
            {
              Wire.a_txn_id = 99;
              a_client = 7;
              a_reply_host = "127.0.0.1";
              a_reply_port = 9000;
              a_payload = "SET a 1";
            };
          ];
      }
  in
  Alcotest.(check bool) "consensus+attachments roundtrips" true (Wire.decode (Wire.encode w) = Ok w)

let test_wire_reply_roundtrip () =
  let w = Wire.Reply { txn_id = 3; from = 2; result = "OK" } in
  Alcotest.(check bool) "reply roundtrips" true (Wire.decode (Wire.encode w) = Ok w)

let test_wire_rejects_garbage () =
  Alcotest.(check bool) "empty" true (Result.is_error (Wire.decode ""));
  Alcotest.(check bool) "unknown kind" true (Result.is_error (Wire.decode "Zjunk"));
  Alcotest.(check bool) "truncated request" true (Result.is_error (Wire.decode "R\x00\x00"))

let test_wire_request_signatures () =
  let rng = Rng.create 4242L in
  let signer = Rdb_crypto.Signer.create rng Rdb_crypto.Signer.Ed25519 in
  let verifier = Rdb_crypto.Signer.verifier signer in
  let signature = Wire.sign_request signer ~client:1 ~txn_id:5 ~payload:"SET a 1" in
  Alcotest.(check bool) "valid" true
    (Wire.verify_request verifier ~client:1 ~txn_id:5 ~payload:"SET a 1" ~signature);
  Alcotest.(check bool) "payload tamper" false
    (Wire.verify_request verifier ~client:1 ~txn_id:5 ~payload:"SET a 2" ~signature);
  Alcotest.(check bool) "txn splice" false
    (Wire.verify_request verifier ~client:1 ~txn_id:6 ~payload:"SET a 1" ~signature);
  Alcotest.(check bool) "client splice" false
    (Wire.verify_request verifier ~client:2 ~txn_id:5 ~payload:"SET a 1" ~signature)

(* ---- framing ------------------------------------------------------------------ *)

let test_deframer_reassembles_split_frames () =
  let payloads = [ "alpha"; ""; String.make 10_000 'z'; "omega" ] in
  let stream = String.concat "" (List.map Codec.frame payloads) in
  let out = ref [] in
  let buf = Buffer.create 64 in
  (* Feed the byte stream in pathological 3-byte chunks. *)
  let rec feed off =
    if off < String.length stream then begin
      let n = min 3 (String.length stream - off) in
      Buffer.add_substring buf stream off n;
      Codec.read_frame buf (fun p -> out := p :: !out);
      feed (off + n)
    end
  in
  feed 0;
  check Alcotest.(list string) "all frames, in order" payloads (List.rev !out);
  check Alcotest.int "no leftover bytes" 0 (Buffer.length buf)

let test_deframer_keeps_partial () =
  let buf = Buffer.create 16 in
  Buffer.add_string buf (String.sub (Codec.frame "hello") 0 4);
  let out = ref [] in
  Codec.read_frame buf (fun p -> out := p :: !out);
  check Alcotest.(list string) "nothing delivered yet" [] !out;
  check Alcotest.int "partial retained" 4 (Buffer.length buf)

(* ---- simulated network ----------------------------------------------------------- *)

let test_simnet_latency () =
  let sim = Sim.create () in
  let rng = Rng.create 1L in
  let arrivals = ref [] in
  let net = ref None in
  let deliver ~dst ~src:_ payload = arrivals := (dst, payload, Sim.now sim) :: !arrivals in
  net := Some (Net.create sim ~nodes:3 ~bandwidth_gbps:8.0 ~latency:(Sim.us 100.0) ~rng ~deliver ());
  let n = Option.get !net in
  Net.send n ~src:0 ~dst:1 ~bytes:1000 "hello";
  Sim.run sim;
  (match !arrivals with
  | [ (1, "hello", at) ] ->
    (* 1000 bytes at 8 Gbit/s = 1 us transmission + 100 us latency. *)
    check Alcotest.int "arrival time" (Sim.us 101.0) at
  | _ -> Alcotest.fail "expected exactly one arrival");
  check Alcotest.int "bytes accounted" 1000 (Net.bytes_sent n)

let test_simnet_nic_serializes () =
  let sim = Sim.create () in
  let rng = Rng.create 2L in
  let arrivals = ref [] in
  let net = ref None in
  let deliver ~dst:_ ~src:_ () = arrivals := Sim.now sim :: !arrivals in
  net := Some (Net.create sim ~nodes:2 ~bandwidth_gbps:8.0 ~latency:0 ~rng ~deliver ());
  let n = Option.get !net in
  (* Two 1KB messages from the same NIC: the second waits for the first. *)
  Net.send n ~src:0 ~dst:1 ~bytes:1000 ();
  Net.send n ~src:0 ~dst:1 ~bytes:1000 ();
  Sim.run sim;
  check Alcotest.(list int) "serialized transmissions" [ Sim.us 2.0; Sim.us 1.0 ] !arrivals

let test_simnet_crash_drops () =
  let sim = Sim.create () in
  let rng = Rng.create 3L in
  let count = ref 0 in
  let net = ref None in
  let deliver ~dst:_ ~src:_ () = incr count in
  net := Some (Net.create sim ~nodes:3 ~bandwidth_gbps:8.0 ~latency:0 ~rng ~deliver ());
  let n = Option.get !net in
  Net.crash n 1;
  Net.send n ~src:0 ~dst:1 ~bytes:10 ();
  (* crashed dst *)
  Net.send n ~src:1 ~dst:0 ~bytes:10 ();
  (* crashed src *)
  Net.send n ~src:0 ~dst:2 ~bytes:10 ();
  (* live *)
  Sim.run sim;
  check Alcotest.int "only the live pair delivers" 1 !count;
  Alcotest.(check bool) "is_crashed" true (Net.is_crashed n 1);
  Net.recover n 1;
  Net.send n ~src:0 ~dst:1 ~bytes:10 ();
  Sim.run sim;
  check Alcotest.int "recovered node receives" 2 !count

(* ---- TCP transport ------------------------------------------------------------------ *)

let rec wait_until ?(tries = 500) pred =
  if tries = 0 then false
  else if pred () then true
  else begin
    Thread.delay 0.01;
    wait_until ~tries:(tries - 1) pred
  end

let test_tcp_two_nodes () =
  let got = ref [] in
  let lock = Mutex.create () in
  let a = Tcp.create ~on_message:(fun ~payload ->
      Mutex.lock lock; got := payload :: !got; Mutex.unlock lock) () in
  let b = Tcp.create ~on_message:(fun ~payload:_ -> ()) () in
  Tcp.set_peers b [ (0, ("127.0.0.1", Tcp.port a)) ];
  Alcotest.(check bool) "send succeeds" true (Tcp.send b ~to_:0 "ping-1");
  Alcotest.(check bool) "second send" true (Tcp.send b ~to_:0 "ping-2");
  Alcotest.(check bool) "delivery" true (wait_until (fun () ->
      Mutex.lock lock;
      let n = List.length !got in
      Mutex.unlock lock;
      n = 2));
  Mutex.lock lock;
  check Alcotest.(list string) "order preserved" [ "ping-1"; "ping-2" ] (List.rev !got);
  Mutex.unlock lock;
  Alcotest.(check bool) "unknown peer fails" false (Tcp.send b ~to_:42 "nope");
  Tcp.shutdown a;
  Tcp.shutdown b

let test_tcp_pbft_cluster_agreement () =
  (* Four PBFT replicas in one process, communicating exclusively through
     real TCP sockets and the binary codec. *)
  let module Pbft = Rdb_consensus.Pbft_replica in
  let module Action = Rdb_consensus.Action in
  let n = 4 in
  let cfg = Rdb_consensus.Config.make ~n () in
  let cores = Array.init n (fun id -> Pbft.create cfg ~id) in
  let locks = Array.init n (fun _ -> Mutex.create ()) in
  let executed = Array.make n [] in
  let transports = Array.make n None in
  let tp i = Option.get transports.(i) in
  let rec dispatch id actions =
    List.iter
      (fun a ->
        match a with
        | Action.Broadcast m ->
          let payload = Codec.encode m in
          for dst = 0 to n - 1 do
            if dst <> id then ignore (Tcp.send (tp id) ~to_:dst payload)
          done
        | Action.Send (dst, m) -> ignore (Tcp.send (tp id) ~to_:dst (Codec.encode m))
        | Action.Send_client _ -> ()
        | Action.Execute b ->
          executed.(id) <- (b.Msg.seq, b.Msg.digest) :: executed.(id);
          dispatch id (Pbft.handle_executed cores.(id) ~seq:b.Msg.seq ~state_digest:"s" ~result:"ok")
        | Action.Stable_checkpoint _ -> ())
      actions
  in
  Array.iteri
    (fun id _ ->
      let on_message ~payload =
        match Codec.decode payload with
        | Ok m ->
          (* Hold the core's lock across handling AND the dispatch of its
             actions: dispatch may call handle_executed on the same core. *)
          Mutex.lock locks.(id);
          (try dispatch id (Pbft.handle_message cores.(id) m)
           with e ->
             Mutex.unlock locks.(id);
             raise e);
          Mutex.unlock locks.(id)
        | Error _ -> ()
      in
      transports.(id) <- Some (Tcp.create ~on_message ()))
    cores;
  let directory = Array.to_list (Array.mapi (fun id _ -> (id, ("127.0.0.1", Tcp.port (tp id)))) cores) in
  Array.iteri (fun id _ -> Tcp.set_peers (tp id) directory) cores;
  (* The primary proposes three batches. *)
  for i = 1 to 3 do
    Mutex.lock locks.(0);
    let _, actions =
      Pbft.propose cores.(0)
        ~reqs:[ { Msg.client = 1; txn_id = i } ]
        ~digest:(Printf.sprintf "tcp-batch-%d" i)
        ~wire_bytes:64
    in
    dispatch 0 actions;
    Mutex.unlock locks.(0)
  done;
  let all_executed () = Array.for_all (fun l -> List.length l = 3) executed in
  Alcotest.(check bool) "all replicas executed all batches over TCP" true (wait_until all_executed);
  let reference = List.rev executed.(0) in
  Array.iteri
    (fun id l ->
      Alcotest.(check bool) (Printf.sprintf "replica %d agrees" id) true (List.rev l = reference))
    executed;
  Array.iter (fun t -> Tcp.shutdown (Option.get t)) transports

let () =
  Alcotest.run "rdb_net"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip all variants" `Quick test_codec_roundtrip_all_variants;
          Alcotest.test_case "rejects malformed" `Quick test_codec_rejects_malformed;
          Alcotest.test_case "never raises on fuzz" `Quick test_codec_never_raises_on_fuzz;
          qtest prop_codec_roundtrip;
        ] );
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_wire_request_roundtrip;
          Alcotest.test_case "consensus + attachments" `Quick test_wire_consensus_with_attachments;
          Alcotest.test_case "reply roundtrip" `Quick test_wire_reply_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "request signature binding" `Quick test_wire_request_signatures;
        ] );
      ( "framing",
        [
          Alcotest.test_case "split frames reassemble" `Quick test_deframer_reassembles_split_frames;
          Alcotest.test_case "partial frame retained" `Quick test_deframer_keeps_partial;
        ] );
      ( "simulated",
        [
          Alcotest.test_case "latency model" `Quick test_simnet_latency;
          Alcotest.test_case "NIC serialization" `Quick test_simnet_nic_serializes;
          Alcotest.test_case "crash drops traffic" `Quick test_simnet_crash_drops;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "two nodes over sockets" `Quick test_tcp_two_nodes;
          Alcotest.test_case "4-replica PBFT over TCP" `Quick test_tcp_pbft_cluster_agreement;
        ] );
    ]

(* Ledger tests: block hashing, chain integrity under both linkage modes,
   pruning at checkpoints, tamper detection. *)

open Rdb_chain

let check = Alcotest.check

let mk_block ~seq ~prev =
  {
    Block.seq;
    view = 0;
    digest = Rdb_crypto.Sha256.digest (Printf.sprintf "batch-%d" seq);
    txn_count = 100;
    link = Block.Prev_hash (Block.hash prev);
  }

let mk_cert_block ~seq =
  {
    Block.seq;
    view = 0;
    digest = Rdb_crypto.Sha256.digest (Printf.sprintf "batch-%d" seq);
    txn_count = 100;
    link = Block.Certificate (List.init 11 (fun i -> (i, Printf.sprintf "share-%d-%d" i seq)));
  }

let test_genesis () =
  let g = Block.genesis ~primary_id:0 in
  check Alcotest.int "seq 0" 0 g.Block.seq;
  check Alcotest.int "view 0" 0 g.Block.view;
  (* Different initial primaries give different genesis digests (§2.2). *)
  let g1 = Block.genesis ~primary_id:1 in
  Alcotest.(check bool) "identity-dependent" false (String.equal g.Block.digest g1.Block.digest)

let test_block_hash_changes_with_content () =
  let g = Block.genesis ~primary_id:0 in
  let b = mk_block ~seq:1 ~prev:g in
  let b' = { b with Block.txn_count = 99 } in
  Alcotest.(check bool) "hash is content-sensitive" false
    (String.equal (Block.hash b) (Block.hash b'));
  check Alcotest.string "hash deterministic" (Block.hash b) (Block.hash b)

let test_block_serialize_distinguishes_links () =
  let b = mk_cert_block ~seq:1 in
  let b' = { b with Block.link = Block.Prev_hash (String.make 32 'h') } in
  Alcotest.(check bool) "linkage serialized" false
    (String.equal (Block.serialize b) (Block.serialize b'))

let test_ledger_append_and_find () =
  let l = Ledger.create ~primary_id:0 in
  check Alcotest.int "next seq" 1 (Ledger.next_seq l);
  let b1 = mk_block ~seq:1 ~prev:(Ledger.last l) in
  Ledger.append l b1;
  let b2 = mk_block ~seq:2 ~prev:b1 in
  Ledger.append l b2;
  check Alcotest.int "length includes genesis" 3 (Ledger.length l);
  check Alcotest.int "last" 2 (Ledger.last l).Block.seq;
  Alcotest.(check bool) "find hit" true (Ledger.find l 1 <> None);
  Alcotest.(check bool) "find miss" true (Ledger.find l 99 = None)

let test_ledger_rejects_gaps () =
  let l = Ledger.create ~primary_id:0 in
  let b5 = { (mk_block ~seq:5 ~prev:(Ledger.last l)) with Block.seq = 5 } in
  Alcotest.check_raises "gap rejected" (Invalid_argument "Ledger.append: expected seq 1, got 5")
    (fun () -> Ledger.append l b5)

let test_ledger_verify_hash_chain () =
  let l = Ledger.create ~primary_id:0 in
  let rec build prev seq =
    if seq <= 20 then begin
      let b = mk_block ~seq ~prev in
      Ledger.append l b;
      build b (seq + 1)
    end
  in
  build (Ledger.last l) 1;
  (match Ledger.verify l ~check_certificate:(fun ~seq:_ ~digest:_ _ -> true) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_ledger_verify_detects_bad_link () =
  let l = Ledger.create ~primary_id:0 in
  let g = Ledger.last l in
  let b1 = mk_block ~seq:1 ~prev:g in
  Ledger.append l b1;
  (* Forge block 2 linking to a wrong predecessor. *)
  let forged = { (mk_block ~seq:2 ~prev:g) with Block.seq = 2 } in
  Ledger.append l forged;
  match Ledger.verify l ~check_certificate:(fun ~seq:_ ~digest:_ _ -> true) with
  | Ok () -> Alcotest.fail "forgery not detected"
  | Error _ -> ()

let test_ledger_certificate_mode () =
  let l = Ledger.create ~primary_id:0 in
  Ledger.append l (mk_cert_block ~seq:1);
  Ledger.append l (mk_cert_block ~seq:2);
  let checked = ref 0 in
  (match
     Ledger.verify l ~check_certificate:(fun ~seq:_ ~digest:_ shares ->
         incr checked;
         List.length shares >= 11)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "certificates delegated" 2 !checked;
  (* A failing certificate check is reported. *)
  match Ledger.verify l ~check_certificate:(fun ~seq ~digest:_ _ -> seq <> 2) with
  | Ok () -> Alcotest.fail "bad certificate not detected"
  | Error _ -> ()

let test_ledger_prune () =
  let l = Ledger.create ~primary_id:0 in
  for seq = 1 to 10 do
    Ledger.append l (mk_cert_block ~seq)
  done;
  let digest_before = Ledger.cumulative_digest l in
  let dropped = Ledger.prune_below l 6 in
  check Alcotest.int "dropped genesis + 1..5" 6 dropped;
  Alcotest.(check bool) "pruned not found" true (Ledger.find l 3 = None);
  Alcotest.(check bool) "retained found" true (Ledger.find l 7 <> None);
  check Alcotest.int "length unchanged by pruning" 11 (Ledger.length l);
  check Alcotest.string "cumulative digest survives pruning" digest_before (Ledger.cumulative_digest l);
  (* Chain still verifies from the pruning point. *)
  match Ledger.verify l ~check_certificate:(fun ~seq:_ ~digest:_ _ -> true) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_cumulative_digest_sensitive () =
  let build seqs =
    let l = Ledger.create ~primary_id:0 in
    List.iter (fun seq -> Ledger.append l (mk_cert_block ~seq)) seqs;
    Ledger.cumulative_digest l
  in
  Alcotest.(check bool) "depends on content" false
    (String.equal (build [ 1; 2; 3 ]) (build [ 1; 2 ]));
  check Alcotest.string "deterministic" (build [ 1; 2; 3 ]) (build [ 1; 2; 3 ])

(* ---- merkle ------------------------------------------------------------- *)

let test_merkle_single_leaf () =
  let t = Merkle.build [ "only" ] in
  check Alcotest.int "leaf count" 1 (Merkle.leaf_count t);
  let p = Merkle.prove t 0 in
  check Alcotest.int "empty proof for root leaf" 0 (Merkle.proof_length p);
  Alcotest.(check bool) "verifies" true (Merkle.verify ~root:(Merkle.root t) ~leaf:"only" ~index:0 p)

let test_merkle_proofs_all_leaves () =
  List.iter
    (fun n ->
      let leaves = List.init n (fun i -> Printf.sprintf "txn-%d" i) in
      let t = Merkle.build leaves in
      List.iteri
        (fun i leaf ->
          let p = Merkle.prove t i in
          if not (Merkle.verify ~root:(Merkle.root t) ~leaf ~index:i p) then
            Alcotest.failf "n=%d leaf %d failed to verify" n i)
        leaves)
    [ 1; 2; 3; 4; 5; 7; 8; 16; 33 ]

let test_merkle_rejects_forgery () =
  let leaves = List.init 8 (fun i -> Printf.sprintf "txn-%d" i) in
  let t = Merkle.build leaves in
  let p = Merkle.prove t 3 in
  Alcotest.(check bool) "wrong leaf" false
    (Merkle.verify ~root:(Merkle.root t) ~leaf:"txn-4" ~index:3 p);
  Alcotest.(check bool) "wrong index" false
    (Merkle.verify ~root:(Merkle.root t) ~leaf:"txn-3" ~index:4 p);
  Alcotest.(check bool) "wrong root" false
    (Merkle.verify ~root:(String.make 32 'x') ~leaf:"txn-3" ~index:3 p);
  (* A leaf value must not verify as an interior node (domain separation). *)
  let other = Merkle.build [ "a"; "b" ] in
  Alcotest.(check bool) "cross-tree proof" false
    (Merkle.verify ~root:(Merkle.root other) ~leaf:"txn-3" ~index:3 p)

let test_merkle_root_depends_on_order () =
  let r1 = Merkle.root (Merkle.build [ "a"; "b"; "c" ]) in
  let r2 = Merkle.root (Merkle.build [ "b"; "a"; "c" ]) in
  Alcotest.(check bool) "order-sensitive" false (String.equal r1 r2)

let test_merkle_proof_wire_roundtrip () =
  let t = Merkle.build (List.init 10 string_of_int) in
  let p = Merkle.prove t 7 in
  let p' = Merkle.proof_of_list (Merkle.proof_to_list p) in
  Alcotest.(check bool) "roundtripped proof verifies" true
    (Merkle.verify ~root:(Merkle.root t) ~leaf:"7" ~index:7 p')

let prop_merkle_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"merkle: every leaf of a random tree proves" ~count:100
       QCheck.(list_of_size Gen.(1 -- 40) (string_of_size Gen.(0 -- 20)))
       (fun leaves ->
         QCheck.assume (leaves <> []);
         let t = Merkle.build leaves in
         List.for_all
           (fun i -> Merkle.verify ~root:(Merkle.root t) ~leaf:(List.nth leaves i) ~index:i (Merkle.prove t i))
           (List.init (List.length leaves) (fun i -> i))))

let () =
  Alcotest.run "rdb_chain"
    [
      ( "block",
        [
          Alcotest.test_case "genesis" `Quick test_genesis;
          Alcotest.test_case "hash content-sensitive" `Quick test_block_hash_changes_with_content;
          Alcotest.test_case "serialize linkage" `Quick test_block_serialize_distinguishes_links;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "append and find" `Quick test_ledger_append_and_find;
          Alcotest.test_case "rejects gaps" `Quick test_ledger_rejects_gaps;
          Alcotest.test_case "verify hash chain" `Quick test_ledger_verify_hash_chain;
          Alcotest.test_case "detects forged link" `Quick test_ledger_verify_detects_bad_link;
          Alcotest.test_case "certificate linkage" `Quick test_ledger_certificate_mode;
          Alcotest.test_case "prune at checkpoint" `Quick test_ledger_prune;
          Alcotest.test_case "cumulative digest" `Quick test_cumulative_digest_sensitive;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
          Alcotest.test_case "proofs for all leaves" `Quick test_merkle_proofs_all_leaves;
          Alcotest.test_case "forgery rejected" `Quick test_merkle_rejects_forgery;
          Alcotest.test_case "order sensitivity" `Quick test_merkle_root_depends_on_order;
          Alcotest.test_case "proof wire roundtrip" `Quick test_merkle_proof_wire_roundtrip;
          prop_merkle_random;
        ] );
    ]

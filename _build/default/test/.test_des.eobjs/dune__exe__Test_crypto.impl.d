test/test_crypto.ml: Aes128 Alcotest Bignum Bytes Char Cmac Cost_model Gen Hmac Int64 List Printf QCheck QCheck_alcotest Rdb_crypto Rdb_des Rsa Schnorr Sha256 Sha3 Signer String

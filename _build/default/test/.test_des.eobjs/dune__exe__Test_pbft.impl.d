test/test_pbft.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Rdb_consensus String Testkit

test/test_chain.ml: Alcotest Block Gen Ledger List Merkle Printf QCheck QCheck_alcotest Rdb_chain Rdb_crypto String

test/test_des.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Rdb_des

test/test_faults.ml: Alcotest Cluster Int64 List Metrics Nemesis Params Printf QCheck QCheck_alcotest Rdb_core Rdb_des String

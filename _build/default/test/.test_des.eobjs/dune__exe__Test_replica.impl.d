test/test_replica.ml: Alcotest Array Int64 List Option QCheck QCheck_alcotest Rdb_des Rdb_replica Result

test/test_workload.ml: Alcotest Array Hashtbl Int64 List Printf QCheck QCheck_alcotest Rdb_des Rdb_storage Rdb_workload Ycsb Zipf

test/test_local_runtime.ml: Alcotest List Printf Rdb_chain Rdb_core Rdb_crypto Rdb_storage String

test/test_zyzzyva.mli:

test/test_net.ml: Alcotest Array Buffer Char List Mutex Option Printf QCheck QCheck_alcotest Rdb_consensus Rdb_core Rdb_crypto Rdb_des Rdb_net Result String Thread

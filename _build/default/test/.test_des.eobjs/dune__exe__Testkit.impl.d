test/testkit.ml: Alcotest Array Hashtbl List Option Printf Queue Rdb_consensus Rdb_des

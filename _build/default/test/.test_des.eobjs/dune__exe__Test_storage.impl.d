test/test_storage.ml: Alcotest Btree Buffer_pool Bytes Filename Fun Hashtbl List Mem_store Printf QCheck QCheck_alcotest Rdb_storage String Sys Wal

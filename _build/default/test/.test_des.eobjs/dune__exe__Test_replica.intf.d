test/test_replica.mli:

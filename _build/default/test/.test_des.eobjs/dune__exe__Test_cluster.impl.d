test/test_cluster.ml: Alcotest Cluster List Metrics Params Printf Rdb_core Rdb_crypto Rdb_des Upper_bound

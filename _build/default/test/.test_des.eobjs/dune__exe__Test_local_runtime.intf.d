test/test_local_runtime.mli:

test/test_zyzzyva.ml: Alcotest Array Int64 List Option Printf QCheck QCheck_alcotest Rdb_consensus Rdb_crypto String Testkit

(* Cryptography tests: published test vectors (FIPS 180-4 / FIPS 197 /
   RFC 4493 / RFC 4231) for the primitives, algebraic properties for the
   bignum engine, and round-trip/tamper tests for the signature schemes. *)

open Rdb_crypto
module Rng = Rdb_des.Rng

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

let hex_to_string h =
  let n = String.length h / 2 in
  String.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

(* ---- SHA-256 ------------------------------------------------------------- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, expected) -> check Alcotest.string msg expected (Sha256.digest_hex msg))
    sha_vectors

let test_sha256_million_a () =
  check Alcotest.string "1M x 'a'" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex (String.make 1_000_000 'a'))

let test_sha256_streaming_equals_oneshot () =
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let ctx = Sha256.init () in
  (* Feed in awkward chunk sizes to cross block boundaries. *)
  let rec feed off =
    if off < String.length msg then begin
      let len = min 37 (String.length msg - off) in
      Sha256.feed ctx (String.sub msg off len);
      feed (off + len)
    end
  in
  feed 0;
  check Alcotest.string "streaming" (Sha256.digest msg) (Sha256.finalize ctx)

let prop_sha256_deterministic_and_sensitive =
  QCheck.Test.make ~name:"sha256: deterministic; 1-bit flip changes digest" ~count:100
    QCheck.(string_of_size Gen.(1 -- 200))
    (fun s ->
      let d1 = Sha256.digest s and d2 = Sha256.digest s in
      let flipped =
        let b = Bytes.of_string s in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
        Bytes.to_string b
      in
      String.equal d1 d2 && not (String.equal d1 (Sha256.digest flipped)))

(* ---- SHA3-256 -------------------------------------------------------------- *)

let test_sha3_vectors () =
  (* FIPS 202 example values. *)
  check Alcotest.string "empty" "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
    (Sha3.digest_hex "");
  check Alcotest.string "abc" "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
    (Sha3.digest_hex "abc")

let test_sha3_multiblock () =
  (* Exceeds one 136-byte rate block; must absorb across blocks without
     corruption (regression guard: digest is stable and length 32). *)
  let long = String.concat "" (List.init 10 (fun i -> Printf.sprintf "block %d of input..." i)) in
  let d = Sha3.digest long in
  check Alcotest.int "32 bytes" 32 (String.length d);
  check Alcotest.string "deterministic" (Sha3.digest_hex long) (Sha3.digest_hex long);
  Alcotest.(check bool) "differs from sha256" false (String.equal d (Sha256.digest long))

let prop_sha3_sensitivity =
  QCheck.Test.make ~name:"sha3: 1-bit flip changes digest" ~count:100
    QCheck.(string_of_size Gen.(1 -- 300))
    (fun s ->
      let flipped =
        let b = Bytes.of_string s in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
        Bytes.to_string b
      in
      not (String.equal (Sha3.digest s) (Sha3.digest flipped)))

(* ---- AES-128 ------------------------------------------------------------- *)

let test_aes_fips197 () =
  let key = hex_to_string "000102030405060708090a0b0c0d0e0f" in
  let pt = hex_to_string "00112233445566778899aabbccddeeff" in
  let k = Aes128.expand_key key in
  check Alcotest.string "FIPS-197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a"
    (Sha256.hex (Aes128.encrypt_block k pt))

let test_aes_rfc4493_key () =
  (* The AES-128(K, 0^128) step from RFC 4493's subkey generation example. *)
  let key = hex_to_string "2b7e151628aed2a6abf7158809cf4f3c" in
  let k = Aes128.expand_key key in
  check Alcotest.string "AES-128(key, zeros)" "7df76b0c1ab899b33e42f047b91b546f"
    (Sha256.hex (Aes128.encrypt_block k (String.make 16 '\x00')))

let test_aes_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes128.expand_key: key must be 16 bytes")
    (fun () -> ignore (Aes128.expand_key "short"));
  let k = Aes128.expand_key (String.make 16 'k') in
  Alcotest.check_raises "short block"
    (Invalid_argument "Aes128.encrypt_block: block must be 16 bytes") (fun () ->
      ignore (Aes128.encrypt_block k "x"))

(* ---- CMAC (RFC 4493) ------------------------------------------------------ *)

let cmac_key = hex_to_string "2b7e151628aed2a6abf7158809cf4f3c"

let cmac_msg_full =
  hex_to_string
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"

let test_cmac_rfc4493 () =
  let k = Cmac.of_secret cmac_key in
  let cases =
    [
      (0, "bb1d6929e95937287fa37d129b756746");
      (16, "070a16b46b4d4144f79bdd9dd04a287c");
      (40, "dfa66747de9ae63030ca32611497c827");
      (64, "51f0bebf7e3b9d92fc49741779363cfe");
    ]
  in
  List.iter
    (fun (len, expected) ->
      check Alcotest.string
        (Printf.sprintf "len %d" len)
        expected
        (Sha256.hex (Cmac.mac k (String.sub cmac_msg_full 0 len))))
    cases

let test_cmac_verify () =
  let k = Cmac.of_secret cmac_key in
  let tag = Cmac.mac k "hello" in
  Alcotest.(check bool) "accepts" true (Cmac.verify k "hello" ~tag);
  Alcotest.(check bool) "rejects tamper" false (Cmac.verify k "hellp" ~tag)

let prop_cmac_distinct_messages =
  QCheck.Test.make ~name:"cmac: different messages get different tags" ~count:100
    QCheck.(pair (string_of_size Gen.(1 -- 64)) (string_of_size Gen.(1 -- 64)))
    (fun (a, b) ->
      QCheck.assume (not (String.equal a b));
      let k = Cmac.of_secret cmac_key in
      not (String.equal (Cmac.mac k a) (Cmac.mac k b)))

(* ---- HMAC (RFC 4231) ------------------------------------------------------ *)

let test_hmac_rfc4231 () =
  (* Test cases 1, 2 and 7 of RFC 4231 (HMAC-SHA-256 outputs). *)
  check Alcotest.string "tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.hex (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"));
  check Alcotest.string "tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.hex (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  check Alcotest.string "tc7 (long key)"
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    (Sha256.hex
       (Hmac.mac
          ~key:(String.make 131 '\xaa')
          "This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm."))

let test_hmac_verify () =
  let tag = Hmac.mac ~key:"k" "msg" in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key:"k" "msg" ~tag);
  Alcotest.(check bool) "rejects wrong key" false (Hmac.verify ~key:"k2" "msg" ~tag)

(* ---- Bignum ---------------------------------------------------------------- *)

let bn = Bignum.of_int

let test_bignum_basic () =
  check Alcotest.string "hex roundtrip" "deadbeef" (Bignum.to_hex (Bignum.of_hex "0xDEAD_BEEF"));
  check Alcotest.(option int) "to_int" (Some 123456789) (Bignum.to_int (bn 123456789));
  check Alcotest.string "mul" "fffffffe00000001" (Bignum.to_hex (Bignum.mul (bn 0xffffffff) (bn 0xffffffff)));
  check Alcotest.string "add carry" "100000000" (Bignum.to_hex (Bignum.add (bn 0xffffffff) Bignum.one));
  check Alcotest.string "zero" "0" (Bignum.to_hex Bignum.zero);
  Alcotest.(check bool) "is_even" true (Bignum.is_even (bn 42));
  Alcotest.(check bool) "odd" false (Bignum.is_even (bn 43))

let test_bignum_sub_underflow () =
  Alcotest.check_raises "negative result" (Invalid_argument "Bignum.sub") (fun () ->
      ignore (Bignum.sub (bn 1) (bn 2)))

let test_bignum_bytes_roundtrip () =
  let v = Bignum.of_hex "0102030405060708090a0b0c0d0e0f" in
  check Alcotest.string "bytes roundtrip" (Bignum.to_hex v)
    (Bignum.to_hex (Bignum.of_bytes_be (Bignum.to_bytes_be v)));
  check Alcotest.int "pad_to" 32 (String.length (Bignum.to_bytes_be ~pad_to:32 v))

let test_bignum_shifts () =
  check Alcotest.string "shl 64" "10000000000000000" (Bignum.to_hex (Bignum.shift_left Bignum.one 64));
  check Alcotest.string "shr" "1" (Bignum.to_hex (Bignum.shift_right (Bignum.shift_left Bignum.one 64) 64));
  check Alcotest.int "bit_length" 65 (Bignum.bit_length (Bignum.shift_left Bignum.one 64));
  Alcotest.(check bool) "test_bit" true (Bignum.test_bit (Bignum.shift_left Bignum.one 64) 64)

let test_bignum_divmod_known () =
  let a = Bignum.of_hex "123456789abcdef0123456789abcdef0" in
  let b = Bignum.of_hex "fedcba9876543210" in
  let q, r = Bignum.divmod a b in
  Alcotest.(check bool) "a = q*b + r" true (Bignum.equal a (Bignum.add (Bignum.mul q b) r));
  Alcotest.(check bool) "r < b" true (Bignum.compare r b < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Bignum.divmod a Bignum.zero))

let arb_bignum bits =
  QCheck.make
    ~print:(fun v -> Bignum.to_hex v)
    (QCheck.Gen.map
       (fun seed ->
         let rng = Rng.create (Int64.of_int seed) in
         Bignum.random_bits rng (1 + (abs seed mod bits)))
       QCheck.Gen.int)

let prop_divmod_invariant =
  QCheck.Test.make ~name:"bignum: divmod invariant on random operands" ~count:300
    (QCheck.pair (arb_bignum 512) (arb_bignum 256))
    (fun (a, b) ->
      QCheck.assume (not (Bignum.is_zero b));
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let prop_mul_commutes =
  QCheck.Test.make ~name:"bignum: multiplication commutes and distributes" ~count:200
    (QCheck.triple (arb_bignum 256) (arb_bignum 256) (arb_bignum 128))
    (fun (a, b, c) ->
      Bignum.equal (Bignum.mul a b) (Bignum.mul b a)
      && Bignum.equal
           (Bignum.mul a (Bignum.add b c))
           (Bignum.add (Bignum.mul a b) (Bignum.mul a c)))

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"bignum: (a + b) - b = a" ~count:300
    (QCheck.pair (arb_bignum 300) (arb_bignum 300))
    (fun (a, b) -> Bignum.equal a (Bignum.sub (Bignum.add a b) b))

let prop_mod_pow_small =
  QCheck.Test.make ~name:"bignum: mod_pow agrees with naive power on small inputs" ~count:200
    QCheck.(triple (int_bound 30) (int_bound 12) (int_range 2 1000))
    (fun (b, e, m) ->
      let naive =
        let rec go acc i = if i = 0 then acc else go (acc * b mod m) (i - 1) in
        go 1 e
      in
      match Bignum.to_int (Bignum.mod_pow (bn b) (bn e) (bn m)) with
      | Some v -> v = naive
      | None -> false)

let test_mod_inverse () =
  (match Bignum.mod_inverse (bn 3) (bn 10) with
  | Some x -> check Alcotest.(option int) "3^-1 mod 10" (Some 7) (Bignum.to_int x)
  | None -> Alcotest.fail "expected inverse");
  Alcotest.(check bool) "no inverse when gcd > 1" true (Bignum.mod_inverse (bn 4) (bn 8) = None)

let prop_mod_inverse =
  QCheck.Test.make ~name:"bignum: a * inverse(a) = 1 mod m" ~count:200
    (QCheck.pair (arb_bignum 128) (arb_bignum 128))
    (fun (a, m) ->
      QCheck.assume (Bignum.compare m Bignum.two > 0);
      QCheck.assume (not (Bignum.is_zero (Bignum.rem a m)));
      match Bignum.mod_inverse a m with
      | None -> not (Bignum.equal (Bignum.gcd a m) Bignum.one)
      | Some x -> Bignum.equal (Bignum.rem (Bignum.mul (Bignum.rem a m) x) m) Bignum.one)

let test_primality () =
  let rng = Rng.create 99L in
  List.iter
    (fun p -> Alcotest.(check bool) (string_of_int p) true (Bignum.is_probable_prime rng (bn p)))
    [ 2; 3; 5; 7; 97; 7919; 104729 ];
  List.iter
    (fun c -> Alcotest.(check bool) (string_of_int c) false (Bignum.is_probable_prime rng (bn c)))
    [ 0; 1; 4; 100; 7917; 561 (* Carmichael *); 104730 ]

let test_generate_prime () =
  let rng = Rng.create 1234L in
  let p = Bignum.generate_prime rng ~bits:96 in
  check Alcotest.int "bit length" 96 (Bignum.bit_length p);
  Alcotest.(check bool) "probably prime" true (Bignum.is_probable_prime rng p)

(* ---- RSA ------------------------------------------------------------------- *)

let test_rsa_roundtrip () =
  let rng = Rng.create 7L in
  let kp = Rsa.generate rng ~bits:256 in
  let s = Rsa.sign kp.Rsa.secret "attack at dawn" in
  Alcotest.(check bool) "verifies" true (Rsa.verify kp.Rsa.public "attack at dawn" ~signature:s);
  Alcotest.(check bool) "message tamper" false (Rsa.verify kp.Rsa.public "attack at dusk" ~signature:s);
  let bad = Bytes.of_string s in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
  Alcotest.(check bool) "signature tamper" false
    (Rsa.verify kp.Rsa.public "attack at dawn" ~signature:(Bytes.to_string bad));
  check Alcotest.int "signature size" (Rsa.signature_size kp.Rsa.public) (String.length s)

let test_rsa_cross_key () =
  let rng = Rng.create 8L in
  let kp1 = Rsa.generate rng ~bits:256 in
  let kp2 = Rsa.generate rng ~bits:256 in
  let s = Rsa.sign kp1.Rsa.secret "msg" in
  Alcotest.(check bool) "other key rejects" false (Rsa.verify kp2.Rsa.public "msg" ~signature:s)

(* ---- Schnorr ----------------------------------------------------------------- *)

let test_schnorr_params () =
  let p = Schnorr.default_params () in
  let rng = Rng.create 3L in
  Alcotest.(check bool) "p prime" true (Bignum.is_probable_prime rng p.Schnorr.p);
  Alcotest.(check bool) "q prime" true (Bignum.is_probable_prime rng p.Schnorr.q);
  (* q | p - 1 *)
  Alcotest.(check bool) "q divides p-1" true
    (Bignum.is_zero (Bignum.rem (Bignum.sub p.Schnorr.p Bignum.one) p.Schnorr.q));
  (* g has order q: g^q = 1 mod p, g <> 1 *)
  Alcotest.(check bool) "g^q = 1" true
    (Bignum.equal (Bignum.mod_pow p.Schnorr.g p.Schnorr.q p.Schnorr.p) Bignum.one);
  Alcotest.(check bool) "g <> 1" false (Bignum.equal p.Schnorr.g Bignum.one)

let test_schnorr_roundtrip () =
  let rng = Rng.create 5L in
  let params = Schnorr.default_params () in
  let kp = Schnorr.generate rng params in
  let s = Schnorr.sign rng kp.Schnorr.secret "block 42" in
  check Alcotest.int "signature size" (Schnorr.signature_size params) (String.length s);
  Alcotest.(check bool) "verifies" true (Schnorr.verify kp.Schnorr.public "block 42" ~signature:s);
  Alcotest.(check bool) "tamper msg" false (Schnorr.verify kp.Schnorr.public "block 43" ~signature:s);
  let bad = Bytes.of_string s in
  Bytes.set bad 3 (Char.chr (Char.code (Bytes.get bad 3) lxor 0x80));
  Alcotest.(check bool) "tamper sig" false
    (Schnorr.verify kp.Schnorr.public "block 42" ~signature:(Bytes.to_string bad))

let test_schnorr_cross_key () =
  let rng = Rng.create 6L in
  let params = Schnorr.default_params () in
  let kp1 = Schnorr.generate rng params in
  let kp2 = Schnorr.generate rng params in
  let s = Schnorr.sign rng kp1.Schnorr.secret "m" in
  Alcotest.(check bool) "other key rejects" false (Schnorr.verify kp2.Schnorr.public "m" ~signature:s)

let prop_schnorr_random_messages =
  QCheck.Test.make ~name:"schnorr: every signed message verifies" ~count:20
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun msg ->
      let rng = Rng.create 77L in
      let kp = Schnorr.generate rng (Schnorr.default_params ()) in
      let s = Schnorr.sign rng kp.Schnorr.secret msg in
      Schnorr.verify kp.Schnorr.public msg ~signature:s)

(* ---- Signer façade ------------------------------------------------------------ *)

let test_signer_all_schemes () =
  List.iter
    (fun scheme ->
      let rng = Rng.create 11L in
      let t = Signer.create rng scheme in
      let v = Signer.verifier t in
      let s = Signer.sign t "payload" in
      Alcotest.(check bool)
        (Signer.scheme_name scheme ^ " verifies")
        true
        (Signer.verify v "payload" ~signature:s);
      check Alcotest.string "scheme name survives" (Signer.scheme_name scheme)
        (Signer.scheme_name (Signer.scheme t)))
    [ Signer.No_sig; Signer.Cmac_aes; Signer.Ed25519; Signer.Rsa ]

let test_signer_tamper_detection () =
  List.iter
    (fun scheme ->
      let rng = Rng.create 12L in
      let t = Signer.create rng scheme in
      let v = Signer.verifier t in
      let s = Signer.sign t "payload" in
      Alcotest.(check bool)
        (Signer.scheme_name scheme ^ " rejects tamper")
        false
        (Signer.verify v "payloae" ~signature:s))
    [ Signer.Cmac_aes; Signer.Ed25519; Signer.Rsa ]

let test_signature_sizes () =
  check Alcotest.int "none" 0 (Signer.signature_size Signer.No_sig);
  check Alcotest.int "cmac" 16 (Signer.signature_size Signer.Cmac_aes);
  check Alcotest.int "ed25519" 64 (Signer.signature_size Signer.Ed25519);
  check Alcotest.int "rsa" 256 (Signer.signature_size Signer.Rsa)

(* ---- Cost model ----------------------------------------------------------------- *)

let test_cost_model_ordering () =
  let c = Cost_model.default in
  Alcotest.(check bool) "mac << ed25519" true
    (Cost_model.sign_cost c Signer.Cmac_aes < Cost_model.sign_cost c Signer.Ed25519);
  Alcotest.(check bool) "ed25519 << rsa" true
    (Cost_model.sign_cost c Signer.Ed25519 < Cost_model.sign_cost c Signer.Rsa);
  Alcotest.(check bool) "no_sig free" true (Cost_model.sign_cost c Signer.No_sig = 0);
  Alcotest.(check bool) "batched verify cheaper" true
    (Cost_model.verify_cost_batched c Signer.Ed25519 < Cost_model.verify_cost c Signer.Ed25519);
  Alcotest.(check bool) "sqlite >> mem" true
    (Cost_model.execute_cost c ~sqlite:true ~ops:10 > Cost_model.execute_cost c ~sqlite:false ~ops:10);
  Alcotest.(check bool) "hash linear in size" true
    (Cost_model.hash_cost c ~bytes:10_000 > Cost_model.hash_cost c ~bytes:100)

let () =
  Alcotest.run "rdb_crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "streaming" `Quick test_sha256_streaming_equals_oneshot;
          qtest prop_sha256_deterministic_and_sensitive;
        ] );
      ( "sha3",
        [
          Alcotest.test_case "FIPS 202 vectors" `Quick test_sha3_vectors;
          Alcotest.test_case "multi-block absorption" `Quick test_sha3_multiblock;
          qtest prop_sha3_sensitivity;
        ] );
      ( "aes",
        [
          Alcotest.test_case "FIPS-197" `Quick test_aes_fips197;
          Alcotest.test_case "RFC 4493 subkey step" `Quick test_aes_rfc4493_key;
          Alcotest.test_case "bad sizes rejected" `Quick test_aes_bad_sizes;
        ] );
      ( "cmac",
        [
          Alcotest.test_case "RFC 4493 vectors" `Quick test_cmac_rfc4493;
          Alcotest.test_case "verify" `Quick test_cmac_verify;
          qtest prop_cmac_distinct_messages;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "basics" `Quick test_bignum_basic;
          Alcotest.test_case "sub underflow" `Quick test_bignum_sub_underflow;
          Alcotest.test_case "bytes roundtrip" `Quick test_bignum_bytes_roundtrip;
          Alcotest.test_case "shifts" `Quick test_bignum_shifts;
          Alcotest.test_case "divmod" `Quick test_bignum_divmod_known;
          Alcotest.test_case "mod_inverse" `Quick test_mod_inverse;
          Alcotest.test_case "primality" `Quick test_primality;
          Alcotest.test_case "generate prime" `Quick test_generate_prime;
          qtest prop_divmod_invariant;
          qtest prop_mul_commutes;
          qtest prop_add_sub_roundtrip;
          qtest prop_mod_pow_small;
          qtest prop_mod_inverse;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "roundtrip + tamper" `Quick test_rsa_roundtrip;
          Alcotest.test_case "cross-key rejection" `Quick test_rsa_cross_key;
        ] );
      ( "schnorr",
        [
          Alcotest.test_case "domain parameters" `Quick test_schnorr_params;
          Alcotest.test_case "roundtrip + tamper" `Quick test_schnorr_roundtrip;
          Alcotest.test_case "cross-key rejection" `Quick test_schnorr_cross_key;
          qtest prop_schnorr_random_messages;
        ] );
      ( "signer",
        [
          Alcotest.test_case "all schemes roundtrip" `Quick test_signer_all_schemes;
          Alcotest.test_case "tamper detection" `Quick test_signer_tamper_detection;
          Alcotest.test_case "wire sizes" `Quick test_signature_sizes;
        ] );
      ("cost model", [ Alcotest.test_case "cost ordering" `Quick test_cost_model_ordering ]);
    ]

(* Workload generator tests: Zipfian distribution shape and determinism,
   YCSB transaction streams, table loading, operation application. *)

open Rdb_workload
module Rng = Rdb_des.Rng

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

(* ---- Zipf -------------------------------------------------------------- *)

let test_zipf_bounds () =
  let z = Zipf.create ~n:1000 () in
  let rng = Rng.create 1L in
  for _ = 1 to 50_000 do
    let v = Zipf.sample z rng in
    if v < 0 || v >= 1000 then Alcotest.failf "out of range: %d" v
  done

let test_zipf_determinism () =
  let z = Zipf.create ~n:500 () in
  let a = Rng.create 2L and b = Rng.create 2L in
  for _ = 1 to 1000 do
    check Alcotest.int "same stream" (Zipf.sample z a) (Zipf.sample z b)
  done

let test_zipf_skew () =
  (* Item 0 must be far more popular than the median item under theta=0.99. *)
  let z = Zipf.create ~theta:0.99 ~n:10_000 () in
  let rng = Rng.create 3L in
  let counts = Array.make 10_000 0 in
  for _ = 1 to 200_000 do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "head heavier than 100th item" true (counts.(0) > 10 * max 1 counts.(100));
  (* Top-10 items should capture a sizeable share under YCSB's default skew. *)
  let top10 = Array.fold_left ( + ) 0 (Array.sub counts 0 10) in
  Alcotest.(check bool) "top-10 share > 10%" true (top10 > 20_000)

let test_zipf_uniform () =
  let z = Zipf.create ~theta:0.0 ~n:100 () in
  let rng = Rng.create 4L in
  let counts = Array.make 100 0 in
  for _ = 1 to 100_000 do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c -> if c < 700 || c > 1300 then Alcotest.failf "bucket %d suspicious: %d" i c)
    counts

let test_zipf_validation () =
  Alcotest.check_raises "bad n" (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ()));
  Alcotest.check_raises "bad theta" (Invalid_argument "Zipf.create: theta must be in [0, 1)")
    (fun () -> ignore (Zipf.create ~theta:1.0 ~n:10 ()))

(* ---- Ycsb -------------------------------------------------------------- *)

let test_ycsb_determinism () =
  let mk () = Ycsb.create ~records:1000 ~seed:55L () in
  let a = mk () and b = mk () in
  for _ = 1 to 100 do
    let ta = Ycsb.next_txn a ~client:1 and tb = Ycsb.next_txn b ~client:1 in
    check Alcotest.int "ids match" ta.Ycsb.txn_id tb.Ycsb.txn_id;
    check Alcotest.int "sizes match" (Ycsb.txn_wire_size ta) (Ycsb.txn_wire_size tb)
  done

let test_ycsb_txn_ids_unique () =
  let w = Ycsb.create ~records:100 ~seed:7L () in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    let t = Ycsb.next_txn w ~client:0 in
    if Hashtbl.mem seen t.Ycsb.txn_id then Alcotest.fail "duplicate txn id";
    Hashtbl.add seen t.Ycsb.txn_id ()
  done

let test_ycsb_write_only_default () =
  let w = Ycsb.create ~records:100 ~seed:8L () in
  for _ = 1 to 200 do
    let t = Ycsb.next_txn w ~client:0 in
    List.iter
      (function Ycsb.Write _ -> () | Ycsb.Read _ -> Alcotest.fail "unexpected read")
      t.Ycsb.ops
  done

let test_ycsb_read_ratio () =
  let w = Ycsb.create ~records:100 ~write_ratio:0.0 ~seed:9L () in
  let t = Ycsb.next_txn w ~client:0 in
  List.iter (function Ycsb.Read _ -> () | Ycsb.Write _ -> Alcotest.fail "unexpected write") t.Ycsb.ops

let test_ycsb_multi_op () =
  let w = Ycsb.create ~records:100 ~ops_per_txn:10 ~seed:10L () in
  let t = Ycsb.next_txn w ~client:3 in
  check Alcotest.int "ops count" 10 (List.length t.Ycsb.ops);
  check Alcotest.int "client id" 3 t.Ycsb.client

let test_ycsb_load_and_apply () =
  let w = Ycsb.create ~records:500 ~field_size:20 ~seed:11L () in
  let store = Rdb_storage.Mem_store.create () in
  Ycsb.load_table w (Rdb_storage.Mem_store.put store);
  check Alcotest.int "table loaded" 500 (Rdb_storage.Mem_store.size store);
  let t = Ycsb.next_txn w ~client:0 in
  List.iter
    (Ycsb.apply_op
       ~get:(Rdb_storage.Mem_store.get store)
       ~put:(Rdb_storage.Mem_store.put store))
    t.Ycsb.ops;
  (* Write-only workload on loaded keys never grows the table. *)
  check Alcotest.int "size stable" 500 (Rdb_storage.Mem_store.size store);
  (* The written key holds the new deterministic value. *)
  (match t.Ycsb.ops with
  | Ycsb.Write { key; value } :: _ ->
    check Alcotest.(option string) "value applied" (Some value) (Rdb_storage.Mem_store.get store key)
  | _ -> Alcotest.fail "expected a write")

let test_ycsb_wire_size () =
  let w = Ycsb.create ~records:100 ~field_size:100 ~payload_bytes:64 ~seed:12L () in
  let t = Ycsb.next_txn w ~client:0 in
  let expected = 16 + 64 + 1 + 14 (* "user%010d" *) + 100 in
  check Alcotest.int "wire size" expected (Ycsb.txn_wire_size t)

let test_ycsb_keys_canonical () =
  check Alcotest.string "key encoding" "user0000000042" (Ycsb.key_of_index 42)

let test_ycsb_presets () =
  check (Alcotest.float 1e-9) "A" 0.5 (Ycsb.preset_write_ratio Ycsb.Workload_a);
  check (Alcotest.float 1e-9) "B" 0.05 (Ycsb.preset_write_ratio Ycsb.Workload_b);
  check (Alcotest.float 1e-9) "C" 0.0 (Ycsb.preset_write_ratio Ycsb.Workload_c);
  check (Alcotest.float 1e-9) "write-only" 1.0 (Ycsb.preset_write_ratio Ycsb.Write_only);
  (* Workload C emits only reads; workload A emits roughly half and half. *)
  let wc = Ycsb.of_preset ~records:100 Ycsb.Workload_c ~seed:5L in
  for _ = 1 to 50 do
    let t = Ycsb.next_txn wc ~client:0 in
    List.iter
      (function Ycsb.Read _ -> () | Ycsb.Write _ -> Alcotest.fail "write in workload C")
      t.Ycsb.ops
  done;
  let wa = Ycsb.of_preset ~records:100 ~ops_per_txn:1 Ycsb.Workload_a ~seed:6L in
  let writes = ref 0 in
  for _ = 1 to 2000 do
    let t = Ycsb.next_txn wa ~client:0 in
    List.iter (function Ycsb.Write _ -> incr writes | Ycsb.Read _ -> ()) t.Ycsb.ops
  done;
  Alcotest.(check bool)
    (Printf.sprintf "A near 50%% writes (%d/2000)" !writes)
    true
    (!writes > 850 && !writes < 1150)

let prop_zipf_sample_in_range =
  QCheck.Test.make ~name:"zipf: samples always in range for random n" ~count:100
    QCheck.(int_range 1 5000)
    (fun n ->
      let z = Zipf.create ~n () in
      let rng = Rng.create (Int64.of_int n) in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Zipf.sample z rng in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let () =
  Alcotest.run "rdb_workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "determinism" `Quick test_zipf_determinism;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "uniform degenerate" `Quick test_zipf_uniform;
          Alcotest.test_case "validation" `Quick test_zipf_validation;
          qtest prop_zipf_sample_in_range;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "determinism" `Quick test_ycsb_determinism;
          Alcotest.test_case "unique txn ids" `Quick test_ycsb_txn_ids_unique;
          Alcotest.test_case "write-only default" `Quick test_ycsb_write_only_default;
          Alcotest.test_case "read ratio" `Quick test_ycsb_read_ratio;
          Alcotest.test_case "multi-operation" `Quick test_ycsb_multi_op;
          Alcotest.test_case "load and apply" `Quick test_ycsb_load_and_apply;
          Alcotest.test_case "wire size" `Quick test_ycsb_wire_size;
          Alcotest.test_case "canonical keys" `Quick test_ycsb_keys_canonical;
          Alcotest.test_case "standard workload presets" `Quick test_ycsb_presets;
        ] );
    ]

(* CLI for the campaign wedge-class gate.

     campaign_gate BASELINE.json CURRENT.json [--hazard-band PCT]
                   [--degraded-band PCT]

   Exit status: 0 when no (protocol, schedule-family) class regressed
   against the committed baseline, 1 on any new wedge/unsafe class, any
   banded rate regression, or lost coverage, 2 on usage or parse errors.
   See EXPERIMENTS.md ("Fault campaigns and the wedge-class gate"). *)

module Check = Rdb_gate.Campaign_check

let usage () =
  prerr_endline
    "usage: campaign_gate BASELINE.json CURRENT.json [--hazard-band PCT] [--degraded-band PCT]";
  exit 2

let () =
  let files = ref [] in
  let tol = ref Check.default_tolerance in
  let rec parse = function
    | [] -> ()
    | ("--hazard-band" | "--degraded-band") :: [] -> usage ()
    | "--hazard-band" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> tol := { !tol with Check.hazard_band = f /. 100.0 }
      | _ -> usage ());
      parse rest
    | "--degraded-band" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> tol := { !tol with Check.degraded_band = f /. 100.0 }
      | _ -> usage ());
      parse rest
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
      files := f :: !files;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !files with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let read path =
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> (
      match Check.parse_report text with
      | Ok doc -> doc
      | Error e ->
        Printf.eprintf "campaign_gate: %s: %s\n" path e;
        exit 2)
    | exception Sys_error e ->
      Printf.eprintf "campaign_gate: %s\n" e;
      exit 2
  in
  let baseline = read baseline_path in
  let current = read current_path in
  if baseline.Check.quick <> current.Check.quick then begin
    Printf.eprintf
      "campaign_gate: refusing to compare a quick campaign against a full one (baseline \
       quick=%b, current quick=%b)\n"
      baseline.Check.quick current.Check.quick;
    exit 2
  end;
  let cs = Check.compare_reports !tol ~baseline ~current in
  Check.report stdout cs;
  if Check.failed cs then begin
    print_endline "campaign_gate: FAIL (wedge-class regression against the baseline)";
    exit 1
  end
  else print_endline "campaign_gate: OK"

#!/bin/sh
# Docs cross-reference checker: every relative link target mentioned in the
# repo's top-level *.md files must exist on disk.
#
# Checks two shapes:
#   1. Markdown links [text](target) whose target is a relative path
#      (external http(s)/mailto links and pure #anchors are skipped; a
#      trailing #anchor on a relative path is stripped before the check).
#   2. Backticked path mentions like `bench/main.ml` or `tools/foo.sh` that
#      look like repo paths (contain a / and end in a known extension).
#
# Exit 0 when every target resolves, 1 otherwise (listing the offenders).
set -u

cd "$(dirname "$0")/.." || exit 2

fail=0

for doc in *.md; do
  [ -f "$doc" ] || continue

  # --- markdown link targets ---------------------------------------------
  targets=$(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
  for t in $targets; do
    case "$t" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path=${t%%#*}
    [ -n "$path" ] || continue
    if [ ! -e "$path" ]; then
      echo "$doc: broken link target: $t"
      fail=1
    fi
  done

  # --- backticked repo-path mentions -------------------------------------
  mentions=$(grep -o '`[A-Za-z0-9_./-]*`' "$doc" | tr -d '`')
  for m in $mentions; do
    case "$m" in
      */*) ;;
      *) continue ;;
    esac
    case "$m" in
      *.ml | *.mli | *.md | *.sh | *.yml | *.json) ;;
      *) continue ;;
    esac
    case "$m" in
      _build/* | */_build/*) continue ;;
    esac
    if [ ! -e "$m" ]; then
      echo "$doc: mentions missing file: $m"
      fail=1
    fi
  done
done

if [ "$fail" -eq 0 ]; then
  echo "doc links: OK"
fi
exit "$fail"

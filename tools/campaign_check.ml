(* The campaign wedge-class gate.

   A "class" is a (protocol, schedule-family) pair aggregated over every
   matrix cell that ran it.  The contract enforced against the committed
   baseline:

   - a class that was hazard-free in the baseline (no wedged or unsafe
     runs) must stay hazard-free — one new wedged run in a clean class is
     a liveness regression and fails the gate;
   - a class that was already hazardous may drift, but only within an
     absolute tolerance band on its hazard rate (and likewise its
     degraded rate): known-bad cells are tracked, not ignored;
   - a baseline class missing from the current report is lost coverage
     and fails — shrinking the sweep must be an explicit baseline edit;
   - a class new in the current report is informational unless it is
     hazardous, in which case it fails like any other new wedge class. *)

type klass = {
  protocol : string;
  family : string;
  runs : int;
  wedged : int;
  unsafe : int;
  degraded : int;
}

type doc = { quick : bool; classes : klass list }

let hazard_rate k = if k.runs = 0 then 0.0 else float_of_int (k.wedged + k.unsafe) /. float_of_int k.runs

let degraded_rate k = if k.runs = 0 then 0.0 else float_of_int k.degraded /. float_of_int k.runs

let schema = "campaign-report/v1"

let parse_report (text : string) : (doc, string) result =
  match Gate.parse_json text with
  | exception Gate.Parse e -> Error e
  | j -> (
    let str name = match Gate.field name j with Some (Gate.Jstr s) -> Some s | _ -> None in
    match str "schema" with
    | Some s when s = schema -> (
      let quick = match Gate.field "quick" j with Some (Gate.Jbool b) -> b | _ -> false in
      match Gate.field "cells" j with
      | Some (Gate.Jlist cells) -> (
        let cell_class c =
          let str name = match Gate.field name c with Some (Gate.Jstr s) -> Some s | _ -> None in
          let num name =
            match Gate.field name c with Some (Gate.Jnum v) -> Some (int_of_float v) | _ -> None
          in
          match (str "protocol", str "family", num "runs", num "wedged", num "unsafe", num "degraded") with
          | Some protocol, Some family, Some runs, Some wedged, Some unsafe, Some degraded ->
            Ok { protocol; family; runs; wedged; unsafe; degraded }
          | _ -> Error "cell missing protocol/family/runs/wedged/unsafe/degraded"
        in
        let rec fold acc = function
          | [] -> Ok (List.rev acc)
          | c :: rest -> ( match cell_class c with Ok k -> fold (k :: acc) rest | Error e -> Error e)
        in
        match fold [] cells with
        | Error e -> Error e
        | Ok per_cell ->
          (* aggregate cells into (protocol, family) classes, sorted *)
          let merge acc k =
            let key ka = (ka.protocol, ka.family) in
            match List.partition (fun ka -> key ka = key k) acc with
            | [ existing ], rest ->
              {
                existing with
                runs = existing.runs + k.runs;
                wedged = existing.wedged + k.wedged;
                unsafe = existing.unsafe + k.unsafe;
                degraded = existing.degraded + k.degraded;
              }
              :: rest
            | _, rest -> k :: rest
          in
          let classes =
            List.sort
              (fun a b -> compare (a.protocol, a.family) (b.protocol, b.family))
              (List.fold_left merge [] per_cell)
          in
          Ok { quick; classes })
      | _ -> Error "missing cells array")
    | Some s -> Error (Printf.sprintf "unexpected schema %S (want %S)" s schema)
    | None -> Error "missing schema field")

type tolerance = { hazard_band : float; degraded_band : float }

(* Absolute bands on the per-class rates: a known-hazardous class may
   wobble by 10 points of hazard, a known-degraded one by 15 points of
   degraded rate, before the gate calls it a regression. *)
let default_tolerance = { hazard_band = 0.10; degraded_band = 0.15 }

type verdict =
  | Ok_class  (** within bands *)
  | New_hazard  (** wedged/unsafe runs in a class that was clean (or absent) in the baseline *)
  | Hazard_regressed  (** known-hazardous class worsened beyond the band *)
  | Degraded_regressed  (** degraded rate worsened beyond the band *)
  | Lost_coverage  (** baseline class absent from the current report *)
  | New_clean  (** class absent from the baseline, no hazard — informational *)

let verdict_name = function
  | Ok_class -> "ok"
  | New_hazard -> "NEW-HAZARD"
  | Hazard_regressed -> "HAZARD-REGRESSED"
  | Degraded_regressed -> "DEGRADED-REGRESSED"
  | Lost_coverage -> "LOST-COVERAGE"
  | New_clean -> "new"

let fatal = function
  | New_hazard | Hazard_regressed | Degraded_regressed | Lost_coverage -> true
  | Ok_class | New_clean -> false

type comparison = {
  c_protocol : string;
  c_family : string;
  verdict : verdict;
  detail : string;
}

let compare_reports (tol : tolerance) ~(baseline : doc) ~(current : doc) : comparison list =
  let find d p f = List.find_opt (fun k -> k.protocol = p && k.family = f) d.classes in
  let pct v = Printf.sprintf "%.0f%%" (100.0 *. v) in
  let of_baseline b =
    match find current b.protocol b.family with
    | None ->
      {
        c_protocol = b.protocol;
        c_family = b.family;
        verdict = Lost_coverage;
        detail = Printf.sprintf "baseline ran %d runs here, current ran none" b.runs;
      }
    | Some c ->
      let hb = hazard_rate b and hc = hazard_rate c in
      let db = degraded_rate b and dc = degraded_rate c in
      let verdict, detail =
        if hb = 0.0 && hc > 0.0 then
          ( New_hazard,
            Printf.sprintf "clean in baseline, now %d wedged + %d unsafe of %d runs (%s)" c.wedged
              c.unsafe c.runs (pct hc) )
        else if hc > hb +. tol.hazard_band then
          ( Hazard_regressed,
            Printf.sprintf "hazard %s -> %s exceeds +%s band" (pct hb) (pct hc)
              (pct tol.hazard_band) )
        else if dc > db +. tol.degraded_band then
          ( Degraded_regressed,
            Printf.sprintf "degraded %s -> %s exceeds +%s band" (pct db) (pct dc)
              (pct tol.degraded_band) )
        else (Ok_class, Printf.sprintf "hazard %s -> %s" (pct hb) (pct hc))
      in
      { c_protocol = b.protocol; c_family = b.family; verdict; detail }
  in
  let of_new c =
    if find baseline c.protocol c.family <> None then None
    else
      let hc = hazard_rate c in
      if hc > 0.0 then
        Some
          {
            c_protocol = c.protocol;
            c_family = c.family;
            verdict = New_hazard;
            detail =
              Printf.sprintf "new class arrives hazardous: %d wedged + %d unsafe of %d runs (%s)"
                c.wedged c.unsafe c.runs (pct hc);
          }
      else
        Some
          {
            c_protocol = c.protocol;
            c_family = c.family;
            verdict = New_clean;
            detail = Printf.sprintf "new clean class (%d runs)" c.runs;
          }
  in
  List.map of_baseline baseline.classes @ List.filter_map of_new current.classes

let failed (cs : comparison list) = List.exists (fun c -> fatal c.verdict) cs

let report oc (cs : comparison list) =
  List.iter
    (fun c ->
      Printf.fprintf oc "%-20s %-12s %-18s %s\n" (c.c_protocol ^ "/" ^ c.c_family)
        (verdict_name c.verdict)
        (if fatal c.verdict then "FAIL" else "")
        c.detail)
    cs

(* The benchmark regression gate: compare a bench JSON run (bench/main.exe
   --json) against the committed baseline, with per-metric tolerance bands.

   Rows are keyed by (figure, config, metric).  A row present in the
   baseline but absent from the run is coverage loss and fails the gate;
   rows only in the run are reported but do not fail (a new figure lands
   first, then its baseline).  Micro rows (ns_per_op) measure real hardware
   and are advisory unless [strict_micro] — everything else comes from the
   deterministic simulator, where the only honest sources of drift are code
   changes, so the bands can be tight. *)

(* ---- a minimal JSON reader (no external dependencies) --------------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
          (if !pos >= n then fail "bad escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               if !pos + 4 > n then fail "bad \\u escape";
               let code = int_of_string ("0x" ^ String.sub s !pos 4) in
               pos := !pos + 4;
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else Buffer.add_char b '?' (* non-ASCII escapes don't occur in bench rows *)
             | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ();
        Jobj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jlist []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elems ();
        Jlist (List.rev !items)
      end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  v

(* ---- bench documents ------------------------------------------------------ *)

type row = {
  figure : string;
  config : string;
  metric : string;
  value : float;
  unit_ : string;
  higher_is_better : bool;
}

type doc = { quick : bool; rows : row list }

let field name = function
  | Jobj fields -> List.assoc_opt name fields
  | _ -> None

let parse_doc (text : string) : (doc, string) result =
  match parse_json text with
  | exception Parse msg -> Error ("JSON: " ^ msg)
  | j -> (
    match field "rows" j with
    | Some (Jlist items) -> (
      let quick = match field "quick" j with Some (Jbool b) -> b | _ -> false in
      try
        let rows =
          List.map
            (fun item ->
              let str name =
                match field name item with
                | Some (Jstr s) -> s
                | _ -> raise (Parse ("row missing string field " ^ name))
              in
              let num name =
                match field name item with
                | Some (Jnum f) -> f
                | _ -> raise (Parse ("row missing number field " ^ name))
              in
              let boolean name =
                match field name item with
                | Some (Jbool b) -> b
                | _ -> raise (Parse ("row missing bool field " ^ name))
              in
              {
                figure = str "figure";
                config = str "config";
                metric = str "metric";
                value = num "value";
                unit_ = str "unit";
                higher_is_better = boolean "higher_is_better";
              })
            items
        in
        Ok { quick; rows }
      with Parse msg -> Error msg)
    | _ -> Error "document has no \"rows\" array")

(* ---- comparison ----------------------------------------------------------- *)

type tolerance = {
  tput_tol : float;  (** relative band for throughput-like rows (default 0.08) *)
  lat_tol : float;  (** relative band for latency-like rows (default 0.15) *)
  micro_tol : float;  (** relative band for hardware ns/op rows (default 0.50) *)
  byz_tol : float;
      (** relative band for byzantine-figure rows (default 0.25): attacked
          runs sit in degraded regimes (timer-driven slow paths, view-change
          churn) where small code changes legitimately move counters more
          than steady-state throughput *)
  strict_micro : bool;  (** fail (not just warn) on micro regressions *)
}

let default_tolerance =
  { tput_tol = 0.08; lat_tol = 0.15; micro_tol = 0.50; byz_tol = 0.25; strict_micro = false }

type verdict =
  | Within  (** inside the band *)
  | Improved  (** outside the band, in the good direction *)
  | Regressed  (** outside the band, in the bad direction: fails the gate *)
  | Advisory  (** micro regression with [strict_micro] off: reported, not fatal *)
  | Missing  (** baseline row absent from the run: fails the gate *)

type comparison = {
  c_row : row;  (** the baseline row *)
  c_current : float option;
  c_delta : float;  (** relative change, signed; 0 when missing *)
  c_verdict : verdict;
}

let is_micro (r : row) = r.metric = "ns_per_op"
let is_byz (r : row) = r.figure = "byzantine"

let band tol r =
  if is_micro r then tol.micro_tol
  else if is_byz r then tol.byz_tol
  else if r.higher_is_better then tol.tput_tol
  else tol.lat_tol

let compare_rows tol (baseline : row) (current : float option) : comparison =
  match current with
  | None -> { c_row = baseline; c_current = None; c_delta = 0.0; c_verdict = Missing }
  | Some cur ->
    let delta =
      if baseline.value = 0.0 then if cur = 0.0 then 0.0 else Float.infinity
      else (cur -. baseline.value) /. Float.abs baseline.value
    in
    let worse = if baseline.higher_is_better then delta < 0.0 else delta > 0.0 in
    let outside = Float.abs delta > band tol baseline in
    let verdict =
      if not outside then Within
      else if not worse then Improved
      else if is_micro baseline && not tol.strict_micro then Advisory
      else Regressed
    in
    { c_row = baseline; c_current = Some cur; c_delta = delta; c_verdict = verdict }

let compare_docs tol ~(baseline : doc) ~(current : doc) : comparison list =
  let key (r : row) = (r.figure, r.config, r.metric) in
  let lookup = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace lookup (key r) r.value) current.rows;
  List.map (fun b -> compare_rows tol b (Hashtbl.find_opt lookup (key b))) baseline.rows

(* Rows in the run with no baseline counterpart (new coverage, not fatal). *)
let unmatched ~(baseline : doc) ~(current : doc) : row list =
  let key (r : row) = (r.figure, r.config, r.metric) in
  let known = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace known (key r) ()) baseline.rows;
  List.filter (fun r -> not (Hashtbl.mem known (key r))) current.rows

let failed (cs : comparison list) =
  List.exists (fun c -> match c.c_verdict with Regressed | Missing -> true | _ -> false) cs

let verdict_name = function
  | Within -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Advisory -> "advisory"
  | Missing -> "MISSING"

let report oc tol (cs : comparison list) (extra : row list) =
  Printf.fprintf oc "%-12s %-26s %-12s %14s %14s %9s  %s\n" "figure" "config" "metric" "baseline"
    "current" "delta" "verdict";
  List.iter
    (fun c ->
      let r = c.c_row in
      Printf.fprintf oc "%-12s %-26s %-12s %14.6g %14s %8.1f%%  %s (band %.0f%%)\n" r.figure
        r.config r.metric r.value
        (match c.c_current with Some v -> Printf.sprintf "%.6g" v | None -> "-")
        (100.0 *. c.c_delta) (verdict_name c.c_verdict)
        (100.0 *. band tol r))
    cs;
  List.iter
    (fun (r : row) ->
      Printf.fprintf oc "%-12s %-26s %-12s %14s %14.6g %9s  new row (no baseline)\n" r.figure
        r.config r.metric "-" r.value "")
    extra;
  let count v = List.length (List.filter (fun c -> c.c_verdict = v) cs) in
  Printf.fprintf oc
    "\n%d rows: %d ok, %d improved, %d advisory, %d regressed, %d missing; %d new\n"
    (List.length cs) (count Within) (count Improved) (count Advisory) (count Regressed)
    (count Missing) (List.length extra)

(* CLI for the benchmark regression gate.

     bench_gate BASELINE.json CURRENT.json [--tput-tol PCT] [--lat-tol PCT]
                [--micro-tol PCT] [--byz-tol PCT] [--strict-micro]

   Exit status: 0 when every baseline row is within its band (or improved),
   1 on any regression or missing row, 2 on usage or parse errors.  See
   EXPERIMENTS.md ("Bench JSON and the regression gate"). *)

module Gate = Rdb_gate.Gate

let usage () =
  prerr_endline
    "usage: bench_gate BASELINE.json CURRENT.json [--tput-tol PCT] [--lat-tol PCT] [--micro-tol \
     PCT] [--byz-tol PCT] [--strict-micro]";
  exit 2

let () =
  let files = ref [] in
  let tol = ref Gate.default_tolerance in
  let rec parse = function
    | [] -> ()
    | "--strict-micro" :: rest ->
      tol := { !tol with Gate.strict_micro = true };
      parse rest
    | ("--tput-tol" | "--lat-tol" | "--micro-tol" | "--byz-tol") :: [] -> usage ()
    | "--tput-tol" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> tol := { !tol with Gate.tput_tol = f /. 100.0 }
      | _ -> usage ());
      parse rest
    | "--lat-tol" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> tol := { !tol with Gate.lat_tol = f /. 100.0 }
      | _ -> usage ());
      parse rest
    | "--micro-tol" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> tol := { !tol with Gate.micro_tol = f /. 100.0 }
      | _ -> usage ());
      parse rest
    | "--byz-tol" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> tol := { !tol with Gate.byz_tol = f /. 100.0 }
      | _ -> usage ());
      parse rest
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
      files := f :: !files;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !files with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let read path =
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> (
      match Gate.parse_doc text with
      | Ok doc -> doc
      | Error e ->
        Printf.eprintf "bench_gate: %s: %s\n" path e;
        exit 2)
    | exception Sys_error e ->
      Printf.eprintf "bench_gate: %s\n" e;
      exit 2
  in
  let baseline = read baseline_path in
  let current = read current_path in
  if baseline.Gate.quick <> current.Gate.quick then begin
    Printf.eprintf
      "bench_gate: refusing to compare a quick run against a full run (baseline quick=%b, \
       current quick=%b)\n"
      baseline.Gate.quick current.Gate.quick;
    exit 2
  end;
  let cs = Gate.compare_docs !tol ~baseline ~current in
  let extra = Gate.unmatched ~baseline ~current in
  Gate.report stdout !tol cs extra;
  if Gate.failed cs then begin
    print_endline "bench_gate: FAIL (regression or lost coverage against the baseline)";
    exit 1
  end
  else print_endline "bench_gate: OK"

(* CLI for the fault-campaign harness.

     campaign [--quick | --full | --cliff] [--jobs N] [--seed S]
              [--budget EVENTS] [--seeds N] [--out FILE] [--no-summary]

   Runs the declared sweep matrix (quick by default: the CI smoke sweep),
   writes machine-readable campaign-report/v1 JSON to --out (default
   campaign.json) and a human summary with the liveness cliffs to stdout.
   The JSON is byte-deterministic for a given matrix: same seed, same
   bytes, whatever --jobs says. *)

module Campaign = Rdb_campaign.Campaign
module Report = Rdb_obs.Campaign_report

let usage () =
  prerr_endline
    "usage: campaign [--quick | --full | --cliff] [--jobs N] [--seed S] [--budget EVENTS] \
     [--seeds N] [--out FILE] [--no-summary]";
  exit 2

let () =
  let quick = ref true in
  let cliff = ref false in
  let jobs = ref (max 1 (Domain.recommended_domain_count () - 1)) in
  let out = ref "campaign.json" in
  let summary = ref true in
  let seed = ref None in
  let budget = ref None in
  let seeds = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--full" :: rest ->
      quick := false;
      parse rest
    | "--cliff" :: rest ->
      cliff := true;
      parse rest
    | "--no-summary" :: rest ->
      summary := false;
      parse rest
    | ("--jobs" | "--seed" | "--budget" | "--seeds" | "--out") :: [] -> usage ()
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with Some n when n >= 1 -> jobs := n | _ -> usage ());
      parse rest
    | "--seed" :: v :: rest ->
      (match Int64.of_string_opt v with Some s -> seed := Some s | None -> usage ());
      parse rest
    | "--budget" :: v :: rest ->
      (match int_of_string_opt v with Some n when n > 0 -> budget := Some n | _ -> usage ());
      parse rest
    | "--seeds" :: v :: rest ->
      (match int_of_string_opt v with Some n when n >= 1 -> seeds := Some n | _ -> usage ());
      parse rest
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let m =
    if !cliff then Campaign.cliff_matrix
    else if !quick then Campaign.quick_matrix
    else Campaign.default_matrix
  in
  let m = match !seed with Some s -> { m with Campaign.matrix_seed = s } | None -> m in
  let m = match !budget with Some b -> { m with Campaign.budget_events = b } | None -> m in
  let m = match !seeds with Some s -> { m with Campaign.seeds = s } | None -> m in
  let total = Campaign.total_runs m in
  Printf.eprintf "campaign: %d runs on %d domain(s)\n%!" total !jobs;
  let t0 = Unix.gettimeofday () in
  let progress ~done_ ~total =
    if done_ mod 25 = 0 || done_ = total then
      Printf.eprintf "campaign: %d/%d runs (%.0fs)\n%!" done_ total (Unix.gettimeofday () -. t0)
  in
  let report = Campaign.run ~jobs:!jobs ~progress m in
  let json = Report.to_json report in
  Out_channel.with_open_bin !out (fun oc -> Out_channel.output_string oc json);
  Printf.eprintf "campaign: wrote %s (%.0fs total)\n%!" !out (Unix.gettimeofday () -. t0);
  if !summary then Format.printf "%a@." Report.pp report

(* resdb_sim: run one ResilientDB cluster experiment from the command line.

   Examples:
     resdb_sim                                      # paper-default PBFT run
     resdb_sim --protocol zyzzyva --crashed 1       # Fig 17's collapse
     resdb_sim -n 32 --batch 1000 --clients 40000
     resdb_sim --replica-scheme rsa --verbose       # Fig 13's RSA point
     resdb_sim --shards 4 --cross-shard 0.1         # sharded scale-out

   Every configuration-axis flag below is derived from [Params.Spec] — the
   same table the fault-campaign report spells its axis labels with — so a
   flag name, its --help text and the campaign JSON can never disagree.
   Only run-shaping switches (--byzantine, --verbose, --trace-out, ...)
   are hand-written. *)

open Cmdliner
module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Axis = Rdb_obs.Axis

(* ---- flags derived from the axis table ------------------------------------- *)

let doc_with_default (e : Params.Spec.entry) =
  let d = e.get Params.default in
  if d = "" || e.bool_flag then e.doc else Printf.sprintf "%s (default: %s)" e.doc d

(* The spec term evaluates to the [(axis, value)] assignments the user
   actually passed, in table order. *)
let spec_term : (string * string) list Term.t =
  let entry_term (e : Params.Spec.entry) =
    let names = Axis.to_flag e.key :: e.aliases in
    if e.bool_flag then
      Term.(
        const (fun b -> if b then Some (e.key, "true") else None)
        $ Arg.(value & flag & info names ~doc:e.doc))
    else
      Term.(
        const (fun v -> Option.map (fun v -> (e.key, v)) v)
        $ Arg.(value & opt (some string) None & info names ~doc:(doc_with_default e)))
  in
  let raw =
    List.fold_left
      (fun acc e -> Term.(const (fun xs x -> x :: xs) $ acc $ entry_term e))
      (Term.const []) Params.Spec.entries
  in
  Term.(const (fun xs -> List.filter_map Fun.id (List.rev xs)) $ raw)

(* ---- hand-written run-shaping flags ---------------------------------------- *)

type attack = Equivocate | Corrupt_mac | Corrupt_digest | Silence | Vc_spam

let attack_name = function
  | Equivocate -> "equivocate"
  | Corrupt_mac -> "corrupt-mac"
  | Corrupt_digest -> "corrupt-digest"
  | Silence -> "silence"
  | Vc_spam -> "vc-spam"

let byzantine_conv =
  let parse = function
    | "equivocate" -> Ok Equivocate
    | "corrupt-mac" -> Ok Corrupt_mac
    | "corrupt-digest" -> Ok Corrupt_digest
    | "silence" -> Ok Silence
    | "vc-spam" | "view-change-spam" -> Ok Vc_spam
    | s ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown byzantine strategy %S (equivocate|corrupt-mac|corrupt-digest|silence|vc-spam)"
             s))
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (attack_name a))

(* The attack schedule for --byzantine: each attacker lies for the whole
   run.  Proposal-side strategies (equivocate, corrupt-digest) go on the
   primaries — backups never propose, so they would be no-ops there; the
   rest go on backups, counted from the highest id down.  The attacker
   count is clamped to f = (n-1)/3, the bound the hardening covers (and
   Nemesis.validate enforces). *)
let byzantine_schedule ~n ~f ~horizon strategy attackers =
  let module Nemesis = Rdb_core.Nemesis in
  let module Sim = Rdb_des.Sim in
  let k = max 1 (min attackers f) in
  let from_ = Sim.ms 10.0 in
  let until = horizon in
  List.concat
    (List.init k (fun i ->
         match strategy with
         | Equivocate -> Nemesis.equivocate_window ~from_ ~until i
         | Corrupt_digest -> Nemesis.corrupt_digest_window ~from_ ~until i 0.5
         | Corrupt_mac -> Nemesis.corrupt_mac_window ~from_ ~until (n - 1 - i) 1.0
         | Silence -> Nemesis.silence_window ~from_ ~until (n - 1 - i) [ 0 ]
         | Vc_spam ->
           Nemesis.view_change_spam_window ~from_ ~until (n - 1 - i) ~period:(Sim.ms 5.0)))

let run assigns durable_flag byzantine attackers verbose trace_out trace_csv upper_bound =
  let assigns = if durable_flag then assigns @ [ (Axis.backend, "durable") ] else assigns in
  let p =
    match Params.Spec.apply assigns Params.default with
    | Ok p -> p
    | Error m ->
      Printf.eprintf "invalid configuration: %s\n" m;
      exit 1
  in
  let p =
    Params.map_obs
      (fun o ->
        {
          o with
          Params.Obs.trace = o.Params.Obs.trace || trace_out <> None || trace_csv <> None;
          trace_out;
          trace_csv;
        })
      p
  in
  let p =
    match byzantine with
    | None -> p
    | Some strategy ->
      let f = (p.Params.n - 1) / 3 in
      let horizon = p.Params.warmup + p.Params.measure + Rdb_des.Sim.seconds 1.0 in
      Params.with_nemesis
        (byzantine_schedule ~n:p.Params.n ~f ~horizon strategy attackers)
        p
  in
  (try Params.validate p
   with Invalid_argument m ->
     Printf.eprintf "invalid configuration: %s\n" m;
     exit 1);
  if upper_bound then begin
    let ne = Rdb_core.Upper_bound.run ~p ~execute:false () in
    let ex = Rdb_core.Upper_bound.run ~p ~execute:true () in
    Printf.printf "upper bound, %d clients:\n" p.Params.clients;
    Printf.printf "  no-execution: %.0f txn/s (avg latency %.4fs)\n" ne.Rdb_core.Upper_bound.throughput_tps
      (Rdb_des.Stats.mean ne.Rdb_core.Upper_bound.latency);
    Printf.printf "  execution:    %.0f txn/s (avg latency %.4fs)\n" ex.Rdb_core.Upper_bound.throughput_tps
      (Rdb_des.Stats.mean ex.Rdb_core.Upper_bound.latency)
  end
  else begin
    Printf.printf "running %s: n=%d f=%d clients=%d batch=%d threads=%dB/%dE cores=%d%s%s%s%s\n%!"
      (Params.protocol_name p.Params.protocol)
      p.Params.n (Params.f p) p.Params.clients p.Params.batch_size p.Params.batch_threads
      p.Params.execute_threads p.Params.cores
      (if p.Params.instances > 1 then Printf.sprintf " instances=%d" p.Params.instances else "")
      (if p.Params.shards > 1 then
         Printf.sprintf " shards=%d cross=%.3g" p.Params.shards p.Params.cross_shard_fraction
       else "")
      (if p.Params.crashed_backups > 0 then Printf.sprintf " crashed=%d" p.Params.crashed_backups
       else "")
      (match byzantine with
      | Some a ->
        Printf.sprintf " byzantine=%s attackers=%d" (attack_name a)
          (max 1 (min attackers (Params.f p)))
      | None -> "");
    let m =
      if p.Params.shards > 1 then begin
        let r = Rdb_shard.Deployment.run p in
        Format.printf "%a@." Rdb_shard.Deployment.pp_summary r;
        r.Rdb_shard.Deployment.aggregate
      end
      else Cluster.run p
    in
    Format.printf "%a@." Metrics.pp m;
    if verbose then begin
      Format.printf "@[<v>%a@]@." Metrics.pp_saturation m;
      Format.printf "%a@." Rdb_obs.Bottleneck.pp
        (Metrics.bottleneck_report ~window_s:(Rdb_des.Sim.to_seconds p.Params.measure) m)
    end;
    (match trace_out with
    | Some f -> Printf.printf "trace: %s (chrome://tracing or ui.perfetto.dev)\n" f
    | None -> ());
    match trace_csv with
    | Some f -> Printf.printf "series CSV: %s\n" f
    | None -> ()
  end;
  0

let cmd =
  let open Arg in
  let durable =
    value & flag
    & info [ "durable" ]
        ~doc:"Shorthand for --backend durable (the WAL + B-tree block store)."
  in
  let byzantine =
    value
    & opt (some byzantine_conv) None
    & info [ "byzantine" ]
        ~doc:
          "Run under an active byzantine attack for the whole run \
           (equivocate|corrupt-mac|corrupt-digest|silence|vc-spam).  Proposal attacks \
           target the primaries, the rest target backups; receivers reject, count and \
           survive — see the byzantine counters in the metrics output."
  in
  let attackers =
    value & opt int 1
    & info [ "attackers" ]
        ~doc:"Concurrent byzantine attackers for --byzantine (clamped to f = (n-1)/3)."
  in
  let verbose = value & flag & info [ "v"; "verbose" ] ~doc:"Print per-replica thread saturation." in
  let trace_out =
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~doc:
          "Write a Chrome trace_event JSON of the run (one process per replica, one track per \
           pipeline thread — per-instance worker-i tracks under --instances)."
  in
  let trace_csv =
    value & opt (some string) None
    & info [ "trace-csv" ] ~doc:"Write the periodic time-series samples as CSV."
  in
  let ub = value & flag & info [ "upper-bound" ] ~doc:"Run the Fig 7 no-consensus upper bound instead." in
  let term =
    Term.(
      const run $ spec_term $ durable $ byzantine $ attackers $ verbose $ trace_out $ trace_csv
      $ ub)
  in
  Cmd.v
    (Cmd.info "resdb_sim" ~version:"1.0.0"
       ~doc:"Simulate a ResilientDB permissioned-blockchain cluster"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs one deterministic discrete-event simulation of the ResilientDB fabric \
              (ICDCS'20, 'Permissioned Blockchain Through the Looking Glass') and reports \
              throughput, latency and pipeline saturation.  With --shards > 1 the run is a \
              sharded deployment: S independent consensus groups over a partitioned \
              keyspace, cross-shard transactions committed by 2PC over BFT.";
         ])
    term

let () = exit (Cmd.eval' cmd)

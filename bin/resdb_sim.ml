(* resdb_sim: run one ResilientDB cluster experiment from the command line.

   Examples:
     resdb_sim                                      # paper-default PBFT run
     resdb_sim --protocol zyzzyva --crashed 1       # Fig 17's collapse
     resdb_sim -n 32 --batch 1000 --clients 40000
     resdb_sim --replica-scheme rsa --verbose       # Fig 13's RSA point *)

open Cmdliner
module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Signer = Rdb_crypto.Signer

let scheme_conv =
  let parse = function
    | "none" -> Ok Signer.No_sig
    | "cmac" -> Ok Signer.Cmac_aes
    | "ed25519" -> Ok Signer.Ed25519
    | "rsa" -> Ok Signer.Rsa
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S (none|cmac|ed25519|rsa)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Signer.scheme_name s))

let protocol_conv =
  let parse = function
    | "pbft" -> Ok Params.Pbft
    | "zyzzyva" | "zyz" -> Ok Params.Zyzzyva
    | "hotstuff" | "hs" -> Ok Params.Hotstuff
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S (pbft|zyzzyva|hotstuff)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Params.protocol_name p))

type attack = Equivocate | Corrupt_mac | Corrupt_digest | Silence | Vc_spam

let attack_name = function
  | Equivocate -> "equivocate"
  | Corrupt_mac -> "corrupt-mac"
  | Corrupt_digest -> "corrupt-digest"
  | Silence -> "silence"
  | Vc_spam -> "vc-spam"

let byzantine_conv =
  let parse = function
    | "equivocate" -> Ok Equivocate
    | "corrupt-mac" -> Ok Corrupt_mac
    | "corrupt-digest" -> Ok Corrupt_digest
    | "silence" -> Ok Silence
    | "vc-spam" | "view-change-spam" -> Ok Vc_spam
    | s ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown byzantine strategy %S (equivocate|corrupt-mac|corrupt-digest|silence|vc-spam)"
             s))
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (attack_name a))

(* The attack schedule for --byzantine: each attacker lies for the whole
   run.  Proposal-side strategies (equivocate, corrupt-digest) go on the
   primaries — backups never propose, so they would be no-ops there; the
   rest go on backups, counted from the highest id down.  The attacker
   count is clamped to f = (n-1)/3, the bound the hardening covers (and
   Nemesis.validate enforces). *)
let byzantine_schedule ~n ~f ~horizon strategy attackers =
  let module Nemesis = Rdb_core.Nemesis in
  let module Sim = Rdb_des.Sim in
  let k = max 1 (min attackers f) in
  let from_ = Sim.ms 10.0 in
  let until = horizon in
  List.concat
    (List.init k (fun i ->
         match strategy with
         | Equivocate -> Nemesis.equivocate_window ~from_ ~until i
         | Corrupt_digest -> Nemesis.corrupt_digest_window ~from_ ~until i 0.5
         | Corrupt_mac -> Nemesis.corrupt_mac_window ~from_ ~until (n - 1 - i) 1.0
         | Silence -> Nemesis.silence_window ~from_ ~until (n - 1 - i) [ 0 ]
         | Vc_spam ->
           Nemesis.view_change_spam_window ~from_ ~until (n - 1 - i) ~period:(Sim.ms 5.0)))

let run protocol n clients batch_size ops payload client_scheme replica_scheme reply_scheme
    sqlite durable data_dir cores instances batch_threads execute_threads crashed byzantine
    attackers warmup measure seed verbose trace_out trace_csv upper_bound =
  let d = Params.default in
  let nemesis =
    match byzantine with
    | None -> []
    | Some strategy ->
      let f = (n - 1) / 3 in
      let horizon = Rdb_des.Sim.seconds (warmup +. measure +. 1.0) in
      byzantine_schedule ~n ~f ~horizon strategy attackers
  in
  let p =
    {
      d with
      Params.protocol;
      nemesis;
      n;
      clients;
      batch_size;
      ops_per_txn = ops;
      preprepare_payload_bytes = payload;
      client_scheme;
      replica_scheme;
      reply_scheme;
      sqlite;
      durable = durable || data_dir <> None;
      data_dir;
      cores;
      instances;
      batch_threads;
      execute_threads;
      crashed_backups = crashed;
      warmup = Rdb_des.Sim.seconds warmup;
      measure = Rdb_des.Sim.seconds measure;
      seed = Int64.of_int seed;
      trace = trace_out <> None || trace_csv <> None;
      trace_out;
      trace_csv;
    }
  in
  (try Params.validate p
   with Invalid_argument m ->
     Printf.eprintf "invalid configuration: %s\n" m;
     exit 1);
  if upper_bound then begin
    let ne = Rdb_core.Upper_bound.run ~p ~execute:false () in
    let ex = Rdb_core.Upper_bound.run ~p ~execute:true () in
    Printf.printf "upper bound, %d clients:\n" clients;
    Printf.printf "  no-execution: %.0f txn/s (avg latency %.4fs)\n" ne.Rdb_core.Upper_bound.throughput_tps
      (Rdb_des.Stats.mean ne.Rdb_core.Upper_bound.latency);
    Printf.printf "  execution:    %.0f txn/s (avg latency %.4fs)\n" ex.Rdb_core.Upper_bound.throughput_tps
      (Rdb_des.Stats.mean ex.Rdb_core.Upper_bound.latency)
  end
  else begin
    Printf.printf "running %s: n=%d f=%d clients=%d batch=%d threads=%dB/%dE cores=%d%s%s%s\n%!"
      (Params.protocol_name protocol) n (Params.f p) clients batch_size batch_threads
      execute_threads cores
      (if instances > 1 then Printf.sprintf " instances=%d" instances else "")
      (if crashed > 0 then Printf.sprintf " crashed=%d" crashed else "")
      (match byzantine with
      | Some a -> Printf.sprintf " byzantine=%s attackers=%d" (attack_name a) (max 1 (min attackers (Params.f p)))
      | None -> "");
    let m = Cluster.run p in
    Format.printf "%a@." Metrics.pp m;
    if verbose then begin
      Format.printf "@[<v>%a@]@." Metrics.pp_saturation m;
      Format.printf "%a@." Rdb_obs.Bottleneck.pp
        (Metrics.bottleneck_report ~window_s:measure m)
    end;
    (match trace_out with
    | Some f -> Printf.printf "trace: %s (chrome://tracing or ui.perfetto.dev)\n" f
    | None -> ());
    match trace_csv with
    | Some f -> Printf.printf "series CSV: %s\n" f
    | None -> ()
  end;
  0

let cmd =
  let open Arg in
  let protocol =
    value & opt protocol_conv Params.Pbft & info [ "p"; "protocol" ] ~doc:"Consensus protocol (pbft|zyzzyva|hotstuff)."
  in
  let n = value & opt int 16 & info [ "n"; "replicas" ] ~doc:"Number of replicas (>= 4)." in
  let clients = value & opt int 80_000 & info [ "c"; "clients" ] ~doc:"Closed-loop client population." in
  let batch = value & opt int 100 & info [ "b"; "batch" ] ~doc:"Transactions per batch." in
  let ops = value & opt int 1 & info [ "ops" ] ~doc:"Operations per transaction." in
  let payload =
    value & opt int 0 & info [ "payload" ] ~doc:"Extra Pre-prepare payload bytes (message-size experiments)."
  in
  let cs =
    value & opt scheme_conv Signer.Ed25519 & info [ "client-scheme" ] ~doc:"Client signature scheme."
  in
  let rs =
    value & opt scheme_conv Signer.Cmac_aes & info [ "replica-scheme" ] ~doc:"Replica-to-replica scheme."
  in
  let ps =
    value & opt scheme_conv Signer.Cmac_aes & info [ "reply-scheme" ] ~doc:"Replica-to-client reply scheme."
  in
  let sqlite = value & flag & info [ "sqlite" ] ~doc:"Use off-memory (SQLite-class) storage." in
  let durable =
    value & flag
    & info [ "durable" ]
        ~doc:
          "Back each replica's ledger with the durable WAL + B-tree block store (appends and \
           checkpoint flushes charged on the checkpoint-thread)."
  in
  let data_dir =
    value
    & opt (some string) None
    & info [ "data-dir" ]
        ~doc:
          "Directory for the durable block stores (implies --durable; one subdirectory per \
           replica).  Re-using a directory exercises crash-replay recovery; the default is a \
           fresh temporary directory per run."
  in
  let cores = value & opt int 8 & info [ "cores" ] ~doc:"CPU cores per replica." in
  let instances =
    value & opt int 1
    & info [ "k"; "instances" ]
        ~doc:
          "Concurrent PBFT consensus instances (multi-primary ordering; 1 = classic \
           single-primary PBFT)."
  in
  let bt = value & opt int 2 & info [ "B"; "batch-threads" ] ~doc:"Batch-threads at the primary (0 = worker batches)." in
  let et =
    value & opt int 1
    & info [ "E"; "execute-threads"; "exec-threads" ]
        ~doc:
          "Execute-threads: 0 = the worker executes, 1 = the paper's dedicated \
           execute-thread, >= 2 = conflict-aware parallel execution across E lanes \
           (non-conflicting transactions run concurrently; every replica still reaches \
           the serial-order state)."
  in
  let crashed = value & opt int 0 & info [ "crashed" ] ~doc:"Backups crashed at start (<= f)." in
  let byzantine =
    value
    & opt (some byzantine_conv) None
    & info [ "byzantine" ]
        ~doc:
          "Run under an active byzantine attack for the whole run \
           (equivocate|corrupt-mac|corrupt-digest|silence|vc-spam).  Proposal attacks \
           target the primaries, the rest target backups; receivers reject, count and \
           survive — see the byzantine counters in the metrics output."
  in
  let attackers =
    value & opt int 1
    & info [ "attackers" ]
        ~doc:"Concurrent byzantine attackers for --byzantine (clamped to f = (n-1)/3)."
  in
  let warmup = value & opt float 0.5 & info [ "warmup" ] ~doc:"Warmup seconds (simulated)." in
  let measure = value & opt float 1.0 & info [ "measure" ] ~doc:"Measurement seconds (simulated)." in
  let seed = value & opt int 0x5265736442 & info [ "seed" ] ~doc:"Random seed (runs are deterministic)." in
  let verbose = value & flag & info [ "v"; "verbose" ] ~doc:"Print per-replica thread saturation." in
  let trace_out =
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~doc:
          "Write a Chrome trace_event JSON of the run (one process per replica, one track per \
           pipeline thread — per-instance worker-i tracks under --instances)."
  in
  let trace_csv =
    value & opt (some string) None
    & info [ "trace-csv" ] ~doc:"Write the periodic time-series samples as CSV."
  in
  let ub = value & flag & info [ "upper-bound" ] ~doc:"Run the Fig 7 no-consensus upper bound instead." in
  let term =
    Term.(
      const run $ protocol $ n $ clients $ batch $ ops $ payload $ cs $ rs $ ps $ sqlite
      $ durable $ data_dir $ cores $ instances $ bt $ et $ crashed $ byzantine $ attackers
      $ warmup $ measure $ seed $ verbose $ trace_out $ trace_csv $ ub)
  in
  Cmd.v
    (Cmd.info "resdb_sim" ~version:"1.0.0"
       ~doc:"Simulate a ResilientDB permissioned-blockchain cluster"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs one deterministic discrete-event simulation of the ResilientDB fabric \
              (ICDCS'20, 'Permissioned Blockchain Through the Looking Glass') and reports \
              throughput, latency and pipeline saturation.";
         ])
    term

let () = exit (Cmd.eval' cmd)

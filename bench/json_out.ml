(* Machine-readable benchmark output ([--json FILE]): metric rows collected
   while figures run, written as one JSON document for tools/bench_gate.

   Rows from simulated (DES) runs are deterministic for a given seed and
   parameter set, so they compare bit-for-bit across machines; bechamel
   micro rows measure real hardware and are only advisory to the gate.  The
   schema is documented in EXPERIMENTS.md ("Bench JSON and the regression
   gate"). *)

module Stats = Rdb_des.Stats

type row = {
  figure : string;  (** which bench section produced the row *)
  config : string;  (** the configuration within the figure, e.g. "pbft-2B1E-n16-cached" *)
  metric : string;  (** "tput_tps", "lat_p50_ms", "lat_p99_ms", "ns_per_op", ... *)
  value : float;
  unit_ : string;
  higher_is_better : bool;
}

let rows : row list ref = ref []

let record ~figure ~config ~metric ~unit_ ~higher_is_better value =
  rows := { figure; config; metric; value; unit_; higher_is_better } :: !rows

(* The standard projection of one simulated run. *)
let record_run ~figure ~config (m : Rdb_core.Metrics.t) =
  let r = record ~figure ~config in
  r ~metric:"tput_tps" ~unit_:"txn/s" ~higher_is_better:true m.Rdb_core.Metrics.throughput_tps;
  let lat = m.Rdb_core.Metrics.latency in
  if Stats.count lat > 0 then begin
    r ~metric:"lat_p50_ms" ~unit_:"ms" ~higher_is_better:false
      (1000.0 *. Stats.percentile lat 50.0);
    r ~metric:"lat_p99_ms" ~unit_:"ms" ~higher_is_better:false
      (1000.0 *. Stats.percentile lat 99.0)
  end

let record_micro ~name ns =
  record ~figure:"micro" ~config:name ~metric:"ns_per_op" ~unit_:"ns" ~higher_is_better:false ns

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no NaN/Infinity; a degenerate measurement is recorded as 0. *)
let number v = if Float.is_finite v then Printf.sprintf "%.6g" v else "0"

let write ~quick path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema_version\": 1,\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b "  \"rows\": [\n";
  let rs = List.rev !rows in
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"figure\": \"%s\", \"config\": \"%s\", \"metric\": \"%s\", \"value\": %s, \
            \"unit\": \"%s\", \"higher_is_better\": %b}%s\n"
           (escape r.figure) (escape r.config) (escape r.metric) (number r.value) (escape r.unit_)
           r.higher_is_better
           (if i = List.length rs - 1 then "" else ","))
      )
    rs;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %d bench rows to %s\n%!" (List.length rs) path

(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (Figures 1 and 7-17, ICDCS'20 "Permissioned Blockchain Through
   the Looking Glass") on the simulated ResilientDB fabric, and runs
   bechamel microbenchmarks for the from-scratch crypto and storage
   substrates.

   Usage:  main.exe [quick] [fig1 fig7 fig8 ... fig17 micro]
   With no figure arguments, everything runs.  "quick" shortens the
   simulation windows (useful in CI).

   Paper columns are read off the published plots and summary sentences, so
   they are approximate; the reproduction targets shapes and ratios, not
   absolute numbers (see EXPERIMENTS.md). *)

open Rdb_core
module Signer = Rdb_crypto.Signer
module Stats = Rdb_des.Stats

let quick = Array.exists (fun a -> a = "quick") Sys.argv

let selected name =
  let figs =
    Array.to_list Sys.argv
    |> List.filter (fun a ->
           (String.length a > 2 && String.sub a 0 3 = "fig")
           || a = "micro" || a = "ablations" || a = "breakdown" || a = "consensus" || a = "multi"
           || a = "recovery" || a = "byzantine" || a = "exec" || a = "shard")
  in
  figs = [] || List.mem name figs

(* [--trace-out FILE] / [--trace-csv FILE]: where the breakdown figure's
   traced run writes its Chrome trace_event JSON / time-series CSV.
   [--json FILE]: machine-readable metric rows for tools/bench_gate. *)
let flag_value name =
  let rec go i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let trace_out = flag_value "--trace-out"
let trace_csv = flag_value "--trace-csv"
let json_out = flag_value "--json"

let base =
  Params.default
  |> Params.with_windows
       ~warmup:(Rdb_des.Sim.seconds (if quick then 0.2 else 0.4))
       ~measure:(Rdb_des.Sim.seconds (if quick then 0.3 else 0.6))

let k v = v /. 1000.0

(* Closed-loop steady-state latency by Little's law: with a saturated system
   the measured window under-reports latency (the backlog exceeds the
   window), so the tables report both. *)
let little p (m : Metrics.t) =
  if m.Metrics.throughput_tps <= 0.0 then nan
  else float_of_int p.Params.clients /. m.Metrics.throughput_tps

let header title = Printf.printf "\n==== %s ====\n%!" title

let row fmt = Printf.printf fmt

let run p = Cluster.run p

(* ---- Figure 1: headline — well-crafted PBFT vs protocol-centric Zyzzyva --- *)

let fig1 () =
  header
    "Figure 1: ResilientDB(PBFT, 2B1E pipeline) vs protocol-centric Zyzzyva, 4-32 replicas, 80K clients";
  row "%-4s  %-30s  %-30s\n" "n" "ResilientDB-PBFT (paper ~175K)" "Zyzzyva-centric (paper ~90-100K)";
  List.iter
    (fun n ->
      let pbft = run (Params.with_n n base) in
      let zyz =
        run
          (base |> Params.with_n n
          |> Params.with_protocol Params.Zyzzyva
          |> Params.with_batch_threads 1)
      in
      Json_out.record_run ~figure:"fig1" ~config:(Printf.sprintf "pbft-n%d" n) pbft;
      Json_out.record_run ~figure:"fig1" ~config:(Printf.sprintf "zyzzyva-n%d" n) zyz;
      row "%-4d  %8.1fK %21s  %8.1fK\n" n (k pbft.Metrics.throughput_tps) ""
        (k zyz.Metrics.throughput_tps))
    [ 4; 8; 16; 32 ];
  row "paper claim: PBFT on a well-crafted system outperforms Zyzzyva by up to 79%%\n"

(* ---- Figure 7: upper bound without consensus ------------------------------ *)

let fig7 () =
  header "Figure 7: upper bound (no consensus, no ordering; 2 independent threads)";
  row "%-12s  %-26s  %-26s\n" "clients" "No-Execution" "Execution";
  List.iter
    (fun clients ->
      let p = Params.with_clients clients base in
      let ne = Upper_bound.run ~p ~execute:false () in
      let ex = Upper_bound.run ~p ~execute:true () in
      row "%-12d  %8.1fK (lat %.3fs)    %8.1fK (lat %.3fs)\n" clients
        (k ne.Upper_bound.throughput_tps)
        (Stats.mean ne.Upper_bound.latency)
        (k ex.Upper_bound.throughput_tps)
        (Stats.mean ex.Upper_bound.latency))
    [ 16_000; 32_000; 48_000; 64_000; 80_000 ];
  row "paper: up to ~500K txn/s, latency up to ~0.25s\n"

(* ---- Figure 8: thread/pipeline sweep vs replicas --------------------------- *)

let thread_configs = [ ("0B0E", 0, 0); ("0B1E", 0, 1); ("1B1E", 1, 1); ("2B1E", 2, 1) ]

let fig8 () =
  header "Figure 8: throughput(K)/latency(s) vs replicas for PBFT and Zyzzyva x {0B0E,0B1E,1B1E,2B1E}";
  let ns = if quick then [ 4; 16 ] else [ 4; 8; 16; 32 ] in
  List.iter
    (fun (proto, pname) ->
      row "-- %s --\n" pname;
      row "%-6s" "n";
      List.iter (fun (cname, _, _) -> row "  %14s" cname) thread_configs;
      row "\n";
      List.iter
        (fun n ->
          row "%-6d" n;
          List.iter
            (fun (_, b, e) ->
              let m =
                run
                  (base |> Params.with_n n |> Params.with_protocol proto
                  |> Params.with_batch_threads b
                  |> Params.with_execute_threads e)
              in
              row "  %7.1fK/%4.2fs" (k m.Metrics.throughput_tps) (little base m))
            thread_configs;
          row "\n")
        ns)
    [ (Params.Pbft, "PBFT"); (Params.Zyzzyva, "Zyzzyva") ];
  row "paper: 0B0E -> 2B1E gains 1.39x (PBFT) and 1.72x (Zyzzyva)\n"

(* ---- Figure 9: thread saturation ------------------------------------------- *)

let fig9 () =
  header "Figure 9: per-thread saturation at primary and backup (n=16)";
  List.iter
    (fun (proto, pname) ->
      List.iter
        (fun (cname, b, e) ->
          let m =
            run
              (base |> Params.with_protocol proto |> Params.with_batch_threads b
              |> Params.with_execute_threads e)
          in
          let show r label =
            let get stage =
              List.fold_left
                (fun acc s -> if s.Metrics.stage = stage then s.Metrics.percent else acc)
                0.0 r.Metrics.stages
            in
            let cumulative =
              List.fold_left (fun acc s -> acc +. s.Metrics.percent) 0.0 r.Metrics.stages
            in
            row
              "%-5s %-5s %-8s cum=%4.0f%%  worker=%3.0f%% exec=%3.0f%% batch=%3.0f%% in-cli=%3.0f%% in-rep=%3.0f%% out=%3.0f%%\n"
              pname cname label cumulative (get "worker") (get "execute") (get "batch")
              (get "input-client") (get "input-replica") (get "output")
          in
          let primary = List.find (fun r -> r.Metrics.is_primary) m.Metrics.replicas in
          let backup = List.find (fun r -> not r.Metrics.is_primary) m.Metrics.replicas in
          show primary "primary";
          show backup "backup")
        thread_configs)
    [ (Params.Pbft, "PBFT"); (Params.Zyzzyva, "ZYZ") ];
  row "paper Fig 9a (PBFT 1E2B primary): cumulative ~227%%, batch threads ~85%% each\n"

(* ---- Figure 10: batch size sweep -------------------------------------------- *)

let fig10 () =
  header "Figure 10: transactions per batch, n=16";
  row "%-8s  %-12s  %-14s  %-14s\n" "batch" "tput" "latency(meas)" "latency(Little)";
  let results =
    List.map
      (fun b ->
        let m = run (Params.with_batch_size b base) in
        row "%-8d  %8.1fK  %10.4fs  %12.3fs\n" b (k m.Metrics.throughput_tps)
          (Stats.mean m.Metrics.latency) (little base m);
        m.Metrics.throughput_tps)
      [ 1; 10; 50; 100; 500; 1000; 3000; 5000 ]
  in
  let mn = List.fold_left min infinity results and mx = List.fold_left max 0.0 results in
  row "gain min->max: %.0fx (paper: up to 66x; peak at batch ~1000, decline beyond)\n" (mx /. mn)

(* ---- Figure 11: operations per transaction ----------------------------------- *)

let fig11 () =
  header "Figure 11: operations per transaction x batch-threads, n=16";
  row "%-6s" "ops";
  List.iter (fun b -> row "  %8dB" b) [ 2; 3; 4; 5 ];
  row "%12s\n" "op/s @2B";
  List.iter
    (fun ops ->
      row "%-6d" ops;
      let op_rate = ref 0.0 in
      List.iter
        (fun b ->
          let m =
            run
              (base
              |> Params.map_workload (fun w -> { w with Params.Workload.ops_per_txn = ops })
              |> Params.with_batch_threads b)
          in
          if b = 2 then op_rate := m.Metrics.ops_per_second;
          row "  %8.1fK" (k m.Metrics.throughput_tps))
        [ 2; 3; 4; 5 ];
      row "  %8.1fK\n" (k !op_rate))
    [ 1; 10; 20; 30; 50 ];
  row "paper: 1->50 ops drops txn tput ~93%% (2B); 2B->5B recovers up to +66%%; op/s trend reverses\n"

(* ---- Figure 12: message size --------------------------------------------------- *)

let fig12 () =
  header "Figure 12: Pre-prepare message size, n=16";
  row "%-8s  %-12s  %-14s\n" "size" "tput" "latency(Little)";
  List.iter
    (fun kbytes ->
      let payload = (kbytes * 1024) - (base.Params.batch_size * base.Params.txn_wire_bytes) in
      let m =
        run
          (Params.map_workload
             (fun w -> { w with Params.Workload.preprepare_payload_bytes = max 0 payload })
             base)
      in
      row "%4dKB    %8.1fK  %10.3fs\n" kbytes (k m.Metrics.throughput_tps) (little base m))
    [ 8; 16; 32; 64 ];
  row "paper: 8KB -> 64KB loses ~52%% throughput (network-bound; threads go idle)\n"

(* ---- Figure 13: signature schemes ------------------------------------------------ *)

let fig13 () =
  header "Figure 13: cryptographic signature schemes, n=16";
  let schemes =
    [
      ("none", Signer.No_sig, Signer.No_sig, Signer.No_sig);
      ("ED25519 (everywhere)", Signer.Ed25519, Signer.Ed25519, Signer.Ed25519);
      ("RSA (everywhere)", Signer.Rsa, Signer.Rsa, Signer.Rsa);
      ("CMAC+ED25519 (hybrid)", Signer.Ed25519, Signer.Cmac_aes, Signer.Cmac_aes);
    ]
  in
  row "%-24s  %-12s  %-14s\n" "scheme" "tput" "latency(Little)";
  let tputs =
    List.map
      (fun (name, cs, rs, ps) ->
        let m =
          run
            (Params.map_consensus
               (fun c ->
                 {
                   c with
                   Params.Consensus.client_scheme = cs;
                   replica_scheme = rs;
                   reply_scheme = ps;
                 })
               base)
        in
        row "%-24s  %8.1fK  %10.2fs\n" name (k m.Metrics.throughput_tps) (little base m);
        (name, m.Metrics.throughput_tps))
      schemes
  in
  let get n = List.assoc n tputs in
  row "hybrid/RSA = %.0fx (paper: ~103x tput, ~125x latency); crypto cost vs none = %.0f%% (paper: >=49%%)\n"
    (get "CMAC+ED25519 (hybrid)" /. get "RSA (everywhere)")
    (100.0 *. (1.0 -. (get "CMAC+ED25519 (hybrid)" /. get "none")))

(* ---- Figure 14: storage ----------------------------------------------------------- *)

let fig14 () =
  header "Figure 14: in-memory vs off-memory (SQLite-class) storage, n=16";
  let mem = run base in
  (* The off-memory pipeline converges slowly (each batch holds the execute
     thread for ~9ms), so it gets a steady-state window. *)
  let sql =
    run
      (base
      |> Params.map_exec (fun e -> { e with Params.Exec.sqlite = true })
      |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 3.0)
           ~measure:(Rdb_des.Sim.seconds 2.0))
  in
  row "in-memory  %8.1fK  lat(Little) %6.3fs\n" (k mem.Metrics.throughput_tps) (little base mem);
  row "sqlite     %8.1fK  lat(Little) %6.2fs\n" (k sql.Metrics.throughput_tps) (little base sql);
  row "reduction: %.0f%% (paper: ~94%% tput reduction, ~24x latency)\n"
    (100.0 *. (1.0 -. (sql.Metrics.throughput_tps /. mem.Metrics.throughput_tps)))

(* ---- Figure 15: clients ------------------------------------------------------------- *)

let fig15 () =
  header "Figure 15: number of clients, n=16";
  row "%-10s  %-12s  %-14s\n" "clients" "tput" "latency(meas)";
  List.iter
    (fun clients ->
      let p = Params.with_clients clients base in
      let m = run p in
      row "%-10d  %8.1fK  %10.4fs\n" clients (k m.Metrics.throughput_tps)
        (Stats.mean m.Metrics.latency))
    [ 4_000; 16_000; 32_000; 64_000; 80_000 ];
  row "paper: tput saturates (~+1.4%% from 16K to 80K); latency grows ~linearly (~5x)\n"

(* ---- Figure 16: hardware cores --------------------------------------------------------- *)

let fig16 () =
  header "Figure 16: hardware cores per replica, n=16";
  row "%-8s  %-12s  %-14s\n" "cores" "tput" "latency(Little)";
  let results =
    List.map
      (fun cores ->
        let m = run (Params.with_cores cores base) in
        row "%-8d  %8.1fK  %10.3fs\n" cores (k m.Metrics.throughput_tps) (little base m);
        m.Metrics.throughput_tps)
      [ 1; 2; 4; 8 ]
  in
  (match (results, List.rev results) with
  | one :: _, eight :: _ -> row "8-core/1-core = %.2fx (paper: 8.92x)\n" (eight /. one)
  | _ -> ())

(* ---- Figure 17: replica failures ----------------------------------------------------------- *)

let fig17 () =
  header "Figure 17: backup replica failures, n=16 (f=5)";
  row "%-10s  %-14s  %-14s\n" "failures" "PBFT tput" "Zyzzyva tput";
  List.iter
    (fun crashed ->
      let pbft = run (Params.with_crashed_backups crashed base) in
      (* Zyzzyva's certificate path converges slowly; give it a steady-state
         window (events are cheap at its collapsed throughput). *)
      let zyz =
        run
          (base
          |> Params.with_protocol Params.Zyzzyva
          |> Params.with_crashed_backups crashed
          |> Params.with_windows
               ~warmup:(Rdb_des.Sim.seconds (if crashed > 0 then 3.0 else 0.4))
               ~measure:(Rdb_des.Sim.seconds (if crashed > 0 then 2.0 else 0.6)))
      in
      row "%-10d  %10.1fK  %10.1fK   (zyz fast-path txns: %d, cert-path: %d)\n" crashed
        (k pbft.Metrics.throughput_tps) (k zyz.Metrics.throughput_tps) zyz.Metrics.fast_path_txns
        zyz.Metrics.cert_path_txns)
    [ 0; 1; 5 ];
  row "paper: PBFT nearly flat; Zyzzyva loses ~39x with a single failure\n";
  (* Extended rows (this reproduction): the nemesis layer end to end — a
     mid-measurement primary crash and a lossy fabric, with the liveness
     loop (client retransmission + view change) closing both. *)
  header "Figure 17 (extended): mid-run primary crash and lossy network, PBFT n=16";
  let faulted =
    base
    |> Params.with_clients 4_000
    |> Params.with_client_timeout (Rdb_des.Sim.ms 200.0)
    |> Params.with_view_timeout (Rdb_des.Sim.ms 100.0)
    |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.3)
         ~measure:(Rdb_des.Sim.seconds (if quick then 1.0 else 1.5))
  in
  row "%-24s  %-10s  %s\n" "scenario" "tput" "fault counters";
  let show name p =
    let m = run p in
    let f = m.Metrics.faults in
    row "%-24s  %8.1fK  drops %d, dups %d, retrans %d, view changes %d%s\n" name
      (k m.Metrics.throughput_tps) f.Metrics.msgs_dropped f.Metrics.msgs_duplicated
      f.Metrics.retransmissions f.Metrics.view_changes
      (match f.Metrics.time_to_recovery_s with
      | Some s -> Printf.sprintf ", recovered in %.3fs" s
      | None -> "")
  in
  show "healthy" faulted;
  show "primary crash @ 0.5s"
    (Params.with_nemesis (Nemesis.crash_primary_at (Rdb_des.Sim.ms 500.0)) faulted);
  show "1% loss"
    (Params.map_faults (fun f -> { f with Params.Faults.loss_rate = 0.01 }) faulted);
  show "1% loss + 1% dup"
    (Params.map_faults
       (fun f -> { f with Params.Faults.loss_rate = 0.01; duplication_rate = 0.01 })
       faulted);
  row "the liveness loop closes both: a new view serves the queue; retransmissions absorb loss\n"

(* ---- Breakdown: pipeline observability (span tracing + queue/service split) ------- *)

let breakdown () =
  header "Breakdown: where latency lives in the 2B1E pipeline (PBFT, n=16)";
  (* Tracing must be free in the modelled system: the instrumented run and
     the plain run are the same simulation, event for event. *)
  let plain = run base in
  let traced = run (Params.with_trace true base) in
  let identical =
    plain.Metrics.throughput_tps = traced.Metrics.throughput_tps
    && plain.Metrics.completed_txns = traced.Metrics.completed_txns
    && Stats.mean plain.Metrics.latency = Stats.mean traced.Metrics.latency
    && Stats.percentile plain.Metrics.latency 99.0
       = Stats.percentile traced.Metrics.latency 99.0
    && plain.Metrics.messages_sent = traced.Metrics.messages_sent
  in
  row "tracing neutrality: %8.1fK vs %8.1fK txn/s, %d vs %d txns -> %s\n"
    (k plain.Metrics.throughput_tps) (k traced.Metrics.throughput_tps)
    plain.Metrics.completed_txns traced.Metrics.completed_txns
    (if identical then "metrics identical" else "METRICS DIFFER (bug)");
  row "\nper-transaction span phases (telescoping to end-to-end latency):\n";
  Format.printf "%a@." Metrics.pp_spans traced;
  row "per-stage latency breakdown (time-in-queue vs time-in-service):\n";
  Format.printf "%a@." Metrics.pp_breakdown traced;
  row "paper Fig 9: with 2B1E the batch-threads and worker-thread run hot while input/output\n";
  row "stay shallow; the queue columns above show the same saturation story per transaction.\n";
  (* The exported trace gets an eventful run: a mid-measurement primary
     crash exercises the instant events (faults, view changes). *)
  match (trace_out, trace_csv) with
  | None, None -> ()
  | _ ->
    let faulted =
      base
      |> Params.with_clients 4_000
      |> Params.with_client_timeout (Rdb_des.Sim.ms 200.0)
      |> Params.with_view_timeout (Rdb_des.Sim.ms 100.0)
      |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.3)
           ~measure:(Rdb_des.Sim.seconds 1.0)
      |> Params.with_nemesis (Nemesis.crash_primary_at (Rdb_des.Sim.ms 500.0))
      |> Params.map_obs (fun o -> { o with Params.Obs.trace = true; trace_out; trace_csv })
    in
    let m = run faulted in
    let recovered =
      match m.Metrics.faults.Metrics.time_to_recovery_s with
      | Some s -> Printf.sprintf "recovered in %.3fs" s
      | None -> "no recovery recorded"
    in
    (match trace_out with
    | Some path ->
      row "wrote Chrome trace (primary crash @0.5s, %s) to %s -- load in chrome://tracing\n"
        recovered path
    | None -> ());
    (match trace_csv with
    | Some path -> row "wrote time-series CSV to %s\n" path
    | None -> ())

(* ---- Ablations: design decisions from Section 4 ----------------------------------- *)

let ablations () =
  header "Ablation A1: out-of-order consensus (paper Section 4.5, intro claims +60%)";
  row "%-24s  %-12s\n" "in-flight consensus cap" "tput";
  let results =
    List.map
      (fun cap ->
        let m =
          run
            (Params.map_consensus
               (fun c -> { c with Params.Consensus.max_inflight_batches = cap })
               base)
        in
        row "%-24d  %8.1fK\n" cap (k m.Metrics.throughput_tps);
        m.Metrics.throughput_tps)
      [ 1; 2; 4; 8; 16; 64 ]
  in
  (match (results, List.rev results) with
  | serial :: _, parallel :: _ ->
    row "out-of-order gain (64 vs 1 in flight): %.0f%% (paper: ~60%%)\n"
      (100.0 *. ((parallel /. serial) -. 1.0))
  | _ -> ());

  header "Ablation A2: buffer pool (paper Section 4.8)";
  let pooled = run base in
  let malloc =
    run
      (Params.map_consensus (fun c -> { c with Params.Consensus.use_buffer_pool = false }) base)
  in
  row "buffer pool   %8.1fK\n" (k pooled.Metrics.throughput_tps);
  row "malloc/free   %8.1fK\n" (k malloc.Metrics.throughput_tps);
  row "pooling gain: %.1f%%\n"
    (100.0 *. ((pooled.Metrics.throughput_tps /. malloc.Metrics.throughput_tps) -. 1.0));

  header "Ablation A3: decoupled execution (paper intro claims +9.5%)";
  let coupled = run (base |> Params.with_batch_threads 0 |> Params.with_execute_threads 0) in
  let decoupled = run (base |> Params.with_batch_threads 0 |> Params.with_execute_threads 1) in
  row "worker executes (0B0E)   %8.1fK\n" (k coupled.Metrics.throughput_tps);
  row "execute-thread (0B1E)    %8.1fK\n" (k decoupled.Metrics.throughput_tps);
  row "decoupling gain: %.1f%% (paper: +9.5%%)\n"
    (100.0 *. ((decoupled.Metrics.throughput_tps /. coupled.Metrics.throughput_tps) -. 1.0))

(* ---- Consensus: the verify-sharing hot path (this reproduction) ------------------------------- *)

let consensus () =
  header "Consensus hot path: digest memoization & verify-sharing (paper Q2), PBFT n=16 2B1E";
  row "%-26s  %-10s  %-19s  %s\n" "config" "tput" "lat p50/p99 (ms)" "cache hits/misses";
  let show name p =
    let c = Cluster.create p in
    let m = Cluster.measure c in
    let hits, misses = Cluster.verify_cache_stats c in
    row "%-26s  %8.1fK  %8.2f/%-8.2f  %d/%d\n" name (k m.Metrics.throughput_tps)
      (1000.0 *. Stats.percentile m.Metrics.latency 50.0)
      (1000.0 *. Stats.percentile m.Metrics.latency 99.0)
      hits misses;
    Json_out.record_run ~figure:"consensus" ~config:name m;
    m
  in
  let sharing on p =
    Params.map_consensus (fun c -> { c with Params.Consensus.verify_sharing = on }) p
  in
  (* Healthy default configuration: with sharing on, the execute boundary
     reuses admission-time verification; off is the protocol-centric fabric
     that re-hashes the batch and re-verifies every signature there. *)
  let cached = show "pbft-2B1E-n16-cached" base in
  let uncached = show "pbft-2B1E-n16-uncached" (sharing false base) in
  row "verify-sharing gain at the default configuration: +%.0f%% (acceptance floor: +10%%)\n"
    (100.0 *. ((cached.Metrics.throughput_tps /. uncached.Metrics.throughput_tps) -. 1.0));
  (* Under faults the caches also absorb retransmissions, duplicates and
     post-view-change re-batching. *)
  let faulted on =
    base |> sharing on
    |> Params.with_clients 4_000
    |> Params.with_client_timeout (Rdb_des.Sim.ms 200.0)
    |> Params.with_view_timeout (Rdb_des.Sim.ms 100.0)
    |> Params.map_faults (fun f -> { f with Params.Faults.duplication_rate = 0.01 })
    |> Params.with_nemesis (Nemesis.crash_primary_at (Rdb_des.Sim.ms 400.0))
    |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.3)
         ~measure:(Rdb_des.Sim.seconds (if quick then 0.7 else 1.2))
  in
  ignore (show "pbft-crash+dup-cached" (faulted true));
  ignore (show "pbft-crash+dup-uncached" (faulted false));
  row "the fault rows add duplicate deliveries and a primary crash: every duplicate and\n";
  row "every re-batched request is a cache hit instead of a repeated verification.\n";
  (* The linear core through the identical harness: votes flow to the
     leader only and come back as one certificate per phase, so the
     backup-side verify/digest touchpoints the caches memoize are fewer
     to begin with — the sharing gain rides on top of the linearity. *)
  let hs_base = Params.with_protocol Params.Hotstuff base in
  let hs_cached = show "hotstuff-2B1E-n16-cached" hs_base in
  let hs_uncached = show "hotstuff-2B1E-n16-uncached" (sharing false hs_base) in
  row "hotstuff verify-sharing gain at the default configuration: +%.0f%%\n"
    (100.0 *. ((hs_cached.Metrics.throughput_tps /. hs_uncached.Metrics.throughput_tps) -. 1.0))

(* ---- Multi-primary: k concurrent ordering instances (this reproduction) ---------------------- *)

let multi () =
  header "Multi-primary ordering: k concurrent PBFT instances, n=16, 2B1E (this reproduction)";
  row "%-10s  %-10s  %-19s  %s\n" "instances" "tput" "lat p50/p99 (ms)" "primary saturation";
  let show kinst =
    let m = run (Params.with_instances kinst base) in
    Json_out.record_run ~figure:"multi" ~config:(Printf.sprintf "pbft-2B1E-n16-k%d" kinst) m;
    (* Bottleneck migration: the busiest ordering worker vs the (still
       single) execute-thread, at the instance-0 primary. *)
    let primary = List.find (fun r -> r.Metrics.is_primary) m.Metrics.replicas in
    (* Fold per-instance workers (and per-lane execute stages) to their
       stage family instead of assuming positional names. *)
    let worker, execute =
      List.fold_left
        (fun (w, e) s ->
          match Rdb_obs.Stage_name.family s.Metrics.stage with
          | "worker" -> (max w s.Metrics.percent, e)
          | "execute" -> (w, max e s.Metrics.percent)
          | _ -> (w, e))
        (0.0, 0.0) primary.Metrics.stages
    in
    row "%-10d  %8.1fK  %8.2f/%-8.2f  worker %3.0f%%  execute %3.0f%%\n" kinst
      (k m.Metrics.throughput_tps)
      (1000.0 *. Stats.percentile m.Metrics.latency 50.0)
      (1000.0 *. Stats.percentile m.Metrics.latency 99.0)
      worker execute;
    m.Metrics.throughput_tps
  in
  let tputs = List.map show [ 1; 2; 4; 8 ] in
  match tputs with
  | k1 :: rest when k1 > 0.0 ->
    let k4 = List.nth tputs 2 in
    row "k=4 / k=1 = %.2fx (acceptance floor: 1.5x); beyond the knee the single execute-thread,\n"
      (k4 /. k1);
    row "not ordering, bounds throughput -- the paper's in-order execution rule is the new wall\n";
    ignore rest
  | _ -> ()

(* ---- Exec: conflict-aware parallel execution lanes (this reproduction) ----------------------- *)

let exec_fig () =
  header
    "Execution scaling: conflict-aware parallel lanes, PBFT n=16, k=4 instances, E in {1,2,4,8}";
  row "%-4s  %-10s  %-19s  %s\n" "E" "tput" "lat p50/p99 (ms)" "saturated stage";
  let window_s = Rdb_des.Sim.to_seconds base.Params.measure in
  let reports = ref [] in
  let show e =
    (* Traced, so the report carries queue-vs-service evidence; tracing is
       neutral to the metrics (the breakdown figure asserts this). *)
    let m =
      run
        (base |> Params.with_instances 4 |> Params.with_execute_threads e
        |> Params.with_trace true)
    in
    Json_out.record_run ~figure:"exec" ~config:(Printf.sprintf "pbft-k4-E%d" e) m;
    let rep = Metrics.bottleneck_report ~window_s m in
    reports := (e, rep) :: !reports;
    row "%-4d  %8.1fK  %8.2f/%-8.2f  %s\n" e (k m.Metrics.throughput_tps)
      (1000.0 *. Stats.percentile m.Metrics.latency 50.0)
      (1000.0 *. Stats.percentile m.Metrics.latency 99.0)
      (match Rdb_obs.Bottleneck.saturated rep with Some f -> f | None -> "?");
    m.Metrics.throughput_tps
  in
  let tputs = List.map show [ 1; 2; 4; 8 ] in
  (match tputs with
  | e1 :: _ when e1 > 0.0 ->
    let e4 = List.nth tputs 2 in
    row "E=4 / E=1 = %.2fx (acceptance floor: E=4 must beat E=1 at k=4)\n" (e4 /. e1);
    Json_out.record ~figure:"exec" ~config:"pbft-k4-E4" ~metric:"tput_ratio_vs_E1"
      ~unit_:"ratio" ~higher_is_better:true (e4 /. e1)
  | _ -> ());
  (* The full E=4 report — the text EXPERIMENTS.md walks through line by
     line.  At E=1 the execute-thread saturates; at E>=2 the lanes drain
     faster than ordering feeds them and the verdict names a non-execute
     stage. *)
  (match List.assoc_opt 4 !reports with
  | Some rep -> Format.printf "%a@." Rdb_obs.Bottleneck.pp rep
  | None -> ());
  row "the ceiling moves off execute: E=1 saturates the execute-thread; E>=2 pushes the\n";
  row "bottleneck back into the ordering/batching pipeline (the verdict line above)\n";
  (* Machine-readable artifact next to the bench JSON: one
     bottleneck-report/v1 document per E point. *)
  match json_out with
  | None -> ()
  | Some path ->
    let apath = Filename.remove_extension path ^ ".bottleneck.json" in
    let docs =
      List.rev_map
        (fun (e, rep) -> Rdb_obs.Bottleneck.to_json ~label:(Printf.sprintf "pbft-k4-E%d" e) rep)
        !reports
    in
    let oc = open_out apath in
    output_string oc ("[\n" ^ String.concat ",\n" docs ^ "]\n");
    close_out oc;
    Printf.printf "wrote bottleneck-shift reports to %s\n%!" apath

(* ---- Recovery: checkpoint-driven state transfer + durable ledger (this reproduction) --------- *)

let recovery () =
  header "Recovery: checkpoint-driven state transfer after a crash + rejoin, PBFT n=16";
  (* A backup crashes mid-run and recovers after [outage]; rejoining, it
     broadcasts one State_request and installs the donor's certificate-backed
     chain segment — O(gap) blocks in one round trip, not per-message replay.
     A longer outage means a larger gap; time-to-catch-up is the span from
     the first State_request to the successful install. *)
  let faulted =
    base
    |> Params.with_clients 4_000
    |> Params.with_client_timeout (Rdb_des.Sim.ms 200.0)
    |> Params.with_view_timeout (Rdb_des.Sim.ms 100.0)
    |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.3)
         ~measure:(Rdb_des.Sim.seconds (if quick then 1.2 else 1.8))
  in
  let victim = faulted.Params.n - 1 in
  (* replica 0 leads view 0: the victim is a backup *)
  row "%-22s  %-10s  %-12s  %-12s  %s\n" "scenario" "tput" "transfers" "catch-up" "final gap";
  let crash_recover name extra outage_ms =
    let p =
      Params.with_nemesis
        [
          Nemesis.at_ms 300.0 (Nemesis.Crash victim);
          Nemesis.at_ms (300.0 +. outage_ms) (Nemesis.Recover victim);
        ]
        (extra faulted)
    in
    let c = Cluster.create p in
    let m = Cluster.measure c in
    let f = m.Metrics.faults in
    let catch_up = f.Metrics.time_to_catch_up_s in
    row "%-22s  %8.1fK  %-12d  %-12s  %d blocks\n" name
      (k m.Metrics.throughput_tps) f.Metrics.state_transfers
      (match catch_up with Some s -> Printf.sprintf "%.3fs" s | None -> "none")
      (Cluster.ledger_gap c victim);
    Json_out.record_run ~figure:"recovery" ~config:name m;
    (match catch_up with
    | Some s ->
      Json_out.record ~figure:"recovery" ~config:name ~metric:"catch_up_ms" ~unit_:"ms"
        ~higher_is_better:false (1000.0 *. s)
    | None -> ())
  in
  List.iter
    (fun outage_ms -> crash_recover (Printf.sprintf "crash-o%.0fms" outage_ms) (fun p -> p) outage_ms)
    [ 100.0; 300.0; 600.0 ];
  crash_recover "crash-o300ms-durable" (Params.with_durable true) 300.0;
  row "longer outages mean larger gaps, yet catch-up stays one State_request round trip\n";
  (* Durable ledger overhead at the paper's default configuration: WAL
     appends and checkpoint flushes are charged on the checkpoint-thread,
     off the consensus critical path, so the ceiling is 10%. *)
  header "Durable ledger: WAL + B-tree block store vs in-memory backend, PBFT n=16 2B1E";
  let mem = run base in
  let durable = run (Params.with_durable true base) in
  let ratio = durable.Metrics.throughput_tps /. mem.Metrics.throughput_tps in
  row "in-memory backend     %8.1fK txn/s\n" (k mem.Metrics.throughput_tps);
  row "durable WAL + B-tree  %8.1fK txn/s\n" (k durable.Metrics.throughput_tps);
  row "durable overhead: %.1f%% (acceptance ceiling: 10%%)%s\n"
    (100.0 *. (1.0 -. ratio))
    (if ratio >= 0.9 then "" else "  ** OVER BUDGET **");
  Json_out.record_run ~figure:"recovery" ~config:"pbft-2B1E-n16-mem" mem;
  Json_out.record_run ~figure:"recovery" ~config:"pbft-2B1E-n16-durable" durable;
  (* The ratio row is what gates the <= 10% overhead acceptance in CI: it
     sits near 1.0 in the baseline, so the 8% tput band keeps it >= ~0.92. *)
  Json_out.record ~figure:"recovery" ~config:"pbft-2B1E-n16-durable" ~metric:"tput_ratio_vs_mem"
    ~unit_:"ratio" ~higher_is_better:true ratio

(* ---- byzantine attacks: throughput under an active liar --------------------------------------- *)

let byzantine () =
  header
    "Byzantine attacks: one liar, per protocol (PBFT / Zyzzyva / HotStuff, n=4, f=1) — safety \
     checked on every run";
  (* Small cluster with the liveness loop enabled (same shape as
     test_byzantine): the asymmetry between PBFT's quorums and Zyzzyva's
     all-n fast path shows at any scale, and n=4 keeps the figure cheap.
     The attack window opens at 50 ms and outlives the run. *)
  let small =
    base
    |> Params.with_n 4
    |> Params.with_clients 400
    |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
    |> Params.with_batch_size 20
    |> Params.map_consensus (fun c ->
           { c with Params.Consensus.max_inflight_batches = 16; checkpoint_txns = 400 })
    |> Params.with_client_timeout (Rdb_des.Sim.ms 40.0)
    |> Params.with_view_timeout (Rdb_des.Sim.ms 30.0)
    |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.2)
         ~measure:(Rdb_des.Sim.seconds (if quick then 0.5 else 0.8))
  in
  let zyz = Params.with_protocol Params.Zyzzyva small in
  let multi4 = Params.with_instances 4 small in
  let from_ = Rdb_des.Sim.ms 50.0 in
  let until = Rdb_des.Sim.seconds 5.0 in
  row "%-24s %9s %10s %7s  %s\n" "config" "tput" "p99" "vs-ok" "defenses fired";
  let show ?healthy name p =
    let c = Cluster.create p in
    let m = Cluster.measure c in
    (* Every bench run doubles as a safety probe: an attack that made two
       honest replicas commit different batches must fail loudly here, not
       ship a number. *)
    (match Cluster.check_safety c with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "byzantine bench %s: SAFETY VIOLATED: %s" name e));
    Json_out.record_run ~figure:"byzantine" ~config:name m;
    let f = m.Metrics.faults in
    let ratio =
      match healthy with
      | Some (h : Metrics.t) when h.Metrics.throughput_tps > 0.0 ->
        m.Metrics.throughput_tps /. h.Metrics.throughput_tps
      | _ -> 1.0
    in
    if healthy <> None then
      Json_out.record ~figure:"byzantine" ~config:name ~metric:"tput_ratio_vs_healthy"
        ~unit_:"ratio" ~higher_is_better:true ratio;
    let p99 =
      if Stats.count m.Metrics.latency > 0 then 1000.0 *. Stats.percentile m.Metrics.latency 99.0
      else nan
    in
    row "%-24s %8.1fK %8.2fms %6.0f%%  rejected %d, equivocations %d, vc-spam %d\n" name
      (k m.Metrics.throughput_tps) p99 (100.0 *. ratio) f.Metrics.rejected_forgeries
      f.Metrics.equivocations_detected f.Metrics.vc_spam_suppressed;
    m
  in
  (* PBFT survives every strategy: quorums need 2f/2f+1 of n, replies f+1,
     and the view change deposes an equivocator. *)
  let p_ok = show "pbft-healthy" small in
  ignore
    (show ~healthy:p_ok "pbft-equivocate"
       (Params.with_nemesis (Nemesis.equivocate_window ~from_ ~until 0) small));
  let p_mac =
    show ~healthy:p_ok "pbft-corrupt-mac"
      (Params.with_nemesis (Nemesis.corrupt_mac_window ~from_ ~until 1 1.0) small)
  in
  Json_out.record ~figure:"byzantine" ~config:"pbft-corrupt-mac" ~metric:"rejected_forgeries"
    ~unit_:"msgs" ~higher_is_better:true
    (float_of_int p_mac.Metrics.faults.Metrics.rejected_forgeries);
  ignore
    (show ~healthy:p_ok "pbft-corrupt-digest"
       (Params.with_nemesis (Nemesis.corrupt_digest_window ~from_ ~until 0 0.3) small));
  ignore
    (show ~healthy:p_ok "pbft-silence"
       (Params.with_nemesis (Nemesis.silence_window ~from_ ~until 1 [ 0 ]) small));
  let p_spam =
    show ~healthy:p_ok "pbft-vc-spam"
      (Params.with_nemesis
         (Nemesis.view_change_spam_window ~from_ ~until 3 ~period:(Rdb_des.Sim.ms 2.0))
         small)
  in
  Json_out.record ~figure:"byzantine" ~config:"pbft-vc-spam" ~metric:"vc_spam_suppressed"
    ~unit_:"msgs" ~higher_is_better:true
    (float_of_int p_spam.Metrics.faults.Metrics.vc_spam_suppressed);
  (* Zyzzyva: the paper's Fig. 12 collapse.  One backup forging its MACs
     means the client never collects all 3f+1 matching speculative replies;
     every batch waits out the client timer and closes through commit
     certificates. *)
  let z_ok = show "zyzzyva-healthy" zyz in
  let z_liar =
    show ~healthy:z_ok "zyzzyva-corrupt-mac"
      (Params.with_nemesis (Nemesis.corrupt_mac_window ~from_ ~until 3 1.0) zyz)
  in
  (* Gate the collapse itself: the attacked run must stay off the fast path
     (a nonzero row here would mean the reproduction of the paper's claim
     silently broke). *)
  Json_out.record ~figure:"byzantine" ~config:"zyzzyva-corrupt-mac" ~metric:"fast_path_txns"
    ~unit_:"txns" ~higher_is_better:false
    (float_of_int z_liar.Metrics.fast_path_txns);
  row "zyzzyva fast path under one liar: %d of %d txns (healthy: %d of %d)\n"
    z_liar.Metrics.fast_path_txns z_liar.Metrics.completed_txns z_ok.Metrics.fast_path_txns
    z_ok.Metrics.completed_txns;
  (* HotStuff under the identical schedules: the liar is the same node,
     the windows the same.  Digest-keyed vote pooling at the leader splits
     an equivocator's voters (at most one digest certifies per slot), MAC
     and digest corruption die at the receive path exactly as for PBFT,
     and the reused view-change sub-protocol absorbs the spam — but with
     every vote funneled through one aggregator, leader-targeted attacks
     cost proportionally more than they cost PBFT's all-to-all rounds. *)
  let hs = Params.with_protocol Params.Hotstuff small in
  let h_ok = show "hotstuff-healthy" hs in
  ignore
    (show ~healthy:h_ok "hotstuff-equivocate"
       (Params.with_nemesis (Nemesis.equivocate_window ~from_ ~until 0) hs));
  let h_mac =
    show ~healthy:h_ok "hotstuff-corrupt-mac"
      (Params.with_nemesis (Nemesis.corrupt_mac_window ~from_ ~until 1 1.0) hs)
  in
  Json_out.record ~figure:"byzantine" ~config:"hotstuff-corrupt-mac"
    ~metric:"rejected_forgeries" ~unit_:"msgs" ~higher_is_better:true
    (float_of_int h_mac.Metrics.faults.Metrics.rejected_forgeries);
  ignore
    (show ~healthy:h_ok "hotstuff-corrupt-digest"
       (Params.with_nemesis (Nemesis.corrupt_digest_window ~from_ ~until 0 0.3) hs));
  ignore
    (show ~healthy:h_ok "hotstuff-silence"
       (Params.with_nemesis (Nemesis.silence_window ~from_ ~until 1 [ 0 ]) hs));
  let h_spam =
    show ~healthy:h_ok "hotstuff-vc-spam"
      (Params.with_nemesis
         (Nemesis.view_change_spam_window ~from_ ~until 3 ~period:(Rdb_des.Sim.ms 2.0))
         hs)
  in
  Json_out.record ~figure:"byzantine" ~config:"hotstuff-vc-spam" ~metric:"vc_spam_suppressed"
    ~unit_:"msgs" ~higher_is_better:true
    (float_of_int h_spam.Metrics.faults.Metrics.vc_spam_suppressed);
  (* Multi-primary: an equivocating instance primary is deposed by its own
     instance's view change while the k-1 honest instances keep the merged
     order moving. *)
  let m_ok = show "multi-k4-healthy" multi4 in
  ignore
    (show ~healthy:m_ok "multi-k4-equivocate"
       (Params.with_nemesis (Nemesis.equivocate_window ~from_ ~until 0) multi4));
  row "every run above also passed the cross-replica safety check\n"

(* ---- Shard: sharded scale-out, 2PC over BFT (this reproduction) ------------------------------- *)

let shard_fig () =
  header
    "Shard scaling: S independent PBFT groups (n=4 each), deterministic key map, cross-shard \
     commits by 2PC over BFT";
  (* Each shard is a full consensus group over its slice of the keyspace;
     the client population is split across shards by the deterministic key
     map.  At S=1 / 0% cross-shard the deployment is structurally the
     single-cluster run (the regression test pins bit-identity). *)
  let sbase =
    base
    |> Params.with_n 4
    |> Params.with_clients 3_200
    |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
    |> Params.with_batch_size 20
    |> Params.map_consensus (fun c ->
           { c with Params.Consensus.max_inflight_batches = 16; checkpoint_txns = 400 })
    |> Params.with_client_timeout (Rdb_des.Sim.ms 40.0)
    |> Params.with_view_timeout (Rdb_des.Sim.ms 30.0)
    |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.2)
         ~measure:(Rdb_des.Sim.seconds (if quick then 0.4 else 0.8))
  in
  let show s cross =
    let p = sbase |> Params.with_shards s |> Params.with_cross_shard_fraction cross in
    let r = Rdb_shard.Deployment.run p in
    let name = Printf.sprintf "pbft-S%d-x%g" s cross in
    let agg = r.Rdb_shard.Deployment.aggregate in
    Json_out.record_run ~figure:"shard" ~config:name agg;
    let c = r.Rdb_shard.Deployment.cross in
    row "%-16s  %8.1fK txn/s   cross-shard: %d committed, %d aborted (%d lock conflicts)\n"
      name (k agg.Metrics.throughput_tps) c.Rdb_shard.Two_pc.committed
      c.Rdb_shard.Two_pc.aborted c.Rdb_shard.Two_pc.lock_conflicts;
    agg.Metrics.throughput_tps
  in
  row "-- throughput vs shard count (0%% cross-shard) --\n";
  let tputs = List.map (fun s -> show s 0.0) [ 1; 2; 4; 8 ] in
  (match tputs with
  | s1 :: _ when s1 > 0.0 ->
    let s4 = List.nth tputs 2 in
    row "S=4 / S=1 = %.2fx (acceptance floor: 1.8x)\n" (s4 /. s1);
    Json_out.record ~figure:"shard" ~config:"pbft-S4-x0" ~metric:"tput_ratio_vs_S1"
      ~unit_:"ratio" ~higher_is_better:true (s4 /. s1)
  | _ -> ());
  row "-- throughput vs cross-shard fraction (S=4) --\n";
  List.iter (fun x -> ignore (show 4 x)) [ 0.01; 0.1; 0.5 ];
  row "every cross-shard transaction costs four ordered entries (prepare, vote, and the\n";
  row "decision on both shards) plus three inter-shard network hops, so throughput\n";
  row "degrades smoothly as the cross-shard fraction rises\n"

(* ---- bechamel microbenchmarks ----------------------------------------------------------------- *)

let micro () =
  header "Microbenchmarks (bechamel, ns/op): from-scratch crypto & storage substrates";
  let open Bechamel in
  let open Toolkit in
  let msg64 = String.make 64 'm' in
  let msg4k = String.make 4096 'm' in
  let cmac_key = Rdb_crypto.Cmac.of_secret "0123456789abcdef" in
  let rng = Rdb_des.Rng.create 42L in
  let schnorr_kp = Rdb_crypto.Schnorr.generate rng (Rdb_crypto.Schnorr.default_params ()) in
  let schnorr_sig = Rdb_crypto.Schnorr.sign rng schnorr_kp.Rdb_crypto.Schnorr.secret msg64 in
  let mem = Rdb_storage.Mem_store.create () in
  for i = 0 to 9999 do
    Rdb_storage.Mem_store.put mem (string_of_int i) "v"
  done;
  let btree_path = Filename.temp_file "bench_btree" ".db" in
  let btree = Rdb_storage.Btree.open_file btree_path in
  for i = 0 to 9999 do
    Rdb_storage.Btree.put btree (Printf.sprintf "key%06d" i) "value"
  done;
  let pool =
    Rdb_storage.Buffer_pool.create ~make:(fun () -> Bytes.create 256) ~reset:(fun _ -> ()) ()
  in
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter
  in
  let exp_base = Rdb_crypto.Bignum.of_hex "abcdef0123456789abcdef0123456789" in
  let exp_exp = Rdb_crypto.Bignum.of_hex "fedcba9876543210" in
  let exp_mod = Rdb_crypto.Bignum.of_hex "100000000000000000000000000000061" in
  let tests =
    Test.make_grouped ~name:"substrates"
      [
        Test.make ~name:"sha256-64B" (Staged.stage (fun () -> Rdb_crypto.Sha256.digest msg64));
        Test.make ~name:"sha256-4KB" (Staged.stage (fun () -> Rdb_crypto.Sha256.digest msg4k));
        Test.make ~name:"cmac-64B" (Staged.stage (fun () -> Rdb_crypto.Cmac.mac cmac_key msg64));
        Test.make ~name:"hmac-64B" (Staged.stage (fun () -> Rdb_crypto.Hmac.mac ~key:"k" msg64));
        Test.make ~name:"schnorr-sign"
          (Staged.stage (fun () ->
               Rdb_crypto.Schnorr.sign rng schnorr_kp.Rdb_crypto.Schnorr.secret msg64));
        Test.make ~name:"schnorr-verify"
          (Staged.stage (fun () ->
               Rdb_crypto.Schnorr.verify schnorr_kp.Rdb_crypto.Schnorr.public msg64
                 ~signature:schnorr_sig));
        Test.make ~name:"bignum-modpow-128b"
          (Staged.stage (fun () -> Rdb_crypto.Bignum.mod_pow exp_base exp_exp exp_mod));
        Test.make ~name:"memstore-get"
          (Staged.stage (fun () -> Rdb_storage.Mem_store.get mem (string_of_int (next () mod 10_000))));
        Test.make ~name:"btree-get"
          (Staged.stage (fun () ->
               Rdb_storage.Btree.get btree (Printf.sprintf "key%06d" (next () mod 10_000))));
        Test.make ~name:"btree-put"
          (Staged.stage (fun () ->
               Rdb_storage.Btree.put btree (Printf.sprintf "key%06d" (next () mod 10_000)) "v2"));
        Test.make ~name:"pool-acquire-release"
          (Staged.stage (fun () ->
               let x = Rdb_storage.Buffer_pool.acquire pool in
               Rdb_storage.Buffer_pool.release pool x));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second (if quick then 0.1 else 0.5)) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
        Json_out.record_micro ~name est;
        row "%-40s %14.1f ns/op\n" name est
      | _ -> row "%-40s (no estimate)\n" name)
    (List.sort compare rows);
  Rdb_storage.Btree.close btree;
  Sys.remove btree_path

let figures =
  [
    ("fig1", fig1);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("consensus", consensus);
    ("multi", multi);
    ("exec", exec_fig);
    ("recovery", recovery);
    ("byzantine", byzantine);
    ("shard", shard_fig);
    ("breakdown", breakdown);
    ("ablations", ablations);
    ("micro", micro);
  ]

let () =
  let t0 = Unix.gettimeofday () in
  (* Per-figure wall time, so a CI log attributes slowness to a figure. *)
  List.iter
    (fun (name, f) ->
      if selected name then begin
        let t = Unix.gettimeofday () in
        f ();
        Printf.printf "[%s wall time: %.1fs]\n%!" name (Unix.gettimeofday () -. t)
      end)
    figures;
  Printf.printf "\nTotal bench wall time: %.1fs\n" (Unix.gettimeofday () -. t0);
  match json_out with Some path -> Json_out.write ~quick path | None -> ()

(* Campaign harness tests.

   The classifier is a pure function, so every outcome class gets a direct
   unit case.  The runner's load-bearing properties — matrix expansion
   forces fault-free twins and skips invalid combinations, the same matrix
   and seed produce byte-identical JSON, a domain worker pool changes
   nothing, and a wedged run burns its event budget instead of hanging —
   are each pinned against a deliberately tiny matrix so the whole file
   stays test-suite fast. *)

open Rdb_core
module Campaign = Rdb_campaign.Campaign
module Classify = Rdb_campaign.Classify
module Report = Rdb_obs.Campaign_report
module Check = Rdb_gate.Campaign_check
module Sim = Rdb_des.Sim

let qtest p = QCheck_alcotest.to_alcotest p

(* ---- classifier ----------------------------------------------------------- *)

let facts ?(completed = 5000) ?(tput = 40_000.0) ?(view_changes = 0) ?recovery_s ?catch_up_s
    ?(perturbed = false) () =
  {
    Metrics.of_completed = completed;
    of_throughput_tps = tput;
    of_view_changes = view_changes;
    of_recovery_s = recovery_s;
    of_catch_up_s = catch_up_s;
    of_perturbed = perturbed;
  }

let obs ?(safety_ok = true) ?(budget_exhausted = false) ?retention f =
  { Classify.facts = f; safety_ok; budget_exhausted; retention }

let t = Classify.default_thresholds

let check_outcome msg expected o =
  Alcotest.(check string) msg (Classify.outcome_name expected)
    (Classify.outcome_name (Classify.classify t o))

let test_classify_safe () =
  check_outcome "clean fault-free run" Classify.Safe (obs (facts ()));
  check_outcome "high retention, unperturbed" Classify.Safe (obs ~retention:0.95 (facts ()))

let test_classify_live () =
  check_outcome "perturbed but recovered fast" Classify.Live
    (obs ~retention:0.9 (facts ~perturbed:true ~view_changes:1 ~recovery_s:0.1 ()));
  check_outcome "retention under the safe bar" Classify.Live (obs ~retention:0.6 (facts ()))

let test_classify_degraded () =
  check_outcome "slow recovery" Classify.Degraded
    (obs ~retention:0.9 (facts ~perturbed:true ~recovery_s:(t.Classify.recovery_bound_s +. 0.1) ()));
  check_outcome "retention collapse" Classify.Degraded
    (obs ~retention:0.2 (facts ~perturbed:true ()))

let test_classify_wedged () =
  check_outcome "no progress" Classify.Wedged (obs (facts ~completed:3 ~tput:3.0 ()));
  check_outcome "event budget exhausted" Classify.Wedged (obs ~budget_exhausted:true (facts ()))

let test_classify_unsafe () =
  (* safety failure trumps everything, even a wedged-looking run *)
  check_outcome "agreement violation" Classify.Unsafe
    (obs ~safety_ok:false ~budget_exhausted:true (facts ~completed:0 ()))

(* ---- expansion ------------------------------------------------------------ *)

(* Tiny matrix: 2 cells x 1 seed at the default, ~2s of simulated cluster. *)
let tiny =
  {
    Campaign.quick_matrix with
    Campaign.protocols = [ Params.Pbft ];
    instances = [ 1 ];
    exec_threads = [ 1 ];
    backends = [ Campaign.Mem ];
    view_timeouts_ms = [ 75.0 ];
    shard_axis = [ (1, 0.0) ];
    families = [ Nemesis.Gen.Crashes ];
    seeds = 1;
    base =
      (Campaign.quick_base
      |> Params.with_clients 100
      |> Params.with_windows ~warmup:(Sim.seconds 0.1) ~measure:(Sim.seconds 0.3));
  }

let test_expand_forces_twin () =
  let cells = Campaign.expand tiny in
  Alcotest.(check int) "fault-free twin joins the declared family" 2 (List.length cells);
  Alcotest.(check bool) "one cell is the twin" true
    (List.exists (fun c -> c.Campaign.family = Nemesis.Gen.Fault_free) cells)

let test_expand_skips_invalid () =
  let m =
    { tiny with Campaign.protocols = [ Params.Pbft; Params.Zyzzyva ]; instances = [ 1; 2 ] }
  in
  let cells = Campaign.expand m in
  Alcotest.(check bool) "no multi-instance zyzzyva" true
    (List.for_all
       (fun c -> c.Campaign.instances = 1 || c.Campaign.protocol = Params.Pbft)
       cells);
  (* pbft: 2 k x 2 families; zyzzyva: k=1 x 2 families *)
  Alcotest.(check int) "cell count" 6 (List.length cells)

let test_run_seed_varies () =
  let cells = Campaign.expand tiny in
  let seeds =
    List.concat_map
      (fun c ->
        List.init 3 (fun i -> (Campaign.params_for tiny c ~seed_index:i).Params.seed))
      cells
  in
  let distinct = List.sort_uniq compare seeds in
  Alcotest.(check int) "per-run seeds all distinct" (List.length seeds) (List.length distinct)

(* ---- determinism ---------------------------------------------------------- *)

let test_deterministic_json =
  qtest
    (QCheck.Test.make ~count:2 ~name:"same matrix+seed => byte-identical report"
       (QCheck.make (QCheck.Gen.map Int64.of_int QCheck.Gen.int))
       (fun seed ->
         let m = { tiny with Campaign.matrix_seed = seed } in
         let a = Report.to_json (Campaign.run m) in
         let b = Report.to_json (Campaign.run m) in
         a = b))

let test_parallel_equals_serial () =
  let a = Report.to_json (Campaign.run ~jobs:1 tiny) in
  let b = Report.to_json (Campaign.run ~jobs:4 tiny) in
  Alcotest.(check string) "4-domain run bytes = serial run bytes" a b

(* ---- wedge budget --------------------------------------------------------- *)

let test_budget_prevents_hang () =
  (* an absurdly small budget must terminate promptly and classify wedged,
     not spin the DES forever *)
  let m = { tiny with Campaign.budget_events = 2_000 } in
  let report = Campaign.run m in
  List.iter
    (fun (c : Report.cell) ->
      Alcotest.(check int) (c.Report.family ^ " wedged under tiny budget") c.Report.runs
        c.Report.wedged)
    report.Report.cells

let test_sim_run_bounded () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let rec tick i =
    if i < 1000 then
      ignore (Sim.schedule sim ~after:(Sim.ms 1.0) (fun () -> incr fired; tick (i + 1)))
  in
  tick 0;
  (match Sim.run_bounded ~max_events:10 sim with
  | `Exhausted -> ()
  | `Completed _ -> Alcotest.fail "expected exhaustion");
  Alcotest.(check int) "stopped at the budget" 10 !fired;
  match Sim.run_bounded ~max_events:10_000 sim with
  | `Completed n -> Alcotest.(check int) "drained the rest" 990 n
  | `Exhausted -> Alcotest.fail "budget was ample"

(* ---- gate ----------------------------------------------------------------- *)

let report_of_cells cells =
  {
    Report.quick = true;
    matrix_seed = 1L;
    runs_per_cell = 3;
    total_runs = 3 * List.length cells;
    budget_events = 1000;
    thresholds = Classify.threshold_fields t;
    cells;
    cliffs = [];
  }

let cell ?(wedged = 0) ?(unsafe = 0) ?(degraded = 0) ~protocol ~family () =
  {
    Report.protocol;
    instances = 1;
    exec_threads = 1;
    backend = "mem";
    view_timeout_ms = 75.0;
    shards = 1;
    cross_shard = 0.0;
    family;
    runs = 3;
    safe = 3 - wedged - unsafe - degraded;
    live = 0;
    degraded;
    wedged;
    unsafe;
    tput_mean_tps = 1000.0;
    retention_mean = 1.0;
    recoveries = 0;
    recovery_p50_s = 0.0;
    recovery_p90_s = 0.0;
    recovery_max_s = 0.0;
  }

let parse_exn json =
  match Check.parse_report json with Ok d -> d | Error e -> Alcotest.fail e

let test_gate_round_trip () =
  let doc =
    parse_exn
      (Report.to_json
         (report_of_cells
            [ cell ~protocol:"pbft" ~family:"none" (); cell ~wedged:1 ~protocol:"pbft" ~family:"loss" () ]))
  in
  Alcotest.(check int) "two classes" 2 (List.length doc.Check.classes);
  let cs = Check.compare_reports Check.default_tolerance ~baseline:doc ~current:doc in
  Alcotest.(check bool) "identical reports pass" false (Check.failed cs)

let test_gate_new_wedge_class_fails () =
  let baseline =
    parse_exn (Report.to_json (report_of_cells [ cell ~protocol:"pbft" ~family:"loss" () ]))
  in
  let current =
    parse_exn
      (Report.to_json (report_of_cells [ cell ~wedged:1 ~protocol:"pbft" ~family:"loss" () ]))
  in
  let cs = Check.compare_reports Check.default_tolerance ~baseline ~current in
  Alcotest.(check bool) "clean class turning hazardous fails" true (Check.failed cs)

let test_gate_band_tolerates_known_hazard () =
  let baseline =
    parse_exn
      (Report.to_json (report_of_cells [ cell ~wedged:1 ~protocol:"zyzzyva" ~family:"crash" () ]))
  in
  (* same hazard rate: inside any band *)
  let cs = Check.compare_reports Check.default_tolerance ~baseline ~current:baseline in
  Alcotest.(check bool) "known-hazardous class within band passes" false (Check.failed cs);
  (* 1/3 -> 3/3 wedged blows through the 10-point band *)
  let worse =
    parse_exn
      (Report.to_json (report_of_cells [ cell ~wedged:3 ~protocol:"zyzzyva" ~family:"crash" () ]))
  in
  let cs = Check.compare_reports Check.default_tolerance ~baseline ~current:worse in
  Alcotest.(check bool) "regressing past the band fails" true (Check.failed cs)

let test_gate_lost_coverage_fails () =
  let baseline =
    parse_exn
      (Report.to_json
         (report_of_cells
            [ cell ~protocol:"pbft" ~family:"none" (); cell ~protocol:"pbft" ~family:"loss" () ]))
  in
  let current =
    parse_exn (Report.to_json (report_of_cells [ cell ~protocol:"pbft" ~family:"none" () ]))
  in
  let cs = Check.compare_reports Check.default_tolerance ~baseline ~current in
  Alcotest.(check bool) "dropping a class fails" true (Check.failed cs)

let () =
  Alcotest.run "campaign"
    [
      ( "classify",
        [
          Alcotest.test_case "safe" `Quick test_classify_safe;
          Alcotest.test_case "live" `Quick test_classify_live;
          Alcotest.test_case "degraded" `Quick test_classify_degraded;
          Alcotest.test_case "wedged" `Quick test_classify_wedged;
          Alcotest.test_case "unsafe" `Quick test_classify_unsafe;
        ] );
      ( "expand",
        [
          Alcotest.test_case "forces fault-free twin" `Quick test_expand_forces_twin;
          Alcotest.test_case "skips invalid combos" `Quick test_expand_skips_invalid;
          Alcotest.test_case "distinct per-run seeds" `Quick test_run_seed_varies;
        ] );
      ( "determinism",
        [
          test_deterministic_json;
          Alcotest.test_case "parallel = serial" `Quick test_parallel_equals_serial;
        ] );
      ( "budget",
        [
          Alcotest.test_case "sim run_bounded" `Quick test_sim_run_bounded;
          Alcotest.test_case "wedge cannot hang" `Quick test_budget_prevents_hang;
        ] );
      ( "gate",
        [
          Alcotest.test_case "round trip" `Quick test_gate_round_trip;
          Alcotest.test_case "new wedge class fails" `Quick test_gate_new_wedge_class_fails;
          Alcotest.test_case "band tolerates known hazard" `Quick test_gate_band_tolerates_known_hazard;
          Alcotest.test_case "lost coverage fails" `Quick test_gate_lost_coverage_fails;
        ] );
    ]

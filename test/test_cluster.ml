(* End-to-end tests of the simulated ResilientDB cluster: determinism,
   sanity of the measured metrics, Little's-law consistency, protocol and
   fault-injection behaviour, and the upper-bound harness.  Small scales
   keep the suite fast; the bench harness runs the paper-scale sweeps. *)

open Rdb_core
module Stats = Rdb_des.Stats

let check = Alcotest.check

(* A small, fast configuration. *)
let small =
  Params.default
  |> Params.with_n 4
  |> Params.with_clients 2_000
  |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.2)
       ~measure:(Rdb_des.Sim.seconds 0.3)

let test_validate_rejects_bad_params () =
  Alcotest.check_raises "n too small" (Invalid_argument "Params: n must be >= 4") (fun () ->
      Params.validate (Params.with_n 3 small));
  Alcotest.check_raises "too many exec threads"
    (Invalid_argument
       "Params: execute_threads must be in [0, 64] (E >= 2 runs the conflict-aware lane \
        scheduler; the paper's bare multi-threaded execution is never allowed because \
        unscheduled execution threads cause data conflicts)")
    (fun () -> Params.validate (Params.with_execute_threads 65 small));
  Alcotest.check_raises "too many crashes" (Invalid_argument "Params: cannot crash more than f backups")
    (fun () -> Params.validate (Params.with_crashed_backups 2 small))

let test_pbft_progress () =
  let m = Cluster.run small in
  Alcotest.(check bool) "throughput positive" true (m.Metrics.throughput_tps > 1000.0);
  Alcotest.(check bool) "latency positive" true (Stats.mean m.Metrics.latency > 0.0);
  Alcotest.(check bool) "blocks appended" true (m.Metrics.ledger_blocks > 0);
  Alcotest.(check bool) "messages flowed" true (m.Metrics.messages_sent > 0);
  check Alcotest.int "no speculative path in PBFT" 0 m.Metrics.fast_path_txns

let test_determinism () =
  let a = Cluster.run small and b = Cluster.run small in
  check (Alcotest.float 1e-9) "same seed, same throughput" a.Metrics.throughput_tps
    b.Metrics.throughput_tps;
  check Alcotest.int "same completions" a.Metrics.completed_txns b.Metrics.completed_txns;
  check Alcotest.int "same messages" a.Metrics.messages_sent b.Metrics.messages_sent;
  let c = Cluster.run (Params.with_seed 999L small) in
  Alcotest.(check bool) "different seed may differ (jitter)" true
    (c.Metrics.completed_txns > 0)

let test_littles_law () =
  (* In a saturated closed loop, throughput x latency ~ client population. *)
  let m = Cluster.run small in
  let implied = m.Metrics.throughput_tps *. Stats.mean m.Metrics.latency in
  let clients = float_of_int small.Params.clients in
  Alcotest.(check bool)
    (Printf.sprintf "throughput*latency = %.0f ~ clients = %.0f" implied clients)
    true
    (implied < clients *. 1.15)

let test_zyzzyva_fast_path () =
  let m = Cluster.run (Params.with_protocol Params.Zyzzyva small) in
  Alcotest.(check bool) "throughput positive" true (m.Metrics.throughput_tps > 1000.0);
  check Alcotest.int "all fast path" m.Metrics.completed_txns m.Metrics.fast_path_txns;
  check Alcotest.int "no certificates needed" 0 m.Metrics.cert_path_txns

let test_zyzzyva_crash_forces_cert_path () =
  let m =
    Cluster.run
      (small
      |> Params.with_protocol Params.Zyzzyva
      |> Params.with_crashed_backups 1
      |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 1.0)
           ~measure:(Rdb_des.Sim.seconds 1.0))
  in
  check Alcotest.int "fast path dead with one crash" 0 m.Metrics.fast_path_txns;
  Alcotest.(check bool) "certificate path used" true (m.Metrics.cert_path_txns > 0)

let test_zyzzyva_crash_collapses_throughput () =
  let healthy = Cluster.run (Params.with_protocol Params.Zyzzyva small) in
  let crashed =
    Cluster.run
      (small
      |> Params.with_protocol Params.Zyzzyva
      |> Params.with_crashed_backups 1
      |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 1.0)
           ~measure:(Rdb_des.Sim.seconds 1.0))
  in
  Alcotest.(check bool)
    (Printf.sprintf "collapse: %.0f -> %.0f" healthy.Metrics.throughput_tps
       crashed.Metrics.throughput_tps)
    true
    (crashed.Metrics.throughput_tps < healthy.Metrics.throughput_tps /. 5.0)

let test_pbft_crash_keeps_throughput () =
  let healthy = Cluster.run small in
  let crashed = Cluster.run (Params.with_crashed_backups 1 small) in
  Alcotest.(check bool)
    (Printf.sprintf "robust: %.0f -> %.0f" healthy.Metrics.throughput_tps
       crashed.Metrics.throughput_tps)
    true
    (crashed.Metrics.throughput_tps > healthy.Metrics.throughput_tps *. 0.8)

let test_batching_amortizes () =
  let b1 = Cluster.run (small |> Params.with_batch_size 1 |> Params.with_clients 500) in
  let b100 = Cluster.run small in
  Alcotest.(check bool)
    (Printf.sprintf "batch 1 (%.0f) << batch 100 (%.0f)" b1.Metrics.throughput_tps
       b100.Metrics.throughput_tps)
    true
    (b1.Metrics.throughput_tps *. 5.0 < b100.Metrics.throughput_tps)

let test_threading_helps () =
  let mono =
    Cluster.run (small |> Params.with_batch_threads 0 |> Params.with_execute_threads 0)
  in
  let piped = Cluster.run small in
  Alcotest.(check bool) "pipeline beats monolith" true
    (piped.Metrics.throughput_tps > mono.Metrics.throughput_tps *. 1.2)

let test_crypto_cost_ordering () =
  let schemes s p =
    Params.map_consensus
      (fun c -> { c with Params.Consensus.client_scheme = s; replica_scheme = s; reply_scheme = s })
      p
  in
  let nosig = Cluster.run (schemes Rdb_crypto.Signer.No_sig small) in
  let hybrid = Cluster.run small in
  let rsa = Cluster.run (schemes Rdb_crypto.Signer.Rsa small) in
  Alcotest.(check bool) "nosig > hybrid" true
    (nosig.Metrics.throughput_tps > hybrid.Metrics.throughput_tps);
  Alcotest.(check bool) "hybrid >> rsa" true
    (hybrid.Metrics.throughput_tps > rsa.Metrics.throughput_tps *. 5.0)

let test_storage_cost () =
  let mem = Cluster.run small in
  let sql =
    Cluster.run (Params.map_exec (fun e -> { e with Params.Exec.sqlite = true }) small)
  in
  Alcotest.(check bool) "in-memory >> sqlite" true
    (mem.Metrics.throughput_tps > sql.Metrics.throughput_tps *. 4.0)

let test_fewer_cores_slower () =
  let eight = Cluster.run small in
  let one = Cluster.run (Params.with_cores 1 small) in
  Alcotest.(check bool) "8 cores >> 1 core" true
    (eight.Metrics.throughput_tps > one.Metrics.throughput_tps *. 2.0)

let test_message_size_hits_bandwidth () =
  let small_msgs = Cluster.run small in
  (* At n = 4 a batch fans out to only 3 peers, so the payload must be large
     before the egress NIC becomes the bottleneck. *)
  let big_msgs =
    Cluster.run
      (Params.map_workload
         (fun w -> { w with Params.Workload.preprepare_payload_bytes = 400_000 })
         small)
  in
  Alcotest.(check bool) "64KB messages throttle throughput" true
    (big_msgs.Metrics.throughput_tps < small_msgs.Metrics.throughput_tps *. 0.8)

let test_saturation_accounting () =
  let m = Cluster.run small in
  List.iter
    (fun r ->
      Alcotest.(check bool) "cpu utilization in [0,1]" true
        (r.Metrics.cpu_utilization >= 0.0 && r.Metrics.cpu_utilization <= 1.0);
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "stage %s in [0,100]" s.Metrics.stage)
            true
            (s.Metrics.percent >= 0.0 && s.Metrics.percent <= 100.5))
        r.Metrics.stages)
    m.Metrics.replicas;
  (* The primary's batch-threads dominate under the default load. *)
  let primary = List.find (fun r -> r.Metrics.is_primary) m.Metrics.replicas in
  let batch_sat =
    List.fold_left
      (fun acc s -> if s.Metrics.stage = "batch" then s.Metrics.percent else acc)
      0.0 primary.Metrics.stages
  in
  Alcotest.(check bool) "batch threads busiest" true (batch_sat > 50.0)

let test_ledgers_grow_consistently () =
  let m = Cluster.run small in
  (* Every batch became a block at replica 0. *)
  Alcotest.(check bool) "blocks track batches" true
    (abs (m.Metrics.ledger_blocks - (m.Metrics.completed_txns / small.Params.batch_size))
    < m.Metrics.ledger_blocks / 2)

let test_upper_bound () =
  let p = Params.with_clients 20_000 small in
  let no_exec = Upper_bound.run ~p ~execute:false () in
  let exec = Upper_bound.run ~p ~execute:true () in
  Alcotest.(check bool) "no-exec above exec" true
    (no_exec.Upper_bound.throughput_tps > exec.Upper_bound.throughput_tps);
  Alcotest.(check bool) "upper bound above consensus" true
    (exec.Upper_bound.throughput_tps > 200_000.0)

let test_ops_per_txn () =
  let one = Cluster.run small in
  let fifty =
    Cluster.run
      (Params.map_workload (fun w -> { w with Params.Workload.ops_per_txn = 50 }) small)
  in
  Alcotest.(check bool) "multi-op txns reduce txn throughput" true
    (fifty.Metrics.throughput_tps < one.Metrics.throughput_tps /. 2.0);
  (* ...but raise operation throughput (the paper's reversed trend). *)
  Alcotest.(check bool) "op/s trend reverses" true
    (fifty.Metrics.ops_per_second > one.Metrics.ops_per_second)

let test_checkpointing_prunes_ledger () =
  (* Frequent checkpoints keep the retained chain near the head. *)
  let m =
    Cluster.run
      (Params.map_consensus (fun c -> { c with Params.Consensus.checkpoint_txns = 1_000 }) small)
  in
  Alcotest.(check bool) "ran with checkpoints" true (m.Metrics.ledger_blocks > 0)

let () =
  Alcotest.run "cluster"
    [
      ( "construction",
        [ Alcotest.test_case "parameter validation" `Quick test_validate_rejects_bad_params ] );
      ( "pbft",
        [
          Alcotest.test_case "progress" `Quick test_pbft_progress;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "little's law" `Quick test_littles_law;
          Alcotest.test_case "ledger growth" `Quick test_ledgers_grow_consistently;
          Alcotest.test_case "saturation accounting" `Quick test_saturation_accounting;
        ] );
      ( "zyzzyva",
        [
          Alcotest.test_case "fast path when healthy" `Quick test_zyzzyva_fast_path;
          Alcotest.test_case "crash forces certificates" `Slow test_zyzzyva_crash_forces_cert_path;
          Alcotest.test_case "crash collapses throughput" `Slow test_zyzzyva_crash_collapses_throughput;
        ] );
      ( "paper effects",
        [
          Alcotest.test_case "pbft robust to crashes" `Quick test_pbft_crash_keeps_throughput;
          Alcotest.test_case "batching amortizes" `Quick test_batching_amortizes;
          Alcotest.test_case "threading helps" `Quick test_threading_helps;
          Alcotest.test_case "crypto ordering" `Slow test_crypto_cost_ordering;
          Alcotest.test_case "storage cost" `Quick test_storage_cost;
          Alcotest.test_case "cores matter" `Quick test_fewer_cores_slower;
          Alcotest.test_case "message size vs bandwidth" `Quick test_message_size_hits_bandwidth;
          Alcotest.test_case "multi-operation transactions" `Quick test_ops_per_txn;
          Alcotest.test_case "checkpoint pruning" `Quick test_checkpointing_prunes_ledger;
        ] );
      ("upper bound", [ Alcotest.test_case "fig 7 harness" `Quick test_upper_bound ]);
    ]

(* Tests for the observability layer: ring buffers, stage/CPU probes, span
   telescoping, the Chrome trace_event export, the time-series sampler, and
   the guarantee that tracing never changes what the simulation computes. *)

open Rdb_core
module Sim = Rdb_des.Sim
module Cpu = Rdb_des.Cpu
module Rng = Rdb_des.Rng
module Stats = Rdb_des.Stats
module Stage = Rdb_replica.Stage
module Ring = Rdb_obs.Ring
module Trace = Rdb_obs.Trace
module Breakdown = Rdb_obs.Breakdown
module Series = Rdb_obs.Series

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

(* ---- minimal JSON parser (no external deps) ------------------------------ *)

(* Just enough JSON to validate the trace files: objects, arrays, strings
   with escapes, numbers, true/false/null. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance (); Buffer.contents b
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
            advance ();
            if !pos + 4 > n then raise (Bad "bad \\u escape");
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < n && is_num s.[!pos] do
        advance ()
      done;
      if !pos = start then raise (Bad "empty number");
      Num (float_of_string (String.sub s start (!pos - start)))
    in
    let parse_lit lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else raise (Bad ("bad literal at " ^ string_of_int !pos))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((key, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object sep %c" c))
          in
          members []
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); Arr (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array sep %c" c))
          in
          elements []
        end
      | '"' -> Str (parse_string ())
      | 't' -> parse_lit "true" (Bool true)
      | 'f' -> parse_lit "false" (Bool false)
      | 'n' -> parse_lit "null" Null
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member key = function
    | Obj kvs -> (try List.assoc key kvs with Not_found -> Null)
    | _ -> Null

  let to_list = function Arr l -> l | _ -> []
  let to_string = function Str s -> s | _ -> ""
  let to_num = function Num f -> f | _ -> nan
end

(* ---- ring buffer ---------------------------------------------------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:3 in
  check Alcotest.int "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  check Alcotest.(list int) "partial, oldest first" [ 1; 2 ] (Ring.to_list r);
  Ring.push r 3;
  Ring.push r 4;
  (* 1 overwritten *)
  check Alcotest.(list int) "wrapped, oldest first" [ 2; 3; 4 ] (Ring.to_list r);
  check Alcotest.int "dropped counted" 1 (Ring.dropped r);
  check Alcotest.int "capacity stable" 3 (Ring.capacity r);
  Ring.clear r;
  check Alcotest.int "cleared" 0 (Ring.length r)

let test_ring_iter_matches_to_list () =
  let r = Ring.create ~capacity:5 in
  for i = 1 to 17 do
    Ring.push r i
  done;
  let via_iter = ref [] in
  Ring.iter r (fun x -> via_iter := x :: !via_iter);
  check Alcotest.(list int) "iter = to_list" (Ring.to_list r) (List.rev !via_iter);
  check Alcotest.(list int) "newest capacity items" [ 13; 14; 15; 16; 17 ] (Ring.to_list r)

(* ---- stats reservoir ------------------------------------------------------ *)

let test_stats_exact_below_cap () =
  (* Below the cap the reservoir keeps everything: percentiles are the exact
     nearest-rank values, and the moments are exact. *)
  let t = Stats.create ~cap:1000 () in
  for i = 100 downto 1 do
    Stats.add t (float_of_int i)
  done;
  check Alcotest.int "count" 100 (Stats.count t);
  check Alcotest.int "all retained" 100 (Stats.retained t);
  check (Alcotest.float 1e-9) "total" 5050.0 (Stats.total t);
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile t 50.0);
  check (Alcotest.float 1e-9) "p99" 99.0 (Stats.percentile t 99.0);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min t);
  check (Alcotest.float 1e-9) "max" 100.0 (Stats.max t)

let test_stats_reservoir_bounded_and_unbiased () =
  (* Past the cap, memory stays bounded and percentiles stay within noise of
     the true distribution (uniform ramp 0..1). *)
  let t = Stats.create ~cap:2000 () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    Stats.add t (float_of_int i /. float_of_int n)
  done;
  check Alcotest.int "count not capped" n (Stats.count t);
  check Alcotest.int "reservoir capped" 2000 (Stats.retained t);
  (* Exact summary stats are unaffected by the reservoir; the true mean of
     the ramp i/n for i = 0..n-1 is (n-1)/(2n). *)
  check (Alcotest.float 1e-9) "mean exact" 0.499995 (Stats.mean t);
  check (Alcotest.float 1e-9) "min exact" 0.0 (Stats.min t);
  (* Sampled percentiles: with 2000 uniform samples the nearest-rank p50 has
     std-dev ~ 0.011; 5 sigma gives a deterministic-but-robust bound. *)
  check (Alcotest.float 0.06) "p50 within noise" 0.5 (Stats.percentile t 50.0);
  check (Alcotest.float 0.06) "p90 within noise" 0.9 (Stats.percentile t 90.0)

let test_stats_reservoir_deterministic () =
  let mk () =
    let t = Stats.create ~cap:100 () in
    for i = 0 to 9_999 do
      Stats.add t (float_of_int ((i * 7919) mod 10_000))
    done;
    t
  in
  let a = mk () and b = mk () in
  check (Alcotest.float 0.0) "same p50" (Stats.percentile a 50.0) (Stats.percentile b 50.0);
  check (Alcotest.float 0.0) "same p99" (Stats.percentile a 99.0) (Stats.percentile b 99.0)

(* ---- stage and CPU probes -------------------------------------------------- *)

let test_stage_probe_queue_and_service_exact () =
  (* One worker, two jobs of 100ns service on an uncontended CPU: the first
     waits 0 and holds 100; the second queues behind it for 100. *)
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:4 in
  let seen = ref [] in
  let stage =
    Stage.create sim ~cpu ~name:"s" ~workers:1
      ~probe:(fun ~queue_ns ~service_ns ~at -> seen := (queue_ns, service_ns, at) :: !seen)
      ()
  in
  Stage.enqueue stage ~service:100 (fun () -> ());
  Stage.enqueue stage ~service:50 (fun () -> ());
  Sim.run sim;
  match List.rev !seen with
  | [ (q1, s1, at1); (q2, s2, at2) ] ->
    check Alcotest.int "job1 queue" 0 q1;
    check Alcotest.int "job1 service" 100 s1;
    check Alcotest.int "job1 done at" 100 at1;
    check Alcotest.int "job2 queued behind job1" 100 q2;
    check Alcotest.int "job2 service" 50 s2;
    check Alcotest.int "job2 done at" 150 at2
  | l -> Alcotest.failf "expected 2 probe calls, got %d" (List.length l)

let test_cpu_probe_wait_exact () =
  (* One core, two jobs: the second waits exactly the first's service. *)
  let sim = Sim.create () in
  let seen = ref [] in
  let cpu =
    Cpu.create ~probe:(fun ~wait_ns ~held_ns ~at -> seen := (wait_ns, held_ns, at) :: !seen)
      sim ~cores:1
  in
  Cpu.submit cpu ~service:70 (fun () -> ());
  Cpu.submit cpu ~service:30 (fun () -> ());
  Sim.run sim;
  match List.rev !seen with
  | [ (w1, h1, _); (w2, h2, at2) ] ->
    check Alcotest.int "job1 no wait" 0 w1;
    check Alcotest.int "job1 held" 70 h1;
    check Alcotest.int "job2 waited for the core" 70 w2;
    check Alcotest.int "job2 held" 30 h2;
    check Alcotest.int "job2 done at" 100 at2
  | l -> Alcotest.failf "expected 2 probe calls, got %d" (List.length l)

let test_stage_no_probe_identical_schedule () =
  (* The probe must not change stage semantics: completion counts and
     occupied time agree with and without it. *)
  let run probe =
    let sim = Sim.create () in
    let cpu = Cpu.create sim ~cores:2 in
    let stage = Stage.create sim ~cpu ~name:"s" ~workers:2 ?probe () in
    for i = 1 to 20 do
      Stage.enqueue stage ~service:(10 * i) (fun () -> ())
    done;
    Sim.run sim;
    (Stage.jobs_completed stage, Stage.occupied_ns stage, Sim.now sim)
  in
  let plain = run None in
  let probed = run (Some (fun ~queue_ns:_ ~service_ns:_ ~at:_ -> ())) in
  check Alcotest.(triple int int int) "identical" plain probed

(* ---- series sampler --------------------------------------------------------- *)

let test_series_samples_on_schedule () =
  let sim = Sim.create () in
  let count = ref 0 in
  let s =
    Series.create sim ~interval:100 ~capacity:8 ~columns:[ "x" ]
      ~sample:(fun () ->
        incr count;
        [| float_of_int !count |])
  in
  Series.start s;
  Sim.run ~until:1_000 sim;
  Series.stop s;
  (* Samples at t = 0, 100, ..., 1000 -> 11 taken, ring keeps the last 8. *)
  check Alcotest.int "sampled every interval" 11 !count;
  check Alcotest.int "ring bounded" 8 (Series.length s);
  check Alcotest.int "overflow counted" 3 (Series.dropped s);
  let csv = Series.to_csv_string s in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "header + rows" 9 (List.length lines);
  check Alcotest.string "header" "t_s,x" (List.hd lines)

(* ---- trace collector --------------------------------------------------------- *)

let test_trace_json_shape () =
  let sim = Sim.create () in
  let tr = Trace.create ~max_events:100 sim in
  Trace.set_process_name tr ~pid:0 "replica 0";
  Trace.set_thread_name tr ~pid:0 ~tid:4 "worker";
  Trace.complete tr ~pid:0 ~tid:4 ~name:"job \"quoted\"\n" ~ts:1_000 ~dur:500;
  Trace.counter tr ~pid:0 ~name:"queues" ~series:[ ("worker", 3.0) ];
  Trace.instant tr ~name:"fault: crash primary";
  let j = Json.parse (Trace.to_string tr) in
  let evs = Json.to_list (Json.member "traceEvents" j) in
  check Alcotest.int "X + C + i + 2 metadata events" 5 (List.length evs);
  let by_ph ph =
    List.filter (fun e -> Json.to_string (Json.member "ph" e) = ph) evs
  in
  check Alcotest.int "one X" 1 (List.length (by_ph "X"));
  check Alcotest.int "one C" 1 (List.length (by_ph "C"));
  check Alcotest.int "one i" 1 (List.length (by_ph "i"));
  check Alcotest.int "two M" 2 (List.length (by_ph "M"));
  (match by_ph "X" with
  | [ x ] ->
    check Alcotest.string "escaped name round-trips" "job \"quoted\"\n"
      (Json.to_string (Json.member "name" x));
    check (Alcotest.float 1e-9) "ts in us" 1.0 (Json.to_num (Json.member "ts" x));
    check (Alcotest.float 1e-9) "dur in us" 0.5 (Json.to_num (Json.member "dur" x))
  | _ -> Alcotest.fail "missing X event")

let test_trace_cap_drops_counted () =
  let sim = Sim.create () in
  let tr = Trace.create ~max_events:10 sim in
  for i = 0 to 24 do
    Trace.complete tr ~pid:0 ~tid:0 ~name:"e" ~ts:i ~dur:1
  done;
  Trace.instant tr ~name:"still recorded";
  check Alcotest.int "buffered at cap" 10 (Trace.events tr);
  check Alcotest.int "drops counted" 15 (Trace.dropped tr);
  check Alcotest.int "instants exempt from cap" 1 (Trace.instants tr);
  (* The file stays parseable at the cap. *)
  ignore (Json.parse (Trace.to_string tr))

(* ---- cluster integration ------------------------------------------------------ *)

let small =
  Params.default
  |> Params.with_n 4
  |> Params.with_clients 400
  |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 2 })
  |> Params.with_batch_size 20
  |> Params.map_consensus (fun c -> { c with Params.Consensus.checkpoint_txns = 400 })
  |> Params.with_windows ~warmup:(Sim.seconds 0.1) ~measure:(Sim.seconds 0.25)

let faulted =
  small
  |> Params.with_clients 400
  |> Params.with_client_timeout (Sim.ms 40.0)
  |> Params.with_view_timeout (Sim.ms 30.0)
  |> Params.with_windows ~warmup:small.Params.warmup ~measure:(Sim.seconds 0.5)
  |> Params.with_nemesis (Nemesis.crash_primary_at (Sim.ms 200.0))

let test_spans_telescope_to_latency () =
  let m = Cluster.run (Params.with_trace true small) in
  check Alcotest.int "4 phases" 4 (List.length m.Metrics.spans);
  check Alcotest.(list string) "phase order" [ "batch"; "consensus"; "execute"; "reply" ]
    (List.map (fun s -> s.Metrics.phase) m.Metrics.spans);
  let lat_n = Stats.count m.Metrics.latency in
  List.iter
    (fun s ->
      check Alcotest.int
        (Printf.sprintf "every measured txn has a %s phase" s.Metrics.phase)
        lat_n (Stats.count s.Metrics.time))
    m.Metrics.spans;
  (* Telescoping: the four phases partition each transaction's latency, so
     the phase totals sum to the latency total (up to float rounding of the
     nanosecond sums). *)
  let phase_total =
    List.fold_left (fun acc s -> acc +. Stats.total s.Metrics.time) 0.0 m.Metrics.spans
  in
  let lat_total = Stats.total m.Metrics.latency in
  let eps = 1e-9 *. float_of_int (Stdlib.max 1 lat_n) in
  if abs_float (phase_total -. lat_total) > eps then
    Alcotest.failf "phases sum to %.12f but latency total is %.12f" phase_total lat_total

let test_breakdown_rows_consistent () =
  let m = Cluster.run (Params.with_trace true small) in
  let b = match m.Metrics.breakdown with Some b -> b | None -> Alcotest.fail "no breakdown" in
  let find label =
    match Breakdown.find b label with
    | Some r -> r
    | None -> Alcotest.failf "missing row %s" label
  in
  (* Every stage of the 2B1E pipeline shows up for both roles and saw work. *)
  List.iter
    (fun label ->
      let r = find label in
      if Breakdown.jobs r = 0 then Alcotest.failf "row %s recorded no jobs" label;
      (* Queue and service get one sample per completed job. *)
      check Alcotest.int
        (label ^ ": queue and service sample counts agree")
        (Stats.count r.Breakdown.queue)
        (Stats.count r.Breakdown.service);
      if Stats.min r.Breakdown.queue < 0.0 || Stats.min r.Breakdown.service < 0.0 then
        Alcotest.failf "row %s has negative durations" label)
    [
      "input-client/primary"; "batch/primary"; "worker/primary"; "execute/primary";
      "output/primary"; "worker/backup"; "execute/backup"; "cpu/primary"; "cpu/backup";
    ];
  (* Plain run: no breakdown, no spans. *)
  let plain = Cluster.run small in
  (match plain.Metrics.breakdown with
  | None -> ()
  | Some _ -> Alcotest.fail "untraced run carries a breakdown");
  check Alcotest.int "untraced run has no spans" 0 (List.length plain.Metrics.spans)

let test_trace_file_valid_and_complete () =
  let path = Filename.temp_file "rdb_test_trace" ".json" in
  let csv_path = Filename.temp_file "rdb_test_series" ".csv" in
  let m =
    Cluster.run
      (Params.map_obs
         (fun o -> { o with Params.Obs.trace_out = Some path; trace_csv = Some csv_path })
         faulted)
  in
  check Alcotest.bool "view changed" true (m.Metrics.faults.Metrics.view_changes >= 1);
  let read_all p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let j = Json.parse (read_all path) in
  Sys.remove path;
  let evs = Json.to_list (Json.member "traceEvents" j) in
  check Alcotest.bool "has events" true (List.length evs > 100);
  let phase e = Json.to_string (Json.member "ph" e) in
  let pid e = int_of_float (Json.to_num (Json.member "pid" e)) in
  (* At least one duration track per replica: every pid 0..n-1 has X events. *)
  for r = 0 to faulted.Params.n - 1 do
    if not (List.exists (fun e -> phase e = "X" && pid e = r) evs) then
      Alcotest.failf "replica %d has no duration events" r;
    if
      not
        (List.exists
           (fun e ->
             phase e = "M"
             && Json.to_string (Json.member "name" e) = "process_name"
             && pid e = r)
           evs)
    then Alcotest.failf "replica %d has no process_name metadata" r
  done;
  (* The injected crash and the resulting view change both leave instants. *)
  let instant_names =
    List.filter_map
      (fun e -> if phase e = "i" then Some (Json.to_string (Json.member "name" e)) else None)
      evs
  in
  check Alcotest.bool "crash instant" true
    (List.exists (fun s -> String.length s >= 6 && String.sub s 0 6 = "fault:") instant_names);
  check Alcotest.bool "view-change instant" true
    (List.exists
       (fun s -> String.length s >= 11 && String.sub s 0 11 = "view change")
       instant_names);
  (* Counter samples are present and the CSV parallels them. *)
  check Alcotest.bool "counter events" true (List.exists (fun e -> phase e = "C") evs);
  let csv = read_all csv_path in
  Sys.remove csv_path;
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.bool "csv has rows" true (List.length lines > 10);
  let header = List.hd lines in
  check Alcotest.bool "csv header starts with t_s" true
    (String.length header > 4 && String.sub header 0 4 = "t_s,")

let prop_tracing_changes_no_metric =
  QCheck.Test.make ~name:"tracing on vs off: identical metrics" ~count:5
    QCheck.(pair (1 -- 4) (5 -- 40))
    (fun (seed, batch_size) ->
      let p =
        small
        |> Params.with_batch_size batch_size
        |> Params.with_seed (Int64.of_int (seed * 7919))
        |> Params.with_windows ~warmup:small.Params.warmup ~measure:(Sim.seconds 0.15)
      in
      let off = Cluster.run p in
      let on_ = Cluster.run (Params.with_trace true p) in
      off.Metrics.throughput_tps = on_.Metrics.throughput_tps
      && off.Metrics.completed_txns = on_.Metrics.completed_txns
      && off.Metrics.messages_sent = on_.Metrics.messages_sent
      && off.Metrics.bytes_sent = on_.Metrics.bytes_sent
      && off.Metrics.ledger_blocks = on_.Metrics.ledger_blocks
      && Stats.mean off.Metrics.latency = Stats.mean on_.Metrics.latency
      && Stats.percentile off.Metrics.latency 99.0
         = Stats.percentile on_.Metrics.latency 99.0)

let test_local_runtime_trace () =
  let rt =
    Local_runtime.create ~trace:true
      ~apply:(fun ~replica:_ _store ~client:_ ~payload -> payload)
      ()
  in
  for i = 1 to 10 do
    ignore (Local_runtime.submit rt ~client:(i mod 3) ~payload:(Printf.sprintf "v%d" i))
  done;
  Local_runtime.flush rt;
  Local_runtime.run rt;
  let j =
    match Local_runtime.trace_json rt with
    | Some s -> Json.parse s
    | None -> Alcotest.fail "no trace from traced runtime"
  in
  let evs = Json.to_list (Json.member "traceEvents" j) in
  let names =
    List.filter_map
      (fun e ->
        if Json.to_string (Json.member "ph" e) = "X" then
          Some (Json.to_string (Json.member "name" e))
        else None)
      evs
  in
  List.iter
    (fun m ->
      check Alcotest.bool (m ^ " traced") true (List.mem m names))
    [ "pre-prepare"; "prepare"; "commit" ];
  (* Untraced runtime returns no JSON. *)
  let plain =
    Local_runtime.create ~apply:(fun ~replica:_ _ ~client:_ ~payload -> payload) ()
  in
  check Alcotest.bool "untraced runtime has no trace" true
    (Local_runtime.trace_json plain = None)

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "push/overwrite/iter" `Quick test_ring_basic;
          Alcotest.test_case "iter matches to_list" `Quick test_ring_iter_matches_to_list;
        ] );
      ( "stats-reservoir",
        [
          Alcotest.test_case "exact below cap" `Quick test_stats_exact_below_cap;
          Alcotest.test_case "bounded and unbiased above cap" `Quick
            test_stats_reservoir_bounded_and_unbiased;
          Alcotest.test_case "deterministic" `Quick test_stats_reservoir_deterministic;
        ] );
      ( "probes",
        [
          Alcotest.test_case "stage queue/service exact" `Quick
            test_stage_probe_queue_and_service_exact;
          Alcotest.test_case "cpu wait/held exact" `Quick test_cpu_probe_wait_exact;
          Alcotest.test_case "probe does not perturb the stage" `Quick
            test_stage_no_probe_identical_schedule;
        ] );
      ( "series",
        [ Alcotest.test_case "samples on schedule" `Quick test_series_samples_on_schedule ] );
      ( "trace",
        [
          Alcotest.test_case "json shape + escaping" `Quick test_trace_json_shape;
          Alcotest.test_case "cap drops counted" `Quick test_trace_cap_drops_counted;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "spans telescope to latency" `Quick
            test_spans_telescope_to_latency;
          Alcotest.test_case "breakdown rows consistent" `Quick
            test_breakdown_rows_consistent;
          Alcotest.test_case "trace file valid and complete" `Quick
            test_trace_file_valid_and_complete;
          qtest prop_tracing_changes_no_metric;
          Alcotest.test_case "local runtime message-flow trace" `Quick
            test_local_runtime_trace;
        ] );
    ]

(* Fault-injection tests: the nemesis layer end-to-end.

   The deterministic regression crashes the primary mid-measurement and
   checks the liveness loop closes (view change, client retransmission,
   recovery, exactly-once completions).  The qcheck property throws random
   fault schedules — crashes, partitions, loss/duplication windows, extra
   jitter — at small PBFT clusters and checks safety: no two replicas
   commit different batches at the same sequence number, and every ledger
   verifies. *)

open Rdb_core
module Sim = Rdb_des.Sim

let qtest p = QCheck_alcotest.to_alcotest p

(* Tiny and fast, with the liveness loop enabled. *)
let faulty =
  Params.default
  |> Params.with_n 4
  |> Params.with_clients 400
  |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
  |> Params.with_batch_size 20
  |> Params.map_consensus (fun c ->
         { c with Params.Consensus.max_inflight_batches = 16; checkpoint_txns = 400 })
  |> Params.with_client_timeout (Sim.ms 40.0)
  |> Params.with_view_timeout (Sim.ms 30.0)
  |> Params.with_windows ~warmup:(Sim.seconds 0.2) ~measure:(Sim.seconds 0.8)

(* ---- deterministic regression: mid-run primary crash ---------------------- *)

let test_primary_crash_recovers () =
  let p = Params.with_nemesis (Nemesis.crash_primary_at (Sim.ms 400.0)) faulty in
  let m = Cluster.run p in
  Alcotest.(check bool) "at least one view change" true (m.Metrics.faults.Metrics.view_changes >= 1);
  Alcotest.(check bool) "clients retransmitted" true (m.Metrics.faults.Metrics.retransmissions > 0);
  let ttr =
    match m.Metrics.faults.Metrics.time_to_recovery_s with
    | Some s -> s
    | None -> Alcotest.fail "no recovery recorded"
  in
  Alcotest.(check bool) (Printf.sprintf "recovered (ttr = %.3fs)" ttr) true (ttr >= 0.0);
  Alcotest.(check bool) "recovery under a second" true (ttr < 1.0);
  Alcotest.(check bool) "throughput recovered" true (m.Metrics.throughput_tps > 0.0)

let test_primary_crash_throughput_resumes () =
  let p = Params.with_nemesis (Nemesis.crash_primary_at (Sim.ms 300.0)) faulty in
  let c = Cluster.create p in
  Cluster.start c;
  let sim = Cluster.sim c in
  Sim.run ~until:(Sim.ms 300.0) sim;
  let before = Cluster.total_completed c in
  Alcotest.(check bool) "progress before the crash" true (before > 0);
  Sim.run ~until:(Sim.seconds 1.2) sim;
  let after = Cluster.total_completed c in
  Alcotest.(check bool) "view advanced" true (Cluster.current_view c >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "completions resumed (%d -> %d)" before after)
    true
    (after > before + p.Params.clients / 2);
  (match Cluster.time_to_recovery c with
  | Some s -> Alcotest.(check bool) (Printf.sprintf "ttr %.3fs sane" s) true (s > 0.0 && s < 1.0)
  | None -> Alcotest.fail "no recovery recorded");
  (match Cluster.check_safety c with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_exactly_once_accounting () =
  (* Aggressive duplication + retransmission: every transaction still counts
     exactly once. *)
  let p =
    faulty
    |> Params.map_faults (fun f -> { f with Params.Faults.duplication_rate = 0.2 })
    |> Params.with_nemesis (Nemesis.crash_primary_at (Sim.ms 300.0))
  in
  let c = Cluster.create p in
  Cluster.start c;
  Sim.run ~until:(Sim.seconds 1.2) (Cluster.sim c);
  (* The closed loop keeps the inflight population at exactly [clients]:
     fresh completions and fresh submissions stay balanced, so counting a
     transaction twice would show up as population drift. *)
  Alcotest.(check bool) "completed a multiple of population flow" true
    (Cluster.total_completed c > 0);
  (match Cluster.check_safety c with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_healthy_run_reports_no_faults () =
  let m = Cluster.run (Params.with_client_timeout 0 faulty) in
  Alcotest.(check int) "no view changes" 0 m.Metrics.faults.Metrics.view_changes;
  Alcotest.(check int) "no retransmissions" 0 m.Metrics.faults.Metrics.retransmissions;
  Alcotest.(check bool) "no recovery time" true
    (m.Metrics.faults.Metrics.time_to_recovery_s = None)

let test_loss_window_recovers () =
  let p =
    Params.with_nemesis
      (Nemesis.loss_window ~from_:(Sim.ms 300.0) ~until:(Sim.ms 500.0) 0.05)
      faulty
  in
  let m = Cluster.run p in
  Alcotest.(check bool) "messages were dropped" true (m.Metrics.faults.Metrics.msgs_dropped > 0);
  Alcotest.(check bool) "throughput survives 5% loss window" true
    (m.Metrics.throughput_tps > 0.0)

(* ---- qcheck: safety under random fault schedules -------------------------- *)

(* Random schedules (crashes, partitions, loss/duplication windows, jitter)
   come from the shared generator in {!Testkit.gen_schedule}. *)
let arb_schedule = Testkit.arb_schedule

let prop_safety_under_faults =
  QCheck.Test.make ~name:"pbft: safety under random fault schedules" ~count:200
    (QCheck.pair arb_schedule (QCheck.int_bound 10_000))
    (fun (nemesis, seed) ->
      let p =
        faulty
        |> Params.with_clients 150
        |> Params.with_batch_size 10
        |> Params.with_nemesis nemesis
        |> Params.with_seed (Int64.of_int (seed + 7))
        |> Params.with_client_timeout (Sim.ms 30.0)
        |> Params.with_view_timeout (Sim.ms 25.0)
      in
      let c = Cluster.create p in
      Cluster.start c;
      Sim.run ~until:(Sim.ms 700.0) (Cluster.sim c);
      match Cluster.check_safety c with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

let () =
  Alcotest.run "faults"
    [
      ( "nemesis",
        [
          Alcotest.test_case "primary crash: view change + recovery" `Quick
            test_primary_crash_recovers;
          Alcotest.test_case "primary crash: completions resume" `Quick
            test_primary_crash_throughput_resumes;
          Alcotest.test_case "exactly-once under duplication" `Quick test_exactly_once_accounting;
          Alcotest.test_case "healthy run reports no faults" `Quick
            test_healthy_run_reports_no_faults;
          Alcotest.test_case "loss window" `Quick test_loss_window_recovers;
        ] );
      ("safety", [ qtest prop_safety_under_faults ]);
    ]

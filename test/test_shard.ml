(* Sharded scale-out tests.

   The seam has three load-bearing claims, each pinned here:

   - the deterministic key map and the open-loop population model are
     pure functions (determinism, bounds, balance, exact splits);
   - the 2PC-over-BFT engine is equivalent to a sequential oracle: under
     randomly interleaved schedules the committed writes land atomically,
     locks never leak, and accounting balances;
   - the deployment keeps consensus safety with byzantine attackers
     active in EVERY shard (the same nemesis schedule runs in the
     coordinator and the participant group of every cross-shard
     transaction), and at S = 1 it is bit-identical to the classic
     single-cluster run.

   Plus the structured-config redesign: the Spec axis table round-trips,
   validation catches bad shard shapes, and the deprecated Compat shim
   still builds what it used to. *)

module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Sim = Rdb_des.Sim
module Rng = Rdb_des.Rng
module Stats = Rdb_des.Stats
module Topology = Rdb_net.Topology
module Open_loop = Rdb_workload.Open_loop
module Stage_name = Rdb_obs.Stage_name
module Key_map = Rdb_shard.Key_map
module Two_pc = Rdb_shard.Two_pc
module Deployment = Rdb_shard.Deployment

let qtest p = QCheck_alcotest.to_alcotest p

(* ---- key map --------------------------------------------------------------- *)

let test_key_map_deterministic () =
  for key = -50 to 5_000 do
    let s = Key_map.shard_of_key ~shards:8 key in
    Alcotest.(check int) "same key, same shard" s (Key_map.shard_of_key ~shards:8 key);
    Alcotest.(check bool) "in range" true (s >= 0 && s < 8)
  done;
  Alcotest.(check int) "one shard is the identity" 0 (Key_map.shard_of_key ~shards:1 123);
  Alcotest.check_raises "no shards" (Invalid_argument "Key_map: shards must be >= 1")
    (fun () -> ignore (Key_map.shard_of_key ~shards:0 1))

let test_key_map_balanced () =
  let shards = 4 and records = 4096 in
  let total = ref 0 in
  for s = 0 to shards - 1 do
    let owned = Key_map.owned ~shards ~shard:s ~records in
    total := !total + owned;
    (* hashing spreads the keyspace: every shard within 25% of the even share *)
    let share = float_of_int owned /. (float_of_int records /. float_of_int shards) in
    if share < 0.75 || share > 1.25 then
      Alcotest.failf "shard %d owns %d of %d records (share %.2f)" s owned records share
  done;
  Alcotest.(check int) "every record owned exactly once" records !total

(* ---- open-loop population --------------------------------------------------- *)

let test_open_loop_split () =
  let pop = Open_loop.create ~population:1_000 ~shards:4 ~cross_fraction:0.0 () in
  Alcotest.(check (array int)) "uniform split is exact" [| 250; 250; 250; 250 |]
    (Open_loop.per_shard pop);
  let pop1 = Open_loop.create ~population:777 ~shards:1 ~cross_fraction:0.0 () in
  Alcotest.(check (array int)) "one shard gets everyone" [| 777 |] (Open_loop.per_shard pop1);
  let skewed = Open_loop.create ~affinity_theta:0.9 ~population:1_000 ~shards:4 ~cross_fraction:0.0 () in
  let per = Open_loop.per_shard skewed in
  Alcotest.(check int) "skewed split conserves the population" 1_000
    (Array.fold_left ( + ) 0 per);
  Alcotest.(check bool) "skew favors the low shards" true (per.(0) > per.(3))

let test_open_loop_is_cross () =
  (* one shard: never cross, and the draw must not consume the rng (that
     would perturb the bit-identical S = 1 replay) *)
  let pop1 = Open_loop.create ~population:10 ~shards:1 ~cross_fraction:0.0 () in
  let a = Rng.create 42L and b = Rng.create 42L in
  Alcotest.(check bool) "never cross with one shard" false (Open_loop.is_cross pop1 a);
  Alcotest.(check int) "rng untouched" (Rng.int b 1_000_000) (Rng.int a 1_000_000);
  let pop = Open_loop.create ~population:10 ~shards:4 ~cross_fraction:0.25 () in
  let rng = Rng.create 7L in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Open_loop.is_cross pop rng then incr hits
  done;
  Alcotest.(check bool) "cross fraction respected"
    true
    (abs (!hits - 2_500) < 250);
  let prng = Rng.create 9L in
  for _ = 1 to 1_000 do
    let home = Rng.int prng 4 in
    let part = Open_loop.pick_participant pop prng ~home in
    if part = home || part < 0 || part >= 4 then
      Alcotest.failf "participant %d invalid for home %d" part home
  done

(* ---- stage qualification ---------------------------------------------------- *)

let test_stage_qualify () =
  Alcotest.(check string) "qualify" "s2/worker-3" (Stage_name.qualify ~shard:2 "worker-3");
  Alcotest.(check (option int)) "shard_of" (Some 2) (Stage_name.shard_of "s2/worker-3");
  Alcotest.(check (option int)) "unqualified has no shard" None (Stage_name.shard_of "worker-3");
  Alcotest.(check string) "unqualify round-trips" "worker-3"
    (Stage_name.unqualified (Stage_name.qualify ~shard:11 "worker-3"));
  Alcotest.(check string) "unqualified passes through" "execute-1"
    (Stage_name.unqualified "execute-1")

(* ---- topology ---------------------------------------------------------------- *)

let test_topology () =
  let flat = Topology.flat ~shards:4 in
  Alcotest.(check int) "flat latency" 0 (Topology.shard_latency flat 0 3);
  Alcotest.(check int) "flat lookahead" 0 (Topology.min_inter_shard_latency flat);
  let ring = Topology.ring ~regions:3 ~shards:6 () in
  Alcotest.(check int) "round-robin placement" 1 (Topology.shard_region ring 4);
  Alcotest.(check int) "same region, free" 0 (Topology.shard_latency ring 0 3);
  Alcotest.(check bool) "different regions pay propagation" true
    (Topology.shard_latency ring 0 1 > 0);
  Alcotest.(check bool) "lookahead positive" true (Topology.min_inter_shard_latency ring > 0);
  Alcotest.(check bool) "lookahead is the minimum" true
    (Topology.min_inter_shard_latency ring <= Topology.shard_latency ring 0 1)

(* ---- 2PC engine: units ------------------------------------------------------- *)

let test_two_pc_commit () =
  let t = Two_pc.create () in
  Two_pc.start t ~id:1 ~coordinator:0 ~participant:1 ~keys:[| (0, 5); (1, 9) |];
  Alcotest.(check (option int)) "coordinator key locked" (Some 1)
    (Two_pc.locked_by t ~shard:0 ~record:5);
  Alcotest.(check (option int)) "participant key not yet locked" None
    (Two_pc.locked_by t ~shard:1 ~record:9);
  Alcotest.(check bool) "vote commits" true (Two_pc.vote t ~id:1 = Two_pc.Commit);
  Alcotest.(check (option int)) "participant key locked after vote" (Some 1)
    (Two_pc.locked_by t ~shard:1 ~record:9);
  Alcotest.(check bool) "decision commits" true (Two_pc.decide t ~id:1 = Two_pc.Commit);
  Alcotest.(check (option int)) "locks released" None (Two_pc.locked_by t ~shard:0 ~record:5);
  let s = Two_pc.stats t in
  Alcotest.(check int) "committed" 1 s.Two_pc.committed;
  Alcotest.(check int) "nothing in flight" 0 s.Two_pc.in_flight

let test_two_pc_conflict_aborts () =
  let t = Two_pc.create () in
  Two_pc.start t ~id:1 ~coordinator:0 ~participant:1 ~keys:[| (0, 5); (1, 9) |];
  (* id 2 wants id 1's coordinator-side record *)
  Two_pc.start t ~id:2 ~coordinator:0 ~participant:2 ~keys:[| (0, 5); (2, 3) |];
  Alcotest.(check bool) "conflicting txn aborts" true (Two_pc.vote t ~id:2 = Two_pc.Abort);
  Alcotest.(check (option int)) "loser holds nothing" (Some 1)
    (Two_pc.locked_by t ~shard:0 ~record:5);
  Alcotest.(check bool) "winner still commits" true (Two_pc.vote t ~id:1 = Two_pc.Commit);
  Alcotest.(check bool) "winner decides commit" true (Two_pc.decide t ~id:1 = Two_pc.Commit);
  Alcotest.(check bool) "loser decides abort" true (Two_pc.decide t ~id:2 = Two_pc.Abort);
  let s = Two_pc.stats t in
  Alcotest.(check int) "one commit" 1 s.Two_pc.committed;
  Alcotest.(check int) "one abort" 1 s.Two_pc.aborted;
  Alcotest.(check bool) "conflict counted" true (s.Two_pc.lock_conflicts >= 1)

let test_two_pc_validates () =
  let t = Two_pc.create () in
  Alcotest.check_raises "coordinator = participant"
    (Invalid_argument "Two_pc: coordinator and participant must differ") (fun () ->
      Two_pc.start t ~id:1 ~coordinator:0 ~participant:0 ~keys:[||]);
  Alcotest.check_raises "foreign key"
    (Invalid_argument "Two_pc: key on a shard outside the transaction's footprint") (fun () ->
      Two_pc.start t ~id:1 ~coordinator:0 ~participant:1 ~keys:[| (2, 0) |]);
  Two_pc.start t ~id:1 ~coordinator:0 ~participant:1 ~keys:[| (0, 1) |];
  Alcotest.check_raises "duplicate id" (Invalid_argument "Two_pc: duplicate transaction 1")
    (fun () -> Two_pc.start t ~id:1 ~coordinator:0 ~participant:1 ~keys:[||])

(* ---- 2PC engine: sequential-oracle equivalence ------------------------------- *)

(* Random interleavings of cross-shard transactions over a tiny keyspace.
   Committed transactions apply their writes both to per-shard stores and
   to one flat oracle store, in decide order; equivalence plus the lock
   invariants make 2PC atomic and serializable:

   - at the moment a transaction is decided Commit it holds every one of
     its keys (so no committed write ever raced another);
   - after the schedule drains, no lock is held and the per-shard stores
     merged equal the oracle exactly;
   - started = committed + aborted, nothing in flight. *)
let prop_two_pc_oracle =
  QCheck.Test.make ~name:"2pc: interleaved schedules match the sequential oracle" ~count:200
    QCheck.(int_bound 100_000)
    (fun seed ->
      let shards = 3 and records = 6 in
      let rng = Rng.create (Int64.of_int (seed + 7)) in
      let t = Two_pc.create () in
      let sharded = Array.init shards (fun _ -> Hashtbl.create 16) in
      let oracle = Hashtbl.create 16 in
      let in_flight = ref [] in
      let next_id = ref 0 in
      let keys_of ~coordinator ~participant =
        let side shard =
          List.init (1 + Rng.int rng 2) (fun _ -> (shard, Rng.int rng records))
        in
        Array.of_list (side coordinator @ side participant)
      in
      let footprints = Hashtbl.create 16 in
      let start () =
        let id = !next_id in
        incr next_id;
        let coordinator = Rng.int rng shards in
        let participant = Open_loop.pick_participant
            (Open_loop.create ~population:1 ~shards ~cross_fraction:0.5 ())
            rng ~home:coordinator
        in
        let keys = keys_of ~coordinator ~participant in
        Hashtbl.replace footprints id keys;
        Two_pc.start t ~id ~coordinator ~participant ~keys;
        in_flight := (id, `Started) :: !in_flight
      in
      let advance (id, stage) =
        match stage with
        | `Started ->
          ignore (Two_pc.vote t ~id);
          in_flight := (id, `Voted) :: List.remove_assoc id !in_flight
        | `Voted ->
          let keys = Hashtbl.find footprints id in
          (if Two_pc.decision_of t ~id = Two_pc.Commit then
             Array.iter
               (fun (s, r) ->
                 (* atomicity: a committing txn owns every key it writes *)
                 if Two_pc.locked_by t ~shard:s ~record:r <> Some id then
                   QCheck.Test.fail_reportf "txn %d commits without holding (%d,%d)" id s r)
               keys);
          (match Two_pc.decide t ~id with
          | Two_pc.Commit ->
            Array.iter (fun (s, r) -> Hashtbl.replace sharded.(s) r id) keys;
            Array.iter (fun (s, r) -> Hashtbl.replace oracle (s, r) id) keys
          | Two_pc.Abort -> ());
          in_flight := List.remove_assoc id !in_flight
      in
      for _ = 1 to 120 do
        match !in_flight with
        | [] -> start ()
        | _ when Rng.int rng 3 = 0 -> start ()
        | l ->
          let picked = List.nth l (Rng.int rng (List.length l)) in
          advance (fst picked, List.assoc (fst picked) l)
      done;
      (* drain: everything in flight votes then decides *)
      while !in_flight <> [] do
        let l = List.sort compare !in_flight in
        advance (List.hd l)
      done;
      for s = 0 to shards - 1 do
        for r = 0 to records - 1 do
          if Two_pc.locked_by t ~shard:s ~record:r <> None then
            QCheck.Test.fail_reportf "lock leaked on (%d,%d)" s r;
          let shard_v = Hashtbl.find_opt sharded.(s) r in
          let oracle_v = Hashtbl.find_opt oracle (s, r) in
          if shard_v <> oracle_v then
            QCheck.Test.fail_reportf "divergence at (%d,%d)" s r
        done
      done;
      let st = Two_pc.stats t in
      st.Two_pc.started = st.Two_pc.committed + st.Two_pc.aborted
      && st.Two_pc.in_flight = 0)

(* ---- deployment -------------------------------------------------------------- *)

let tiny =
  Params.default
  |> Params.with_n 4
  |> Params.with_clients 400
  |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
  |> Params.with_batch_size 20
  |> Params.map_consensus (fun c ->
         { c with Params.Consensus.max_inflight_batches = 16; checkpoint_txns = 400 })
  |> Params.with_client_timeout (Sim.ms 40.0)
  |> Params.with_view_timeout (Sim.ms 30.0)
  |> Params.with_windows ~warmup:(Sim.seconds 0.1) ~measure:(Sim.seconds 0.4)

let test_s1_bit_identical () =
  let d = Deployment.run tiny in
  let m = Cluster.run tiny in
  let a = d.Deployment.aggregate in
  Alcotest.(check int) "one shard" 1 d.Deployment.shards;
  Alcotest.(check int) "no cross-shard txns" 0 d.Deployment.cross.Two_pc.started;
  Alcotest.(check int) "completed" m.Metrics.completed_txns a.Metrics.completed_txns;
  Alcotest.(check (float 0.0)) "throughput" m.Metrics.throughput_tps a.Metrics.throughput_tps;
  Alcotest.(check int) "messages" m.Metrics.messages_sent a.Metrics.messages_sent;
  Alcotest.(check int) "bytes" m.Metrics.bytes_sent a.Metrics.bytes_sent;
  Alcotest.(check int) "blocks" m.Metrics.ledger_blocks a.Metrics.ledger_blocks;
  Alcotest.(check int) "latency samples"
    (Stats.count m.Metrics.latency)
    (Stats.count a.Metrics.latency);
  Alcotest.(check (float 0.0)) "p99"
    (Stats.percentile m.Metrics.latency 99.0)
    (Stats.percentile a.Metrics.latency 99.0)

let test_cross_shard_progress () =
  let p = tiny |> Params.with_shards 2 |> Params.with_cross_shard_fraction 0.2 in
  let r = Deployment.run p in
  Alcotest.(check bool) "safe" true (r.Deployment.safety = Ok ());
  Alcotest.(check int) "two shards reported" 2 (Array.length r.Deployment.per_shard);
  Alcotest.(check bool) "throughput positive" true
    (r.Deployment.aggregate.Metrics.throughput_tps > 1000.0);
  let c = r.Deployment.cross in
  Alcotest.(check bool) "cross-shard txns committed" true (c.Two_pc.committed > 0);
  Alcotest.(check int) "accounting balances" c.Two_pc.started
    (c.Two_pc.committed + c.Two_pc.aborted + c.Two_pc.in_flight);
  (* shard-qualified observability: the aggregate names each shard's stages *)
  let qualified =
    List.exists
      (fun (rr : Metrics.replica_report) ->
        List.exists
          (fun (st : Metrics.stage_saturation) -> Stage_name.shard_of st.Metrics.stage <> None)
          rr.Metrics.stages)
      r.Deployment.aggregate.Metrics.replicas
  in
  Alcotest.(check bool) "stages carry shard prefixes" true qualified

let test_regions_topology_run () =
  let topo = Topology.ring ~regions:2 ~shards:2 () in
  let p =
    tiny
    |> Params.with_shards 2
    |> Params.with_cross_shard_fraction 0.1
    |> Params.map_topology (fun t -> { t with Params.Topology.regions = Some topo })
  in
  let r = Deployment.run p in
  Alcotest.(check bool) "safe across regions" true (r.Deployment.safety = Ok ());
  Alcotest.(check bool) "commits across regions" true (r.Deployment.cross.Two_pc.committed > 0)

(* Byzantine attackers in every shard: the same nemesis schedule runs in
   both groups, so every cross-shard transaction has a liar in its
   coordinator shard AND its participant shard. *)
let prop_sharded_byzantine_safety =
  QCheck.Test.make ~name:"sharded safety: byzantine attackers in every shard" ~count:200
    (QCheck.pair Testkit.arb_byzantine_schedule (QCheck.int_bound 10_000))
    (fun (nemesis, seed) ->
      let p =
        tiny
        |> Params.with_clients 100
        |> Params.with_batch_size 10
        |> Params.with_shards 2
        |> Params.with_cross_shard_fraction 0.3
        |> Params.with_client_timeout (Sim.ms 30.0)
        |> Params.with_view_timeout (Sim.ms 25.0)
        |> Params.with_windows ~warmup:(Sim.seconds 0.1) ~measure:(Sim.seconds 0.4)
        |> Params.with_nemesis nemesis
        |> Params.with_seed (Int64.of_int (seed + 17))
      in
      let r = Deployment.run p in
      (match r.Deployment.safety with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      let c = r.Deployment.cross in
      c.Two_pc.started = c.Two_pc.committed + c.Two_pc.aborted + c.Two_pc.in_flight)

(* ---- structured-config redesign ---------------------------------------------- *)

let test_spec_round_trip () =
  (* every axis entry must round-trip set -> get on its own spelling *)
  match
    Params.Spec.apply
      [ ("shards", "4"); ("cross_shard", "0.25"); ("clients", "1234"); ("protocol", "hotstuff") ]
      Params.default
  with
  | Error e -> Alcotest.failf "spec apply failed: %s" e
  | Ok p ->
    Alcotest.(check int) "shards set" 4 p.Params.shards;
    Alcotest.(check (float 1e-9)) "cross fraction set" 0.25 p.Params.cross_shard_fraction;
    Alcotest.(check int) "clients set" 1234 p.Params.clients;
    let get k =
      match Params.Spec.find k with
      | Some e -> e.Params.Spec.get p
      | None -> Alcotest.failf "axis %s missing from spec" k
    in
    Alcotest.(check string) "shards reads back" "4" (get "shards");
    Alcotest.(check string) "cross_shard reads back" "0.25" (get "cross_shard");
    Alcotest.(check string) "protocol reads back" "hotstuff" (get "protocol");
    (match Params.Spec.apply [ ("no_such_axis", "1") ] Params.default with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "unknown axis accepted")

let test_validate_shard_shapes () =
  Alcotest.check_raises "zero shards" (Invalid_argument "Params: shards must be >= 1")
    (fun () -> Params.validate (Params.with_shards 0 tiny));
  Alcotest.check_raises "too many shards" (Invalid_argument "Params: shards must be <= 64")
    (fun () -> Params.validate (Params.with_shards 65 tiny));
  Alcotest.check_raises "cross fraction out of range"
    (Invalid_argument "Params: cross_shard_fraction must be in [0, 1]") (fun () ->
      Params.validate (Params.with_cross_shard_fraction 1.5 (Params.with_shards 2 tiny)));
  Alcotest.check_raises "cross-shard traffic needs shards"
    (Invalid_argument "Params: cross_shard_fraction needs shards >= 2") (fun () ->
      Params.validate (Params.with_cross_shard_fraction 0.1 tiny));
  Alcotest.check_raises "topology too small"
    (Invalid_argument "Params: regions topology places fewer shards than configured")
    (fun () ->
      Params.validate
        (tiny
        |> Params.with_shards 4
        |> Params.map_topology (fun t ->
               { t with Params.Topology.regions = Some (Topology.flat ~shards:2) })))

(* The deprecated flat constructor still assembles the same configuration
   the structured API does — out-of-tree callers keep working for one
   release. *)
module Compat_shim = struct
  [@@@ocaml.warning "-3"]

  let test () =
    let old_style = Params.Compat.make ~n:8 ~clients:500 ~batch_size:50 ~shards:2 () in
    let new_style =
      Params.default
      |> Params.with_n 8
      |> Params.with_clients 500
      |> Params.with_batch_size 50
      |> Params.with_shards 2
    in
    Alcotest.(check bool) "compat shim equals the structured build" true
      (old_style = new_style)
end

let () =
  Alcotest.run "shard"
    [
      ( "key-map",
        [
          Alcotest.test_case "deterministic and total" `Quick test_key_map_deterministic;
          Alcotest.test_case "balanced over the keyspace" `Quick test_key_map_balanced;
        ] );
      ( "population",
        [
          Alcotest.test_case "apportionment" `Quick test_open_loop_split;
          Alcotest.test_case "cross-shard draws" `Quick test_open_loop_is_cross;
        ] );
      ( "observability",
        [ Alcotest.test_case "stage shard qualification" `Quick test_stage_qualify ] );
      ( "topology",
        [ Alcotest.test_case "placement, latency, lookahead" `Quick test_topology ] );
      ( "two-pc",
        [
          Alcotest.test_case "commit path" `Quick test_two_pc_commit;
          Alcotest.test_case "conflict aborts" `Quick test_two_pc_conflict_aborts;
          Alcotest.test_case "validation" `Quick test_two_pc_validates;
          qtest prop_two_pc_oracle;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "S=1 bit-identical to the classic cluster" `Quick
            test_s1_bit_identical;
          Alcotest.test_case "cross-shard commits make progress" `Quick
            test_cross_shard_progress;
          Alcotest.test_case "regions topology" `Quick test_regions_topology_run;
          qtest prop_sharded_byzantine_safety;
        ] );
      ( "config",
        [
          Alcotest.test_case "spec axis table round-trips" `Quick test_spec_round_trip;
          Alcotest.test_case "shard shapes validated" `Quick test_validate_shard_shapes;
          Alcotest.test_case "deprecated compat shim" `Quick Compat_shim.test;
        ] );
    ]

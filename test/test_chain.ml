(* Ledger tests: block hashing, chain integrity under both linkage modes,
   pruning at checkpoints, tamper detection. *)

open Rdb_chain

let check = Alcotest.check

let mk_block ~seq ~prev =
  {
    Block.seq;
    view = 0;
    digest = Rdb_crypto.Sha256.digest (Printf.sprintf "batch-%d" seq);
    txn_count = 100;
    link = Block.Prev_hash (Block.hash prev);
  }

let mk_cert_block ~seq =
  {
    Block.seq;
    view = 0;
    digest = Rdb_crypto.Sha256.digest (Printf.sprintf "batch-%d" seq);
    txn_count = 100;
    link = Block.Certificate (List.init 11 (fun i -> (i, Printf.sprintf "share-%d-%d" i seq)));
  }

let test_genesis () =
  let g = Block.genesis ~primary_id:0 in
  check Alcotest.int "seq 0" 0 g.Block.seq;
  check Alcotest.int "view 0" 0 g.Block.view;
  (* Different initial primaries give different genesis digests (§2.2). *)
  let g1 = Block.genesis ~primary_id:1 in
  Alcotest.(check bool) "identity-dependent" false (String.equal g.Block.digest g1.Block.digest)

let test_block_hash_changes_with_content () =
  let g = Block.genesis ~primary_id:0 in
  let b = mk_block ~seq:1 ~prev:g in
  let b' = { b with Block.txn_count = 99 } in
  Alcotest.(check bool) "hash is content-sensitive" false
    (String.equal (Block.hash b) (Block.hash b'));
  check Alcotest.string "hash deterministic" (Block.hash b) (Block.hash b)

let test_block_serialize_distinguishes_links () =
  let b = mk_cert_block ~seq:1 in
  let b' = { b with Block.link = Block.Prev_hash (String.make 32 'h') } in
  Alcotest.(check bool) "linkage serialized" false
    (String.equal (Block.serialize b) (Block.serialize b'))

let test_ledger_append_and_find () =
  let l = Ledger.create ~primary_id:0 in
  check Alcotest.int "next seq" 1 (Ledger.next_seq l);
  let b1 = mk_block ~seq:1 ~prev:(Ledger.last l) in
  Ledger.append l b1;
  let b2 = mk_block ~seq:2 ~prev:b1 in
  Ledger.append l b2;
  check Alcotest.int "length includes genesis" 3 (Ledger.length l);
  check Alcotest.int "last" 2 (Ledger.last l).Block.seq;
  Alcotest.(check bool) "find hit" true (Ledger.find l 1 <> None);
  Alcotest.(check bool) "find miss" true (Ledger.find l 99 = None)

let test_ledger_rejects_gaps () =
  let l = Ledger.create ~primary_id:0 in
  let b5 = { (mk_block ~seq:5 ~prev:(Ledger.last l)) with Block.seq = 5 } in
  Alcotest.check_raises "gap rejected" (Invalid_argument "Ledger.append: expected seq 1, got 5")
    (fun () -> Ledger.append l b5)

let test_ledger_verify_hash_chain () =
  let l = Ledger.create ~primary_id:0 in
  let rec build prev seq =
    if seq <= 20 then begin
      let b = mk_block ~seq ~prev in
      Ledger.append l b;
      build b (seq + 1)
    end
  in
  build (Ledger.last l) 1;
  (match Ledger.verify l ~check_certificate:(fun ~seq:_ ~digest:_ _ -> true) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_ledger_verify_detects_bad_link () =
  let l = Ledger.create ~primary_id:0 in
  let g = Ledger.last l in
  let b1 = mk_block ~seq:1 ~prev:g in
  Ledger.append l b1;
  (* Forge block 2 linking to a wrong predecessor. *)
  let forged = { (mk_block ~seq:2 ~prev:g) with Block.seq = 2 } in
  Ledger.append l forged;
  match Ledger.verify l ~check_certificate:(fun ~seq:_ ~digest:_ _ -> true) with
  | Ok () -> Alcotest.fail "forgery not detected"
  | Error _ -> ()

let test_ledger_certificate_mode () =
  let l = Ledger.create ~primary_id:0 in
  Ledger.append l (mk_cert_block ~seq:1);
  Ledger.append l (mk_cert_block ~seq:2);
  let checked = ref 0 in
  (match
     Ledger.verify l ~check_certificate:(fun ~seq:_ ~digest:_ shares ->
         incr checked;
         List.length shares >= 11)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "certificates delegated" 2 !checked;
  (* A failing certificate check is reported. *)
  match Ledger.verify l ~check_certificate:(fun ~seq ~digest:_ _ -> seq <> 2) with
  | Ok () -> Alcotest.fail "bad certificate not detected"
  | Error _ -> ()

let test_ledger_prune () =
  let l = Ledger.create ~primary_id:0 in
  for seq = 1 to 10 do
    Ledger.append l (mk_cert_block ~seq)
  done;
  let digest_before = Ledger.cumulative_digest l in
  let dropped = Ledger.prune_below l 6 in
  check Alcotest.int "dropped genesis + 1..5" 6 dropped;
  Alcotest.(check bool) "pruned not found" true (Ledger.find l 3 = None);
  Alcotest.(check bool) "retained found" true (Ledger.find l 7 <> None);
  check Alcotest.int "length unchanged by pruning" 11 (Ledger.length l);
  check Alcotest.string "cumulative digest survives pruning" digest_before (Ledger.cumulative_digest l);
  (* Chain still verifies from the pruning point. *)
  match Ledger.verify l ~check_certificate:(fun ~seq:_ ~digest:_ _ -> true) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_cumulative_digest_sensitive () =
  let build seqs =
    let l = Ledger.create ~primary_id:0 in
    List.iter (fun seq -> Ledger.append l (mk_cert_block ~seq)) seqs;
    Ledger.cumulative_digest l
  in
  Alcotest.(check bool) "depends on content" false
    (String.equal (build [ 1; 2; 3 ]) (build [ 1; 2 ]));
  check Alcotest.string "deterministic" (build [ 1; 2; 3 ]) (build [ 1; 2; 3 ])

(* ---- block codec --------------------------------------------------------- *)

let test_block_bytes_roundtrip () =
  let roundtrip b =
    match Block.of_bytes (Block.to_bytes b) with
    | Some b' -> check Alcotest.bool "roundtrip equal" true (b = b')
    | None -> Alcotest.fail "decode failed"
  in
  roundtrip (Block.genesis ~primary_id:3);
  roundtrip (mk_cert_block ~seq:7);
  roundtrip (mk_block ~seq:1 ~prev:(Block.genesis ~primary_id:0));
  roundtrip { (mk_cert_block ~seq:9) with Block.digest = "\x00\xff\x01binary" };
  (* Malformed inputs decode to None, never raise. *)
  check Alcotest.bool "empty" true (Block.of_bytes "" = None);
  let good = Block.to_bytes (mk_cert_block ~seq:2) in
  check Alcotest.bool "truncated" true
    (Block.of_bytes (String.sub good 0 (String.length good - 3)) = None);
  check Alcotest.bool "trailing garbage" true (Block.of_bytes (good ^ "x") = None)

(* ---- block store (durable WAL + B-tree) ---------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdb_chain_test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_block_store_crash_replay () =
  with_temp_dir (fun dir ->
      let g = Block.genesis ~primary_id:0 in
      let s = Block_store.open_dir ~dir ~genesis:g in
      for seq = 1 to 4 do
        Block_store.append s (mk_cert_block ~seq)
      done;
      let digest_at_4 = Block_store.cumulative_digest s in
      Block_store.append s (mk_cert_block ~seq:5);
      Block_store.append s (mk_cert_block ~seq:6);
      (* The checkpoint persists the resume point as of the *stable*
         sequence even though the tip has moved past it: replicas agree at
         checkpoints, not at their ragged in-flight tips. *)
      Block_store.checkpoint s ~seq:4 ~state_digest:"state-4";
      (* Crash: the process dies without close.  Leave a torn WAL tail on
         top of the flushed prefix, as an interrupted append would. *)
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 (Filename.concat dir "blocks.wal")
      in
      output_string oc "\x00\x00\x00\x40torn-record";
      close_out oc;
      let s' = Block_store.open_dir ~dir ~genesis:g in
      check Alcotest.int "stable prefix recovered" 5 (Block_store.length s');
      check Alcotest.int "next_seq resumes at the stable point" 5 (Block_store.next_seq s');
      check Alcotest.int "checkpoint survives" 4 (Block_store.last_stable s');
      check Alcotest.string "state digest survives" "state-4" (Block_store.state_digest s');
      check Alcotest.string "cumulative digest matches the stable prefix" digest_at_4
        (Block_store.cumulative_digest s');
      (* Appending continues cleanly past the truncated tail; close persists
         the full tip (a clean shutdown is one agreed moment). *)
      Block_store.append s' (mk_cert_block ~seq:5);
      Block_store.append s' (mk_cert_block ~seq:6);
      Block_store.append s' (mk_cert_block ~seq:7);
      Block_store.close s';
      let s'' = Block_store.open_dir ~dir ~genesis:g in
      check Alcotest.int "clean shutdown persists the tip" 8 (Block_store.next_seq s'');
      Block_store.close s'')

let test_block_store_unflushed_lost_by_design () =
  with_temp_dir (fun dir ->
      let g = Block.genesis ~primary_id:0 in
      let s = Block_store.open_dir ~dir ~genesis:g in
      for seq = 1 to 3 do
        Block_store.append s (mk_cert_block ~seq)
      done;
      Block_store.flush s;
      (* These two never reach the OS: the crash loses them, and the
         state-transfer protocol is what re-acquires them from a peer. *)
      Block_store.append s (mk_cert_block ~seq:4);
      Block_store.append s (mk_cert_block ~seq:5);
      let s' = Block_store.open_dir ~dir ~genesis:g in
      check Alcotest.int "flushed prefix only" 4 (Block_store.next_seq s');
      Block_store.close s')

(* ---- pluggable ledger backends ------------------------------------------- *)

(* The Mem and Durable backends must be observably identical through the
   Ledger interface — callers (cluster, local runtime) switch between them
   with a flag and expect the same chain. *)
let test_ledger_backend_equivalence () =
  with_temp_dir (fun dir ->
      let mem = Ledger.create ~primary_id:0 in
      let dur = Ledger.open_durable ~dir ~primary_id:0 in
      check Alcotest.bool "is_durable" true
        ((not (Ledger.is_durable mem)) && Ledger.is_durable dur);
      let both f =
        f mem;
        f dur
      in
      for seq = 1 to 12 do
        both (fun l -> Ledger.append l (mk_cert_block ~seq))
      done;
      both (fun l -> Ledger.checkpoint l ~seq:8 ~state_digest:"s8");
      both (fun l -> ignore (Ledger.prune_below l 8));
      check Alcotest.int "next_seq" (Ledger.next_seq mem) (Ledger.next_seq dur);
      check Alcotest.int "length" (Ledger.length mem) (Ledger.length dur);
      check Alcotest.string "cumulative digest" (Ledger.cumulative_digest mem)
        (Ledger.cumulative_digest dur);
      check Alcotest.bool "retained segments equal" true
        (Ledger.retained mem = Ledger.retained dur);
      check Alcotest.bool "find pruned" true (Ledger.find dur 3 = None);
      check Alcotest.bool "find retained" true (Ledger.find dur 9 <> None);
      (match Ledger.verify dur ~check_certificate:(fun ~seq:_ ~digest:_ _ -> true) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Ledger.close dur)

let test_ledger_durable_reopen () =
  with_temp_dir (fun dir ->
      let l = Ledger.open_durable ~dir ~primary_id:0 in
      for seq = 1 to 5 do
        Ledger.append l (mk_cert_block ~seq)
      done;
      Ledger.checkpoint l ~seq:4 ~state_digest:"s4";
      let digest = Ledger.cumulative_digest l in
      Ledger.close l;
      let l' = Ledger.open_durable ~dir ~primary_id:0 in
      check Alcotest.int "tip survives close" 6 (Ledger.next_seq l');
      check Alcotest.string "digest survives close" digest (Ledger.cumulative_digest l');
      Ledger.append l' (mk_cert_block ~seq:6);
      check Alcotest.int "append resumes" 7 (Ledger.next_seq l');
      Ledger.close l')

(* ---- merkle ------------------------------------------------------------- *)

let test_merkle_single_leaf () =
  let t = Merkle.build [ "only" ] in
  check Alcotest.int "leaf count" 1 (Merkle.leaf_count t);
  let p = Merkle.prove t 0 in
  check Alcotest.int "empty proof for root leaf" 0 (Merkle.proof_length p);
  Alcotest.(check bool) "verifies" true (Merkle.verify ~root:(Merkle.root t) ~leaf:"only" ~index:0 p)

let test_merkle_proofs_all_leaves () =
  List.iter
    (fun n ->
      let leaves = List.init n (fun i -> Printf.sprintf "txn-%d" i) in
      let t = Merkle.build leaves in
      List.iteri
        (fun i leaf ->
          let p = Merkle.prove t i in
          if not (Merkle.verify ~root:(Merkle.root t) ~leaf ~index:i p) then
            Alcotest.failf "n=%d leaf %d failed to verify" n i)
        leaves)
    [ 1; 2; 3; 4; 5; 7; 8; 16; 33 ]

let test_merkle_rejects_forgery () =
  let leaves = List.init 8 (fun i -> Printf.sprintf "txn-%d" i) in
  let t = Merkle.build leaves in
  let p = Merkle.prove t 3 in
  Alcotest.(check bool) "wrong leaf" false
    (Merkle.verify ~root:(Merkle.root t) ~leaf:"txn-4" ~index:3 p);
  Alcotest.(check bool) "wrong index" false
    (Merkle.verify ~root:(Merkle.root t) ~leaf:"txn-3" ~index:4 p);
  Alcotest.(check bool) "wrong root" false
    (Merkle.verify ~root:(String.make 32 'x') ~leaf:"txn-3" ~index:3 p);
  (* A leaf value must not verify as an interior node (domain separation). *)
  let other = Merkle.build [ "a"; "b" ] in
  Alcotest.(check bool) "cross-tree proof" false
    (Merkle.verify ~root:(Merkle.root other) ~leaf:"txn-3" ~index:3 p)

let test_merkle_root_depends_on_order () =
  let r1 = Merkle.root (Merkle.build [ "a"; "b"; "c" ]) in
  let r2 = Merkle.root (Merkle.build [ "b"; "a"; "c" ]) in
  Alcotest.(check bool) "order-sensitive" false (String.equal r1 r2)

let test_merkle_proof_wire_roundtrip () =
  let t = Merkle.build (List.init 10 string_of_int) in
  let p = Merkle.prove t 7 in
  let p' = Merkle.proof_of_list (Merkle.proof_to_list p) in
  Alcotest.(check bool) "roundtripped proof verifies" true
    (Merkle.verify ~root:(Merkle.root t) ~leaf:"7" ~index:7 p')

let prop_merkle_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"merkle: every leaf of a random tree proves" ~count:100
       QCheck.(list_of_size Gen.(1 -- 40) (string_of_size Gen.(0 -- 20)))
       (fun leaves ->
         QCheck.assume (leaves <> []);
         let t = Merkle.build leaves in
         List.for_all
           (fun i -> Merkle.verify ~root:(Merkle.root t) ~leaf:(List.nth leaves i) ~index:i (Merkle.prove t i))
           (List.init (List.length leaves) (fun i -> i))))

let () =
  Alcotest.run "rdb_chain"
    [
      ( "block",
        [
          Alcotest.test_case "genesis" `Quick test_genesis;
          Alcotest.test_case "hash content-sensitive" `Quick test_block_hash_changes_with_content;
          Alcotest.test_case "serialize linkage" `Quick test_block_serialize_distinguishes_links;
          Alcotest.test_case "bytes codec roundtrip" `Quick test_block_bytes_roundtrip;
        ] );
      ( "block_store",
        [
          Alcotest.test_case "crash replay" `Quick test_block_store_crash_replay;
          Alcotest.test_case "unflushed lost by design" `Quick
            test_block_store_unflushed_lost_by_design;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "append and find" `Quick test_ledger_append_and_find;
          Alcotest.test_case "rejects gaps" `Quick test_ledger_rejects_gaps;
          Alcotest.test_case "verify hash chain" `Quick test_ledger_verify_hash_chain;
          Alcotest.test_case "detects forged link" `Quick test_ledger_verify_detects_bad_link;
          Alcotest.test_case "certificate linkage" `Quick test_ledger_certificate_mode;
          Alcotest.test_case "prune at checkpoint" `Quick test_ledger_prune;
          Alcotest.test_case "cumulative digest" `Quick test_cumulative_digest_sensitive;
          Alcotest.test_case "backend equivalence" `Quick test_ledger_backend_equivalence;
          Alcotest.test_case "durable reopen" `Quick test_ledger_durable_reopen;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
          Alcotest.test_case "proofs for all leaves" `Quick test_merkle_proofs_all_leaves;
          Alcotest.test_case "forgery rejected" `Quick test_merkle_rejects_forgery;
          Alcotest.test_case "order sensitivity" `Quick test_merkle_root_depends_on_order;
          Alcotest.test_case "proof wire roundtrip" `Quick test_merkle_proof_wire_roundtrip;
          prop_merkle_random;
        ] );
    ]

(* Hot-path performance pass tests: the bounded verify-sharing memo table,
   the buffer-pooled wire codec, the bench regression gate, and — the core
   claim — that caching changes *cost*, never *behavior*: with all
   cacheable crypto priced at zero, cached and uncached clusters produce
   identical metrics over random fault schedules, and with real prices the
   cached cluster is measurably faster while still safe. *)

module Vcache = Rdb_crypto.Verify_cache
module Cost = Rdb_crypto.Cost_model
module Codec = Rdb_consensus.Codec
module Msg = Rdb_consensus.Message
module Gate = Rdb_gate.Gate
module Rt = Rdb_core.Local_runtime
module Stats = Rdb_des.Stats
module Sim = Rdb_des.Sim
open Rdb_core

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

(* ---- the memo table ------------------------------------------------------- *)

let test_cache_counts () =
  let c = Vcache.create ~capacity:4 in
  check Alcotest.bool "cold miss" false (Vcache.mem c "a");
  Vcache.add c "a" 1;
  check Alcotest.(option int) "find after add" (Some 1) (Vcache.find c "a");
  check Alcotest.bool "warm hit" true (Vcache.mem c "a");
  check Alcotest.int "hits" 2 (Vcache.hits c);
  check Alcotest.int "misses" 1 (Vcache.misses c);
  check (Alcotest.float 1e-9) "hit rate" (2.0 /. 3.0) (Vcache.hit_rate c);
  Vcache.clear c;
  check Alcotest.int "cleared" 0 (Vcache.size c);
  check Alcotest.(option int) "entry gone" None (Vcache.find c "a")

let test_cache_fifo_eviction () =
  let c = Vcache.create ~capacity:3 in
  List.iteri (fun i k -> Vcache.add c k i) [ "a"; "b"; "c" ];
  check Alcotest.int "at capacity" 3 (Vcache.size c);
  Vcache.add c "d" 3;
  check Alcotest.int "still bounded" 3 (Vcache.size c);
  check Alcotest.(option int) "oldest evicted" None (Vcache.find c "a");
  check Alcotest.(option int) "second oldest kept" (Some 1) (Vcache.find c "b");
  check Alcotest.(option int) "newest kept" (Some 3) (Vcache.find c "d");
  (* Re-adding an existing key is a no-op: no overwrite, no re-ordering. *)
  Vcache.add c "b" 99;
  check Alcotest.(option int) "no overwrite" (Some 1) (Vcache.find c "b");
  (* Arbitrary churn never grows the table past its bound. *)
  for i = 0 to 999 do
    Vcache.add c (string_of_int i) i
  done;
  check Alcotest.int "bounded after churn" 3 (Vcache.size c)

let test_cache_rejects_bad_capacity () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Verify_cache.create: capacity must be >= 1") (fun () ->
      ignore (Vcache.create ~capacity:0))

(* ---- the pooled codec ----------------------------------------------------- *)

let sample_batch =
  {
    Msg.view = 2;
    seq = 41;
    digest = "digest\x00\xff";
    reqs = [ { Msg.client = 7; txn_id = 99 }; { Msg.client = 8; txn_id = 100 } ];
    wire_bytes = 512;
  }

let sample_messages =
  [
    Msg.Pre_prepare { view = 2; seq = 41; batch = sample_batch; from = 0 };
    Msg.Prepare { view = 2; seq = 41; digest = "d"; from = 3 };
    Msg.Commit { view = 0; seq = 1; digest = String.make 32 '\x01'; from = 15 };
    Msg.Checkpoint { seq = 10_000; state_digest = "state"; from = 2 };
    Msg.Reply { view = 0; seq = 7; txn_id = 55; client = 1000; from = 3; result = "ok" };
  ]

let test_pool_churn_roundtrip () =
  let hits0, _, _ = Codec.pool_stats () in
  for _ = 1 to 200 do
    List.iter
      (fun m ->
        match Codec.decode (Codec.encode m) with
        | Ok m' -> if m <> m' then Alcotest.failf "%s did not roundtrip" (Msg.type_name m)
        | Error e -> Alcotest.failf "%s: %s" (Msg.type_name m) e)
      sample_messages
  done;
  let hits1, _, idle = Codec.pool_stats () in
  Alcotest.(check bool) "pool buffers were reused" true (hits1 > hits0);
  Alcotest.(check bool) "buffers returned to the pool" true (idle >= 1)

let test_encode_into_matches_encode () =
  List.iter
    (fun m ->
      let b = Buffer.create 64 in
      Codec.encode_into b m;
      check Alcotest.string (Msg.type_name m) (Codec.encode m) (Buffer.contents b))
    sample_messages

let test_with_buffer_reenters () =
  (* Nested use must hand out distinct buffers, and an exception must not
     lose the buffer for later callers. *)
  let a = Codec.with_buffer (fun b1 ->
      Buffer.add_string b1 "outer";
      Codec.with_buffer (fun b2 ->
          Buffer.add_string b2 "inner";
          if Buffer.contents b1 = Buffer.contents b2 then Alcotest.fail "buffers aliased");
      Buffer.contents b1)
  in
  check Alcotest.string "outer content intact" "outer" a;
  (try Codec.with_buffer (fun _ -> failwith "boom") with Failure _ -> ());
  check Alcotest.string "pool still serves after an exception" "x"
    (Codec.with_buffer (fun b -> Buffer.add_string b "x"; Buffer.contents b))

let test_decode_sub_zero_copy () =
  List.iter
    (fun m ->
      let payload = Codec.encode m in
      let s = "prefix-junk" ^ payload ^ "suffix-junk" in
      match Codec.decode_sub s ~pos:11 ~len:(String.length payload) with
      | Ok m' -> Alcotest.(check bool) (Msg.type_name m ^ " mid-string") true (m = m')
      | Error e -> Alcotest.failf "%s: %s" (Msg.type_name m) e)
    sample_messages;
  let payload = Codec.encode (List.hd sample_messages) in
  Alcotest.(check bool) "window too short" true
    (Result.is_error (Codec.decode_sub payload ~pos:0 ~len:(String.length payload - 1)));
  Alcotest.(check bool) "window too long" true
    (Result.is_error (Codec.decode_sub ("x" ^ payload) ~pos:1 ~len:(String.length payload + 5)));
  Alcotest.(check bool) "out of bounds" true
    (Result.is_error (Codec.decode_sub payload ~pos:2 ~len:(String.length payload)));
  Alcotest.(check bool) "negative pos" true
    (Result.is_error (Codec.decode_sub payload ~pos:(-1) ~len:3))

let test_read_frame_reentrant_deliver () =
  (* A deliver callback that appends more framed bytes (e.g. a handler that
     echoes) must not corrupt the stream: the appended frame is decoded
     too. *)
  let buf = Buffer.create 64 in
  let out = ref [] in
  Buffer.add_string buf (Codec.frame "first");
  Codec.read_frame buf (fun p ->
      out := p :: !out;
      if p = "first" then Buffer.add_string buf (Codec.frame "second"));
  check Alcotest.(list string) "both frames delivered" [ "first"; "second" ] (List.rev !out);
  check Alcotest.int "buffer drained" 0 (Buffer.length buf)

let test_read_frame_exception_preserves_tail () =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Codec.frame "a");
  Buffer.add_string buf (Codec.frame "b");
  (try Codec.read_frame buf (fun _ -> failwith "boom") with Failure _ -> ());
  let out = ref [] in
  Codec.read_frame buf (fun p -> out := p :: !out);
  check Alcotest.(list string) "tail survives a raising callback" [ "b" ] (List.rev !out)

(* ---- the regression gate -------------------------------------------------- *)

let row ?(unit_ = "x") ~higher figure config metric value =
  { Gate.figure; config; metric; value; unit_; higher_is_better = higher }

let tput v = row ~higher:true "consensus" "pbft" "tput_tps" v
let lat v = row ~higher:false "consensus" "pbft" "lat_p99_ms" v
let micro v = row ~higher:false "micro" "sha" "ns_per_op" v

let test_gate_parses_bench_json () =
  let text =
    {|{"schema_version": 1, "quick": true, "rows": [
        {"figure": "consensus", "config": "pbft-2B1E", "metric": "tput_tps",
         "value": 176667, "unit": "txn/s", "higher_is_better": true}]}|}
  in
  (match Gate.parse_doc text with
  | Ok d ->
    Alcotest.(check bool) "quick flag" true d.Gate.quick;
    (match d.Gate.rows with
    | [ r ] ->
      check Alcotest.string "figure" "consensus" r.Gate.figure;
      check (Alcotest.float 1e-6) "value" 176667.0 r.Gate.value;
      Alcotest.(check bool) "direction" true r.Gate.higher_is_better
    | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows))
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "truncated JSON rejected" true
    (Result.is_error (Gate.parse_doc "{\"rows\": ["));
  Alcotest.(check bool) "document without rows rejected" true
    (Result.is_error (Gate.parse_doc "{\"schema_version\": 1}"));
  Alcotest.(check bool) "row missing a field rejected" true
    (Result.is_error (Gate.parse_doc {|{"rows": [{"figure": "f"}]}|}))

let verdicts ~baseline ~current =
  List.map
    (fun c -> c.Gate.c_verdict)
    (Gate.compare_docs Gate.default_tolerance ~baseline:{ Gate.quick = true; rows = baseline }
       ~current:{ Gate.quick = true; rows = current })

let test_gate_flags_regressions () =
  (* 20% throughput drop: outside the 8% band, fails. *)
  let cs =
    Gate.compare_docs Gate.default_tolerance
      ~baseline:{ Gate.quick = true; rows = [ tput 100_000.0 ] }
      ~current:{ Gate.quick = true; rows = [ tput 80_000.0 ] }
  in
  check Alcotest.bool "20%% tput drop fails" true (Gate.failed cs);
  (* Within band: ok.  Improvement: ok. *)
  Alcotest.(check bool) "5%% drop within band" false
    (Gate.failed
       (Gate.compare_docs Gate.default_tolerance
          ~baseline:{ Gate.quick = true; rows = [ tput 100_000.0 ] }
          ~current:{ Gate.quick = true; rows = [ tput 95_000.0 ] }));
  check Alcotest.bool "improvement passes" false
    (Gate.failed
       (Gate.compare_docs Gate.default_tolerance
          ~baseline:{ Gate.quick = true; rows = [ tput 100_000.0 ] }
          ~current:{ Gate.quick = true; rows = [ tput 130_000.0 ] }));
  (match verdicts ~baseline:[ tput 100_000.0 ] ~current:[ tput 130_000.0 ] with
  | [ Gate.Improved ] -> ()
  | _ -> Alcotest.fail "expected Improved");
  (* Latency is lower-is-better: a 20% increase regresses, a drop improves. *)
  (match verdicts ~baseline:[ lat 100.0 ] ~current:[ lat 120.0 ] with
  | [ Gate.Regressed ] -> ()
  | _ -> Alcotest.fail "expected latency Regressed");
  (* A baseline row missing from the run is lost coverage. *)
  let cs =
    Gate.compare_docs Gate.default_tolerance
      ~baseline:{ Gate.quick = true; rows = [ tput 100_000.0; lat 100.0 ] }
      ~current:{ Gate.quick = true; rows = [ tput 100_000.0 ] }
  in
  check Alcotest.bool "missing row fails" true (Gate.failed cs);
  (* A run-only row is reported but never fails. *)
  let extra =
    Gate.unmatched
      ~baseline:{ Gate.quick = true; rows = [ tput 100_000.0 ] }
      ~current:{ Gate.quick = true; rows = [ tput 100_000.0; lat 90.0 ] }
  in
  check Alcotest.int "new row reported" 1 (List.length extra)

let test_gate_micro_advisory () =
  (* Hardware ns/op rows doubled: advisory by default, fatal under
     --strict-micro. *)
  (match verdicts ~baseline:[ micro 1000.0 ] ~current:[ micro 2000.0 ] with
  | [ Gate.Advisory ] -> ()
  | _ -> Alcotest.fail "expected Advisory");
  let strict = { Gate.default_tolerance with Gate.strict_micro = true } in
  let cs =
    Gate.compare_docs strict
      ~baseline:{ Gate.quick = true; rows = [ micro 1000.0 ] }
      ~current:{ Gate.quick = true; rows = [ micro 2000.0 ] }
  in
  check Alcotest.bool "strict micro fails" true (Gate.failed cs);
  (* 30% micro wobble stays inside the 50% band either way. *)
  match verdicts ~baseline:[ micro 1000.0 ] ~current:[ micro 1300.0 ] with
  | [ Gate.Within ] -> ()
  | _ -> Alcotest.fail "expected Within"

(* ---- caching is behavior-neutral ------------------------------------------ *)

(* All the costs the memo table can elide, priced at zero: now a cache hit
   (0 ns) and a full operation (0 ns) are indistinguishable, so cached and
   uncached clusters must produce *identical* metrics — any divergence
   means the cache changed scheduling or semantics, not just cost. *)
let free_crypto =
  {
    Cost.default with
    Cost.verify_cmac = 0;
    verify_ed25519 = 0;
    verify_ed25519_batch = 0;
    verify_rsa = 0;
    hash_base = 0;
    hash_per_byte = 0;
    cache_lookup = 0;
  }

let fingerprint (m : Metrics.t) =
  let lat = m.Metrics.latency in
  let pct p = if Stats.count lat = 0 then 0.0 else Stats.percentile lat p in
  Printf.sprintf "%.9g|%.9g|%d|%d|%d|%d|%d|%.9g|%.9g|%.9g|%d|%d|%d|%d"
    m.Metrics.throughput_tps m.Metrics.ops_per_second m.Metrics.completed_txns
    (Stats.count lat) m.Metrics.messages_sent m.Metrics.bytes_sent m.Metrics.ledger_blocks
    (if Stats.count lat = 0 then 0.0 else Stats.mean lat)
    (pct 50.0) (pct 99.0) m.Metrics.faults.Metrics.msgs_dropped
    m.Metrics.faults.Metrics.msgs_duplicated m.Metrics.faults.Metrics.retransmissions
    m.Metrics.faults.Metrics.view_changes

let neutral_base =
  Params.default
  |> Params.with_n 4
  |> Params.with_clients 150
  |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
  |> Params.with_batch_size 10
  |> Params.map_consensus (fun c ->
         { c with Params.Consensus.max_inflight_batches = 16; checkpoint_txns = 400 })
  |> Params.with_client_timeout (Sim.ms 30.0)
  |> Params.with_view_timeout (Sim.ms 25.0)
  |> Params.with_windows ~warmup:(Sim.seconds 0.2) ~measure:(Sim.seconds 0.5)
  |> Params.map_exec (fun e -> { e with Params.Exec.cost = free_crypto })

let with_sharing v p =
  Params.map_consensus (fun c -> { c with Params.Consensus.verify_sharing = v }) p

let prop_cache_neutral =
  QCheck.Test.make ~name:"verify-sharing: metric-neutral when crypto is free" ~count:60
    (QCheck.pair Testkit.arb_schedule (QCheck.int_bound 10_000))
    (fun (nemesis, seed) ->
      let p =
        neutral_base |> Params.with_nemesis nemesis
        |> Params.with_seed (Int64.of_int (seed + 13))
      in
      let cached = fingerprint (Cluster.run (with_sharing true p)) in
      let uncached = fingerprint (Cluster.run (with_sharing false p)) in
      if String.equal cached uncached then true
      else QCheck.Test.fail_reportf "cached %s\nuncached %s" cached uncached)

(* ---- and pays off under real prices ---------------------------------------- *)

let test_verify_sharing_gain () =
  let p =
    Params.default
    |> Params.with_n 4
    |> Params.with_clients 4_000
    |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
    |> Params.with_windows ~warmup:(Sim.seconds 0.3) ~measure:(Sim.seconds 0.7)
  in
  let c = Cluster.create p in
  let cached = Cluster.measure c in
  let hits, misses = Cluster.verify_cache_stats c in
  let uncached = Cluster.run (with_sharing false p) in
  Alcotest.(check bool) "caches were exercised" true (hits > 0 && misses > 0);
  Alcotest.(check bool)
    (Printf.sprintf "cached %.0f >= 1.1x uncached %.0f" cached.Metrics.throughput_tps
       uncached.Metrics.throughput_tps)
    true
    (cached.Metrics.throughput_tps >= 1.1 *. uncached.Metrics.throughput_tps);
  match Cluster.check_safety c with Ok () -> () | Error e -> Alcotest.fail e

(* ---- verify-sharing in the real-crypto runtime ----------------------------- *)

let kv_apply ~replica:_ store ~client:_ ~payload =
  (match String.split_on_char '=' payload with
  | [ k; v ] -> Rdb_storage.Mem_store.put store k v
  | _ -> Rdb_storage.Mem_store.put store payload "1");
  "ok"

let test_runtime_viewchange_reuses_verifications () =
  let rt = Rt.create ~config:{ Rt.default_config with Rt.batch_size = 2 } ~apply:kv_apply () in
  ignore (Rt.submit rt ~client:1 ~payload:"a=1");
  ignore (Rt.submit rt ~client:2 ~payload:"b=2");
  (* The batch was admitted (signatures verified and memoized) and proposed,
     but the primary crashes before anything is delivered: the Pre_prepare
     dies with it and the batch is lost. *)
  Rt.crash rt 0;
  Rt.run rt;
  check Alcotest.int "nothing completed under the dead primary" 0
    (List.length (Rt.completed rt));
  check Alcotest.int "no cache hits yet" 0 (Rt.verify_cache_hits rt);
  Rt.force_view_change rt;
  Rt.run rt;
  check Alcotest.int "view advanced" 1 (Rt.view rt);
  check Alcotest.int "lost batch re-proposed and completed" 2 (List.length (Rt.completed rt));
  Alcotest.(check bool) "admission signatures answered from the memo table" true
    (Rt.verify_cache_hits rt >= 2);
  check Alcotest.int "no spurious auth failures" 0 (Rt.auth_failures rt);
  List.iter
    (fun r ->
      check
        Alcotest.(option string)
        (Printf.sprintf "replica %d state" r)
        (Some "1")
        (Rdb_storage.Mem_store.get (Rt.store rt r) "a"))
    [ 1; 2; 3 ];
  match Rt.verify rt with Ok () -> () | Error e -> Alcotest.fail e

let test_runtime_forgery_never_cached () =
  let rt = Rt.create ~apply:kv_apply () in
  Rt.inject_forged_message rt ~dst:2;
  Rt.run rt;
  check Alcotest.int "forged message rejected" 1 (Rt.auth_failures rt);
  (* Replaying the identical forged bytes must be rejected again: only
     successful verifications are memoized. *)
  Rt.inject_forged_message rt ~dst:2;
  Rt.run rt;
  check Alcotest.int "replayed forgery rejected too" 2 (Rt.auth_failures rt);
  ignore (Rt.submit rt ~client:1 ~payload:"still=works");
  Rt.flush rt;
  Rt.run rt;
  match Rt.verify rt with Ok () -> () | Error e -> Alcotest.fail e

let () =
  Alcotest.run "hotpath"
    [
      ( "verify-cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_counts;
          Alcotest.test_case "FIFO eviction bound" `Quick test_cache_fifo_eviction;
          Alcotest.test_case "bad capacity rejected" `Quick test_cache_rejects_bad_capacity;
        ] );
      ( "codec-pool",
        [
          Alcotest.test_case "churned roundtrips reuse buffers" `Quick test_pool_churn_roundtrip;
          Alcotest.test_case "encode_into = encode" `Quick test_encode_into_matches_encode;
          Alcotest.test_case "with_buffer reentrancy + exceptions" `Quick test_with_buffer_reenters;
          Alcotest.test_case "decode_sub mid-string" `Quick test_decode_sub_zero_copy;
          Alcotest.test_case "read_frame reentrant deliver" `Quick test_read_frame_reentrant_deliver;
          Alcotest.test_case "read_frame exception safety" `Quick
            test_read_frame_exception_preserves_tail;
        ] );
      ( "bench-gate",
        [
          Alcotest.test_case "parses bench JSON" `Quick test_gate_parses_bench_json;
          Alcotest.test_case "flags regressions and lost coverage" `Quick
            test_gate_flags_regressions;
          Alcotest.test_case "micro rows advisory unless strict" `Quick test_gate_micro_advisory;
        ] );
      ( "neutrality",
        [
          qtest prop_cache_neutral;
          Alcotest.test_case "real prices: >= 1.1x and safe" `Quick test_verify_sharing_gain;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "view change reuses admissions" `Quick
            test_runtime_viewchange_reuses_verifications;
          Alcotest.test_case "forgeries never cached" `Quick test_runtime_forgery_never_cached;
        ] );
    ]

(* Storage layer tests: in-memory store semantics, WAL durability and
   corruption handling, B-tree correctness against a reference model
   (including persistence across close/open), buffer pool accounting. *)

open Rdb_storage

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

let with_temp_file f =
  let path = Filename.temp_file "rdb_test" ".db" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

(* ---- Mem_store ------------------------------------------------------------ *)

let test_mem_basic () =
  let s = Mem_store.create () in
  Mem_store.put s "a" "1";
  Mem_store.put s "b" "2";
  check Alcotest.(option string) "get a" (Some "1") (Mem_store.get s "a");
  check Alcotest.(option string) "get missing" None (Mem_store.get s "zzz");
  Mem_store.put s "a" "updated";
  check Alcotest.(option string) "overwrite" (Some "updated") (Mem_store.get s "a");
  check Alcotest.int "size" 2 (Mem_store.size s);
  Mem_store.delete s "a";
  Alcotest.(check bool) "deleted" false (Mem_store.mem s "a");
  check Alcotest.int "size after delete" 1 (Mem_store.size s)

let test_mem_snapshot_isolation () =
  let s = Mem_store.create () in
  Mem_store.put s "k" "before";
  let snap = Mem_store.snapshot s in
  Mem_store.put s "k" "after";
  Mem_store.put s "new" "x";
  check Alcotest.(option string) "snapshot keeps old value" (Some "before") (Mem_store.get snap "k");
  Alcotest.(check bool) "snapshot lacks new key" false (Mem_store.mem snap "new");
  Mem_store.put snap "snap-only" "y";
  Alcotest.(check bool) "original lacks snapshot write" false (Mem_store.mem s "snap-only")

let test_mem_digest_order_independent () =
  let a = Mem_store.create () and b = Mem_store.create () in
  Mem_store.put a "x" "1";
  Mem_store.put a "y" "2";
  Mem_store.put b "y" "2";
  Mem_store.put b "x" "1";
  check Alcotest.string "equal state, equal digest" (Mem_store.digest a) (Mem_store.digest b);
  Mem_store.put b "x" "other";
  Alcotest.(check bool) "different state, different digest" false
    (String.equal (Mem_store.digest a) (Mem_store.digest b))

(* ---- Wal ------------------------------------------------------------------- *)

let test_wal_roundtrip () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_log path in
      Wal.append w "first";
      Wal.append w "second\x00with\xffbinary";
      Wal.append w "";
      Wal.close w;
      let records = ref [] in
      let n = Wal.replay path (fun r -> records := r :: !records) in
      check Alcotest.int "count" 3 n;
      check Alcotest.(list string) "contents" [ "first"; "second\x00with\xffbinary"; "" ]
        (List.rev !records))

let test_wal_append_across_sessions () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_log path in
      Wal.append w "one";
      Wal.close w;
      let w = Wal.open_log path in
      Wal.append w "two";
      Wal.close w;
      let n = Wal.replay path (fun _ -> ()) in
      check Alcotest.int "both sessions" 2 n)

let test_wal_truncated_tail_ignored () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_log path in
      Wal.append w "good";
      Wal.flush w;
      Wal.close w;
      (* Simulate a torn write: append garbage half-record. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x00\x00\x00\x10BAD!";
      close_out oc;
      let records = ref [] in
      let n = Wal.replay path (fun r -> records := r :: !records) in
      check Alcotest.int "only intact record" 1 n;
      check Alcotest.(list string) "content" [ "good" ] !records)

(* Regression: open_log must truncate a torn tail *before* appending.  It
   used to seek straight to the end, so records appended after a crash
   landed beyond the garbage and replay (which stops at the first torn
   record) never reached them — flushed-then-crashed logs silently lost all
   subsequent appends. *)
let test_wal_append_after_torn_tail () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_log path in
      Wal.append w "one";
      Wal.append w "two";
      Wal.flush w;
      Wal.close w;
      (* A crashed writer leaves half a record. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x00\x00\x00\x20torn";
      close_out oc;
      let w = Wal.open_log path in
      Wal.append w "three";
      Wal.close w;
      let records = ref [] in
      let n = Wal.replay path (fun r -> records := r :: !records) in
      check Alcotest.int "all flushed + post-crash records" 3 n;
      check Alcotest.(list string) "in order" [ "one"; "two"; "three" ] (List.rev !records))

let test_wal_missing_file () =
  check Alcotest.int "missing file replays nothing" 0 (Wal.replay "/nonexistent/wal" (fun _ -> ()))

let test_wal_corrupt_checksum () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_log path in
      Wal.append w "aaaa";
      Wal.append w "bbbb";
      Wal.close w;
      (* Flip a byte inside the first record's payload. *)
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string contents in
      Bytes.set b 9 'X';
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let n = Wal.replay path (fun _ -> ()) in
      check Alcotest.int "replay stops at corruption" 0 n)

(* ---- Btree ------------------------------------------------------------------ *)

let test_btree_basic () =
  with_temp_file (fun path ->
      Sys.remove path;
      let t = Btree.open_file path in
      check Alcotest.int "empty count" 0 (Btree.count t);
      Btree.put t "k1" "v1";
      Btree.put t "k2" "v2";
      check Alcotest.(option string) "get" (Some "v1") (Btree.get t "k1");
      check Alcotest.(option string) "missing" None (Btree.get t "nope");
      Btree.put t "k1" "v1b";
      check Alcotest.(option string) "replace" (Some "v1b") (Btree.get t "k1");
      check Alcotest.int "count" 2 (Btree.count t);
      Alcotest.(check bool) "delete existing" true (Btree.delete t "k1");
      Alcotest.(check bool) "delete missing" false (Btree.delete t "k1");
      check Alcotest.int "count after delete" 1 (Btree.count t);
      Btree.close t)

let test_btree_rejects_bad_entries () =
  with_temp_file (fun path ->
      Sys.remove path;
      let t = Btree.open_file path in
      Alcotest.check_raises "empty key" (Invalid_argument "Btree.put: empty key") (fun () ->
          Btree.put t "" "v");
      Alcotest.check_raises "oversized"
        (Invalid_argument "Btree.put: entry exceeds max_entry_size") (fun () ->
          Btree.put t "k" (String.make Btree.max_entry_size 'x'));
      Btree.close t)

let test_btree_many_and_splits () =
  with_temp_file (fun path ->
      Sys.remove path;
      let t = Btree.open_file path in
      let n = 20_000 in
      for i = 0 to n - 1 do
        Btree.put t (Printf.sprintf "key%08d" ((i * 7919) mod n)) (Printf.sprintf "value-%d" i)
      done;
      check Alcotest.int "count" n (Btree.count t);
      (match Btree.verify t with Ok () -> () | Error e -> Alcotest.fail e);
      let st = Btree.stats t in
      Alcotest.(check bool) "tree grew beyond a leaf" true (st.Btree.height >= 2);
      for i = 0 to 99 do
        Alcotest.(check bool)
          (Printf.sprintf "lookup %d" i)
          true
          (Btree.get t (Printf.sprintf "key%08d" i) <> None)
      done;
      Btree.close t)

let test_btree_persistence () =
  with_temp_file (fun path ->
      Sys.remove path;
      let t = Btree.open_file path in
      for i = 0 to 4999 do
        Btree.put t (Printf.sprintf "k%06d" i) (Printf.sprintf "v%d" i)
      done;
      Btree.close t;
      let t2 = Btree.open_file path in
      check Alcotest.int "count survives reopen" 5000 (Btree.count t2);
      check Alcotest.(option string) "value survives" (Some "v1234") (Btree.get t2 "k001234");
      (match Btree.verify t2 with Ok () -> () | Error e -> Alcotest.fail e);
      Btree.close t2)

let test_btree_iteration_order () =
  with_temp_file (fun path ->
      Sys.remove path;
      let t = Btree.open_file path in
      let keys = [ "delta"; "alpha"; "echo"; "charlie"; "bravo" ] in
      List.iter (fun k -> Btree.put t k ("v-" ^ k)) keys;
      let collected = ref [] in
      Btree.iter t (fun k _ -> collected := k :: !collected);
      check Alcotest.(list string) "ascending order"
        [ "alpha"; "bravo"; "charlie"; "delta"; "echo" ]
        (List.rev !collected);
      Btree.close t)

let test_btree_range () =
  with_temp_file (fun path ->
      Sys.remove path;
      let t = Btree.open_file path in
      for i = 0 to 999 do
        Btree.put t (Printf.sprintf "k%04d" i) "v"
      done;
      let r = Btree.range t ~lo:"k0100" ~hi:"k0109" in
      check Alcotest.int "range size" 10 (List.length r);
      check Alcotest.string "first" "k0100" (fst (List.hd r));
      check Alcotest.int "empty range" 0 (List.length (Btree.range t ~lo:"z" ~hi:"zz"));
      Btree.close t)

let test_btree_compact () =
  with_temp_file (fun path ->
      Sys.remove path;
      let t = Btree.open_file path in
      for i = 0 to 4999 do
        Btree.put t (Printf.sprintf "k%05d" i) (String.make 50 'v')
      done;
      for i = 0 to 4999 do
        if i mod 2 = 0 then ignore (Btree.delete t (Printf.sprintf "k%05d" i))
      done;
      let before = (Btree.stats t).Btree.pages_allocated in
      Btree.compact t;
      let after = (Btree.stats t).Btree.pages_allocated in
      Alcotest.(check bool) "fewer pages after compact" true (after < before);
      check Alcotest.int "entries preserved" 2500 (Btree.count t);
      (match Btree.verify t with Ok () -> () | Error e -> Alcotest.fail e);
      check Alcotest.(option string) "odd keys survive" (Some (String.make 50 'v'))
        (Btree.get t "k00001");
      check Alcotest.(option string) "even keys gone" None (Btree.get t "k00002");
      Btree.close t)

let test_btree_cache_eviction () =
  with_temp_file (fun path ->
      Sys.remove path;
      let t = Btree.open_file ~cache_pages:8 path in
      for i = 0 to 9999 do
        Btree.put t (Printf.sprintf "k%06d" i) (String.make 100 'x')
      done;
      (* With only 8 cached pages, lookups must hit the disk. *)
      let st0 = Btree.stats t in
      for i = 0 to 999 do
        ignore (Btree.get t (Printf.sprintf "k%06d" (i * 10)))
      done;
      let st1 = Btree.stats t in
      Alcotest.(check bool) "physical reads happened" true (st1.Btree.page_reads > st0.Btree.page_reads);
      check Alcotest.int "count intact" 10_000 (Btree.count t);
      (match Btree.verify t with Ok () -> () | Error e -> Alcotest.fail e);
      Btree.close t)

(* Model-based property test: a random operation sequence applied to both the
   B-tree and a reference Map must agree, including across a reopen. *)
type op = Put of string * string | Del of string | Get of string

let op_gen =
  let open QCheck.Gen in
  let key = map (fun i -> Printf.sprintf "key%03d" (abs i mod 100)) int in
  let value = map (fun i -> Printf.sprintf "val%d" (abs i mod 1000)) int in
  frequency
    [ (5, map2 (fun k v -> Put (k, v)) key value); (2, map (fun k -> Del k) key); (3, map (fun k -> Get k) key) ]

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Put (k, v) -> Printf.sprintf "put %s=%s" k v
             | Del k -> "del " ^ k
             | Get k -> "get " ^ k)
           ops))
    (QCheck.Gen.list_size QCheck.Gen.(50 -- 300) op_gen)

let prop_btree_matches_map =
  QCheck.Test.make ~name:"btree agrees with reference map (with reopen)" ~count:30 arb_ops
    (fun ops ->
      with_temp_file (fun path ->
          Sys.remove path;
          let t = ref (Btree.open_file path) in
          let model = ref (List.fold_left (fun m _ -> m) [] []) in
          ignore !model;
          let map = ref (Hashtbl.create 64) in
          let ok = ref true in
          List.iteri
            (fun i op ->
              (match op with
              | Put (k, v) ->
                Btree.put !t k v;
                Hashtbl.replace !map k v
              | Del k ->
                let had = Hashtbl.mem !map k in
                let did = Btree.delete !t k in
                Hashtbl.remove !map k;
                if had <> did then ok := false
              | Get k ->
                let expect = Hashtbl.find_opt !map k in
                if Btree.get !t k <> expect then ok := false);
              (* Periodically bounce the file to exercise persistence. *)
              if i mod 97 = 96 then begin
                Btree.close !t;
                t := Btree.open_file path
              end)
            ops;
          if Btree.count !t <> Hashtbl.length !map then ok := false;
          (match Btree.verify !t with Ok () -> () | Error _ -> ok := false);
          Btree.close !t;
          !ok))

(* ---- Buffer_pool --------------------------------------------------------------- *)

let test_pool_reuse () =
  let made = ref 0 in
  let pool = Buffer_pool.create ~capacity:4 ~make:(fun () -> incr made; Bytes.create 16) ~reset:(fun b -> Bytes.fill b 0 16 '\x00') () in
  let a = Buffer_pool.acquire pool in
  check Alcotest.int "first acquire manufactures" 1 !made;
  Bytes.set a 0 'x';
  Buffer_pool.release pool a;
  let b = Buffer_pool.acquire pool in
  check Alcotest.int "reused, not remade" 1 !made;
  check Alcotest.char "reset ran" '\x00' (Bytes.get b 0);
  check Alcotest.int "hits" 1 (Buffer_pool.hits pool);
  check Alcotest.int "misses" 1 (Buffer_pool.misses pool);
  check (Alcotest.float 1e-9) "hit rate" 0.5 (Buffer_pool.hit_rate pool)

let test_pool_capacity () =
  let pool = Buffer_pool.create ~capacity:2 ~make:(fun () -> ref 0) ~reset:(fun r -> r := 0) () in
  Buffer_pool.preallocate pool 10;
  check Alcotest.int "capped preallocation" 2 (Buffer_pool.idle pool);
  let xs = List.init 5 (fun _ -> Buffer_pool.acquire pool) in
  List.iter (Buffer_pool.release pool) xs;
  check Alcotest.int "idle capped" 2 (Buffer_pool.idle pool)

let () =
  Alcotest.run "rdb_storage"
    [
      ( "mem_store",
        [
          Alcotest.test_case "basics" `Quick test_mem_basic;
          Alcotest.test_case "snapshot isolation" `Quick test_mem_snapshot_isolation;
          Alcotest.test_case "digest order-independent" `Quick test_mem_digest_order_independent;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "append across sessions" `Quick test_wal_append_across_sessions;
          Alcotest.test_case "truncated tail ignored" `Quick test_wal_truncated_tail_ignored;
          Alcotest.test_case "append after torn tail" `Quick test_wal_append_after_torn_tail;
          Alcotest.test_case "missing file" `Quick test_wal_missing_file;
          Alcotest.test_case "corrupt checksum" `Quick test_wal_corrupt_checksum;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basics" `Quick test_btree_basic;
          Alcotest.test_case "input validation" `Quick test_btree_rejects_bad_entries;
          Alcotest.test_case "20K inserts with splits" `Quick test_btree_many_and_splits;
          Alcotest.test_case "persistence" `Quick test_btree_persistence;
          Alcotest.test_case "iteration order" `Quick test_btree_iteration_order;
          Alcotest.test_case "range queries" `Quick test_btree_range;
          Alcotest.test_case "compact" `Quick test_btree_compact;
          Alcotest.test_case "bounded cache" `Quick test_btree_cache_eviction;
          qtest prop_btree_matches_map;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "reuse and reset" `Quick test_pool_reuse;
          Alcotest.test_case "capacity bound" `Quick test_pool_capacity;
        ] );
    ]

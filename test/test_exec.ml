(* Conflict-aware parallel execution: the lane scheduler's invariants, the
   state-equivalence argument (E = 4 reaches the state of serial in-order
   execution), and the cluster/Local_runtime deployments of both.

   Four layers of evidence:
   - Scheduler unit + qcheck suites: conflicting transactions never share a
     round across lanes, every plan validates, and replaying a random
     YCSB-shaped block through the plan (with lanes deliberately drained in
     the wrong order) reaches the exact serial state.
   - Cluster (DES): E = 4 at k = 2 completes and stays safe, including
     under 60 random benign + byzantine fault schedules; E = 1 keeps the
     classic single execute-thread stage layout (the bit-identity
     regression) and stays deterministic.
   - exec_force_parallel: E = 1 through the lane machinery still completes
     and stays safe — pure scheduling overhead, no behaviour change.
   - Local_runtime: real execution on OCaml domains (E = 4) produces the
     same application-state digest, ledger digest and per-client results as
     the serial runtime. *)

open Rdb_core
module Exec_sched = Rdb_replica.Exec_sched
module Zipf = Rdb_workload.Zipf
module Ycsb = Rdb_workload.Ycsb
module Rng = Rdb_des.Rng
module Mem_store = Rdb_storage.Mem_store

let qtest p = QCheck_alcotest.to_alcotest p

(* ---- scheduler: unit suite ------------------------------------------------ *)

let fp ?(reads = []) writes = { Exec_sched.reads; writes }

let check_valid name fps plan =
  match Exec_sched.validate fps plan with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid plan (%s): %s" name (Exec_sched.stats plan) e

let test_disjoint_block_spreads () =
  (* No two transactions share a key: one round, all lanes busy. *)
  let fps = Array.init 16 (fun i -> fp [ Printf.sprintf "k%d" i ]) in
  let plan = Exec_sched.schedule ~lanes:4 fps in
  check_valid "disjoint" fps plan;
  Alcotest.(check int) "one round" 1 (List.length plan.Exec_sched.rounds);
  let round = List.hd plan.Exec_sched.rounds in
  Array.iter (fun lane -> Alcotest.(check int) "balanced" 4 (List.length lane)) round

let test_hot_key_serializes () =
  (* Every transaction writes the same key: they must all land in one lane
     (or successive rounds), never side by side. *)
  let fps = Array.init 8 (fun _ -> fp [ "hot" ]) in
  let plan = Exec_sched.schedule ~lanes:4 fps in
  check_valid "hot-key" fps plan;
  List.iter
    (fun round ->
      let busy = Array.to_list round |> List.filter (fun l -> l <> []) in
      Alcotest.(check int) "conflicting txns never run side by side" 1 (List.length busy))
    plan.Exec_sched.rounds

let test_read_read_shares_no_conflict () =
  (* Shared reads are not conflicts; a write to the same key is. *)
  let fps =
    [| fp ~reads:[ "x" ] [ "a" ]; fp ~reads:[ "x" ] [ "b" ]; fp ~reads:[] [ "x" ] |]
  in
  let plan = Exec_sched.schedule ~lanes:4 fps in
  check_valid "read-read" fps plan;
  (* The two readers may share round 0; the writer of x must come later
     (it conflicts with both). *)
  (match plan.Exec_sched.rounds with
  | first :: _ ->
    let members = Array.to_list first |> List.concat in
    Alcotest.(check bool) "readers run first" true
      (List.mem 0 members && List.mem 1 members && not (List.mem 2 members))
  | [] -> Alcotest.fail "empty plan");
  Alcotest.(check bool) "needs a second round" true (List.length plan.Exec_sched.rounds >= 2)

let test_lanes1_degenerates () =
  let fps = Array.init 10 (fun i -> fp [ Printf.sprintf "k%d" (i mod 3) ]) in
  let plan = Exec_sched.schedule ~lanes:1 fps in
  check_valid "lanes1" fps plan;
  Alcotest.(check int) "single round" 1 (List.length plan.Exec_sched.rounds);
  let order = Array.to_list (List.hd plan.Exec_sched.rounds) |> List.concat in
  Alcotest.(check (list int)) "block order preserved" (List.init 10 Fun.id) order

let test_empty_block () =
  let plan = Exec_sched.schedule ~lanes:4 [||] in
  check_valid "empty" [||] plan;
  Alcotest.(check int) "no rounds" 0 (List.length plan.Exec_sched.rounds)

let test_critical_path_bound () =
  (* Disjoint 16-txn block over 4 lanes: the critical path is a quarter of
     the serial one; the hot-key block has no parallelism at all. *)
  let disjoint = Array.init 16 (fun i -> fp [ Printf.sprintf "k%d" i ]) in
  let hot = Array.init 16 (fun _ -> fp [ "hot" ]) in
  let cp fps = Exec_sched.critical_ops fps (Exec_sched.schedule ~lanes:4 fps) in
  Alcotest.(check int) "disjoint critical path" 4 (cp disjoint);
  Alcotest.(check int) "hot-key critical path" 16 (cp hot)

(* ---- scheduler: qcheck properties ----------------------------------------- *)

(* A random block: footprints over a deliberately small keyspace so
   conflicts are dense (the adversarial case for the scheduler). *)
let gen_block =
  let open QCheck.Gen in
  let key = map (fun i -> Printf.sprintf "key-%d" i) (int_bound 12) in
  let footprint =
    map2
      (fun reads writes -> { Exec_sched.reads; writes })
      (list_size (int_bound 2) key)
      (list_size (int_bound 3) key)
  in
  map Array.of_list (list_size (int_range 0 60) footprint)

let print_block fps =
  String.concat "; "
    (Array.to_list fps
    |> List.map (fun f ->
           Printf.sprintf "r[%s] w[%s]"
             (String.concat "," f.Exec_sched.reads)
             (String.concat "," f.Exec_sched.writes)))

let arb_block = QCheck.make gen_block ~print:print_block

let prop_schedule_validates =
  QCheck.Test.make ~name:"exec_sched: every plan validates" ~count:300
    (QCheck.pair arb_block (QCheck.int_range 1 8))
    (fun (fps, lanes) ->
      match Exec_sched.validate fps (Exec_sched.schedule ~lanes fps) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

let prop_schedule_deterministic =
  QCheck.Test.make ~name:"exec_sched: schedule is a pure function" ~count:100
    (QCheck.pair arb_block (QCheck.int_range 1 8))
    (fun (fps, lanes) ->
      Exec_sched.schedule ~lanes fps = Exec_sched.schedule ~lanes fps)

(* State equivalence, model-checked: executing the block through the plan —
   with every round's lanes drained in the WRONG order (reversed, and
   round-robin interleaved) — ends in exactly the serial in-order state.
   Transactions are YCSB-shaped updates: write key := txn index. *)
let apply_serial fps =
  let store = Hashtbl.create 64 in
  Array.iteri
    (fun i f -> List.iter (fun k -> Hashtbl.replace store k i) f.Exec_sched.writes)
    fps;
  store

let apply_planned ~lanes fps =
  let plan = Exec_sched.schedule ~lanes fps in
  let store = Hashtbl.create 64 in
  let exec i = List.iter (fun k -> Hashtbl.replace store k i) fps.(i).Exec_sched.writes in
  List.iteri
    (fun ri round ->
      (* Drain lanes in reverse order on even rounds and round-robin
         one-at-a-time on odd rounds: any interleaving of conflict-free
         lanes must commute. *)
      if ri mod 2 = 0 then
        for l = Array.length round - 1 downto 0 do
          List.iter exec round.(l)
        done
      else begin
        let cursors = Array.map (fun l -> ref l) round in
        let again = ref true in
        while !again do
          again := false;
          Array.iter
            (fun c ->
              match !c with
              | [] -> ()
              | i :: rest ->
                exec i;
                c := rest;
                if rest <> [] then again := true)
            cursors
        done
      end)
    plan.Exec_sched.rounds;
  store

let stores_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold (fun k v ok -> ok && Hashtbl.find_opt b k = Some v) a true

let prop_state_equivalence =
  QCheck.Test.make ~name:"exec_sched: planned execution = serial state" ~count:300
    (QCheck.pair arb_block (QCheck.int_range 1 8))
    (fun (fps, lanes) -> stores_equal (apply_serial fps) (apply_planned ~lanes fps))

(* The same property over a Zipfian YCSB block (the workload the cluster's
   footprint derivation draws): hot keys make write-write chains long. *)
let prop_state_equivalence_zipf =
  QCheck.Test.make ~name:"exec_sched: zipf YCSB block = serial state" ~count:100
    (QCheck.int_bound 10_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let zipf = Zipf.create ~n:50 () in
      let fps =
        Array.init 80 (fun _ -> fp [ Ycsb.key_of_index (Zipf.sample zipf rng) ])
      in
      List.for_all
        (fun lanes -> stores_equal (apply_serial fps) (apply_planned ~lanes fps))
        [ 2; 4; 8 ])

(* ---- cluster (DES): parallel lanes complete, stay safe, shift the stages -- *)

let small =
  Params.default
  |> Params.with_n 4
  |> Params.with_clients 2_000
  |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.2)
       ~measure:(Rdb_des.Sim.seconds 0.3)

let stage_names (m : Metrics.t) =
  let primary = List.find (fun r -> r.Metrics.is_primary) m.Metrics.replicas in
  List.map (fun s -> s.Metrics.stage) primary.Metrics.stages

let test_cluster_parallel_progress () =
  let p = small |> Params.with_execute_threads 4 |> Params.with_instances 2 in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  Alcotest.(check bool) "completes" true (m.Metrics.completed_txns > 0);
  Alcotest.(check bool) "blocks appended" true (m.Metrics.ledger_blocks > 0);
  (match Cluster.check_safety c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "safety: %s" e);
  let names = stage_names m in
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " present") true (List.mem s names))
    [ "exec-sched"; "execute-0"; "execute-1"; "execute-2"; "execute-3" ];
  Alcotest.(check bool) "no legacy execute stage" false (List.mem "execute" names)

let test_cluster_e1_legacy_layout () =
  (* The bit-identity regression for E = 1: the classic pipeline — a single
     "execute" stage, no scheduler stage — and deterministic metrics. *)
  let m = Cluster.run small in
  let names = stage_names m in
  Alcotest.(check bool) "classic execute stage" true (List.mem "execute" names);
  Alcotest.(check bool) "no lane stages" false
    (List.exists (fun s -> s = "exec-sched" || s = "execute-0") names);
  let m' = Cluster.run small in
  Alcotest.(check int) "deterministic completions" m.Metrics.completed_txns
    m'.Metrics.completed_txns;
  Alcotest.(check (float 1e-9)) "deterministic throughput" m.Metrics.throughput_tps
    m'.Metrics.throughput_tps

let test_cluster_force_parallel () =
  (* E = 1 through the lane machinery: same protocol behaviour, one lane. *)
  let p =
    Params.map_exec (fun e -> { e with Params.Exec.exec_force_parallel = true }) small
  in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  Alcotest.(check bool) "completes" true (m.Metrics.completed_txns > 0);
  (match Cluster.check_safety c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "safety: %s" e);
  let names = stage_names m in
  Alcotest.(check bool) "single lane stage" true (List.mem "execute-0" names);
  Alcotest.(check bool) "scheduler stage" true (List.mem "exec-sched" names)

let test_cluster_conflict_knob () =
  (* A tiny keyspace forces conflicts; the run must still complete and
     agree (the schedule degrades towards serial, never towards races). *)
  let p =
    small |> Params.with_execute_threads 4
    |> Params.map_exec (fun e -> { e with Params.Exec.exec_records = 8 })
  in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  Alcotest.(check bool) "completes under dense conflicts" true (m.Metrics.completed_txns > 0);
  match Cluster.check_safety c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "safety: %s" e

(* Safety under random benign + byzantine fault schedules with parallel
   lanes on — the exact property test_faults/test_byzantine establish for
   the classic pipeline, rerun at E = 4. *)
let prop_parallel_safety_under_faults =
  QCheck.Test.make ~name:"cluster: E=4 safety under random byzantine schedules" ~count:60
    (QCheck.pair Testkit.arb_byzantine_schedule (QCheck.int_bound 10_000))
    (fun (schedule, seed) ->
      let p =
        small
        |> Params.with_execute_threads 4
        |> Params.with_clients 150
        |> Params.with_client_timeout (Rdb_des.Sim.ms 80.0)
        |> Params.with_view_timeout (Rdb_des.Sim.ms 60.0)
        |> Params.with_nemesis schedule
        |> Params.with_seed (Int64.of_int (seed + 1))
        |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.2)
             ~measure:(Rdb_des.Sim.seconds 0.5)
      in
      let c = Cluster.create p in
      let _m = Cluster.measure c in
      match Cluster.check_safety c with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

(* ---- Local_runtime: real execution on OCaml domains ----------------------- *)

(* YCSB-shaped payloads "key value": apply writes key := value, the
   footprint declares the write.  Key pool small enough to make batches
   conflict. *)
let lr_apply ~replica:_ store ~client:_ ~payload =
  match String.index_opt payload ' ' with
  | Some i ->
    let key = String.sub payload 0 i in
    let v = String.sub payload (i + 1) (String.length payload - i - 1) in
    Mem_store.put store key v;
    "ok"
  | None -> "bad-payload"

let lr_footprint ~client:_ ~payload =
  match String.index_opt payload ' ' with
  | Some i -> { Exec_sched.reads = []; writes = [ String.sub payload 0 i ] }
  | None -> { Exec_sched.reads = []; writes = [] }

let lr_submit_workload rt =
  let rng = Rng.create 77L in
  for i = 0 to 79 do
    let key = Printf.sprintf "k%d" (Rng.int rng 10) in
    ignore (Local_runtime.submit rt ~client:(i mod 5) ~payload:(Printf.sprintf "%s v%d" key i))
  done;
  Local_runtime.flush rt;
  Local_runtime.run rt

let test_local_runtime_domains_equivalence () =
  let serial =
    Local_runtime.create
      ~config:{ Local_runtime.default_config with Local_runtime.batch_size = 16 }
      ~apply:lr_apply ()
  in
  let parallel =
    Local_runtime.create
      ~config:
        { Local_runtime.default_config with Local_runtime.batch_size = 16; exec_threads = 4 }
      ~footprint:lr_footprint ~apply:lr_apply ()
  in
  lr_submit_workload serial;
  lr_submit_workload parallel;
  (match Local_runtime.verify serial with
  | Ok () -> ()
  | Error e -> Alcotest.failf "serial runtime diverged: %s" e);
  (match Local_runtime.verify parallel with
  | Ok () -> ()
  | Error e -> Alcotest.failf "parallel runtime diverged: %s" e);
  (* State equivalence across the two runtimes: identical application state
     and identical per-transaction results. *)
  Alcotest.(check string) "application state digest"
    (Mem_store.digest (Local_runtime.store serial 0))
    (Mem_store.digest (Local_runtime.store parallel 0));
  let results rt =
    List.sort compare (Local_runtime.completed rt)
  in
  Alcotest.(check (list (pair int string))) "per-transaction results" (results serial)
    (results parallel)

let test_local_runtime_domains_conflict_heavy () =
  (* Every transaction writes the same key: the plan serializes the batch
     and the last write must win on every replica. *)
  let parallel =
    Local_runtime.create
      ~config:
        { Local_runtime.default_config with Local_runtime.batch_size = 20; exec_threads = 4 }
      ~footprint:lr_footprint ~apply:lr_apply ()
  in
  for i = 0 to 19 do
    ignore (Local_runtime.submit parallel ~client:0 ~payload:(Printf.sprintf "hot v%d" i))
  done;
  Local_runtime.run parallel;
  (match Local_runtime.verify parallel with
  | Ok () -> ()
  | Error e -> Alcotest.failf "diverged: %s" e);
  Alcotest.(check (option string)) "last write wins" (Some "v19")
    (Mem_store.get (Local_runtime.store parallel 0) "hot")

let () =
  Alcotest.run "exec"
    [
      ( "scheduler",
        [
          Alcotest.test_case "disjoint block spreads" `Quick test_disjoint_block_spreads;
          Alcotest.test_case "hot key serializes" `Quick test_hot_key_serializes;
          Alcotest.test_case "read-read is no conflict" `Quick test_read_read_shares_no_conflict;
          Alcotest.test_case "lanes=1 degenerates" `Quick test_lanes1_degenerates;
          Alcotest.test_case "empty block" `Quick test_empty_block;
          Alcotest.test_case "critical path bound" `Quick test_critical_path_bound;
          qtest prop_schedule_validates;
          qtest prop_schedule_deterministic;
          qtest prop_state_equivalence;
          qtest prop_state_equivalence_zipf;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "E=4 k=2 completes safely" `Quick test_cluster_parallel_progress;
          Alcotest.test_case "E=1 keeps the classic layout" `Quick test_cluster_e1_legacy_layout;
          Alcotest.test_case "forced single lane" `Quick test_cluster_force_parallel;
          Alcotest.test_case "dense conflicts stay safe" `Quick test_cluster_conflict_knob;
          qtest prop_parallel_safety_under_faults;
        ] );
      ( "local-runtime",
        [
          Alcotest.test_case "domains = serial state" `Quick test_local_runtime_domains_equivalence;
          Alcotest.test_case "hot-key batch on domains" `Quick
            test_local_runtime_domains_conflict_heavy;
        ] );
    ]

(* Zyzzyva protocol-core tests: speculative execution in sequence order,
   history-chain consistency, the client's fast and commit-certificate
   paths, out-of-order order-requests, and checkpointing. *)

module Msg = Rdb_consensus.Message
module Action = Rdb_consensus.Action
module Config = Rdb_consensus.Config
module Zyz = Rdb_consensus.Zyzzyva_replica
module Client = Rdb_consensus.Zyzzyva_client

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

let zyz_core t id = match t.Testkit.cores.(id) with Testkit.Z c -> c | _ -> assert false

let spec_replies t =
  List.filter_map
    (fun (from, m) -> match m with Msg.Spec_reply _ -> Some (from, m) | _ -> None)
    !(t.Testkit.client_inbox)

let test_speculative_execution () =
  let t = Testkit.make_zyz () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  Testkit.assert_agreement ~expect:1 t;
  check Alcotest.int "spec reply from every replica" 4 (List.length (spec_replies t))

let test_histories_agree () =
  let t = Testkit.make_zyz () in
  for i = 1 to 10 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:10 t;
  let h0 = Zyz.history (zyz_core t 0) in
  Array.iteri
    (fun id c ->
      match c with
      | Testkit.Z core ->
        check Alcotest.string (Printf.sprintf "replica %d history" id) (Rdb_crypto.Sha256.hex h0)
          (Rdb_crypto.Sha256.hex (Zyz.history core))
      | _ -> ())
    t.Testkit.cores

let test_history_depends_on_order () =
  (* Two clusters ordering the same digests differently end with different
     histories — the history chain really does bind the order. *)
  let run_digests ds =
    let t = Testkit.make_zyz () in
    List.iteri (fun i d -> ignore (Testkit.propose t 0 ~reqs:[ Testkit.req (i + 1) ] ~digest:d)) ds;
    Testkit.run t;
    Zyz.history (zyz_core t 1)
  in
  Alcotest.(check bool) "order-sensitive" false
    (String.equal (run_digests [ "a"; "b" ]) (run_digests [ "b"; "a" ]))

(* A replica only speculates on an order-request whose history claim chains
   over its own history (h_n = H(h_{n-1} || d_n)), so hand-built messages
   must carry honestly computed claims. *)
let genesis_history = Rdb_crypto.Sha256.digest "zyzzyva-genesis"

let chain h digest = Rdb_crypto.Sha256.digest (h ^ digest)

let test_out_of_order_order_requests_buffered () =
  let t = Testkit.make_zyz () in
  let core = zyz_core t 1 in
  let mk seq digest = { Msg.view = 0; seq; digest; reqs = [ Testkit.req seq ]; wire_bytes = 1 } in
  let h1 = chain genesis_history "d1" in
  let h2 = chain h1 "d2" in
  (* Seq 2 arrives before seq 1: nothing executes yet. *)
  let a2 =
    Zyz.handle_message core
      (Msg.Order_request { view = 0; seq = 2; batch = mk 2 "d2"; history = h2; from = 0 })
  in
  check Alcotest.int "gap: no execution" 0
    (List.length (List.filter (function Action.Execute _ -> true | _ -> false) a2));
  check Alcotest.int "nothing spec-executed" 0 (Zyz.last_spec_executed core);
  (* Seq 1 fills the hole: both execute, in order. *)
  let a1 =
    Zyz.handle_message core
      (Msg.Order_request { view = 0; seq = 1; batch = mk 1 "d1"; history = h1; from = 0 })
  in
  let execs = List.filter_map (function Action.Execute b -> Some b.Msg.seq | _ -> None) a1 in
  check Alcotest.(list int) "both execute in order" [ 1; 2 ] execs;
  check Alcotest.int "spec executed up to 2" 2 (Zyz.last_spec_executed core)

let test_forged_history_claim_not_executed () =
  (* An equivocating primary cannot chain its history claim over both
     branches of a split: the copy whose claim does not cover its digest is
     a proof of misbehavior — dropped before speculation, counted, and the
     slot stays open for an honest retransmission. *)
  let t = Testkit.make_zyz () in
  let core = zyz_core t 1 in
  let mk seq digest = { Msg.view = 0; seq; digest; reqs = [ Testkit.req seq ]; wire_bytes = 1 } in
  let h1 = chain genesis_history "d1" in
  let forged =
    Zyz.handle_message core
      (* claim chains over "d1", but the batch carries the conflicting
         digest — exactly what an in-flight equivocation split looks like. *)
      (Msg.Order_request { view = 0; seq = 1; batch = mk 1 "d1#equiv"; history = h1; from = 0 })
  in
  check Alcotest.int "forged branch never executes" 0
    (List.length (List.filter (function Action.Execute _ -> true | _ -> false) forged));
  check Alcotest.int "nothing spec-executed" 0 (Zyz.last_spec_executed core);
  check Alcotest.int "counted as equivocation evidence" 1 (Zyz.equivocations_detected core);
  (* The honest copy still goes through afterwards. *)
  let a1 =
    Zyz.handle_message core
      (Msg.Order_request { view = 0; seq = 1; batch = mk 1 "d1"; history = h1; from = 0 })
  in
  let execs = List.filter_map (function Action.Execute b -> Some b.Msg.seq | _ -> None) a1 in
  check Alcotest.(list int) "honest copy executes" [ 1 ] execs

let test_order_request_from_non_primary_ignored () =
  let t = Testkit.make_zyz () in
  let core = zyz_core t 1 in
  let batch = { Msg.view = 0; seq = 1; digest = "d"; reqs = [ Testkit.req 1 ]; wire_bytes = 1 } in
  check Alcotest.int "ignored" 0
    (List.length
       (Zyz.handle_message core (Msg.Order_request { view = 0; seq = 1; batch; history = "h"; from = 2 })))

let test_commit_cert_acked () =
  let t = Testkit.make_zyz () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  let core = zyz_core t 1 in
  let history = Zyz.history core in
  let acts =
    Zyz.handle_message core
      (Msg.Commit_cert { view = 0; seq = 1; digest = history; client = 1000; responders = [ 0; 1; 2 ] })
  in
  Alcotest.(check bool) "local-commit sent" true
    (List.exists
       (function Action.Send_client (1000, Msg.Local_commit _) -> true | _ -> false)
       acts);
  check Alcotest.int "committed watermark" 1 (Zyz.committed_upto core)

let test_commit_cert_wrong_history_rejected () =
  let t = Testkit.make_zyz () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  let core = zyz_core t 1 in
  let acts =
    Zyz.handle_message core
      (Msg.Commit_cert { view = 0; seq = 1; digest = "forged"; client = 1000; responders = [ 0; 1; 2 ] })
  in
  check Alcotest.int "forged certificate ignored" 0 (List.length acts);
  check Alcotest.int "not committed" 0 (Zyz.committed_upto core)

let test_commit_cert_before_execution_buffered () =
  let t = Testkit.make_zyz () in
  let core = zyz_core t 1 in
  (* Certificate for a sequence number the replica has not yet executed. *)
  let acts =
    Zyz.handle_message core
      (Msg.Commit_cert { view = 0; seq = 1; digest = "h1"; client = 1000; responders = [ 0; 1; 2 ] })
  in
  check Alcotest.int "buffered, no ack yet" 0 (List.length acts);
  (* The order-request arrives and execution catches up... *)
  let batch = { Msg.view = 0; seq = 1; digest = "d1"; reqs = [ Testkit.req 1 ]; wire_bytes = 1 } in
  let a =
    Zyz.handle_message core
      (Msg.Order_request
         { view = 0; seq = 1; batch; history = chain genesis_history "d1"; from = 0 })
  in
  Testkit.push t 1 a;
  Testkit.run t;
  (* ...the ack fires from handle_executed if the history matched; a mismatched
     buffered cert is dropped, so just check no crash and state sane. *)
  check Alcotest.int "executed" 1 (Zyz.last_spec_executed core)

let test_crash_blocks_fast_path_only () =
  let t = Testkit.make_zyz () in
  Testkit.crash t 3;
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  (* Only 3 spec replies: a client could not take the fast path, but all live
     replicas executed identically (the protocol itself keeps going). *)
  check Alcotest.int "3 spec replies" 3 (List.length (spec_replies t));
  Testkit.assert_agreement ~expect:1 t

let test_fill_hole () =
  (* A backup that receives seq 2 without seq 1 asks the primary to fill the
     hole; the resent Order-request lets it execute both in order. *)
  let t = Testkit.make_zyz () in
  (* The primary orders seq 1 and 2 (only its own state matters here). *)
  let primary = zyz_core t 0 in
  let b1, _ = Zyz.propose primary ~reqs:[ Testkit.req 1 ] ~digest:"d1" ~wire_bytes:1 in
  let b2, _ = Zyz.propose primary ~reqs:[ Testkit.req 2 ] ~digest:"d2" ~wire_bytes:1 in
  let b1 = Option.get b1 and b2 = Option.get b2 in
  (* Drain the primary's own Execute actions so its log is populated. *)
  Testkit.run t;
  let backup = zyz_core t 1 in
  let h2 = chain (chain genesis_history "d1") "d2" in
  (* Seq 2 arrives first: the backup buffers it and emits a Fill_hole. *)
  let acts =
    Zyz.handle_message backup
      (Msg.Order_request { view = 0; seq = 2; batch = b2; history = h2; from = 0 })
  in
  let hole =
    List.find_map
      (function
        | Action.Send (0, (Msg.Fill_hole { from_seq = 1; to_seq = 1; _ } as m)) -> Some m
        | _ -> None)
      acts
  in
  let hole = match hole with Some m -> m | None -> Alcotest.fail "expected fill-hole to primary" in
  check Alcotest.int "nothing executed yet" 0 (Zyz.last_spec_executed backup);
  (* The primary answers with the missing Order-request... *)
  let resend = Zyz.handle_message primary hole in
  let order1 =
    List.find_map
      (function
        | Action.Send (1, (Msg.Order_request { seq = 1; _ } as m)) -> Some m
        | _ -> None)
      resend
  in
  let order1 = match order1 with Some m -> m | None -> Alcotest.fail "expected resent order-request" in
  (* ...and the backup executes both, in order. *)
  let acts = Zyz.handle_message backup order1 in
  let execs = List.filter_map (function Action.Execute b -> Some b.Msg.seq | _ -> None) acts in
  check Alcotest.(list int) "both execute in order" [ 1; 2 ] execs;
  ignore b1;
  (* Duplicate fill-hole asks are rate-limited. *)
  let again =
    Zyz.handle_message backup
      (Msg.Order_request { view = 0; seq = 2; batch = b2; history = h2; from = 0 })
  in
  check Alcotest.int "stale order-request ignored" 0 (List.length again)

let test_fill_hole_only_primary_answers () =
  let t = Testkit.make_zyz () in
  let backup = zyz_core t 1 in
  check Alcotest.int "backup ignores fill-hole" 0
    (List.length
       (Zyz.handle_message backup (Msg.Fill_hole { view = 0; from_seq = 1; to_seq = 3; from = 2 })))

let test_checkpoint_prunes_histories () =
  let t = Testkit.make_zyz ~checkpoint_interval:5 () in
  for i = 1 to 10 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:10 t;
  (* After pruning, a late certificate for an old seq is still acked (the
     stable checkpoint vouches for it). *)
  let core = zyz_core t 1 in
  let acts =
    Zyz.handle_message core
      (Msg.Commit_cert { view = 0; seq = 2; digest = "anything"; client = 1; responders = [ 0; 1; 2 ] })
  in
  Alcotest.(check bool) "late cert for pruned seq acked" true
    (List.exists (function Action.Send_client (_, Msg.Local_commit _) -> true | _ -> false) acts)

(* ---- client ------------------------------------------------------------- *)

let spec_reply ~from ~txn_id ~history =
  Msg.Spec_reply { view = 0; seq = 1; txn_id; client = 1000; from; history }

let test_client_fast_path () =
  let cfg = Config.make ~n:4 () in
  let c = Client.create cfg ~id:1000 in
  ignore (Client.submit c ~txn_id:1);
  for from = 0 to 2 do
    check Alcotest.int "not yet" 0
      (List.length (Client.handle_message c (spec_reply ~from ~txn_id:1 ~history:"h")))
  done;
  let acts = Client.handle_message c (spec_reply ~from:3 ~txn_id:1 ~history:"h") in
  Alcotest.(check bool) "all 3f+1 matching -> fast complete" true
    (List.exists (function Client.Complete { fast = true; _ } -> true | _ -> false) acts);
  check Alcotest.int "cleared" 0 (Client.outstanding c)

let test_client_mismatched_history_blocks_fast_path () =
  let cfg = Config.make ~n:4 () in
  let c = Client.create cfg ~id:1000 in
  ignore (Client.submit c ~txn_id:1);
  for from = 0 to 2 do
    ignore (Client.handle_message c (spec_reply ~from ~txn_id:1 ~history:"h"))
  done;
  let acts = Client.handle_message c (spec_reply ~from:3 ~txn_id:1 ~history:"DIVERGED") in
  check Alcotest.int "mismatch: no fast completion" 0 (List.length acts);
  check Alcotest.int "still outstanding" 1 (Client.outstanding c)

let test_client_cert_path () =
  let cfg = Config.make ~n:4 () in
  let c = Client.create cfg ~id:1000 in
  ignore (Client.submit c ~txn_id:1);
  (* Only 2f+1 = 3 replies arrive (one replica crashed). *)
  for from = 0 to 2 do
    ignore (Client.handle_message c (spec_reply ~from ~txn_id:1 ~history:"h"))
  done;
  (match Client.handle_timeout c ~txn_id:1 with
  | [ Client.Broadcast (Msg.Commit_cert { seq = 1; digest = "h"; responders; _ }) ] ->
    check Alcotest.int "certificate carries 2f+1 responders" 3 (List.length responders)
  | _ -> Alcotest.fail "expected commit-certificate broadcast");
  (* Local commits from 2f+1 replicas complete the request. *)
  let lc from = Msg.Local_commit { view = 0; seq = 1; client = 1000; from } in
  ignore (Client.handle_message c (lc 0));
  ignore (Client.handle_message c (lc 1));
  let acts = Client.handle_message c (lc 2) in
  Alcotest.(check bool) "2f+1 local commits complete" true
    (List.exists (function Client.Complete { fast = false; _ } -> true | _ -> false) acts)

let test_client_insufficient_replies_retransmit () =
  let cfg = Config.make ~n:4 () in
  let c = Client.create cfg ~id:1000 in
  ignore (Client.submit c ~txn_id:1);
  ignore (Client.handle_message c (spec_reply ~from:0 ~txn_id:1 ~history:"h"));
  match Client.handle_timeout c ~txn_id:1 with
  | [ Client.Retransmit 1 ] -> ()
  | _ -> Alcotest.fail "expected retransmission below 2f+1"

let prop_zyz_agreement_random_order =
  QCheck.Test.make ~name:"zyzzyva: agreement under random interleavings" ~count:25
    QCheck.(pair (int_range 1 15) (int_bound 10_000))
    (fun (batches, seed) ->
      let t = Testkit.make_zyz ~rng_seed:(Int64.of_int (seed + 1)) () in
      for i = 1 to batches do
        ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
      done;
      Testkit.run t;
      Testkit.assert_agreement ~expect:batches t;
      true)

let () =
  Alcotest.run "zyzzyva"
    [
      ( "replica",
        [
          Alcotest.test_case "speculative execution" `Quick test_speculative_execution;
          Alcotest.test_case "histories agree" `Quick test_histories_agree;
          Alcotest.test_case "history binds order" `Quick test_history_depends_on_order;
          Alcotest.test_case "out-of-order buffering" `Quick test_out_of_order_order_requests_buffered;
          Alcotest.test_case "forged history claim never speculates" `Quick
            test_forged_history_claim_not_executed;
          Alcotest.test_case "non-primary order-request ignored" `Quick
            test_order_request_from_non_primary_ignored;
          Alcotest.test_case "checkpoint + late certificates" `Quick test_checkpoint_prunes_histories;
          Alcotest.test_case "fill-hole sub-protocol" `Quick test_fill_hole;
          Alcotest.test_case "fill-hole: only the primary answers" `Quick
            test_fill_hole_only_primary_answers;
        ] );
      ( "commit certificates",
        [
          Alcotest.test_case "acked when history matches" `Quick test_commit_cert_acked;
          Alcotest.test_case "forged history rejected" `Quick test_commit_cert_wrong_history_rejected;
          Alcotest.test_case "early certificate buffered" `Quick
            test_commit_cert_before_execution_buffered;
        ] );
      ( "faults",
        [ Alcotest.test_case "crash blocks only the fast path" `Quick test_crash_blocks_fast_path_only ] );
      ( "client",
        [
          Alcotest.test_case "fast path at 3f+1" `Quick test_client_fast_path;
          Alcotest.test_case "history mismatch blocks fast path" `Quick
            test_client_mismatched_history_blocks_fast_path;
          Alcotest.test_case "commit-certificate path" `Quick test_client_cert_path;
          Alcotest.test_case "retransmit below 2f+1" `Quick test_client_insufficient_replies_retransmit;
        ] );
      ("properties", [ qtest prop_zyz_agreement_random_order ]);
    ]

(* Recovery tests: checkpoint-driven state transfer in the DES cluster
   (mid-run crash + rejoin, in-memory and durable), durable crash-replay
   resume across two cluster lifetimes over the same data directory, and a
   qcheck equivalence property on the real-cores local runtime — under
   random crash/recover schedules, a durable cluster ends bit-equal to a
   never-faulted reference, and its chains survive a full restart. *)

module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Nemesis = Rdb_core.Nemesis
module Rt = Rdb_core.Local_runtime
module Ledger = Rdb_chain.Ledger
module Mem_store = Rdb_storage.Mem_store
module Sim = Rdb_des.Sim

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdb_recovery_test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---- DES cluster: crash + recover -> state transfer ----------------------- *)

let faulted =
  Params.default
  |> Params.with_clients 2_000
  |> Params.with_client_timeout (Sim.ms 200.0)
  |> Params.with_view_timeout (Sim.ms 100.0)
  |> Params.with_windows ~warmup:(Sim.seconds 0.2) ~measure:(Sim.seconds 0.8)

let victim = faulted.Params.n - 1 (* a backup: replica 0 leads view 0 *)

let crash_recover p =
  Params.with_nemesis
    [
      Nemesis.at_ms 300.0 (Nemesis.Crash victim);
      Nemesis.at_ms 600.0 (Nemesis.Recover victim);
    ]
    p

let assert_caught_up c (m : Metrics.t) =
  let f = m.Metrics.faults in
  Alcotest.(check bool) "state transfer installed" true (f.Metrics.state_transfers >= 1);
  Alcotest.(check bool) "catch-up time recorded" true (f.Metrics.time_to_catch_up_s <> None);
  Alcotest.(check bool) "victim reached current height" true (Cluster.ledger_gap c victim <= 1);
  Alcotest.(check bool) "cluster made progress" true (Cluster.ledger_height c victim > 0);
  match Cluster.check_safety c with Ok () -> () | Error e -> Alcotest.fail e

let test_state_transfer_catches_up () =
  let c = Cluster.create (crash_recover faulted) in
  assert_caught_up c (Cluster.measure c)

let test_state_transfer_durable () =
  let c = Cluster.create (crash_recover (Params.with_durable true faulted)) in
  assert_caught_up c (Cluster.measure c)

let test_healthy_run_no_transfers () =
  let m = Cluster.run faulted in
  check Alcotest.int "no transfers in a healthy run" 0 m.Metrics.faults.Metrics.state_transfers

(* Two cluster lifetimes over one data directory: the second reopens the
   durable stores (crash replay truncates each replica's unagreed tail
   back to the last stable flush, so all four resume at the same
   quorum-agreed point) and resumes ordering past it. *)
let test_durable_crash_replay_resume () =
  with_temp_dir (fun dir ->
      let p =
        faulted |> Params.with_durable true |> Params.with_data_dir (Some dir)
        |> Params.with_windows ~warmup:faulted.Params.warmup ~measure:(Sim.seconds 0.5)
      in
      let m1 = Cluster.run p in
      Alcotest.(check bool) "first lifetime appended blocks" true (m1.Metrics.ledger_blocks > 0);
      let c2 = Cluster.create (Params.with_seed 0x524553554D45L p) in
      let resumed_at = Cluster.ledger_height c2 0 in
      Alcotest.(check bool) "second lifetime resumes from persisted tip" true (resumed_at > 0);
      let _m2 = Cluster.measure c2 in
      Alcotest.(check bool) "chain advanced past the resume point" true
        (Cluster.ledger_height c2 0 > resumed_at);
      match Cluster.check_safety c2 with Ok () -> () | Error e -> Alcotest.fail e)

(* ---- qcheck: durable-restore equivalence on the real-cores runtime -------- *)

let apply ~replica:_ store ~client ~payload =
  Mem_store.put store (Printf.sprintf "%d:%s" client payload) "v";
  "ok"

(* A schedule is a list of small ints interpreted as a fault/submission
   script: most steps submit one request to BOTH runtimes, the rest crash a
   backup (at most one down at a time, f = 1), recover it, or just drain.
   Each recover is followed by enough traffic to cross a checkpoint
   boundary before the next fault: state transfer serves from *stable*
   checkpoints, and stabilising one takes 2f+1 executing replicas — with
   n = 4 a second fault while the first laggard is still behind leaves
   only two, and no retransmission path exists below the checkpoint
   horizon (the classic PBFT water-mark window, which this runtime does
   not model). *)
let arb_script =
  QCheck.(list_of_size (QCheck.Gen.int_range 15 50) (int_bound 9))

let prop_durable_matches_reference =
  QCheck.Test.make ~name:"recovery: durable crash/recover cluster matches reference" ~count:200
    arb_script
    (fun script ->
      with_temp_dir (fun dir ->
          let cfg = { Rt.default_config with Rt.batch_size = 1; checkpoint_interval = 3 } in
          let reference = Rt.create ~config:cfg ~apply () in
          let subject = Rt.create ~config:{ cfg with Rt.durable_dir = Some dir } ~apply () in
          let n = ref 0 in
          let crashed = ref None in
          let submit_both () =
            incr n;
            let payload = Printf.sprintf "p%d" !n in
            ignore (Rt.submit reference ~client:1 ~payload);
            ignore (Rt.submit subject ~client:1 ~payload);
            Rt.run reference;
            Rt.run subject
          in
          (* Traffic past a checkpoint boundary: stabilises a checkpoint the
             rejoiner's transfer can be served from, then lets it re-converge. *)
          let heal_window () =
            for _ = 1 to (2 * cfg.Rt.checkpoint_interval) + 1 do
              submit_both ()
            done
          in
          List.iter
            (fun c ->
              if c <= 5 then submit_both ()
              else if c = 6 then (
                match !crashed with
                | None ->
                  let r = 1 + (!n mod (cfg.Rt.n - 1)) in
                  Rt.crash subject r;
                  crashed := Some r
                | Some _ -> ())
              else if c = 7 then (
                match !crashed with
                | Some r ->
                  Rt.recover subject r;
                  Rt.run subject;
                  crashed := None;
                  heal_window ()
                | None -> ())
              else begin
                Rt.run reference;
                Rt.run subject
              end)
            script;
          (match !crashed with
          | Some r ->
            Rt.recover subject r;
            crashed := None
          | None -> ());
          heal_window ();
          Rt.run reference;
          Rt.run subject;
          (* Equivalence with the never-faulted reference. *)
          (match Rt.verify subject with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "subject diverged internally: %s" e);
          let ref_state = Mem_store.digest (Rt.store reference 0) in
          let ref_chain = Ledger.cumulative_digest (Rt.ledger reference 0) in
          for i = 0 to cfg.Rt.n - 1 do
            if not (String.equal (Mem_store.digest (Rt.store subject i)) ref_state) then
              QCheck.Test.fail_reportf "replica %d state differs from reference" i;
            if not (String.equal (Ledger.cumulative_digest (Rt.ledger subject i)) ref_chain) then
              QCheck.Test.fail_reportf "replica %d chain differs from reference" i;
            if Rt.applied subject i <> Rt.applied reference 0 then
              QCheck.Test.fail_reportf "replica %d applied %d, reference %d" i
                (Rt.applied subject i) (Rt.applied reference 0)
          done;
          (* Durable restore: flush, shut the subject down, reopen the same
             directory — every chain must come back bit-equal. *)
          for i = 0 to cfg.Rt.n - 1 do
            let l = Rt.ledger subject i in
            Ledger.checkpoint l ~seq:(Ledger.next_seq l - 1) ~state_digest:"final"
          done;
          Rt.close subject;
          let restored = Rt.create ~config:{ cfg with Rt.durable_dir = Some dir } ~apply () in
          for i = 0 to cfg.Rt.n - 1 do
            if not (String.equal (Ledger.cumulative_digest (Rt.ledger restored i)) ref_chain)
            then QCheck.Test.fail_reportf "replica %d chain changed across restart" i
          done;
          Rt.close restored;
          true))

let () =
  Alcotest.run "recovery"
    [
      ( "state-transfer",
        [
          Alcotest.test_case "crash + recover catches up" `Quick test_state_transfer_catches_up;
          Alcotest.test_case "crash + recover catches up (durable)" `Quick
            test_state_transfer_durable;
          Alcotest.test_case "healthy run needs none" `Quick test_healthy_run_no_transfers;
          Alcotest.test_case "durable crash-replay resume" `Quick
            test_durable_crash_replay_resume;
        ] );
      ("equivalence", [ qtest prop_durable_matches_reference ]);
    ]

(* Byzantine-nemesis tests: replicas that lie, attacked from the network
   interposition layer, defended at the consensus cores' receive paths.

   Deterministic regressions pin one strategy each: forged MACs are
   rejected at full price and never enter the verify-sharing cache,
   equivocation leaves counted evidence at the pivot replica, view-change
   spam is clipped by the per-sender rate limit, selective silence is
   survivable (and distinct from a crash), and a corrupting Zyzzyva
   primary collapses the fast path to the certificate path while PBFT
   shrugs.  The qcheck properties throw random byzantine schedules — at
   the model's f = (n-1)/3 attacker bound — at all three protocols and
   check safety: no two honest replicas commit different batches at the
   same height, and every retained ledger verifies. *)

open Rdb_core
module Sim = Rdb_des.Sim

let qtest p = QCheck_alcotest.to_alcotest p

(* Tiny and fast, with the liveness loop enabled (same base as
   test_faults). *)
let faulty =
  Params.default
  |> Params.with_n 4
  |> Params.with_clients 400
  |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
  |> Params.with_batch_size 20
  |> Params.map_consensus (fun c ->
         { c with Params.Consensus.max_inflight_batches = 16; checkpoint_txns = 400 })
  |> Params.with_client_timeout (Sim.ms 40.0)
  |> Params.with_view_timeout (Sim.ms 30.0)
  |> Params.with_windows ~warmup:(Sim.seconds 0.2) ~measure:(Sim.seconds 0.8)

let zyz = Params.with_protocol Params.Zyzzyva faulty

let multi = Params.with_instances 4 faulty

let check_safe c =
  match Cluster.check_safety c with Ok () -> () | Error e -> Alcotest.fail e

(* ---- forged MACs: rejected, counted, never cached -------------------------- *)

let test_forged_macs_rejected () =
  (* Backup 1 forges the MAC on every protocol message it sends.  Its
     prepares/commits/checkpoints are all rejected at the receivers — yet
     PBFT's quorums only need 2f/2f+1 of n, so the three honest replicas
     keep committing at full speed: the paper's graceful degradation under
     a single liar.  Rejection happens before the verify-sharing layer:
     only successful verifications are memoized, so none of the forged
     traffic ever lands in a cache (a cached forgery would let its
     retransmitted copy skip verification — the exact laundering the
     receive path must prevent). *)
  let p =
    Params.with_nemesis
      (Nemesis.corrupt_mac_window ~from_:(Sim.ms 100.0) ~until:(Sim.seconds 2.0) 1 1.0)
      faulty
  in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  Alcotest.(check bool)
    (Printf.sprintf "forgeries rejected (%d)" (Cluster.rejected_forgeries c))
    true
    (Cluster.rejected_forgeries c > 100);
  Alcotest.(check int) "counter surfaces in metrics" (Cluster.rejected_forgeries c)
    m.Metrics.faults.Metrics.rejected_forgeries;
  Alcotest.(check int) "no view change needed" 0 m.Metrics.faults.Metrics.view_changes;
  Alcotest.(check bool) "pbft throughput survives one liar" true (m.Metrics.throughput_tps > 0.0);
  check_safe c

let test_corrupted_digests_rejected () =
  (* The primary corrupts the batch digest on 30% of its outbound
     proposals.  Victims pay the MAC verify plus the digest recompute,
     reject, and recover the batch later through vote-echo / fill-hole
     retransmission — degraded but live, and always safe. *)
  let p =
    Params.with_nemesis
      (Nemesis.corrupt_digest_window ~from_:(Sim.ms 100.0) ~until:(Sim.seconds 2.0) 0 0.3)
      faulty
  in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  Alcotest.(check bool)
    (Printf.sprintf "forgeries rejected (%d)" (Cluster.rejected_forgeries c))
    true
    (Cluster.rejected_forgeries c > 0);
  Alcotest.(check bool) "still committing" true (m.Metrics.throughput_tps > 0.0);
  check_safe c

(* ---- equivocation: evidence recorded, at most one branch commits ----------- *)

let test_equivocation_detected () =
  let p =
    Params.with_nemesis (Nemesis.equivocate_window ~from_:(Sim.ms 100.0) ~until:(Sim.ms 500.0) 0)
      faulty
  in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  (* The double-commit split needs overlapping prepare quorums, so the
     pivot replica sees both conflicting pre-prepares and counts them. *)
  Alcotest.(check bool)
    (Printf.sprintf "equivocations detected (%d)" (Cluster.equivocations_detected c))
    true
    (Cluster.equivocations_detected c > 0);
  Alcotest.(check int) "counter surfaces in metrics" (Cluster.equivocations_detected c)
    m.Metrics.faults.Metrics.equivocations_detected;
  Alcotest.(check bool) "cluster converges after the window" true
    (m.Metrics.throughput_tps > 0.0);
  check_safe c

(* ---- view-change spam: clipped by the per-sender rate limit ---------------- *)

let test_view_change_spam_bounded () =
  let p =
    Params.with_nemesis
      (Nemesis.view_change_spam_window ~from_:(Sim.ms 100.0) ~until:(Sim.ms 700.0) 3
         ~period:(Sim.ms 2.0))
      faulty
  in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  Alcotest.(check bool)
    (Printf.sprintf "spam suppressed (%d)" (Cluster.vc_spam_suppressed c))
    true
    (Cluster.vc_spam_suppressed c > 0);
  Alcotest.(check int) "counter surfaces in metrics" (Cluster.vc_spam_suppressed c)
    m.Metrics.faults.Metrics.vc_spam_suppressed;
  (* One spammer is below the f+1 join threshold: no honest replica ever
     joins a fabricated view change, so the view never moves. *)
  Alcotest.(check int) "spam never triggers a view change" 0
    m.Metrics.faults.Metrics.view_changes;
  Alcotest.(check bool) "throughput unharmed" true (m.Metrics.throughput_tps > 0.0);
  check_safe c

(* ---- selective silence: distinct from a crash ------------------------------ *)

let test_silence_is_not_a_crash () =
  (* Backup 1 goes dead towards the primary only, while staying perfectly
     live towards everyone else — a partial failure the crash machinery
     cannot express.  The cluster keeps its quorums and the suppressed
     sends are counted at the interposition layer. *)
  let p =
    Params.with_nemesis
      (Nemesis.silence_window ~from_:(Sim.ms 100.0) ~until:(Sim.ms 600.0) 1 [ 0 ])
      faulty
  in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  Alcotest.(check bool)
    (Printf.sprintf "sends suppressed (%d)" (Cluster.suppressed_sends c))
    true
    (Cluster.suppressed_sends c > 0);
  Alcotest.(check bool) "throughput survives" true (m.Metrics.throughput_tps > 0.0);
  check_safe c

(* ---- Zyzzyva: one corrupting primary collapses the fast path --------------- *)

let test_zyzzyva_fast_path_collapses () =
  let healthy = Cluster.run zyz in
  let attacked =
    Cluster.run
      (Params.with_nemesis
         (Nemesis.corrupt_mac_window ~from_:(Sim.ms 50.0) ~until:(Sim.seconds 2.0) 3 1.0)
         zyz)
  in
  let ratio (m : Metrics.t) =
    if m.Metrics.completed_txns = 0 then 0.0
    else float_of_int m.Metrics.fast_path_txns /. float_of_int m.Metrics.completed_txns
  in
  Alcotest.(check bool) "healthy zyzzyva rides the fast path" true (ratio healthy > 0.8);
  (* The fast path needs all n matching spec replies; with one backup
     forging every MAC it sends, the client never collects them and every
     batch closes via the commit-certificate slow path after the client
     timeout — the paper's Fig. 12 collapse under a single liar. *)
  Alcotest.(check bool)
    (Printf.sprintf "fast path collapsed (%.2f -> %.2f)" (ratio healthy) (ratio attacked))
    true
    (ratio attacked < 0.5 *. ratio healthy);
  Alcotest.(check bool) "cert path picks up the load" true
    (attacked.Metrics.cert_path_txns > 0);
  Alcotest.(check bool) "still completing" true (attacked.Metrics.throughput_tps > 0.0)

(* ---- multi-primary: per-instance attacks stay contained -------------------- *)

let test_multi_equivocation_contained () =
  let p =
    Params.with_nemesis (Nemesis.equivocate_window ~from_:(Sim.ms 100.0) ~until:(Sim.ms 500.0) 0)
      multi
  in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  Alcotest.(check bool)
    (Printf.sprintf "equivocations detected (%d)" (Cluster.equivocations_detected c))
    true
    (Cluster.equivocations_detected c > 0);
  Alcotest.(check bool) "the three honest instances keep the merge moving" true
    (m.Metrics.throughput_tps > 0.0);
  check_safe c

(* ---- qcheck: safety under random byzantine schedules ----------------------- *)

(* Random schedules mix the benign faults of {!Testkit.gen_schedule} with
   one byzantine attacker window — the f = (n-1)/3 bound for n = 4. *)
let arb = Testkit.arb_byzantine_schedule

let prop_safety protocol_name base =
  QCheck.Test.make
    ~name:(protocol_name ^ ": safety under random byzantine schedules")
    ~count:200
    (QCheck.pair arb (QCheck.int_bound 10_000))
    (fun (nemesis, seed) ->
      let p =
        base
        |> Params.with_clients 150
        |> Params.with_batch_size 10
        |> Params.with_nemesis nemesis
        |> Params.with_seed (Int64.of_int (seed + 11))
        |> Params.with_client_timeout (Sim.ms 30.0)
        |> Params.with_view_timeout (Sim.ms 25.0)
      in
      let c = Cluster.create p in
      Cluster.start c;
      Sim.run ~until:(Sim.ms 700.0) (Cluster.sim c);
      match Cluster.check_safety c with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

let () =
  Alcotest.run "byzantine"
    [
      ( "strategies",
        [
          Alcotest.test_case "forged macs rejected, never cached" `Quick
            test_forged_macs_rejected;
          Alcotest.test_case "corrupted digests rejected" `Quick test_corrupted_digests_rejected;
          Alcotest.test_case "equivocation evidence recorded" `Quick test_equivocation_detected;
          Alcotest.test_case "view-change spam bounded" `Quick test_view_change_spam_bounded;
          Alcotest.test_case "silence is not a crash" `Quick test_silence_is_not_a_crash;
          Alcotest.test_case "zyzzyva fast path collapses under one liar" `Quick
            test_zyzzyva_fast_path_collapses;
          Alcotest.test_case "multi-primary equivocation contained" `Quick
            test_multi_equivocation_contained;
        ] );
      ( "safety",
        [
          qtest (prop_safety "pbft" faulty);
          qtest (prop_safety "zyzzyva" zyz);
          qtest (prop_safety "multi-pbft" multi);
        ] );
    ]

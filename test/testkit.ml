(* Shared harness for driving the pure consensus cores in tests: an
   in-memory "network" with controllable delivery order, crash injection,
   and an execution recorder.  Because the cores are pure state machines,
   the harness can deliver messages FIFO, in random permuted order, or with
   duplicates, and then assert global safety properties. *)

module Msg = Rdb_consensus.Message
module Action = Rdb_consensus.Action
module Config = Rdb_consensus.Config
module Pbft = Rdb_consensus.Pbft_replica
module Zyz = Rdb_consensus.Zyzzyva_replica
module Hs = Rdb_consensus.Hotstuff_replica
module Rng = Rdb_des.Rng

type core = P of Pbft.t | Z of Zyz.t | H of Hs.t

type t = {
  cfg : Config.t;
  cores : core array;
  queue : (int * Action.t) Queue.t;  (** (origin replica, action) *)
  mutable crashed : int list;
  executed : (int, (int * string) list) Hashtbl.t;  (** replica -> (seq, digest) rev list *)
  client_inbox : (int * Msg.t) list ref;  (** (from replica, message) *)
  mutable delivered : int;
  rng : Rng.t option;  (** when set, pending actions are shuffled *)
  mutable duplicate : bool;  (** when set, every message is delivered twice *)
}

let make_pbft ?(n = 4) ?(checkpoint_interval = 100) ?rng_seed () =
  let cfg = Config.make ~checkpoint_interval ~n () in
  {
    cfg;
    cores = Array.init n (fun id -> P (Pbft.create cfg ~id));
    queue = Queue.create ();
    crashed = [];
    executed = Hashtbl.create 8;
    client_inbox = ref [];
    delivered = 0;
    rng = Option.map Rng.create rng_seed;
    duplicate = false;
  }

let make_zyz ?(n = 4) ?(checkpoint_interval = 100) ?rng_seed () =
  let cfg = Config.make ~checkpoint_interval ~n () in
  {
    cfg;
    cores = Array.init n (fun id -> Z (Zyz.create cfg ~id));
    queue = Queue.create ();
    crashed = [];
    executed = Hashtbl.create 8;
    client_inbox = ref [];
    delivered = 0;
    rng = Option.map Rng.create rng_seed;
    duplicate = false;
  }

let make_hotstuff ?(n = 4) ?(checkpoint_interval = 100) ?rng_seed () =
  let cfg = Config.make ~checkpoint_interval ~n () in
  {
    cfg;
    cores = Array.init n (fun id -> H (Hs.create cfg ~id));
    queue = Queue.create ();
    crashed = [];
    executed = Hashtbl.create 8;
    client_inbox = ref [];
    delivered = 0;
    rng = Option.map Rng.create rng_seed;
    duplicate = false;
  }

let crash t id = t.crashed <- id :: t.crashed

let handle t id msg =
  match t.cores.(id) with
  | P c -> Pbft.handle_message c msg
  | Z c -> Zyz.handle_message c msg
  | H c -> Hs.handle_message c msg

let record_exec t id (b : Msg.batch) =
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.executed id) in
  Hashtbl.replace t.executed id ((b.Msg.seq, b.Msg.digest) :: prev);
  match t.cores.(id) with
  | P c ->
    Pbft.handle_executed c ~seq:b.Msg.seq
      ~state_digest:(Printf.sprintf "state-%d" b.Msg.seq)
      ~result:"ok"
  | Z c ->
    Zyz.handle_executed c ~seq:b.Msg.seq
      ~state_digest:(Printf.sprintf "state-%d" b.Msg.seq)
      ~result:"ok"
  | H c ->
    Hs.handle_executed c ~seq:b.Msg.seq
      ~state_digest:(Printf.sprintf "state-%d" b.Msg.seq)
      ~result:"ok"

(* Execute actions are applied synchronously at their replica: the cores
   emit them in strict sequence order, and the shuffled queue below must not
   reorder them (execution order is a local property, not a network one). *)
let rec push t origin actions =
  List.iter
    (fun a ->
      match a with
      | Action.Execute b ->
        if not (List.mem origin t.crashed) then push t origin (record_exec t origin b)
      | _ -> Queue.push (origin, a) t.queue)
    actions

(* Drains the action queue until quiescence.  With [rng] set, the queue is
   reshuffled between steps, exercising arbitrary delivery interleavings
   (consensus messages commute up to safety). *)
let run ?(max_steps = 1_000_000) t =
  let steps = ref 0 in
  let reshuffle () =
    match t.rng with
    | None -> ()
    | Some rng ->
      let items = Array.of_seq (Queue.to_seq t.queue) in
      Rng.shuffle rng items;
      Queue.clear t.queue;
      Array.iter (fun x -> Queue.push x t.queue) items
  in
  while (not (Queue.is_empty t.queue)) && !steps < max_steps do
    incr steps;
    if !steps mod 17 = 0 then reshuffle ();
    let origin, act = Queue.pop t.queue in
    if not (List.mem origin t.crashed) then begin
      match act with
      | Action.Broadcast m ->
        Array.iteri
          (fun id _ ->
            if id <> origin && not (List.mem id t.crashed) then begin
              t.delivered <- t.delivered + 1;
              push t id (handle t id m);
              if t.duplicate then push t id (handle t id m)
            end)
          t.cores
      | Action.Send (dst, m) ->
        if not (List.mem dst t.crashed) then begin
          t.delivered <- t.delivered + 1;
          push t dst (handle t dst m);
          if t.duplicate then push t dst (handle t dst m)
        end
      | Action.Send_client (_, m) -> t.client_inbox := (origin, m) :: !(t.client_inbox)
      | Action.Execute b -> push t origin (record_exec t origin b)
      | Action.Stable_checkpoint _ -> ()
    end
  done;
  if !steps >= max_steps then failwith "Testkit.run: did not quiesce"

let propose t id ~reqs ~digest =
  let batch, actions =
    match t.cores.(id) with
    | P c -> Pbft.propose c ~reqs ~digest ~wire_bytes:(100 * List.length reqs)
    | Z c -> Zyz.propose c ~reqs ~digest ~wire_bytes:(100 * List.length reqs)
    | H c -> Hs.propose c ~reqs ~digest ~wire_bytes:(100 * List.length reqs)
  in
  push t id actions;
  batch

(* A convenience request. *)
let req ?(client = 1000) txn_id = { Msg.client; txn_id }

let executions t id = List.rev (Option.value ~default:[] (Hashtbl.find_opt t.executed id))

(* ---- random nemesis schedules --------------------------------------------- *)

(* The schedule distributions themselves live in {!Nemesis.Gen} (one source
   shared with the fault-campaign harness and the examples); these wrappers
   re-export them as QCheck generators by drawing a deterministic Rng seed
   from QCheck's random state.  Shared by the fault-injection safety
   property (test_faults), the cache-neutrality property (test_hotpath) and
   the byzantine safety properties (test_byzantine). *)

module Nemesis = Rdb_core.Nemesis
module Sim = Rdb_des.Sim

let gen_of_rng f : Nemesis.schedule QCheck.Gen.t =
 fun st -> f ~n:4 (Rng.create (Random.State.int64 st Int64.max_int))

(* A random fault schedule mixes primary/backup crashes, a partition
   window, a loss window, a duplication window and extra jitter, all inside
   the first 400 ms of a sub-second run. *)
let gen_schedule = gen_of_rng Nemesis.Gen.random_benign

(* A random byzantine attacker window (n = 4 context): one replica lies in
   one of the five adversarial modes for a bounded interval, then returns
   to honesty.  A single schedule only ever names one attacker, so the
   f <= (n-1)/3 bound {!Nemesis.validate} enforces holds by construction. *)
let gen_byzantine = gen_of_rng Nemesis.Gen.random_attack

(* {!gen_schedule} plus an optional byzantine attacker window: the full
   fault model the cluster-level safety properties run under. *)
let gen_byzantine_schedule = gen_of_rng Nemesis.Gen.random_schedule

let print_schedule s =
  String.concat "; "
    (List.map
       (fun (e : Nemesis.entry) ->
         Printf.sprintf "%.0fms %s" (Sim.to_seconds e.Nemesis.at *. 1e3)
           (Nemesis.describe e.Nemesis.fault))
       s)

let arb_schedule = QCheck.make gen_schedule ~print:print_schedule

let arb_byzantine_schedule = QCheck.make gen_byzantine_schedule ~print:print_schedule

(* Safety: all non-crashed replicas executed the same sequence of
   (seq, digest) pairs, gap-free from 1. *)
let assert_agreement ?(expect = -1) t =
  let reference = ref None in
  Array.iteri
    (fun id _ ->
      if not (List.mem id t.crashed) then begin
        let ex = executions t id in
        List.iteri
          (fun i (seq, _) ->
            if seq <> i + 1 then Alcotest.failf "replica %d: gap at position %d (seq %d)" id i seq)
          ex;
        match !reference with
        | None -> reference := Some ex
        | Some r ->
          if r <> ex then Alcotest.failf "replica %d diverged from reference execution" id
      end)
    t.cores;
  match (!reference, expect) with
  | Some r, e when e >= 0 ->
    if List.length r <> e then
      Alcotest.failf "expected %d executions, got %d" e (List.length r)
  | _ -> ()

(* Multi-primary parallel consensus: the k-way merge, the Multi_pbft
   translation layer, and the cluster deployment.

   Three layers of evidence that "out-of-order consensus, in-order
   execution" survives the generalization from one ordering instance to k:

   - Merge unit + qcheck suite: random interleavings of per-instance commit
     streams always drain in global order; checkpoint catch-up ({!advance})
     skips exactly the declared holes and nothing else.
   - Pure-core harness: 4 replicas running k = 4 instances execute the same
     batches in the same global order as a classic k = 1 deployment, under
     FIFO and randomly shuffled delivery alike.
   - Cluster: safety under 200+ random nemesis schedules at instances = 4,
     and a deterministic regression that crashes one instance's primary and
     checks only that instance view-changes while completions resume. *)

open Rdb_core
module Sim = Rdb_des.Sim
module Rng = Rdb_des.Rng
module Msg = Rdb_consensus.Message
module Action = Rdb_consensus.Action
module Config = Rdb_consensus.Config
module Multi = Rdb_consensus.Multi_pbft
module Merge = Rdb_replica.Exec_queue.Merge

let qtest p = QCheck_alcotest.to_alcotest p

(* ---- Merge: unit suite ---------------------------------------------------- *)

let test_merge_blocks_then_drains () =
  let m = Merge.create ~instances:3 in
  Alcotest.(check int) "cursor starts at 1" 1 (Merge.next_seq m);
  Alcotest.(check (result unit string)) "inst 2 commits first" (Ok ()) (Merge.offer m ~seq:3 "c");
  Alcotest.(check (option string)) "blocked on inst 0" None (Merge.poll m);
  Alcotest.(check int) "waiting on instance 0" 0 (Merge.waiting_instance m);
  Alcotest.(check int) "inst 2 ran ahead by one" 1 (Merge.pending_of m 2);
  Alcotest.(check (result unit string)) "inst 0 commits" (Ok ()) (Merge.offer m ~seq:1 "a");
  Alcotest.(check (option string)) "seq 1" (Some "a") (Merge.poll m);
  Alcotest.(check (option string)) "blocked on inst 1" None (Merge.poll m);
  Alcotest.(check int) "waiting on instance 1" 1 (Merge.waiting_instance m);
  Alcotest.(check (result unit string)) "inst 1 commits" (Ok ()) (Merge.offer m ~seq:2 "b");
  Alcotest.(check (option string)) "seq 2" (Some "b") (Merge.poll m);
  Alcotest.(check (option string)) "seq 3" (Some "c") (Merge.poll m);
  Alcotest.(check (option string)) "drained" None (Merge.poll m);
  Alcotest.(check int) "nothing pending" 0 (Merge.pending m)

let test_merge_rejects_out_of_order () =
  let m = Merge.create ~instances:2 in
  Alcotest.(check (result unit string)) "first slot ok" (Ok ()) (Merge.offer m ~seq:1 "a");
  (match Merge.offer m ~seq:1 "dup" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate offer must be rejected");
  (match Merge.offer m ~seq:5 "skip" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-order offer (skipping local slot) must be rejected")

let test_merge_advance_skips_holes () =
  (* k = 3: instance 0 owns 1, 4, 7.  It adopts a checkpoint covering its
     first three slots ([advance] past 7); the merge must then deliver the
     other instances' slots 2, 3, 5, 6, 8, 9 without blocking on 1/4/7. *)
  let m = Merge.create ~instances:3 in
  Merge.advance m ~inst:0 ~seq:7;
  List.iter
    (fun s ->
      Alcotest.(check (result unit string))
        (Printf.sprintf "offer %d" s)
        (Ok ())
        (Merge.offer m ~seq:s (string_of_int s)))
    [ 2; 3; 5; 6; 8; 9 ];
  let drained = ref [] in
  let rec drain () =
    match Merge.poll m with
    | Some v ->
      drained := v :: !drained;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string))
    "skipped slots are silently passed over" [ "2"; "3"; "5"; "6"; "8"; "9" ]
    (List.rev !drained);
  (* The cursor is now at 10 = instance 0's next live slot. *)
  Alcotest.(check int) "cursor past the skipped region" 10 (Merge.next_seq m);
  Alcotest.(check (result unit string)) "instance 0 resumes" (Ok ()) (Merge.offer m ~seq:10 "x");
  Alcotest.(check (option string)) "and drains" (Some "x") (Merge.poll m)

let test_merge_single_instance_is_fifo () =
  let m = Merge.create ~instances:1 in
  for s = 1 to 5 do
    match Merge.offer m ~seq:s s with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done;
  for s = 1 to 5 do
    Alcotest.(check (option int)) (Printf.sprintf "seq %d" s) (Some s) (Merge.poll m)
  done

(* Random interleavings: feed global sequence numbers 1..m through k
   streams in arbitrary cross-instance order (per-instance order is fixed,
   as consensus guarantees), polling at random moments.  The drained values
   must always be exactly 1..m in order. *)
let prop_merge_random_interleavings =
  QCheck.Test.make ~name:"merge: random interleavings drain in global order" ~count:500
    QCheck.(triple (int_range 1 6) (int_range 0 60) small_int)
    (fun (k, m, seed) ->
      let merge = Merge.create ~instances:k in
      let rng = Rng.create (Int64.of_int (seed + 11)) in
      (* Next local slot each instance will offer, as a global seq. *)
      let next = Array.init k (fun i -> i + 1) in
      let drained = ref [] in
      let drain () =
        let rec go () =
          match Merge.poll merge with
          | Some v ->
            drained := v :: !drained;
            go ()
          | None -> ()
        in
        go ()
      in
      let live () = List.filter (fun i -> next.(i) <= m) (List.init k Fun.id) in
      let rec feed () =
        match live () with
        | [] -> ()
        | is ->
          let i = List.nth is (Rng.int rng (List.length is)) in
          (match Merge.offer merge ~seq:next.(i) next.(i) with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_report e);
          next.(i) <- next.(i) + k;
          if Rng.bool rng then drain ();
          feed ()
      in
      feed ();
      drain ();
      List.rev !drained = List.init m (fun i -> i + 1) && Merge.pending merge = 0)

(* ---- pure-core harness: Multi_pbft over a synchronous network ------------- *)

(* Mirrors {!Testkit} for the multi-primary core: an action queue tagged
   with (origin, instance), optional random reshuffling, and an execution
   recorder keyed by the {e global} sequence numbers the translation layer
   re-stamps onto [Execute] actions. *)
module Mkit = struct
  type t = {
    cores : Multi.t array;
    queue : (int * Multi.routed) Queue.t;
    executed : (int, (int * string) list) Hashtbl.t;
    rng : Rng.t option;
  }

  let make ?(n = 4) ?(k = 4) ?(checkpoint_interval = 100) ?rng_seed () =
    let cfg = Config.make ~checkpoint_interval ~n () in
    {
      cores = Array.init n (fun id -> Multi.create cfg ~instances:k ~id);
      queue = Queue.create ();
      executed = Hashtbl.create 8;
      rng = Option.map Rng.create rng_seed;
    }

  let record_exec t id (b : Msg.batch) =
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.executed id) in
    Hashtbl.replace t.executed id ((b.Msg.seq, b.Msg.digest) :: prev);
    Multi.handle_executed t.cores.(id) ~seq:b.Msg.seq
      ~state_digest:(Printf.sprintf "state-%d" b.Msg.seq)
      ~result:"ok"

  (* Execute actions leave the merge in strict global order and must be
     applied at their replica immediately (execution order is local). *)
  let rec push t origin (routed : Multi.routed list) =
    List.iter
      (fun (r : Multi.routed) ->
        match r.Multi.act with
        | Action.Execute b -> push t origin (record_exec t origin b)
        | _ -> Queue.push (origin, r) t.queue)
      routed

  let run ?(max_steps = 1_000_000) t =
    let steps = ref 0 in
    let reshuffle () =
      match t.rng with
      | None -> ()
      | Some rng ->
        let items = Array.of_seq (Queue.to_seq t.queue) in
        Rng.shuffle rng items;
        Queue.clear t.queue;
        Array.iter (fun x -> Queue.push x t.queue) items
    in
    while (not (Queue.is_empty t.queue)) && !steps < max_steps do
      incr steps;
      if !steps mod 17 = 0 then reshuffle ();
      let origin, { Multi.inst; act } = Queue.pop t.queue in
      match act with
      | Action.Broadcast m ->
        Array.iteri
          (fun id core -> if id <> origin then push t id (Multi.handle_message core ~inst m))
          t.cores
      | Action.Send (dst, m) -> push t dst (Multi.handle_message t.cores.(dst) ~inst m)
      | Action.Send_client _ | Action.Stable_checkpoint _ -> ()
      | Action.Execute b -> push t origin (record_exec t origin b)
    done;
    if !steps >= max_steps then failwith "Mkit.run: did not quiesce"

  (* Propose batch [j] (digest "d<j>") on instance [(j - 1) mod k] at that
     instance's view-0 primary — the same round-robin the global sequence
     space uses, so digest "d<j>" must land at global sequence number j. *)
  let propose_round_robin t m =
    let k = Multi.instances t.cores.(0) in
    let n = Array.length t.cores in
    for j = 1 to m do
      let inst = (j - 1) mod k in
      let primary = inst mod n in
      let _, routed =
        Multi.propose t.cores.(primary) ~inst
          ~reqs:[ { Msg.client = 1000; txn_id = j } ]
          ~digest:(Printf.sprintf "d%d" j) ~wire_bytes:100
      in
      push t primary routed
    done

  let executions t id = List.rev (Option.value ~default:[] (Hashtbl.find_opt t.executed id))
end

let expected_executions m = List.init m (fun i -> (i + 1, Printf.sprintf "d%d" (i + 1)))

let test_multi_core_fifo_matches_k1 () =
  let m = 12 in
  (* k = 4 multi-primary... *)
  let t4 = Mkit.make ~k:4 () in
  Mkit.propose_round_robin t4 m;
  Mkit.run t4;
  (* ...and the classic single instance over the same batches. *)
  let t1 = Mkit.make ~k:1 () in
  Mkit.propose_round_robin t1 m;
  Mkit.run t1;
  Alcotest.(check (list (pair int string)))
    "k=1 executes 1..12 in order" (expected_executions m) (Mkit.executions t1 0);
  Array.iteri
    (fun id _ ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "k=4 replica %d executes the same global order" id)
        (Mkit.executions t1 0) (Mkit.executions t4 id))
    t4.Mkit.cores

let prop_multi_core_shuffled_delivery =
  QCheck.Test.make ~name:"multi-core: global order survives shuffled delivery" ~count:60
    QCheck.(pair (int_range 1 4) small_int)
    (fun (k, seed) ->
      let m = 3 * k in
      let t = Mkit.make ~k ~rng_seed:(Int64.of_int (seed + 3)) () in
      Mkit.propose_round_robin t m;
      Mkit.run t;
      let expect = expected_executions m in
      Array.for_all (fun _ -> true) t.Mkit.cores
      && List.for_all
           (fun id -> Mkit.executions t id = expect)
           (List.init (Array.length t.Mkit.cores) Fun.id))

(* ---- cluster: multi-primary deployment ------------------------------------ *)

(* Same shape as test_faults' [faulty], with four consensus instances. *)
let multi_params =
  Params.default
  |> Params.with_n 4
  |> Params.with_instances 4
  |> Params.with_clients 400
  |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
  |> Params.with_batch_size 20
  |> Params.map_consensus (fun c ->
         { c with Params.Consensus.max_inflight_batches = 16; checkpoint_txns = 400 })
  |> Params.with_client_timeout (Sim.ms 40.0)
  |> Params.with_view_timeout (Sim.ms 30.0)
  |> Params.with_windows ~warmup:(Sim.seconds 0.2) ~measure:(Sim.seconds 0.8)

let test_cluster_multi_healthy () =
  let m = Cluster.run (Params.with_client_timeout 0 multi_params) in
  Alcotest.(check bool) "made progress" true (m.Metrics.throughput_tps > 0.0);
  Alcotest.(check int) "no view changes" 0 m.Metrics.faults.Metrics.view_changes

let test_cluster_multi_safety () =
  let c = Cluster.create multi_params in
  Cluster.start c;
  Sim.run ~until:(Sim.seconds 1.0) (Cluster.sim c);
  Alcotest.(check bool) "progress" true (Cluster.total_completed c > 0);
  (match Cluster.check_safety c with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (array int))
    "all four instances still at view 0" [| 0; 0; 0; 0 |] (Cluster.instance_views c)

let test_instance_primary_crash_recovers () =
  (* Crash the primary of instance 2 (replica 2 at view 0) mid-run: that
     instance view-changes, its siblings keep their view-0 primaries, and
     completions resume once the merge hole is plugged. *)
  let p =
    Params.with_nemesis (Nemesis.crash_instance_primary_at (Sim.ms 300.0) 2) multi_params
  in
  let c = Cluster.create p in
  Cluster.start c;
  let sim = Cluster.sim c in
  Sim.run ~until:(Sim.ms 300.0) sim;
  let before = Cluster.total_completed c in
  Alcotest.(check bool) "progress before the crash" true (before > 0);
  Sim.run ~until:(Sim.seconds 1.5) sim;
  let after = Cluster.total_completed c in
  let views = Cluster.instance_views c in
  Alcotest.(check bool)
    (Printf.sprintf "instance 2 view-changed (views = %s)"
       (String.concat "," (Array.to_list (Array.map string_of_int views))))
    true
    (views.(2) >= 1);
  Alcotest.(check int) "instance 0 undisturbed" 0 views.(0);
  Alcotest.(check int) "instance 1 undisturbed" 0 views.(1);
  Alcotest.(check int) "instance 3 undisturbed" 0 views.(3);
  Alcotest.(check bool)
    (Printf.sprintf "completions resumed (%d -> %d)" before after)
    true
    (after > before + (p.Params.clients / 2));
  (match Cluster.time_to_recovery c with
  | Some s -> Alcotest.(check bool) (Printf.sprintf "ttr %.3fs sane" s) true (s > 0.0 && s < 1.5)
  | None -> Alcotest.fail "no recovery recorded");
  match Cluster.check_safety c with Ok () -> () | Error e -> Alcotest.fail e

(* Safety under random nemesis schedules, instances = 4 — the multi-primary
   twin of test_faults' qcheck property (same generator, same budget). *)
let prop_multi_safety_under_faults =
  QCheck.Test.make ~name:"multi-primary: safety under random fault schedules" ~count:200
    (QCheck.pair Testkit.arb_schedule (QCheck.int_bound 10_000))
    (fun (nemesis, seed) ->
      let p =
        multi_params
        |> Params.with_clients 150
        |> Params.with_batch_size 10
        |> Params.with_nemesis nemesis
        |> Params.with_seed (Int64.of_int (seed + 7))
        |> Params.with_client_timeout (Sim.ms 30.0)
        |> Params.with_view_timeout (Sim.ms 25.0)
      in
      let c = Cluster.create p in
      Cluster.start c;
      Sim.run ~until:(Sim.ms 700.0) (Cluster.sim c);
      match Cluster.check_safety c with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

let () =
  Alcotest.run "multi"
    [
      ( "merge",
        [
          Alcotest.test_case "blocks on holes, drains in order" `Quick
            test_merge_blocks_then_drains;
          Alcotest.test_case "rejects out-of-order offers" `Quick test_merge_rejects_out_of_order;
          Alcotest.test_case "advance skips checkpoint holes" `Quick
            test_merge_advance_skips_holes;
          Alcotest.test_case "k=1 degenerates to FIFO" `Quick test_merge_single_instance_is_fifo;
          qtest prop_merge_random_interleavings;
        ] );
      ( "core",
        [
          Alcotest.test_case "k=4 executes the k=1 global order" `Quick
            test_multi_core_fifo_matches_k1;
          qtest prop_multi_core_shuffled_delivery;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "healthy multi-primary run" `Quick test_cluster_multi_healthy;
          Alcotest.test_case "safety + quiet views" `Quick test_cluster_multi_safety;
          Alcotest.test_case "instance primary crash: isolated view change + recovery" `Quick
            test_instance_primary_crash_recovers;
        ] );
      ("safety", [ qtest prop_multi_safety_under_faults ]);
    ]

(* HotStuff protocol-core tests: the linear three-phase normal case
   (votes to the leader only, certificates back), out-of-order and
   duplicated delivery, equivocation safety under digest-keyed vote
   pooling, checkpoint garbage collection, pacemaker-driven leader
   rotation, and — at the cluster level — safety under 200 random
   byzantine schedules (f <= (n-1)/3), durable close/reopen resume, and
   E = 4 parallel execution lanes. *)

module Msg = Rdb_consensus.Message
module Action = Rdb_consensus.Action
module Config = Rdb_consensus.Config
module Hs = Rdb_consensus.Hotstuff_replica
module Client = Rdb_consensus.Hotstuff_client
module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Nemesis = Rdb_core.Nemesis
module Sim = Rdb_des.Sim

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

let hs_core t id = match t.Testkit.cores.(id) with Testkit.H c -> c | _ -> assert false

(* ---- normal case ----------------------------------------------------------- *)

let test_normal_case () =
  let t = Testkit.make_hotstuff () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  Testkit.assert_agreement ~expect:1 t;
  let replies =
    List.filter (fun (_, m) -> match m with Msg.Reply _ -> true | _ -> false) !(t.Testkit.client_inbox)
  in
  check Alcotest.int "one reply per replica" 4 (List.length replies)

let test_multiple_batches_in_order () =
  let t = Testkit.make_hotstuff () in
  for i = 1 to 10 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:10 t

let test_interleaved_random_delivery () =
  for seed = 1 to 10 do
    let t = Testkit.make_hotstuff ~rng_seed:(Int64.of_int seed) () in
    for i = 1 to 20 do
      ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
    done;
    Testkit.run t;
    Testkit.assert_agreement ~expect:20 t
  done

let test_duplicate_messages_idempotent () =
  let t = Testkit.make_hotstuff () in
  t.Testkit.duplicate <- true;
  for i = 1 to 5 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:5 t

let test_non_leader_cannot_propose () =
  let t = Testkit.make_hotstuff () in
  let batch = Testkit.propose t 1 ~reqs:[ Testkit.req 1 ] ~digest:"d1" in
  Alcotest.(check bool) "backup propose refused" true (batch = None);
  Testkit.run t;
  Testkit.assert_agreement ~expect:0 t

(* The linearity itself: a backup answers a proposal with a Send to the
   leader, never a Broadcast — the all-to-all vote rounds are gone. *)
let test_votes_go_to_leader_only () =
  let t = Testkit.make_hotstuff () in
  let batch = { Msg.view = 0; seq = 1; digest = "d1"; reqs = [ Testkit.req 1 ]; wire_bytes = 1 } in
  let acts =
    Hs.handle_message (hs_core t 1)
      (Msg.Hs_proposal { view = 0; seq = 1; batch; parent = "genesis"; from = 0 })
  in
  List.iter
    (fun a ->
      match a with
      | Action.Send (0, Msg.Hs_vote { phase = 1; digest = "d1"; _ }) -> ()
      | Action.Broadcast _ -> Alcotest.fail "backup broadcast in the vote path"
      | _ -> Alcotest.fail "unexpected action answering a proposal")
    acts;
  check Alcotest.int "exactly one vote" 1 (List.length acts)

let test_backup_crash_tolerated () =
  let t = Testkit.make_hotstuff () in
  Testkit.crash t 3;
  for i = 1 to 5 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:5 t

let test_too_many_crashes_stall_no_divergence () =
  let t = Testkit.make_hotstuff () in
  Testkit.crash t 2;
  Testkit.crash t 3;
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  Testkit.assert_agreement ~expect:0 t

(* ---- equivocation: digest-keyed pooling splits the voters ------------------ *)

let test_equivocation_cannot_commit_two_values () =
  let t = Testkit.make_hotstuff () in
  let mk digest = { Msg.view = 0; seq = 1; digest; reqs = [ Testkit.req 1 ]; wire_bytes = 100 } in
  let prop digest = Msg.Hs_proposal { view = 0; seq = 1; batch = mk digest; parent = "genesis"; from = 0 } in
  (* Replicas 1 and 2 get digest A; replica 3 gets digest B.  Votes pool
     by (phase, digest) at the leader, so at most one digest can gather
     2f+1 = 3 (the equivocating leader's own vote included). *)
  Testkit.push t 1 (Hs.handle_message (hs_core t 1) (prop "A"));
  Testkit.push t 2 (Hs.handle_message (hs_core t 2) (prop "A"));
  Testkit.push t 3 (Hs.handle_message (hs_core t 3) (prop "B"));
  Testkit.run t;
  Array.iteri
    (fun id _ ->
      List.iter
        (fun (_, digest) ->
          if String.equal digest "B" then Alcotest.failf "replica %d executed minority digest" id)
        (Testkit.executions t id))
    t.Testkit.cores

let test_conflicting_proposal_counted () =
  let t = Testkit.make_hotstuff () in
  let core = hs_core t 1 in
  let mk digest = { Msg.view = 0; seq = 1; digest; reqs = [ Testkit.req 1 ]; wire_bytes = 1 } in
  let prop digest = Msg.Hs_proposal { view = 0; seq = 1; batch = mk digest; parent = "genesis"; from = 0 } in
  let a1 = Hs.handle_message core (prop "A") in
  Alcotest.(check bool) "first accepted (vote sent)" true
    (List.exists
       (function Action.Send (0, Msg.Hs_vote { digest = "A"; _ }) -> true | _ -> false)
       a1);
  let a2 = Hs.handle_message core (prop "B") in
  Alcotest.(check bool) "no vote for the conflicting digest" false
    (List.exists
       (function Action.Send (_, Msg.Hs_vote { digest = "B"; _ }) -> true | _ -> false)
       a2);
  check Alcotest.int "evidence counted" 1 (Hs.equivocations_detected core)

let test_wrong_view_or_sender_ignored () =
  let t = Testkit.make_hotstuff () in
  let core = hs_core t 1 in
  let batch = { Msg.view = 0; seq = 1; digest = "d"; reqs = [ Testkit.req 1 ]; wire_bytes = 1 } in
  check Alcotest.int "non-leader proposal dropped" 0
    (List.length
       (Hs.handle_message core (Msg.Hs_proposal { view = 0; seq = 1; batch; parent = "genesis"; from = 2 })));
  check Alcotest.int "future view dropped" 0
    (List.length
       (Hs.handle_message core
          (Msg.Hs_proposal
             { view = 3; seq = 1; batch = { batch with Msg.view = 3 }; parent = "genesis"; from = 3 })));
  (* An undersized certificate (fewer than 2f+1 distinct senders) is
     ignored no matter who signed it. *)
  check Alcotest.int "undersized qc dropped" 0
    (List.length
       (Hs.handle_message core
          (Msg.Hs_qc { view = 0; seq = 1; phase = 1; digest = "d"; senders = [ 0; 0; 0 ]; from = 0 })))

(* ---- checkpoints ------------------------------------------------------------ *)

let test_checkpoint_gc () =
  let interval = 5 in
  let t = Testkit.make_hotstuff ~checkpoint_interval:interval () in
  for i = 1 to 12 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:12 t;
  Array.iteri
    (fun id c ->
      match c with
      | Testkit.H core ->
        check Alcotest.int (Printf.sprintf "replica %d stable checkpoint" id) 10
          (Hs.last_stable_checkpoint core);
        Alcotest.(check bool) "slots pruned" true (Hs.pending_slots core <= 4)
      | _ -> ())
    t.Testkit.cores

(* ---- pacemaker: leader rotation --------------------------------------------- *)

let test_leader_rotation () =
  let t = Testkit.make_hotstuff () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  (* Leader 0 goes silent; the pacemaker (demand-timer escalation at the
     host, suspect_primary here) deposes it. *)
  Testkit.crash t 0;
  Array.iteri
    (fun id c ->
      match c with
      | Testkit.H core when id <> 0 -> Testkit.push t id (Hs.suspect_primary core)
      | _ -> ())
    t.Testkit.cores;
  Testkit.run t;
  Array.iteri
    (fun id c ->
      match c with
      | Testkit.H core when id <> 0 ->
        check Alcotest.int (Printf.sprintf "replica %d moved to view 1" id) 1 (Hs.view core);
        Alcotest.(check bool) "view change finished" false (Hs.in_view_change core)
      | _ -> ())
    t.Testkit.cores;
  Alcotest.(check bool) "replica 1 leads view 1" true (Hs.is_leader (hs_core t 1));
  ignore (Testkit.propose t 1 ~reqs:[ Testkit.req 2 ] ~digest:"d2");
  Testkit.run t;
  Testkit.assert_agreement ~expect:2 t

let test_rotation_preserves_certified_batch () =
  (* A batch certified (or committed) in view 0 must survive the rotation
     exactly once: the phase-1 certificate is the lock the view-change
     messages carry. *)
  let t = Testkit.make_hotstuff () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d-locked");
  Testkit.run t;
  Testkit.crash t 0;
  Array.iteri
    (fun id c ->
      match c with
      | Testkit.H core when id <> 0 -> Testkit.push t id (Hs.suspect_primary core)
      | _ -> ())
    t.Testkit.cores;
  Testkit.run t;
  ignore (Testkit.propose t 1 ~reqs:[ Testkit.req 2 ] ~digest:"d2");
  Testkit.run t;
  Testkit.assert_agreement t;
  let ex = Testkit.executions t 1 in
  check Alcotest.int "locked batch executed exactly once" 1
    (List.length (List.filter (fun (_, d) -> String.equal d "d-locked") ex))

(* ---- client ----------------------------------------------------------------- *)

let test_client_quorum () =
  let cfg = Config.make ~n:4 () in
  let c = Client.create cfg ~id:1000 in
  ignore (Client.submit c ~txn_id:7);
  check Alcotest.int "outstanding" 1 (Client.outstanding c);
  let reply from = Msg.Reply { view = 0; seq = 1; txn_id = 7; client = 1000; from; result = "ok" } in
  check Alcotest.int "first reply insufficient" 0 (List.length (Client.handle_reply c (reply 0)));
  check Alcotest.int "duplicate ignored" 0 (List.length (Client.handle_reply c (reply 0)));
  let acts = Client.handle_reply c (reply 1) in
  Alcotest.(check bool) "f+1 distinct replies complete" true
    (List.exists (function Client.Complete { txn_id = 7; _ } -> true | _ -> false) acts);
  check Alcotest.int "cleared" 0 (Client.outstanding c)

let test_client_follows_rotation () =
  let cfg = Config.make ~n:4 () in
  let c = Client.create cfg ~id:1000 in
  check Alcotest.int "starts at leader 0" 0 (Client.leader c);
  ignore (Client.submit c ~txn_id:7);
  (* A reply committed in view 2 re-targets the client at view 2's leader. *)
  ignore
    (Client.handle_reply c
       (Msg.Reply { view = 2; seq = 1; txn_id = 7; client = 1000; from = 2; result = "ok" }));
  check Alcotest.int "follows the pacemaker" 2 (Client.leader c)

(* ---- properties: protocol-core agreement ------------------------------------ *)

let prop_agreement_random_interleavings =
  QCheck.Test.make ~name:"hotstuff: agreement under random interleavings" ~count:25
    QCheck.(pair (int_range 1 15) (int_bound 10_000))
    (fun (batches, seed) ->
      let t = Testkit.make_hotstuff ~rng_seed:(Int64.of_int (seed + 1)) () in
      for i = 1 to batches do
        ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
      done;
      Testkit.run t;
      Testkit.assert_agreement ~expect:batches t;
      true)

let prop_agreement_with_crash =
  QCheck.Test.make ~name:"hotstuff: agreement with one random crashed backup" ~count:25
    QCheck.(pair (int_range 1 10) (int_range 1 3))
    (fun (batches, victim) ->
      let t = Testkit.make_hotstuff ~rng_seed:99L () in
      Testkit.crash t victim;
      for i = 1 to batches do
        ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
      done;
      Testkit.run t;
      Testkit.assert_agreement ~expect:batches t;
      true)

(* ---- cluster level: byzantine safety, durability, parallel lanes ------------ *)

(* Same shape as test_byzantine's base: tiny, liveness loop on. *)
let faulty =
  Params.default
  |> Params.with_protocol Params.Hotstuff
  |> Params.with_n 4
  |> Params.with_clients 400
  |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
  |> Params.with_batch_size 20
  |> Params.map_consensus (fun c ->
         { c with Params.Consensus.max_inflight_batches = 16; checkpoint_txns = 400 })
  |> Params.with_client_timeout (Sim.ms 40.0)
  |> Params.with_view_timeout (Sim.ms 30.0)
  |> Params.with_windows ~warmup:(Sim.seconds 0.2) ~measure:(Sim.seconds 0.8)

(* Safety under 200 random byzantine schedules: one attacker window (the
   f = (n-1)/3 bound for n = 4) mixed with benign faults — the property
   test_byzantine establishes for PBFT/Zyzzyva/multi, on the linear core. *)
let prop_safety_under_byzantine_schedules =
  QCheck.Test.make ~name:"hotstuff: safety under random byzantine schedules" ~count:200
    (QCheck.pair Testkit.arb_byzantine_schedule (QCheck.int_bound 10_000))
    (fun (nemesis, seed) ->
      let p =
        faulty
        |> Params.with_clients 150
        |> Params.with_batch_size 10
        |> Params.with_nemesis nemesis
        |> Params.with_seed (Int64.of_int (seed + 11))
        |> Params.with_client_timeout (Sim.ms 30.0)
        |> Params.with_view_timeout (Sim.ms 25.0)
      in
      let c = Cluster.create p in
      Cluster.start c;
      Sim.run ~until:(Sim.ms 700.0) (Cluster.sim c);
      match Cluster.check_safety c with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdb_hotstuff_test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Two cluster lifetimes over one data directory: the checkpoint semantics
   match PBFT's, so the durable crash-replay resume works unmodified — the
   second lifetime reopens the stores and orders past the persisted tip. *)
let test_durable_close_reopen () =
  with_temp_dir (fun dir ->
      let p =
        faulty |> Params.with_durable true |> Params.with_data_dir (Some dir)
        |> Params.with_windows ~warmup:faulty.Params.warmup ~measure:(Sim.seconds 0.5)
      in
      let m1 = Cluster.run p in
      Alcotest.(check bool) "first lifetime appended blocks" true (m1.Metrics.ledger_blocks > 0);
      let c2 = Cluster.create (Params.with_seed 0x524553554D45L p) in
      let resumed_at = Cluster.ledger_height c2 0 in
      Alcotest.(check bool) "second lifetime resumes from persisted tip" true (resumed_at > 0);
      let _m2 = Cluster.measure c2 in
      Alcotest.(check bool) "chain advanced past the resume point" true
        (Cluster.ledger_height c2 0 > resumed_at);
      match Cluster.check_safety c2 with Ok () -> () | Error e -> Alcotest.fail e)

(* E = 4 conflict-aware execution lanes under the linear core: commits land
   through Hs_qc certificates instead of Commit quorums, the lane scheduler
   downstream must not care. *)
let test_parallel_lanes_safe () =
  let p = Params.with_execute_threads 4 faulty in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  Alcotest.(check bool) "completes with E=4" true (m.Metrics.completed_txns > 0);
  match Cluster.check_safety c with Ok () -> () | Error e -> Alcotest.failf "safety: %s" e

let () =
  Alcotest.run "hotstuff"
    [
      ( "normal case",
        [
          Alcotest.test_case "single batch" `Quick test_normal_case;
          Alcotest.test_case "ten batches in order" `Quick test_multiple_batches_in_order;
          Alcotest.test_case "random delivery order" `Quick test_interleaved_random_delivery;
          Alcotest.test_case "duplicates idempotent" `Quick test_duplicate_messages_idempotent;
          Alcotest.test_case "non-leader cannot propose" `Quick test_non_leader_cannot_propose;
          Alcotest.test_case "votes go to the leader only" `Quick test_votes_go_to_leader_only;
        ] );
      ( "faults",
        [
          Alcotest.test_case "backup crash tolerated" `Quick test_backup_crash_tolerated;
          Alcotest.test_case "beyond f crashes: stall, no divergence" `Quick
            test_too_many_crashes_stall_no_divergence;
          Alcotest.test_case "equivocation cannot commit two values" `Quick
            test_equivocation_cannot_commit_two_values;
          Alcotest.test_case "conflicting proposal counted" `Quick test_conflicting_proposal_counted;
          Alcotest.test_case "wrong view/sender/undersized qc ignored" `Quick
            test_wrong_view_or_sender_ignored;
        ] );
      ("checkpoints", [ Alcotest.test_case "garbage collection" `Quick test_checkpoint_gc ]);
      ( "pacemaker",
        [
          Alcotest.test_case "leader rotation" `Quick test_leader_rotation;
          Alcotest.test_case "certified batch survives rotation" `Quick
            test_rotation_preserves_certified_batch;
        ] );
      ( "client",
        [
          Alcotest.test_case "f+1 quorum" `Quick test_client_quorum;
          Alcotest.test_case "client follows rotation" `Quick test_client_follows_rotation;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "durable close/reopen resume" `Quick test_durable_close_reopen;
          Alcotest.test_case "E=4 lanes safe" `Quick test_parallel_lanes_safe;
        ] );
      ( "properties",
        [
          qtest prop_agreement_random_interleavings;
          qtest prop_agreement_with_crash;
          qtest prop_safety_under_byzantine_schedules;
        ] );
    ]

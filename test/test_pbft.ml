(* PBFT protocol-core tests: the three-phase normal case, out-of-order and
   duplicated delivery, byzantine equivocation safety, checkpoint garbage
   collection, view changes, and agreement under randomized interleavings. *)

module Msg = Rdb_consensus.Message
module Action = Rdb_consensus.Action
module Config = Rdb_consensus.Config
module Pbft = Rdb_consensus.Pbft_replica
module Client = Rdb_consensus.Pbft_client

let check = Alcotest.check
let qtest p = QCheck_alcotest.to_alcotest p

let pbft_core t id = match t.Testkit.cores.(id) with Testkit.P c -> c | _ -> assert false

let test_normal_case () =
  let t = Testkit.make_pbft () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  Testkit.assert_agreement ~expect:1 t;
  (* Every replica replied to the client. *)
  let replies =
    List.filter (fun (_, m) -> match m with Msg.Reply _ -> true | _ -> false) !(t.Testkit.client_inbox)
  in
  check Alcotest.int "one reply per replica" 4 (List.length replies)

let test_multiple_batches_in_order () =
  let t = Testkit.make_pbft () in
  for i = 1 to 10 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:10 t

let test_interleaved_random_delivery () =
  (* Shuffled delivery order must not break agreement or ordering. *)
  for seed = 1 to 10 do
    let t = Testkit.make_pbft ~rng_seed:(Int64.of_int seed) () in
    for i = 1 to 20 do
      ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
    done;
    Testkit.run t;
    Testkit.assert_agreement ~expect:20 t
  done

let test_duplicate_messages_idempotent () =
  let t = Testkit.make_pbft () in
  t.Testkit.duplicate <- true;
  for i = 1 to 5 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:5 t

let test_non_primary_cannot_propose () =
  let t = Testkit.make_pbft () in
  let batch = Testkit.propose t 1 ~reqs:[ Testkit.req 1 ] ~digest:"d1" in
  Alcotest.(check bool) "backup propose refused" true (batch = None);
  Testkit.run t;
  Testkit.assert_agreement ~expect:0 t

let test_backup_crash_tolerated () =
  let t = Testkit.make_pbft () in
  Testkit.crash t 3;
  for i = 1 to 5 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:5 t

let test_too_many_crashes_stall_no_divergence () =
  (* With f+1 = 2 crashed backups of n = 4, commits cannot form — but nothing
     unsafe may happen either. *)
  let t = Testkit.make_pbft () in
  Testkit.crash t 2;
  Testkit.crash t 3;
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  Testkit.assert_agreement ~expect:0 t

let test_equivocation_rejected () =
  (* A byzantine primary sends conflicting Pre-prepares for the same slot to
     different replicas: at most one digest may ever commit. *)
  let t = Testkit.make_pbft () in
  let mk digest =
    {
      Msg.view = 0;
      seq = 1;
      digest;
      reqs = [ Testkit.req 1 ];
      wire_bytes = 100;
    }
  in
  (* Replica 1 and 2 get digest A; replica 3 gets digest B. *)
  Testkit.push t 1 (Pbft.handle_message (pbft_core t 1) (Msg.Pre_prepare { view = 0; seq = 1; batch = mk "A"; from = 0 }));
  Testkit.push t 2 (Pbft.handle_message (pbft_core t 2) (Msg.Pre_prepare { view = 0; seq = 1; batch = mk "A"; from = 0 }));
  Testkit.push t 3 (Pbft.handle_message (pbft_core t 3) (Msg.Pre_prepare { view = 0; seq = 1; batch = mk "B"; from = 0 }));
  Testkit.run t;
  (* No replica may execute B, and executions of A (if any) must agree. *)
  Array.iteri
    (fun id _ ->
      List.iter
        (fun (_, digest) ->
          if String.equal digest "B" then Alcotest.failf "replica %d executed minority digest" id)
        (Testkit.executions t id))
    t.Testkit.cores

let test_conflicting_preprepare_same_replica () =
  let t = Testkit.make_pbft () in
  let core = pbft_core t 1 in
  let mk digest = { Msg.view = 0; seq = 1; digest; reqs = [ Testkit.req 1 ]; wire_bytes = 1 } in
  let a1 = Pbft.handle_message core (Msg.Pre_prepare { view = 0; seq = 1; batch = mk "A"; from = 0 }) in
  Alcotest.(check bool) "first accepted (prepare sent)" true
    (List.exists (function Action.Broadcast (Msg.Prepare _) -> true | _ -> false) a1);
  let a2 = Pbft.handle_message core (Msg.Pre_prepare { view = 0; seq = 1; batch = mk "B"; from = 0 }) in
  (* The conflicting copy never earns a prepare, but it is not swallowed
     either: two pre-prepares signed by one primary for the same slot are a
     transferable proof of misbehavior, so the replica echoes the evidence
     and joins the view change that deposes the equivocator. *)
  Alcotest.(check bool) "no prepare for the conflicting digest" false
    (List.exists
       (function Action.Broadcast (Msg.Prepare { digest = "B"; _ }) -> true | _ -> false)
       a2);
  Alcotest.(check bool) "evidence echoed to the other replicas" true
    (List.exists
       (function
         | Action.Broadcast (Msg.Pre_prepare { batch; _ }) -> String.equal batch.Msg.digest "B"
         | _ -> false)
       a2);
  Alcotest.(check bool) "joins a view change against the equivocator" true
    (List.exists
       (function Action.Broadcast (Msg.View_change { new_view = 1; _ }) -> true | _ -> false)
       a2);
  check Alcotest.int "evidence counted" 1 (Pbft.equivocations_detected core)

let test_wrong_view_or_sender_ignored () =
  let t = Testkit.make_pbft () in
  let core = pbft_core t 1 in
  let batch = { Msg.view = 0; seq = 1; digest = "d"; reqs = [ Testkit.req 1 ]; wire_bytes = 1 } in
  (* Pre-prepare claiming to come from a non-primary is dropped. *)
  check Alcotest.int "non-primary pre-prepare dropped" 0
    (List.length (Pbft.handle_message core (Msg.Pre_prepare { view = 0; seq = 1; batch; from = 2 })));
  (* Future-view pre-prepare is dropped too (replica is in view 0). *)
  check Alcotest.int "future view dropped" 0
    (List.length
       (Pbft.handle_message core
          (Msg.Pre_prepare { view = 3; seq = 1; batch = { batch with Msg.view = 3 }; from = 3 })))

let test_checkpoint_gc () =
  let interval = 5 in
  let t = Testkit.make_pbft ~checkpoint_interval:interval () in
  for i = 1 to 12 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:12 t;
  Array.iteri
    (fun id c ->
      match c with
      | Testkit.P core ->
        check Alcotest.int (Printf.sprintf "replica %d stable checkpoint" id) 10
          (Pbft.last_stable_checkpoint core);
        (* Instances at or below the checkpoint were garbage-collected. *)
        Alcotest.(check bool) "instances pruned" true (Pbft.pending_instances core <= 4)
      | _ -> ())
    t.Testkit.cores

let test_view_change_rotates_primary () =
  let t = Testkit.make_pbft () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d1");
  Testkit.run t;
  (* Primary 0 goes silent; the others suspect it. *)
  Testkit.crash t 0;
  Array.iteri
    (fun id c ->
      match c with
      | Testkit.P core when id <> 0 -> Testkit.push t id (Pbft.suspect_primary core)
      | _ -> ())
    t.Testkit.cores;
  Testkit.run t;
  Array.iteri
    (fun id c ->
      match c with
      | Testkit.P core when id <> 0 ->
        check Alcotest.int (Printf.sprintf "replica %d moved to view 1" id) 1 (Pbft.view core);
        Alcotest.(check bool) "view change finished" false (Pbft.in_view_change core)
      | _ -> ())
    t.Testkit.cores;
  Alcotest.(check bool) "replica 1 is the new primary" true (Pbft.is_primary (pbft_core t 1));
  (* The new primary accepts proposals; agreement continues among survivors. *)
  ignore (Testkit.propose t 1 ~reqs:[ Testkit.req 2 ] ~digest:"d2");
  Testkit.run t;
  Testkit.assert_agreement ~expect:2 t

let test_view_change_preserves_prepared_request () =
  (* A request that was prepared but not committed before the view change
     must be re-proposed and executed in the new view, not lost. *)
  let t = Testkit.make_pbft () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1 ] ~digest:"d-prepared");
  (* Run the network only long enough for prepares to spread: deliver all
     queued actions but stop commits by crashing no one — simpler: run fully,
     then view-change; the committed case also must survive. *)
  Testkit.run t;
  Testkit.crash t 0;
  Array.iteri
    (fun id c ->
      match c with
      | Testkit.P core when id <> 0 -> Testkit.push t id (Pbft.suspect_primary core)
      | _ -> ())
    t.Testkit.cores;
  Testkit.run t;
  ignore (Testkit.propose t 1 ~reqs:[ Testkit.req 2 ] ~digest:"d2");
  Testkit.run t;
  Testkit.assert_agreement t;
  (* d-prepared (already executed in view 0) must not be re-executed: the
     survivors' logs still start with it exactly once. *)
  let ex = Testkit.executions t 1 in
  check Alcotest.int "no duplicate execution" 1
    (List.length (List.filter (fun (_, d) -> String.equal d "d-prepared") ex))

let test_client_quorum () =
  let cfg = Config.make ~n:4 () in
  let c = Client.create cfg ~id:1000 in
  ignore (Client.submit c ~txn_id:7);
  check Alcotest.int "outstanding" 1 (Client.outstanding c);
  let reply from = Msg.Reply { view = 0; seq = 1; txn_id = 7; client = 1000; from; result = "ok" } in
  check Alcotest.int "first reply insufficient" 0 (List.length (Client.handle_reply c (reply 0)));
  (* Duplicate from the same replica must not count twice. *)
  check Alcotest.int "duplicate ignored" 0 (List.length (Client.handle_reply c (reply 0)));
  let acts = Client.handle_reply c (reply 1) in
  Alcotest.(check bool) "f+1 distinct replies complete" true
    (List.exists (function Client.Complete { txn_id = 7; _ } -> true | _ -> false) acts);
  check Alcotest.int "cleared" 0 (Client.outstanding c)

let test_client_mismatched_results () =
  let cfg = Config.make ~n:4 () in
  let c = Client.create cfg ~id:1000 in
  ignore (Client.submit c ~txn_id:7);
  let reply from result = Msg.Reply { view = 0; seq = 1; txn_id = 7; client = 1000; from; result } in
  ignore (Client.handle_reply c (reply 0 "A"));
  check Alcotest.int "conflicting result does not complete" 0
    (List.length (Client.handle_reply c (reply 1 "B")));
  let acts = Client.handle_reply c (reply 2 "A") in
  Alcotest.(check bool) "two matching complete" true
    (List.exists (function Client.Complete { result = "A"; _ } -> true | _ -> false) acts)

let test_client_timeout_retransmits () =
  let cfg = Config.make ~n:4 () in
  let c = Client.create cfg ~id:1 in
  ignore (Client.submit c ~txn_id:9);
  (match Client.handle_timeout c ~txn_id:9 with
  | [ Client.Broadcast_request 9 ] -> ()
  | _ -> Alcotest.fail "expected broadcast retransmission");
  check Alcotest.int "unknown txn no-op" 0 (List.length (Client.handle_timeout c ~txn_id:404))

let prop_agreement_random_interleavings =
  QCheck.Test.make ~name:"pbft: agreement under random interleavings" ~count:25
    QCheck.(pair (int_range 1 15) (int_bound 10_000))
    (fun (batches, seed) ->
      let t = Testkit.make_pbft ~rng_seed:(Int64.of_int (seed + 1)) () in
      for i = 1 to batches do
        ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
      done;
      Testkit.run t;
      Testkit.assert_agreement ~expect:batches t;
      true)

let prop_agreement_with_crash =
  QCheck.Test.make ~name:"pbft: agreement with one random crashed backup" ~count:25
    QCheck.(pair (int_range 1 10) (int_range 1 3))
    (fun (batches, victim) ->
      let t = Testkit.make_pbft ~rng_seed:99L () in
      Testkit.crash t victim;
      for i = 1 to batches do
        ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
      done;
      Testkit.run t;
      Testkit.assert_agreement ~expect:batches t;
      true)

let test_larger_cluster () =
  let t = Testkit.make_pbft ~n:16 () in
  for i = 1 to 5 do
    ignore (Testkit.propose t 0 ~reqs:[ Testkit.req i ] ~digest:(Printf.sprintf "d%d" i))
  done;
  Testkit.run t;
  Testkit.assert_agreement ~expect:5 t

let test_batched_requests_reply_per_request () =
  let t = Testkit.make_pbft () in
  ignore (Testkit.propose t 0 ~reqs:[ Testkit.req 1; Testkit.req 2; Testkit.req 3 ] ~digest:"d1");
  Testkit.run t;
  Testkit.assert_agreement ~expect:1 t;
  let replies =
    List.filter (fun (_, m) -> match m with Msg.Reply _ -> true | _ -> false) !(t.Testkit.client_inbox)
  in
  check Alcotest.int "3 requests x 4 replicas" 12 (List.length replies)

let () =
  Alcotest.run "pbft"
    [
      ( "normal case",
        [
          Alcotest.test_case "single batch" `Quick test_normal_case;
          Alcotest.test_case "ten batches in order" `Quick test_multiple_batches_in_order;
          Alcotest.test_case "random delivery order" `Quick test_interleaved_random_delivery;
          Alcotest.test_case "duplicates idempotent" `Quick test_duplicate_messages_idempotent;
          Alcotest.test_case "non-primary cannot propose" `Quick test_non_primary_cannot_propose;
          Alcotest.test_case "n=16 cluster" `Quick test_larger_cluster;
          Alcotest.test_case "per-request replies" `Quick test_batched_requests_reply_per_request;
        ] );
      ( "faults",
        [
          Alcotest.test_case "backup crash tolerated" `Quick test_backup_crash_tolerated;
          Alcotest.test_case "beyond f crashes: stall, no divergence" `Quick
            test_too_many_crashes_stall_no_divergence;
          Alcotest.test_case "equivocation cannot commit two values" `Quick test_equivocation_rejected;
          Alcotest.test_case "conflicting pre-prepare ignored" `Quick
            test_conflicting_preprepare_same_replica;
          Alcotest.test_case "wrong view/sender ignored" `Quick test_wrong_view_or_sender_ignored;
        ] );
      ( "checkpoints",
        [ Alcotest.test_case "garbage collection" `Quick test_checkpoint_gc ] );
      ( "view change",
        [
          Alcotest.test_case "primary rotation" `Quick test_view_change_rotates_primary;
          Alcotest.test_case "prepared requests survive" `Quick
            test_view_change_preserves_prepared_request;
        ] );
      ( "client",
        [
          Alcotest.test_case "f+1 quorum" `Quick test_client_quorum;
          Alcotest.test_case "mismatched results" `Quick test_client_mismatched_results;
          Alcotest.test_case "timeout retransmits" `Quick test_client_timeout_retransmits;
        ] );
      ( "properties",
        [ qtest prop_agreement_random_interleavings; qtest prop_agreement_with_crash ] );
    ]

type job = { service : Sim.time; submitted : Sim.time; k : unit -> unit }

type t = {
  sim : Sim.t;
  cores : int;
  cs_alpha : float;
  probe : (wait_ns:int -> held_ns:int -> at:Sim.time -> unit) option;
  waiting : job Queue.t;
  mutable running : int;
  mutable busy_ns_completed : int;
  (* Start times of in-flight jobs, used to account their elapsed portion. *)
  mutable inflight_started : Sim.time list;
}

let create ?(cs_alpha = 0.0) ?probe sim ~cores =
  if cores <= 0 then invalid_arg "Cpu.create: cores must be positive";
  {
    sim;
    cores;
    cs_alpha;
    probe;
    waiting = Queue.create ();
    running = 0;
    busy_ns_completed = 0;
    inflight_started = [];
  }

let cores t = t.cores

let inflated_service t service =
  if t.cs_alpha = 0.0 then service
  else begin
    let runnable = t.running + Queue.length t.waiting + 1 in
    if runnable <= t.cores then service
    else begin
      (* Past 3x over-subscription the scheduler's penalty flattens out:
         more waiting threads do not context-switch any more often. *)
      let excess = min (runnable - t.cores) (2 * t.cores) in
      int_of_float
        (float_of_int service
        *. (1.0 +. (t.cs_alpha *. float_of_int excess /. float_of_int t.cores)))
    end
  end

let rec start t job =
  t.running <- t.running + 1;
  let service = inflated_service t job.service in
  let started = Sim.now t.sim in
  t.inflight_started <- started :: t.inflight_started;
  ignore
    (Sim.schedule t.sim ~after:service (fun () ->
         t.running <- t.running - 1;
         t.busy_ns_completed <- t.busy_ns_completed + service;
         t.inflight_started <- remove_one started t.inflight_started;
         (match t.probe with
          | None -> ()
          | Some probe ->
            probe ~wait_ns:(started - job.submitted) ~held_ns:service
              ~at:(Sim.now t.sim));
         job.k ();
         dispatch t))

and dispatch t =
  if t.running < t.cores && not (Queue.is_empty t.waiting) then begin
    let job = Queue.pop t.waiting in
    start t job
  end

and remove_one x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_one x rest

let submit t ~service k =
  if service < 0 then invalid_arg "Cpu.submit: negative service time";
  let job = { service; submitted = Sim.now t.sim; k } in
  if t.running < t.cores then start t job else Queue.push job t.waiting

let busy_ns t =
  let now = Sim.now t.sim in
  let inflight = List.fold_left (fun acc s -> acc + (now - s)) 0 t.inflight_started in
  t.busy_ns_completed + inflight

let queue_length t = Queue.length t.waiting

let running t = t.running

let utilization t ~since_busy_ns ~since_time =
  let now = Sim.now t.sim in
  let elapsed = now - since_time in
  if elapsed <= 0 then 0.0
  else
    float_of_int (busy_ns t - since_busy_ns)
    /. (float_of_int elapsed *. float_of_int t.cores)

(** A core-limited CPU resource.

    Each replica in the model owns one [t] with [cores] cores.  Logical
    threads (pipeline stages) submit jobs; a job occupies one core for its
    service time, queueing FCFS when all cores are busy.  This is what makes
    the "effect of hardware cores" experiment (paper Fig. 16) and thread
    over-subscription behave realistically: with more runnable stages than
    cores, stages contend and each sees inflated completion times. *)

type t

val create :
  ?cs_alpha:float ->
  ?probe:(wait_ns:int -> held_ns:int -> at:Sim.time -> unit) ->
  Sim.t ->
  cores:int ->
  t
(** [cs_alpha] models thread over-subscription: when more jobs are runnable
    than there are cores, each dispatched job's service time inflates by
    [1 + cs_alpha * (runnable - cores) / cores] — context switching, cache
    pollution and scheduler latency on an overcommitted machine.  Default 0
    (pure FCFS capacity model).

    [probe], when given, is called once per completed job with the time the
    job waited for a free core ([wait_ns]), the time it then held the core
    ([held_ns], after any over-subscription inflation) and the completion
    timestamp ([at]).  Absent by default: the fast path performs no extra
    allocation and no call. *)

val cores : t -> int

val submit : t -> service:Sim.time -> (unit -> unit) -> unit
(** [submit t ~service k] runs [k] after the job has held a core for
    [service] nanoseconds (plus any queueing delay).  [service] must be
    non-negative. *)

val busy_ns : t -> int
(** Cumulative core-busy nanoseconds (summed over cores) since creation,
    including the elapsed portion of jobs currently running. *)

val queue_length : t -> int
(** Jobs waiting for a core right now. *)

val running : t -> int
(** Jobs currently holding a core. *)

val utilization : t -> since_busy_ns:int -> since_time:Sim.time -> float
(** [utilization t ~since_busy_ns ~since_time] is the fraction of core
    capacity used between a past observation ([since_*]) and now. *)

(** Deterministic discrete-event simulation engine.

    Time is measured in integer nanoseconds, so experiment outputs are exact
    and bit-reproducible.  Events scheduled for the same instant fire in
    scheduling order (FIFO tie-break), which keeps multi-component models
    deterministic without any hidden ordering assumptions. *)

type t

type time = int
(** Nanoseconds since simulation start. *)

type event
(** Handle for a scheduled event; allows cancellation (e.g. timeouts). *)

val ns : int -> time
(** [ns n] is [n] nanoseconds (the identity — provided for symmetry). *)

val us : float -> time
(** [us x] is [x] microseconds, rounded to the nearest nanosecond. *)

val ms : float -> time
(** [ms x] is [x] milliseconds, rounded to the nearest nanosecond. *)

val seconds : float -> time
(** [seconds x] is [x] seconds, rounded to the nearest nanosecond. *)

val to_seconds : time -> float
(** [to_seconds t] converts a simulation time back to fractional seconds. *)

val create : unit -> t
(** A fresh simulation with an empty event queue and clock at 0. *)

val now : t -> time
(** Current simulation time: the firing time of the event being processed
    (0 before the first event). *)

val schedule : t -> after:time -> (unit -> unit) -> event
(** [schedule t ~after f] runs [f] at [now t + after]. [after] must be
    non-negative. *)

val schedule_at : t -> at:time -> (unit -> unit) -> event
(** [schedule_at t ~at f] runs [f] at absolute time [at >= now t]. *)

val cancel : event -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val cancelled : event -> bool
(** Whether {!cancel} was called on the event (fired events stay [false]). *)

val run : ?until:time -> t -> unit
(** Processes events in time order.  Stops when the queue drains, or at
    [until] (events at exactly [until] are processed). *)

val run_bounded : ?until:time -> max_events:int -> t -> [ `Completed of int | `Exhausted ]
(** {!run} with a hard event budget: processes at most [max_events] live
    events (cancelled events are skipped without charging the budget).
    Returns [`Completed n] — [n] events processed — when the queue drained
    or the [until] horizon was reached, and [`Exhausted] when live work
    remained with the budget spent.  A wedged model that keeps scheduling
    work (retransmission storms, zero-delay event loops) therefore
    terminates with a clean verdict instead of spinning; whenever the
    budget is not hit, the run is bit-identical to {!run}.  Raises
    [Invalid_argument] on a negative budget. *)

val step : t -> bool
(** Processes a single event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

type t = {
  cap : int;
  rng : Rng.t;
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
  (* Reservoir of samples for percentile queries: exact below [cap], a
     uniform random subset (Vitter's algorithm R) beyond it. *)
  mutable reservoir : float array;  (* physical buffer, grows up to [cap] *)
  mutable filled : int;  (* slots of [reservoir] in use *)
  (* Sorted cache, invalidated on add. *)
  mutable sorted : float array option;
}

let default_cap = 100_000

let create ?(cap = default_cap) ?rng () =
  if cap < 1 then invalid_arg "Stats.create: cap must be >= 1";
  let rng = match rng with Some r -> r | None -> Rng.create 0x5374617473526E67L in
  {
    cap;
    rng;
    count = 0;
    mean = 0.0;
    m2 = 0.0;
    total = 0.0;
    min_v = nan;
    max_v = nan;
    reservoir = [||];
    filled = 0;
    sorted = None;
  }

let store t x =
  if t.filled < t.cap then begin
    if t.filled = Array.length t.reservoir then begin
      let cap = min t.cap (max 64 (2 * Array.length t.reservoir)) in
      let buf = Array.make cap 0.0 in
      Array.blit t.reservoir 0 buf 0 t.filled;
      t.reservoir <- buf
    end;
    t.reservoir.(t.filled) <- x;
    t.filled <- t.filled + 1
  end
  else begin
    (* Replace a random slot with probability cap/count: every sample seen
       so far ends up in the reservoir with equal probability. *)
    let j = Rng.int t.rng t.count in
    if j < t.cap then t.reservoir.(j) <- x
  end

let add t x =
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.count = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end
  else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end;
  store t x;
  t.sorted <- None

let count t = t.count

let total t = t.total

let mean t = if t.count = 0 then 0.0 else t.mean

let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)

let min t = t.min_v

let max t = t.max_v

let retained t = t.filled

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.sub t.reservoir 0 t.filled in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if t.count = 0 then nan
  else begin
    let a = sorted t in
    let n = Array.length a in
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    a.(idx)
  end

let median t = percentile t 50.0

let iter_samples t f =
  for i = 0 to t.filled - 1 do
    f t.reservoir.(i)
  done

let merge a b =
  let t = create ~cap:(Stdlib.max a.cap b.cap) () in
  iter_samples a (add t);
  iter_samples b (add t);
  t

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g"
    t.count (mean t) (stddev t) t.min_v (median t) (percentile t 99.0) t.max_v

module Histogram = struct
  type h = { bounds : float array; counts : int array }

  let create ~buckets =
    let n = Array.length buckets in
    for i = 1 to n - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Histogram.create: buckets must be strictly increasing"
    done;
    { bounds = Array.copy buckets; counts = Array.make (n + 1) 0 }

  let add h x =
    let n = Array.length h.bounds in
    let rec find i = if i >= n then n else if x <= h.bounds.(i) then i else find (i + 1) in
    let i = find 0 in
    h.counts.(i) <- h.counts.(i) + 1

  let counts h = Array.copy h.counts

  let pp ppf h =
    let n = Array.length h.bounds in
    for i = 0 to n do
      let label =
        if i = 0 then Format.asprintf "<=%.3g" h.bounds.(0)
        else if i = n then Format.asprintf ">%.3g" h.bounds.(n - 1)
        else Format.asprintf "(%.3g,%.3g]" h.bounds.(i - 1) h.bounds.(i)
      in
      Format.fprintf ppf "%s:%d " label h.counts.(i)
    done
end

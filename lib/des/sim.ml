type time = int

type event = {
  fire_at : time;
  seq : int;
  action : unit -> unit;
  mutable live : bool;
}

type t = {
  mutable clock : time;
  mutable next_seq : int;
  mutable cancelled_count : int;
  queue : event Heap.t;
}

let ns n = n
let us f = int_of_float (f *. 1e3)
let ms f = int_of_float (f *. 1e6)
let seconds f = int_of_float (f *. 1e9)

let to_seconds t = float_of_int t /. 1e9

let compare_event a b =
  let c = compare a.fire_at b.fire_at in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { clock = 0; next_seq = 0; cancelled_count = 0; queue = Heap.create ~cmp:compare_event }

let now t = t.clock

let schedule_at t ~at action =
  if at < t.clock then invalid_arg "Sim.schedule_at: time is in the past";
  let ev = { fire_at = at; seq = t.next_seq; action; live = true } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue ev;
  ev

let schedule t ~after action =
  if after < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~at:(t.clock + after) action

let cancel ev =
  ev.live <- false

let cancelled ev = not ev.live

let step t =
  let rec next () =
    match Heap.pop t.queue with
    | None -> false
    | Some ev when not ev.live -> next ()
    | Some ev ->
      t.clock <- ev.fire_at;
      ev.action ();
      true
  in
  next ()

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    let continue = ref true in
    while !continue do
      match Heap.peek t.queue with
      | None -> continue := false
      | Some ev when ev.fire_at > limit ->
        t.clock <- limit;
        continue := false
      | Some _ -> ignore (step t)
    done

(* Like [run], but with a hard cap on processed events.  Cancelled events
   are discarded without charging the budget, so the cap bounds real work;
   the clock-at-horizon behavior matches [run] exactly, which keeps
   budgeted runs bit-identical to unbudgeted ones whenever the budget is
   not hit. *)
let run_bounded ?until ~max_events t =
  if max_events < 0 then invalid_arg "Sim.run_bounded: negative event budget";
  let processed = ref 0 in
  let exhausted = ref false in
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev when (match until with Some limit -> ev.fire_at > limit | None -> false) ->
      (match until with Some limit -> t.clock <- limit | None -> ());
      continue := false
    | Some ev when not ev.live -> ignore (Heap.pop t.queue)
    | Some _ ->
      if !processed >= max_events then begin
        exhausted := true;
        continue := false
      end
      else begin
        incr processed;
        ignore (step t)
      end
  done;
  if !exhausted then `Exhausted else `Completed !processed

let pending t =
  List.length (List.filter (fun ev -> ev.live) (Heap.to_list t.queue))

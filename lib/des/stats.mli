(** Online statistics accumulators used by the experiment harness.

    [t] tracks count / mean / variance (Welford) / min / max incrementally
    and keeps a bounded reservoir of raw samples for percentile queries.
    Below the cap the reservoir is exact; beyond it, reservoir sampling
    (Vitter's algorithm R, driven by a deterministic {!Rng.t}) keeps a
    uniform subset so percentiles stay unbiased while memory stays constant
    no matter how long a run is. *)

type t

val default_cap : int
(** Default reservoir capacity: 100_000 samples. *)

val create : ?cap:int -> ?rng:Rng.t -> unit -> t
(** [create ()] returns an empty accumulator retaining at most [cap] raw
    samples (default {!default_cap}).  [rng] drives reservoir replacement
    once the cap is exceeded; by default each accumulator owns a fixed-seed
    generator, so results are reproducible and independent of every other
    random stream in the simulation.  Raises [Invalid_argument] when
    [cap < 1]. *)

val add : t -> float -> unit
(** Record one sample.  Constant amortised time and bounded memory. *)

val count : t -> int
(** Samples recorded since creation (not capped). *)

val total : t -> float
(** Exact running sum of all samples. *)

val mean : t -> float
(** Exact mean; 0 when empty. *)

val variance : t -> float
(** Exact sample variance; 0 with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** Exact minimum; [nan] when empty. *)

val max : t -> float
(** Exact maximum; [nan] when empty. *)

val retained : t -> int
(** Raw samples currently held in the reservoir
    ([Stdlib.min (count t) cap]). *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], nearest-rank method over the
    reservoir — exact below the cap, an unbiased estimate above it.
    [nan] when empty. *)

val median : t -> float
(** [percentile t 50.0]. *)

val iter_samples : t -> (float -> unit) -> unit
(** Iterate over the retained reservoir samples (unspecified order). *)

val merge : t -> t -> t
(** Fresh accumulator holding the union of both reservoirs (capped at the
    larger of the two caps).  Summary moments of the merge reflect the
    retained samples only, so merge after capping loses the exactness of
    {!mean}/{!total} — the harness only merges small per-replica sets. *)

val pp : Format.formatter -> t -> unit

(** Fixed-bucket histogram, used for latency distribution reporting. *)
module Histogram : sig
  type h

  val create : buckets:float array -> h
  (** [buckets] are the upper bounds of each bucket, strictly increasing;
      an implicit overflow bucket catches the rest. *)

  val add : h -> float -> unit

  val counts : h -> int array
  (** Length is [Array.length buckets + 1]; last slot is the overflow. *)

  val pp : Format.formatter -> h -> unit
end

(** Run-outcome classification for fault campaigns.

    Each seeded DES run is reduced to one of five outcome classes via
    explicit thresholds, so thousands of runs aggregate into a statement
    like "crash schedules never cost PBFT liveness, heavy loss wedges it
    below a 75 ms view timeout".  The classes form a severity order:

    - {!outcome.Safe} — agreement holds and the run is observationally
      indistinguishable from its fault-free twin: no recovery was needed
      and throughput retention is at least [retention_safe].
    - {!outcome.Live} — agreement holds; the run was visibly perturbed
      (view changes, retransmissions, a recovery) but recovered within
      [recovery_bound_s] and retained at least [retention_degraded] of the
      twin's throughput.
    - {!outcome.Degraded} — agreement holds and progress was made, but
      throughput retention fell below [retention_degraded] or recovery
      took longer than [recovery_bound_s].
    - {!outcome.Wedged} — the run made fewer than [min_progress_txns]
      completions in its measurement window, or its DES event budget ran
      out first ({!Rdb_core.Cluster.completion.Event_budget_exhausted}):
      the cluster stopped serving clients.
    - {!outcome.Unsafe} — cross-replica agreement failed
      ({!Rdb_core.Cluster.check_safety}); trumps everything else.

    Classification is a pure function of an {!observation}, so the unit
    tests drive every class from hand-built metrics. *)

type outcome = Safe | Live | Degraded | Wedged | Unsafe

val all_outcomes : outcome list
(** In severity order, [Safe] first. *)

val outcome_name : outcome -> string
(** ["safe"], ["live"], ["degraded"], ["wedged"], ["unsafe"] — the
    campaign-report/v1 field names. *)

type thresholds = {
  min_progress_txns : int;
      (** fewer measured completions than this is no progress (wedged) *)
  recovery_bound_s : float;
      (** a recorded time-to-recovery above this is a degraded run *)
  retention_degraded : float;
      (** throughput retention vs the fault-free twin below this is
          degraded *)
  retention_safe : float;
      (** retention at or above this, with no recovery needed, is safe *)
}

val default_thresholds : thresholds
(** [min_progress_txns = 10], [recovery_bound_s = 0.5],
    [retention_degraded = 0.35], [retention_safe = 0.85]. *)

val threshold_fields : thresholds -> (string * float) list
(** Named projection for the report document. *)

type observation = {
  facts : Rdb_core.Metrics.outcome_facts;
  safety_ok : bool;  (** {!Rdb_core.Cluster.check_safety} verdict *)
  budget_exhausted : bool;  (** the run hit its DES event budget *)
  retention : float option;
      (** measured throughput / the fault-free twin's mean throughput;
          [None] when there is no twin (the twin cell itself, which by
          definition retains everything) *)
}

val observe :
  metrics:Rdb_core.Metrics.t ->
  safety:(unit, string) result ->
  completion:Rdb_core.Cluster.completion ->
  retention:float option ->
  observation

val classify : thresholds -> observation -> outcome

(* The campaign runner.  See the interface for the model; the two load-
   bearing properties are determinism (every run's seed is a pure function
   of matrix seed + cell axes + seed index, so neither run order nor the
   worker count can change any result) and boundedness (every run carries a
   DES event budget, so a wedged cell costs one budget, not forever). *)

module Params = Rdb_core.Params
module Nemesis = Rdb_core.Nemesis
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Rng = Rdb_des.Rng
module Sim = Rdb_des.Sim
module Stats = Rdb_des.Stats
module Report = Rdb_obs.Campaign_report

type backend = Mem | Durable

let backend_name = function Mem -> "mem" | Durable -> "durable"

let backend_of_name = function
  | "mem" -> Some Mem
  | "durable" -> Some Durable
  | _ -> None

type matrix = {
  protocols : Params.protocol list;
  instances : int list;
  exec_threads : int list;
  backends : backend list;
  view_timeouts_ms : float list;
  shard_axis : (int * float) list;
  families : Nemesis.Gen.family list;
  seeds : int;
  matrix_seed : int64;
  budget_events : int;
  thresholds : Classify.thresholds;
  base : Params.t;
  quick : bool;
}

let quick_base =
  Params.make
    ~consensus:
      (Params.Consensus.v ~n:4 ~batch_size:20 ~max_inflight_batches:16 ~checkpoint_txns:400
         ~view_timeout:(Sim.ms 75.0) ())
    ~workload:(Params.Workload.v ~clients:200 ())
    ~exec:(Params.Exec.v ~exec_records:4096 ())
    ~faults:(Params.Faults.v ~client_timeout:(Sim.ms 40.0) ())
    ~topology:(Params.Topology.v ~client_machines:1 ())
    ~warmup:(Sim.seconds 0.2) ~measure:(Sim.seconds 0.6) ()

let quick_matrix =
  {
    protocols = [ Params.Pbft; Params.Zyzzyva; Params.Hotstuff ];
    instances = [ 1; 2 ];
    exec_threads = [ 1; 2 ];
    backends = [ Mem; Durable ];
    view_timeouts_ms = [ 75.0 ];
    shard_axis = [ (1, 0.0); (2, 0.1) ];
    families = Nemesis.Gen.[ Fault_free; Crashes; Loss; Byzantine ];
    seeds = 3;
    matrix_seed = 0x52644243616D70L (* "RdBCamp" *);
    budget_events = 4_000_000;
    thresholds = Classify.default_thresholds;
    base = quick_base;
    quick = true;
  }

let cliff_matrix =
  {
    quick_matrix with
    protocols = [ Params.Pbft ];
    instances = [ 1 ];
    exec_threads = [ 1 ];
    backends = [ Mem ];
    view_timeouts_ms = [ 150.0; 75.0; 40.0 ];
    shard_axis = [ (1, 0.0) ];
    families = Nemesis.Gen.[ Loss; Heavy_loss ];
    seeds = 5;
  }

let default_matrix =
  {
    quick_matrix with
    instances = [ 1; 2; 4 ];
    exec_threads = [ 1; 2; 4 ];
    view_timeouts_ms = [ 40.0; 75.0; 150.0 ];
    shard_axis = [ (1, 0.0); (2, 0.1); (4, 0.1); (4, 0.5) ];
    families = Nemesis.Gen.all_families;
    seeds = 10;
    quick = false;
  }

type cell = {
  protocol : Params.protocol;
  instances : int;
  exec_threads : int;
  backend : backend;
  view_timeout_ms : float;
  shards : int;
  cross_fraction : float;
  family : Nemesis.Gen.family;
}

(* First-occurrence dedup that keeps the caller's ordering — the ordering
   defines axis adjacency for cliff detection. *)
let dedup xs = List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] xs

let families_of m = dedup (Nemesis.Gen.Fault_free :: m.families)

(* Sharded cells sweep only the base deployment shape (k = 1, E = 1, the
   memory ledger): the shard axis asks how S groups and cross-shard
   traffic fare under faults, not its cartesian product with every other
   axis. *)
let valid c =
  (c.instances = 1 || c.protocol = Params.Pbft)
  && (c.shards = 1 || (c.instances = 1 && c.exec_threads = 1 && c.backend = Mem))

let expand m =
  let cells =
    List.concat_map
      (fun protocol ->
        List.concat_map
          (fun instances ->
            List.concat_map
              (fun exec_threads ->
                List.concat_map
                  (fun backend ->
                    List.concat_map
                      (fun view_timeout_ms ->
                        List.concat_map
                          (fun (shards, cross_fraction) ->
                            List.filter_map
                              (fun family ->
                                let c =
                                  {
                                    protocol;
                                    instances;
                                    exec_threads;
                                    backend;
                                    view_timeout_ms;
                                    shards;
                                    cross_fraction;
                                    family;
                                  }
                                in
                                if valid c then Some c else None)
                              (families_of m))
                          (dedup m.shard_axis))
                      (dedup m.view_timeouts_ms))
                  (dedup m.backends))
              (dedup m.exec_threads))
          (dedup m.instances))
      (dedup m.protocols)
  in
  (* Canonical report order: the polymorphic compare over the record sorts
     by protocol, k, E, backend, view timeout, then family constructor
     order — stable however the matrix listed its axes. *)
  List.sort compare cells

let total_runs m = List.length (expand m) * max 1 m.seeds

(* ---- deterministic per-run seeds ------------------------------------------ *)

(* FNV-1a, written out rather than [Hashtbl.hash] so seeds cannot drift
   across OCaml releases: the committed campaign baseline must mean the
   same runs on every machine, forever. *)
let fnv64 (s : string) : int64 =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime) s;
  !h

(* Single-shard keys keep the historical spelling so every pre-sharding
   run seed — and with it the committed campaign baseline — survives the
   axis addition byte-for-byte. *)
let cell_key c =
  Printf.sprintf "%s|k=%d|E=%d|%s|vt=%.6g|%s%s"
    (Params.protocol_name c.protocol)
    c.instances c.exec_threads (backend_name c.backend) c.view_timeout_ms
    (Nemesis.Gen.family_name c.family)
    (if c.shards > 1 then Printf.sprintf "|S=%d|x=%.6g" c.shards c.cross_fraction else "")

let run_seed m c ~seed_index =
  fnv64 (Printf.sprintf "%Ld|%s|%d" m.matrix_seed (cell_key c) seed_index)

let params_for m ?data_dir c ~seed_index =
  let seed = run_seed m c ~seed_index in
  let sched_rng = Rng.create (fnv64 (Printf.sprintf "%Ld|schedule" seed)) in
  let nemesis = Nemesis.Gen.generate c.family ~n:m.base.Params.n sched_rng in
  m.base
  |> Params.with_protocol c.protocol
  |> Params.with_instances c.instances
  |> Params.with_execute_threads c.exec_threads
  |> Params.with_durable (c.backend = Durable)
  |> Params.with_data_dir data_dir
  |> Params.with_view_timeout (Sim.ms c.view_timeout_ms)
  |> Params.with_shards c.shards
  |> Params.with_cross_shard_fraction c.cross_fraction
  |> Params.with_nemesis nemesis
  |> Params.with_seed seed

(* ---- filesystem scratch for durable cells --------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let temp_counter = Atomic.make 0

let make_temp_root () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdb-campaign-%d-%d" (Unix.getpid ())
         (1 + Atomic.fetch_and_add temp_counter 1))
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

(* ---- bounded parallel map over domains ------------------------------------ *)

(* Work-stealing by atomic index: each worker claims the next unclaimed run.
   Results land in their own slot, so the output order — and therefore the
   report — is independent of scheduling. *)
let map_bounded ~jobs f (tasks : 'a array) : 'b array =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.mapi f tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f i tasks.(i));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.map (function Some r -> r | None -> assert false) results
  end

(* ---- running and aggregation ---------------------------------------------- *)

(* The per-run distillate kept in memory: thousands of runs must not retain
   thousands of latency reservoirs. *)
type raw = { facts : Metrics.outcome_facts; safety_ok : bool; exhausted : bool }

type axes = {
  a_protocol : Params.protocol;
  a_instances : int;
  a_exec_threads : int;
  a_backend : backend;
  a_view_timeout_ms : float;
  a_shards : int;
  a_cross_fraction : float;
}

let axes_of c =
  {
    a_protocol = c.protocol;
    a_instances = c.instances;
    a_exec_threads = c.exec_threads;
    a_backend = c.backend;
    a_view_timeout_ms = c.view_timeout_ms;
    a_shards = c.shards;
    a_cross_fraction = c.cross_fraction;
  }

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let report_cell c ~runs ~outcomes ~tputs ~retentions ~recoveries : Report.cell =
  let count o = List.length (List.filter (fun x -> x = o) outcomes) in
  let recov = Stats.create () in
  List.iter (Stats.add recov) recoveries;
  let nrec = Stats.count recov in
  {
    Report.protocol = Params.protocol_name c.protocol;
    instances = c.instances;
    exec_threads = c.exec_threads;
    backend = backend_name c.backend;
    view_timeout_ms = c.view_timeout_ms;
    shards = c.shards;
    cross_shard = c.cross_fraction;
    family = Nemesis.Gen.family_name c.family;
    runs;
    safe = count Classify.Safe;
    live = count Classify.Live;
    degraded = count Classify.Degraded;
    wedged = count Classify.Wedged;
    unsafe = count Classify.Unsafe;
    tput_mean_tps = mean tputs;
    retention_mean = mean retentions;
    recoveries = nrec;
    recovery_p50_s = (if nrec > 0 then Stats.percentile recov 50.0 else 0.0);
    recovery_p90_s = (if nrec > 0 then Stats.percentile recov 90.0 else 0.0);
    recovery_max_s = (if nrec > 0 then Stats.max recov else 0.0);
  }

(* A liveness cliff: two cells one axis step apart where the hazard rate
   (wedged + unsafe fraction) jumps from clean to substantial.  Adjacency
   follows the matrix's own axis ordering, so "one step" means what the
   experimenter swept (k 1->2, vt 150->75, loss->heavy-loss, ...). *)
let hazard_clean = 0.05

let hazard_cliff = 0.25

let find_cliffs m (agg : (cell * Report.cell) list) : Report.cliff list =
  (* positions in the (deduped) axis list; a cliff runs low -> high *)
  let adjacent values a b =
    let pos v =
      let rec go i = function [] -> None | x :: r -> if x = v then Some i else go (i + 1) r in
      go 0 values
    in
    match (pos a, pos b) with Some i, Some j -> j = i + 1 | _ -> false
  in
  let step (a : cell) (b : cell) : (string * string * string) option =
    (* the one axis a -> b steps along, if it is exactly one *)
    let diffs = ref [] in
    let note axis from_ to_ = diffs := (axis, from_, to_) :: !diffs in
    if a.protocol <> b.protocol then
      if adjacent (dedup m.protocols) a.protocol b.protocol then
        note "protocol" (Params.protocol_name a.protocol) (Params.protocol_name b.protocol)
      else note "-" "" "";
    if a.instances <> b.instances then
      if adjacent (dedup m.instances) a.instances b.instances then
        note "instances" (string_of_int a.instances) (string_of_int b.instances)
      else note "-" "" "";
    if a.exec_threads <> b.exec_threads then
      if adjacent (dedup m.exec_threads) a.exec_threads b.exec_threads then
        note "exec_threads" (string_of_int a.exec_threads) (string_of_int b.exec_threads)
      else note "-" "" "";
    if a.backend <> b.backend then
      if adjacent (dedup m.backends) a.backend b.backend then
        note "backend" (backend_name a.backend) (backend_name b.backend)
      else note "-" "" "";
    if a.view_timeout_ms <> b.view_timeout_ms then
      if adjacent (dedup m.view_timeouts_ms) a.view_timeout_ms b.view_timeout_ms then
        note "view_timeout_ms"
          (Printf.sprintf "%g" a.view_timeout_ms)
          (Printf.sprintf "%g" b.view_timeout_ms)
      else note "-" "" "";
    if (a.shards, a.cross_fraction) <> (b.shards, b.cross_fraction) then
      if
        adjacent (dedup m.shard_axis) (a.shards, a.cross_fraction) (b.shards, b.cross_fraction)
      then
        note "shards"
          (Printf.sprintf "S=%d x=%g" a.shards a.cross_fraction)
          (Printf.sprintf "S=%d x=%g" b.shards b.cross_fraction)
      else note "-" "" "";
    if a.family <> b.family then
      if adjacent (families_of m) a.family b.family then
        note "family" (Nemesis.Gen.family_name a.family) (Nemesis.Gen.family_name b.family)
      else note "-" "" "";
    match !diffs with [ (("-", _, _) as _bad) ] -> None | [ d ] -> Some d | _ -> None
  in
  let cliffs =
    List.concat_map
      (fun (a, ra) ->
        List.filter_map
          (fun (b, rb) ->
            match step a b with
            | Some (axis, from_value, to_value)
              when Report.hazard_rate ra <= hazard_clean
                   && Report.hazard_rate rb >= hazard_cliff ->
              Some
                {
                  Report.axis;
                  from_value;
                  to_value;
                  cliff_cell = rb;
                  hazard_from = Report.hazard_rate ra;
                  hazard_to = Report.hazard_rate rb;
                }
            | _ -> None)
          agg)
      agg
  in
  List.sort compare cliffs

let run ?(jobs = 1) ?progress m : Report.t =
  let cells = expand m in
  let seeds = max 1 m.seeds in
  let runs =
    Array.of_list (List.concat_map (fun c -> List.init seeds (fun s -> (c, s))) cells)
  in
  let total = Array.length runs in
  let data_root =
    if List.exists (fun c -> c.backend = Durable) cells then Some (make_temp_root ()) else None
  in
  let done_count = Atomic.make 0 in
  let progress_lock = Mutex.create () in
  let exec i (c, seed_index) : raw =
    let data_dir =
      match (c.backend, data_root) with
      | Durable, Some root -> Some (Filename.concat root (Printf.sprintf "run-%d" i))
      | _ -> None
    in
    let p = params_for m ?data_dir c ~seed_index in
    let raw =
      if c.shards = 1 then begin
        let cl = Cluster.create p in
        let metrics, completion = Cluster.measure_bounded ~max_events:m.budget_events cl in
        let safety = Cluster.check_safety cl in
        Cluster.close cl;
        {
          facts = Metrics.outcome_facts metrics;
          safety_ok = (match safety with Ok () -> true | Error _ -> false);
          exhausted = completion = Cluster.Event_budget_exhausted;
        }
      end
      else begin
        (* Sharded cells run the whole co-simulation; the event budget
           spans all S groups, so it scales with S to stay per-group-fair
           while a wedged group still hits the cutoff. *)
        let r = Rdb_shard.Deployment.run ~budget_events:(c.shards * m.budget_events) p in
        {
          facts = Metrics.outcome_facts r.Rdb_shard.Deployment.aggregate;
          safety_ok =
            (match r.Rdb_shard.Deployment.safety with Ok () -> true | Error _ -> false);
          exhausted = r.Rdb_shard.Deployment.exhausted;
        }
      end
    in
    (match data_dir with Some d -> rm_rf d | None -> ());
    (match progress with
    | None -> ()
    | Some f ->
      let done_ = 1 + Atomic.fetch_and_add done_count 1 in
      Mutex.lock progress_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock progress_lock) (fun () -> f ~done_ ~total));
    raw
  in
  let raws = map_bounded ~jobs exec runs in
  (match data_root with Some root -> rm_rf root | None -> ());
  let cell_raws ci = List.init seeds (fun s -> raws.((ci * seeds) + s)) in
  (* Fault-free twins: mean throughput per axis combination, the
     denominator of every faulted cell's retention. *)
  let twin_means =
    List.concat
      (List.mapi
         (fun ci c ->
           if c.family = Nemesis.Gen.Fault_free then
             [ (axes_of c, mean (List.map (fun r -> r.facts.Metrics.of_throughput_tps) (cell_raws ci))) ]
           else [])
         cells)
  in
  let retention_of c (r : raw) =
    if c.family = Nemesis.Gen.Fault_free then None
    else
      match List.assoc_opt (axes_of c) twin_means with
      | Some twin when twin > 0.0 -> Some (r.facts.Metrics.of_throughput_tps /. twin)
      | _ -> None
  in
  let agg =
    List.mapi
      (fun ci c ->
        let rs = cell_raws ci in
        let retentions = List.map (retention_of c) rs in
        let outcomes =
          List.map2
            (fun (r : raw) retention ->
              Classify.classify m.thresholds
                {
                  Classify.facts = r.facts;
                  safety_ok = r.safety_ok;
                  budget_exhausted = r.exhausted;
                  retention;
                })
            rs retentions
        in
        let rc =
          report_cell c ~runs:(List.length rs) ~outcomes
            ~tputs:(List.map (fun (r : raw) -> r.facts.Metrics.of_throughput_tps) rs)
            ~retentions:(List.map (Option.value ~default:1.0) retentions)
            ~recoveries:(List.filter_map (fun (r : raw) -> r.facts.Metrics.of_recovery_s) rs)
        in
        (c, rc))
      cells
  in
  {
    Report.quick = m.quick;
    matrix_seed = m.matrix_seed;
    runs_per_cell = seeds;
    total_runs = total;
    budget_events = m.budget_events;
    thresholds = Classify.threshold_fields m.thresholds;
    cells = List.map snd agg;
    cliffs = find_cliffs m agg;
  }

(* Outcome classification: a pure function of one run's observation.  The
   thresholds are deliberately explicit record fields (not buried
   constants) — the report embeds them, so a reader of campaign JSON knows
   exactly what "degraded" meant for that sweep. *)

module Metrics = Rdb_core.Metrics
module Cluster = Rdb_core.Cluster

type outcome = Safe | Live | Degraded | Wedged | Unsafe

let all_outcomes = [ Safe; Live; Degraded; Wedged; Unsafe ]

let outcome_name = function
  | Safe -> "safe"
  | Live -> "live"
  | Degraded -> "degraded"
  | Wedged -> "wedged"
  | Unsafe -> "unsafe"

type thresholds = {
  min_progress_txns : int;
  recovery_bound_s : float;
  retention_degraded : float;
  retention_safe : float;
}

let default_thresholds =
  {
    min_progress_txns = 10;
    recovery_bound_s = 0.5;
    retention_degraded = 0.35;
    retention_safe = 0.85;
  }

let threshold_fields t =
  [
    ("min_progress_txns", float_of_int t.min_progress_txns);
    ("recovery_bound_s", t.recovery_bound_s);
    ("retention_degraded", t.retention_degraded);
    ("retention_safe", t.retention_safe);
  ]

type observation = {
  facts : Metrics.outcome_facts;
  safety_ok : bool;
  budget_exhausted : bool;
  retention : float option;
}

let observe ~metrics ~safety ~completion ~retention =
  {
    facts = Metrics.outcome_facts metrics;
    safety_ok = (match safety with Ok () -> true | Error _ -> false);
    budget_exhausted = (completion = Cluster.Event_budget_exhausted);
    retention;
  }

(* Severity-ordered decision ladder; each rung's predicate is one explicit
   threshold from the record above. *)
let classify (t : thresholds) (o : observation) =
  let f = o.facts in
  if not o.safety_ok then Unsafe
  else if o.budget_exhausted || f.Metrics.of_completed < t.min_progress_txns then Wedged
  else
    let slow_recovery =
      match f.Metrics.of_recovery_s with Some s -> s > t.recovery_bound_s | None -> false
    in
    let retention = Option.value ~default:1.0 o.retention in
    if slow_recovery || retention < t.retention_degraded then Degraded
    else if f.Metrics.of_perturbed || retention < t.retention_safe then Live
    else Safe

(** The fault-campaign runner: scenario coverage at scale.

    A {!matrix} declares a sweep — protocol × ordering instances (k) ×
    execute threads (E) × ledger backend × view timeout × fault-schedule
    family — plus a per-cell seed count.  {!expand} turns it into a
    deterministic run list; {!run} executes every run as an independent
    bounded DES simulation (in parallel on OCaml 5 domains when [jobs] >
    1), classifies each outcome with {!Classify}, aggregates per-cell
    statistics (outcome counts, recovery-time quantiles through the
    {!Rdb_des.Stats} reservoir, throughput retention vs the cell's
    fault-free twin) and returns a {!Rdb_obs.Campaign_report.t} naming the
    liveness cliffs.

    Determinism: each run's parameter seed and schedule derive from an
    FNV-1a hash of the matrix seed, the cell's axis values and the seed
    index — independent of run order, worker count and the other cells —
    and the report serializes in sorted cell order, so two invocations of
    the same matrix produce byte-identical JSON whether they ran on one
    domain or sixteen. *)

module Params = Rdb_core.Params
module Nemesis = Rdb_core.Nemesis

type backend = Mem | Durable

val backend_name : backend -> string
(** ["mem"] / ["durable"] — report field values. *)

val backend_of_name : string -> backend option

type matrix = {
  protocols : Params.protocol list;
  instances : int list;  (** k values (> 1 only valid for PBFT) *)
  exec_threads : int list;  (** E values *)
  backends : backend list;
  view_timeouts_ms : float list;
  shard_axis : (int * float) list;
      (** (S, cross fraction) deployment shapes; sharded entries
          ([S > 1]) are swept only over the base deployment (k = 1,
          E = 1, memory ledger) and run the full {!Rdb_shard.Deployment}
          co-simulation *)
  families : Nemesis.Gen.family list;
      (** {!Nemesis.Gen.family.Fault_free} is always swept even if absent
          here: every cell needs its throughput twin *)
  seeds : int;  (** runs per cell *)
  matrix_seed : int64;
  budget_events : int;  (** per-run DES event budget (wedge cutoff) *)
  thresholds : Classify.thresholds;
  base : Params.t;  (** everything the axes do not override *)
  quick : bool;  (** stamped into the report (gate refuses cross-mode diffs) *)
}

val quick_base : Params.t
(** Small, fast deployment for campaign cells: n = 4, a few hundred
    closed-loop clients, sub-second windows, client retransmission and the
    demand-timer liveness loop enabled. *)

val quick_matrix : matrix
(** The CI smoke sweep: protocols × k ∈ \{1, 2\} × E ∈ \{1, 2\} × both
    ledger backends × 4 families × 3 seeds, plus a sharded slice
    (S = 2 at 10% cross-shard traffic over the base deployment shape);
    invalid combinations are skipped at expansion. *)

val cliff_matrix : matrix
(** The liveness-cliff probe from EXPERIMENTS.md: PBFT under moderate
    (10%) vs heavy (35–55%) message loss across view timeouts of 150, 75
    and 40 ms.  The family step loss → heavy-loss is the cliff —
    retention collapses an order of magnitude and wedged runs appear,
    worst at the patient 150 ms timeout where a swallowed view change
    takes longest to retry. *)

val default_matrix : matrix
(** The full sweep: k and E up to 4, three view timeouts, all 8 schedule
    families, 10 seeds per cell — several thousand runs. *)

type cell = {
  protocol : Params.protocol;
  instances : int;
  exec_threads : int;
  backend : backend;
  view_timeout_ms : float;
  shards : int;
  cross_fraction : float;
  family : Nemesis.Gen.family;
}

val expand : matrix -> cell list
(** Every valid cell, in canonical (sorted) order; forces a
    [Fault_free] cell per axis combination. *)

val params_for : matrix -> ?data_dir:string -> cell -> seed_index:int -> Params.t
(** The exact {!Params.t} one run executes: axes applied over [base], the
    run seed and the generated nemesis schedule installed.  Exposed so
    tests (and a curious user reproducing one cell) can re-run any single
    campaign run bit-identically. *)

val total_runs : matrix -> int

val run :
  ?jobs:int -> ?progress:(done_:int -> total:int -> unit) -> matrix -> Rdb_obs.Campaign_report.t
(** Execute the whole matrix.  [jobs] bounds the domain worker pool
    (default 1 = serial; results are identical either way).  [progress] is
    called after each completed run, possibly from worker domains (calls
    are serialized). *)

(** One first-class-module interface over the three protocol cores.

    The hosting systems ({!Rdb_core.Cluster}, the real-clock local runtime)
    used to branch on a closed [Core_pbft | Core_zyz | Core_multi] variant
    at every dispatch site; every host-level feature (demand timers, state
    transfer, checkpoint installation) then had to be written three times.
    This module packs each core behind one signature so host code is
    written once and new cores slot in without touching the hosts.

    The cores themselves stay imperative; [step] returns the state anyway
    (physically the same value today) so a pure core can implement the
    same signature later. *)

(** Host-level stimuli, beyond proposing.  Instance arguments are 0 for
    single-instance protocols. *)
type input =
  | Deliver of { inst : int; msg : Message.t }  (** a protocol message arrived *)
  | Executed of { seq : int; state_digest : string; result : string }
      (** the execution stage finished the batch at global [seq] *)
  | Suspect of int  (** demand timer: depose instance's primary *)
  | Nudge of int  (** demand timer: retransmit votes for the stuck slot *)
  | Vc_retransmit of int  (** demand timer: re-broadcast a pending View_change *)
  | Keepalive of int  (** demand timer: plug a led instance's frontier *)
  | Install_checkpoint of { seq : int; state_digest : string }
      (** state-transfer admit: fast-forward to a verified stable
          checkpoint (the host already installed the ledger segment) *)

type defense = { equivocations : int; vc_suppressed : int }
(** Byzantine-defense counters a core accumulates: conflicting proposals
    observed for an occupied slot (evidence of an equivocating primary)
    and view-change messages discarded by the spam rate limit.  Multi-core
    deployments report the sum over their instances. *)

module type CORE = sig
  type state

  val protocol : string

  val demand_driven : bool
  (** whether the host should arm the demand (view-change) timer for this
      protocol; false for client-driven recovery (Zyzzyva) *)

  val instances : state -> int
  val view : state -> inst:int -> int
  val max_view : state -> int
  val leads : state -> inst:int -> bool
  val leads_any : state -> bool
  val last_executed : state -> int
  val last_stable : state -> int
  val in_view_change : state -> inst:int -> bool
  val pending_slots : state -> int  (** consensus slots currently tracked *)

  val escalation : state -> pending:bool -> inflight:bool -> int option
  (** Which instance the demand timer should escalate against, given
      whether this host holds queued ([pending]) or batched-but-unexecuted
      ([inflight]) client transactions; [None] when there is nothing to
      escalate. *)

  val stable_certificate : state -> (int * string * int list) option
  (** last stable checkpoint as [(seq, state_digest, senders)], for
      state-transfer donors; [None] when this core cannot prove one *)

  val defenses : state -> defense
  (** byzantine-defense counters accumulated so far (see {!defense}) *)

  val propose :
    state ->
    reqs:Message.request_ref list ->
    digest:string ->
    wire_bytes:int ->
    Message.batch option * (int * Action.t) list * int
  (** Returns the accepted batch (if leading), instance-tagged actions,
      and the instance the proposal went to (0 for single-instance). *)

  val step : state -> input -> state * (int * Action.t) list
  (** Feed one input; returns the (possibly updated) state and
      instance-tagged actions. *)
end

(* ---- PBFT, single instance ---------------------------------------------- *)

module Pbft_core = struct
  type state = Pbft_replica.t

  let protocol = "pbft"
  let demand_driven = true
  let instances _ = 1
  let view s ~inst:_ = Pbft_replica.view s
  let max_view = Pbft_replica.view
  let leads s ~inst:_ = Pbft_replica.is_primary s
  let leads_any = Pbft_replica.is_primary
  let last_executed = Pbft_replica.last_executed
  let last_stable = Pbft_replica.last_stable_checkpoint
  let in_view_change s ~inst:_ = Pbft_replica.in_view_change s
  let pending_slots = Pbft_replica.pending_instances

  (* A backup holding unserved demand escalates against the (single)
     primary; the primary itself has no one to suspect. *)
  let escalation s ~pending ~inflight:_ =
    if pending && not (Pbft_replica.is_primary s) then Some 0 else None

  let stable_certificate = Pbft_replica.stable_certificate

  let defenses s =
    {
      equivocations = Pbft_replica.equivocations_detected s;
      vc_suppressed = Pbft_replica.vc_spam_suppressed s;
    }

  let tag acts = List.map (fun a -> (0, a)) acts

  let propose s ~reqs ~digest ~wire_bytes =
    let b, acts = Pbft_replica.propose s ~reqs ~digest ~wire_bytes in
    (b, tag acts, 0)

  let step s input =
    let acts =
      match input with
      | Deliver { inst = _; msg } -> Pbft_replica.handle_message s msg
      | Executed { seq; state_digest; result } ->
        Pbft_replica.handle_executed s ~seq ~state_digest ~result
      | Suspect _ -> Pbft_replica.suspect_primary s
      | Nudge _ -> Pbft_replica.nudge s
      | Vc_retransmit _ -> Pbft_replica.view_change_retransmit s
      | Keepalive _ -> []
      | Install_checkpoint { seq; state_digest } ->
        Pbft_replica.install_checkpoint s ~seq ~state_digest;
        []
    in
    (s, tag acts)
end

(* ---- HotStuff-lineage linear core ---------------------------------------- *)

module Hotstuff_core = struct
  type state = Hotstuff_replica.t

  let protocol = "hotstuff"

  (* The pacemaker IS the host's demand timer: unserved demand escalates
     nudge -> suspect exactly as for PBFT (see the pacemaker contract in
     hotstuff_replica.mli). *)
  let demand_driven = true
  let instances _ = 1
  let view s ~inst:_ = Hotstuff_replica.view s
  let max_view = Hotstuff_replica.view
  let leads s ~inst:_ = Hotstuff_replica.is_leader s
  let leads_any = Hotstuff_replica.is_leader
  let last_executed = Hotstuff_replica.last_executed
  let last_stable = Hotstuff_replica.last_stable_checkpoint
  let in_view_change s ~inst:_ = Hotstuff_replica.in_view_change s
  let pending_slots = Hotstuff_replica.pending_slots

  (* A backup holding unserved demand escalates against the (single)
     leader; the leader itself recovers through its backups' nudges. *)
  let escalation s ~pending ~inflight:_ =
    if pending && not (Hotstuff_replica.is_leader s) then Some 0 else None

  let stable_certificate = Hotstuff_replica.stable_certificate

  let defenses s =
    {
      equivocations = Hotstuff_replica.equivocations_detected s;
      vc_suppressed = Hotstuff_replica.vc_spam_suppressed s;
    }

  let tag acts = List.map (fun a -> (0, a)) acts

  let propose s ~reqs ~digest ~wire_bytes =
    let b, acts = Hotstuff_replica.propose s ~reqs ~digest ~wire_bytes in
    (b, tag acts, 0)

  let step s input =
    let acts =
      match input with
      | Deliver { inst = _; msg } -> Hotstuff_replica.handle_message s msg
      | Executed { seq; state_digest; result } ->
        Hotstuff_replica.handle_executed s ~seq ~state_digest ~result
      | Suspect _ -> Hotstuff_replica.suspect_primary s
      | Nudge _ -> Hotstuff_replica.nudge s
      | Vc_retransmit _ -> Hotstuff_replica.view_change_retransmit s
      | Keepalive _ -> []
      | Install_checkpoint { seq; state_digest } ->
        Hotstuff_replica.install_checkpoint s ~seq ~state_digest;
        []
    in
    (s, tag acts)
end

(* ---- Zyzzyva ------------------------------------------------------------- *)

module Zyz_core = struct
  type state = Zyzzyva_replica.t

  let protocol = "zyzzyva"

  (* Zyzzyva's liveness is client-driven (commit certificates after the
     client timeout), not demand-timer-driven. *)
  let demand_driven = false
  let instances _ = 1
  let view _ ~inst:_ = 0
  let max_view _ = 0
  let leads s ~inst:_ = Zyzzyva_replica.is_primary s
  let leads_any = Zyzzyva_replica.is_primary
  let last_executed = Zyzzyva_replica.last_spec_executed
  let last_stable _ = 0
  let in_view_change _ ~inst:_ = false
  let pending_slots _ = 0
  let escalation _ ~pending:_ ~inflight:_ = None
  let stable_certificate _ = None

  (* No view change in this core, so nothing to spam. *)
  let defenses s =
    { equivocations = Zyzzyva_replica.equivocations_detected s; vc_suppressed = 0 }

  let tag acts = List.map (fun a -> (0, a)) acts

  let propose s ~reqs ~digest ~wire_bytes =
    let b, acts = Zyzzyva_replica.propose s ~reqs ~digest ~wire_bytes in
    (b, tag acts, 0)

  let step s input =
    let acts =
      match input with
      | Deliver { inst = _; msg } -> Zyzzyva_replica.handle_message s msg
      | Executed { seq; state_digest; result } ->
        Zyzzyva_replica.handle_executed s ~seq ~state_digest ~result
      | Suspect _ | Nudge _ | Vc_retransmit _ | Keepalive _ | Install_checkpoint _ -> []
    in
    (s, tag acts)
end

(* ---- Multi-primary PBFT --------------------------------------------------- *)

module Multi_core = struct
  type state = {
    m : Multi_pbft.t;
    mutable next_lead : int;
        (** rotation cursor over the instances this host currently leads,
            so proposals spread across them *)
  }

  let protocol = "multi-pbft"
  let demand_driven = true
  let instances s = Multi_pbft.instances s.m
  let view s ~inst = Multi_pbft.view s.m ~inst
  let max_view s = Multi_pbft.max_view s.m
  let leads s ~inst = Multi_pbft.is_primary s.m ~inst
  let leads_any s = Multi_pbft.leads_any s.m
  let last_executed s = Multi_pbft.last_executed s.m
  let last_stable s = Multi_pbft.last_stable_checkpoint s.m
  let in_view_change s ~inst = Multi_pbft.in_view_change s.m ~inst
  let pending_slots s = Multi_pbft.pending_instances s.m

  (* The escalation aims at the instance the global execution merge is
     blocked on: that residue class is where the hole is.  Transactions this
     host already batched onto its own instances keep the escalation alive
     even though its queue is empty — they cannot complete until the blocked
     instance plugs the merge hole. *)
  let escalation s ~pending ~inflight =
    if pending || inflight then Some (Multi_pbft.waiting_instance s.m) else None

  (* The per-instance children garbage-collect against their own local
     checkpoints; a donor certificate over the merged global sequence is not
     available, so multi-primary hosts recover through per-instance
     checkpoint adoption instead of serving state transfers. *)
  let stable_certificate _ = None

  let defenses s =
    {
      equivocations = Multi_pbft.equivocations_detected s.m;
      vc_suppressed = Multi_pbft.vc_spam_suppressed s.m;
    }

  let route rs =
    List.map (fun (r : Multi_pbft.routed) -> (r.Multi_pbft.inst, r.Multi_pbft.act)) rs

  let propose s ~reqs ~digest ~wire_bytes =
    match Multi_pbft.led_instances s.m with
    | [] -> (None, [], 0)
    | led ->
      let inst = List.nth led (s.next_lead mod List.length led) in
      s.next_lead <- s.next_lead + 1;
      let b, r = Multi_pbft.propose s.m ~inst ~reqs ~digest ~wire_bytes in
      (b, route r, inst)

  let step s input =
    let acts =
      match input with
      | Deliver { inst; msg } -> Multi_pbft.handle_message s.m ~inst msg
      | Executed { seq; state_digest; result } ->
        Multi_pbft.handle_executed s.m ~seq ~state_digest ~result
      | Suspect inst -> Multi_pbft.suspect_primary s.m ~inst
      | Nudge inst -> Multi_pbft.nudge s.m ~inst
      | Vc_retransmit inst -> Multi_pbft.view_change_retransmit s.m ~inst
      | Keepalive inst -> Multi_pbft.keepalive s.m ~inst
      | Install_checkpoint _ -> []
    in
    (s, route acts)
end

(* ---- packing -------------------------------------------------------------- *)

type t = Core : (module CORE with type state = 's) * 's -> t

let pbft cfg ~id = Core ((module Pbft_core), Pbft_replica.create cfg ~id)
let hotstuff cfg ~id = Core ((module Hotstuff_core), Hotstuff_replica.create cfg ~id)
let zyzzyva cfg ~id = Core ((module Zyz_core), Zyzzyva_replica.create cfg ~id)

let multi cfg ~instances ~id =
  Core
    ( (module Multi_core),
      { Multi_core.m = Multi_pbft.create cfg ~instances ~id; next_lead = 0 } )

(* Packed dispatchers: host code calls these and never matches on the
   protocol again. *)

let protocol (Core ((module C), _)) = C.protocol
let demand_driven (Core ((module C), _)) = C.demand_driven
let instances (Core ((module C), s)) = C.instances s
let view (Core ((module C), s)) ~inst = C.view s ~inst
let max_view (Core ((module C), s)) = C.max_view s
let leads (Core ((module C), s)) ~inst = C.leads s ~inst
let leads_any (Core ((module C), s)) = C.leads_any s
let last_executed (Core ((module C), s)) = C.last_executed s
let last_stable (Core ((module C), s)) = C.last_stable s
let in_view_change (Core ((module C), s)) ~inst = C.in_view_change s ~inst
let pending_slots (Core ((module C), s)) = C.pending_slots s
let escalation (Core ((module C), s)) ~pending ~inflight = C.escalation s ~pending ~inflight
let stable_certificate (Core ((module C), s)) = C.stable_certificate s
let defenses (Core ((module C), s)) = C.defenses s

let propose (Core ((module C), s)) ~reqs ~digest ~wire_bytes =
  C.propose s ~reqs ~digest ~wire_bytes

let step (Core ((module C), s)) input = snd (C.step s input)

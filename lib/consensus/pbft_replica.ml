type instance = {
  i_view : int;
  i_seq : int;
  mutable batch : Message.batch option;
  mutable sent_prepare : bool;
  mutable sent_commit : bool;
  mutable committed : bool;
  mutable executed : bool;
  mutable hole_requested : bool;
      (* one pre-prepare retransmission request per slot (see Fill_hole) *)
  mutable echoed_to : int list;
      (* peers already answered with an echo for this slot: an echo is itself
         a duplicate at its receiver, so unlimited echoing would ping-pong —
         and network duplication would seed such storms everywhere *)
  (* digest -> senders, so conflicting proposals cannot pool votes *)
  prepares : string Quorum.t;
  commits : string Quorum.t;
}

type t = {
  config : Config.t;
  id : int;
  mutable view : int;
  mutable next_seq : int; (* primary's sequence counter *)
  mutable last_executed : int; (* highest seq handed to the execution layer *)
  mutable last_exec_ack : int; (* highest seq the execution layer confirmed *)
  mutable last_stable : int;
  mutable in_view_change : bool;
  mutable vc_target : int; (* view we are trying to move to *)
  instances : (int * int, instance) Hashtbl.t; (* (view, seq) *)
  committed_batches : (int, Message.batch) Hashtbl.t; (* seq -> batch, awaiting execution *)
  executed_batches : (int, Message.batch) Hashtbl.t; (* seq -> batch, awaiting executed-callback *)
  checkpoints : (int * string) Quorum.t; (* (seq, state digest) *)
  view_changes : int Quorum.t; (* new-view number *)
  vc_messages : (int, (int * Message.prepared_proof list) list) Hashtbl.t;
      (* new-view -> (sender, prepared proofs) *)
  mutable own_checkpoint_digests : (int * string) list; (* seq -> our state digest *)
  mutable last_new_view : Message.t option;
      (* the New_view we broadcast as primary, kept to answer laggards whose
         view-change messages were lost *)
  mutable stable_cert : (int * string * int list) option;
      (* the 2f+1 senders behind the last stable checkpoint, retained after
         the quorum table is garbage-collected so a state-transfer donor can
         ship the certificate *)
  mutable equivocations : int;
      (* conflicting pre-prepares observed for an occupied slot: evidence of
         an equivocating primary (each conflict is counted, then dropped) *)
  mutable vc_suppressed : int;
      (* view-change messages discarded by the spam rate limit below *)
  vc_registered : (int, int list) Hashtbl.t;
      (* sender -> distinct pending new-views it has registered above our
         current view; bounds how much view-change state one byzantine
         peer can make us hold *)
}

(* View-change spam limits: a sender may register at most
   [max_pending_vcs] distinct future views, none further than
   [max_vc_skew] views ahead of ours.  Honest replicas advance their
   view-change target one view at a time, so legitimate traffic sits far
   inside both bounds; a spammer flooding fabricated view numbers is
   clipped after a handful of table entries. *)
let max_vc_skew = 8
let max_pending_vcs = 4

let create config ~id =
  {
    config;
    id;
    view = 0;
    next_seq = 1;
    last_executed = 0;
    last_exec_ack = 0;
    last_stable = 0;
    in_view_change = false;
    vc_target = 0;
    instances = Hashtbl.create 256;
    committed_batches = Hashtbl.create 64;
    executed_batches = Hashtbl.create 64;
    checkpoints = Quorum.create ();
    view_changes = Quorum.create ();
    vc_messages = Hashtbl.create 8;
    own_checkpoint_digests = [];
    last_new_view = None;
    stable_cert = None;
    equivocations = 0;
    vc_suppressed = 0;
    vc_registered = Hashtbl.create 8;
  }

let id t = t.id
let view t = t.view
let is_primary t = Config.primary_of_view t.config t.view = t.id
let last_executed t = t.last_executed
let last_stable_checkpoint t = t.last_stable
let in_view_change t = t.in_view_change
let pending_instances t = Hashtbl.length t.instances
let equivocations_detected t = t.equivocations
let vc_spam_suppressed t = t.vc_suppressed

let instance t ~view ~seq =
  match Hashtbl.find_opt t.instances (view, seq) with
  | Some i -> i
  | None ->
    let i =
      {
        i_view = view;
        i_seq = seq;
        batch = None;
        sent_prepare = false;
        sent_commit = false;
        committed = false;
        executed = false;
        hole_requested = false;
        echoed_to = [];
        prepares = Quorum.create ();
        commits = Quorum.create ();
      }
    in
    Hashtbl.add t.instances (view, seq) i;
    i

let in_window t seq = seq > t.last_stable && seq <= t.last_stable + t.config.Config.high_water_mark

(* Emits Execute actions for every committed batch that is next in order. *)
let try_execute t =
  let actions = ref [] in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.committed_batches (t.last_executed + 1) with
    | Some batch ->
      Hashtbl.remove t.committed_batches batch.Message.seq;
      Hashtbl.replace t.executed_batches batch.Message.seq batch;
      t.last_executed <- batch.Message.seq;
      actions := Action.Execute batch :: !actions
    | None -> continue := false
  done;
  List.rev !actions

(* Re-evaluates an instance after new evidence arrived. *)
let progress t (i : instance) =
  let actions = ref [] in
  (match i.batch with
  | None -> ()
  | Some batch ->
    let d = batch.Message.digest in
    (* Prepared: pre-prepare + 2f matching prepares (our own included once
       we sent it; the primary never sends prepare, matching PBFT). *)
    if (not i.sent_commit) && Quorum.count i.prepares d >= Config.prepare_quorum t.config then begin
      i.sent_commit <- true;
      ignore (Quorum.add i.commits d t.id);
      actions := Action.Broadcast (Message.Commit { view = i.i_view; seq = i.i_seq; digest = d; from = t.id }) :: !actions
    end;
    if (not i.committed) && Quorum.count i.commits d >= Config.commit_quorum t.config then begin
      i.committed <- true;
      Hashtbl.replace t.committed_batches i.i_seq batch
    end);
  !actions

let accept_pre_prepare t ~view ~(batch : Message.batch) =
  let i = instance t ~view ~seq:batch.Message.seq in
  match i.batch with
  | Some existing when not (String.equal existing.Message.digest batch.Message.digest) ->
    (* Conflicting proposal for an occupied slot: byzantine primary.
       Record the equivocation evidence and drop; because prepare/commit
       quorums are keyed by digest, the conflicting copies split votes and
       neither side can reach a quorum the other also reached (quorum
       intersection keeps safety), while the view change restores
       liveness by deposing the equivocator. *)
    t.equivocations <- t.equivocations + 1;
    []
  | Some _ -> []
  | None ->
    i.batch <- Some batch;
    let actions = ref [] in
    (* Backups answer with Prepare; the primary's pre-prepare stands for its
       prepare. *)
    if Config.primary_of_view t.config view <> t.id && not i.sent_prepare then begin
      i.sent_prepare <- true;
      ignore (Quorum.add i.prepares batch.Message.digest t.id);
      actions :=
        Action.Broadcast
          (Message.Prepare { view; seq = batch.Message.seq; digest = batch.Message.digest; from = t.id })
        :: !actions
    end;
    (* Evaluation order matters: [progress] must record a commit before
       [try_execute] looks for executable batches. *)
    let advanced = progress t i in
    let executed = try_execute t in
    !actions @ advanced @ executed

let propose t ~reqs ~digest ~wire_bytes =
  if (not (is_primary t)) || t.in_view_change || not (in_window t t.next_seq) then (None, [])
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let batch = { Message.view = t.view; seq; digest; reqs; wire_bytes } in
    let actions = accept_pre_prepare t ~view:t.view ~batch in
    ( Some batch,
      Action.Broadcast (Message.Pre_prepare { view = t.view; seq; batch; from = t.id }) :: actions )
  end

(* ---- checkpointing ------------------------------------------------------ *)

let note_checkpoint t ~seq ~state_digest ~from =
  let n = Quorum.add t.checkpoints (seq, state_digest) from in
  if n >= Config.commit_quorum t.config && seq > t.last_stable then begin
    t.last_stable <- seq;
    (* Retain the certificate before the quorum table is collected below:
       a state-transfer donor ships it as proof of the checkpoint. *)
    t.stable_cert <- Some (seq, state_digest, Quorum.senders t.checkpoints (seq, state_digest));
    (* A replica that fell behind adopts the stable checkpoint: the 2f+1
       matching digests stand in for a state transfer. *)
    if t.last_executed < seq then begin
      t.last_executed <- seq;
      t.last_exec_ack <- max t.last_exec_ack seq;
      let stale =
        Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.committed_batches []
      in
      List.iter (Hashtbl.remove t.committed_batches) stale
    end;
    (* Garbage-collect everything at or below the stable checkpoint. *)
    let doomed =
      Hashtbl.fold (fun (v, s) _ acc -> if s <= seq then (v, s) :: acc else acc) t.instances []
    in
    List.iter (Hashtbl.remove t.instances) doomed;
    Quorum.filter_keys t.checkpoints (fun (s, _) -> s > seq);
    t.own_checkpoint_digests <- List.filter (fun (s, _) -> s > seq) t.own_checkpoint_digests;
    let doomed_exec =
      Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.executed_batches []
    in
    List.iter (Hashtbl.remove t.executed_batches) doomed_exec;
    [ Action.Stable_checkpoint seq ]
  end
  else []

let stable_certificate t = t.stable_cert

(* State-transfer admit: the verified checkpoint certificate plays the role
   of the 2f+1 Checkpoint messages, so the core fast-forwards exactly as
   [note_checkpoint] would — without emitting a [Stable_checkpoint] action
   (the host already installed the transferred ledger segment). *)
let install_checkpoint t ~seq ~state_digest =
  if seq > t.last_stable then begin
    t.last_stable <- seq;
    t.stable_cert <- Some (seq, state_digest, []);
    if t.last_executed < seq then begin
      t.last_executed <- seq;
      t.last_exec_ack <- max t.last_exec_ack seq;
      let stale =
        Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.committed_batches []
      in
      List.iter (Hashtbl.remove t.committed_batches) stale
    end;
    t.next_seq <- max t.next_seq (seq + 1);
    let doomed =
      Hashtbl.fold (fun (v, s) _ acc -> if s <= seq then (v, s) :: acc else acc) t.instances []
    in
    List.iter (Hashtbl.remove t.instances) doomed;
    Quorum.filter_keys t.checkpoints (fun (s, _) -> s > seq);
    t.own_checkpoint_digests <- List.filter (fun (s, _) -> s > seq) t.own_checkpoint_digests;
    let doomed_exec =
      Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.executed_batches []
    in
    List.iter (Hashtbl.remove t.executed_batches) doomed_exec
  end

(* ---- view change -------------------------------------------------------- *)

(* Prepared proofs: instances that reached the prepared state (2f prepares)
   above the stable checkpoint, reported with their batch so the new primary
   can re-propose. *)
let prepared_proofs t =
  Hashtbl.fold
    (fun (v, s) (i : instance) acc ->
      if s > t.last_stable && i.sent_commit then
        match i.batch with
        | Some b ->
          { Message.p_view = v; p_seq = s; p_digest = b.Message.digest; p_batch = b } :: acc
        | None -> acc
      else acc)
    t.instances []

let start_view_change t ~target =
  if t.in_view_change && t.vc_target >= target then []
  else begin
    t.in_view_change <- true;
    t.vc_target <- target;
    let vc =
      Message.View_change
        { new_view = target; last_stable = t.last_stable; prepared = prepared_proofs t; from = t.id }
    in
    (* Count our own view-change towards the quorum. *)
    ignore (Quorum.add t.view_changes target t.id);
    let mine = (t.id, prepared_proofs t) in
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.vc_messages target) in
    if not (List.mem_assoc t.id existing) then Hashtbl.replace t.vc_messages target (mine :: existing);
    [ Action.Broadcast vc ]
  end

let suspect_primary t = start_view_change t ~target:(t.view + 1)

(* Re-broadcast our pending View_change: view-change messages carry no
   retransmission of their own, so under loss the quorum can starve without
   this (the hosting system's timer calls it while the change is stuck). *)
let view_change_retransmit t =
  if not t.in_view_change then []
  else
    [
      Action.Broadcast
        (Message.View_change
           {
             new_view = t.vc_target;
             last_stable = t.last_stable;
             prepared = prepared_proofs t;
             from = t.id;
           });
    ]

(* Once a view installs, registrations at or below it are settled and no
   longer count against their sender's spam budget. *)
let prune_vc_registry t =
  Hashtbl.filter_map_inplace
    (fun _ vs ->
      match List.filter (fun v -> v > t.view) vs with [] -> None | vs -> Some vs)
    t.vc_registered

(* The new primary assembles New_view once it has a 2f+1 view-change quorum. *)
let maybe_new_view t ~target =
  if Config.primary_of_view t.config target <> t.id then []
  else if Quorum.count t.view_changes target < Config.commit_quorum t.config then []
  else if t.view >= target then []
  else begin
    let vcs = Option.value ~default:[] (Hashtbl.find_opt t.vc_messages target) in
    (* For every sequence number above the stable checkpoint that is prepared
       in any view-change message, re-propose the batch with the highest
       view; fill gaps with no-ops. *)
    let best : (int, Message.prepared_proof) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun (_, proofs) ->
        List.iter
          (fun (p : Message.prepared_proof) ->
            match Hashtbl.find_opt best p.Message.p_seq with
            | Some q when q.Message.p_view >= p.Message.p_view -> ()
            | _ -> Hashtbl.replace best p.Message.p_seq p)
          proofs)
      vcs;
    let max_seq = Hashtbl.fold (fun s _ acc -> max s acc) best t.last_stable in
    let pre_prepares = ref [] in
    for seq = t.last_stable + 1 to max_seq do
      let batch =
        match Hashtbl.find_opt best seq with
        | Some p ->
          { p.Message.p_batch with Message.view = target }
        | None ->
          (* No-op filler so execution stays gap-free. *)
          {
            Message.view = target;
            seq;
            digest = "noop:" ^ string_of_int seq;
            reqs = [];
            wire_bytes = 0;
          }
      in
      pre_prepares := batch :: !pre_prepares
    done;
    let pre_prepares = List.rev !pre_prepares in
    t.view <- target;
    t.in_view_change <- false;
    prune_vc_registry t;
    t.next_seq <- max_seq + 1;
    let nv =
      Message.New_view
        { view = target; vc_senders = Quorum.senders t.view_changes target; pre_prepares; from = t.id }
    in
    t.last_new_view <- Some nv;
    let adopt =
      List.concat_map (fun b -> accept_pre_prepare t ~view:target ~batch:b) pre_prepares
    in
    Action.Broadcast nv :: adopt
  end

let handle_new_view t ~view ~(pre_prepares : Message.batch list) ~from =
  if view < t.view || Config.primary_of_view t.config view <> from then []
  else begin
    t.view <- view;
    t.in_view_change <- false;
    prune_vc_registry t;
    List.concat_map (fun (b : Message.batch) -> accept_pre_prepare t ~view ~batch:b) pre_prepares
  end

(* ---- vote retransmission ------------------------------------------------- *)

(* A duplicate vote only ever arrives when the sender is retransmitting —
   either the network duplicated it or the sender is stuck and [nudge]ing.
   Answering with our own votes for the same slot tops the sender's quorum
   back up after its original copies were lost, without any cost on the
   loss-free path (where duplicates never occur).  At most one echo per
   (slot, peer): the echo arrives as a duplicate too, and answering
   duplicates of duplicates would double the traffic every round trip. *)
let echo_votes t (i : instance) ~dup ~target =
  if (not dup) || List.mem target i.echoed_to then []
  else
    match i.batch with
    | None -> []
    | Some b ->
      i.echoed_to <- target :: i.echoed_to;
      let d = b.Message.digest in
      let commit =
        if i.sent_commit then
          [ Action.Send (target, Message.Commit { view = i.i_view; seq = i.i_seq; digest = d; from = t.id }) ]
        else []
      in
      let prepare =
        if i.sent_prepare then
          [ Action.Send (target, Message.Prepare { view = i.i_view; seq = i.i_seq; digest = d; from = t.id }) ]
        else []
      in
      prepare @ commit

(* A full vote quorum pooled for a slot we hold no batch for proves the
   pre-prepare is long gone (it preceded every one of those votes): fetch it
   eagerly instead of waiting for the demand timer to notice the wedge.
   Once per slot; the timer-driven [nudge] below is the backstop if the
   retransmission is itself lost. *)
let maybe_fetch_batch t (i : instance) ~digest =
  if
    i.batch = None
    && (not i.hole_requested)
    && Config.primary_of_view t.config i.i_view <> t.id
    && (Quorum.count i.commits digest >= Config.commit_quorum t.config
       || Quorum.count i.prepares digest >= Config.prepare_quorum t.config)
  then begin
    i.hole_requested <- true;
    [
      Action.Send
        ( Config.primary_of_view t.config i.i_view,
          Message.Fill_hole { view = i.i_view; from_seq = i.i_seq; to_seq = i.i_seq; from = t.id } );
    ]
  end
  else []

(* Re-broadcast our votes for the oldest unexecuted instance.  Under message
   loss a replica can be starved of prepares or commits the others already
   sent (exactly once, as the protocol specifies); the duplicates this
   produces make every peer echo its own votes back, restoring the starved
   quorum far more cheaply than a view change.  A slot whose PRE-PREPARE was
   lost is worse — the replica would wedge there forever — so for a batchless
   slot we instead ask the primary to resend the missing range (Zyzzyva's
   fill-hole sub-protocol, reused). *)
let nudge t =
  if t.in_view_change then []
  else begin
    let seq = t.last_executed + 1 in
    if not (in_window t seq) then []
    else begin
      let fetch_hole () =
        let primary = Config.primary_of_view t.config t.view in
        if primary = t.id then []
        else begin
          (* Cover the contiguous run of batchless slots in one request. *)
          let have = Hashtbl.create 64 in
          Hashtbl.iter
            (fun (_, s) (i : instance) -> if i.batch <> None then Hashtbl.replace have s ())
            t.instances;
          let to_seq = ref seq in
          while
            !to_seq - seq < 63 && in_window t (!to_seq + 1) && not (Hashtbl.mem have (!to_seq + 1))
          do
            incr to_seq
          done;
          [ Action.Send (primary, Message.Fill_hole { view = t.view; from_seq = seq; to_seq = !to_seq; from = t.id }) ]
        end
      in
      (* The slot may have been proposed in an earlier view we since left;
         re-send the votes from its highest incarnation. *)
      let best =
        Hashtbl.fold
          (fun (v, s) (i : instance) acc ->
            if s <> seq then acc
            else match acc with Some (j : instance) when j.i_view >= v -> acc | _ -> Some i)
          t.instances None
      in
      match best with
      | None -> fetch_hole ()
      | Some i -> (
        match i.batch with
        | None -> fetch_hole ()
        | Some b ->
          let d = b.Message.digest in
          let prepare =
            if i.sent_prepare && not i.sent_commit then
              [ Action.Broadcast (Message.Prepare { view = i.i_view; seq = i.i_seq; digest = d; from = t.id }) ]
            else []
          in
          let commit =
            if i.sent_commit then
              [ Action.Broadcast (Message.Commit { view = i.i_view; seq = i.i_seq; digest = d; from = t.id }) ]
            else []
          in
          prepare @ commit)
    end
  end

(* ---- message dispatch ---------------------------------------------------- *)

let handle_message t (msg : Message.t) =
  match msg with
  | Message.Pre_prepare { view; seq; batch; from } ->
    if view <> t.view || t.in_view_change || from <> Config.primary_of_view t.config view then []
    else if not (in_window t seq) then []
    else if seq <> batch.Message.seq then []
    else begin
      let before = t.equivocations in
      let actions = accept_pre_prepare t ~view ~batch in
      if t.equivocations > before then
        (* Two conflicting pre-prepares signed by one primary are a
           transferable proof of misbehavior: echo the conflicting copy so
           every replica sees the contradiction for itself, and join the
           view change that deposes the equivocator.  Without this, only
           the replicas straddling the split would ever suspect, staying
           below the f+1 join threshold while their slot wedges. *)
        (Action.Broadcast msg :: suspect_primary t) @ actions
      else actions
    end
  | Message.Prepare { view; seq; digest; from } ->
    (* Mid view-change only current-view traffic is ignored; votes for a
       HIGHER view are buffered in their (view, seq) instance — they come
       from replicas that installed the new view first, and dropping them
       would starve the post-new-view quorums under message loss. *)
    if view < t.view || (t.in_view_change && view = t.view) || not (in_window t seq) then []
    else begin
      let i = instance t ~view ~seq in
      let dup = List.mem from (Quorum.senders i.prepares digest) in
      ignore (Quorum.add i.prepares digest from);
      let fetch = maybe_fetch_batch t i ~digest in
      let advanced = progress t i in
      let executed = try_execute t in
      fetch @ echo_votes t i ~dup ~target:from @ advanced @ executed
    end
  | Message.Commit { view; seq; digest; from } ->
    if view < t.view || (t.in_view_change && view = t.view) || not (in_window t seq) then []
    else begin
      let i = instance t ~view ~seq in
      let dup = List.mem from (Quorum.senders i.commits digest) in
      ignore (Quorum.add i.commits digest from);
      let fetch = maybe_fetch_batch t i ~digest in
      let advanced = progress t i in
      let executed = try_execute t in
      fetch @ echo_votes t i ~dup ~target:from @ advanced @ executed
    end
  | Message.Checkpoint { seq; state_digest; from } -> note_checkpoint t ~seq ~state_digest ~from
  | Message.View_change { new_view; prepared; from; _ } ->
    if new_view <= t.view then begin
      (* A laggard still trying to leave a view we already left: if we are
         the primary that installed the current view, re-send our New_view
         so it can catch up (re-adoption is idempotent). *)
      match t.last_new_view with
      | Some (Message.New_view { view; _ } as nv)
        when view = t.view && Config.primary_of_view t.config t.view = t.id ->
        [ Action.Send (from, nv) ]
      | _ -> []
    end
    else begin
      (* Spam rate limit: clip view numbers beyond any plausible horizon,
         and cap how many distinct future views one sender may register.
         Registration is idempotent, so honest retransmissions of a
         pending view-change pass through unharmed. *)
      let registered = Option.value ~default:[] (Hashtbl.find_opt t.vc_registered from) in
      let fresh = not (List.mem new_view registered) in
      if new_view > t.view + max_vc_skew || (fresh && List.length registered >= max_pending_vcs)
      then begin
        t.vc_suppressed <- t.vc_suppressed + 1;
        []
      end
      else begin
        if fresh then Hashtbl.replace t.vc_registered from (new_view :: registered);
        ignore (Quorum.add t.view_changes new_view from);
        let existing = Option.value ~default:[] (Hashtbl.find_opt t.vc_messages new_view) in
        if not (List.mem_assoc from existing) then
          Hashtbl.replace t.vc_messages new_view ((from, prepared) :: existing);
        (* Join the view change once f+1 replicas vouch for it (liveness). *)
        let join =
          if
            Quorum.count t.view_changes new_view >= t.config.Config.f + 1
            && not (t.in_view_change && t.vc_target >= new_view)
          then start_view_change t ~target:new_view
          else []
        in
        (* [join] may have added our own view-change to the quorum, so the
           new-view check must run after it. *)
        let nv = maybe_new_view t ~target:new_view in
        join @ nv
      end
    end
  | Message.New_view { view; pre_prepares; from; _ } -> handle_new_view t ~view ~pre_prepares ~from
  | Message.Fill_hole { view; from_seq; to_seq; from } ->
    (* Pre-prepare retransmission (the fill-hole message reused from
       Zyzzyva): a backup wedged on a slot whose pre-prepare was lost asks
       for the batch; the votes it has pooled fire as soon as it lands. *)
    if view <> t.view || Config.primary_of_view t.config view <> t.id || t.in_view_change then []
    else
      List.filter_map
        (fun seq ->
          match Hashtbl.find_opt t.instances (t.view, seq) with
          | Some { batch = Some b; _ } ->
            Some (Action.Send (from, Message.Pre_prepare { view = t.view; seq; batch = b; from = t.id }))
          | _ -> None)
        (List.init (max 0 (to_seq - from_seq + 1)) (fun i -> from_seq + i))
  | Message.Order_request _ | Message.Commit_cert _ ->
    (* Zyzzyva traffic; not ours. *)
    []
  | Message.Hs_proposal _ | Message.Hs_vote _ | Message.Hs_qc _ ->
    (* HotStuff traffic; not ours. *)
    []
  | Message.State_request _ | Message.State_response _ ->
    (* State transfer is served and admitted at the host level (it moves
       ledger segments, which the core never holds). *)
    []
  | Message.Reply _ | Message.Spec_reply _ | Message.Local_commit _ ->
    (* Client-bound messages never reach a replica core. *)
    []

let handle_executed t ~seq ~state_digest ~result =
  if seq <= t.last_exec_ack then []
  else if seq <> t.last_exec_ack + 1 then
    invalid_arg "Pbft_replica.handle_executed: out of order"
  else begin
  t.last_exec_ack <- seq;
  match Hashtbl.find_opt t.executed_batches seq with
  | None -> []
  | Some batch ->
    Hashtbl.remove t.executed_batches seq;
    let replies =
      List.map
        (fun (r : Message.request_ref) ->
          Action.Send_client
            ( r.Message.client,
              Message.Reply
                {
                  view = batch.Message.view;
                  seq;
                  txn_id = r.Message.txn_id;
                  client = r.Message.client;
                  from = t.id;
                  result;
                } ))
        batch.Message.reqs
    in
    let checkpoint =
      if seq mod t.config.Config.checkpoint_interval = 0 then begin
        t.own_checkpoint_digests <- (seq, state_digest) :: t.own_checkpoint_digests;
        Action.Broadcast (Message.Checkpoint { seq; state_digest; from = t.id })
        :: note_checkpoint t ~seq ~state_digest ~from:t.id
      end
      else []
    in
    replies @ checkpoint
  end

(** The PBFT replica state machine (Castro & Liskov, OSDI '99), as deployed
    inside ResilientDB.

    Pure core: all I/O is delegated to the caller through {!Action.t} lists.
    The three normal-case phases (Pre-prepare, Prepare, Commit), checkpoint
    garbage collection, and the view-change / new-view sub-protocol are
    implemented.  Consensus on different sequence numbers proceeds
    out-of-order (the paper's §4.5); [Execute] actions are nevertheless
    emitted in strict sequence order (§4.6).

    Fault model, as in the paper's experiments: crash faults and message
    reordering/duplication are exercised end-to-end; the quorum logic is
    byzantine-safe (conflicting proposals for the same slot cannot both
    commit — prepare and commit quorums are keyed by digest, so an
    equivocating primary only splits votes), signature forgery is excluded
    by the hosting system's message authentication, and view-change
    processing is rate-limited per sender so a spamming peer cannot grow
    unbounded view-change state.  Equivocation evidence and suppressed
    spam are counted ({!equivocations_detected}, {!vc_spam_suppressed})
    for the host's fault report. *)

type t

val create : Config.t -> id:int -> t

val id : t -> int

val view : t -> int

val is_primary : t -> bool

val last_executed : t -> int

val last_stable_checkpoint : t -> int

val in_view_change : t -> bool

val propose : t -> reqs:Message.request_ref list -> digest:string -> wire_bytes:int -> Message.batch option * Action.t list
(** Primary only: assign the next sequence number to a batch and emit its
    Pre-prepare.  Returns [None] (and no actions) when this replica is not
    the primary, is mid view-change, or the window is full. *)

val handle_message : t -> Message.t -> Action.t list
(** Feed one protocol message.  Unknown views / stale sequence numbers are
    ignored; duplicates are idempotent. *)

val handle_executed : t -> seq:int -> state_digest:string -> result:string -> Action.t list
(** The hosting system reports that the batch at [seq] finished executing.
    Must be called in sequence order (execution is in-order by design).
    Emits client Replies and, on checkpoint boundaries, a Checkpoint
    broadcast. *)

val suspect_primary : t -> Action.t list
(** Trigger a view change towards view+1 (the hosting system decides when —
    typically a client-request timer).  Idempotent while a view change to
    the same view is in flight. *)

val view_change_retransmit : t -> Action.t list
(** Re-broadcast the pending View_change message (with refreshed prepared
    proofs).  Empty when no view change is in flight.  The hosting system's
    demand timer calls this so the view-change quorum survives message
    loss. *)

val nudge : t -> Action.t list
(** Re-broadcast this replica's votes for the oldest unexecuted slot.  Peers
    receiving the duplicates echo their own votes back, so a quorum starved
    by message loss refills without a view change.  Empty when nothing is
    stuck, the slot is outside the window, or a view change is in flight.
    The hosting system's demand timer calls this one timeout before
    escalating to {!suspect_primary}. *)

val pending_instances : t -> int
(** Consensus slots currently tracked (for tests and saturation metrics). *)

val equivocations_detected : t -> int
(** Conflicting pre-prepares observed for an occupied slot: evidence of an
    equivocating primary.  Each conflict is counted once, then dropped. *)

val vc_spam_suppressed : t -> int
(** View-change messages discarded by the per-sender rate limit (view
    numbers beyond the skew horizon, or more distinct pending views than
    one peer may register). *)

val stable_certificate : t -> (int * string * int list) option
(** The last stable checkpoint as [(seq, state_digest, senders)]: the 2f+1
    replicas whose matching Checkpoint messages made it stable.  Retained
    across the quorum table's garbage collection so a state-transfer donor
    can ship the certificate.  [None] until the first stable checkpoint
    (and after {!install_checkpoint}, where the certificate arrived from
    the donor instead of from our own quorum — senders are then []). *)

val install_checkpoint : t -> seq:int -> state_digest:string -> unit
(** State-transfer admit: fast-forward this core to the stable checkpoint
    at [seq] exactly as a 2f+1 Checkpoint quorum would (garbage-collecting
    instances and pending batches at or below it), without emitting
    actions — the host has already installed the transferred ledger
    segment.  A no-op when [seq] is not beyond the current stable
    checkpoint. *)

(** Binary wire codec for protocol messages.

    Fixed-width big-endian integers, length-prefixed strings; no external
    serialization library.  [decode (encode m) = Ok m] for every message —
    checked exhaustively by property tests — and decoding never raises on
    malformed input. *)

val encode : Message.t -> string
(** Encodes through a pooled scratch buffer (see {!with_buffer}); the
    returned string is always fresh. *)

val encode_into : Buffer.t -> Message.t -> unit
(** Append the encoding to a caller-supplied buffer — the zero-intermediate
    path for callers that assemble larger wire records around a message. *)

val decode : string -> (Message.t, string) result
(** [Error reason] on truncated, oversized or corrupt input. *)

val decode_sub : string -> pos:int -> len:int -> (Message.t, string) result
(** Decode the [len] bytes of [s] starting at [pos] without copying them
    out first — the zero-copy path for messages embedded in a larger
    buffer (a framed stream backlog, a wire record's tail).  The window
    must hold exactly one message. *)

val with_buffer : (Buffer.t -> 'a) -> 'a
(** Run [f] with a scratch buffer acquired from the codec's shared,
    thread-safe encode-buffer pool (the paper's §4.8 memory-pool design:
    buffers keep their backing storage across uses, so steady-state
    encoding does not allocate).  The buffer is cleared and recycled when
    [f] returns; [f] must not retain it. *)

val pool_stats : unit -> int * int * int
(** [(hits, misses, idle)] of the encode-buffer pool, process-wide. *)

val frame : string -> string
(** Length-prefix a payload for a stream transport (4-byte big-endian
    length, then the bytes). *)

val read_frame : Buffer.t -> (string -> unit) -> unit
(** [read_frame buf deliver] consumes every complete frame currently in
    [buf] (in order), calling [deliver] with each payload and leaving any
    trailing partial frame in place — the classic streaming deframer. *)

val max_frame_bytes : int
(** Frames beyond this are rejected as corrupt (protects against a bad
    length prefix allocating unbounded memory). *)

(* A linear, leader-aggregated three-phase core in the HotStuff/PoE
   lineage, behind the same pure-state-machine discipline as
   {!Pbft_replica}: all I/O through {!Action.t} lists, all quorums keyed
   by digest so conflicting proposals split votes.

   The happy path is what differs from PBFT.  Backups never talk to each
   other: each phase is one vote SENT to the leader, which aggregates
   2f+1 matching votes into a quorum certificate (Hs_qc, standing in for
   a threshold signature) and broadcasts it.  Per decision that is
   O(n) messages over three phases instead of PBFT's two all-to-all
   O(n^2) rounds — the price is more one-way hops before commit.

   The unhappy path is deliberately NOT linear: leader replacement reuses
   the View_change/New_view sub-protocol (with its spam rate limits), so
   the pacemaker is the hosting system's demand-timer escalation ladder
   unchanged, and the one-liar attack bench shows the protocol's
   signature — a cheap happy path and an expensive leader-failure path. *)

(* One consensus slot.  [qc] is the highest phase with a valid quorum
   certificate (0 = none, 3 = committed); [voted] the highest phase this
   replica has voted in.  Invariant: votes step with the QC chain —
   a replica votes phase p+1 only against a phase-p certificate (phase 1
   against the proposal itself), so [voted <= qc + 1] always. *)
type slot = {
  s_view : int;
  s_seq : int;
  mutable batch : Message.batch option;
  mutable parent : string; (* chain link carried by the proposal *)
  mutable voted : int;
  mutable qc : int;
  mutable qc_digest : string; (* digest the certificates bind ("" until one is seen) *)
  mutable committed : bool;
  mutable executed : bool;
  mutable hole_requested : bool;
      (* one proposal retransmission request per slot (see Fill_hole) *)
  mutable qc_echoed_to : (int * int) list;
      (* peer -> highest certified phase already echoed to it: one echo
         per (peer, phase) bounds the answer traffic a duplicate-vote
         storm can draw (cf. Pbft_replica's per-peer vote echo) *)
  votes : (int * string) Quorum.t; (* leader side: (phase, digest) -> senders *)
}

type t = {
  config : Config.t;
  id : int;
  mutable view : int;
  mutable next_seq : int; (* leader's sequence counter *)
  mutable last_proposed : string; (* parent digest for the next proposal *)
  mutable last_executed : int;
  mutable last_exec_ack : int;
  mutable last_stable : int;
  mutable in_view_change : bool;
  mutable vc_target : int;
  slots : (int * int, slot) Hashtbl.t; (* (view, seq) *)
  committed_batches : (int, Message.batch) Hashtbl.t;
  executed_batches : (int, Message.batch) Hashtbl.t;
  checkpoints : (int * string) Quorum.t;
  view_changes : int Quorum.t;
  vc_messages : (int, (int * Message.prepared_proof list) list) Hashtbl.t;
  mutable own_checkpoint_digests : (int * string) list;
  mutable last_new_view : Message.t option;
  mutable stable_cert : (int * string * int list) option;
  mutable equivocations : int;
  mutable vc_suppressed : int;
  vc_registered : (int, int list) Hashtbl.t;
}

(* Same view-change spam limits as Pbft_replica: the pacemaker reuses the
   View_change wire sub-protocol, so it inherits the same defense. *)
let max_vc_skew = 8
let max_pending_vcs = 4
let genesis = "genesis"

let create config ~id =
  {
    config;
    id;
    view = 0;
    next_seq = 1;
    last_proposed = genesis;
    last_executed = 0;
    last_exec_ack = 0;
    last_stable = 0;
    in_view_change = false;
    vc_target = 0;
    slots = Hashtbl.create 256;
    committed_batches = Hashtbl.create 64;
    executed_batches = Hashtbl.create 64;
    checkpoints = Quorum.create ();
    view_changes = Quorum.create ();
    vc_messages = Hashtbl.create 8;
    own_checkpoint_digests = [];
    last_new_view = None;
    stable_cert = None;
    equivocations = 0;
    vc_suppressed = 0;
    vc_registered = Hashtbl.create 8;
  }

let id t = t.id
let view t = t.view
let leader_of t view = Config.primary_of_view t.config view
let is_leader t = leader_of t t.view = t.id
let last_executed t = t.last_executed
let last_stable_checkpoint t = t.last_stable
let in_view_change t = t.in_view_change
let pending_slots t = Hashtbl.length t.slots
let equivocations_detected t = t.equivocations
let vc_spam_suppressed t = t.vc_suppressed

let slot t ~view ~seq =
  match Hashtbl.find_opt t.slots (view, seq) with
  | Some s -> s
  | None ->
    let s =
      {
        s_view = view;
        s_seq = seq;
        batch = None;
        parent = "";
        voted = 0;
        qc = 0;
        qc_digest = "";
        committed = false;
        executed = false;
        hole_requested = false;
        qc_echoed_to = [];
        votes = Quorum.create ();
      }
    in
    Hashtbl.add t.slots (view, seq) s;
    s

let in_window t seq = seq > t.last_stable && seq <= t.last_stable + t.config.Config.high_water_mark

(* Emits Execute actions for every committed batch that is next in order
   (slots run the three phases out of order; execution is in order). *)
let try_execute t =
  let actions = ref [] in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.committed_batches (t.last_executed + 1) with
    | Some batch ->
      Hashtbl.remove t.committed_batches batch.Message.seq;
      Hashtbl.replace t.executed_batches batch.Message.seq batch;
      t.last_executed <- batch.Message.seq;
      actions := Action.Execute batch :: !actions
    | None -> continue := false
  done;
  List.rev !actions

let commit t (s : slot) =
  match s.batch with
  | Some batch when not s.committed ->
    s.committed <- true;
    Hashtbl.replace t.committed_batches s.s_seq batch;
    try_execute t
  | _ -> []

(* A backup casts its next vote: phase [qc + 1], against the certificate
   chain as far as it has seen it (phase 1 against the bare proposal).
   Jumping is safe — a phase-p certificate transitively proves every
   earlier phase certified, so a backup that missed the phase-1
   certificate but holds the phase-2 one votes phase 3 directly. *)
let cast_vote t (s : slot) =
  match s.batch with
  | None -> []
  | Some b ->
    let digest = if s.qc > 0 then s.qc_digest else b.Message.digest in
    let target = s.qc + 1 in
    if
      target > 3
      || leader_of t s.s_view = t.id
      || s.voted >= target
      || not (String.equal digest b.Message.digest)
    then []
    else begin
      s.voted <- target;
      [
        Action.Send
          ( leader_of t s.s_view,
            Message.Hs_vote { view = s.s_view; seq = s.s_seq; phase = target; digest; from = t.id }
          );
      ]
    end

(* Leader side: pool one vote and, on reaching 2f+1 distinct voters for
   the pending phase, assemble and broadcast the certificate, then act on
   it ourselves (vote the next phase into our own pool, or commit). *)
let rec leader_pool_vote t (s : slot) ~phase ~digest ~from =
  ignore (Quorum.add s.votes (phase, digest) from);
  maybe_assemble_qc t s ~digest

and maybe_assemble_qc t (s : slot) ~digest =
  let next = s.qc + 1 in
  if next > 3 then []
  else if Quorum.count s.votes (next, digest) < Config.qc_quorum t.config then []
  else begin
    let senders = Quorum.senders s.votes (next, digest) in
    s.qc <- next;
    s.qc_digest <- digest;
    let qc =
      Message.Hs_qc { view = s.s_view; seq = s.s_seq; phase = next; digest; senders; from = t.id }
    in
    let follow =
      if next < 3 then leader_pool_vote t s ~phase:(next + 1) ~digest ~from:t.id
      else commit t s
    in
    Action.Broadcast qc :: follow
  end

(* Store a proposal (from the wire, or re-proposed through New_view) and
   vote phase 1.  A conflicting proposal for an occupied slot is
   equivocation evidence: counted and dropped — votes are digest-keyed, so
   the conflicting copies split the vote pool and at most one digest can
   reach the 2f+1 certificate (2 * (2f+1) > n + 1 for f >= 1). *)
let accept_proposal t ~view ~parent ~(batch : Message.batch) =
  let s = slot t ~view ~seq:batch.Message.seq in
  match s.batch with
  | Some existing when not (String.equal existing.Message.digest batch.Message.digest) ->
    t.equivocations <- t.equivocations + 1;
    []
  | Some _ -> []
  | None ->
    s.batch <- Some batch;
    s.parent <- parent;
    if leader_of t view = t.id then
      (* our own (re-)proposal: vote into our own pool *)
      leader_pool_vote t s ~phase:1 ~digest:batch.Message.digest ~from:t.id
    else begin
      (* The commit certificate may have raced ahead of the (refetched)
         proposal: commit immediately once both are in hand. *)
      let committed = if s.qc >= 3 && String.equal s.qc_digest batch.Message.digest then commit t s else [] in
      cast_vote t s @ committed
    end

let propose t ~reqs ~digest ~wire_bytes =
  if (not (is_leader t)) || t.in_view_change || not (in_window t t.next_seq) then (None, [])
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let parent = t.last_proposed in
    t.last_proposed <- digest;
    let batch = { Message.view = t.view; seq; digest; reqs; wire_bytes } in
    let actions = accept_proposal t ~view:t.view ~parent ~batch in
    ( Some batch,
      Action.Broadcast (Message.Hs_proposal { view = t.view; seq; batch; parent; from = t.id })
      :: actions )
  end

(* ---- checkpointing (same semantics as Pbft_replica) ---------------------- *)

let note_checkpoint t ~seq ~state_digest ~from =
  let n = Quorum.add t.checkpoints (seq, state_digest) from in
  if n >= Config.commit_quorum t.config && seq > t.last_stable then begin
    t.last_stable <- seq;
    t.stable_cert <- Some (seq, state_digest, Quorum.senders t.checkpoints (seq, state_digest));
    if t.last_executed < seq then begin
      t.last_executed <- seq;
      t.last_exec_ack <- max t.last_exec_ack seq;
      let stale =
        Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.committed_batches []
      in
      List.iter (Hashtbl.remove t.committed_batches) stale
    end;
    let doomed =
      Hashtbl.fold (fun (v, s) _ acc -> if s <= seq then (v, s) :: acc else acc) t.slots []
    in
    List.iter (Hashtbl.remove t.slots) doomed;
    Quorum.filter_keys t.checkpoints (fun (s, _) -> s > seq);
    t.own_checkpoint_digests <- List.filter (fun (s, _) -> s > seq) t.own_checkpoint_digests;
    let doomed_exec =
      Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.executed_batches []
    in
    List.iter (Hashtbl.remove t.executed_batches) doomed_exec;
    [ Action.Stable_checkpoint seq ]
  end
  else []

let stable_certificate t = t.stable_cert

let install_checkpoint t ~seq ~state_digest =
  if seq > t.last_stable then begin
    t.last_stable <- seq;
    t.stable_cert <- Some (seq, state_digest, []);
    if t.last_executed < seq then begin
      t.last_executed <- seq;
      t.last_exec_ack <- max t.last_exec_ack seq;
      let stale =
        Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.committed_batches []
      in
      List.iter (Hashtbl.remove t.committed_batches) stale
    end;
    t.next_seq <- max t.next_seq (seq + 1);
    let doomed =
      Hashtbl.fold (fun (v, s) _ acc -> if s <= seq then (v, s) :: acc else acc) t.slots []
    in
    List.iter (Hashtbl.remove t.slots) doomed;
    Quorum.filter_keys t.checkpoints (fun (s, _) -> s > seq);
    t.own_checkpoint_digests <- List.filter (fun (s, _) -> s > seq) t.own_checkpoint_digests;
    let doomed_exec =
      Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.executed_batches []
    in
    List.iter (Hashtbl.remove t.executed_batches) doomed_exec
  end

(* ---- pacemaker: leader replacement through View_change/New_view ---------- *)

(* The lock a view change must respect is the phase-1 certificate: a slot
   with [qc >= 1] could have committed in its view (the phase-3 quorum
   intersects every phase-1 quorum), so the new leader must re-propose its
   batch.  This is exactly the role PBFT's prepared certificate plays, so
   the wire format is reused verbatim. *)
let prepared_proofs t =
  Hashtbl.fold
    (fun (v, s) (sl : slot) acc ->
      if s > t.last_stable && sl.qc >= 1 then
        match sl.batch with
        | Some b ->
          { Message.p_view = v; p_seq = s; p_digest = b.Message.digest; p_batch = b } :: acc
        | None -> acc
      else acc)
    t.slots []

let start_view_change t ~target =
  if t.in_view_change && t.vc_target >= target then []
  else begin
    t.in_view_change <- true;
    t.vc_target <- target;
    let vc =
      Message.View_change
        { new_view = target; last_stable = t.last_stable; prepared = prepared_proofs t; from = t.id }
    in
    ignore (Quorum.add t.view_changes target t.id);
    let mine = (t.id, prepared_proofs t) in
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.vc_messages target) in
    if not (List.mem_assoc t.id existing) then Hashtbl.replace t.vc_messages target (mine :: existing);
    [ Action.Broadcast vc ]
  end

let suspect_primary t = start_view_change t ~target:(t.view + 1)

let view_change_retransmit t =
  if not t.in_view_change then []
  else
    [
      Action.Broadcast
        (Message.View_change
           {
             new_view = t.vc_target;
             last_stable = t.last_stable;
             prepared = prepared_proofs t;
             from = t.id;
           });
    ]

let prune_vc_registry t =
  Hashtbl.filter_map_inplace
    (fun _ vs ->
      match List.filter (fun v -> v > t.view) vs with [] -> None | vs -> Some vs)
    t.vc_registered

(* The new leader assembles New_view from a 2f+1 view-change quorum:
   every locked (phase-1-certified) slot above the stable checkpoint is
   re-proposed at its highest view, gaps are filled with no-ops, and the
   three phases restart in the new view.  Restarting from phase 1 is the
   conservative choice — certificates from the old view are not carried
   forward — and is what makes the leader-failure path expensive next to
   the linear happy path. *)
let maybe_new_view t ~target =
  if leader_of t target <> t.id then []
  else if Quorum.count t.view_changes target < Config.commit_quorum t.config then []
  else if t.view >= target then []
  else begin
    let vcs = Option.value ~default:[] (Hashtbl.find_opt t.vc_messages target) in
    let best : (int, Message.prepared_proof) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun (_, proofs) ->
        List.iter
          (fun (p : Message.prepared_proof) ->
            match Hashtbl.find_opt best p.Message.p_seq with
            | Some q when q.Message.p_view >= p.Message.p_view -> ()
            | _ -> Hashtbl.replace best p.Message.p_seq p)
          proofs)
      vcs;
    let max_seq = Hashtbl.fold (fun s _ acc -> max s acc) best t.last_stable in
    let proposals = ref [] in
    for seq = t.last_stable + 1 to max_seq do
      let batch =
        match Hashtbl.find_opt best seq with
        | Some p -> { p.Message.p_batch with Message.view = target }
        | None ->
          {
            Message.view = target;
            seq;
            digest = "noop:" ^ string_of_int seq;
            reqs = [];
            wire_bytes = 0;
          }
      in
      proposals := batch :: !proposals
    done;
    let proposals = List.rev !proposals in
    t.view <- target;
    t.in_view_change <- false;
    prune_vc_registry t;
    t.next_seq <- max_seq + 1;
    (match List.rev proposals with
    | last :: _ -> t.last_proposed <- last.Message.digest
    | [] -> ());
    let nv =
      Message.New_view
        { view = target; vc_senders = Quorum.senders t.view_changes target; pre_prepares = proposals; from = t.id }
    in
    t.last_new_view <- Some nv;
    let adopt =
      List.concat_map (fun b -> accept_proposal t ~view:target ~parent:"" ~batch:b) proposals
    in
    Action.Broadcast nv :: adopt
  end

let handle_new_view t ~view ~(pre_prepares : Message.batch list) ~from =
  if view < t.view || leader_of t view <> from then []
  else begin
    t.view <- view;
    t.in_view_change <- false;
    prune_vc_registry t;
    List.concat_map
      (fun (b : Message.batch) -> accept_proposal t ~view ~parent:"" ~batch:b)
      pre_prepares
  end

(* ---- loss recovery -------------------------------------------------------- *)

(* A duplicate vote only arrives when its sender is stuck (nudging, or the
   network duplicated it): answer once per (slot, peer) with the highest
   certificate we hold, so a backup that lost a QC broadcast rejoins the
   phase ladder without a view change. *)
let echo_qc t (s : slot) ~dup ~target =
  let prev = Option.value ~default:0 (List.assoc_opt target s.qc_echoed_to) in
  if (not dup) || s.qc < 1 || s.qc <= prev then []
  else begin
    s.qc_echoed_to <- (target, s.qc) :: List.remove_assoc target s.qc_echoed_to;
    [
      Action.Send
        ( target,
          Message.Hs_qc
            {
              view = s.s_view;
              seq = s.s_seq;
              phase = s.qc;
              digest = s.qc_digest;
              senders = Quorum.senders s.votes (s.qc, s.qc_digest);
              from = t.id;
            } );
    ]
  end

(* A certificate for a slot we hold no proposal for proves the proposal is
   long gone: fetch it eagerly (once; the demand timer's nudge is the
   backstop).  Reuses Zyzzyva's fill-hole message, like Pbft_replica. *)
let maybe_fetch_batch t (s : slot) =
  if s.batch = None && (not s.hole_requested) && leader_of t s.s_view <> t.id then begin
    s.hole_requested <- true;
    [
      Action.Send
        ( leader_of t s.s_view,
          Message.Fill_hole { view = s.s_view; from_seq = s.s_seq; to_seq = s.s_seq; from = t.id }
        );
    ]
  end
  else []

(* Demand-timer retransmission for the oldest unexecuted slot.  A backup
   re-sends its current-phase vote (the duplicate makes the leader echo its
   highest certificate back — covering a lost vote AND a lost certificate
   with one exchange); the leader re-broadcasts its proposal and highest
   certificate; a batchless slot asks the leader to fill the hole. *)
let nudge t =
  if t.in_view_change then []
  else begin
    let seq = t.last_executed + 1 in
    if not (in_window t seq) then []
    else begin
      let fetch_hole () =
        let leader = leader_of t t.view in
        if leader = t.id then []
        else begin
          let have = Hashtbl.create 64 in
          Hashtbl.iter
            (fun (_, s) (sl : slot) -> if sl.batch <> None then Hashtbl.replace have s ())
            t.slots;
          let to_seq = ref seq in
          while
            !to_seq - seq < 63 && in_window t (!to_seq + 1) && not (Hashtbl.mem have (!to_seq + 1))
          do
            incr to_seq
          done;
          [ Action.Send (leader, Message.Fill_hole { view = t.view; from_seq = seq; to_seq = !to_seq; from = t.id }) ]
        end
      in
      let best =
        Hashtbl.fold
          (fun (v, s) (sl : slot) acc ->
            if s <> seq then acc
            else match acc with Some (j : slot) when j.s_view >= v -> acc | _ -> Some sl)
          t.slots None
      in
      match best with
      | None -> fetch_hole ()
      | Some s -> (
        match s.batch with
        | None -> fetch_hole ()
        | Some b ->
          if leader_of t s.s_view = t.id then begin
            let proposal =
              Message.Hs_proposal
                { view = s.s_view; seq = s.s_seq; batch = b; parent = s.parent; from = t.id }
            in
            let qc =
              if s.qc >= 1 then
                [
                  Action.Broadcast
                    (Message.Hs_qc
                       {
                         view = s.s_view;
                         seq = s.s_seq;
                         phase = s.qc;
                         digest = s.qc_digest;
                         senders = Quorum.senders s.votes (s.qc, s.qc_digest);
                         from = t.id;
                       });
                ]
              else []
            in
            Action.Broadcast proposal :: qc
          end
          else if s.voted >= 1 then begin
            let digest = if s.qc > 0 then s.qc_digest else b.Message.digest in
            [
              Action.Send
                ( leader_of t s.s_view,
                  Message.Hs_vote
                    { view = s.s_view; seq = s.s_seq; phase = s.voted; digest; from = t.id } );
            ]
          end
          else cast_vote t s)
    end
  end

(* ---- message dispatch ----------------------------------------------------- *)

let distinct_senders senders = List.sort_uniq compare senders

let handle_message t (msg : Message.t) =
  match msg with
  | Message.Hs_proposal { view; seq; batch; parent; from } ->
    if view <> t.view || t.in_view_change || from <> leader_of t view then []
    else if not (in_window t seq) then []
    else if seq <> batch.Message.seq then []
    else begin
      let before = t.equivocations in
      let actions = accept_proposal t ~view ~parent ~batch in
      if t.equivocations > before then
        (* Two conflicting proposals signed by one leader are transferable
           proof of equivocation: echo the conflicting copy so every
           replica sees the contradiction, and join the view change that
           rotates the leader out (the pacemaker's misbehavior path). *)
        (Action.Broadcast msg :: suspect_primary t) @ actions
      else actions
    end
  | Message.Hs_vote { view; seq; phase; digest; from } ->
    (* Votes are only meaningful at the leader of their view.  Votes for a
       HIGHER view are pooled in that view's slot — they come from
       replicas that installed the new view first. *)
    if view < t.view || (t.in_view_change && view = t.view) || not (in_window t seq) then []
    else if leader_of t view <> t.id || phase < 1 || phase > 3 then []
    else begin
      let s = slot t ~view ~seq in
      let dup = List.mem from (Quorum.senders s.votes (phase, digest)) in
      let pooled = leader_pool_vote t s ~phase ~digest ~from in
      let executed = try_execute t in
      echo_qc t s ~dup ~target:from @ pooled @ executed
    end
  | Message.Hs_qc { view; seq; phase; digest; senders; from } ->
    if view < t.view || (t.in_view_change && view = t.view) || not (in_window t seq) then []
    else if leader_of t view <> from || phase < 1 || phase > 3 then []
    else if List.length (distinct_senders senders) < Config.qc_quorum t.config then
      (* An undersized certificate can never be honest output. *)
      []
    else begin
      let s = slot t ~view ~seq in
      (match s.batch with
      | Some b when not (String.equal b.Message.digest digest) ->
        (* A valid certificate for a digest conflicting with our copy of
           the proposal: we are on the losing branch of an equivocation.
           Count the evidence and stay behind on this slot — the
           checkpoint quorum (or state transfer) will carry us past it. *)
        t.equivocations <- t.equivocations + 1;
        []
      | _ ->
        let fetch = maybe_fetch_batch t s in
        if phase > s.qc then begin
          s.qc <- phase;
          s.qc_digest <- digest
        end;
        let committed = if s.qc >= 3 then commit t s else [] in
        let voted = if s.qc < 3 then cast_vote t s else [] in
        fetch @ voted @ committed @ try_execute t)
    end
  | Message.Checkpoint { seq; state_digest; from } -> note_checkpoint t ~seq ~state_digest ~from
  | Message.View_change { new_view; prepared; from; _ } ->
    if new_view <= t.view then begin
      match t.last_new_view with
      | Some (Message.New_view { view; _ } as nv) when view = t.view && is_leader t ->
        [ Action.Send (from, nv) ]
      | _ -> []
    end
    else begin
      (* Same spam rate limit as Pbft_replica: clip implausible view
         numbers, cap distinct pending registrations per sender. *)
      let registered = Option.value ~default:[] (Hashtbl.find_opt t.vc_registered from) in
      let fresh = not (List.mem new_view registered) in
      if new_view > t.view + max_vc_skew || (fresh && List.length registered >= max_pending_vcs)
      then begin
        t.vc_suppressed <- t.vc_suppressed + 1;
        []
      end
      else begin
        if fresh then Hashtbl.replace t.vc_registered from (new_view :: registered);
        ignore (Quorum.add t.view_changes new_view from);
        let existing = Option.value ~default:[] (Hashtbl.find_opt t.vc_messages new_view) in
        if not (List.mem_assoc from existing) then
          Hashtbl.replace t.vc_messages new_view ((from, prepared) :: existing);
        let join =
          if
            Quorum.count t.view_changes new_view >= t.config.Config.f + 1
            && not (t.in_view_change && t.vc_target >= new_view)
          then start_view_change t ~target:new_view
          else []
        in
        let nv = maybe_new_view t ~target:new_view in
        join @ nv
      end
    end
  | Message.New_view { view; pre_prepares; from; _ } -> handle_new_view t ~view ~pre_prepares ~from
  | Message.Fill_hole { view; from_seq; to_seq; from } ->
    if view <> t.view || leader_of t view <> t.id || t.in_view_change then []
    else
      List.filter_map
        (fun seq ->
          match Hashtbl.find_opt t.slots (t.view, seq) with
          | Some { batch = Some b; parent; _ } ->
            Some
              (Action.Send
                 ( from,
                   Message.Hs_proposal { view = t.view; seq; batch = b; parent; from = t.id } ))
          | _ -> None)
        (List.init (max 0 (to_seq - from_seq + 1)) (fun i -> from_seq + i))
  | Message.Pre_prepare _ | Message.Prepare _ | Message.Commit _ | Message.Order_request _
  | Message.Commit_cert _ ->
    (* PBFT / Zyzzyva traffic; not ours. *)
    []
  | Message.State_request _ | Message.State_response _ ->
    (* State transfer is served and admitted at the host level. *)
    []
  | Message.Reply _ | Message.Spec_reply _ | Message.Local_commit _ ->
    (* Client-bound messages never reach a replica core. *)
    []

let handle_executed t ~seq ~state_digest ~result =
  if seq <= t.last_exec_ack then []
  else if seq <> t.last_exec_ack + 1 then
    invalid_arg "Hotstuff_replica.handle_executed: out of order"
  else begin
    t.last_exec_ack <- seq;
    match Hashtbl.find_opt t.executed_batches seq with
    | None -> []
    | Some batch ->
      Hashtbl.remove t.executed_batches seq;
      let replies =
        List.map
          (fun (r : Message.request_ref) ->
            Action.Send_client
              ( r.Message.client,
                Message.Reply
                  {
                    view = batch.Message.view;
                    seq;
                    txn_id = r.Message.txn_id;
                    client = r.Message.client;
                    from = t.id;
                    result;
                  } ))
          batch.Message.reqs
      in
      let checkpoint =
        if seq mod t.config.Config.checkpoint_interval = 0 then begin
          t.own_checkpoint_digests <- (seq, state_digest) :: t.own_checkpoint_digests;
          Action.Broadcast (Message.Checkpoint { seq; state_digest; from = t.id })
          :: note_checkpoint t ~seq ~state_digest ~from:t.id
        end
        else []
      in
      replies @ checkpoint
  end

(** A linear, leader-aggregated three-phase replica core in the
    HotStuff/PoE lineage (Yin et al., PODC '19; Gupta et al.'s
    Proof-of-Execution), grown behind the same pure-state-machine
    discipline as {!Pbft_replica}: all I/O is delegated to the caller
    through {!Action.t} lists, and the core slots into the unified
    {!Core.CORE} packed-module API unchanged.

    {2 Phase invariants}

    Each sequence number runs three phases.  The leader broadcasts one
    [Hs_proposal]; every backup answers each phase with one [Hs_vote]
    {e sent to the leader only}; the leader aggregates [2f + 1] distinct
    matching votes ({!Config.qc_quorum}, its own included) into an
    [Hs_qc] certificate — standing in for a threshold signature — and
    broadcasts it, driving the next phase.  The phase-3 certificate
    commits the slot.  Per decision that is [O(n)] messages against
    PBFT's two all-to-all [O(n^2)] rounds, at the cost of more one-way
    hops before commit.

    Invariants the implementation maintains:

    - {b Vote monotonicity}: a replica's highest vote never exceeds its
      highest certificate plus one ([voted <= qc + 1]); phase [p + 1] is
      only ever voted against a valid phase-[p] certificate (phase 1
      against the proposal itself).
    - {b Certificate uniqueness}: votes pool by [(phase, digest)], so an
      equivocating leader splits its voters and at most one digest can
      reach [2f + 1] per slot ([2 * (2f + 1) > n + 1] whenever
      [f >= 1]); conflicting proposals are counted as equivocation
      evidence and dropped.
    - {b In-order execution}: slots certify out of order (the window is
      {!Config.t.high_water_mark} deep), [Execute] actions are emitted
      in strict sequence order, gap-free from the last stable
      checkpoint.
    - {b Undersized certificates are ignored}: an [Hs_qc] naming fewer
      than [2f + 1] distinct senders is dropped at every receiver.

    {2 Pacemaker contract}

    Leader rotation is demand-driven, not round-driven: the core reuses
    the [View_change]/[New_view] sub-protocol (including
    {!Pbft_replica}'s spam rate limits, surfaced through
    {!vc_spam_suppressed}) and relies on the hosting system's demand
    timer as its pacemaker.  The host escalates exactly as for PBFT —
    first {!nudge} (vote/certificate retransmission), then
    {!suspect_primary} (depose the leader of the current view), with
    {!view_change_retransmit} keeping a pending view change alive under
    loss.  A view change restarts every re-proposed slot from phase 1 in
    the new view; the lock carried by the view-change messages is the
    phase-1 certificate (any committed slot's phase-3 quorum intersects
    every phase-1 quorum, so a locked batch is always re-proposed).
    This makes leader failure the {e expensive} path — the asymmetry the
    [byzantine] bench figure measures.

    Checkpointing, garbage collection, {!stable_certificate} and
    {!install_checkpoint} follow {!Pbft_replica} exactly, so durable
    backends and checkpoint-certificate state transfer work unmodified. *)

type t

val create : Config.t -> id:int -> t

val id : t -> int

val view : t -> int

val is_leader : t -> bool
(** Whether this replica leads the current view (round-robin with the
    view number, as in PBFT). *)

val last_executed : t -> int

val last_stable_checkpoint : t -> int

val in_view_change : t -> bool

val propose : t -> reqs:Message.request_ref list -> digest:string -> wire_bytes:int -> Message.batch option * Action.t list
(** Leader only: assign the next sequence number to a batch, broadcast
    its [Hs_proposal] (chained to the previous proposal's digest through
    the [parent] field) and vote for it.  Returns [None] (and no
    actions) when this replica is not the leader, is mid view-change, or
    the window is full. *)

val handle_message : t -> Message.t -> Action.t list
(** Feed one protocol message.  Unknown views / stale sequence numbers
    are ignored; duplicates are idempotent (a duplicate vote draws a
    one-per-phase certificate echo — the loss-recovery path). *)

val handle_executed : t -> seq:int -> state_digest:string -> result:string -> Action.t list
(** The hosting system reports that the batch at [seq] finished
    executing.  Must be called in sequence order.  Emits client Replies
    and, on checkpoint boundaries, a Checkpoint broadcast. *)

val suspect_primary : t -> Action.t list
(** Pacemaker escalation: start a view change towards view+1.
    Idempotent while a view change to the same view is in flight. *)

val view_change_retransmit : t -> Action.t list
(** Re-broadcast the pending View_change (with refreshed certificate
    proofs).  Empty when no view change is in flight. *)

val nudge : t -> Action.t list
(** Pacemaker retransmission for the oldest unexecuted slot: a backup
    re-sends its current-phase vote (drawing the leader's certificate
    echo), the leader re-broadcasts its proposal and highest
    certificate, and a batchless slot asks the leader to fill the hole.
    Empty when nothing is stuck or a view change is in flight. *)

val pending_slots : t -> int
(** Consensus slots currently tracked (for tests and saturation
    metrics). *)

val equivocations_detected : t -> int
(** Conflicting proposals (or certificates conflicting with a held
    proposal) observed: evidence of an equivocating leader. *)

val vc_spam_suppressed : t -> int
(** View-change messages discarded by the per-sender rate limit
    (inherited unchanged from the PBFT view-change sub-protocol). *)

val stable_certificate : t -> (int * string * int list) option
(** The last stable checkpoint as [(seq, state_digest, senders)], for
    state-transfer donors; [None] until the first stable checkpoint. *)

val install_checkpoint : t -> seq:int -> state_digest:string -> unit
(** State-transfer admit: fast-forward this core to the stable
    checkpoint at [seq] exactly as a 2f+1 Checkpoint quorum would,
    without emitting actions.  A no-op when [seq] is not beyond the
    current stable checkpoint. *)

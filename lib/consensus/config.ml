(** Static cluster configuration shared by every protocol core.

    A permissioned deployment knows all replica identities a priori; replica
    ids are [0 .. n-1] and client ids live in a separate namespace. *)

type t = {
  n : int;  (** number of replicas *)
  f : int;  (** tolerated byzantine faults; [n >= 3f + 1] *)
  checkpoint_interval : int;  (** sequence numbers between checkpoints *)
  high_water_mark : int;  (** max in-flight sequence numbers past the last stable checkpoint *)
  primary_offset : int;
      (** added to the view number before the round-robin primary rule.
          0 for a classic single-instance deployment; consensus instance [i]
          of a multi-primary deployment uses offset [i], so at view 0 the k
          instances are led by k {e different} replicas (see
          {!Multi_pbft}) *)
}

let make ?(checkpoint_interval = 100) ?(high_water_mark = 10_000) ?(primary_offset = 0) ~n () =
  if n < 4 then invalid_arg "Config.make: need at least 4 replicas";
  let f = (n - 1) / 3 in
  if checkpoint_interval <= 0 then invalid_arg "Config.make: bad checkpoint interval";
  if primary_offset < 0 then invalid_arg "Config.make: negative primary offset";
  { n; f; checkpoint_interval; high_water_mark; primary_offset }

(** The primary rotates round-robin with the view number (PBFT's rule),
    shifted by the instance's [primary_offset]. *)
let primary_of_view t view = (view + t.primary_offset) mod t.n

(** Size of a prepared certificate: matching messages from [2f] others. *)
let prepare_quorum t = 2 * t.f

(** Size of a commit / checkpoint / view-change quorum. *)
let commit_quorum t = (2 * t.f) + 1

(** Replies a client needs from distinct replicas to accept a result. *)
let reply_quorum t = t.f + 1

(** Votes a HotStuff-style leader aggregates into one quorum certificate
    (its own included): [2f + 1], the same intersection bound as
    {!commit_quorum}, spelled separately because it counts {e inbound
    votes at one aggregator} rather than all-to-all matching messages. *)
let qc_quorum t = (2 * t.f) + 1

(** Checkpoint-driven state transfer (the paper's §4.7 checkpointing put to
    work): a replica that crashed and recovered, or fell behind the
    checkpoint horizon, catches up in O(gap) blocks instead of per-message
    retransmission.

    The protocol is one round trip: the laggard broadcasts a
    {!Message.State_request} carrying its next ledger sequence; any peer
    that is ahead and holds a stable-checkpoint certificate answers with a
    {!Message.State_response} carrying the certificate, its state digest,
    and the retained chain segment.  The requester verifies the
    certificate (2f+1 distinct signers over the same state digest) and the
    segment (contiguous, certificate-linked blocks covering the
    checkpoint), installs the segment wholesale, and fast-forwards its
    consensus core to the checkpoint; everything beyond the donor's tip
    then arrives through the normal protocol path.

    Both hosting systems — the DES {!Rdb_core.Cluster} and the real-clock
    local runtime — recover through the [serve]/[verify]/[admit] functions
    below, so the recovery logic exists once. *)

module Block = Rdb_chain.Block
module Ledger = Rdb_chain.Ledger

(** The laggard's request: [low] is its next ledger sequence, the donor
    ships everything it retains from there up. *)
let request ledger ~from = Message.State_request { low = Ledger.next_seq ledger; from }

(** Build a donor's response, or [None] when this replica cannot help:
    no stable-checkpoint certificate to prove its state with (including a
    certificate it itself installed from a transfer, whose senders are
    unknown), or a ledger behind the requester's.  A donor exactly level
    with the requester still answers — the response either tells the
    requester it is caught up ({!stale}) or re-supplies the application
    state a restarted durable replica lost with its process. *)
let serve ledger ~stable ~low ~from ~app_seq ~app_export =
  match stable with
  | None -> None
  | Some (_, _, []) -> None
  | Some (last_stable, state_digest, senders) ->
    if Ledger.next_seq ledger < low then None
    else
      Some
        (Message.State_response
           {
             last_stable;
             state_digest;
             cert = List.map (fun id -> (id, state_digest)) senders;
             chain_digest = Ledger.cumulative_digest ledger;
             appended = Ledger.length ledger;
             app_seq;
             app_export;
             blocks = Ledger.retained ledger;
             from;
           })

(** Certificate and segment checks a requester runs before installing
    anything.  [commit_quorum] is 2f+1. *)
let verify ~commit_quorum ~last_stable ~state_digest ~cert ~blocks =
  let distinct l = List.length (List.sort_uniq compare l) in
  if distinct (List.map fst cert) < commit_quorum then Error "thin checkpoint certificate"
  else if List.exists (fun (_, d) -> not (String.equal d state_digest)) cert then
    Error "checkpoint certificate digest mismatch"
  else
    match blocks with
    | [] -> Error "empty chain segment"
    | first :: rest ->
      let check_link (b : Block.t) =
        match b.Block.link with
        | Block.Prev_hash _ -> b.Block.seq = 0  (* only genesis may lack a certificate *)
        | Block.Certificate shares -> distinct (List.map fst shares) >= commit_quorum
      in
      let rec walk prev = function
        | [] -> Ok ()
        | (b : Block.t) :: tl ->
          if b.Block.seq <> prev + 1 then
            Error (Printf.sprintf "gap in chain segment at seq %d" b.Block.seq)
          else if not (check_link b) then
            Error (Printf.sprintf "thin block certificate at seq %d" b.Block.seq)
          else walk b.Block.seq tl
      in
      if not (check_link first) then
        Error (Printf.sprintf "thin block certificate at seq %d" first.Block.seq)
      else begin
        match walk first.Block.seq rest with
        | Error _ as e -> e
        | Ok () ->
          let tip = (List.nth blocks (List.length blocks - 1)).Block.seq in
          if tip < last_stable then Error "segment stops short of the checkpoint"
          else Ok ()
      end

(** Admit a {!Message.State_response} into [ledger]: verify it, require it
    to strictly advance the ledger, install the segment, persist the
    checkpoint, import the application export (via [import]) and
    fast-forward the consensus core (via [install_core]).  Returns [true]
    when the ledger advanced; [false] leaves all state untouched (bad
    certificate, stale donor, or not a response at all).

    The donor's cumulative chain digest is taken on the strength of its
    link authentication plus the per-block certificates; cross-replica
    digest agreement remains separately checkable
    ({!Rdb_chain.Ledger.verify}, the cluster's safety check). *)
let admit ~commit_quorum ledger ~install_core
    ?(import = fun ~app_seq:_ ~app_export:_ -> ()) msg =
  match msg with
  | Message.State_response
      { last_stable; state_digest; cert; chain_digest; appended; app_seq; app_export;
        blocks; from = _ } -> (
    match verify ~commit_quorum ~last_stable ~state_digest ~cert ~blocks with
    | Error _ -> false
    | Ok () ->
      let tip = (List.nth blocks (List.length blocks - 1)).Block.seq in
      if tip < Ledger.next_seq ledger then false
      else begin
        Ledger.install ledger ~blocks ~appended ~running:chain_digest;
        Ledger.checkpoint ledger ~seq:last_stable ~state_digest;
        import ~app_seq ~app_export;
        install_core ~seq:last_stable ~state_digest;
        true
      end)
  | _ -> false

(** Whether a verified response was simply stale (donor no further along
    than we are): the requester can stop asking. *)
let stale ledger msg =
  match msg with
  | Message.State_response { blocks; _ } -> (
    match List.rev blocks with
    | (last : Block.t) :: _ -> last.Block.seq < Ledger.next_seq ledger
    | [] -> true)
  | _ -> false

let max_frame_bytes = 64 * 1024 * 1024

exception Bad of string

(* ---- primitive writers --------------------------------------------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let w_u32 b v =
  if v < 0 then raise (Bad "negative u32");
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

(* Sequence numbers can exceed 32 bits in a long-lived deployment. *)
let w_u48 b v =
  if v < 0 then raise (Bad "negative u48");
  Buffer.add_char b (Char.chr ((v lsr 40) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 32) land 0xFF));
  w_u32 b (v land 0xFFFFFFFF)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list b f xs =
  w_u32 b (List.length xs);
  List.iter (f b) xs

(* ---- primitive readers ---------------------------------------------------- *)

(* A cursor bounded by [limit] rather than the string's end: decoding can
   run over a window of a larger buffer (a frame still sitting in the
   receive backlog, an attachment tail) without copying it out first. *)
type cursor = { data : string; mutable pos : int; limit : int }

let need c n = if c.pos + n > c.limit then raise (Bad "truncated input")

let r_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  need c 4;
  let v =
    (Char.code c.data.[c.pos] lsl 24)
    lor (Char.code c.data.[c.pos + 1] lsl 16)
    lor (Char.code c.data.[c.pos + 2] lsl 8)
    lor Char.code c.data.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let r_u48 c =
  need c 2;
  let hi = (Char.code c.data.[c.pos] lsl 8) lor Char.code c.data.[c.pos + 1] in
  c.pos <- c.pos + 2;
  (hi lsl 32) lor r_u32 c

let r_str c =
  let n = r_u32 c in
  if n > max_frame_bytes then raise (Bad "oversized string");
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let r_list c f =
  let n = r_u32 c in
  if n > 10_000_000 then raise (Bad "oversized list");
  List.init n (fun _ -> f c)

(* ---- message-level codecs ---------------------------------------------------- *)

open Message

let w_req b (r : request_ref) =
  w_u32 b r.client;
  w_u48 b r.txn_id

let r_req c =
  let client = r_u32 c in
  let txn_id = r_u48 c in
  { client; txn_id }

let w_batch b (x : batch) =
  w_u32 b x.view;
  w_u48 b x.seq;
  w_str b x.digest;
  w_list b w_req x.reqs;
  w_u32 b x.wire_bytes

let r_batch c =
  let view = r_u32 c in
  let seq = r_u48 c in
  let digest = r_str c in
  let reqs = r_list c r_req in
  let wire_bytes = r_u32 c in
  { view; seq; digest; reqs; wire_bytes }

let w_proof b (p : prepared_proof) =
  w_u32 b p.p_view;
  w_u48 b p.p_seq;
  w_str b p.p_digest;
  w_batch b p.p_batch

let r_proof c =
  let p_view = r_u32 c in
  let p_seq = r_u48 c in
  let p_digest = r_str c in
  let p_batch = r_batch c in
  { p_view; p_seq; p_digest; p_batch }

(* ---- encode-buffer pool --------------------------------------------------- *)

module Pool = Rdb_storage.Buffer_pool

(* Encode buffers are recycled through a shared pool (the paper's §4.8
   buffer-pool management, Q4): a [Buffer] keeps its backing storage across
   [Buffer.clear], so steady-state encoding allocates nothing beyond the
   final [contents] copy.  The codec also runs on real transport threads,
   hence the lock; contention is negligible next to the syscalls around it.
   Buffers that ballooned on an outsized message are shrunk on release so
   one large View_change cannot pin megabytes in the pool. *)
let pool_lock = Mutex.create ()

let pool =
  Pool.create ~capacity:64
    ~make:(fun () -> Buffer.create 1024)
    ~reset:(fun b -> if Buffer.length b > 1 lsl 20 then Buffer.reset b else Buffer.clear b)
    ()

let with_buffer f =
  let b =
    Mutex.lock pool_lock;
    let b = Pool.acquire pool in
    Mutex.unlock pool_lock;
    b
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock pool_lock;
      Pool.release pool b;
      Mutex.unlock pool_lock)
    (fun () -> f b)

let pool_stats () =
  Mutex.lock pool_lock;
  let s = (Pool.hits pool, Pool.misses pool, Pool.idle pool) in
  Mutex.unlock pool_lock;
  s

let encode_into b msg =
  (match msg with
  | Pre_prepare { view; seq; batch; from } ->
    w_u8 b 1;
    w_u32 b view;
    w_u48 b seq;
    w_batch b batch;
    w_u32 b from
  | Prepare { view; seq; digest; from } ->
    w_u8 b 2;
    w_u32 b view;
    w_u48 b seq;
    w_str b digest;
    w_u32 b from
  | Commit { view; seq; digest; from } ->
    w_u8 b 3;
    w_u32 b view;
    w_u48 b seq;
    w_str b digest;
    w_u32 b from
  | Checkpoint { seq; state_digest; from } ->
    w_u8 b 4;
    w_u48 b seq;
    w_str b state_digest;
    w_u32 b from
  | View_change { new_view; last_stable; prepared; from } ->
    w_u8 b 5;
    w_u32 b new_view;
    w_u48 b last_stable;
    w_list b w_proof prepared;
    w_u32 b from
  | New_view { view; vc_senders; pre_prepares; from } ->
    w_u8 b 6;
    w_u32 b view;
    w_list b (fun b v -> w_u32 b v) vc_senders;
    w_list b w_batch pre_prepares;
    w_u32 b from
  | Order_request { view; seq; batch; history; from } ->
    w_u8 b 7;
    w_u32 b view;
    w_u48 b seq;
    w_batch b batch;
    w_str b history;
    w_u32 b from
  | Commit_cert { view; seq; digest; client; responders } ->
    w_u8 b 8;
    w_u32 b view;
    w_u48 b seq;
    w_str b digest;
    w_u32 b client;
    w_list b (fun b v -> w_u32 b v) responders
  | Reply { view; seq; txn_id; client; from; result } ->
    w_u8 b 9;
    w_u32 b view;
    w_u48 b seq;
    w_u48 b txn_id;
    w_u32 b client;
    w_u32 b from;
    w_str b result
  | Spec_reply { view; seq; txn_id; client; from; history } ->
    w_u8 b 10;
    w_u32 b view;
    w_u48 b seq;
    w_u48 b txn_id;
    w_u32 b client;
    w_u32 b from;
    w_str b history
  | Local_commit { view; seq; client; from } ->
    w_u8 b 11;
    w_u32 b view;
    w_u48 b seq;
    w_u32 b client;
    w_u32 b from
  | Fill_hole { view; from_seq; to_seq; from } ->
    w_u8 b 12;
    w_u32 b view;
    w_u48 b from_seq;
    w_u48 b to_seq;
    w_u32 b from
  | State_request { low; from } ->
    w_u8 b 13;
    w_u48 b low;
    w_u32 b from
  | State_response
      { last_stable; state_digest; cert; chain_digest; appended; app_seq; app_export; blocks; from }
    ->
    w_u8 b 14;
    w_u48 b last_stable;
    w_str b state_digest;
    w_list b
      (fun b (id, d) ->
        w_u32 b id;
        w_str b d)
      cert;
    w_str b chain_digest;
    w_u48 b appended;
    w_u48 b app_seq;
    w_list b
      (fun b (k, v) ->
        w_str b k;
        w_str b v)
      app_export;
    w_list b (fun b blk -> w_str b (Rdb_chain.Block.to_bytes blk)) blocks;
    w_u32 b from
  | Hs_proposal { view; seq; batch; parent; from } ->
    w_u8 b 15;
    w_u32 b view;
    w_u48 b seq;
    w_batch b batch;
    w_str b parent;
    w_u32 b from
  | Hs_vote { view; seq; phase; digest; from } ->
    w_u8 b 16;
    w_u32 b view;
    w_u48 b seq;
    w_u8 b phase;
    w_str b digest;
    w_u32 b from
  | Hs_qc { view; seq; phase; digest; senders; from } ->
    w_u8 b 17;
    w_u32 b view;
    w_u48 b seq;
    w_u8 b phase;
    w_str b digest;
    w_list b (fun b v -> w_u32 b v) senders;
    w_u32 b from)

let encode msg = with_buffer (fun b -> encode_into b msg; Buffer.contents b)

let decode_cursor c =
  match r_u8 c with
    | 1 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let batch = r_batch c in
      let from = r_u32 c in
      Pre_prepare { view; seq; batch; from }
    | 2 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let digest = r_str c in
      let from = r_u32 c in
      Prepare { view; seq; digest; from }
    | 3 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let digest = r_str c in
      let from = r_u32 c in
      Commit { view; seq; digest; from }
    | 4 ->
      let seq = r_u48 c in
      let state_digest = r_str c in
      let from = r_u32 c in
      Checkpoint { seq; state_digest; from }
    | 5 ->
      let new_view = r_u32 c in
      let last_stable = r_u48 c in
      let prepared = r_list c r_proof in
      let from = r_u32 c in
      View_change { new_view; last_stable; prepared; from }
    | 6 ->
      let view = r_u32 c in
      let vc_senders = r_list c r_u32 in
      let pre_prepares = r_list c r_batch in
      let from = r_u32 c in
      New_view { view; vc_senders; pre_prepares; from }
    | 7 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let batch = r_batch c in
      let history = r_str c in
      let from = r_u32 c in
      Order_request { view; seq; batch; history; from }
    | 8 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let digest = r_str c in
      let client = r_u32 c in
      let responders = r_list c r_u32 in
      Commit_cert { view; seq; digest; client; responders }
    | 9 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let txn_id = r_u48 c in
      let client = r_u32 c in
      let from = r_u32 c in
      let result = r_str c in
      Reply { view; seq; txn_id; client; from; result }
    | 10 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let txn_id = r_u48 c in
      let client = r_u32 c in
      let from = r_u32 c in
      let history = r_str c in
      Spec_reply { view; seq; txn_id; client; from; history }
    | 11 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let client = r_u32 c in
      let from = r_u32 c in
      Local_commit { view; seq; client; from }
    | 12 ->
      let view = r_u32 c in
      let from_seq = r_u48 c in
      let to_seq = r_u48 c in
      let from = r_u32 c in
      Fill_hole { view; from_seq; to_seq; from }
    | 13 ->
      let low = r_u48 c in
      let from = r_u32 c in
      State_request { low; from }
    | 14 ->
      let last_stable = r_u48 c in
      let state_digest = r_str c in
      let cert =
        r_list c (fun c ->
            let id = r_u32 c in
            let d = r_str c in
            (id, d))
      in
      let chain_digest = r_str c in
      let appended = r_u48 c in
      let app_seq = r_u48 c in
      let app_export =
        r_list c (fun c ->
            let k = r_str c in
            let v = r_str c in
            (k, v))
      in
      let blocks =
        r_list c (fun c ->
            match Rdb_chain.Block.of_bytes (r_str c) with
            | Some blk -> blk
            | None -> raise (Bad "malformed block"))
      in
      let from = r_u32 c in
      State_response
        { last_stable; state_digest; cert; chain_digest; appended; app_seq; app_export; blocks; from }
    | 15 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let batch = r_batch c in
      let parent = r_str c in
      let from = r_u32 c in
      Hs_proposal { view; seq; batch; parent; from }
    | 16 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let phase = r_u8 c in
      let digest = r_str c in
      let from = r_u32 c in
      Hs_vote { view; seq; phase; digest; from }
    | 17 ->
      let view = r_u32 c in
      let seq = r_u48 c in
      let phase = r_u8 c in
      let digest = r_str c in
      let senders = r_list c r_u32 in
      let from = r_u32 c in
      Hs_qc { view; seq; phase; digest; senders; from }
    | tag -> raise (Bad (Printf.sprintf "unknown message tag %d" tag))

let decode_sub_exn s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then raise (Bad "bad substring bounds");
  let c = { data = s; pos; limit = pos + len } in
  let msg = decode_cursor c in
  if c.pos <> c.limit then raise (Bad "trailing bytes");
  msg

let decode_exn s = decode_sub_exn s ~pos:0 ~len:(String.length s)

let decode s =
  match decode_exn s with
  | msg -> Ok msg
  | exception Bad reason -> Error reason

let decode_sub s ~pos ~len =
  match decode_sub_exn s ~pos ~len with
  | msg -> Ok msg
  | exception Bad reason -> Error reason

(* ---- framing ------------------------------------------------------------------ *)

let frame payload =
  with_buffer (fun b ->
      w_u32 b (String.length payload);
      Buffer.add_string b payload;
      Buffer.contents b)

(* Single pass over the backlog: one [Buffer.contents] snapshot, then every
   complete frame is sliced out at its offset.  (The previous version
   re-snapshotted and rebuilt the buffer once per frame — O(n^2) in the
   number of buffered frames.)  Frames are removed from [buf] before their
   delivery runs, so an exception from [deliver] never re-delivers; bytes a
   reentrant [deliver] appends are preserved and deframed before return. *)
let rec read_frame buf deliver =
  let len = Buffer.length buf in
  if len >= 4 then begin
    let contents = Buffer.contents buf in
    let pos = ref 0 in
    let appended = ref 0 in
    let flush () =
      appended := Buffer.length buf - len;
      if !pos > 0 || !appended > 0 then begin
        let extra = if !appended > 0 then Buffer.sub buf len !appended else "" in
        Buffer.clear buf;
        Buffer.add_substring buf contents !pos (len - !pos);
        Buffer.add_string buf extra
      end
    in
    Fun.protect ~finally:flush (fun () ->
        let continue = ref true in
        while !continue do
          let remaining = len - !pos in
          if remaining < 4 then continue := false
          else begin
            let frame_len =
              (Char.code contents.[!pos] lsl 24)
              lor (Char.code contents.[!pos + 1] lsl 16)
              lor (Char.code contents.[!pos + 2] lsl 8)
              lor Char.code contents.[!pos + 3]
            in
            if frame_len > max_frame_bytes then failwith "Codec.read_frame: oversized frame";
            if remaining < 4 + frame_len then continue := false
            else begin
              let payload = String.sub contents (!pos + 4) frame_len in
              pos := !pos + 4 + frame_len;
              deliver payload
            end
          end
        done);
    if !appended > 0 then read_frame buf deliver
  end

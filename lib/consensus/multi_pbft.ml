module Merge = Rdb_replica.Exec_queue.Merge

type routed = { inst : int; act : Action.t }

type t = {
  k : int;
  n : int;
  id : int;
  cores : Pbft_replica.t array;
  merge : Message.batch Merge.t;
  mutable global_stable : int;
}

(* Instance [i] owns the global sequence numbers { g | (g - 1) mod k = i }
   (1-based round-robin): local slot [l] of instance [i] is global
   [(l - 1) * k + i + 1]. *)
let global_of t ~inst ~seq = ((seq - 1) * t.k) + inst + 1

let local_of t ~seq = ((seq - 1) / t.k) + 1

let instance_of t ~seq = (seq - 1) mod t.k

let create (cfg : Config.t) ~instances ~id =
  if instances < 1 then invalid_arg "Multi_pbft.create: need at least one instance";
  let per_instance i =
    (* Local sequence numbers advance k times slower than global ones, so
       the per-instance checkpoint interval shrinks by k to keep the global
       checkpoint cadence; the offset staggers the view-0 primaries. *)
    Config.make
      ~checkpoint_interval:(max 1 (cfg.Config.checkpoint_interval / instances))
      ~high_water_mark:cfg.Config.high_water_mark
      ~primary_offset:(i mod cfg.Config.n) ~n:cfg.Config.n ()
  in
  {
    k = instances;
    n = cfg.Config.n;
    id;
    cores = Array.init instances (fun i -> Pbft_replica.create (per_instance i) ~id);
    merge = Merge.create ~instances;
    global_stable = 0;
  }

let instances t = t.k

let id t = t.id

let core t inst = t.cores.(inst)

let view t ~inst = Pbft_replica.view t.cores.(inst)

let views t = Array.map Pbft_replica.view t.cores

let max_view t = Array.fold_left (fun acc c -> max acc (Pbft_replica.view c)) 0 t.cores

let is_primary t ~inst = Pbft_replica.is_primary t.cores.(inst)

let leads_any t = Array.exists Pbft_replica.is_primary t.cores

let led_instances t =
  let acc = ref [] in
  for i = t.k - 1 downto 0 do
    if Pbft_replica.is_primary t.cores.(i) then acc := i :: !acc
  done;
  !acc

let in_view_change t ~inst = Pbft_replica.in_view_change t.cores.(inst)

let last_executed t = Merge.next_seq t.merge - 1

let waiting_instance t = Merge.waiting_instance t.merge

let merge_pending_of t inst = Merge.pending_of t.merge inst

let pending_instances t =
  Array.fold_left (fun acc c -> acc + Pbft_replica.pending_instances c) 0 t.cores

let equivocations_detected t =
  Array.fold_left (fun acc c -> acc + Pbft_replica.equivocations_detected c) 0 t.cores

let vc_spam_suppressed t =
  Array.fold_left (fun acc c -> acc + Pbft_replica.vc_spam_suppressed c) 0 t.cores

let last_stable_checkpoint t = t.global_stable

(* The global stable prefix: instance [j]'s first non-stable global slot is
   [global_of j (stable_j + 1)], so the prefix ends just before the minimum
   of those across instances. *)
let stable_watermark t =
  let w = ref max_int in
  Array.iteri
    (fun j c ->
      let s = Pbft_replica.last_stable_checkpoint c in
      w := min !w ((s * t.k) + j))
    t.cores;
  if !w = max_int then 0 else max 0 !w

(* Drain the merge: everything now contiguous at the global cursor comes out
   as [Execute] actions in strict global order, preserving the §4.6
   invariant the hosting system relies on. *)
let drain t =
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    match Merge.poll t.merge with
    | Some b -> acc := { inst = instance_of t ~seq:b.Message.seq; act = Action.Execute b } :: !acc
    | None -> continue := false
  done;
  List.rev !acc

(* Rewrite one instance's actions into the global sequence space:
   - [Execute] enters the merge (its batch re-stamped with the global slot)
     and comes back out only in global order;
   - client [Reply] sequence numbers become global, so reply aggregation
     keys are unique across instances;
   - [Stable_checkpoint] becomes the global stable-prefix watermark;
   - protocol traffic (pre-prepare/prepare/commit/checkpoint/view-change)
     stays in the instance's local space and is merely tagged with the
     instance for wire routing. *)
let translate t inst actions =
  List.concat_map
    (fun act ->
      match act with
      | Action.Execute b ->
        let g = global_of t ~inst ~seq:b.Message.seq in
        (match Merge.offer t.merge ~seq:g { b with Message.seq = g } with
        | Ok () -> ()
        | Error e -> invalid_arg ("Multi_pbft: merge rejected a commit: " ^ e));
        drain t
      | Action.Send_client (c, Message.Reply { view; seq; txn_id; client; from; result }) ->
        [
          {
            inst;
            act =
              Action.Send_client
                ( c,
                  Message.Reply
                    { view; seq = global_of t ~inst ~seq; txn_id; client; from; result } );
          };
        ]
      | Action.Stable_checkpoint _ ->
        let w = stable_watermark t in
        if w > t.global_stable then begin
          t.global_stable <- w;
          [ { inst; act = Action.Stable_checkpoint w } ]
        end
        else []
      | a -> [ { inst; act = a } ])
    actions

(* A checkpoint catch-up inside the core (a laggard adopting a stable
   checkpoint) skips local slots it will never execute; tell the merge so
   the global cursor does not wait on them forever.  A no-op on the normal
   path, where the expectation already moved with each offer. *)
let sync_merge t inst =
  let exec = Pbft_replica.last_executed t.cores.(inst) in
  if exec > 0 then Merge.advance t.merge ~inst ~seq:(global_of t ~inst ~seq:exec)

let wrap t inst actions =
  let translated = translate t inst actions in
  sync_merge t inst;
  (* The catch-up may have unblocked slots of other instances queued behind
     the skipped ones. *)
  translated @ drain t

let propose t ~inst ~reqs ~digest ~wire_bytes =
  let batch, actions = Pbft_replica.propose t.cores.(inst) ~reqs ~digest ~wire_bytes in
  (batch, wrap t inst actions)

let handle_message t ~inst msg = wrap t inst (Pbft_replica.handle_message t.cores.(inst) msg)

let handle_executed t ~seq ~state_digest ~result =
  let inst = instance_of t ~seq in
  let local = local_of t ~seq in
  wrap t inst (Pbft_replica.handle_executed t.cores.(inst) ~seq:local ~state_digest ~result)

(* No-op keepalive (the move RCC makes for starved instances): when the
   global merge is blocked on an instance THIS replica leads, nobody else
   can fix it — backups aim view changes at us, but a view change cannot
   conjure demand.  The scenario is real: after an instance's primary
   crashes, the retransmitted transactions are re-batched by whichever
   instances are still live, so the deposed instance's successor has
   nothing to propose while the siblings' committed batches pile up behind
   the hole.  The successor instead plugs its frontier with empty batches
   until its residue class reaches the merge's horizon and the backlog
   drains. *)
let keepalive t ~inst =
  if Merge.waiting_instance t.merge <> inst then []
  else begin
    let horizon = Merge.horizon t.merge in
    let acc = ref [] in
    let continue = ref (horizon > 0) in
    while !continue do
      match
        Pbft_replica.propose t.cores.(inst) ~reqs:[]
          ~digest:(Printf.sprintf "keepalive:i%d" inst) ~wire_bytes:0
      with
      | None, _ -> continue := false
      | Some b, actions ->
        acc := !acc @ wrap t inst actions;
        if global_of t ~inst ~seq:b.Message.seq >= horizon then continue := false
    done;
    !acc
  end

let suspect_primary t ~inst = wrap t inst (Pbft_replica.suspect_primary t.cores.(inst))

let nudge t ~inst = wrap t inst (Pbft_replica.nudge t.cores.(inst))

let view_change_retransmit t ~inst =
  wrap t inst (Pbft_replica.view_change_retransmit t.cores.(inst))

(* The primary of instance [inst] at view [view]: the round-robin rule
   shifted by the instance's offset, so view 0 spreads the k primaries over
   k distinct replicas. *)
let primary_of t ~inst ~view = (view + (inst mod t.n)) mod t.n

(* The HotStuff client is PBFT's client: the linear protocol changes
   replica-to-replica traffic, not the client contract.  Requests go to
   the believed leader; f+1 matching replies from distinct replicas
   accept a result; a retransmit timeout broadcasts the request so a
   backup can relay it and, with unserved demand, pace the leader out. *)

type action =
  | Send of int * Message.t
  | Broadcast_request of int
  | Complete of { txn_id : int; result : string }

type pending = {
  replies : string Quorum.t; (* result -> senders *)
  mutable attempts : int; (* retransmissions so far *)
}

type t = {
  config : Config.t;
  id : int;
  mutable view : int; (* highest view seen in any reply *)
  mutable leader : int;
  pending : (int, pending) Hashtbl.t;
}

let create config ~id = { config; id; view = 0; leader = 0; pending = Hashtbl.create 64 }

let id t = t.id

let leader t = t.leader

let submit t ~txn_id =
  if not (Hashtbl.mem t.pending txn_id) then
    Hashtbl.add t.pending txn_id { replies = Quorum.create (); attempts = 0 };
  []

let handle_reply t msg =
  match msg with
  | Message.Reply { txn_id; from; result; view; _ } ->
    (* Replies carry the view that committed them: after the pacemaker
       rotates the leader, this re-targets subsequent requests. *)
    if view > t.view then begin
      t.view <- view;
      t.leader <- Config.primary_of_view t.config view
    end;
    (match Hashtbl.find_opt t.pending txn_id with
    | None -> []
    | Some p ->
      let n = Quorum.add p.replies result from in
      if n >= Config.reply_quorum t.config then begin
        Hashtbl.remove t.pending txn_id;
        [ Complete { txn_id; result } ]
      end
      else [])
  | _ -> []

let handle_timeout t ~txn_id =
  match Hashtbl.find_opt t.pending txn_id with
  | None -> []
  | Some p ->
    p.attempts <- p.attempts + 1;
    [ Broadcast_request txn_id ]

let attempts t ~txn_id =
  match Hashtbl.find_opt t.pending txn_id with Some p -> p.attempts | None -> 0

let next_timeout t ~txn_id ~base =
  let a = min (attempts t ~txn_id) 4 in
  base * (1 lsl a)

let outstanding t = Hashtbl.length t.pending

(** Wire messages for both protocol families.

    The consensus cores are payload-agnostic: a batch carries opaque
    request references plus size metadata; the hosting system keeps the
    actual transaction bodies and looks them up at execution time.  This is
    the same layering as ResilientDB's typed message classes over raw
    buffers (§4.8). *)

type request_ref = { client : int; txn_id : int }

type batch = {
  view : int;
  seq : int;
  digest : string;  (** digest over the single string representation of the
                        whole batch, as in §4.3 *)
  reqs : request_ref list;
  wire_bytes : int;  (** serialized size of the request payload *)
}

(** A prepared certificate carried in view-change messages: evidence that a
    batch could have committed in an earlier view. *)
type prepared_proof = { p_view : int; p_seq : int; p_digest : string; p_batch : batch }

type t =
  (* PBFT (§2.1) *)
  | Pre_prepare of { view : int; seq : int; batch : batch; from : int }
  | Prepare of { view : int; seq : int; digest : string; from : int }
  | Commit of { view : int; seq : int; digest : string; from : int }
  | Checkpoint of { seq : int; state_digest : string; from : int }
  | View_change of {
      new_view : int;
      last_stable : int;
      prepared : prepared_proof list;
      from : int;
    }
  | New_view of { view : int; vc_senders : int list; pre_prepares : batch list; from : int }
  (* HotStuff-lineage linear protocol (three-phase, leader-aggregated;
     see ARCHITECTURE.md "Protocol zoo") *)
  | Hs_proposal of { view : int; seq : int; batch : batch; parent : string; from : int }
      (** leader broadcast; [parent] chains to the digest proposed at
          [seq - 1] ("genesis" for the first slot) *)
  | Hs_vote of { view : int; seq : int; phase : int; digest : string; from : int }
      (** sent to the leader only — the linearity: n votes inbound instead
          of n^2 all-to-all.  [phase] is 1 (prepare), 2 (pre-commit) or
          3 (commit) *)
  | Hs_qc of { view : int; seq : int; phase : int; digest : string; senders : int list; from : int }
      (** leader broadcast of an assembled quorum certificate: the
          [senders] are the 2f+1 distinct voters, standing in for a
          threshold signature over their votes *)
  (* Zyzzyva (§2.1, "Speculative Execution") *)
  | Order_request of { view : int; seq : int; batch : batch; history : string; from : int }
  | Commit_cert of {
      view : int;
      seq : int;
      digest : string;
      client : int;
      responders : int list;  (** the 2f+1 replicas whose spec replies form the cert *)
    }
  | Fill_hole of { view : int; from_seq : int; to_seq : int; from : int }
      (** Zyzzyva: a backup asks the primary to resend Order-requests it
          never received (Kotla et al. §4.1's fill-hole sub-protocol) *)
  (* Replies to clients *)
  | Reply of { view : int; seq : int; txn_id : int; client : int; from : int; result : string }
  | Spec_reply of {
      view : int;
      seq : int;
      txn_id : int;
      client : int;
      from : int;
      history : string;
    }
  | Local_commit of { view : int; seq : int; client : int; from : int }
  (* Checkpoint-driven state transfer (paper §4.7 checkpointing; a replica
     that crashes and recovers, or falls behind the checkpoint horizon,
     catches up in O(gap) blocks instead of per-message retransmission) *)
  | State_request of { low : int; from : int }
      (** [low] is the requester's next ledger sequence: the donor ships
          everything it retains from there up *)
  | State_response of {
      last_stable : int;  (** donor's stable checkpoint sequence *)
      state_digest : string;  (** application state digest at [last_stable] *)
      cert : (int * string) list;
          (** stable-checkpoint certificate: (replica id, state digest)
              pairs from [2f+1] distinct replicas *)
      chain_digest : string;  (** donor ledger's cumulative digest *)
      appended : int;  (** donor ledger's total appended count *)
      app_seq : int;  (** sequence the exported application state reflects *)
      app_export : (string * string) list;
          (** application key-value export (empty when the host derives
              state from the chain alone) *)
      blocks : Rdb_chain.Block.t list;  (** retained chain segment, ascending *)
      from : int;
    }

let type_name = function
  | Pre_prepare _ -> "pre-prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Checkpoint _ -> "checkpoint"
  | View_change _ -> "view-change"
  | New_view _ -> "new-view"
  | Hs_proposal _ -> "hs-proposal"
  | Hs_vote _ -> "hs-vote"
  | Hs_qc _ -> "hs-qc"
  | Order_request _ -> "order-request"
  | Commit_cert _ -> "commit-cert"
  | Fill_hole _ -> "fill-hole"
  | Reply _ -> "reply"
  | Spec_reply _ -> "spec-reply"
  | Local_commit _ -> "local-commit"
  | State_request _ -> "state-request"
  | State_response _ -> "state-response"

(** Canonical string covering the authenticated fields of a message, fed to
    the MAC/signature layer by hosting systems.  Request payloads are
    covered transitively through the batch digest. *)
let auth_string t =
  let b = Buffer.create 64 in
  let add = Buffer.add_string b in
  add (type_name t);
  (match t with
  | Pre_prepare { view; seq; batch; from } ->
    add (Printf.sprintf "|%d|%d|%d|" view seq from);
    add batch.digest
  | Prepare { view; seq; digest; from } | Commit { view; seq; digest; from } ->
    add (Printf.sprintf "|%d|%d|%d|" view seq from);
    add digest
  | Checkpoint { seq; state_digest; from } ->
    add (Printf.sprintf "|%d|%d|" seq from);
    add state_digest
  | View_change { new_view; last_stable; prepared; from } ->
    add (Printf.sprintf "|%d|%d|%d|" new_view last_stable from);
    List.iter (fun p -> add (Printf.sprintf "%d:%d:%s;" p.p_view p.p_seq p.p_digest)) prepared
  | New_view { view; vc_senders; pre_prepares; from } ->
    add (Printf.sprintf "|%d|%d|" view from);
    List.iter (fun s -> add (string_of_int s ^ ",")) vc_senders;
    List.iter (fun (b' : batch) -> add (Printf.sprintf "%d:%s;" b'.seq b'.digest)) pre_prepares
  | Hs_proposal { view; seq; batch; parent; from } ->
    add (Printf.sprintf "|%d|%d|%d|" view seq from);
    add batch.digest;
    add "|";
    add parent
  | Hs_vote { view; seq; phase; digest; from } ->
    add (Printf.sprintf "|%d|%d|%d|%d|" view seq phase from);
    add digest
  | Hs_qc { view; seq; phase; digest; senders; from } ->
    add (Printf.sprintf "|%d|%d|%d|%d|" view seq phase from);
    add digest;
    add "|";
    List.iter (fun s -> add (string_of_int s ^ ",")) senders
  | Order_request { view; seq; batch; history; from } ->
    add (Printf.sprintf "|%d|%d|%d|" view seq from);
    add batch.digest;
    add history
  | Commit_cert { view; seq; digest; client; responders } ->
    add (Printf.sprintf "|%d|%d|%d|" view seq client);
    add digest;
    List.iter (fun r -> add (string_of_int r ^ ",")) responders
  | Fill_hole { view; from_seq; to_seq; from } ->
    add (Printf.sprintf "|%d|%d|%d|%d" view from_seq to_seq from)
  | Reply { view; seq; txn_id; client; from; result } ->
    add (Printf.sprintf "|%d|%d|%d|%d|%d|" view seq txn_id client from);
    add result
  | Spec_reply { view; seq; txn_id; client; from; history } ->
    add (Printf.sprintf "|%d|%d|%d|%d|%d|" view seq txn_id client from);
    add history
  | Local_commit { view; seq; client; from } ->
    add (Printf.sprintf "|%d|%d|%d|%d" view seq client from)
  | State_request { low; from } -> add (Printf.sprintf "|%d|%d" low from)
  | State_response
      { last_stable; state_digest; cert; chain_digest; appended; app_seq; app_export; blocks; from }
    ->
    add (Printf.sprintf "|%d|%d|%d|%d|" last_stable appended app_seq from);
    add state_digest;
    add "|";
    add chain_digest;
    add "|";
    List.iter (fun (id, d) -> add (Printf.sprintf "%d:%s;" id d)) cert;
    List.iter
      (fun (blk : Rdb_chain.Block.t) ->
        add (Printf.sprintf "%d:%s;" blk.Rdb_chain.Block.seq blk.Rdb_chain.Block.digest))
      blocks;
    (* The key-value export is covered by one folded digest so the
       authenticated string stays bounded. *)
    let kv = Buffer.create 64 in
    List.iter
      (fun (key, value) ->
        Buffer.add_string kv key;
        Buffer.add_char kv '\x00';
        Buffer.add_string kv value;
        Buffer.add_char kv '\x00')
      app_export;
    add (Rdb_crypto.Sha256.digest (Buffer.contents kv)));
  Buffer.contents b

(* Fixed header: type tag, view, seq, sender, checksum. *)
let header_bytes = 32
let digest_bytes = 32

(** Wire size estimate, used for network bandwidth accounting.  [sig_bytes]
    is the signature size of the scheme in force on the link. *)
let wire_size ~sig_bytes = function
  | Pre_prepare { batch; _ } -> header_bytes + digest_bytes + batch.wire_bytes + sig_bytes
  | Prepare _ | Commit _ -> header_bytes + digest_bytes + sig_bytes
  | Checkpoint _ -> header_bytes + digest_bytes + sig_bytes
  | View_change { prepared; _ } ->
    header_bytes + sig_bytes + List.fold_left (fun acc p -> acc + digest_bytes + 16 + p.p_batch.wire_bytes) 0 prepared
  | New_view { pre_prepares; _ } ->
    header_bytes + sig_bytes
    + List.fold_left (fun acc b -> acc + digest_bytes + b.wire_bytes) 0 pre_prepares
  | Hs_proposal { batch; _ } ->
    (* proposal digest + parent chain digest *)
    header_bytes + (2 * digest_bytes) + batch.wire_bytes + sig_bytes
  | Hs_vote _ -> header_bytes + digest_bytes + sig_bytes
  | Hs_qc { senders; _ } ->
    (* one aggregate certificate: the digest plus the signer bitmap — the
       wire-size payoff of threshold-style aggregation vs shipping 2f+1
       full votes *)
    header_bytes + digest_bytes + sig_bytes + (List.length senders * 8)
  | Order_request { batch; _ } ->
    header_bytes + (2 * digest_bytes) + batch.wire_bytes + sig_bytes
  | Commit_cert { responders; _ } ->
    header_bytes + digest_bytes + sig_bytes + (List.length responders * (sig_bytes + 8))
  | Fill_hole _ -> header_bytes + sig_bytes
  | State_request _ -> header_bytes + sig_bytes
  | State_response { cert; app_export; blocks; _ } ->
    header_bytes + sig_bytes + (2 * digest_bytes)
    + (List.length cert * (digest_bytes + 8))
    + List.fold_left
        (fun acc (blk : Rdb_chain.Block.t) ->
          let link =
            match blk.Rdb_chain.Block.link with
            | Rdb_chain.Block.Prev_hash _ -> digest_bytes
            | Rdb_chain.Block.Certificate shares -> List.length shares * (sig_bytes + 8)
          in
          acc + digest_bytes + 16 + link)
        0 blocks
    + List.fold_left
        (fun acc (key, value) -> acc + String.length key + String.length value + 8)
        0 app_export
  | Reply _ -> header_bytes + digest_bytes + sig_bytes
  | Spec_reply _ -> header_bytes + (2 * digest_bytes) + sig_bytes
  | Local_commit _ -> header_bytes + sig_bytes

(** Multi-primary PBFT: [k] concurrent consensus instances per replica over
    a partitioned sequence space, merged back into one in-order execution
    stream.

    The paper's lesson is that throughput is bounded by the fabric around
    the protocol, not its phase count — and at the paper's own defaults the
    last serial resource is the {e single} ordering instance behind the
    worker-thread.  This module generalizes the fabric's core invariant
    ("out-of-order consensus, in-order execution", §4.5/§4.6) from one
    ordering instance to [k]:

    - Instance [i] owns the global sequence numbers
      [{ s | (s - 1) mod k = i }] (1-based round-robin partition).  Within
      an instance, slots are dense local sequence numbers [1, 2, 3, ...];
      local slot [l] of instance [i] is global [(l - 1) * k + i + 1].
    - Each instance is a full, unmodified {!Pbft_replica} core — its own
      pre-prepare/prepare/commit state, its own checkpointing (at interval
      [global_interval / k] so the global cadence is unchanged), and its own
      view change.  Instance [i]'s view-0 primary is replica [i mod n]
      (via {!Config.t}[.primary_offset]), so the k instances are led by k
      different replicas and order batches concurrently.
    - Execution stays {e strictly global-order}: every [Execute] a core
      emits enters a deterministic k-way merge
      ({!Rdb_replica.Exec_queue.Merge}) keyed by global sequence number, and
      only comes back out when the global cursor reaches it.  A view change
      on one instance stalls only that instance's residue class; the merge's
      hole tracker names the blocked instance so the hosting system can aim
      its demand-timer escalation.

    All client-visible artifacts are translated to the global space at this
    boundary: [Execute] batches and client [Reply] messages carry global
    sequence numbers (so ledgers and reply-aggregation keys are identical to
    a single-instance deployment's), and [Stable_checkpoint] announces the
    global stable {e prefix} (the minimum over instances of their stable
    coverage).  Protocol traffic stays in each instance's local space and is
    only tagged with its instance number for wire routing — peers feed it to
    the same instance's core.

    With [instances = 1] the partition is trivial and the behaviour reduces
    exactly to a plain {!Pbft_replica} (same actions, same sequence
    numbers), which is what the cluster uses for the k=1 baseline. *)

type t

(** An action tagged with the consensus instance that produced it.  Protocol
    messages must be delivered to the {e same} instance on the receiving
    replica; [Execute], [Send_client] and [Stable_checkpoint] actions are
    already translated to the global sequence space. *)
type routed = { inst : int; act : Action.t }

val create : Config.t -> instances:int -> id:int -> t
(** [create cfg ~instances ~id] builds [instances] independent PBFT cores
    for replica [id].  [cfg] is the {e global} configuration: its
    [checkpoint_interval] is divided across instances and its
    [primary_offset] is replaced per instance. *)

val instances : t -> int

val id : t -> int

val core : t -> int -> Pbft_replica.t
(** The underlying core of one instance (tests and diagnostics). *)

val instance_of : t -> seq:int -> int
(** The instance owning a global sequence number. *)

val view : t -> inst:int -> int

val views : t -> int array
(** Per-instance views, index = instance. *)

val max_view : t -> int

val primary_of : t -> inst:int -> view:int -> int
(** The replica leading instance [inst] at [view]:
    [(view + inst mod n) mod n]. *)

val is_primary : t -> inst:int -> bool

val leads_any : t -> bool
(** Whether this replica currently leads at least one instance. *)

val led_instances : t -> int list
(** The instances this replica currently leads, ascending. *)

val in_view_change : t -> inst:int -> bool

val last_executed : t -> int
(** Highest global sequence number handed to the execution layer (the merge
    cursor minus one). *)

val waiting_instance : t -> int
(** The instance the global execution cursor is blocked on — where the
    demand timer should aim its nudge / view-change escalation. *)

val merge_pending_of : t -> int -> int
(** Batches one instance has committed ahead of the global cursor. *)

val last_stable_checkpoint : t -> int
(** The global stable prefix: every global sequence number up to this is
    covered by some instance's stable checkpoint. *)

val pending_instances : t -> int
(** Total consensus slots tracked across all instances (saturation
    metrics). *)

val equivocations_detected : t -> int
(** Conflicting pre-prepares observed, summed over all instances (see
    {!Pbft_replica.equivocations_detected}). *)

val vc_spam_suppressed : t -> int
(** View-change messages rate-limited away, summed over all instances (see
    {!Pbft_replica.vc_spam_suppressed}). *)

val propose :
  t ->
  inst:int ->
  reqs:Message.request_ref list ->
  digest:string ->
  wire_bytes:int ->
  Message.batch option * routed list
(** Propose a batch on one instance (primary of that instance only; same
    contract as {!Pbft_replica.propose}).  The returned batch carries the
    instance's {e local} sequence number. *)

val handle_message : t -> inst:int -> Message.t -> routed list
(** Feed one protocol message to the instance it was sent on. *)

val handle_executed : t -> seq:int -> state_digest:string -> result:string -> routed list
(** The hosting system reports the batch at {e global} sequence number
    [seq] finished executing.  Must be called in global order; the owning
    instance sees its local slots in local order by construction. *)

val keepalive : t -> inst:int -> routed list
(** Primary of the merge-blocking instance only: plug the instance's
    frontier with empty (no-op) batches up to the merge's horizon, so the
    siblings' committed backlog can drain.  Needed when the instance was
    deposed and its unserved transactions were re-batched by live
    instances — its successor then has real holes but no real demand (the
    no-op proposal RCC uses for starved instances).  A no-op when the merge
    is not blocked on [inst] or nothing is queued behind it. *)

val suspect_primary : t -> inst:int -> routed list
(** Start a view change on one instance (its siblings keep ordering). *)

val nudge : t -> inst:int -> routed list
(** Vote retransmission for one instance's oldest unexecuted slot. *)

val view_change_retransmit : t -> inst:int -> routed list

(** The PBFT client: submits requests to the primary and accepts a result
    once [f+1] matching replies from distinct replicas arrive (at least one
    is then guaranteed non-faulty).

    On a retransmit timeout the request is broadcast to all replicas so a
    non-faulty backup can relay it and, eventually, trigger a view change —
    the standard PBFT liveness path. *)

type t

type action =
  | Send of int * Message.t  (** to one replica *)
  | Broadcast_request of int  (** txn id: resend to all replicas *)
  | Complete of { txn_id : int; result : string }

val create : Config.t -> id:int -> t

val id : t -> int

val submit : t -> txn_id:int -> action list
(** Track a new request; the caller transports the request body itself (the
    cores are payload-agnostic), so the action names only the target. *)

val handle_reply : t -> Message.t -> action list
(** Replies also carry the committing view: the client re-targets its
    [primary] when it sees a higher one (PBFT §4.1). *)

val handle_timeout : t -> txn_id:int -> action list
(** One retransmission attempt: bumps the request's attempt counter and
    (while still outstanding) asks for a broadcast. *)

val primary : t -> int
(** The replica this client currently sends fresh requests to. *)

val attempts : t -> txn_id:int -> int
(** Retransmissions so far for an outstanding request; 0 when fresh or
    unknown. *)

val next_timeout : t -> txn_id:int -> base:int -> int
(** Caller-visible exponential-backoff deadline: [base] time units doubled
    per recorded attempt, capped at [16 * base]. *)

val outstanding : t -> int

(** The Zyzzyva replica (Kotla et al., SOSP '07): single-phase speculative
    consensus.

    The primary orders a batch and broadcasts an Order-request carrying a
    rolling history digest; backups execute speculatively in sequence order
    — before knowing whether the order is agreed — and reply directly to
    the client.  Correctness then rests on the client's collection rules
    (see {!Zyzzyva_client}): all [3f+1] matching speculative replies make
    the request complete; between [2f+1] and [3f] the client closes the
    request with a commit certificate.

    As in the paper's evaluation, the view-change sub-protocol is not
    exercised (only backup failures are injected); out-of-order
    Order-requests are buffered until the gap fills, which is the protocol's
    fill-hole situation in its benign form. *)

type t

val create : Config.t -> id:int -> t

val id : t -> int

val is_primary : t -> bool

val history : t -> string
(** The rolling history digest after the last speculative execution. *)

val last_spec_executed : t -> int

val committed_upto : t -> int
(** Highest sequence number covered by a client commit certificate. *)

val equivocations_detected : t -> int
(** Conflicting order-requests observed for an already-ordered slot:
    evidence of an equivocating primary.  Counted once per conflict, then
    dropped — the rolling history chain diverges at the first
    disagreement, so the two branches can never both complete at a
    client. *)

val propose : t -> reqs:Message.request_ref list -> digest:string -> wire_bytes:int -> Message.batch option * Action.t list
(** Primary only: order the batch and broadcast the Order-request. *)

val handle_message : t -> Message.t -> Action.t list

val handle_executed : t -> seq:int -> state_digest:string -> result:string -> Action.t list
(** Emits the Spec-replies for the batch at [seq] and, on checkpoint
    boundaries, a Checkpoint broadcast. *)

(** The HotStuff client.

    The linear protocol changes replica-to-replica message complexity,
    {e not} the client contract: like PBFT's client, a request goes to
    the believed leader and a result is accepted once [f+1] matching
    replies from distinct replicas arrive (at least one is then
    guaranteed non-faulty).  No speculative fast path — that is
    Zyzzyva's trade, not HotStuff's.

    {2 Pacemaker interaction}

    Replies carry the view that committed them; a higher view re-targets
    subsequent requests at the rotated leader ({!leader}).  On a
    retransmit timeout the request is broadcast to all replicas: a
    non-faulty backup relays it, and unserved demand is exactly what the
    hosting system's demand timer escalates into {!Hotstuff_replica}'s
    view change — the client is the pacemaker's demand source. *)

type t

type action =
  | Send of int * Message.t  (** to one replica *)
  | Broadcast_request of int  (** txn id: resend to all replicas *)
  | Complete of { txn_id : int; result : string }

val create : Config.t -> id:int -> t

val id : t -> int

val submit : t -> txn_id:int -> action list
(** Track a new request; the caller transports the request body itself
    (the cores are payload-agnostic), so the action names only the
    target. *)

val handle_reply : t -> Message.t -> action list
(** Count one reply towards the [f+1] quorum; adopts a higher committing
    view (and its leader) when one is seen. *)

val handle_timeout : t -> txn_id:int -> action list
(** One retransmission attempt: bumps the request's attempt counter and
    (while still outstanding) asks for a broadcast. *)

val leader : t -> int
(** The replica this client currently sends fresh requests to. *)

val attempts : t -> txn_id:int -> int
(** Retransmissions so far for an outstanding request; 0 when fresh or
    unknown. *)

val next_timeout : t -> txn_id:int -> base:int -> int
(** Caller-visible exponential-backoff deadline: [base] time units
    doubled per recorded attempt, capped at [16 * base]. *)

val outstanding : t -> int

type t = {
  config : Config.t;
  id : int;
  mutable view : int;
  mutable next_seq : int;
  mutable history : string; (* rolling digest over ordered batches *)
  mutable last_spec : int; (* last speculatively executed seq *)
  mutable last_exec_ack : int;
  mutable committed_upto : int;
  buffered : (int, Message.batch * string) Hashtbl.t; (* seq -> batch, history claim *)
  histories : (int, string) Hashtbl.t; (* seq -> our history after executing seq *)
  ordered_log : (int, Message.batch) Hashtbl.t;
      (* seq -> batch we ordered; kept until the checkpoint so fill-hole
         requests can be answered *)
  mutable hole_requested_upto : int; (* rate-limit duplicate fill-hole asks *)
  executed_batches : (int, Message.batch) Hashtbl.t;
  pending_certs : (int, Message.t list) Hashtbl.t; (* seq -> commit certs awaiting execution *)
  checkpoints : (int * string) Quorum.t;
  mutable equivocations : int;
      (* conflicting order-requests observed for an already-ordered slot:
         evidence of an equivocating primary (counted, then dropped) *)
}

let create config ~id =
  {
    config;
    id;
    view = 0;
    next_seq = 1;
    history = Rdb_crypto.Sha256.digest "zyzzyva-genesis";
    last_spec = 0;
    last_exec_ack = 0;
    committed_upto = 0;
    buffered = Hashtbl.create 64;
    histories = Hashtbl.create 256;
    ordered_log = Hashtbl.create 256;
    hole_requested_upto = 0;
    executed_batches = Hashtbl.create 64;
    pending_certs = Hashtbl.create 16;
    checkpoints = Quorum.create ();
    equivocations = 0;
  }

let id t = t.id
let is_primary t = Config.primary_of_view t.config t.view = t.id
let history t = t.history
let last_spec_executed t = t.last_spec
let committed_upto t = t.committed_upto
let equivocations_detected t = t.equivocations

let extend_history t digest = Rdb_crypto.Sha256.digest (t.history ^ digest)

(* Speculative execution: drain the buffer in sequence order, extending the
   history chain and handing batches to the execution layer.

   Before speculating on a batch the replica checks the primary's history
   claim: the order-request's [history] must equal H(h_{n-1} || d_n) over
   the replica's own chain (Zyzzyva §4.1 step 2).  An equivocating primary
   cannot satisfy both branches of a split — whichever copy carries a
   digest the claim does not chain over is a proof of misbehavior, dropped
   here without executing, so a replica on the losing branch wedges at the
   fork instead of diverging; fill-hole retransmission repairs the gap once
   an honest copy is available. *)
let drain t =
  let actions = ref [] in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.buffered (t.last_spec + 1) with
    | Some (batch, claimed) ->
      Hashtbl.remove t.buffered (t.last_spec + 1);
      let expected = extend_history t batch.Message.digest in
      if not (String.equal claimed expected) then begin
        t.equivocations <- t.equivocations + 1;
        continue := false
      end
      else begin
        t.history <- expected;
        t.last_spec <- batch.Message.seq;
        Hashtbl.replace t.histories batch.Message.seq t.history;
        Hashtbl.replace t.executed_batches batch.Message.seq batch;
        Hashtbl.replace t.ordered_log batch.Message.seq batch;
        actions := Action.Execute batch :: !actions
      end
    | None -> continue := false
  done;
  List.rev !actions

let order t (batch : Message.batch) ~claim =
  Hashtbl.replace t.buffered batch.Message.seq (batch, claim);
  drain t

let propose t ~reqs ~digest ~wire_bytes =
  if not (is_primary t) then (None, [])
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let batch = { Message.view = t.view; seq; digest; reqs; wire_bytes } in
    let claimed = Rdb_crypto.Sha256.digest (t.history ^ digest) in
    let actions = order t batch ~claim:claimed in
    ( Some batch,
      Action.Broadcast
        (Message.Order_request { view = t.view; seq; batch; history = claimed; from = t.id })
      :: actions )
  end

let ack_commit_cert t ~seq ~client =
  [ Action.Send_client (client, Message.Local_commit { view = t.view; seq; client; from = t.id }) ]

let handle_message t (msg : Message.t) =
  match msg with
  | Message.Order_request { view; seq; batch; history; from } ->
    if view <> t.view || from <> Config.primary_of_view t.config view then []
    else if seq <= t.last_spec || Hashtbl.mem t.buffered seq then begin
      (* The slot is already ordered; a different digest for it is
         equivocation evidence against the primary.  The conflicting copy
         is dropped either way — the history chain diverges at the first
         disagreement, so the client can never collect matching replies
         across the two branches. *)
      let ordered_digest =
        match Hashtbl.find_opt t.buffered seq with
        | Some (b, _) -> Some b.Message.digest
        | None -> (
          match Hashtbl.find_opt t.ordered_log seq with
          | Some b -> Some b.Message.digest
          | None -> None)
      in
      (match ordered_digest with
      | Some d when not (String.equal d batch.Message.digest) ->
        t.equivocations <- t.equivocations + 1
      | _ -> ());
      []
    end
    else begin
      let executed = order t batch ~claim:history in
      (* A gap means earlier Order-requests were lost: ask the primary to
         fill the hole (Zyzzyva's fill-hole sub-protocol), once per gap. *)
      let gap_end = seq - 1 in
      if t.last_spec < gap_end && t.hole_requested_upto < gap_end then begin
        t.hole_requested_upto <- gap_end;
        Action.Send
          ( Config.primary_of_view t.config t.view,
            Message.Fill_hole
              { view = t.view; from_seq = t.last_spec + 1; to_seq = gap_end; from = t.id } )
        :: executed
      end
      else executed
    end
  | Message.Fill_hole { view; from_seq; to_seq; from } ->
    if view <> t.view || not (is_primary t) then []
    else
      (* Resend what we still have; anything older than the last stable
         checkpoint is gone, and the requester will catch up from the
         checkpoint instead. *)
      List.filter_map
        (fun seq ->
          match Hashtbl.find_opt t.ordered_log seq with
          | Some batch ->
            let history = Option.value ~default:"" (Hashtbl.find_opt t.histories seq) in
            Some (Action.Send (from, Message.Order_request { view; seq; batch; history; from = t.id }))
          | None -> None)
        (List.init (max 0 (to_seq - from_seq + 1)) (fun i -> from_seq + i))
  | Message.Commit_cert { seq; digest; client; _ } ->
    (match Hashtbl.find_opt t.histories seq with
    | Some h ->
      (* Executed already: the certificate's history must match ours. *)
      if not (String.equal h digest) then []
      else begin
        t.committed_upto <- max t.committed_upto seq;
        ack_commit_cert t ~seq ~client
      end
    | None ->
      if seq <= t.last_spec then begin
        (* Executed but the history entry was garbage-collected by a stable
           checkpoint — which itself proves 2f+1 replicas agreed on the
           state, so acknowledging is safe. *)
        t.committed_upto <- max t.committed_upto seq;
        ack_commit_cert t ~seq ~client
      end
      else begin
        (* Not executed yet: remember and ack when execution catches up. *)
        let existing = Option.value ~default:[] (Hashtbl.find_opt t.pending_certs seq) in
        Hashtbl.replace t.pending_certs seq (msg :: existing);
        []
      end)
  | Message.Checkpoint { seq; state_digest; from } ->
    let n = Quorum.add t.checkpoints (seq, state_digest) from in
    if n = Config.commit_quorum t.config then begin
      Quorum.filter_keys t.checkpoints (fun (s, _) -> s > seq);
      let stale =
        Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.histories []
      in
      List.iter (Hashtbl.remove t.histories) stale;
      let stale_log =
        Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) t.ordered_log []
      in
      List.iter (Hashtbl.remove t.ordered_log) stale_log;
      [ Action.Stable_checkpoint seq ]
    end
    else []
  | _ -> []

let handle_executed t ~seq ~state_digest ~result =
  if seq <= t.last_exec_ack then []
  else if seq <> t.last_exec_ack + 1 then
    invalid_arg "Zyzzyva_replica.handle_executed: out of order"
  else begin
    t.last_exec_ack <- seq;
    match Hashtbl.find_opt t.executed_batches seq with
    | None -> []
    | Some batch ->
      Hashtbl.remove t.executed_batches seq;
      let h = Option.value ~default:t.history (Hashtbl.find_opt t.histories seq) in
      ignore result;
      let replies =
        List.map
          (fun (r : Message.request_ref) ->
            Action.Send_client
              ( r.Message.client,
                Message.Spec_reply
                  {
                    view = batch.Message.view;
                    seq;
                    txn_id = r.Message.txn_id;
                    client = r.Message.client;
                    from = t.id;
                    history = h;
                  } ))
          batch.Message.reqs
      in
      let cert_acks =
        match Hashtbl.find_opt t.pending_certs seq with
        | None -> []
        | Some certs ->
          Hashtbl.remove t.pending_certs seq;
          List.concat_map
            (function
              | Message.Commit_cert { seq; client; _ } ->
                t.committed_upto <- max t.committed_upto seq;
                ack_commit_cert t ~seq ~client
              | _ -> [])
            certs
      in
      let checkpoint =
        if seq mod t.config.Config.checkpoint_interval = 0 then
          [ Action.Broadcast (Message.Checkpoint { seq; state_digest; from = t.id }) ]
        else []
      in
      replies @ cert_acks @ checkpoint
  end

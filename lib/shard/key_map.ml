(* Deterministic key -> shard ownership.  See the mli. *)

(* splitmix64's finalizer: a full-avalanche 64-bit mix, so consecutive
   YCSB record ids land on effectively independent shards. *)
let mix64 (k : int64) : int64 =
  let open Int64 in
  let z = mul (logxor k (shift_right_logical k 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let shard_of_key ~shards key =
  if shards < 1 then invalid_arg "Key_map: shards must be >= 1";
  if shards = 1 then 0
  else
    let h = mix64 (Int64.of_int key) in
    (* Clear the sign bit before reducing so the result is non-negative. *)
    Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))

let owned ~shards ~shard ~records =
  let c = ref 0 in
  for k = 0 to records - 1 do
    if shard_of_key ~shards k = shard then incr c
  done;
  !c

(* Pure 2PC-over-BFT engine.  See the mli. *)

type decision = Commit | Abort

type stats = {
  started : int;
  committed : int;
  aborted : int;
  lock_conflicts : int;
  in_flight : int;
}

type txn = {
  coordinator : int;
  participant : int;
  keys : (int * int) array;
  mutable held : (int * int) list;  (** locks this txn acquired *)
  mutable verdict : decision;
}

type t = {
  locks : (int * int, int) Hashtbl.t;  (** (shard, record) -> holder txn id *)
  txns : (int, txn) Hashtbl.t;
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
  mutable lock_conflicts : int;
}

let create () =
  {
    locks = Hashtbl.create 256;
    txns = Hashtbl.create 64;
    started = 0;
    committed = 0;
    aborted = 0;
    lock_conflicts = 0;
  }

let stats t =
  {
    started = t.started;
    committed = t.committed;
    aborted = t.aborted;
    lock_conflicts = t.lock_conflicts;
    in_flight = Hashtbl.length t.txns;
  }

let find t id =
  match Hashtbl.find_opt t.txns id with
  | Some tx -> tx
  | None -> invalid_arg (Printf.sprintf "Two_pc: unknown transaction %d" id)

(* All-or-nothing acquisition of [tx]'s keys on [side]: if any is held by
   another transaction nothing is taken, the conflict is counted and the
   verdict drops to Abort. *)
let acquire t tx ~id ~side =
  let mine = List.filter (fun (s, _) -> s = side) (Array.to_list tx.keys) in
  let free (k : int * int) =
    match Hashtbl.find_opt t.locks k with None -> true | Some holder -> holder = id
  in
  if List.for_all free mine then
    List.iter
      (fun k ->
        if not (Hashtbl.mem t.locks k) then begin
          Hashtbl.replace t.locks k id;
          tx.held <- k :: tx.held
        end)
      mine
  else begin
    t.lock_conflicts <- t.lock_conflicts + 1;
    tx.verdict <- Abort
  end

let start t ~id ~coordinator ~participant ~keys =
  if Hashtbl.mem t.txns id then
    invalid_arg (Printf.sprintf "Two_pc: duplicate transaction %d" id);
  if coordinator = participant then
    invalid_arg "Two_pc: coordinator and participant must differ";
  Array.iter
    (fun (s, _) ->
      if s <> coordinator && s <> participant then
        invalid_arg "Two_pc: key on a shard outside the transaction's footprint")
    keys;
  let tx = { coordinator; participant; keys; held = []; verdict = Commit } in
  Hashtbl.replace t.txns id tx;
  t.started <- t.started + 1;
  acquire t tx ~id ~side:coordinator

let vote t ~id =
  let tx = find t id in
  if tx.verdict = Commit then acquire t tx ~id ~side:tx.participant;
  tx.verdict

let decision_of t ~id = (find t id).verdict

let decide t ~id =
  let tx = find t id in
  List.iter
    (fun k ->
      match Hashtbl.find_opt t.locks k with
      | Some holder when holder = id -> Hashtbl.remove t.locks k
      | _ -> ())
    tx.held;
  Hashtbl.remove t.txns id;
  (match tx.verdict with
  | Commit -> t.committed <- t.committed + 1
  | Abort -> t.aborted <- t.aborted + 1);
  tx.verdict

let locked_by t ~shard ~record = Hashtbl.find_opt t.locks (shard, record)

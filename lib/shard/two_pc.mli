(** The cross-shard commit engine: two-phase commit over BFT groups.

    A cross-shard transaction touches records on two consensus groups —
    a {e coordinator} (the client's home shard) and a {e participant}.
    Neither group can simply execute it: each orders its own sequence,
    and a transaction interleaved differently on the two would break
    serializability.  The classic answer is 2PC {e layered over}
    consensus: every 2PC step (prepare, vote, decision) is itself an
    ordered operation of a BFT group, so all replicas of every shard
    make the identical lock/commit/abort transition at the identical
    point of their sequence — the coordinator of the textbook protocol
    is replaced by a replicated group, removing the classic single
    point of failure.

    This module is the {e pure} protocol engine: lock table, per-
    transaction state machine, votes and decisions, with no clock and no
    I/O.  The DES wiring — submitting each step into its group's
    ordering pipeline, paying inter-region hops between steps — lives in
    {!Deployment}.  Keeping the engine pure makes the safety argument
    testable by itself: the qcheck suite drives it through adversarial
    schedules directly.

    Locking discipline (conservative strict 2PL): the coordinator locks
    its side's footprint when the prepare is ordered; the participant
    attempts its side when the vote is ordered; any failed acquisition
    votes Abort.  Locks are held until the decision is ordered on the
    owning group, then released.  Two conflicting cross-shard
    transactions therefore either serialize or abort — they never
    interleave partial writes. *)

type decision = Commit | Abort

type stats = {
  started : int;  (** cross-shard transactions begun *)
  committed : int;
  aborted : int;
  lock_conflicts : int;  (** failed lock acquisitions (each aborts its txn) *)
  in_flight : int;  (** started but not yet decided *)
}

type t

val create : unit -> t

val stats : t -> stats

val start :
  t -> id:int -> coordinator:int -> participant:int -> keys:(int * int) array -> unit
(** Register transaction [id] and attempt its coordinator-side locks.
    [keys] are [(shard, record)] pairs; entries whose shard is neither
    [coordinator] nor [participant] are rejected with
    [Invalid_argument], as is a duplicate [id]. *)

val vote : t -> id:int -> decision
(** The participant's lock attempt, combined with the coordinator's
    earlier one: [Commit] iff both sides acquired every lock. *)

val decision_of : t -> id:int -> decision
(** The decision as currently known (before [vote], the coordinator-side
    verdict). *)

val decide : t -> id:int -> decision
(** Order the decision: release every lock held by [id], count the
    outcome, and forget the transaction.  Idempotent per [id] is {e not}
    promised — call once; unknown ids raise [Invalid_argument]. *)

val locked_by : t -> shard:int -> record:int -> int option
(** The transaction currently holding [(shard, record)], if any — for
    tests asserting mutual exclusion. *)

(** The seam a consensus group plugs into the sharded deployment through.

    {!Deployment} runs S consensus groups side by side and owns three
    things a standalone cluster owns itself: the clock (groups advance in
    conservative lockstep epochs), the closed client loop (a completed
    transaction's replacement may involve another shard), and the
    measurement window.  [GROUP] is exactly that contract — create,
    drive, observe — and nothing else: any ordering engine that can hand
    over its loop and its clock can sit behind a shard.

    {!Cluster} is the production implementation, backed by the full
    simulated deployment of {!Rdb_core.Cluster} — an {e unmodified}
    consensus group: PBFT, Zyzzyva, HotStuff or multi-primary per
    {!Rdb_core.Params.Consensus.protocol}, with the whole
    batching/execution pipeline, nemesis interposition and durability
    machinery intact.  Tests substitute lighter implementations to drive
    the 2PC engine through adversarial schedules quickly. *)

module type GROUP = sig
  type t

  type snapshot

  val create : Rdb_core.Params.t -> t
  (** Build the group from its (already per-shard) parameter set. *)

  val params : t -> Rdb_core.Params.t

  val sim : t -> Rdb_des.Sim.t
  (** The group's clock; the deployment advances it in lockstep epochs
      and schedules cross-shard arrivals into it. *)

  val start : t -> unit
  (** Seed the group's client population. *)

  val set_completion_sink : t -> (int array -> unit) -> unit
  (** Hand the closed loop to the deployment: completed transaction ids
      flow to the sink instead of being resubmitted locally. *)

  val submit_fresh : t -> int -> unit
  (** Submit [k] new transactions through the normal client path. *)

  val next_txn : t -> int
  (** The id the next fresh transaction will get (ids are sequential). *)

  val set_measuring : t -> bool -> unit

  val snapshot : t -> snapshot

  val metrics_between : t -> snapshot -> snapshot -> Rdb_core.Metrics.t

  val check_safety : t -> (unit, string) result

  val close : t -> unit
end

module Cluster : GROUP with type t = Rdb_core.Cluster.t
(** The production group: one full simulated {!Rdb_core.Cluster} per
    shard. *)

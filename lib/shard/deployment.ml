(* The sharded co-simulation.  See the mli.

   Clock discipline: every group owns a private DES clock; the deployment
   advances all of them in fixed lockstep epochs no longer than the
   minimum inter-shard propagation delay.  A cross-shard message sent at
   [ts] arrives at [ts + hop] with [hop >= epoch], so by the time the
   target group could need the event, the epoch in which it was sent has
   already been fully simulated on the sender — the classic conservative
   (Chandy-Misra-style) lookahead argument, here with a static window.
   Scheduling clamps the arrival to the target clock's current time, which
   the same argument shows is a no-op except at the very first boundary.

   Loop ownership: every group's closed client loop is redirected here
   through its completion sink.  Plain completions resubmit into their
   home group at once (with one shard this path is bit-identical to the
   classic cluster, which is the regression test's anchor).  A completion
   chosen to be cross-shard instead walks the {!Two_pc} chain — each step
   a normal ordered transaction of the owning group, tracked by predicted
   transaction id:

     prepare(home) --hop--> vote(participant) --hop--> decide(home)
       --hop--> decide(participant) --hop--> replacement(home)

   so a distributed transaction costs four ordered rounds and the
   geography between the two groups. *)

module Sim = Rdb_des.Sim
module Rng = Rdb_des.Rng
module Stats = Rdb_des.Stats
module Params = Rdb_core.Params
module Metrics = Rdb_core.Metrics
module Topology = Rdb_net.Topology
module Open_loop = Rdb_workload.Open_loop
module Stage_name = Rdb_obs.Stage_name
module Bottleneck = Rdb_obs.Bottleneck

type result = {
  shards : int;
  aggregate : Metrics.t;
  per_shard : Metrics.t array;
  cross : Two_pc.stats;
  safety : (unit, string) Stdlib.result;
  exhausted : bool;
}

module Make (G : Group.GROUP) = struct
  (* A 2PC helper round in flight: (shard, predicted txn id) -> what its
     completion means for the owning cross-shard transaction. *)
  type stage =
    | Prepare of int  (** completing on the coordinator *)
    | Vote of int  (** completing on the participant *)
    | Decide_coord of int
    | Decide_part of int

  type cross = { home : int; participant : int }

  type t = {
    p : Params.t;
    s : int;
    topo : Topology.t;
    epoch : Sim.time;
    pop : Open_loop.t;
    groups : G.t array;
    twopc : Two_pc.t;
    rng : Rng.t;  (** routing draws (cross-or-local) *)
    key_rng : Rng.t;  (** footprint records and participant ownership *)
    pending : (int * int, stage) Hashtbl.t;
    crosses : (int, cross) Hashtbl.t;
    mutable next_cross : int;
    mutable horizon : Sim.time;  (** lockstep boundary reached so far *)
    mutable events_left : int;  (** deployment-wide DES event budget *)
    mutable exhausted : bool;
    mutable measuring : bool;
    mutable logical : int;  (** logical completions in the measured window *)
  }

  (* Per-shard parameter derivation.  Shard 0 of a one-shard deployment
     gets the parameters back unchanged — the bit-identity anchor. *)
  let shard_params p ~shard ~multi ~clients =
    let q = Params.with_clients clients p in
    let q =
      if shard = 0 then q
      else Params.with_seed (Int64.add p.Params.seed (Int64.of_int (shard * 0x9E3779B9))) q
    in
    match p.Params.data_dir with
    | Some d when multi ->
      Params.with_data_dir (Some (Filename.concat d (Printf.sprintf "shard-%d" shard))) q
    | _ -> q

  let hop t ~src ~dst = Stdlib.max (Topology.shard_latency t.topo src dst) t.epoch

  (* Schedule [f] on [dst]'s clock at [at], clamped to its current time
     (see the lookahead argument in the header). *)
  let send t ~dst ~at f =
    let sim = G.sim t.groups.(dst) in
    ignore (Sim.schedule_at sim ~at:(Stdlib.max at (Sim.now sim)) f)

  (* The records a cross-shard transaction locks, a few per side, drawn
     from each group's local keyspace. *)
  let cross_keys t ~home ~participant =
    let records = t.p.Params.exec_records in
    let nside = Stdlib.max 1 (Stdlib.min 4 (t.p.Params.ops_per_txn / 2)) in
    Array.init (2 * nside) (fun i ->
        let shard = if i < nside then home else participant in
        (shard, Rng.int t.key_rng records))

  (* The participant is the shard owning a drawn key ({!Key_map}); skew
     in the key distribution therefore skews participant choice, exactly
     like a real hash-partitioned store. *)
  let pick_participant t ~home =
    let records = t.p.Params.exec_records in
    let rec go attempts r =
      let q = Key_map.shard_of_key ~shards:t.s r in
      if q <> home then q
      else if attempts >= 64 then Open_loop.pick_participant t.pop t.rng ~home
      else go (attempts + 1) ((r + 1) mod records)
    in
    go 0 (Rng.int t.key_rng records)

  let start_cross t ~home =
    let cid = t.next_cross in
    t.next_cross <- cid + 1;
    let participant = pick_participant t ~home in
    Two_pc.start t.twopc ~id:cid ~coordinator:home ~participant
      ~keys:(cross_keys t ~home ~participant);
    Hashtbl.replace t.crosses cid { home; participant };
    let g = t.groups.(home) in
    Hashtbl.replace t.pending ((home, G.next_txn g)) (Prepare cid);
    G.submit_fresh g 1

  (* [k] population slots of [shard] freed up: each replacement either
     resubmits locally or begins a cross-shard transaction. *)
  let route_replacements t ~shard k =
    let local = ref 0 in
    for _ = 1 to k do
      if Open_loop.is_cross t.pop t.rng then start_cross t ~home:shard else incr local
    done;
    if !local > 0 then G.submit_fresh t.groups.(shard) !local

  let order_round t ~dst stage =
    let g = t.groups.(dst) in
    Hashtbl.replace t.pending ((dst, G.next_txn g)) stage;
    G.submit_fresh g 1

  (* A helper round completed on [shard]: advance its cross-shard
     transaction to the next round, paying the inter-shard hop. *)
  let advance t ~shard stage =
    let now = Sim.now (G.sim t.groups.(shard)) in
    match stage with
    | Prepare cid ->
      let cx = Hashtbl.find t.crosses cid in
      send t ~dst:cx.participant
        ~at:(now + hop t ~src:shard ~dst:cx.participant)
        (fun () ->
          ignore (Two_pc.vote t.twopc ~id:cid);
          order_round t ~dst:cx.participant (Vote cid))
    | Vote cid ->
      let cx = Hashtbl.find t.crosses cid in
      send t ~dst:cx.home
        ~at:(now + hop t ~src:shard ~dst:cx.home)
        (fun () -> order_round t ~dst:cx.home (Decide_coord cid))
    | Decide_coord cid ->
      let cx = Hashtbl.find t.crosses cid in
      send t ~dst:cx.participant
        ~at:(now + hop t ~src:shard ~dst:cx.participant)
        (fun () -> order_round t ~dst:cx.participant (Decide_part cid))
    | Decide_part cid ->
      let cx = Hashtbl.find t.crosses cid in
      ignore (Two_pc.decide t.twopc ~id:cid);
      Hashtbl.remove t.crosses cid;
      if t.measuring then t.logical <- t.logical + 1;
      send t ~dst:cx.home
        ~at:(now + hop t ~src:shard ~dst:cx.home)
        (fun () -> route_replacements t ~shard:cx.home 1)

  let on_complete t ~shard fresh =
    let plain = ref 0 in
    Array.iter
      (fun id ->
        match Hashtbl.find_opt t.pending (shard, id) with
        | Some stage ->
          Hashtbl.remove t.pending (shard, id);
          advance t ~shard stage
        | None -> incr plain)
      fresh;
    if !plain > 0 then begin
      if t.measuring then t.logical <- t.logical + !plain;
      route_replacements t ~shard !plain
    end

  let create p =
    Params.validate p;
    let s = p.Params.shards in
    let topo =
      match p.Params.regions with Some topo -> topo | None -> Topology.flat ~shards:s
    in
    let epoch =
      let m = Topology.min_inter_shard_latency topo in
      if m > 0 then m else Sim.ms 1.0
    in
    let pop =
      Open_loop.create ~population:p.Params.clients ~shards:s
        ~cross_fraction:p.Params.cross_shard_fraction ()
    in
    let per = Open_loop.per_shard pop in
    let groups =
      Array.init s (fun i -> G.create (shard_params p ~shard:i ~multi:(s > 1) ~clients:per.(i)))
    in
    let t =
      {
        p;
        s;
        topo;
        epoch;
        pop;
        groups;
        twopc = Two_pc.create ();
        rng = Rng.create (Int64.logxor p.Params.seed 0x2FC0FFEEL);
        key_rng = Rng.create (Int64.logxor p.Params.seed 0x5EEDL);
        pending = Hashtbl.create 256;
        crosses = Hashtbl.create 256;
        next_cross = 0;
        horizon = 0;
        events_left = max_int;
        exhausted = false;
        measuring = false;
        logical = 0;
      }
    in
    Array.iteri (fun i g -> G.set_completion_sink g (fun fresh -> on_complete t ~shard:i fresh)) groups;
    t

  (* Advance every group to [target] in lockstep epochs.  With one shard
     there is nothing to synchronize: a single uninterrupted run keeps
     the event sequence literally identical to the classic cluster. *)
  let step t sim ~until =
    if not t.exhausted then
      match Sim.run_bounded ~until ~max_events:t.events_left sim with
      | `Completed n -> t.events_left <- t.events_left - n
      | `Exhausted -> t.exhausted <- true

  let run_to t target =
    if t.s = 1 then step t (G.sim t.groups.(0)) ~until:target
    else begin
      let b = ref t.horizon in
      while !b < target && not t.exhausted do
        let b' = Stdlib.min target (!b + t.epoch) in
        Array.iter (fun g -> step t (G.sim g) ~until:b') t.groups;
        b := b'
      done
    end;
    t.horizon <- target

  let merge_faults per =
    Array.fold_left
      (fun acc (m : Metrics.t) ->
        let f = m.Metrics.faults in
        {
          Metrics.msgs_dropped = acc.Metrics.msgs_dropped + f.Metrics.msgs_dropped;
          msgs_duplicated = acc.Metrics.msgs_duplicated + f.Metrics.msgs_duplicated;
          retransmissions = acc.Metrics.retransmissions + f.Metrics.retransmissions;
          view_changes = acc.Metrics.view_changes + f.Metrics.view_changes;
          time_to_recovery_s =
            (match acc.Metrics.time_to_recovery_s with
            | Some _ as r -> r
            | None -> f.Metrics.time_to_recovery_s);
          state_transfers = acc.Metrics.state_transfers + f.Metrics.state_transfers;
          time_to_catch_up_s =
            (match acc.Metrics.time_to_catch_up_s with
            | Some _ as r -> r
            | None -> f.Metrics.time_to_catch_up_s);
          rejected_forgeries = acc.Metrics.rejected_forgeries + f.Metrics.rejected_forgeries;
          equivocations_detected =
            acc.Metrics.equivocations_detected + f.Metrics.equivocations_detected;
          vc_spam_suppressed = acc.Metrics.vc_spam_suppressed + f.Metrics.vc_spam_suppressed;
        })
      Metrics.no_faults per

  (* Deployment-wide metrics: logical transaction counts from the
     deployment's own window counter, per-replica reports re-indexed and
     stage names shard-qualified ("s2/worker"), everything else summed. *)
  let aggregate_metrics t per =
    let window = Sim.to_seconds t.p.Params.measure in
    let sum f = Array.fold_left (fun a m -> a + f m) 0 per in
    let latency = Stats.create () in
    Array.iter
      (fun (m : Metrics.t) -> Stats.iter_samples m.Metrics.latency (Stats.add latency))
      per;
    let replicas =
      List.concat
        (Array.to_list
           (Array.mapi
              (fun sh (m : Metrics.t) ->
                List.map
                  (fun (r : Metrics.replica_report) ->
                    {
                      r with
                      Metrics.replica = (sh * t.p.Params.n) + r.Metrics.replica;
                      stages =
                        List.map
                          (fun (st : Metrics.stage_saturation) ->
                            { st with Metrics.stage = Stage_name.qualify ~shard:sh st.Metrics.stage })
                          r.Metrics.stages;
                    })
                  m.Metrics.replicas)
              per))
    in
    {
      Metrics.throughput_tps =
        (if window > 0.0 then float_of_int t.logical /. window else 0.0);
      ops_per_second =
        (if window > 0.0 then float_of_int (t.logical * t.p.Params.ops_per_txn) /. window
         else 0.0);
      latency;
      completed_txns = t.logical;
      fast_path_txns = sum (fun m -> m.Metrics.fast_path_txns);
      cert_path_txns = sum (fun m -> m.Metrics.cert_path_txns);
      replicas;
      messages_sent = sum (fun m -> m.Metrics.messages_sent);
      bytes_sent = sum (fun m -> m.Metrics.bytes_sent);
      ledger_blocks = sum (fun m -> m.Metrics.ledger_blocks);
      faults = merge_faults per;
      breakdown = None;
      spans = [];
    }

  let run ?budget_events p =
    let t = create p in
    (match budget_events with Some b -> t.events_left <- b | None -> ());
    Array.iter G.start t.groups;
    run_to t p.Params.warmup;
    let s0 = Array.map G.snapshot t.groups in
    t.measuring <- true;
    Array.iter (fun g -> G.set_measuring g true) t.groups;
    run_to t (p.Params.warmup + p.Params.measure);
    t.measuring <- false;
    Array.iter (fun g -> G.set_measuring g false) t.groups;
    let s1 = Array.map G.snapshot t.groups in
    let per_shard = Array.init t.s (fun i -> G.metrics_between t.groups.(i) s0.(i) s1.(i)) in
    let safety =
      Array.fold_left
        (fun acc g -> match acc with Error _ -> acc | Ok () -> G.check_safety g)
        (Ok ()) t.groups
    in
    let aggregate = if t.s = 1 then per_shard.(0) else aggregate_metrics t per_shard in
    Array.iter G.close t.groups;
    {
      shards = t.s;
      aggregate;
      per_shard;
      cross = Two_pc.stats t.twopc;
      safety;
      exhausted = t.exhausted;
    }
end

include Make (Group.Cluster)

let pp_summary ppf (r : result) =
  Format.fprintf ppf "@[<v>shards: %d@," r.shards;
  if r.shards > 1 then
    Array.iteri
      (fun i (m : Metrics.t) ->
        Format.fprintf ppf "  shard %d: %8.1fK txn/s ordered (%d txns)@," i
          (m.Metrics.throughput_tps /. 1000.0)
          m.Metrics.completed_txns)
      r.per_shard;
  Format.fprintf ppf "aggregate: %.1fK logical txn/s (%d txns)@,"
    (r.aggregate.Metrics.throughput_tps /. 1000.0)
    r.aggregate.Metrics.completed_txns;
  let c = r.cross in
  Format.fprintf ppf "cross-shard: %d started, %d committed, %d aborted (%d lock conflicts)@,"
    c.Two_pc.started c.Two_pc.committed c.Two_pc.aborted c.Two_pc.lock_conflicts;
  (* Bottleneck attribution over shard-qualified stage names: the verdict
     names the shard whose pipeline saturated. *)
  let stages =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun sh (m : Metrics.t) ->
              match List.find_opt (fun r -> r.Metrics.is_primary) m.Metrics.replicas with
              | None -> []
              | Some r ->
                List.map
                  (fun (st : Metrics.stage_saturation) ->
                    (Stage_name.qualify ~shard:sh st.Metrics.stage, st.Metrics.percent))
                  r.Metrics.stages)
            r.per_shard))
  in
  (match Bottleneck.saturated (Bottleneck.analyze ~window_s:1.0 stages) with
  | Some fam -> Format.fprintf ppf "bottleneck: %s@," fam
  | None -> ());
  match r.safety with
  | Ok () -> Format.fprintf ppf "safety: ok@]"
  | Error e -> Format.fprintf ppf "safety: VIOLATION: %s@]" e

(** The deterministic key-to-shard map over the YCSB keyspace.

    Every replica of every shard must agree on which shard owns a record
    without coordination, so ownership is a pure function of the key: a
    64-bit finalizer hash ({e splitmix64}) of the record id, reduced
    modulo the shard count.  Hashing (rather than range partitioning)
    keeps a Zipf-skewed keyspace balanced: the hot head keys scatter over
    all shards instead of piling onto shard 0.

    One shard degenerates to the identity ([shard_of_key ~shards:1 _ = 0])
    — the classic unsharded deployment. *)

val shard_of_key : shards:int -> int -> int
(** The shard owning record [key]; in [\[0, shards)].  Total and
    deterministic: any int (including negatives) maps somewhere, and the
    same key always maps to the same shard.  Raises [Invalid_argument]
    when [shards < 1]. *)

val owned : shards:int -> shard:int -> records:int -> int
(** How many of the records in [\[0, records)] the shard owns — the
    balance check the unit tests assert on. *)

(** The sharded scale-out deployment: S consensus groups, one clock
    discipline, one client population, one cross-shard commit protocol.

    {!run} builds one group per shard from a single {!Rdb_core.Params.t}
    ([Params.Topology.shards] groups; the client population is split over
    them per {!Rdb_workload.Open_loop}), advances all groups in
    conservative lockstep epochs bounded by the minimum inter-shard
    propagation delay of the region topology ([Params.Topology.regions],
    or a flat single-region default), and owns the closed client loop:

    - a {e single-shard} replacement resubmits into its home group
      immediately — with one shard this is {e bit-identical} to the
      classic {!Rdb_core.Cluster.run} (same events, same order, same
      metrics);
    - a {e cross-shard} replacement (probability
      [Params.Workload.cross_shard_fraction], participant chosen by
      {!Key_map} ownership) runs the {!Two_pc} protocol, every step of
      which is ordered by the owning group's consensus: prepare on the
      coordinator, lock-and-vote on the participant, then the decision on
      both — four ordered rounds and three inter-region hops per
      distributed transaction.

    Reported throughput counts {e logical} transactions (a distributed
    transaction counts once, not once per helper round), so scale-out
    and the cost of distribution are visible side by side. *)

type result = {
  shards : int;
  aggregate : Rdb_core.Metrics.t;
      (** deployment-wide metrics over the measured window; logical
          transaction counts (with one shard, exactly the single group's
          metrics) *)
  per_shard : Rdb_core.Metrics.t array;
      (** each group's own window metrics (helper rounds included —
          these are what the group's pipeline really processed) *)
  cross : Two_pc.stats;  (** cross-shard commit accounting, whole run *)
  safety : (unit, string) Stdlib.result;
      (** cross-replica agreement, checked on every group *)
  exhausted : bool;
      (** the deployment-wide event budget ran out before the measurement
          window closed (the fault campaign's wedge cutoff); always
          [false] without [budget_events] *)
}

module Make (G : Group.GROUP) : sig
  val run : ?budget_events:int -> Rdb_core.Params.t -> result
  (** Validate, build, warm up, measure, tear down.  [budget_events]
      bounds the total DES events across all groups; on exhaustion the
      run stops where it is and reports [exhausted = true]. *)
end

val run : ?budget_events:int -> Rdb_core.Params.t -> result
(** The production deployment: one simulated {!Rdb_core.Cluster} per
    shard ({!Group.Cluster} behind {!Make}). *)

val pp_summary : Format.formatter -> result -> unit
(** Per-shard throughput, the aggregate, cross-shard commit stats and
    the saturated stage ({!Rdb_obs.Bottleneck} over shard-qualified
    stage names — ["s2/worker"], so the verdict names the shard). *)

(* The GROUP seam and its production implementation.  See the mli. *)

module type GROUP = sig
  type t
  type snapshot

  val create : Rdb_core.Params.t -> t
  val params : t -> Rdb_core.Params.t
  val sim : t -> Rdb_des.Sim.t
  val start : t -> unit
  val set_completion_sink : t -> (int array -> unit) -> unit
  val submit_fresh : t -> int -> unit
  val next_txn : t -> int
  val set_measuring : t -> bool -> unit
  val snapshot : t -> snapshot
  val metrics_between : t -> snapshot -> snapshot -> Rdb_core.Metrics.t
  val check_safety : t -> (unit, string) result
  val close : t -> unit
end

module Cluster : GROUP with type t = Rdb_core.Cluster.t = Rdb_core.Cluster

(* The public ledger operations dispatch through a first-class BACKEND
   module, so the consensus fabric (cluster.ml / local_runtime.ml) is
   written once against the interface and the storage medium — in-memory
   list or durable WAL + B-tree — is a construction-time choice. *)

module type BACKEND = sig
  type store

  val append : store -> Block.t -> unit
  val get : store -> int -> Block.t option
  val prune_below : store -> int -> int
  val iter_retained : store -> (Block.t -> unit) -> unit
  val length : store -> int
  val last : store -> Block.t
  val next_seq : store -> int
  val cumulative_digest : store -> string
  val install : store -> retained:Block.t list -> appended:int -> running:string -> unit
  val checkpoint : store -> seq:int -> state_digest:string -> unit
  val close : store -> unit
end

module Mem = struct
  type store = {
    (* Retained blocks in reverse order (newest first). *)
    mutable retained : Block.t list;
    mutable appended : int;
    mutable next_seq : int;
    mutable running : string; (* cumulative digest over all appended blocks *)
  }

  let create ~primary_id =
    let g = Block.genesis ~primary_id in
    { retained = [ g ]; appended = 1; next_seq = 1; running = Block.hash g }

  let append s b =
    s.retained <- b :: s.retained;
    s.appended <- s.appended + 1;
    s.next_seq <- s.next_seq + 1;
    s.running <- Rdb_crypto.Sha256.digest (s.running ^ Block.hash b)

  let get s seq = List.find_opt (fun b -> b.Block.seq = seq) s.retained

  let prune_below s seq =
    let keep, drop = List.partition (fun b -> b.Block.seq >= seq) s.retained in
    (* Never drop the newest block: [last] must stay meaningful. *)
    match keep with
    | [] -> 0
    | _ ->
      s.retained <- keep;
      List.length drop

  let iter_retained s f = List.iter f (List.rev s.retained)

  let length s = s.appended

  let last s =
    match s.retained with
    | b :: _ -> b
    | [] -> assert false (* genesis is never pruned without replacement *)

  let next_seq s = s.next_seq

  let cumulative_digest s = s.running

  let install s ~retained ~appended ~running =
    (match retained with
    | [] -> invalid_arg "Ledger: empty segment"
    | _ -> ());
    s.retained <- List.rev retained;
    s.appended <- appended;
    s.next_seq <- (last s).Block.seq + 1;
    s.running <- running

  let checkpoint _ ~seq:_ ~state_digest:_ = ()

  let close _ = ()
end

module Durable = struct
  type store = Block_store.t

  let append = Block_store.append
  let get = Block_store.get
  let prune_below = Block_store.prune_below
  let iter_retained = Block_store.iter_retained
  let length = Block_store.length
  let last = Block_store.last
  let next_seq = Block_store.next_seq
  let cumulative_digest = Block_store.cumulative_digest
  let install = Block_store.install
  let checkpoint = Block_store.checkpoint
  let close = Block_store.close
end

type t = Packed : (module BACKEND with type store = 's) * 's * bool -> t
(* The boolean marks the durable backend, for callers that budget the
   modelled persistence cost. *)

let create ~primary_id = Packed ((module Mem), Mem.create ~primary_id, false)

let open_durable ~dir ~primary_id =
  let genesis = Block.genesis ~primary_id in
  Packed ((module Durable), Block_store.open_dir ~dir ~genesis, true)

let is_durable (Packed (_, _, durable)) = durable

let next_seq (Packed ((module B), s, _)) = B.next_seq s

let last (Packed ((module B), s, _)) = B.last s

let append (Packed ((module B), s, _)) b =
  if b.Block.seq <> B.next_seq s then
    invalid_arg
      (Printf.sprintf "Ledger.append: expected seq %d, got %d" (B.next_seq s) b.Block.seq);
  B.append s b

let length (Packed ((module B), s, _)) = B.length s

let find (Packed ((module B), s, _)) seq = B.get s seq

let prune_below (Packed ((module B), s, _)) seq = B.prune_below s seq

let iter_retained (Packed ((module B), s, _)) f = B.iter_retained s f

let retained t =
  let acc = ref [] in
  iter_retained t (fun b -> acc := b :: !acc);
  List.rev !acc (* oldest first *)

let verify t ~check_certificate =
  let blocks = retained t in
  let rec walk prev = function
    | [] -> Ok ()
    | (b : Block.t) :: rest ->
      let seq_ok =
        match prev with
        | None -> true
        | Some (p : Block.t) -> b.seq = p.seq + 1
      in
      if not seq_ok then Error (Printf.sprintf "sequence gap before %d" b.seq)
      else begin
        let link_ok =
          match (b.link, prev) with
          | Block.Prev_hash h, Some p -> String.equal h (Block.hash p)
          | Block.Prev_hash _, None -> true (* chain head after pruning *)
          | Block.Certificate shares, _ ->
            check_certificate ~seq:b.seq ~digest:b.digest shares
        in
        if not link_ok then Error (Printf.sprintf "bad linkage at seq %d" b.seq)
        else walk (Some b) rest
      end
  in
  walk None blocks

let cumulative_digest (Packed ((module B), s, _)) = B.cumulative_digest s

let install (Packed ((module B), s, _)) ~blocks ~appended ~running =
  (* [blocks] ascending and contiguous; the caller (state transfer) has
     already certificate-verified the segment. *)
  let rec contiguous = function
    | (a : Block.t) :: (b : Block.t) :: rest ->
      if b.seq <> a.seq + 1 then invalid_arg "Ledger.install: sequence gap"
      else contiguous (b :: rest)
    | _ -> ()
  in
  (match blocks with [] -> invalid_arg "Ledger.install: empty segment" | _ -> ());
  contiguous blocks;
  B.install s ~retained:blocks ~appended ~running

let sync_from t ~src =
  install t ~blocks:(retained src) ~appended:(length src) ~running:(cumulative_digest src)

let checkpoint (Packed ((module B), s, _)) ~seq ~state_digest = B.checkpoint s ~seq ~state_digest

let close (Packed ((module B), s, _)) = B.close s

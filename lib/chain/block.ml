type linkage =
  | Prev_hash of string
  | Certificate of (int * string) list

type t = {
  seq : int;
  view : int;
  digest : string;
  txn_count : int;
  link : linkage;
}

let genesis ~primary_id =
  {
    seq = 0;
    view = 0;
    digest = Rdb_crypto.Sha256.digest (Printf.sprintf "genesis-primary-%d" primary_id);
    txn_count = 0;
    link = Prev_hash (String.make 32 '\x00');
  }

let serialize t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "%d|%d|%d|" t.seq t.view t.txn_count);
  Buffer.add_string buf t.digest;
  (match t.link with
  | Prev_hash h ->
    Buffer.add_string buf "|H|";
    Buffer.add_string buf h
  | Certificate shares ->
    Buffer.add_string buf "|C|";
    List.iter
      (fun (id, sg) ->
        Buffer.add_string buf (string_of_int id);
        Buffer.add_char buf ':';
        Buffer.add_string buf sg;
        Buffer.add_char buf ';')
      shares);
  Buffer.contents buf

let hash t = Rdb_crypto.Sha256.digest (serialize t)

(* Binary encoding, used by the durable block store's WAL records and the
   state-transfer payload.  Layout: u48 seq, u32 view, str digest, u32
   txn_count, then a one-byte link tag (0 = Prev_hash + str, 1 =
   Certificate + u32 count of (u32 id, str share) pairs).  Strings are
   u32-length-prefixed. *)

let w_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let w_u48 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 40) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 32) land 0xFF));
  w_u32 buf (v land 0xFFFFFFFF)

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let to_bytes t =
  let buf = Buffer.create 128 in
  w_u48 buf t.seq;
  w_u32 buf t.view;
  w_str buf t.digest;
  w_u32 buf t.txn_count;
  (match t.link with
  | Prev_hash h ->
    Buffer.add_char buf '\x00';
    w_str buf h
  | Certificate shares ->
    Buffer.add_char buf '\x01';
    w_u32 buf (List.length shares);
    List.iter
      (fun (id, sg) ->
        w_u32 buf id;
        w_str buf sg)
      shares);
  Buffer.contents buf

exception Decode of string

let of_bytes s =
  let pos = ref 0 in
  let byte () =
    if !pos >= String.length s then raise (Decode "Block.of_bytes: truncated");
    let c = Char.code s.[!pos] in
    incr pos;
    c
  in
  let r_u32 () =
    let b0 = byte () in
    let b1 = byte () in
    let b2 = byte () in
    let b3 = byte () in
    (b0 lsl 24) lor (b1 lsl 16) lor (b2 lsl 8) lor b3
  in
  let r_u48 () =
    let hi = byte () in
    let lo = byte () in
    (hi lsl 40) lor (lo lsl 32) lor r_u32 ()
  in
  let r_str () =
    let len = r_u32 () in
    if len < 0 || !pos + len > String.length s then
      raise (Decode "Block.of_bytes: bad string length");
    let v = String.sub s !pos len in
    pos := !pos + len;
    v
  in
  try
    let seq = r_u48 () in
    let view = r_u32 () in
    let digest = r_str () in
    let txn_count = r_u32 () in
    let link =
      match byte () with
      | 0 -> Prev_hash (r_str ())
      | 1 ->
        let count = r_u32 () in
        if count > 1_000_000 then raise (Decode "Block.of_bytes: oversized certificate");
        Certificate
          (List.init count (fun _ ->
               let id = r_u32 () in
               let sg = r_str () in
               (id, sg)))
      | _ -> raise (Decode "Block.of_bytes: unknown link tag")
    in
    if !pos <> String.length s then raise (Decode "Block.of_bytes: trailing bytes");
    Some { seq; view; digest; txn_count; link }
  with Decode _ -> None

let pp ppf t =
  let link =
    match t.link with
    | Prev_hash _ -> "prev-hash"
    | Certificate shares -> Printf.sprintf "cert(%d)" (List.length shares)
  in
  Format.fprintf ppf "block{seq=%d view=%d txns=%d digest=%s.. link=%s}" t.seq t.view
    t.txn_count
    (Rdb_crypto.Sha256.hex (String.sub t.digest 0 4))
    link

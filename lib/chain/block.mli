(** Blocks of the replicated ledger.

    Following the paper's §2.2 and §4.6, a block records the batch's sequence
    number [k], the request digest [d], the view [v] of the primary that
    proposed it, and a linkage proof.  The paper's key observation is that
    hashing the previous block on the critical path is unnecessary: the
    [2f+1] Commit signatures already prove the order, so ResilientDB stores
    a {e commit certificate} instead.  Both linkage modes are supported here
    so the benchmarks can measure the difference. *)

type linkage =
  | Prev_hash of string
      (** classic chaining: SHA-256 of the serialized previous block *)
  | Certificate of (int * string) list
      (** commit certificate: (replica id, signature share) pairs from
          [2f+1] distinct replicas *)

type t = {
  seq : int;
  view : int;
  digest : string;  (** digest of the batch of requests this block commits *)
  txn_count : int;
  link : linkage;
}

val genesis : primary_id:int -> t
(** Sequence 0; digest is the hash of the initial primary's identity, as in
    the paper's §2.2. *)

val hash : t -> string
(** SHA-256 over the canonical serialization. *)

val serialize : t -> string
(** Canonical byte representation (stable across processes). *)

val to_bytes : t -> string
(** Compact binary encoding, used for durable storage (the block store's
    WAL records) and the state-transfer wire payload. *)

val of_bytes : string -> t option
(** Inverse of {!to_bytes}; [None] on any malformed input (truncation,
    unknown link tag, trailing bytes). *)

val pp : Format.formatter -> t -> unit

(** The per-replica immutable ledger: an append-only chain of {!Block.t}.

    Every replica maintains its own copy (paper §2.2).  Appends must be in
    strict sequence order — this is exactly the paper's "in-order execution"
    invariant, so a violated append is a protocol bug and raises.  Old
    blocks are pruned when a stable checkpoint is reached (§4.7); pruning
    retains the chain's cumulative digest so integrity checks still work.

    Storage is pluggable: every operation dispatches through a first-class
    {!BACKEND} module, chosen when the ledger is built.  {!create} selects
    the in-memory backend (identical behaviour to the pre-backend ledger);
    {!open_durable} selects the WAL + B-tree {!Block_store}, which survives
    process death and recovers through crash replay. *)

(** The storage interface the consensus fabric is written against.  A store
    holds the retained chain segment plus the cumulative counters; the
    strict-sequence append check lives in the {!Ledger} wrapper so every
    backend inherits it. *)
module type BACKEND = sig
  type store

  val append : store -> Block.t -> unit
  val get : store -> int -> Block.t option
  val prune_below : store -> int -> int
  val iter_retained : store -> (Block.t -> unit) -> unit
  val length : store -> int
  val last : store -> Block.t
  val next_seq : store -> int
  val cumulative_digest : store -> string

  val install : store -> retained:Block.t list -> appended:int -> running:string -> unit
  (** Replace the retained segment (oldest first) and counters wholesale
      (state transfer). *)

  val checkpoint : store -> seq:int -> state_digest:string -> unit
  (** Persist through the stable checkpoint at [seq]; a no-op for volatile
      backends. *)

  val close : store -> unit
end

module Mem : BACKEND
(** Volatile list-backed store (the default). *)

module Durable : BACKEND with type store = Block_store.t
(** WAL + B-tree store; see {!Block_store}. *)

type t

val create : primary_id:int -> t
(** In-memory ledger starting with the genesis block at sequence 0. *)

val open_durable : dir:string -> primary_id:int -> t
(** Durable ledger backed by {!Block_store.open_dir} on [dir]: fresh
    directories are initialised with the genesis block; existing ones are
    crash-recovered (torn WAL tails truncated, records past the last stable
    flush dropped — they are re-acquired by state transfer). *)

val is_durable : t -> bool

val append : t -> Block.t -> unit
(** Raises [Invalid_argument] unless the block's sequence number is exactly
    [next_seq t]. *)

val next_seq : t -> int

val last : t -> Block.t

val length : t -> int
(** Total blocks ever appended, including pruned ones and genesis. *)

val find : t -> int -> Block.t option
(** [find t seq]; [None] when pruned or not yet appended. *)

val prune_below : t -> int -> int
(** [prune_below t seq] discards blocks with sequence < [seq] (never the
    genesis digest chain), returning how many were discarded. *)

val verify :
  t ->
  check_certificate:(seq:int -> digest:string -> (int * string) list -> bool) ->
  (unit, string) result
(** Walks retained blocks in order, checking sequence continuity and
    linkage: [Prev_hash] links must equal the hash of the previous retained
    block; [Certificate] links are delegated to [check_certificate]
    (signature verification lives with the caller's keyring). *)

val cumulative_digest : t -> string
(** Digest covering every block ever appended (survives pruning): a running
    hash folded over the blocks' hashes. *)

val retained : t -> Block.t list
(** The retained segment, oldest first — the payload a state-transfer donor
    ships. *)

val install : t -> blocks:Block.t list -> appended:int -> running:string -> unit
(** State-transfer admit: replace the retained segment with [blocks]
    (ascending, contiguous, non-empty — raises [Invalid_argument]
    otherwise) and adopt the donor's counters.  The caller must have
    verified the segment against the stable-checkpoint certificate first. *)

val sync_from : t -> src:t -> unit
(** Make this ledger's content identical to [src] (retained blocks,
    counters, cumulative digest), whatever either side's backend.  Used
    when a recovering replica catches up from a stable checkpoint — the
    2f+1 matching checkpoint digests are its proof that [src]'s content is
    correct. *)

val checkpoint : t -> seq:int -> state_digest:string -> unit
(** Marks the stable checkpoint at [seq]: durable backends flush the WAL
    and persist counters + [state_digest]; the in-memory backend ignores
    it. *)

val close : t -> unit

val iter_retained : t -> (Block.t -> unit) -> unit

(* Durable block store: a WAL of retained blocks plus a B-tree of
   checkpoint metadata.

   Layout under [dir]:
   - [blocks.wal] — the retained chain segment, oldest first, one
     checksummed record per block ({!Block.to_bytes}).  Appends are
     buffered (off the critical path, per the paper's at-most-f-failures
     argument) and forced at every stable checkpoint; pruning rewrites the
     file.
   - [meta.db] — counters as of the last {e stable} flush: appended,
     next_seq, the cumulative running digest, the last stable checkpoint
     sequence and its state digest.  [checkpoint] snapshots them at the
     stable sequence (the one point a quorum agrees on) even when the tip
     has moved past it; [close]/[flush] snapshot the full tip (a clean
     shutdown happens at one agreed moment).

   Recovery contract: [checkpoint] flushes the WAL before the meta page, so
   on reopen the WAL always covers the chain through [meta.next_seq - 1].
   Replay truncates any torn tail (see {!Rdb_storage.Wal.open_log}) and
   drops records past the meta coverage — the unagreed per-replica tail a
   crash (or the channel flush at process exit) left behind; those blocks
   are lost by design and re-acquired by state transfer. *)

module Wal = Rdb_storage.Wal
module Btree = Rdb_storage.Btree

type t = {
  dir : string;
  mutable wal : Wal.t;
  meta : Btree.t;
  mutable retained : Block.t list; (* newest first, mirroring the WAL *)
  mutable appended : int;
  mutable next_seq : int;
  mutable running : string;
  mutable last_stable : int;
  mutable state_digest : string;
  mutable recent : (int * string) list;
      (* (seq, running digest after folding seq), newest first — lets a
         checkpoint persist the counters as of the {e stable} prefix even
         when the in-memory tip has already moved past it.  Pruned below
         the stable sequence at every checkpoint. *)
}

let wal_path dir = Filename.concat dir "blocks.wal"

let meta_path dir = Filename.concat dir "meta.db"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let put_int meta k v = Btree.put meta k (string_of_int v)

let get_int meta k = Option.map int_of_string (Btree.get meta k)

let write_meta t ~appended ~next_seq ~running =
  put_int t.meta "appended" appended;
  put_int t.meta "next_seq" next_seq;
  Btree.put t.meta "running" running;
  put_int t.meta "last_stable" t.last_stable;
  Btree.put t.meta "state_digest" t.state_digest;
  Btree.flush t.meta

let save_meta_full t = write_meta t ~appended:t.appended ~next_seq:t.next_seq ~running:t.running

(* Persist the resume snapshot as of the stable prefix, not the raw tip.
   Replicas checkpoint at the same sequence but flush at different tips (and
   the runtime flushes buffered channels at process exit), so a tip snapshot
   would resurrect a per-replica ragged, unagreed tail — a restarted primary
   one block behind its backups re-proposes a sequence they already hold and
   can never execute again.  The stable sequence is the one point a quorum
   agrees on; everything past it is re-acquired by state transfer. *)
let save_meta t =
  let tip = t.next_seq - 1 in
  let cover = min t.last_stable tip in
  if cover >= tip then save_meta_full t
  else
    match List.assoc_opt cover t.recent with
    | Some running -> write_meta t ~appended:(t.appended - (tip - cover)) ~next_seq:(cover + 1) ~running
    | None -> save_meta_full t (* no snapshot for [cover] (installed segment): tip is the best point *)

let fold_in t b =
  t.retained <- b :: t.retained;
  t.appended <- t.appended + 1;
  t.next_seq <- t.next_seq + 1;
  t.running <- Rdb_crypto.Sha256.digest (t.running ^ Block.hash b);
  t.recent <- (b.Block.seq, t.running) :: t.recent

let append t b =
  Wal.append t.wal (Block.to_bytes b);
  fold_in t b

let get t seq = List.find_opt (fun b -> b.Block.seq = seq) t.retained

let iter_retained t f = List.iter f (List.rev t.retained)

let length t = t.appended

let retained_count t = List.length t.retained

let next_seq t = t.next_seq

let cumulative_digest t = t.running

let last t =
  match t.retained with
  | b :: _ -> b
  | [] -> assert false (* genesis is never dropped without replacement *)

let last_stable t = t.last_stable

let state_digest t = t.state_digest

let checkpoint t ~seq ~state_digest =
  t.last_stable <- seq;
  t.state_digest <- state_digest;
  Wal.flush t.wal;
  save_meta t;
  let cover = min seq (t.next_seq - 1) in
  t.recent <- List.filter (fun (s, _) -> s >= cover) t.recent

let rewrite_wal t =
  let path = wal_path t.dir in
  let tmp = path ^ ".tmp" in
  (try Sys.remove tmp with Sys_error _ -> ());
  let w = Wal.open_log tmp in
  List.iter (fun b -> Wal.append w (Block.to_bytes b)) (List.rev t.retained);
  Wal.flush w;
  Wal.close w;
  Wal.close t.wal;
  Sys.rename tmp path;
  t.wal <- Wal.open_log path

let prune_below t seq =
  let keep, drop = List.partition (fun b -> b.Block.seq >= seq) t.retained in
  match keep with
  | [] -> 0
  | _ ->
    if drop = [] then 0
    else begin
      t.retained <- keep;
      rewrite_wal t;
      save_meta t;
      List.length drop
    end

let install t ~retained ~appended ~running =
  (match retained with
  | [] -> invalid_arg "Block_store.install: empty segment"
  | _ -> ());
  t.retained <- List.rev retained;
  t.appended <- appended;
  t.next_seq <- (last t).Block.seq + 1;
  t.running <- running;
  (* The donor hands over only the final running digest, so the segment's
     interior offers no snapshot points until new appends land. *)
  t.recent <- [ (t.next_seq - 1, running) ];
  rewrite_wal t;
  save_meta t

let init_fresh t genesis =
  t.retained <- [ genesis ];
  t.appended <- 1;
  t.next_seq <- 1;
  t.running <- Block.hash genesis;
  t.last_stable <- 0;
  t.state_digest <- "";
  t.recent <- [ (0, t.running) ];
  Wal.append t.wal (Block.to_bytes genesis);
  Wal.flush t.wal;
  save_meta t

let open_dir ~dir ~genesis =
  mkdir_p dir;
  let meta = Btree.open_file (meta_path dir) in
  (* Opening truncates any torn tail, so the replay below only sees intact
     records and later appends land behind them. *)
  let wal = Wal.open_log (wal_path dir) in
  let t =
    {
      dir;
      wal;
      meta;
      retained = [];
      appended = 0;
      next_seq = 0;
      running = "";
      last_stable = 0;
      state_digest = "";
      recent = [];
    }
  in
  (match get_int meta "next_seq" with
  | None -> init_fresh t genesis
  | Some next_seq ->
    let blocks = ref [] in
    ignore
      (Wal.replay (wal_path dir) (fun data ->
           match Block.of_bytes data with
           | Some b -> blocks := b :: !blocks
           | None -> ()));
    (* The meta page is the authoritative resume point.  WAL records past
       its coverage are stragglers — appends buffered after the last stable
       flush (forced out by a channel flush at process exit, or by the
       WAL-before-meta window of a mid-checkpoint crash): an unagreed,
       per-replica ragged tail.  They are lost by design; state transfer
       re-acquires anything a quorum actually committed. *)
    let keep, dropped = List.partition (fun b -> b.Block.seq < next_seq) (List.rev !blocks) in
    (match keep with
    | [] ->
      (* The log was lost entirely: resume from genesis; state transfer
         re-fills the chain from a peer's stable checkpoint. *)
      init_fresh t genesis
    | oldest_first ->
      t.retained <- List.rev oldest_first;
      t.appended <- Option.value (get_int meta "appended") ~default:1;
      t.next_seq <- next_seq;
      t.running <- Option.value (Btree.get meta "running") ~default:(Block.hash genesis);
      t.last_stable <- Option.value (get_int meta "last_stable") ~default:0;
      t.state_digest <- Option.value (Btree.get meta "state_digest") ~default:"";
      t.recent <- [ (t.next_seq - 1, t.running) ];
      if dropped <> [] then rewrite_wal t));
  t

let flush t =
  Wal.flush t.wal;
  save_meta_full t

let close t =
  Wal.flush t.wal;
  save_meta_full t;
  Wal.close t.wal;
  Btree.close t.meta

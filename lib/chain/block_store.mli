(** A ledger chain segment that survives process death.

    Composes the storage substrates the fabric's recovery path relies on:
    an append-only {!Rdb_storage.Wal} holding the retained blocks (oldest
    first) and a {!Rdb_storage.Btree} page holding the counters as of the
    last stable checkpoint.  Appends are buffered — persistence is off the
    critical path, per the paper's §6 at-most-[f]-failures argument — and
    forced by {!checkpoint}, which flushes the WAL {e before} the meta
    page so a crash between the two leaves the store recoverable.

    {!checkpoint} snapshots the meta counters as of the {e stable}
    sequence — the one point a quorum agrees on — even when the local tip
    has already moved past it, while {!close} and {!flush} snapshot the
    full tip (a clean shutdown happens at one agreed moment).  {!open_dir}
    recovers after a crash: the WAL's torn tail is truncated to the last
    intact record, surviving blocks are replayed, and records past the
    meta coverage — the unagreed, per-replica ragged tail left by a crash
    or by the channel flush at process exit — are dropped.  Blocks past
    the last stable flush are lost by design; the state-transfer protocol
    re-acquires anything a quorum actually committed from a peer's stable
    checkpoint. *)

type t

val open_dir : dir:string -> genesis:Block.t -> t
(** Opens (creating [dir] and initialising with [genesis] if needed) or
    recovers an existing store as described above. *)

val append : t -> Block.t -> unit
(** Buffered WAL append; durable only after the next {!checkpoint},
    {!flush} or {!close}. *)

val get : t -> int -> Block.t option

val iter_retained : t -> (Block.t -> unit) -> unit
(** Oldest first. *)

val length : t -> int
(** Total blocks ever appended, including pruned ones and genesis. *)

val retained_count : t -> int

val last : t -> Block.t

val next_seq : t -> int

val cumulative_digest : t -> string

val last_stable : t -> int
(** Sequence of the last stable checkpoint recorded by {!checkpoint}
    (0 before any). *)

val state_digest : t -> string
(** State digest recorded at the last checkpoint ([""] before any). *)

val checkpoint : t -> seq:int -> state_digest:string -> unit
(** Records the stable checkpoint and forces everything to disk: WAL
    flush, then meta write + flush. *)

val prune_below : t -> int -> int
(** Same contract as {!Ledger.prune_below}; rewrites the WAL so the file
    holds exactly the retained segment. *)

val install : t -> retained:Block.t list -> appended:int -> running:string -> unit
(** State-transfer admit: replace the retained segment (given oldest
    first) and counters wholesale, rewriting the WAL and meta.  Raises
    [Invalid_argument] on an empty segment. *)

val flush : t -> unit

val close : t -> unit
(** Flushes, persists counters, and closes both files. *)

module Sim = Rdb_des.Sim

type fault =
  | Crash_primary
  | Crash_instance_primary of int
  | Crash of int
  | Recover of int
  | Partition of { name : string; side_a : int list; side_b : int list }
  | Heal of string
  | Loss of float
  | Duplication of float
  | Extra_jitter of Sim.time

type entry = { at : Sim.time; fault : fault }

type schedule = entry list

let at time fault = { at = time; fault }

let at_ms ms fault = { at = Sim.ms ms; fault }

let window ~from_ ~until on off =
  if until < from_ then invalid_arg "Nemesis: window ends before it starts";
  [ at from_ on; at until off ]

let loss_window ~from_ ~until rate = window ~from_ ~until (Loss rate) (Loss 0.0)

let duplication_window ~from_ ~until rate =
  window ~from_ ~until (Duplication rate) (Duplication 0.0)

let partition_window ~from_ ~until ~name side_a side_b =
  window ~from_ ~until (Partition { name; side_a; side_b }) (Heal name)

let crash_primary_at time = [ at time Crash_primary ]

let crash_instance_primary_at time inst = [ at time (Crash_instance_primary inst) ]

let describe = function
  | Crash_primary -> "crash primary"
  | Crash_instance_primary i -> Printf.sprintf "crash primary of instance %d" i
  | Crash i -> Printf.sprintf "crash replica %d" i
  | Recover i -> Printf.sprintf "recover replica %d" i
  | Partition { name; side_a; side_b } ->
    Printf.sprintf "partition %S: {%s} | {%s}" name
      (String.concat "," (List.map string_of_int side_a))
      (String.concat "," (List.map string_of_int side_b))
  | Heal name -> Printf.sprintf "heal %S" name
  | Loss r -> Printf.sprintf "loss %.1f%%" (100.0 *. r)
  | Duplication r -> Printf.sprintf "duplication %.1f%%" (100.0 *. r)
  | Extra_jitter j -> Printf.sprintf "extra jitter %dns" j

let pp_fault ppf f = Format.pp_print_string ppf (describe f)

let validate ~n schedule =
  let check_node what i =
    if i < 0 || i >= n then
      invalid_arg (Printf.sprintf "Nemesis: %s names replica %d outside [0, %d)" what i n)
  in
  List.iter
    (fun { at; fault } ->
      if at < 0 then invalid_arg "Nemesis: negative fault time";
      match fault with
      | Crash i -> check_node "crash" i
      | Recover i -> check_node "recover" i
      | Partition { side_a; side_b; _ } ->
        List.iter (check_node "partition") side_a;
        List.iter (check_node "partition") side_b;
        if List.exists (fun i -> List.mem i side_b) side_a then
          invalid_arg "Nemesis: partition sides overlap"
      | Heal _ | Crash_primary -> ()
      | Crash_instance_primary i ->
        if i < 0 then invalid_arg "Nemesis: negative consensus instance"
      | Loss r | Duplication r ->
        if r < 0.0 || r >= 1.0 then invalid_arg "Nemesis: rate must be in [0, 1)"
      | Extra_jitter j -> if j < 0 then invalid_arg "Nemesis: negative jitter")
    schedule

(* The cluster hands over narrow capabilities instead of itself, so this
   module stays independent of the cluster's (large) internal state and the
   schedule types can be referenced from [Params] without a dependency
   cycle. *)
type driver = {
  sim : Sim.t;
  current_primary : unit -> int;
  current_instance_primary : int -> int;
  crash : int -> unit;
  recover : int -> unit;
  partition : name:string -> int list -> int list -> unit;
  heal : name:string -> unit;
  set_loss : float -> unit;
  set_duplication : float -> unit;
  set_extra_jitter : Sim.time -> unit;
  note : fault -> unit;  (** observation hook, fired as each fault is injected *)
}

let apply d fault =
  (match fault with
  | Crash_primary -> d.crash (d.current_primary ())
  | Crash_instance_primary i -> d.crash (d.current_instance_primary i)
  | Crash i -> d.crash i
  | Recover i -> d.recover i
  | Partition { name; side_a; side_b } -> d.partition ~name side_a side_b
  | Heal name -> d.heal ~name
  | Loss r -> d.set_loss r
  | Duplication r -> d.set_duplication r
  | Extra_jitter j -> d.set_extra_jitter j);
  d.note fault

let install d schedule =
  List.iter
    (fun { at; fault } -> ignore (Sim.schedule_at d.sim ~at (fun () -> apply d fault)))
    schedule

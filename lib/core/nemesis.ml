module Sim = Rdb_des.Sim

(* What a byzantine replica is currently doing.  A replica has exactly one
   behavior at a time; installing a new one replaces the old, and [Honest]
   restores normal operation. *)
type behavior =
  | Honest
  | Equivocating
  | Corrupting_digest of float
  | Corrupting_mac of float
  | Silent_towards of int list
  | Spamming_view_changes of Sim.time

type fault =
  | Crash_primary
  | Crash_instance_primary of int
  | Crash of int
  | Recover of int
  | Partition of { name : string; side_a : int list; side_b : int list }
  | Heal of string
  | Loss of float
  | Duplication of float
  | Extra_jitter of Sim.time
  | Equivocate of int
  | Corrupt_digest of { node : int; rate : float }
  | Corrupt_mac of { node : int; rate : float }
  | Silence of { node : int; peers : int list }
  | View_change_spam of { node : int; period : Sim.time }
  | Restore_honest of int

type entry = { at : Sim.time; fault : fault }

type schedule = entry list

let at time fault = { at = time; fault }

let at_ms ms fault = { at = Sim.ms ms; fault }

let window ~from_ ~until on off =
  if until < from_ then invalid_arg "Nemesis: window ends before it starts";
  [ at from_ on; at until off ]

let loss_window ~from_ ~until rate = window ~from_ ~until (Loss rate) (Loss 0.0)

let duplication_window ~from_ ~until rate =
  window ~from_ ~until (Duplication rate) (Duplication 0.0)

let partition_window ~from_ ~until ~name side_a side_b =
  window ~from_ ~until (Partition { name; side_a; side_b }) (Heal name)

let crash_primary_at time = [ at time Crash_primary ]

let crash_instance_primary_at time inst = [ at time (Crash_instance_primary inst) ]

let equivocate_window ~from_ ~until node =
  window ~from_ ~until (Equivocate node) (Restore_honest node)

let corrupt_digest_window ~from_ ~until node rate =
  window ~from_ ~until (Corrupt_digest { node; rate }) (Restore_honest node)

let corrupt_mac_window ~from_ ~until node rate =
  window ~from_ ~until (Corrupt_mac { node; rate }) (Restore_honest node)

let silence_window ~from_ ~until node peers =
  window ~from_ ~until (Silence { node; peers }) (Restore_honest node)

let view_change_spam_window ~from_ ~until node ~period =
  window ~from_ ~until (View_change_spam { node; period }) (Restore_honest node)

let behavior_of_fault = function
  | Equivocate _ -> Some Equivocating
  | Corrupt_digest { rate; _ } -> Some (Corrupting_digest rate)
  | Corrupt_mac { rate; _ } -> Some (Corrupting_mac rate)
  | Silence { peers; _ } -> Some (Silent_towards peers)
  | View_change_spam { period; _ } -> Some (Spamming_view_changes period)
  | Restore_honest _ -> Some Honest
  | Crash_primary | Crash_instance_primary _ | Crash _ | Recover _ | Partition _ | Heal _ | Loss _
  | Duplication _ | Extra_jitter _ ->
    None

let is_byzantine = function
  | Equivocate _ | Corrupt_digest _ | Corrupt_mac _ | Silence _ | View_change_spam _ -> true
  | Restore_honest _ | Crash_primary | Crash_instance_primary _ | Crash _ | Recover _ | Partition _
  | Heal _ | Loss _ | Duplication _ | Extra_jitter _ ->
    false

let attacker_of = function
  | Equivocate node
  | Corrupt_digest { node; _ }
  | Corrupt_mac { node; _ }
  | Silence { node; _ }
  | View_change_spam { node; _ }
  | Restore_honest node ->
    Some node
  | Crash_primary | Crash_instance_primary _ | Crash _ | Recover _ | Partition _ | Heal _ | Loss _
  | Duplication _ | Extra_jitter _ ->
    None

let describe = function
  | Crash_primary -> "crash primary"
  | Crash_instance_primary i -> Printf.sprintf "crash primary of instance %d" i
  | Crash i -> Printf.sprintf "crash replica %d" i
  | Recover i -> Printf.sprintf "recover replica %d" i
  | Partition { name; side_a; side_b } ->
    Printf.sprintf "partition %S: {%s} | {%s}" name
      (String.concat "," (List.map string_of_int side_a))
      (String.concat "," (List.map string_of_int side_b))
  | Heal name -> Printf.sprintf "heal %S" name
  | Loss r -> Printf.sprintf "loss %.1f%%" (100.0 *. r)
  | Duplication r -> Printf.sprintf "duplication %.1f%%" (100.0 *. r)
  | Extra_jitter j -> Printf.sprintf "extra jitter %dns" j
  | Equivocate node -> Printf.sprintf "replica %d equivocates" node
  | Corrupt_digest { node; rate } ->
    Printf.sprintf "replica %d corrupts digests (%.0f%%)" node (100.0 *. rate)
  | Corrupt_mac { node; rate } ->
    Printf.sprintf "replica %d forges MACs (%.0f%%)" node (100.0 *. rate)
  | Silence { node; peers } ->
    Printf.sprintf "replica %d silent towards {%s}" node
      (String.concat "," (List.map string_of_int peers))
  | View_change_spam { node; period } ->
    Printf.sprintf "replica %d spams view changes every %dns" node period
  | Restore_honest node -> Printf.sprintf "replica %d restored to honesty" node

let pp_fault ppf f = Format.pp_print_string ppf (describe f)

let validate ~n schedule =
  let check_node what i =
    if i < 0 || i >= n then
      invalid_arg (Printf.sprintf "Nemesis: %s names replica %d outside [0, %d)" what i n)
  in
  List.iter
    (fun { at; fault } ->
      if at < 0 then invalid_arg "Nemesis: negative fault time";
      match fault with
      | Crash i -> check_node "crash" i
      | Recover i -> check_node "recover" i
      | Partition { side_a; side_b; _ } ->
        List.iter (check_node "partition") side_a;
        List.iter (check_node "partition") side_b;
        if List.exists (fun i -> List.mem i side_b) side_a then
          invalid_arg "Nemesis: partition sides overlap"
      | Heal _ | Crash_primary -> ()
      | Crash_instance_primary i ->
        if i < 0 then invalid_arg "Nemesis: negative consensus instance"
      | Loss r | Duplication r ->
        if r < 0.0 || r >= 1.0 then invalid_arg "Nemesis: rate must be in [0, 1)"
      | Extra_jitter j -> if j < 0 then invalid_arg "Nemesis: negative jitter"
      | Equivocate i | Restore_honest i -> check_node "byzantine" i
      | Corrupt_digest { node; rate } | Corrupt_mac { node; rate } ->
        check_node "byzantine" node;
        if rate < 0.0 || rate > 1.0 then invalid_arg "Nemesis: corruption rate must be in [0, 1]"
      | Silence { node; peers } ->
        check_node "byzantine" node;
        List.iter (check_node "silence peer") peers
      | View_change_spam { node; period } ->
        check_node "byzantine" node;
        if period <= 0 then invalid_arg "Nemesis: view-change spam period must be positive")
    schedule;
  (* The hardening guarantees only hold for f <= (n-1)/3 concurrent liars;
     reject schedules that name more distinct attackers than that. *)
  let attackers =
    List.sort_uniq compare
      (List.filter_map (fun { fault; _ } -> if is_byzantine fault then attacker_of fault else None)
         schedule)
  in
  let f = (n - 1) / 3 in
  if List.length attackers > f then
    invalid_arg
      (Printf.sprintf "Nemesis: %d byzantine attackers exceeds f = (n-1)/3 = %d for n = %d"
         (List.length attackers) f n)

(* ---- random schedule generation ------------------------------------------ *)

(* One source for randomized fault schedules, shared by the fault-campaign
   harness, the qcheck properties (test/testkit.ml wraps these into QCheck
   generators) and the examples.  All draws come from the caller's
   deterministic [Rng.t], so a (family, seed) pair names one schedule
   forever.  Times are tuned for sub-second runs (the campaign and test
   default): faults land inside the first ~450 ms, windows are 20–120 ms,
   except the deliberately run-covering heavy-loss family. *)
module Gen = struct
  module Rng = Rdb_des.Rng

  type family =
    | Fault_free
    | Crashes
    | Partitions
    | Loss
    | Heavy_loss
    | Duplication
    | Byzantine
    | Mixed

  let all_families =
    [ Fault_free; Crashes; Partitions; Loss; Heavy_loss; Duplication; Byzantine; Mixed ]

  let family_name = function
    | Fault_free -> "none"
    | Crashes -> "crash"
    | Partitions -> "partition"
    | Loss -> "loss"
    | Heavy_loss -> "heavy-loss"
    | Duplication -> "dup"
    | Byzantine -> "byzantine"
    | Mixed -> "mixed"

  let family_of_name s = List.find_opt (fun f -> family_name f = s) all_families

  let time rng lo_ms hi_ms = Sim.ms (float_of_int (lo_ms + Rng.int rng (hi_ms - lo_ms + 1)))

  (* Crash the primary, or a random backup, inside the first 400 ms. *)
  let crash ~n rng =
    if Rng.bool rng then crash_primary_at (time rng 100 400)
    else [ at (time rng 100 400) (Crash (1 + Rng.int rng (n - 1))) ]

  (* Cut the replica set in halves for a bounded window.  The minority side
     holds fewer than 2f+1 replicas, so progress depends on the majority
     side keeping (or electing) a primary. *)
  let partition ~n rng =
    let from_ = time rng 100 350 in
    let half = n / 2 in
    partition_window ~from_ ~until:(from_ + time rng 20 120) ~name:"gen"
      (List.init half Fun.id)
      (List.init (n - half) (fun i -> half + i))

  let loss_burst rng =
    let from_ = time rng 100 350 in
    loss_window ~from_ ~until:(from_ + time rng 20 120) 0.1

  (* 35–55% loss covering most of the run: the liveness-cliff probe.  With a
     generous view timeout the retransmission machinery grinds through it;
     with a short one the cluster spends the window electing primaries it
     cannot hear, which is exactly the wedge the campaign exists to map. *)
  let heavy_loss rng =
    let rate = 0.35 +. (0.05 *. float_of_int (Rng.int rng 5)) in
    loss_window ~from_:(time rng 80 150) ~until:(time rng 600 750) rate

  let duplication_burst rng =
    let from_ = time rng 100 350 in
    duplication_window ~from_ ~until:(from_ + time rng 20 120) 0.2

  let jitter_spike rng = [ at (time rng 50 300) (Extra_jitter (Sim.us 400.0)) ]

  (* The benign mix the qcheck safety properties throw at small clusters:
     each component present with probability 1/2. *)
  let random_benign ~n rng =
    let opt gen = if Rng.bool rng then gen rng else [] in
    List.concat
      [
        opt (crash ~n);
        opt (partition ~n);
        opt loss_burst;
        opt duplication_burst;
        opt jitter_spike;
      ]

  (* One byzantine attacker window: a single replica lies in one of the five
     adversarial modes for a bounded interval, then returns to honesty.
     Naming one attacker keeps the schedule inside the f <= (n-1)/3 bound
     [validate] enforces, by construction. *)
  let random_attack ~n rng =
    let node = Rng.int rng n in
    let from_ = time rng 100 350 in
    let until = from_ + time rng 20 120 in
    let rate () = float_of_int (1 + Rng.int rng 10) /. 10.0 in
    match Rng.int rng 5 with
    | 0 -> equivocate_window ~from_ ~until node
    | 1 -> corrupt_digest_window ~from_ ~until node (rate ())
    | 2 -> corrupt_mac_window ~from_ ~until node (rate ())
    | 3 ->
      let k = 1 + Rng.int rng 2 in
      silence_window ~from_ ~until node (List.init k (fun i -> (node + 1 + i) mod n))
    | _ -> view_change_spam_window ~from_ ~until node ~period:(Sim.ms 5.0)

  (* The full fault model: the benign mix plus, half the time, a byzantine
     attacker window. *)
  let random_schedule ~n rng =
    let benign = random_benign ~n rng in
    if Rng.bool rng then benign @ random_attack ~n rng else benign

  let generate family ~n rng =
    match family with
    | Fault_free -> []
    | Crashes -> crash ~n rng
    | Partitions -> partition ~n rng
    | Loss -> loss_burst rng
    | Heavy_loss -> heavy_loss rng
    | Duplication -> duplication_burst rng
    | Byzantine -> random_attack ~n rng
    | Mixed -> random_schedule ~n rng
end

(* The cluster hands over narrow capabilities instead of itself, so this
   module stays independent of the cluster's (large) internal state and the
   schedule types can be referenced from [Params] without a dependency
   cycle. *)
type driver = {
  sim : Sim.t;
  current_primary : unit -> int;
  current_instance_primary : int -> int;
  crash : int -> unit;
  recover : int -> unit;
  partition : name:string -> int list -> int list -> unit;
  heal : name:string -> unit;
  set_loss : float -> unit;
  set_duplication : float -> unit;
  set_extra_jitter : Sim.time -> unit;
  set_behavior : node:int -> behavior -> unit;
  note : fault -> unit;  (** observation hook, fired as each fault is injected *)
}

let apply d fault =
  (match fault with
  | Crash_primary -> d.crash (d.current_primary ())
  | Crash_instance_primary i -> d.crash (d.current_instance_primary i)
  | Crash i -> d.crash i
  | Recover i -> d.recover i
  | Partition { name; side_a; side_b } -> d.partition ~name side_a side_b
  | Heal name -> d.heal ~name
  | Loss r -> d.set_loss r
  | Duplication r -> d.set_duplication r
  | Extra_jitter j -> d.set_extra_jitter j
  | (Equivocate _ | Corrupt_digest _ | Corrupt_mac _ | Silence _ | View_change_spam _
    | Restore_honest _) as byz -> (
    match (attacker_of byz, behavior_of_fault byz) with
    | Some node, Some b -> d.set_behavior ~node b
    | _ -> assert false));
  d.note fault

let install d schedule =
  List.iter
    (fun { at; fault } -> ignore (Sim.schedule_at d.sim ~at (fun () -> apply d fault)))
    schedule

(** An embeddable, single-process ResilientDB cluster over the pure PBFT
    cores — the "library mode" of this repository, used by the examples.

    Unlike {!Cluster} (which charges a calibrated cost model under a
    discrete-event clock to reproduce the paper's performance numbers), this
    runtime runs everything for real, synchronously:
    - client requests are {e actually signed} (ED25519-class Schnorr) and
      verified by the primary before batching;
    - protocol messages carry {e real} CMAC-AES authenticators over their
      canonical auth strings, verified on receipt;
    - batches are digested with {e real} SHA-256;
    - execution applies the application's callback to each replica's own
      {!Rdb_storage.Mem_store};
    - every executed batch becomes a block (commit-certificate linkage) in
      each replica's {!Rdb_chain.Ledger};
    - crash faults and primary view changes can be injected.

    Message delivery is FIFO and reliable between live replicas.  This is a
    deterministic in-process harness, not a networked deployment. *)

type t

type config = {
  n : int;  (** replicas, >= 4 *)
  batch_size : int;  (** requests per Pre-prepare *)
  checkpoint_interval : int;  (** sequence numbers between checkpoints *)
  seed : int64;
  durable_dir : string option;
      (** back each replica's ledger with the WAL + B-tree
          {!Rdb_chain.Block_store} under this directory (one subdirectory
          per replica); [None] keeps the in-memory backend.  Reopening the
          same directory crash-recovers the chains (torn WAL tails
          truncated) and the cluster resumes ordering at the persisted tip;
          call {!close} for a clean shutdown flush *)
  exec_threads : int;
      (** execute lanes per replica, in [1, 64]; default 1 (serial, exactly
          the classic path).  With [exec_threads >= 2] {e and} a
          [footprint] callback at {!create}, each committed batch is
          partitioned by {!Rdb_replica.Exec_sched} into key-disjoint lanes
          separated by barrier rounds, and each round's lanes run on real
          OCaml 5 domains ([Domain.spawn]).  A domain never touches the
          shared store: it applies its lane against a private staging store
          seeded from the lane's declared footprint, and the main thread
          merges each lane's declared write keys back after joining.
          Within a round the write sets are cross-lane disjoint, so the
          merged state equals serial in-order execution — audited by
          {!verify} *)
}

val default_config : config

val create :
  ?config:config ->
  ?trace:bool ->
  ?footprint:(client:int -> payload:string -> Rdb_replica.Exec_sched.footprint) ->
  apply:(replica:int -> Rdb_storage.Mem_store.t -> client:int -> payload:string -> string) ->
  unit ->
  t
(** [apply] executes one request against a replica's store and returns the
    result string sent back to the client.  It must be deterministic: all
    replicas run it independently and their results must agree.

    [footprint] declares the keys one request will read and write, enabling
    the parallel execution path when [config.exec_threads >= 2].  The
    contract is strict: [apply] must touch {e only} declared keys — an
    undeclared read sees an empty staging slot and an undeclared write is
    dropped at the merge (each lane runs against a private staging store,
    see {!type:config}).  Omitting [footprint] keeps execution serial at
    any [exec_threads].

    [trace] (default false) records every delivered protocol message as a
    Chrome trace event, retrievable with {!trace_json}; this runtime has no
    simulated clock, so delivery order stands in for time. *)

val submit : t -> client:int -> payload:string -> int
(** Queue a signed request; returns its transaction id.  Requests are
    batched once [batch_size] are pending (call {!flush} for a partial
    batch). *)

val flush : t -> unit
(** Force a batch out of any pending requests. *)

val run : t -> unit
(** Drive message delivery until the cluster is quiescent. *)

val crash : t -> int -> unit
(** Silence a replica (crash fault), including any of its outbound messages
    not yet delivered — they model sends that never made it onto the wire.
    Tolerates up to f crashes. *)

val recover : t -> int -> unit
(** Bring a crashed replica back.  It missed every message in between, so
    it immediately broadcasts a {!Rdb_consensus.Message.State_request};
    any live peer holding a stable-checkpoint certificate answers with the
    certificate, its retained chain segment and an application-state
    export, which the replica verifies and installs
    ({!Rdb_consensus.State_transfer} — the same code path the DES
    {!Cluster} recovers through).  If no checkpoint is stable yet, the
    next one to stabilise re-triggers the request. *)

val applied : t -> int -> int
(** Highest sequence number reflected in a replica's application state
    (through execution or state transfer). *)

val close : t -> unit
(** Flush and close every replica's ledger backend.  Only meaningful with
    [durable_dir]: a later {!create} over the same directory then resumes
    at the flushed tip (without it, recovery replays the WAL and resumes
    from the last stable checkpoint). *)

val force_view_change : t -> unit
(** Make every live replica suspect the current primary, as their request
    timers would; the next view's primary takes over and re-batches every
    request whose reply never reached its client (clients would retransmit
    in a networked deployment).  Completed transactions are never
    re-proposed; re-batched admitted requests hit the verify-sharing memo
    table instead of being re-verified. *)

val primary : t -> int

val view : t -> int

val completed : t -> (int * string) list
(** Client-accepted results so far, as [(txn_id, result)], oldest first.
    A result is accepted once f+1 replicas sent matching replies. *)

val store : t -> int -> Rdb_storage.Mem_store.t
(** A replica's application state (read-only use intended). *)

val ledger : t -> int -> Rdb_chain.Ledger.t

val last_executed : t -> int -> int

val verify : t -> (unit, string) result
(** Cross-replica audit: all live replicas' ledgers have equal cumulative
    digests and equal application-state digests, and each ledger passes its
    own integrity check. *)

val auth_failures : t -> int
(** Messages dropped because their MAC or signature did not verify
    (should be zero unless the host injects corruption). *)

val verify_cache_hits : t -> int
(** Cryptographic checks skipped by verify-sharing: duplicate MAC
    deliveries answered from a replica's memo table plus client signatures
    re-used when a view change re-batches admitted requests. *)

val inject_forged_message : t -> dst:int -> unit
(** For tests/demos: deliver a protocol message with a corrupted
    authenticator to [dst]; it must be rejected and counted. *)

val trace_json : t -> string option
(** The Chrome [trace_event] JSON of every message delivered so far — one
    process per replica, one event per protocol message, timestamped by
    delivery order.  [None] unless created with [~trace:true]. *)

module Msg = Rdb_consensus.Message
module Action = Rdb_consensus.Action
module Config = Rdb_consensus.Config
module Pbft = Rdb_consensus.Pbft_replica
module St = Rdb_consensus.State_transfer
module Client = Rdb_consensus.Pbft_client
module Signer = Rdb_crypto.Signer
module Sha256 = Rdb_crypto.Sha256
module Cmac = Rdb_crypto.Cmac
module Vcache = Rdb_crypto.Verify_cache
module Mem_store = Rdb_storage.Mem_store
module Ledger = Rdb_chain.Ledger
module Block = Rdb_chain.Block
module Rng = Rdb_des.Rng
module Trace = Rdb_obs.Trace
module Exec_sched = Rdb_replica.Exec_sched

type config = {
  n : int;
  batch_size : int;
  checkpoint_interval : int;
  seed : int64;
  durable_dir : string option;
      (** back each replica's ledger with the WAL + B-tree block store under
          this directory (one subdirectory per replica); [None] keeps the
          in-memory backend.  Reopening the same directory crash-recovers
          the chains and resumes appending at the persisted tip *)
  exec_threads : int;
      (** execute lanes per replica; >= 2 (together with a [footprint]
          callback at {!create}) runs each batch through the conflict-aware
          {!Rdb_replica.Exec_sched} plan on real OCaml domains *)
}

let default_config =
  {
    n = 4;
    batch_size = 10;
    checkpoint_interval = 50;
    seed = 0x4C6F63616CL;
    durable_dir = None;
    exec_threads = 1;
  }

type request = { client : int; payload : string; signature : string }

type replica = {
  id : int;
  core : Pbft.t;
  mutable rstore : Mem_store.t;
  rledger : Ledger.t;
  mac : Cmac.key;  (** group MAC key for replica-to-replica traffic *)
  mutable applied : int;  (** highest sequence number applied to [rstore] *)
  seen : unit Vcache.t;
      (** MACs this replica has accepted, keyed by authenticated content plus
          tag: a duplicate delivery skips the CMAC recomputation, a forgery
          (different tag) can never alias a cached acceptance *)
}

type t = {
  cfg : config;
  ccfg : Config.t;
  replicas : replica array;
  client_signer : Signer.t;
  client_verifier : Signer.verifier;
  apply : replica:int -> Rdb_storage.Mem_store.t -> client:int -> payload:string -> string;
  footprint : (client:int -> payload:string -> Exec_sched.footprint) option;
      (** declares the keys one request reads/writes; required for the
          parallel execution path — without it every request potentially
          conflicts with every other and execution stays serial *)
  queue : (int * int * Msg.t * string) Queue.t;  (** (origin, dst, message, mac tag) *)
  requests : (int, request) Hashtbl.t;  (** txn_id -> request *)
  pending : int Queue.t;  (** txn ids awaiting batching at the primary *)
  clients : (int, Client.t) Hashtbl.t;
  mutable next_txn : int;
  mutable crashed : int list;
  mutable completed : (int * string) list;  (** newest first *)
  mutable auth_failures : int;
  verified_reqs : unit Vcache.t;
      (** client signatures the primary has accepted, keyed by txn id: a
          view change re-batches pending requests without re-verifying *)
  (* Message-flow trace: this runtime has no simulated clock, so delivery
     order (the step index) stands in for time — one "tick" per message. *)
  obs_trace : Trace.t option;
  mutable trace_step : int;
}

(* A single pre-shared group secret, as in a permissioned deployment. *)
let group_secret = "local-runtime-k!"

let create ?(config = default_config) ?(trace = false) ?footprint ~apply () =
  if config.n < 4 then invalid_arg "Local_runtime.create: need at least 4 replicas";
  if config.batch_size < 1 then invalid_arg "Local_runtime.create: bad batch size";
  if config.exec_threads < 1 || config.exec_threads > 64 then
    invalid_arg "Local_runtime.create: exec_threads must be in [1, 64]";
  let ccfg = Config.make ~checkpoint_interval:config.checkpoint_interval ~n:config.n () in
  let rng = Rng.create config.seed in
  let client_signer = Signer.create rng Signer.Ed25519 in
  let obs_trace =
    if not trace then None
    else begin
      let tr = Trace.create (Rdb_des.Sim.create ()) in
      for id = 0 to config.n - 1 do
        Trace.set_process_name tr ~pid:id (Printf.sprintf "replica %d" id)
      done;
      Some tr
    end
  in
  {
    cfg = config;
    ccfg;
    replicas =
      Array.init config.n (fun id ->
          let rledger =
            match config.durable_dir with
            | Some dir ->
              Ledger.open_durable
                ~dir:(Filename.concat dir (Printf.sprintf "replica-%d" id))
                ~primary_id:0
            | None -> Ledger.create ~primary_id:0
          in
          let core = Pbft.create ccfg ~id in
          (* A reopened durable ledger already holds a chain: fast-forward
             the fresh core past the persisted tip so ordering resumes
             there instead of re-proposing sequence numbers the chain
             already contains.  The in-memory application state restarts
             empty on every replica alike — the chain is what survives. *)
          let tip = Ledger.next_seq rledger - 1 in
          if tip > 0 then Pbft.install_checkpoint core ~seq:tip ~state_digest:"";
          {
            id;
            core;
            rstore = Mem_store.create ();
            rledger;
            mac = Cmac.of_secret group_secret;
            applied = tip;
            seen = Vcache.create ~capacity:4096;
          });
    client_signer;
    client_verifier = Signer.verifier client_signer;
    apply;
    footprint;
    queue = Queue.create ();
    requests = Hashtbl.create 256;
    pending = Queue.create ();
    clients = Hashtbl.create 16;
    next_txn = 0;
    crashed = [];
    completed = [];
    auth_failures = 0;
    verified_reqs = Vcache.create ~capacity:4096;
    obs_trace;
    trace_step = 0;
  }

let is_crashed t id = List.mem id t.crashed

(* Cluster-level view/primary reads come from a live replica: a crashed
   replica's core is frozen in the old view. *)
let live_replica t =
  let rec find i =
    if i >= t.cfg.n then t.replicas.(0)
    else if is_crashed t i then find (i + 1)
    else t.replicas.(i)
  in
  find 0

let view t = Pbft.view (live_replica t).core

let primary t = Config.primary_of_view t.ccfg (view t)

let mac_of t msg = Cmac.mac t.replicas.(0).mac (Msg.auth_string msg)

let send t ~from ~dst msg = Queue.push (from, dst, msg, mac_of t msg) t.queue

let broadcast t ~from msg =
  Array.iter (fun (r : replica) -> if r.id <> from then send t ~from ~dst:r.id msg) t.replicas

let client_for t id =
  match Hashtbl.find_opt t.clients id with
  | Some c -> c
  | None ->
    let c = Client.create t.ccfg ~id in
    Hashtbl.add t.clients id c;
    c

(* Conflict-aware parallel execution of one batch on real OCaml domains.
   The batch is partitioned by Exec_sched into key-disjoint lanes separated
   by barrier rounds.  Mem_store is not thread-safe, so a domain never
   touches the shared store: each lane applies its requests against a
   private staging store pre-seeded with the lane's declared footprint, and
   after joining, the main thread merges every declared write key back.
   Within a round the lanes' write sets are disjoint (Exec_sched's
   invariant), so the merge order cannot matter and the final state equals
   serial in-order execution — the property [verify] audits across
   replicas.  Correctness leans on the footprint contract: [apply] must not
   read or write keys outside the declared footprint (undeclared reads see
   an empty staging slot, undeclared writes are silently dropped at the
   merge). *)
let execute_parallel t (r : replica) (batch : Msg.batch) fp_of =
  let lookup =
    Array.of_list
      (List.map
         (fun (ref_ : Msg.request_ref) -> Hashtbl.find_opt t.requests ref_.Msg.txn_id)
         batch.Msg.reqs)
  in
  let fps =
    Array.map
      (function
        | None -> { Exec_sched.reads = []; writes = [] }
        | Some req -> fp_of ~client:req.client ~payload:req.payload)
      lookup
  in
  let plan = Exec_sched.schedule ~lanes:t.cfg.exec_threads fps in
  let results = Array.make (Array.length lookup) "missing-payload" in
  let run_lane idxs () =
    let staged = Mem_store.create () in
    List.iter
      (fun i ->
        List.iter
          (fun key ->
            match Mem_store.get r.rstore key with
            | Some v -> Mem_store.put staged key v
            | None -> ())
          (fps.(i).Exec_sched.reads @ fps.(i).Exec_sched.writes))
      idxs;
    let lane_results =
      List.map
        (fun i ->
          match lookup.(i) with
          | None -> (i, "missing-payload")
          | Some req ->
            (i, t.apply ~replica:r.id staged ~client:req.client ~payload:req.payload))
        idxs
    in
    (staged, lane_results)
  in
  List.iter
    (fun (round : Exec_sched.round) ->
      let lanes = Array.to_list round |> List.filter (fun idxs -> idxs <> []) in
      (match lanes with
      | [] -> ()
      | first :: rest ->
        (* Spawn the other lanes; run the first on this domain. *)
        let spawned = List.map (fun idxs -> Domain.spawn (run_lane idxs)) rest in
        let outcomes = run_lane first () :: List.map Domain.join spawned in
        List.iter
          (fun (staged, lane_results) ->
            List.iter (fun (i, res) -> results.(i) <- res) lane_results;
            List.iter
              (fun (i, _) ->
                List.iter
                  (fun key ->
                    match Mem_store.get staged key with
                    | Some v -> Mem_store.put r.rstore key v
                    | None -> Mem_store.delete r.rstore key)
                  fps.(i).Exec_sched.writes)
              lane_results)
          outcomes))
    plan.Exec_sched.rounds;
  Array.to_list results

(* Execution: apply every request of the batch on this replica's store, then
   append a block whose linkage is the commit certificate (§4.6). *)
let execute t (r : replica) (batch : Msg.batch) =
  if batch.Msg.seq <= r.applied then
    (* Already covered by a state transfer: the snapshot included this
       batch's effects, so re-applying would double-execute. *)
    List.map (fun _ -> "state-transferred") batch.Msg.reqs
  else begin
  let results =
    match t.footprint with
    | Some fp when t.cfg.exec_threads >= 2 -> execute_parallel t r batch fp
    | _ ->
      List.map
        (fun (ref_ : Msg.request_ref) ->
          match Hashtbl.find_opt t.requests ref_.Msg.txn_id with
          | None -> "missing-payload"
          | Some req ->
            t.apply ~replica:r.id r.rstore ~client:req.client ~payload:req.payload)
        batch.Msg.reqs
  in
  let cert = List.init (Config.commit_quorum t.ccfg) (fun i -> (i, "commit-share")) in
  let block =
    {
      Block.seq = batch.Msg.seq;
      view = batch.Msg.view;
      digest = batch.Msg.digest;
      txn_count = List.length batch.Msg.reqs;
      link = Block.Certificate cert;
    }
  in
  if Ledger.next_seq r.rledger = batch.Msg.seq then Ledger.append r.rledger block;
  r.applied <- max r.applied batch.Msg.seq;
  results
  end

let rec dispatch t ~origin actions =
  List.iter
    (fun a ->
      match a with
      | Action.Broadcast m -> broadcast t ~from:origin m
      | Action.Send (dst, m) -> send t ~from:origin ~dst m
      | Action.Send_client (cid, m) -> deliver_client t cid m
      | Action.Execute batch ->
        let r = t.replicas.(origin) in
        let results = execute t r batch in
        let result_digest = Sha256.hex (String.sub (Sha256.digest (String.concat "|" results)) 0 8) in
        (* Per-request results are carried in the Reply actions the core
           emits from handle_executed; we fold the batch digest in as the
           agreed result string. *)
        dispatch t ~origin
          (Pbft.handle_executed r.core ~seq:batch.Msg.seq
             ~state_digest:(Mem_store.digest r.rstore) ~result:result_digest)
      | Action.Stable_checkpoint seq ->
        let r = t.replicas.(origin) in
        (* A replica behind the stable checkpoint (it was crashed, or joined
           late) catches up through the checkpoint-driven state-transfer
           protocol — the same [State_transfer] code path the DES cluster
           recovers through: it broadcasts a State_request, and any live
           peer holding the stable-checkpoint certificate answers with the
           retained chain segment plus its application-state export. *)
        if r.applied < seq || Ledger.next_seq r.rledger <= seq then
          broadcast t ~from:r.id (St.request r.rledger ~from:r.id)
        else begin
          Ledger.checkpoint r.rledger ~seq ~state_digest:(Mem_store.digest r.rstore);
          ignore (Ledger.prune_below r.rledger seq)
        end)
    actions

and deliver_client t cid msg =
  let c = client_for t cid in
  List.iter
    (function
      | Client.Complete { txn_id; result } -> t.completed <- (txn_id, result) :: t.completed
      | Client.Send _ | Client.Broadcast_request _ -> ())
    (Client.handle_reply c msg)

let try_batch t ~force =
  let p = primary t in
  if not (is_crashed t p) then begin
    let r = t.replicas.(p) in
    let form k =
      let txns = List.init k (fun _ -> Queue.pop t.pending) in
      (* The primary verifies each client signature before batching (§4.3):
         real verification over the stored payloads.  Verify-sharing: a
         request admitted once (then re-batched by a new primary after a
         view change) skips straight to the memo table — the stored payload
         and signature are immutable under their txn id. *)
      let all_valid =
        List.for_all
          (fun txn_id ->
            match Hashtbl.find_opt t.requests txn_id with
            | None -> false
            | Some req ->
              let key = string_of_int txn_id in
              Vcache.mem t.verified_reqs key
              ||
              let ok =
                Signer.verify t.client_verifier
                  (Printf.sprintf "%d|%s" req.client req.payload)
                  ~signature:req.signature
              in
              if ok then Vcache.add t.verified_reqs key ();
              ok)
          txns
      in
      if all_valid then begin
        (* One string representation of the whole batch, hashed once. *)
        let payloads =
          List.map
            (fun id ->
              match Hashtbl.find_opt t.requests id with
              | Some req -> req.payload
              | None -> "")
            txns
        in
        let digest = Sha256.digest (String.concat "\x00" payloads) in
        let reqs =
          List.map
            (fun txn_id ->
              let req = Hashtbl.find t.requests txn_id in
              { Msg.client = req.client; txn_id })
            txns
        in
        let wire = List.fold_left (fun acc p' -> acc + String.length p') 0 payloads in
        let _, actions = Pbft.propose r.core ~reqs ~digest ~wire_bytes:wire in
        dispatch t ~origin:p actions
      end
    in
    while Queue.length t.pending >= t.cfg.batch_size do
      form t.cfg.batch_size
    done;
    if force && not (Queue.is_empty t.pending) then form (Queue.length t.pending)
  end

let submit t ~client ~payload =
  let txn_id = t.next_txn in
  t.next_txn <- txn_id + 1;
  let signature = Signer.sign t.client_signer (Printf.sprintf "%d|%s" client payload) in
  Hashtbl.replace t.requests txn_id { client; payload; signature };
  Queue.push txn_id t.pending;
  ignore (Client.submit (client_for t client) ~txn_id);
  try_batch t ~force:false;
  txn_id

let flush t = try_batch t ~force:true

(* Donor side of a state transfer: answer with the stable-checkpoint
   certificate, the retained chain segment, and a full export of the
   application store (this runtime executes for real, so the requester
   cannot reconstruct application state from block metadata alone). *)
let serve_state t (r : replica) ~low ~requester =
  let app_export = ref [] in
  Mem_store.iter r.rstore (fun k v -> app_export := (k, v) :: !app_export);
  match
    St.serve r.rledger ~stable:(Pbft.stable_certificate r.core) ~low ~from:r.id
      ~app_seq:r.applied ~app_export:!app_export
  with
  | Some resp -> send t ~from:r.id ~dst:requester resp
  | None -> ()

(* Requester side: verify the certificate and segment, install the chain,
   rebuild the application store from the export and fast-forward the core.
   A donor exactly level with our ledger (possible when a durable chain
   survived a restart that the in-memory store did not) cannot advance the
   ledger, but its verified export still restores the application state. *)
let admit_state t (r : replica) msg =
  let quorum = Config.commit_quorum t.ccfg in
  let import ~app_seq ~app_export =
    if app_seq > r.applied then begin
      let st = Mem_store.create () in
      List.iter (fun (k, v) -> Mem_store.put st k v) app_export;
      r.rstore <- st;
      r.applied <- app_seq
    end
  in
  let install_core ~seq ~state_digest = Pbft.install_checkpoint r.core ~seq ~state_digest in
  if not (St.admit ~commit_quorum:quorum r.rledger ~install_core ~import msg) then
    match msg with
    | Msg.State_response { last_stable; state_digest; cert; blocks; app_seq; app_export; _ }
      -> (
      match St.verify ~commit_quorum:quorum ~last_stable ~state_digest ~cert ~blocks with
      | Ok () when app_seq > r.applied ->
        import ~app_seq ~app_export;
        install_core ~seq:last_stable ~state_digest
      | Ok () | Error _ -> ())
    | _ -> ()

let step t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some (origin, dst, msg, tag) ->
    (* A crash silences the replica's not-yet-delivered outbound too: its
       queued messages model sends that never made it onto the wire. *)
    if not (is_crashed t origin) && not (is_crashed t dst) then begin
      (match t.obs_trace with
      | Some tr ->
        t.trace_step <- t.trace_step + 1;
        Trace.complete tr ~pid:dst ~tid:0 ~name:(Msg.type_name msg)
          ~ts:(t.trace_step * 1000) ~dur:1000
      | None -> ());
      let r = t.replicas.(dst) in
      (* Verify-sharing on the MAC check: the key covers the authenticated
         content *and* the tag, so only an exact re-delivery (retransmission
         or duplicate) hits; a forged tag always reaches Cmac.verify. *)
      let key = Msg.auth_string msg ^ "\x00" ^ tag in
      let authentic =
        Vcache.mem r.seen key
        ||
        let ok = Cmac.verify r.mac (Msg.auth_string msg) ~tag in
        if ok then Vcache.add r.seen key ();
        ok
      in
      if authentic then begin
        match msg with
        (* State transfer moves ledger segments and application state, which
           the pure core never holds: both sides are handled at this (host)
           level, exactly as the DES cluster does. *)
        | Msg.State_request { low; from } -> serve_state t r ~low ~requester:from
        | Msg.State_response _ -> admit_state t r msg
        | _ -> dispatch t ~origin:dst (Pbft.handle_message r.core msg)
      end
      else t.auth_failures <- t.auth_failures + 1
    end;
    true

let run t =
  while step t do
    ()
  done

let crash t id =
  if id < 0 || id >= t.cfg.n then invalid_arg "Local_runtime.crash: no such replica";
  if not (List.mem id t.crashed) then t.crashed <- id :: t.crashed

let recover t id =
  if id < 0 || id >= t.cfg.n then invalid_arg "Local_runtime.recover: no such replica";
  t.crashed <- List.filter (fun c -> c <> id) t.crashed;
  (* The recovered replica asks for a state transfer right away instead of
     waiting out a full checkpoint interval.  If no peer holds a stable
     certificate yet the request goes unanswered, and the next stable
     checkpoint its own core observes triggers another one. *)
  let r = t.replicas.(id) in
  broadcast t ~from:id (St.request r.rledger ~from:id)

let applied t id = t.replicas.(id).applied

let close t =
  Array.iter (fun (r : replica) -> Ledger.close r.rledger) t.replicas
(* Durable backends flush their WAL and persist counters on close, so a
   later [create] over the same [durable_dir] resumes at the tip. *)

let force_view_change t =
  Array.iter
    (fun (r : replica) ->
      if not (is_crashed t r.id) then dispatch t ~origin:r.id (Pbft.suspect_primary r.core))
    t.replicas;
  run t;
  (* Requests whose replies never reached the client — still pending at the
     old primary, or admitted into a batch the crash lost — are re-batched
     by the new primary (in a networked deployment clients retransmit; here
     the runtime still holds the payloads).  Completed transactions are
     never re-proposed (exactly-once), and verify-sharing means a re-batched
     admitted request costs a memo-table probe, not a second signature
     verification. *)
  let done_ = Hashtbl.create 64 in
  List.iter (fun (id, _) -> Hashtbl.replace done_ id ()) t.completed;
  Queue.clear t.pending;
  for txn_id = 0 to t.next_txn - 1 do
    if Hashtbl.mem t.requests txn_id && not (Hashtbl.mem done_ txn_id) then
      Queue.push txn_id t.pending
  done;
  try_batch t ~force:false

let completed t = List.rev t.completed

let store t id = t.replicas.(id).rstore

let ledger t id = t.replicas.(id).rledger

let last_executed t id = Pbft.last_executed t.replicas.(id).core

let auth_failures t = t.auth_failures

let verify_cache_hits t =
  Array.fold_left
    (fun acc (r : replica) -> acc + Vcache.hits r.seen)
    (Vcache.hits t.verified_reqs) t.replicas

let trace_json t = match t.obs_trace with Some tr -> Some (Trace.to_string tr) | None -> None

let inject_forged_message t ~dst =
  let msg = Msg.Prepare { view = view t; seq = 999_999; digest = "forged"; from = 0 } in
  (* The adversary is not a replica: route around the origin-crash drop by
     naming a live replica as the nominal origin. *)
  let origin = (live_replica t).id in
  Queue.push (origin, dst, msg, String.make 16 '\x00') t.queue

let verify t =
  let live = Array.to_list t.replicas |> List.filter (fun r -> not (is_crashed t r.id)) in
  match live with
  | [] -> Error "no live replicas"
  | first :: rest ->
    let cum0 = Ledger.cumulative_digest first.rledger in
    let state0 = Mem_store.digest first.rstore in
    let rec check = function
      | [] -> Ok ()
      | (r : replica) :: more ->
        if not (String.equal (Ledger.cumulative_digest r.rledger) cum0) then
          Error (Printf.sprintf "replica %d ledger diverged from replica %d" r.id first.id)
        else if not (String.equal (Mem_store.digest r.rstore) state0) then
          Error (Printf.sprintf "replica %d state diverged from replica %d" r.id first.id)
        else begin
          match Ledger.verify r.rledger ~check_certificate:(fun ~seq:_ ~digest:_ shares ->
                    List.length shares >= Config.commit_quorum t.ccfg)
          with
          | Ok () -> check more
          | Error e -> Error (Printf.sprintf "replica %d ledger: %s" r.id e)
        end
    in
    check rest

(** Experiment parameters for a ResilientDB cluster (or sharded) run.

    Defaults reproduce the paper's §5.1 standard setup: 16 replicas on
    8-core machines, 80K clients, batches of 100 transactions, checkpoints
    every 10K transactions, ED25519 client signatures with CMAC+AES between
    replicas, in-memory storage, one worker-thread, two batch-threads, one
    execute-thread.

    {b Construction is structured.}  The resolved record {!t} is private:
    readers keep their flat [p.Params.batch_size] accesses, but writers
    must assemble a configuration from the typed sub-records —
    {!Consensus}, {!Workload}, {!Exec}, {!Faults}, {!Durability},
    {!Topology}, {!Obs} — via {!make}, or derive one from an existing
    configuration with the [map_*]/[with_*] updaters.  Nine PRs of flag
    accretion made the flat record a dumping ground where nothing said
    which knobs belong together; the sub-records are that statement, the
    compiler enforces it (a flat record literal no longer type-checks
    outside this module), and {!Spec} is the single table the CLI flags
    and campaign axis labels derive from.  {!Compat.make} keeps the old
    flat keyword-argument surface alive, deprecated, for one release. *)

type protocol = Pbft | Zyzzyva | Hotstuff

val protocol_name : protocol -> string
val protocol_of_name : string -> protocol option

(** Ordering-layer shape: who proposes, how big the batches are, which
    authenticators protect which hop, and the view-change clocks. *)
module Consensus : sig
  type t = {
    protocol : protocol;
    n : int;  (** replicas per consensus group *)
    instances : int;
        (** k concurrent PBFT consensus instances over a round-robin-
            partitioned sequence space ({!Rdb_consensus.Multi_pbft});
            1 = classic single-primary; > 1 requires [protocol = Pbft] *)
    batch_size : int;
    max_inflight_batches : int;
        (** admission control at the primary: batches proposed but not yet
            completed by clients (PBFT's high-water mark) *)
    checkpoint_txns : int;  (** transactions between checkpoints *)
    view_timeout : Rdb_des.Sim.time;
        (** how long a backup with unserved demand waits for execution
            progress before suspecting the primary *)
    zyzzyva_timeout : Rdb_des.Sim.time;
        (** client wait before falling back to a commit certificate *)
    client_scheme : Rdb_crypto.Signer.scheme;
    replica_scheme : Rdb_crypto.Signer.scheme;
    reply_scheme : Rdb_crypto.Signer.scheme;
    verify_sharing : bool;
        (** Q2: memoize digests and accepted verifications in a bounded
            per-replica {!Rdb_crypto.Verify_cache}; off = the
            protocol-centric re-validate-everywhere ablation *)
    verify_cache_capacity : int;
    use_buffer_pool : bool;  (** §4.8 object recycling; off = ablation *)
  }

  val default : t

  val v :
    ?protocol:protocol ->
    ?n:int ->
    ?instances:int ->
    ?batch_size:int ->
    ?max_inflight_batches:int ->
    ?checkpoint_txns:int ->
    ?view_timeout:Rdb_des.Sim.time ->
    ?zyzzyva_timeout:Rdb_des.Sim.time ->
    ?client_scheme:Rdb_crypto.Signer.scheme ->
    ?replica_scheme:Rdb_crypto.Signer.scheme ->
    ?reply_scheme:Rdb_crypto.Signer.scheme ->
    ?verify_sharing:bool ->
    ?verify_cache_capacity:int ->
    ?use_buffer_pool:bool ->
    unit ->
    t
end

(** Offered load: who submits, and what one transaction looks like on the
    wire and to the execution engine. *)
module Workload : sig
  type t = {
    clients : int;  (** closed-loop client population per consensus group *)
    ops_per_txn : int;
    txn_wire_bytes : int;
    preprepare_payload_bytes : int;  (** extra Pre-prepare payload (Fig. 12) *)
  }

  val default : t

  val v :
    ?clients:int ->
    ?ops_per_txn:int ->
    ?txn_wire_bytes:int ->
    ?preprepare_payload_bytes:int ->
    unit ->
    t
end

(** Per-replica machine model and the execution pipeline shape. *)
module Exec : sig
  type t = {
    cores : int;
    batch_threads : int;  (** B; 0 = the worker-thread batches (Fig. 8) *)
    execute_threads : int;
        (** E; 0 = worker executes, 1 = the paper's execute-thread, >= 2 =
            conflict-aware parallel execution lanes *)
    exec_records : int;
        (** keyspace size execution footprints are drawn from (conflict knob) *)
    exec_force_parallel : bool;
        (** route E = 1 through the lane machinery (ablation knob) *)
    sqlite : bool;  (** off-memory storage for execution (Fig. 14) *)
    cost : Rdb_crypto.Cost_model.t;
  }

  val default : t

  val v :
    ?cores:int ->
    ?batch_threads:int ->
    ?execute_threads:int ->
    ?exec_records:int ->
    ?exec_force_parallel:bool ->
    ?sqlite:bool ->
    ?cost:Rdb_crypto.Cost_model.t ->
    unit ->
    t
end

(** Everything that goes wrong: steady-state link degradation, replicas
    down from the start, the timed {!Nemesis} schedule, and the client
    retransmission clock that turns faults into recoveries. *)
module Faults : sig
  type t = {
    crashed_backups : int;  (** backups crashed at t=0 (Fig. 17) *)
    loss_rate : float;
    duplication_rate : float;
    extra_jitter : Rdb_des.Sim.time;
    nemesis : Nemesis.schedule;
    client_timeout : Rdb_des.Sim.time;
        (** client retransmission timeout (exponential backoff); 0 disables *)
  }

  val default : t

  val v :
    ?crashed_backups:int ->
    ?loss_rate:float ->
    ?duplication_rate:float ->
    ?extra_jitter:Rdb_des.Sim.time ->
    ?nemesis:Nemesis.schedule ->
    ?client_timeout:Rdb_des.Sim.time ->
    unit ->
    t
end

(** Whether state survives process death, and where it lives. *)
module Durability : sig
  type t = {
    durable : bool;
        (** back each ledger with the WAL + B-tree {!Rdb_chain.Block_store} *)
    data_dir : string option;
        (** durable backend directory; [None] = fresh temp dir per run *)
  }

  val default : t
  val v : ?durable:bool -> ?data_dir:string option -> unit -> t
end

(** Where the machines are: the flat LAN every group runs on, plus the
    sharded scale-out shape (group count, cross-shard traffic fraction,
    region placement). *)
module Topology : sig
  type t = {
    bandwidth_gbps : float;  (** intra-group link bandwidth *)
    latency : Rdb_des.Sim.time;  (** intra-group one-way propagation *)
    jitter : Rdb_des.Sim.time;
    client_machines : int;  (** hosts the client population is spread over *)
    shards : int;
        (** S independent consensus groups over a partitioned keyspace
            ({!Rdb_shard}); 1 = the classic single-group deployment *)
    cross_shard_fraction : float;
        (** fraction of transactions touching a second shard (2PC-over-BFT
            commit path), in [\[0, 1\]]; meaningful when [shards > 1] *)
    regions : Rdb_net.Topology.t option;
        (** shard-to-region placement and inter-region links; [None] = all
            shards in one site (no cross-shard propagation charge) *)
  }

  val default : t

  val v :
    ?bandwidth_gbps:float ->
    ?latency:Rdb_des.Sim.time ->
    ?jitter:Rdb_des.Sim.time ->
    ?client_machines:int ->
    ?shards:int ->
    ?cross_shard_fraction:float ->
    ?regions:Rdb_net.Topology.t option ->
    unit ->
    t
end

(** Observability output: the master trace switch and its destinations. *)
module Obs : sig
  type t = {
    trace : bool;
    trace_out : string option;  (** Chrome [trace_event] JSON destination *)
    trace_csv : string option;  (** time-series CSV destination *)
    trace_interval : Rdb_des.Sim.time;
    trace_max_events : int;
  }

  val default : t

  val v :
    ?trace:bool ->
    ?trace_out:string option ->
    ?trace_csv:string option ->
    ?trace_interval:Rdb_des.Sim.time ->
    ?trace_max_events:int ->
    unit ->
    t
end

(** The resolved configuration: one flat read surface over the structured
    sub-records.  Private — read fields freely, construct via {!make} /
    {!Compat.make}, update via the [map_*]/[with_*] functions. *)
type t = private {
  protocol : protocol;
  n : int;
  clients : int;
  client_machines : int;
  batch_size : int;
  ops_per_txn : int;
  txn_wire_bytes : int;
  preprepare_payload_bytes : int;
  client_scheme : Rdb_crypto.Signer.scheme;
  replica_scheme : Rdb_crypto.Signer.scheme;
  reply_scheme : Rdb_crypto.Signer.scheme;
  sqlite : bool;
  durable : bool;
  data_dir : string option;
  cores : int;
  instances : int;
  batch_threads : int;
  execute_threads : int;
  exec_records : int;
  exec_force_parallel : bool;
  checkpoint_txns : int;
  max_inflight_batches : int;
  crashed_backups : int;
  loss_rate : float;
  duplication_rate : float;
  extra_jitter : Rdb_des.Sim.time;
  nemesis : Nemesis.schedule;
  client_timeout : Rdb_des.Sim.time;
  view_timeout : Rdb_des.Sim.time;
  use_buffer_pool : bool;
  verify_sharing : bool;
  verify_cache_capacity : int;
  zyzzyva_timeout : Rdb_des.Sim.time;
  bandwidth_gbps : float;
  latency : Rdb_des.Sim.time;
  jitter : Rdb_des.Sim.time;
  shards : int;
  cross_shard_fraction : float;
  regions : Rdb_net.Topology.t option;
  cost : Rdb_crypto.Cost_model.t;
  warmup : Rdb_des.Sim.time;
  measure : Rdb_des.Sim.time;
  seed : int64;
  trace : bool;
  trace_out : string option;
  trace_csv : string option;
  trace_interval : Rdb_des.Sim.time;
  trace_max_events : int;
}

val default : t
(** [make ()] — the paper's §5.1 setup. *)

val make :
  ?consensus:Consensus.t ->
  ?workload:Workload.t ->
  ?exec:Exec.t ->
  ?faults:Faults.t ->
  ?durability:Durability.t ->
  ?topology:Topology.t ->
  ?obs:Obs.t ->
  ?warmup:Rdb_des.Sim.time ->
  ?measure:Rdb_des.Sim.time ->
  ?seed:int64 ->
  unit ->
  t
(** Assemble a configuration from sub-records (each defaulting to its
    module's [default]) plus the run window and seed. *)

(** {2 Projections} — recover the sub-record view of a resolved config. *)

val consensus : t -> Consensus.t
val workload : t -> Workload.t
val exec : t -> Exec.t
val faults : t -> Faults.t
val durability : t -> Durability.t
val topology : t -> Topology.t
val obs : t -> Obs.t

(** {2 Updates} — [map_X f p] rebuilds [p] with its [X] sub-record mapped. *)

val map_consensus : (Consensus.t -> Consensus.t) -> t -> t
val map_workload : (Workload.t -> Workload.t) -> t -> t
val map_exec : (Exec.t -> Exec.t) -> t -> t
val map_faults : (Faults.t -> Faults.t) -> t -> t
val map_durability : (Durability.t -> Durability.t) -> t -> t
val map_topology : (Topology.t -> Topology.t) -> t -> t
val map_obs : (Obs.t -> Obs.t) -> t -> t

(** Single-field updaters for the commonly swept axes. *)

val with_protocol : protocol -> t -> t
val with_n : int -> t -> t
val with_instances : int -> t -> t
val with_batch_size : int -> t -> t
val with_clients : int -> t -> t
val with_execute_threads : int -> t -> t
val with_batch_threads : int -> t -> t
val with_cores : int -> t -> t
val with_crashed_backups : int -> t -> t
val with_nemesis : Nemesis.schedule -> t -> t
val with_view_timeout : Rdb_des.Sim.time -> t -> t
val with_client_timeout : Rdb_des.Sim.time -> t -> t
val with_durable : bool -> t -> t
val with_data_dir : string option -> t -> t
val with_shards : int -> t -> t
val with_cross_shard_fraction : float -> t -> t
val with_seed : int64 -> t -> t
val with_windows : warmup:Rdb_des.Sim.time -> measure:Rdb_des.Sim.time -> t -> t
val with_trace : bool -> t -> t

(** {2 Derived quantities} *)

val f : t -> int
(** Tolerated Byzantine replicas per group: [(n - 1) / 3]. *)

val exec_lanes : t -> int
(** Conflict-aware execute lanes this configuration runs (0 = classic). *)

val obs_enabled : t -> bool
(** Whether any observability output was requested. *)

val checkpoint_interval : t -> int
(** Sequence numbers between checkpoints. *)

val validate : t -> unit
(** Raises [Invalid_argument] on an inconsistent configuration. *)

(** The deprecated flat constructor: every field as an optional keyword
    argument over {!default}, exactly the surface the flat record literal
    used to give.  Kept for one release so out-of-tree callers migrate on
    their own schedule; in-tree code must use {!make} (CI greps for new
    [Compat] uses outside this module and its test). *)
module Compat : sig
  val make :
    ?protocol:protocol ->
    ?n:int ->
    ?clients:int ->
    ?client_machines:int ->
    ?batch_size:int ->
    ?ops_per_txn:int ->
    ?txn_wire_bytes:int ->
    ?preprepare_payload_bytes:int ->
    ?client_scheme:Rdb_crypto.Signer.scheme ->
    ?replica_scheme:Rdb_crypto.Signer.scheme ->
    ?reply_scheme:Rdb_crypto.Signer.scheme ->
    ?sqlite:bool ->
    ?durable:bool ->
    ?data_dir:string option ->
    ?cores:int ->
    ?instances:int ->
    ?batch_threads:int ->
    ?execute_threads:int ->
    ?exec_records:int ->
    ?exec_force_parallel:bool ->
    ?checkpoint_txns:int ->
    ?max_inflight_batches:int ->
    ?crashed_backups:int ->
    ?loss_rate:float ->
    ?duplication_rate:float ->
    ?extra_jitter:Rdb_des.Sim.time ->
    ?nemesis:Nemesis.schedule ->
    ?client_timeout:Rdb_des.Sim.time ->
    ?view_timeout:Rdb_des.Sim.time ->
    ?use_buffer_pool:bool ->
    ?verify_sharing:bool ->
    ?verify_cache_capacity:int ->
    ?zyzzyva_timeout:Rdb_des.Sim.time ->
    ?bandwidth_gbps:float ->
    ?latency:Rdb_des.Sim.time ->
    ?jitter:Rdb_des.Sim.time ->
    ?shards:int ->
    ?cross_shard_fraction:float ->
    ?regions:Rdb_net.Topology.t option ->
    ?cost:Rdb_crypto.Cost_model.t ->
    ?warmup:Rdb_des.Sim.time ->
    ?measure:Rdb_des.Sim.time ->
    ?seed:int64 ->
    ?trace:bool ->
    ?trace_out:string option ->
    ?trace_csv:string option ->
    ?trace_interval:Rdb_des.Sim.time ->
    ?trace_max_events:int ->
    unit ->
    t
  [@@ocaml.deprecated "assemble configurations with Params.make and the typed sub-records"]
end

(** The one table the CLI and the campaign derive from: every tunable axis
    with its canonical {!Rdb_obs.Axis} name, documentation string, and a
    string getter/setter over {!t}.  [resdb_sim] renders each entry as a
    flag ([Axis.to_flag] spelling plus the listed aliases, [--help] text
    from [doc]); the campaign runner spells cell keys and report fields
    with the same names — so the three surfaces cannot drift. *)
module Spec : sig
  type entry = {
    key : string;  (** canonical axis name (an {!Rdb_obs.Axis} value) *)
    aliases : string list;  (** extra CLI names, e.g. ["p"] for protocol *)
    doc : string;
    bool_flag : bool;  (** render as a presence flag on the CLI *)
    get : t -> string;
    set : string -> t -> (t, string) result;
  }

  val entries : entry list
  val find : string -> entry option
  (** Look an entry up by canonical name. *)

  val apply : (string * string) list -> t -> (t, string) result
  (** Fold [(key, value)] assignments over a configuration, left to
      right; fails on an unknown key or an unparseable value. *)
end

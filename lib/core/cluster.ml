(** The ResilientDB cluster under simulation.

    This module assembles the whole system of the paper's Fig. 5/6: per
    replica, the input-threads, batch-threads ([B]), worker-thread,
    execute-thread ([E]), output-threads and checkpoint-thread are
    {!Rdb_replica.Stage} pipelines over a core-limited CPU; the pure
    {!Rdb_consensus} protocol cores make the protocol decisions; the
    {!Rdb_net} transport carries sized messages; and a closed-loop client
    population (the paper's up-to-80K clients on a handful of machines)
    drives load and measures end-to-end latency.

    Everything stochastic flows from one seed: runs are bit-reproducible. *)

module Sim = Rdb_des.Sim
module Rng = Rdb_des.Rng
module Cpu = Rdb_des.Cpu
module Stats = Rdb_des.Stats
module Stage = Rdb_replica.Stage
module Net = Rdb_net.Net
module Signer = Rdb_crypto.Signer
module Cost = Rdb_crypto.Cost_model
module Vcache = Rdb_crypto.Verify_cache
module Msg = Rdb_consensus.Message
module Action = Rdb_consensus.Action
module Config = Rdb_consensus.Config
module Core = Rdb_consensus.Core
module St = Rdb_consensus.State_transfer
module Block = Rdb_chain.Block
module Ledger = Rdb_chain.Ledger
module Trace = Rdb_obs.Trace
module Breakdown = Rdb_obs.Breakdown
module Series = Rdb_obs.Series
module Stage_name = Rdb_obs.Stage_name
module Exec_sched = Rdb_replica.Exec_sched
module Ycsb = Rdb_workload.Ycsb
module Zipf = Rdb_workload.Zipf

(* ---- wire-level events --------------------------------------------------- *)

(** How a byzantine sender corrupted a protocol message in flight. *)
type tamper =
  | Forged_mac  (** the MAC/signature does not verify *)
  | Corrupted_digest
      (** the MAC verifies (the attacker authenticates its own garbage) but
          the carried batch digest does not match the batch content *)

type net_msg =
  | To_replica of int * Msg.t
      (** (consensus instance, message): multi-primary deployments tag
          protocol traffic with the instance it belongs to (always 0 for a
          single-instance run) *)
  | Tampered of { kind : tamper; inner : net_msg }
      (** a byzantine sender's corrupted copy of a message (protocol
          traffic or client-bound replies); the receiver pays the full
          verification price, rejects it before the consensus core or the
          client's reply quorum ever sees it, and never memoizes the
          failure *)
  | Client_txns of { txn_ids : int array }
      (** a group of independent single-transaction client requests arriving
          together (clients are simulated in aggregate; costs are charged
          per transaction) *)
  | Replies of {
      replica : int;
      view : int;
      seq : int;
      key_digest : string;  (** result digest (PBFT) or history (Zyzzyva) *)
      txn_ids : int array;
      speculative : bool;
    }
  | Certs of { seq : int; history : string; count : int }
      (** Zyzzyva commit certificates from [count] clients of one batch *)
  | Cert_acks of { replica : int; seq : int; history : string; count : int }

(* ---- per-replica host ----------------------------------------------------- *)

type host = {
  id : int;
  cpu : Cpu.t;
  input_client : Stage.t;
  input_replica : Stage.t;
  output : Stage.t;
  batch_stage : Stage.t option;  (** None when B = 0: the worker batches *)
  worker : Stage.t;  (** consensus instance 0 (the only one when k = 1) *)
  extra_workers : Stage.t array;
      (** multi-primary: one worker-thread per additional consensus instance
          (index i serves instance i+1), so the k ordering streams stop
          sharing the single serial worker — the whole point of the
          parallelism.  Empty when k = 1 *)
  exec_stage : Stage.t option;  (** None when E = 0: the worker executes *)
  exec_lanes : Stage.t array;
      (** conflict-aware parallel execution (E >= 2, or E = 1 under
          [exec_force_parallel]): one execute stage per lane
          ("execute-0" .. "execute-(E-1)"), fed round by round from the
          {!Rdb_replica.Exec_sched} plan.  Empty on the classic pipeline,
          where [exec_stage] carries the single execute-thread *)
  exec_sched_stage : Stage.t option;
      (** the lane dispatcher ("exec-sched"): dependency-analyzes each
          committed block, re-validates it at the execute boundary, and
          assembles the block after the last round.  [Some] iff
          [exec_lanes] is non-empty *)
  exec_queue : Msg.batch Queue.t;
      (** blocks committed (in global order) but not yet handed to the
          lanes: blocks execute one at a time, rounds barrier inside a
          block, so in-order ledger appends are preserved by construction *)
  mutable exec_busy : bool;  (** a block currently owns the lanes *)
  checkpoint_stage : Stage.t;
  core : Core.t;  (** the protocol state machine, behind {!Rdb_consensus.Core} *)
  pending : int Queue.t;  (** primary: transactions awaiting batching *)
  mutable flush_scheduled : bool;
  mutable batch_jobs_inflight : int;
      (** batch jobs queued or running; bounded so batching interleaves with
          the rest of the stage's work instead of monopolising it (critical
          when B = 0 and the worker-thread does everything) *)
  ledger : Ledger.t;
  cert_counts : (int, int) Hashtbl.t;  (** seq -> clients awaiting cert acks *)
  mutable batch_counter : int;
  (* ---- liveness under faults ---- *)
  mutable seen_view : int;  (** last view observed on this host's core *)
  mutable vc_timer : Sim.event option;
      (** backup: armed while retransmitted demand is unserved; fires a
          view-change suspicion *)
  mutable last_exec_seen : int;
      (** execution watermark at the last demand-timer check: distinguishes a
          slow-but-live pipeline from a stalled one *)
  mutable nudged : bool;
      (** one vote-retransmission round has run since the last progress;
          the next stalled check escalates to a view change *)
  (* ---- state transfer ---- *)
  mutable st_outstanding : bool;
      (** a State_request is in flight: re-broadcast on the demand-timer
          cadence until a response lands (or the retry budget runs out) *)
  mutable st_tries : int;  (** re-broadcasts left for the outstanding request *)
  executed_txns : (int, unit) Hashtbl.t;
      (** transactions this host has executed (dedups retransmissions) *)
  inflight_txns : (int, unit) Hashtbl.t;
      (** transactions batched here but not yet executed *)
  (* ---- verify-sharing (Q2) ---- *)
  vcache : unit Vcache.t;
      (** signature/MAC verifications this host has accepted, keyed by the
          full authenticated content *)
  dcache : unit Vcache.t;
      (** batch digests this host has computed or validated *)
}

(* ---- client-pool bookkeeping ---------------------------------------------- *)

(* ---- observability -------------------------------------------------------- *)

(* Per-transaction span marks, first-write-wins (-1 = unset): with several
   replicas executing the same batch, the earliest occurrence of each phase
   transition is the one the client-visible latency decomposes over. *)
type mark = {
  mutable m_proposed : Sim.time;  (** batched into a proposed consensus instance *)
  mutable m_exec_enq : Sim.time;  (** first Execute action routed *)
  mutable m_executed : Sim.time;  (** first execution job finished *)
}

type obs = {
  trace : Trace.t;
  bd : Breakdown.t;
  span_batch : Stats.t;  (** client submit -> batch proposed *)
  span_consensus : Stats.t;  (** proposed -> Execute action emitted *)
  span_execute : Stats.t;  (** Execute emitted -> execution done *)
  span_reply : Stats.t;  (** execution done -> client completion *)
  marks : (int, mark) Hashtbl.t;  (** txn id -> span marks *)
  mutable series : Series.t option;  (** tied after the network exists *)
}

type batch_track = {
  bt_txn_ids : int array;
  mutable reply_mask : int;
  mutable completed : bool;
  mutable zyz_timer : Sim.event option;
  mutable certified : bool;
  mutable ack_mask : int;
}

type t = {
  p : Params.t;
  sim : Sim.t;
  rng : Rng.t;
  cfg : Config.t;
  mutable net : net_msg Net.t option;  (** tied after creation *)
  hosts : host array;
  client_nodes : int array;  (** network node ids of the client machines *)
  mutable client_rr : int;
  inst_views : int array;
      (** per consensus instance, the highest view seen in any reply: the
          clients' primary hint for that instance (length = instances) *)
  mutable submit_rr : int;  (** round-robin instance cursor for submissions *)
  (* client pool *)
  submit_time : (int, Sim.time) Hashtbl.t;
  batches : (int * int * string, batch_track) Hashtbl.t;
  mutable next_txn : int;
  mutable proposed_batches : int;
  mutable completed_batches : int;
  (* fault handling *)
  retrans_enabled : bool;
  mutable client_view : int;  (** highest view seen in any reply: primary hint *)
  mutable max_view : int;  (** highest view reached by any host *)
  mutable retransmissions : int;
  mutable duplicate_completions : int;
  mutable primary_crash_at : Sim.time option;
  mutable crash_view : int;  (** view at the moment the primary crashed *)
  mutable recovered_at : Sim.time option;
  (* byzantine adversary (the nemesis interposition layer) *)
  behaviors : Nemesis.behavior array;
      (** per replica, the adversarial behavior currently installed on its
          outbound links (index < n; honest by default) *)
  behavior_gen : int array;
      (** bumped on every behavior change so a superseded view-change spam
          loop notices and stops rescheduling itself *)
  mutable rejected_forgeries : int;
      (** tampered messages rejected at receivers, cluster-wide *)
  mutable spam_salt : int;  (** varies the view numbers a spammer fabricates *)
  (* state transfer *)
  mutable state_transfers : int;  (** successful installs, cluster-wide *)
  mutable st_first_request : Sim.time option;  (** first State_request sent *)
  mutable st_caught_up : Sim.time option;  (** first successful install *)
  data_root : string option;  (** durable backends live under here (per replica) *)
  footprint_of : (int -> Exec_sched.footprint) Lazy.t;
      (** the YCSB read/write footprint of a transaction — a pure function
          of its id (every replica derives the identical footprint, the
          root of the deterministic-schedule argument).  Lazy because the
          Zipf table costs O(exec_records) to build and only parallel
          execution needs it *)
  (* observability; None unless Params.obs_enabled *)
  obs : obs option;
  (* measurement *)
  latencies : Stats.t;
  mutable on_complete : (int array -> unit) option;
      (** replaces the closed-loop resubmission when set: fresh completions
          are handed to the sink (a shard deployment's routing loop)
          instead of being resubmitted locally *)
  mutable measuring : bool;
  mutable completed_txns : int;
  mutable total_completed : int;  (** fresh completions since start (any window) *)
  mutable completed_ops : int;
  mutable fast_txns : int;
  mutable cert_txns : int;
  mutable blocks_at_start : int;
}

let net t = match t.net with Some n -> n | None -> assert false

let primary_id = 0

let txn_request_bytes p =
  p.Params.txn_wire_bytes + Signer.signature_size p.Params.client_scheme

let reply_bytes p =
  64 + Signer.signature_size p.Params.reply_scheme

let cert_bytes p ~quorum =
  96 + (quorum * (Signer.signature_size p.Params.client_scheme + 8))

let batch_wire_bytes p k = (k * p.Params.txn_wire_bytes) + p.Params.preprepare_payload_bytes

(* ---- cost helpers --------------------------------------------------------- *)

(* Signing cost charged on the stage that creates a message.  MAC schemes
   authenticate per receiver (a MAC authenticator vector, as in PBFT), so a
   broadcast pays n-1 MAC computations; digital signatures are
   receiver-independent. *)
let sign_cost_for p ~dests scheme =
  let c = Cost.sign_cost p.Params.cost scheme in
  match scheme with
  | Signer.Cmac_aes -> c * dests
  | Signer.No_sig | Signer.Ed25519 | Signer.Rsa -> c

let scheme_of_message p (m : Msg.t) =
  match m with
  | Msg.Reply _ | Msg.Spec_reply _ | Msg.Local_commit _ -> p.Params.reply_scheme
  | _ -> p.Params.replica_scheme

(* ---- execution footprints -------------------------------------------------- *)

(* The read/write footprint of a transaction, derived as the YCSB workload
   generator draws it: [ops_per_txn] Zipfian keys over the active record
   set (write-only — the paper's blockchain mix, §5.1).  Purity is the
   load-bearing property: the footprint depends only on the transaction id
   and the run parameters — never on replica-local state or the cluster
   RNG — so all n replicas derive identical footprints from an identical
   committed block and therefore compute identical lane schedules. *)
let make_footprint_fn (p : Params.t) : int -> Exec_sched.footprint =
  let zipf = Zipf.create ~n:p.Params.exec_records () in
  fun txn_id ->
    (* A private RNG per transaction, seeded from the id: deterministic,
       with adjacent ids still getting decorrelated key draws. *)
    let rng = Rng.create (Int64.logxor (Int64.of_int txn_id) 0x5265736442457865L) in
    let writes =
      List.init p.Params.ops_per_txn (fun _ -> Ycsb.key_of_index (Zipf.sample zipf rng))
    in
    { Exec_sched.reads = []; writes }

(* ---- forward declarations via refs --------------------------------------- *)

(* The delivery callback needs the cluster; the cluster needs the network.
   We tie the knot with a mutable option. *)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* ---- observability helpers ------------------------------------------------ *)

(* First-write-wins span marks.  Called only on the (rare relative to the
   fast path) batch-boundary events, and only when tracing is on. *)

let obs_mark_proposed t txns =
  match t.obs with
  | None -> ()
  | Some o ->
    let now = Sim.now t.sim in
    Array.iter
      (fun id ->
        match Hashtbl.find_opt o.marks id with
        | Some m -> if m.m_proposed < 0 then m.m_proposed <- now
        | None ->
          Hashtbl.add o.marks id { m_proposed = now; m_exec_enq = -1; m_executed = -1 })
      txns

let obs_mark_exec_enqueued t (reqs : Msg.request_ref list) =
  match t.obs with
  | None -> ()
  | Some o ->
    let now = Sim.now t.sim in
    List.iter
      (fun (r : Msg.request_ref) ->
        match Hashtbl.find_opt o.marks r.Msg.txn_id with
        | Some m -> if m.m_exec_enq < 0 then m.m_exec_enq <- now
        | None -> ())
      reqs

let obs_mark_executed t (reqs : Msg.request_ref list) =
  match t.obs with
  | None -> ()
  | Some o ->
    let now = Sim.now t.sim in
    List.iter
      (fun (r : Msg.request_ref) ->
        match Hashtbl.find_opt o.marks r.Msg.txn_id with
        | Some m -> if m.m_executed < 0 then m.m_executed <- now
        | None -> ())
      reqs

(* Record the per-phase latency split for freshly completed transactions and
   drop their marks.  Only transactions whose marks are complete and in
   order contribute (in a healthy traced run that is all of them), so the
   four phases telescope exactly to the end-to-end latency. *)
let obs_complete t fresh =
  match t.obs with
  | None -> ()
  | Some o ->
    let now = Sim.now t.sim in
    Array.iter
      (fun id ->
        (if t.measuring then
           match (Hashtbl.find_opt o.marks id, Hashtbl.find_opt t.submit_time id) with
           | Some m, Some s
             when m.m_proposed >= s && m.m_exec_enq >= m.m_proposed
                  && m.m_executed >= m.m_exec_enq && now >= m.m_executed ->
             Stats.add o.span_batch (Sim.to_seconds (m.m_proposed - s));
             Stats.add o.span_consensus (Sim.to_seconds (m.m_exec_enq - m.m_proposed));
             Stats.add o.span_execute (Sim.to_seconds (m.m_executed - m.m_exec_enq));
             Stats.add o.span_reply (Sim.to_seconds (now - m.m_executed))
           | _ -> ());
        Hashtbl.remove o.marks id)
      fresh

let obs_instant t name =
  match t.obs with None -> () | Some o -> Trace.instant o.trace ~name

(* ---- fault-tolerance helpers ---------------------------------------------- *)

let core_view (h : host) = Core.max_view h.core

let core_last_exec (h : host) = Core.last_executed h.core

let is_host_primary (h : host) = Core.leads_any h.core

(* The worker-thread serving one consensus instance on this host (instance
   0 is the classic single worker). *)
let worker_for (h : host) inst = if inst = 0 then h.worker else h.extra_workers.(inst - 1)

(* Highest view any host has installed on one consensus instance (crashed
   hosts included: their last-known view still bounds the primary guess). *)
let instance_view t inst =
  Array.fold_left (fun acc h -> max acc (Core.view h.core ~inst)) 0 t.hosts

(* The replica the clients currently believe leads one instance (learned
   from the view field of replies). *)
let believed_primary_of t inst =
  if t.p.Params.instances = 1 then Config.primary_of_view t.cfg t.client_view
  else (t.inst_views.(inst) + (inst mod t.p.Params.n)) mod t.p.Params.n

let current_instance_primary t inst =
  let inst = ((inst mod t.p.Params.instances) + t.p.Params.instances) mod t.p.Params.instances in
  if t.p.Params.instances = 1 then Config.primary_of_view t.cfg t.max_view
  else (instance_view t inst + (inst mod t.p.Params.n)) mod t.p.Params.n

let current_primary t =
  if t.p.Params.instances = 1 then Config.primary_of_view t.cfg t.max_view
  else current_instance_primary t 0

let mark_primary_crash t =
  if t.primary_crash_at = None then begin
    t.primary_crash_at <- Some (Sim.now t.sim);
    t.crash_view <- t.max_view;
    t.recovered_at <- None
  end

(* Rebuild a host's pending queue without transactions that are already
   executed here, already in an in-flight batch, or duplicated in the queue
   itself (retransmissions and network duplication both re-inject ids). *)
let compact_pending (h : host) =
  let n = Queue.length h.pending in
  if n > 0 then begin
    let seen = Hashtbl.create (2 * n) in
    for _ = 1 to n do
      let id = Queue.pop h.pending in
      if
        (not (Hashtbl.mem h.executed_txns id))
        && (not (Hashtbl.mem h.inflight_txns id))
        && not (Hashtbl.mem seen id)
      then begin
        Hashtbl.add seen id ();
        Queue.push id h.pending
      end
    done
  end

(* ---- verify-sharing (Q2) --------------------------------------------------- *)

(* Cost of checking a verification (or digest) whose full cost would be
   [full], against a memo table [cache] under key [key].  With verify-sharing
   a key seen before costs one cache probe; a fresh key pays [full] and is
   recorded.  Free operations (No_sig schemes, zeroed cost models) bypass the
   cache entirely so the ablation flag cannot perturb a costless run. *)
let shared_charge (p : Params.t) cache ~key ~full =
  if full = 0 then 0
  else if not p.Params.verify_sharing then full
  else if Vcache.mem cache key then p.Params.cost.Cost.cache_lookup
  else begin
    Vcache.add cache key ();
    full
  end

(* ---- replica-side processing ---------------------------------------------- *)

let rec core_handle t (h : host) (stage : Stage.t) ~inst (m : Msg.t) =
  emit_tagged t h stage (Core.step h.core (Core.Deliver { inst; msg = m }));
  note_view t h

(* A view advance observed on [h]'s core: cancel the demand timer, reopen
   admission control (batches proposed by the dead primary never complete),
   and if [h] is the new primary, start serving its queue. *)
and note_view t (h : host) =
  let v = core_view h in
  if v > h.seen_view then begin
    h.seen_view <- v;
    if v > t.max_view then begin
      obs_instant t (Printf.sprintf "view change: v%d (replica %d)" v h.id);
      t.max_view <- v;
      t.proposed_batches <- t.completed_batches
    end;
    (match h.vc_timer with
    | Some ev ->
      Sim.cancel ev;
      h.vc_timer <- None
    | None -> ());
    h.nudged <- false;
    if is_host_primary h then try_form_batches t h
    else if t.retrans_enabled then begin
      (* Demand that survived the view change re-arms the timer: the new
         primary gets [view_timeout] to serve it or is suspected in turn. *)
      compact_pending h;
      if not (Queue.is_empty h.pending) then note_demand t h
    end
  end

(* Arm the demand timer: this backup holds client transactions the primary
   should be serving.  If execution does not absorb them within
   [view_timeout], suspect the primary (PBFT's liveness trigger). *)
and note_demand t (h : host) =
  if Core.demand_driven h.core then
    if h.vc_timer = None && not (Net.is_crashed (net t) h.id) then begin
      h.last_exec_seen <- core_last_exec h;
      h.vc_timer <- Some (Sim.schedule t.sim ~after:t.p.Params.view_timeout (fun () -> vc_check t h))
    end

(* The demand timer escalates in three steps rather than suspecting the
   primary outright: progress since the last check means the pipeline is
   live (just keep watching); a first stall retransmits this replica's votes
   for the stuck slot, which under message loss usually refills the quorum;
   only a second consecutive stall concludes the primary itself is the
   problem and starts a view change. *)
and vc_check t (h : host) =
  h.vc_timer <- None;
  if Core.demand_driven h.core then begin
    compact_pending h;
    (* The core names the instance to escalate against — the blocked one in
       a multi-primary run, the (single) primary's instance otherwise, none
       when this host leads everything there is to lead or holds no demand.
       [inflight] covers transactions this host already batched onto its own
       instances: those cannot complete until the blocked instance plugs the
       global merge hole, so they keep the escalation alive even though
       [pending] is empty. *)
    match
      Core.escalation h.core
        ~pending:(not (Queue.is_empty h.pending))
        ~inflight:(Hashtbl.length h.inflight_txns > 0)
    with
    | None -> ()
    | Some inst ->
      let stage = worker_for h inst in
      let service = t.p.Params.cost.Cost.msg_handle in
      let step input =
        Stage.enqueue stage ~service (fun () ->
            emit_tagged t h stage (Core.step h.core input))
      in
      (if Core.in_view_change h.core ~inst then step (Core.Vc_retransmit inst)
       else if Core.leads h.core ~inst then
         (* We lead the blocked instance ourselves, so there is no one to
            suspect: plug its frontier with no-op keepalive batches instead
            (after taking over a deposed instance, the unserved demand was
            re-batched by the live instances, so real holes remain with no
            real transactions to fill them). *)
         step (Core.Keepalive inst)
       else begin
         let exec = core_last_exec h in
         if exec > h.last_exec_seen then begin
           h.last_exec_seen <- exec;
           h.nudged <- false
         end
         else if not h.nudged then begin
           h.nudged <- true;
           step (Core.Nudge inst)
         end
         else begin
           h.nudged <- false;
           step (Core.Suspect inst)
         end
       end);
      note_demand t h
  end

(* Returns instance-tagged actions; [seq] is global (= local for k = 1). *)
and core_executed _t (h : host) ~seq ~state_digest ~result =
  Core.step h.core (Core.Executed { seq; state_digest; result })

(* Route protocol actions.  [stage] is the stage whose thread produced the
   actions; message-creation (signing) costs are charged there via a
   continuation job when needed.  Each action is tagged with the consensus
   instance it belongs to (always 0 outside multi-primary runs), so wire
   messages reach the same instance on the receiving replica. *)
and emit_tagged t (h : host) (stage : Stage.t) tagged =
  if tagged = [] then ()
  else begin
    let p = t.p in
    (* Split client replies out: they are aggregated per batch. *)
    let sign_ns = ref 0 in
    let sends = ref [] in
    let replies = ref [] in
    let execs = ref [] in
    List.iter
      (fun (inst, a) ->
        match a with
        | Action.Broadcast m ->
          sign_ns := !sign_ns + sign_cost_for p ~dests:(p.Params.n - 1) (scheme_of_message p m);
          sends := `Bcast (inst, m) :: !sends
        | Action.Send (dst, m) ->
          sign_ns := !sign_ns + sign_cost_for p ~dests:1 (scheme_of_message p m);
          sends := `One (inst, dst, m) :: !sends
        | Action.Send_client (_, m) -> begin
          match m with
          | Msg.Reply _ | Msg.Spec_reply _ ->
            sign_ns := !sign_ns + sign_cost_for p ~dests:1 p.Params.reply_scheme;
            replies := m :: !replies
          | Msg.Local_commit { seq; _ } ->
            (* One core-level ack stands for the whole client group of the
               certificate; scale its cost by the group size. *)
            let count =
              match Hashtbl.find_opt h.cert_counts seq with Some c -> c | None -> 1
            in
            Hashtbl.remove h.cert_counts seq;
            sign_ns := !sign_ns + (count * sign_cost_for p ~dests:1 p.Params.reply_scheme);
            sends := `Cert_ack (seq, m, count) :: !sends
          | _ -> ()
        end
        | Action.Execute b -> execs := b :: !execs
        | Action.Stable_checkpoint s -> host_stable_checkpoint t h ~seq:s)
      tagged;
    (* Executions are routed immediately: the cores emit them in strict
       sequence order and a delayed routing job could interleave with a
       later emit and break that order. *)
    List.iter (fun b -> enqueue_execute t h b) (List.rev !execs);
    let route () =
      List.iter
        (fun s ->
          match s with
          | `Bcast (inst, m) ->
            for dst = 0 to p.Params.n - 1 do
              if dst <> h.id then output_send t h dst ~inst m
            done
          | `One (inst, dst, m) -> output_send t h dst ~inst m
          | `Cert_ack (seq, m, count) -> output_send_cert_ack t h ~seq ~msg:m ~count)
        (List.rev !sends);
      match !replies with
      | [] -> ()
      | rs -> output_send_replies t h rs
    in
    if !sends = [] && !replies = [] then ()
    else if !sign_ns > 0 then Stage.enqueue stage ~service:!sign_ns route
    else route ()
  end

(* A stable checkpoint reached this host's core.  Normally: persist the
   checkpoint (a real fsync'd WAL/B-tree flush on a durable backend, a
   no-op in memory) and prune the retained chain below it.  But when this
   host's ledger is missing blocks at or below the horizon the cluster is
   about to garbage-collect — it adopted the checkpoint from a quorum
   without ever executing the gap — those blocks can no longer arrive by
   retransmission: fetch them in O(gap) via state transfer instead. *)
and host_stable_checkpoint t (h : host) ~seq =
  if t.retrans_enabled && Ledger.next_seq h.ledger <= seq then request_state_transfer t h
  else begin
    Ledger.checkpoint h.ledger ~seq ~state_digest:("state-" ^ string_of_int seq);
    ignore (Ledger.prune_below h.ledger seq);
    if Ledger.is_durable h.ledger then begin
      (* Charge the checkpoint flush (B-tree meta write + WAL rewrite of the
         retained segment) on the checkpoint-thread: real durability cost,
         off the consensus critical path — the paper's Fig. 14 lesson. *)
      let p = t.p in
      let bytes =
        List.length (Ledger.retained h.ledger)
        * (64 + Msg.digest_bytes + (Config.commit_quorum t.cfg * 16))
      in
      Stage.enqueue h.checkpoint_stage
        ~service:(Cost.serialize_cost p.Params.cost ~bytes + p.Params.cost.Cost.hash_base)
        (fun () -> ())
    end
  end

(* ---- state transfer --------------------------------------------------------- *)

(* Start (or refresh) a state-transfer request from [h]: broadcast a
   State_request carrying our next ledger sequence, and re-broadcast on the
   demand-timer cadence until a response installs (request and response are
   both lossy).  The retry budget keeps an unanswerable request — no peer
   holds a certificate yet — from ringing forever; the next stable
   checkpoint re-triggers if the gap persists. *)
and request_state_transfer t (h : host) =
  if not h.st_outstanding then begin
    h.st_outstanding <- true;
    h.st_tries <- 8;
    if t.st_first_request = None then t.st_first_request <- Some (Sim.now t.sim);
    obs_instant t (Printf.sprintf "state transfer: replica %d requests from %d" h.id
                     (Ledger.next_seq h.ledger));
    send_state_request t h
  end

and send_state_request t (h : host) =
  if h.st_outstanding && h.st_tries > 0 && not (Net.is_crashed (net t) h.id) then begin
    h.st_tries <- h.st_tries - 1;
    let p = t.p in
    let m = St.request h.ledger ~from:h.id in
    let service =
      sign_cost_for p ~dests:(p.Params.n - 1) p.Params.replica_scheme
      + p.Params.cost.Cost.msg_handle
    in
    Stage.enqueue h.checkpoint_stage ~service (fun () ->
        for dst = 0 to p.Params.n - 1 do
          if dst <> h.id then output_send t h dst ~inst:0 m
        done);
    ignore (Sim.schedule t.sim ~after:p.Params.view_timeout (fun () -> send_state_request t h))
  end

(* Donor side: answer with our stable-checkpoint certificate and retained
   chain segment, if we hold a certificate and are actually ahead. *)
and serve_state_request t (h : host) ~low ~requester =
  match
    St.serve h.ledger ~stable:(Core.stable_certificate h.core) ~low ~from:h.id
      ~app_seq:(core_last_exec h) ~app_export:[]
  with
  | None -> ()
  | Some resp -> output_send t h requester ~inst:0 resp

(* Requester side: verify and install; on success the core fast-forwards to
   the donor's stable checkpoint and the ledger to the donor's tip — the
   remaining distance arrives through the normal protocol path. *)
and admit_state_response t (h : host) (m : Msg.t) =
  if h.st_outstanding then begin
    let installed =
      St.admit ~commit_quorum:(Config.commit_quorum t.cfg) h.ledger
        ~install_core:(fun ~seq ~state_digest ->
          ignore (Core.step h.core (Core.Install_checkpoint { seq; state_digest })))
        m
    in
    if installed then begin
      h.st_outstanding <- false;
      t.state_transfers <- t.state_transfers + 1;
      if t.st_caught_up = None then t.st_caught_up <- Some (Sim.now t.sim);
      obs_instant t (Printf.sprintf "state transfer: replica %d installed through %d" h.id
                       (Ledger.next_seq h.ledger - 1));
      note_view t h
    end
    else if St.stale h.ledger m then
      (* A well-formed response from a donor no further along than we are:
         the cluster holds nothing newer, stop asking. *)
      h.st_outstanding <- false
  end

(* Send one protocol message to a peer replica through an output-thread. *)
and output_send t (h : host) dst ~inst (m : Msg.t) =
  let p = t.p in
  let bytes = Msg.wire_size ~sig_bytes:(Signer.signature_size (scheme_of_message p m)) m in
  let service = Cost.serialize_cost p.Params.cost ~bytes + p.Params.cost.Cost.out_handle in
  Stage.enqueue h.output ~service (fun () ->
      Net.send (net t) ~src:h.id ~dst ~bytes (To_replica (inst, m)))

(* Replies for one executed batch, aggregated into a single network event
   per client machine round-robin slot (every transaction's completion is
   still tracked individually by the pool). *)
and output_send_replies t (h : host) (rs : Msg.t list) =
  let p = t.p in
  let k = List.length rs in
  let view, seq, key_digest, speculative, txn_ids =
    match rs with
    | Msg.Reply { view; seq; _ } :: _ ->
      ( view,
        seq,
        "",
        false,
        Array.of_list
          (List.filter_map (function Msg.Reply { txn_id; _ } -> Some txn_id | _ -> None) rs) )
    | Msg.Spec_reply { view; seq; history; _ } :: _ ->
      ( view,
        seq,
        history,
        true,
        Array.of_list
          (List.filter_map (function Msg.Spec_reply { txn_id; _ } -> Some txn_id | _ -> None) rs)
      )
    | _ -> assert false
  in
  let bytes = k * reply_bytes p in
  let service = Cost.serialize_cost p.Params.cost ~bytes + (k * p.Params.cost.Cost.out_handle) in
  let dst = t.client_nodes.(seq mod Array.length t.client_nodes) in
  Stage.enqueue h.output ~service (fun () ->
      Net.send (net t) ~src:h.id ~dst ~bytes
        (Replies { replica = h.id; view; seq; key_digest; txn_ids; speculative }))

and output_send_cert_ack t (h : host) ~seq ~msg ~count =
  let p = t.p in
  ignore msg;
  let bytes = count * reply_bytes p in
  let service = Cost.serialize_cost p.Params.cost ~bytes + (count * p.Params.cost.Cost.out_handle) in
  let dst = t.client_nodes.(seq mod Array.length t.client_nodes) in
  Stage.enqueue h.output ~service (fun () ->
      Net.send (net t) ~src:h.id ~dst ~bytes (Cert_acks { replica = h.id; seq; history = ""; count }))

(* Execution: charged on the execute-thread (or the worker when E = 0);
   E >= 2 routes committed blocks through the conflict-aware lane machinery
   below instead. *)
and enqueue_execute t (h : host) (b : Msg.batch) =
  if Array.length h.exec_lanes > 0 then exec_offer t h b
  else enqueue_execute_serial t h b

(* Costs of re-validating a batch at the execute boundary: the batch digest
   (block assembly links on it) and the authenticity of every transaction.
   With verify-sharing both reduce to memo probes — the digest was
   computed/validated when the proposal arrived, the signatures when the
   requests were admitted.  Without it, a protocol-centric fabric recomputes
   the digest and re-verifies every client signature here, which is exactly
   the redundant crypto the paper's Q2 lesson removes. *)
and exec_revalidate_cost t (h : host) (b : Msg.batch) =
  let p = t.p in
  let k = List.length b.Msg.reqs in
  let digest_check =
    shared_charge p h.dcache ~key:b.Msg.digest
      ~full:(Cost.hash_cost p.Params.cost ~bytes:b.Msg.wire_bytes)
  in
  let verify_full = Cost.verify_cost_batched p.Params.cost p.Params.client_scheme in
  let reverify =
    if verify_full = 0 then 0
    else if p.Params.verify_sharing then k * p.Params.cost.Cost.cache_lookup
    else k * verify_full
  in
  digest_check + reverify

(* The block-completion tail shared by the serial and parallel execute
   paths.  Block generation (§4.6): the commit certificate replaces the
   previous-block hash; the in-order ledger append's durable WAL write is
   buffered and flushed by the checkpoint-thread, never the execute path
   (Fig. 14); then execution accounting and the Executed notification back
   into the consensus core. *)
and finish_block t (h : host) (stage : Stage.t) (b : Msg.batch) =
  let p = t.p in
  obs_mark_executed t b.Msg.reqs;
  let cert = List.init (Config.commit_quorum t.cfg) (fun i -> (i, "share")) in
  let block =
    {
      Block.seq = b.Msg.seq;
      view = b.Msg.view;
      digest = b.Msg.digest;
      txn_count = List.length b.Msg.reqs;
      link = Block.Certificate cert;
    }
  in
  if Ledger.next_seq h.ledger = b.Msg.seq then begin
    Ledger.append h.ledger block;
    if Ledger.is_durable h.ledger then
      Stage.enqueue h.checkpoint_stage
        ~service:
          (Cost.serialize_cost p.Params.cost
             ~bytes:(64 + Msg.digest_bytes + (Config.commit_quorum t.cfg * 16)))
        (fun () -> ())
  end;
  if t.retrans_enabled then
    List.iter
      (fun (r : Msg.request_ref) ->
        Hashtbl.replace h.executed_txns r.Msg.txn_id ();
        Hashtbl.remove h.inflight_txns r.Msg.txn_id)
      b.Msg.reqs;
  let state_digest = "state-" ^ string_of_int b.Msg.seq in
  let actions = core_executed t h ~seq:b.Msg.seq ~state_digest ~result:"ok" in
  emit_tagged t h stage actions;
  note_view t h

(* E <= 1: the paper's single execute-thread (or the worker when E = 0) —
   the exact pre-lane pipeline, kept bit-identical. *)
and enqueue_execute_serial t (h : host) (b : Msg.batch) =
  let p = t.p in
  let stage = match h.exec_stage with Some s -> s | None -> h.worker in
  let k = List.length b.Msg.reqs in
  let ops = k * p.Params.ops_per_txn in
  let alloc =
    if p.Params.use_buffer_pool then p.Params.cost.Cost.alloc_pool
    else p.Params.cost.Cost.alloc_malloc
  in
  let service =
    Cost.execute_cost p.Params.cost ~sqlite:p.Params.sqlite ~ops
    + (k * (p.Params.cost.Cost.reply_per_txn + alloc))
    + exec_revalidate_cost t h b
    + p.Params.cost.Cost.hash_base (* block assembly *)
  in
  obs_mark_exec_enqueued t b.Msg.reqs;
  Stage.enqueue stage ~service (fun () -> finish_block t h stage b)

(* ---- conflict-aware parallel execution (E >= 2) ---------------------------

   Committed blocks arrive here in global order.  One block owns the lanes
   at a time; inside the block, the {!Exec_sched} plan's rounds run with a
   barrier between them, each lane a pipeline stage of its own.  Cost
   layout: the "exec-sched" dispatcher pays the execute-boundary
   re-validation plus the dependency analysis (one conflict-table probe per
   operation); each lane pays the execute cost of exactly the operations
   scheduled onto it; the dispatcher then pays the block-assembly hash and
   runs the shared completion tail.  Determinism: the plan is a pure
   function of (block contents, E) — see [make_footprint_fn] and
   {!Rdb_replica.Exec_sched} — and lanes of one round touch disjoint keys,
   so the final state equals serial in-order execution no matter how the
   lane jobs interleave in simulated (or real) time. *)

and exec_offer t (h : host) (b : Msg.batch) =
  obs_mark_exec_enqueued t b.Msg.reqs;
  Queue.push b h.exec_queue;
  exec_try_start t h

and exec_try_start t (h : host) =
  if not h.exec_busy then
    match Queue.take_opt h.exec_queue with
    | None -> ()
    | Some b ->
      h.exec_busy <- true;
      let p = t.p in
      let sched = match h.exec_sched_stage with Some s -> s | None -> assert false in
      let k = List.length b.Msg.reqs in
      let analysis = k * p.Params.ops_per_txn * p.Params.cost.Cost.cache_lookup in
      let service = exec_revalidate_cost t h b + analysis in
      Stage.enqueue sched ~service (fun () ->
          let fps =
            Array.map
              (fun (r : Msg.request_ref) -> (Lazy.force t.footprint_of) r.Msg.txn_id)
              (Array.of_list b.Msg.reqs)
          in
          let plan = Exec_sched.schedule ~lanes:(Array.length h.exec_lanes) fps in
          exec_run_rounds t h b fps plan.Exec_sched.rounds)

and exec_run_rounds t (h : host) (b : Msg.batch) fps = function
  | [] ->
    let sched = match h.exec_sched_stage with Some s -> s | None -> assert false in
    (* Block assembly after the last barrier, then release the lanes to the
       next committed block. *)
    Stage.enqueue sched ~service:t.p.Params.cost.Cost.hash_base (fun () ->
        finish_block t h sched b;
        h.exec_busy <- false;
        exec_try_start t h)
  | round :: rest ->
    let p = t.p in
    let alloc =
      if p.Params.use_buffer_pool then p.Params.cost.Cost.alloc_pool
      else p.Params.cost.Cost.alloc_malloc
    in
    let ops = Exec_sched.round_ops fps round in
    let busy = Array.fold_left (fun a txns -> if txns = [] then a else a + 1) 0 round in
    if busy = 0 then exec_run_rounds t h b fps rest
    else begin
      let remaining = ref busy in
      Array.iteri
        (fun l txns ->
          if txns <> [] then begin
            let kl = List.length txns in
            let service =
              Cost.execute_cost p.Params.cost ~sqlite:p.Params.sqlite ~ops:ops.(l)
              + (kl * (p.Params.cost.Cost.reply_per_txn + alloc))
            in
            (* The round barrier: the last lane to drain starts the next
               round. *)
            Stage.enqueue h.exec_lanes.(l) ~service (fun () ->
                decr remaining;
                if !remaining = 0 then exec_run_rounds t h b fps rest)
          end)
        round
    end

(* Batch formation at the primary (§4.3): batch-threads drain the common
   queue, verify client signatures, build the batch string, hash and sign. *)
and try_form_batches t (h : host) =
  let p = t.p in
  if not (is_host_primary h) then ()
  else begin
  if t.retrans_enabled then compact_pending h;
  let stage = match h.batch_stage with Some s -> s | None -> h.worker in
  let max_jobs = 2 * Stage.workers stage in
  (* k concurrent ordering instances sustain k times the in-flight batches
     before head-of-line blocking sets in, so the admission window scales
     with them. *)
  let admission_open () =
    t.proposed_batches - t.completed_batches + h.batch_jobs_inflight
    < p.Params.max_inflight_batches * p.Params.instances
  in
  while
    Queue.length h.pending >= p.Params.batch_size
    && h.batch_jobs_inflight < max_jobs
    && admission_open ()
  do
    let k = p.Params.batch_size in
    let txns = Array.init k (fun _ -> Queue.pop h.pending) in
    enqueue_batch_job t h stage txns
  done;
  (* A partial batch would stall forever under low load: flush it shortly,
     like a production batcher's linger timer. *)
  if (not (Queue.is_empty h.pending)) && not h.flush_scheduled then begin
    h.flush_scheduled <- true;
    ignore
      (Sim.schedule t.sim ~after:(Sim.ms 2.0) (fun () ->
           h.flush_scheduled <- false;
           let len = Queue.length h.pending in
           if len > 0 && len < p.Params.batch_size && admission_open () then begin
             let txns = Array.init len (fun _ -> Queue.pop h.pending) in
             enqueue_batch_job t h stage txns
           end
           else if len > 0 then try_form_batches t h))
  end
  end

and enqueue_batch_job t (h : host) stage txns =
  let p = t.p in
  let k = Array.length txns in
  let wire = batch_wire_bytes p k in
  (* Each batched transaction costs two object allocations (message wrapper
     + transaction object, §4.8); the buffer pool makes them cheap. *)
  let alloc =
    if p.Params.use_buffer_pool then p.Params.cost.Cost.alloc_pool
    else p.Params.cost.Cost.alloc_malloc
  in
  (* Client-signature verification per transaction.  With verify-sharing a
     transaction this host already admitted — re-batched after a failed
     propose or a view change, or re-injected by retransmission — costs a
     cache probe instead of a second signature check. *)
  let verify_full = Cost.verify_cost_batched p.Params.cost p.Params.client_scheme in
  let verify_ns = ref 0 in
  Array.iter
    (fun id ->
      verify_ns :=
        !verify_ns + shared_charge p h.vcache ~key:("req|" ^ string_of_int id) ~full:verify_full)
    txns;
  let per_txn =
    p.Params.cost.Cost.batch_per_txn
    + (2 * alloc)
    + ((p.Params.ops_per_txn - 1) * p.Params.cost.Cost.batch_per_op)
  in
  (* Very large batches lose cache locality while being assembled. *)
  let locality =
    let th = p.Params.cost.Cost.batch_locality_threshold in
    if k <= th then 1.0
    else 1.0 +. (p.Params.cost.Cost.batch_locality_slope *. float_of_int (k - th) /. float_of_int th)
  in
  let service =
    int_of_float (float_of_int ((k * per_txn) + !verify_ns) *. locality)
    + p.Params.cost.Cost.batch_base
    + Cost.hash_cost p.Params.cost ~bytes:wire
  in
  h.batch_jobs_inflight <- h.batch_jobs_inflight + 1;
  if t.retrans_enabled then Array.iter (fun id -> Hashtbl.replace h.inflight_txns id ()) txns;
  Stage.enqueue stage ~service (fun () ->
      h.batch_jobs_inflight <- h.batch_jobs_inflight - 1;
      h.batch_counter <- h.batch_counter + 1;
      let digest = Printf.sprintf "b%d-%d" h.id h.batch_counter in
      (* The hash over the batch string was charged in [service] above; with
         verify-sharing the primary's later touchpoints (execution-time
         digest check) reuse it. *)
      if p.Params.verify_sharing then Vcache.add h.dcache digest ();
      let reqs =
        Array.to_list (Array.map (fun txn_id -> { Msg.client = txn_id mod t.p.Params.clients; txn_id }) txns)
      in
      (* The core picks the instance (a multi-primary host rotates over the
         instances it leads, so a host that picked up a second instance
         after a view change keeps both streams moving); its worker-thread
         carries the consensus bookkeeping below. *)
      let batch_opt, tagged, prop_inst =
        Core.propose h.core ~reqs ~digest ~wire_bytes:wire
      in
      let consensus_worker = worker_for h prop_inst in
      (match batch_opt with
      | None ->
        (* Mid view-change / window full / no longer primary.  With
           retransmission the requests go back to the queue (the next
           primary will serve them); without it clients never retry, and
           under our healthy-run experiments this branch is unreachable. *)
        if t.retrans_enabled then
          Array.iter
            (fun id ->
              Hashtbl.remove h.inflight_txns id;
              Queue.push id h.pending)
            txns
      | Some _ ->
        obs_mark_proposed t txns;
        t.proposed_batches <- t.proposed_batches + 1;
        (* The worker-thread owns the consensus instance: its bookkeeping
           (instance state, quorum tracking, certificate assembly) costs a
           fixed amount per consensus, regardless of batch size. *)
        Stage.enqueue consensus_worker ~service:p.Params.cost.Cost.consensus_fixed (fun () -> ()));
      emit_tagged t h stage tagged;
      match batch_opt with Some _ -> try_form_batches t h | None -> ())

(* ---- message delivery at a replica ---------------------------------------- *)

and deliver_replica t (h : host) ~src (msg : net_msg) =
  let p = t.p in
  let cost = p.Params.cost in
  ignore src;
  match msg with
  | Client_txns { txn_ids } ->
    let k = Array.length txn_ids in
    Stage.enqueue h.input_client ~service:(k * cost.Cost.msg_handle) (fun () ->
        Array.iter (fun id -> Queue.push id h.pending) txn_ids;
        if is_host_primary h then begin
          try_form_batches t h;
          (* A multi-primary host leads only its own instances: the
             transactions it just batched still need every *other* instance
             to keep the global execution cursor moving, so unserved
             (retransmitted) demand arms the watchdog here too. *)
          if Core.instances h.core > 1 && t.retrans_enabled then note_demand t h
        end
        else if t.retrans_enabled then note_demand t h)
  | To_replica (inst, m) ->
    (* MAC/signature check on the inbound message.  With verify-sharing a
       retransmitted or duplicated message (same sender, same authenticated
       bytes) costs a cache probe instead of a re-verification.  Instances
       other than 0 prefix the memo key: two instances can legitimately
       carry messages with identical authenticated fields (same local view,
       sequence number and sender), and those must not share a cache
       entry.  Instance 0 keeps the bare key so a k = 1 run is bit-identical
       to the classic path. *)
    let verify =
      let key =
        if inst = 0 then Msg.auth_string m
        else Printf.sprintf "i%d|%s" inst (Msg.auth_string m)
      in
      shared_charge p h.vcache ~key ~full:(Cost.verify_cost cost p.Params.replica_scheme)
    in
    (* Digest validation of a proposed batch (§4.3: a backup recomputes the
       batch digest before voting).  Memoized so execution — and any
       retransmitted copy of the proposal — reuses the first computation. *)
    let digest_check (b : Msg.batch) =
      shared_charge p h.dcache ~key:b.Msg.digest
        ~full:(Cost.hash_cost cost ~bytes:b.Msg.wire_bytes)
    in
    (* Consensus traffic of instance i is served by that instance's own
       worker-thread: the per-instance workers are exactly what removes the
       single ordering thread from the critical path. *)
    let consensus_worker = worker_for h inst in
    let stage, service =
      match m with
      | Msg.Checkpoint _ -> (h.checkpoint_stage, verify + cost.Cost.msg_handle)
      | Msg.State_request _ -> (h.checkpoint_stage, verify + cost.Cost.msg_handle)
      | Msg.State_response { blocks; _ } ->
        (* Certificate verification plus one hash walk over the shipped
           segment, on the checkpoint-thread (recovery work never steals
           the consensus worker). *)
        ( h.checkpoint_stage,
          verify + cost.Cost.msg_handle
          + (List.length blocks * cost.Cost.hash_base) )
      | Msg.Pre_prepare { batch; _ } | Msg.Order_request { batch; _ }
      | Msg.Hs_proposal { batch; _ } ->
        (* A new consensus instance starts here at a backup. *)
        ( consensus_worker,
          verify + digest_check batch + cost.Cost.msg_handle + cost.Cost.consensus_fixed )
      | Msg.Prepare _ | Msg.Commit _ | Msg.View_change _ | Msg.New_view _
      | Msg.Hs_vote _ | Msg.Hs_qc _ ->
        (consensus_worker, verify + cost.Cost.msg_handle)
      | _ -> (consensus_worker, cost.Cost.msg_handle)
    in
    (* Input-threads hand the message over first (cheap), then the target
       thread verifies and processes.  State-transfer traffic is handled at
       the host level (it moves ledgers, not consensus votes). *)
    Stage.enqueue h.input_replica ~service:cost.Cost.msg_handle (fun () ->
        Stage.enqueue stage ~service (fun () ->
            match m with
            | Msg.State_request { low; from } -> serve_state_request t h ~low ~requester:from
            | Msg.State_response _ -> admit_state_response t h m
            | _ -> core_handle t h stage ~inst m))
  | Tampered { kind; inner } ->
    (* A byzantine peer's corrupted message.  The receive path pays the
       full price to discover the corruption — a failed check is never
       memoized (the verify-sharing caches admit only successful
       verifications), so every forged copy costs a full verify — and the
       message is dropped before the consensus core ever sees it. *)
    let inst, digest_recompute =
      match inner with
      | To_replica (inst, m) ->
        ( inst,
          match kind with
          | Forged_mac -> 0
          | Corrupted_digest -> (
            (* The MAC itself passes; recomputing the batch digest (§4.3's
               backup-side validation) is what disagrees. *)
            match m with
            | Msg.Pre_prepare { batch; _ }
            | Msg.Order_request { batch; _ }
            | Msg.Hs_proposal { batch; _ } ->
              Cost.hash_cost cost ~bytes:batch.Msg.wire_bytes
            | _ -> cost.Cost.hash_base) )
      | _ -> (0, 0)
    in
    let consensus_worker = worker_for h inst in
    let service =
      Cost.verify_cost cost p.Params.replica_scheme + digest_recompute + cost.Cost.msg_handle
    in
    Stage.enqueue h.input_replica ~service:cost.Cost.msg_handle (fun () ->
        Stage.enqueue consensus_worker ~service (fun () ->
            t.rejected_forgeries <- t.rejected_forgeries + 1;
            if t.rejected_forgeries = 1 then
              obs_instant t (Printf.sprintf "byzantine: replica %d rejected a forged message" h.id)))
  | Certs { seq; history; count } ->
    let quorum = Config.commit_quorum t.cfg in
    let service =
      count * ((quorum * Cost.verify_cost cost p.Params.client_scheme) + cost.Cost.msg_handle)
    in
    Stage.enqueue h.input_replica ~service:cost.Cost.msg_handle (fun () ->
        Stage.enqueue h.worker ~service (fun () ->
            Hashtbl.replace h.cert_counts seq count;
            let responders = List.init quorum (fun i -> i) in
            core_handle t h h.worker ~inst:0
              (Msg.Commit_cert { view = 0; seq; digest = history; client = seq; responders })))
  | Replies _ | Cert_acks _ ->
    (* Client-bound traffic never reaches a replica. *)
    ()

(* ---- client pool ----------------------------------------------------------- *)

and next_client_node t =
  let node = t.client_nodes.(t.client_rr mod Array.length t.client_nodes) in
  t.client_rr <- t.client_rr + 1;
  node

and submit_group t txn_ids =
  let p = t.p in
  let now = Sim.now t.sim in
  Array.iter (fun id -> Hashtbl.replace t.submit_time id now) txn_ids;
  let bytes = Array.length txn_ids * txn_request_bytes p in
  let src = next_client_node t in
  (* Multi-primary: submissions round-robin over the k instances' believed
     primaries, spreading the ordering load across the k leaders (with k = 1
     this is exactly the classic single-primary target). *)
  let inst = t.submit_rr mod p.Params.instances in
  t.submit_rr <- t.submit_rr + 1;
  Net.send (net t) ~src ~dst:(believed_primary_of t inst) ~bytes (Client_txns { txn_ids });
  if t.retrans_enabled then schedule_retransmit t txn_ids ~delay:p.Params.client_timeout

(* Client retransmission with exponential backoff: transactions still
   lacking a reply quorum after [delay] are re-sent, broadcast to all
   replicas (PBFT's liveness path — backups that see unserved demand start
   suspecting the primary via [note_demand]). *)
and schedule_retransmit t txn_ids ~delay =
  let p = t.p in
  ignore
    (Sim.schedule t.sim ~after:delay (fun () ->
         let survivors =
           Array.of_list
             (List.filter (fun id -> Hashtbl.mem t.submit_time id) (Array.to_list txn_ids))
         in
         let k = Array.length survivors in
         if k > 0 then begin
           t.retransmissions <- t.retransmissions + k;
           let bytes = k * txn_request_bytes p in
           let src = next_client_node t in
           for dst = 0 to p.Params.n - 1 do
             Net.send (net t) ~src ~dst ~bytes (Client_txns { txn_ids = survivors })
           done;
           schedule_retransmit t survivors
             ~delay:(min (2 * delay) (16 * p.Params.client_timeout))
         end))

and fresh_txns t k =
  Array.init k (fun _ ->
      let id = t.next_txn in
      t.next_txn <- id + 1;
      id)

and complete_batch t (track : batch_track) ~view ~fast ~cert =
  if not track.completed then begin
    track.completed <- true;
    t.completed_batches <- t.completed_batches + 1;
    (match track.zyz_timer with Some ev -> Sim.cancel ev | None -> ());
    let now = Sim.now t.sim in
    (* Under retransmission one transaction can complete through two
       distinct (view, seq) slots; only its first completion counts —
       exactly-once at the accounting level. *)
    let fresh =
      Array.of_list
        (List.filter (fun id -> Hashtbl.mem t.submit_time id) (Array.to_list track.bt_txn_ids))
    in
    let k = Array.length fresh in
    t.duplicate_completions <- t.duplicate_completions + (Array.length track.bt_txn_ids - k);
    if t.measuring then begin
      t.completed_txns <- t.completed_txns + k;
      t.completed_ops <- t.completed_ops + (k * t.p.Params.ops_per_txn);
      if fast then t.fast_txns <- t.fast_txns + k;
      if cert then t.cert_txns <- t.cert_txns + k;
      Array.iter
        (fun id ->
          match Hashtbl.find_opt t.submit_time id with
          | Some s -> Stats.add t.latencies (Sim.to_seconds (now - s))
          | None -> ())
        fresh
    end;
    t.total_completed <- t.total_completed + k;
    (* Recovery from a primary crash: the first fresh completion decided in
       a later view marks the end of the outage window. *)
    if k > 0 && t.recovered_at = None && t.primary_crash_at <> None && view > t.crash_view then
      t.recovered_at <- Some now;
    obs_complete t fresh;
    Array.iter (fun id -> Hashtbl.remove t.submit_time id) fresh;
    (* Closed loop: the same clients immediately submit replacements —
       unless a completion sink owns the loop (shard deployments route the
       replacement, which may target a different shard). *)
    if k > 0 then
      match t.on_complete with
      | Some sink -> sink fresh
      | None -> submit_group t (fresh_txns t k)
  end

and get_track t key txn_ids =
  match Hashtbl.find_opt t.batches key with
  | Some tr -> tr
  | None ->
    let tr =
      {
        bt_txn_ids = txn_ids;
        reply_mask = 0;
        completed = false;
        zyz_timer = None;
        certified = false;
        ack_mask = 0;
      }
    in
    Hashtbl.add t.batches key tr;
    tr

and zyzzyva_timeout t (track : batch_track) ~view ~seq ~history =
  track.zyz_timer <- None;
  if not track.completed then begin
    let live = popcount track.reply_mask in
    if live >= Config.commit_quorum t.cfg && not track.certified then begin
      track.certified <- true;
      (* Every client of the batch broadcasts its commit certificate. *)
      let count = Array.length track.bt_txn_ids in
      let bytes = count * cert_bytes t.p ~quorum:(Config.commit_quorum t.cfg) in
      let src = next_client_node t in
      for dst = 0 to t.p.Params.n - 1 do
        Net.send (net t) ~src ~dst ~bytes (Certs { seq; history; count })
      done
    end
    else if not track.certified then begin
      (* Not enough speculative replies yet: wait another round. *)
      let ev =
        Sim.schedule t.sim ~after:t.p.Params.zyzzyva_timeout (fun () ->
            zyzzyva_timeout t track ~view ~seq ~history)
      in
      track.zyz_timer <- Some ev
    end
  end

and live_replicas t =
  let nw = net t in
  let alive = ref 0 in
  for i = 0 to t.p.Params.n - 1 do
    if not (Net.is_crashed nw i) then incr alive
  done;
  !alive

(* Once every live replica's reply has been seen (and the certificate path,
   if taken, has fully acked) the tracking entry can be dropped: nothing
   further can arrive for it.  Without this, late replies after completion
   would re-create the key and double-complete the batch. *)
and maybe_prune t key (track : batch_track) =
  if
    track.completed
    && popcount track.reply_mask >= live_replicas t
    && ((not track.certified) || popcount track.ack_mask >= live_replicas t)
  then Hashtbl.remove t.batches key

and deliver_client t (msg : net_msg) =
  match msg with
  | Replies { replica; view; seq; key_digest; txn_ids; speculative } ->
    (* The reply's view tells clients who the primary is (PBFT §4.1);
       subsequent submissions target it instead of the crashed one.  With
       multiple instances the global sequence number names the instance the
       reply came from, so the hint is tracked per instance. *)
    if view > t.client_view then t.client_view <- view;
    if t.p.Params.instances > 1 && seq >= 1 then begin
      let inst = (seq - 1) mod t.p.Params.instances in
      if view > t.inst_views.(inst) then t.inst_views.(inst) <- view
    end;
    let key = (view, seq, key_digest) in
    let track = get_track t key txn_ids in
    track.reply_mask <- track.reply_mask lor (1 lsl replica);
    let count = popcount track.reply_mask in
    if not track.completed then begin
      if not speculative then begin
        if count >= Config.reply_quorum t.cfg then
          complete_batch t track ~view ~fast:false ~cert:false
      end
      else begin
        (* Zyzzyva: all n replies complete the request on the fast path. *)
        if count >= t.p.Params.n then complete_batch t track ~view ~fast:true ~cert:false
        else if track.zyz_timer = None && not track.certified then begin
          let ev =
            Sim.schedule t.sim ~after:t.p.Params.zyzzyva_timeout (fun () ->
                zyzzyva_timeout t track ~view ~seq ~history:key_digest)
          in
          track.zyz_timer <- Some ev
        end
      end
    end;
    maybe_prune t key track
  | Cert_acks { replica; seq; _ } ->
    (* Find the certified batch for this sequence number. *)
    let hits = ref [] in
    Hashtbl.iter
      (fun ((_, s, _) as key) track ->
        if s = seq && track.certified then hits := (key, track) :: !hits)
      t.batches;
    List.iter
      (fun (((view, _, _) as key), track) ->
        track.ack_mask <- track.ack_mask lor (1 lsl replica);
        if (not track.completed) && popcount track.ack_mask >= Config.commit_quorum t.cfg then
          complete_batch t track ~view ~fast:false ~cert:true;
        maybe_prune t key track)
      !hits
  | Tampered _ ->
    (* Clients verify reply MACs too: a forged reply is rejected and never
       counts towards the reply quorum — the sender might as well not have
       replied (which is exactly how one liar stalls Zyzzyva's all-n fast
       path while PBFT's f+1 reply quorum never notices). *)
    t.rejected_forgeries <- t.rejected_forgeries + 1
  | To_replica _ | Client_txns _ | Certs _ -> ()

(* ---- construction ----------------------------------------------------------- *)

(* Stable Chrome-trace thread ids per stage, identical across replicas so
   tracks line up when comparing processes side by side in the viewer.
   Replicated stages are parsed through the {!Stage_name} family/index
   scheme (not positional prefixes): per-instance worker-threads
   ("worker-i") track at 10 + i, per-lane execute stages ("execute-i") at
   30 + i, so the k ordering streams and the E execution lanes each line up
   across replica processes in the viewer. *)
let stage_tid name =
  match name with
  | "input-client" -> 1
  | "input-replica" -> 2
  | "batch" -> 3
  | "worker" -> 4
  | "execute" -> 5
  | "output" -> 6
  | "checkpoint" -> 7
  | "exec-sched" -> 8
  | _ -> (
    match Stage_name.parse name with
    | { Stage_name.family = "worker"; index = Some _ } -> Stage_name.tid ~base:10 name
    | { Stage_name.family = "execute"; index = Some _ } -> Stage_name.tid ~base:30 name
    | _ -> 0)

let make_host t ~id =
  let p = t.p in
  let role = if id = primary_id then "primary" else "backup" in
  let cpu_probe =
    match t.obs with
    | None -> None
    | Some o ->
      Some
        (fun ~wait_ns ~held_ns ~at:_ ->
          Breakdown.add o.bd ("cpu/" ^ role) ~queue_ns:wait_ns ~service_ns:held_ns)
  in
  let cpu =
    Cpu.create ~cs_alpha:p.Params.cost.Cost.context_switch_alpha ?probe:cpu_probe t.sim
      ~cores:p.Params.cores
  in
  (match t.obs with
  | None -> ()
  | Some o ->
    Trace.set_process_name o.trace ~pid:id
      (Printf.sprintf "replica %d%s" id (if id = primary_id then " (primary)" else "")));
  let stage name workers =
    let probe =
      match t.obs with
      | None -> None
      | Some o ->
        let tid = stage_tid name in
        Trace.set_thread_name o.trace ~pid:id ~tid name;
        let label = name ^ "/" ^ role in
        Some
          (fun ~queue_ns ~service_ns ~at ->
            Breakdown.add o.bd label ~queue_ns ~service_ns;
            Trace.complete o.trace ~pid:id ~tid ~name ~ts:(at - service_ns)
              ~dur:service_ns)
    in
    Stage.create t.sim ~cpu ~name ~workers ?probe ()
  in
  let core =
    match p.Params.protocol with
    | Params.Pbft ->
      if p.Params.instances > 1 then Core.multi t.cfg ~instances:p.Params.instances ~id
      else Core.pbft t.cfg ~id
    | Params.Zyzzyva -> Core.zyzzyva t.cfg ~id
    | Params.Hotstuff -> Core.hotstuff t.cfg ~id
  in
  let multi = p.Params.instances > 1 in
  let ledger =
    match t.data_root with
    | Some root ->
      Ledger.open_durable ~dir:(Filename.concat root (Printf.sprintf "replica-%d" id)) ~primary_id
    | None -> Ledger.create ~primary_id
  in
  (* Crash-replay resume: a reopened durable store already holds a chain
     (same data_dir as an earlier run), so fast-forward the fresh core past
     the persisted tip — ordering continues from there instead of
     re-proposing sequence numbers the chain already contains. *)
  let tip = Ledger.next_seq ledger - 1 in
  if tip > 0 then
    ignore (Core.step core (Core.Install_checkpoint { seq = tip; state_digest = "" }));
  {
    id;
    cpu;
    input_client = stage "input-client" 1;
    input_replica = stage "input-replica" 2;
    output = stage "output" 2;
    batch_stage =
      (if p.Params.batch_threads > 0 then Some (stage "batch" p.Params.batch_threads) else None);
    (* One worker-thread per consensus instance ("worker-i" tracks in the
       trace); the classic deployment keeps its single "worker". *)
    worker = stage (if multi then "worker-0" else "worker") 1;
    extra_workers =
      (if multi then
         Array.init (p.Params.instances - 1) (fun i ->
             stage (Printf.sprintf "worker-%d" (i + 1)) 1)
       else [||]);
    (* E <= 1 keeps the classic single execute-thread; E >= 2 (or a forced
       single lane) builds the conflict-aware lane stages plus their
       dispatcher instead. *)
    exec_stage =
      (if Params.exec_lanes p = 0 && p.Params.execute_threads > 0 then
         Some (stage "execute" 1)
       else None);
    exec_lanes =
      Array.init (Params.exec_lanes p) (fun i ->
          stage (Stage_name.make ~family:"execute" ~index:i) 1);
    exec_sched_stage = (if Params.exec_lanes p > 0 then Some (stage "exec-sched" 1) else None);
    exec_queue = Queue.create ();
    exec_busy = false;
    checkpoint_stage = stage "checkpoint" 1;
    core;
    pending = Queue.create ();
    flush_scheduled = false;
    batch_jobs_inflight = 0;
    ledger;
    cert_counts = Hashtbl.create 16;
    batch_counter = 0;
    seen_view = 0;
    vc_timer = None;
    executed_txns = Hashtbl.create 64;
    inflight_txns = Hashtbl.create 64;
    last_exec_seen = 0;
    nudged = false;
    st_outstanding = false;
    st_tries = 0;
    vcache = Vcache.create ~capacity:p.Params.verify_cache_capacity;
    dcache = Vcache.create ~capacity:p.Params.verify_cache_capacity;
  }

(* ---- byzantine interposition ------------------------------------------------ *)

(* The adversary lives entirely between a lying replica's output and the
   wire: a per-source transform on its outbound links ({!Net.set_interpose}).
   The consensus cores are never modified — they are attacked from outside
   and defend themselves at their receive paths. *)

(* The equivocating primary's conflicting copy of a proposal: same slot,
   same (valid) authentication, different batch digest.  Only proposals are
   rewritten; everything else the attacker sends is consistent with
   whichever branch it is pushing at that peer. *)
let equivocate_msg (m : Msg.t) =
  match m with
  | Msg.Pre_prepare { view; seq; batch; from } ->
    Some
      (Msg.Pre_prepare
         { view; seq; batch = { batch with Msg.digest = batch.Msg.digest ^ "#equiv" }; from })
  | Msg.Order_request { view; seq; batch; history; from } ->
    Some
      (Msg.Order_request
         {
           view;
           seq;
           batch = { batch with Msg.digest = batch.Msg.digest ^ "#equiv" };
           history;
           from;
         })
  | Msg.Hs_proposal { view; seq; batch; parent; from } ->
    Some
      (Msg.Hs_proposal
         {
           view;
           seq;
           batch = { batch with Msg.digest = batch.Msg.digest ^ "#equiv" };
           parent;
           from;
         })
  | _ -> None

let install_behavior t ~node (b : Nemesis.behavior) =
  let nw = net t in
  let n = t.p.Params.n in
  match b with
  | Nemesis.Honest | Nemesis.Spamming_view_changes _ -> Net.clear_interpose nw ~src:node
  | Nemesis.Silent_towards peers ->
    (* Selective suppression: dead towards the listed peers, perfectly
       live towards everyone else — the failure crash-fault machinery
       cannot represent (the node is not crashed). *)
    Net.set_interpose nw ~src:node (fun ~dst m -> if List.mem dst peers then [] else [ m ])
  | Nemesis.Equivocating ->
    (* A double-commit attempt: proposal A to the lower replicas, the
       conflicting proposal B to the upper ones.  For the attack to pay
       off both subsets must reach a prepare quorum, and 2 * 2f > n - 1
       forces them to overlap — so the pivot replica receives both copies,
       which is exactly the evidence the cores count
       ({!Rdb_consensus.Pbft_replica.equivocations_detected}).  Safety
       never depends on detection: digest-keyed quorums split the votes
       and quorum intersection lets at most one branch commit. *)
    let pivot = n / 2 in
    Net.set_interpose nw ~src:node (fun ~dst m ->
        match m with
        | To_replica (inst, pm) -> (
          match equivocate_msg pm with
          | None -> [ m ]
          | Some forged ->
            if dst < pivot then [ m ]
            else if dst = pivot then [ m; To_replica (inst, forged) ]
            else [ To_replica (inst, forged) ])
        | _ -> [ m ])
  | Nemesis.Corrupting_mac rate ->
    (* Everything the liar authenticates is suspect: protocol votes AND its
       replies to clients.  Forged replies are what breaks Zyzzyva's fast
       path — the client needs all n matching spec replies, and one
       persistent liar means it never gets them (the paper's Fig. 12
       collapse); PBFT's f+1 reply quorum shrugs the same attack off. *)
    Net.set_interpose nw ~src:node (fun ~dst:_ m ->
        match m with
        | (To_replica _ | Replies _ | Cert_acks _) when Rng.float t.rng < rate ->
          [ Tampered { kind = Forged_mac; inner = m } ]
        | _ -> [ m ])
  | Nemesis.Corrupting_digest rate ->
    Net.set_interpose nw ~src:node (fun ~dst:_ m ->
        match m with
        | To_replica (_, (Msg.Pre_prepare _ | Msg.Order_request _ | Msg.Hs_proposal _))
          when Rng.float t.rng < rate ->
          [ Tampered { kind = Corrupted_digest; inner = m } ]
        | _ -> [ m ])

(* The view-change spammer floods fabricated View_change messages on its
   own clock, independent of any protocol state it holds.  Interposition
   cannot inject spontaneously (it only transforms real traffic), so the
   flood is driven by a repeating DES event; a behavior change bumps the
   node's generation counter and the stale loop stops rescheduling. *)
let rec spam_view_changes t ~node ~gen ~period =
  if t.behavior_gen.(node) = gen && not (Net.is_crashed (net t) node) then begin
    t.spam_salt <- t.spam_salt + 1;
    (* Fabricated future views: some land inside the receivers' skew window
       and burn one of the sender's few registration slots, the rest
       overshoot it — every spam copy ends up suppressed one way or the
       other (see {!Rdb_consensus.Pbft_replica.vc_spam_suppressed}). *)
    let new_view = t.max_view + 1 + (t.spam_salt mod 16) in
    let m = Msg.View_change { new_view; last_stable = 0; prepared = []; from = node } in
    let bytes = Msg.wire_size ~sig_bytes:(Signer.signature_size t.p.Params.replica_scheme) m in
    for dst = 0 to t.p.Params.n - 1 do
      if dst <> node then Net.send (net t) ~src:node ~dst ~bytes (To_replica (0, m))
    done;
    ignore (Sim.schedule t.sim ~after:period (fun () -> spam_view_changes t ~node ~gen ~period))
  end

let set_behavior t ~node b =
  t.behavior_gen.(node) <- t.behavior_gen.(node) + 1;
  t.behaviors.(node) <- b;
  install_behavior t ~node b;
  match b with
  | Nemesis.Spamming_view_changes period ->
    spam_view_changes t ~node ~gen:t.behavior_gen.(node) ~period
  | _ -> ()

(* The narrow capability record {!Nemesis} drives faults through — built on
   demand so injections always observe the current primary. *)
let driver t =
  let nw = net t in
  {
    Nemesis.sim = t.sim;
    current_primary = (fun () -> current_primary t);
    current_instance_primary = (fun i -> current_instance_primary t i);
    crash =
      (fun i ->
        (* Kill any in-flight state-transfer retry loop along with the host. *)
        t.hosts.(i).st_outstanding <- false;
        Net.crash nw i);
    recover =
      (fun i ->
        Net.recover nw i;
        (* The rejoining replica's pipeline state is whatever survived the
           crash (its full in-memory state in the DES model, the reopened
           durable store in a real restart): ask the cluster for everything
           newer instead of waiting out per-message retransmission. *)
        let h = t.hosts.(i) in
        h.st_outstanding <- false;
        request_state_transfer t h);
    partition = (fun ~name a b -> Net.partition nw ~name a b);
    heal = (fun ~name -> Net.heal nw ~name);
    set_loss = (fun r -> Net.set_loss nw r);
    set_duplication = (fun r -> Net.set_duplication nw r);
    set_extra_jitter = Net.set_extra_jitter nw;
    set_behavior = (fun ~node b -> set_behavior t ~node b);
    note =
      (fun f ->
        obs_instant t ("fault: " ^ Nemesis.describe f);
        match f with
        | Nemesis.Crash_primary | Nemesis.Crash_instance_primary _ -> mark_primary_crash t
        | Nemesis.Crash i when i = current_primary t -> mark_primary_crash t
        | _ -> ());
  }

let inject t fault = Nemesis.apply (driver t) fault

(* The breakdown rows in pipeline order (per role), so the printed table
   reads top to bottom the way a transaction flows.  The execute slots come
   from the configuration — the classic "execute" row, or "exec-sched" plus
   one "execute-i" row per lane — rather than a positional assumption, so
   the table keeps its shape as E changes. *)
let obs_touch_rows (p : Params.t) obs =
  let exec_rows =
    let lanes = Params.exec_lanes p in
    if lanes > 0 then
      "exec-sched" :: List.init lanes (fun i -> Stage_name.make ~family:"execute" ~index:i)
    else [ "execute" ]
  in
  List.iter
    (fun role ->
      List.iter
        (fun stage -> Breakdown.touch obs.bd (stage ^ "/" ^ role))
        ([ "input-client"; "input-replica"; "batch"; "worker" ]
        @ exec_rows
        @ [ "output"; "checkpoint"; "cpu" ]))
    [ "primary"; "backup" ]

let make_obs (p : Params.t) sim =
  if not (Params.obs_enabled p) then None
  else begin
    let o =
      {
        trace = Trace.create ~max_events:p.Params.trace_max_events sim;
        bd = Breakdown.create ();
        span_batch = Stats.create ();
        span_consensus = Stats.create ();
        span_execute = Stats.create ();
        span_reply = Stats.create ();
        marks = Hashtbl.create 4096;
        series = None;
      }
    in
    obs_touch_rows p o;
    Some o
  end

(* The periodic sampler: reads queue depths, occupancy and counters — never
   mutates cluster state or draws randomness, so installing it does not
   change the modelled system (see test_obs's tracing-neutrality check). *)
let install_series t (o : obs) =
  let p = t.p in
  let h0 = t.hosts.(primary_id) in
  let backup = t.hosts.(min 1 (p.Params.n - 1)) in
  let columns =
    [ "primary_pending"; "primary_batch_q"; "primary_worker_q"; "primary_exec_q";
      "primary_output_q"; "primary_cpu_q"; "primary_cpu_running"; "backup_worker_q";
      "view"; "completed_txns"; "msgs_dropped"; "retransmissions"; "rejected_forgeries" ]
  in
  let sample () =
    let nw = net t in
    let v =
      [|
        float_of_int (Queue.length h0.pending);
        float_of_int (match h0.batch_stage with Some s -> Stage.queue_length s | None -> 0);
        float_of_int (Stage.queue_length h0.worker);
        (* Work queued at the execute boundary: the single execute-thread's
           queue on the classic pipeline; under parallel execution, blocks
           waiting for the lanes plus everything queued on the dispatcher
           and the lanes themselves. *)
        float_of_int
          ((match h0.exec_stage with Some s -> Stage.queue_length s | None -> 0)
          + (match h0.exec_sched_stage with Some s -> Stage.queue_length s | None -> 0)
          + Array.fold_left (fun a s -> a + Stage.queue_length s) 0 h0.exec_lanes
          + Queue.length h0.exec_queue);
        float_of_int (Stage.queue_length h0.output);
        float_of_int (Cpu.queue_length h0.cpu);
        float_of_int (Cpu.running h0.cpu);
        float_of_int (Stage.queue_length backup.worker);
        float_of_int t.max_view;
        float_of_int t.total_completed;
        float_of_int (Net.messages_dropped nw);
        float_of_int t.retransmissions;
        float_of_int t.rejected_forgeries;
      |]
    in
    Trace.counter o.trace ~pid:primary_id ~name:"primary queues"
      ~series:
        [ ("pending", v.(0)); ("batch", v.(1)); ("worker", v.(2)); ("execute", v.(3));
          ("output", v.(4)); ("cpu", v.(5)) ];
    Trace.counter o.trace ~pid:primary_id ~name:"progress"
      ~series:[ ("completed", v.(9)); ("view", v.(8)); ("dropped", v.(10)) ];
    v
  in
  let horizon = p.Params.warmup + p.Params.measure in
  let capacity = max 16 ((horizon / max 1 p.Params.trace_interval) + 4) in
  let s = Series.create t.sim ~interval:p.Params.trace_interval ~capacity ~columns ~sample in
  Series.start s;
  o.series <- Some s

(* Fresh durable roots per cluster, so two runs in one process never reopen
   (and replay) each other's stores.  Atomic: the fault-campaign harness
   creates clusters from several domains at once. *)
let data_root_counter = Atomic.make 0

let fresh_data_root () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "rdb-cluster-%d-%d" (Unix.getpid ()) (1 + Atomic.fetch_and_add data_root_counter 1))

let create (p : Params.t) =
  Params.validate p;
  let sim = Sim.create () in
  let rng = Rng.create p.Params.seed in
  let cfg = Config.make ~checkpoint_interval:(Params.checkpoint_interval p) ~n:p.Params.n () in
  let t =
    {
      p;
      sim;
      rng;
      cfg;
      net = None;
      hosts = [||];
      client_nodes = Array.init p.Params.client_machines (fun i -> p.Params.n + i);
      client_rr = 0;
      inst_views = Array.make p.Params.instances 0;
      submit_rr = 0;
      submit_time = Hashtbl.create 4096;
      batches = Hashtbl.create 4096;
      next_txn = 0;
      proposed_batches = 0;
      completed_batches = 0;
      retrans_enabled = p.Params.client_timeout > 0;
      client_view = 0;
      max_view = 0;
      retransmissions = 0;
      duplicate_completions = 0;
      primary_crash_at = None;
      crash_view = 0;
      recovered_at = None;
      behaviors = Array.make p.Params.n Nemesis.Honest;
      behavior_gen = Array.make p.Params.n 0;
      rejected_forgeries = 0;
      spam_salt = 0;
      state_transfers = 0;
      st_first_request = None;
      st_caught_up = None;
      data_root =
        (if p.Params.durable then
           Some (match p.Params.data_dir with Some d -> d | None -> fresh_data_root ())
         else None);
      footprint_of = lazy (make_footprint_fn p);
      obs = make_obs p sim;
      latencies = Stats.create ();
      on_complete = None;
      measuring = false;
      completed_txns = 0;
      total_completed = 0;
      completed_ops = 0;
      fast_txns = 0;
      cert_txns = 0;
      blocks_at_start = 0;
    }
  in
  let hosts = Array.init p.Params.n (fun id -> make_host t ~id) in
  let t = { t with hosts } in
  let deliver ~dst ~src payload =
    if dst < p.Params.n then deliver_replica t t.hosts.(dst) ~src payload
    else deliver_client t payload
  in
  let net =
    Net.create sim
      ~nodes:(p.Params.n + p.Params.client_machines)
      ~bandwidth_gbps:p.Params.bandwidth_gbps ~latency:p.Params.latency ~jitter:p.Params.jitter
      ~rng:(Rng.split rng) ~deliver ()
  in
  t.net <- Some net;
  if p.Params.loss_rate > 0.0 then Net.set_loss net p.Params.loss_rate;
  if p.Params.duplication_rate > 0.0 then Net.set_duplication net p.Params.duplication_rate;
  if p.Params.extra_jitter > 0 then Net.set_extra_jitter net p.Params.extra_jitter;
  (* Crash the chosen backups before traffic starts (Fig. 17). *)
  for i = 1 to p.Params.crashed_backups do
    Net.crash net (p.Params.n - i)
  done;
  Nemesis.install (driver t) p.Params.nemesis;
  (match t.obs with Some o -> install_series t o | None -> ());
  t

(* Seed the closed loop: every client submits one transaction, staggered
   over the first 50 ms so the initial burst does not arrive as one wall. *)
let start t =
  let p = t.p in
  let group = max 1 (min p.Params.batch_size 1000) in
  let remaining = ref p.Params.clients in
  let stagger = Sim.ms 50.0 in
  let groups = (p.Params.clients + group - 1) / group in
  let i = ref 0 in
  while !remaining > 0 do
    let k = min group !remaining in
    remaining := !remaining - k;
    let at = !i * stagger / max 1 groups in
    incr i;
    ignore (Sim.schedule_at t.sim ~at (fun () -> submit_group t (fresh_txns t k)))
  done

type snapshot = {
  snap_time : Sim.time;
  stage_occupied : (string * int) list array;  (** per host *)
  cpu_busy : int array;
  msgs : int;
  bytes : int;
  blocks : int;
}

let stages_of (h : host) =
  [ h.input_client; h.input_replica; h.output; h.worker; h.checkpoint_stage ]
  @ Array.to_list h.extra_workers
  @ (match h.batch_stage with Some s -> [ s ] | None -> [])
  @ (match h.exec_stage with Some s -> [ s ] | None -> [])
  @ (match h.exec_sched_stage with Some s -> [ s ] | None -> [])
  @ Array.to_list h.exec_lanes

let snapshot t =
  {
    snap_time = Sim.now t.sim;
    stage_occupied =
      Array.map (fun h -> List.map (fun s -> (Stage.name s, Stage.occupied_ns s)) (stages_of h)) t.hosts;
    cpu_busy = Array.map (fun h -> Cpu.busy_ns h.cpu) t.hosts;
    msgs = Net.messages_sent (net t);
    bytes = Net.bytes_sent (net t);
    blocks = Ledger.length t.hosts.(0).ledger;
  }

let sim t = t.sim

let params t = t.p

(* Hand the closed loop to an external owner (the shard deployment): on
   every batch completion the fresh transaction ids go to [sink] instead of
   being resubmitted here.  The sink decides where the replacement
   transactions go — usually back via {!submit_fresh}, sometimes into a
   cross-shard protocol first. *)
let set_completion_sink t sink = t.on_complete <- Some sink

(* Submit [k] brand-new transactions through the normal client path:
   exactly the replacement the closed loop would have made, so a sink that
   immediately calls [submit_fresh t k] reproduces the classic loop
   bit-for-bit. *)
let submit_fresh t k = if k > 0 then submit_group t (fresh_txns t k)

(* The id the next fresh transaction will get: ids are handed out
   sequentially, so a caller about to [submit_fresh t 1] knows the new
   transaction's id in advance (the shard deployment tracks its 2PC
   helper transactions this way). *)
let next_txn t = t.next_txn

let set_measuring t b = t.measuring <- b

(* ---- fault observability ---------------------------------------------------- *)

let current_view t = t.max_view

(* Highest installed view per consensus instance, observed cluster-wide
   (index = instance id; a single-element array for classic deployments). *)
let instance_views t =
  Array.init t.p.Params.instances (fun i ->
      if t.p.Params.instances = 1 then t.max_view else instance_view t i)

let retransmissions t = t.retransmissions

let duplicate_completions t = t.duplicate_completions

let total_completed t = t.total_completed

let verify_cache_stats t =
  Array.fold_left
    (fun (h, m) host ->
      ( h + Vcache.hits host.vcache + Vcache.hits host.dcache,
        m + Vcache.misses host.vcache + Vcache.misses host.dcache ))
    (0, 0) t.hosts

let time_to_recovery t =
  match (t.primary_crash_at, t.recovered_at) with
  | Some c, Some r -> Some (Sim.to_seconds (r - c))
  | _ -> None

let state_transfers t = t.state_transfers

(* First State_request broadcast to first successful segment install: how
   long the first laggard took to rejoin via state transfer. *)
let time_to_catch_up t =
  match (t.st_first_request, t.st_caught_up) with
  | Some a, Some b -> Some (Sim.to_seconds (b - a))
  | _ -> None

(* Ledger height of the healthiest replica minus the given replica's: the
   gap a state transfer would have to cover right now. *)
let ledger_gap t i =
  let best = Array.fold_left (fun acc h -> max acc (Ledger.next_seq h.ledger)) 0 t.hosts in
  best - Ledger.next_seq t.hosts.(i).ledger

let ledger_height t i = Ledger.next_seq t.hosts.(i).ledger - 1

(* Byzantine-defense evidence accumulated inside the consensus cores,
   summed cluster-wide. *)
let host_defenses t =
  Array.fold_left
    (fun (e, v) h ->
      let d = Core.defenses h.core in
      (e + d.Core.equivocations, v + d.Core.vc_suppressed))
    (0, 0) t.hosts

let rejected_forgeries t = t.rejected_forgeries

let equivocations_detected t = fst (host_defenses t)

let vc_spam_suppressed t = snd (host_defenses t)

let suppressed_sends t = Net.messages_suppressed (net t)

let fault_report t =
  let nw = net t in
  let equivocations_detected, vc_spam_suppressed = host_defenses t in
  {
    Metrics.msgs_dropped = Net.messages_dropped nw;
    msgs_duplicated = Net.messages_duplicated nw;
    retransmissions = t.retransmissions;
    view_changes = Array.fold_left (fun acc h -> max acc (core_view h)) 0 t.hosts;
    time_to_recovery_s = time_to_recovery t;
    state_transfers = t.state_transfers;
    time_to_catch_up_s = time_to_catch_up t;
    rejected_forgeries = t.rejected_forgeries;
    equivocations_detected;
    vc_spam_suppressed;
  }

(* Agreement across replicas: every retained chain verifies, and no two
   replicas hold different batches at the same sequence number.  (Quorum
   intersection makes divergence impossible in the absence of equivocation;
   this checks the whole simulation kept that promise under faults.) *)
let check_safety t =
  let ok = ref (Ok ()) in
  let fail fmt = Printf.ksprintf (fun s -> if !ok = Ok () then ok := Error s) fmt in
  let accept ~seq:_ ~digest:_ _ = true in
  let seen : (int, string * int) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun h ->
      (match Ledger.verify ~check_certificate:accept h.ledger with
      | Ok () -> ()
      | Error e -> fail "replica %d: ledger failed verification: %s" h.id e);
      Ledger.iter_retained h.ledger (fun (b : Block.t) ->
          match Hashtbl.find_opt seen b.Block.seq with
          | None -> Hashtbl.add seen b.Block.seq (b.Block.digest, h.id)
          | Some (d, other) ->
            if not (String.equal d b.Block.digest) then
              fail "divergence at seq %d: replica %d committed %S, replica %d committed %S"
                b.Block.seq other d h.id b.Block.digest))
    t.hosts;
  !ok

(* Diagnostic snapshot used while developing and by verbose CLI modes. *)
let debug_dump t =
  let h0 = t.hosts.(0) in
  let last_exec = core_last_exec h0 in
  let pend_inst = Core.pending_slots h0.core in
  Printf.printf
    "t=%.2fs completed=%d next_txn=%d exec0=%d inst0=%d pending=%d workerq=%d batchq=%d tracks=%d\n%!"
    (Sim.to_seconds (Sim.now t.sim))
    t.completed_txns t.next_txn last_exec pend_inst (Queue.length h0.pending)
    (Stage.queue_length h0.worker)
    (match h0.batch_stage with Some s -> Stage.queue_length s | None -> -1)
    (Hashtbl.length t.batches)

(* ---- observability output ---------------------------------------------------- *)

let trace_json t =
  match t.obs with None -> None | Some o -> Some (Trace.to_string o.trace)

let series_csv t =
  match t.obs with
  | None -> None
  | Some o -> (match o.series with None -> None | Some s -> Some (Series.to_csv_string s))

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Dump the requested observability files, stop the sampler (so a caller
   that keeps driving the clock does not keep sampling into the ring), and
   package breakdown + spans for {!Metrics}. *)
let obs_finish t =
  match t.obs with
  | None -> (None, [])
  | Some o ->
    (match o.series with Some s -> Series.stop s | None -> ());
    (match t.p.Params.trace_out with
    | Some path -> write_file path (Trace.to_string o.trace)
    | None -> ());
    (match (t.p.Params.trace_csv, o.series) with
    | Some path, Some s -> write_file path (Series.to_csv_string s)
    | _ -> ());
    ( Some o.bd,
      [
        { Metrics.phase = "batch"; time = o.span_batch };
        { Metrics.phase = "consensus"; time = o.span_consensus };
        { Metrics.phase = "execute"; time = o.span_execute };
        { Metrics.phase = "reply"; time = o.span_reply };
      ] )

type completion = Completed | Event_budget_exhausted

(* Metrics over the window between two snapshots: counters are deltas, the
   accumulating fields (latencies, completed counts) are whatever the
   [measuring] flag gated in.  Extracted from [measure_bounded] so a shard
   deployment — which drives warmup/measure across S clusters itself — can
   reuse the exact same accounting. *)
let metrics_between (t : t) (s0 : snapshot) (s1 : snapshot) : Metrics.t =
  let p = t.p in
  let window = Sim.to_seconds (s1.snap_time - s0.snap_time) in
  let replicas =
    Array.to_list
      (Array.mapi
         (fun i h ->
           let occ0 = s0.stage_occupied.(i) and occ1 = s1.stage_occupied.(i) in
           let stages =
             List.map2
               (fun (name, o0) (_, o1) ->
                 let workers =
                   List.fold_left
                     (fun acc s -> if Stage.name s = name then Stage.workers s else acc)
                     1 (stages_of h)
                 in
                 {
                   Metrics.stage = name;
                   percent =
                     (if window <= 0.0 then 0.0
                      else
                        100.0 *. float_of_int (o1 - o0)
                        /. (window *. 1e9 *. float_of_int workers));
                 })
               occ0 occ1
           in
           {
             Metrics.replica = i;
             is_primary = i = current_primary t;
             stages;
             cpu_utilization =
               (if window <= 0.0 then 0.0
                else
                  float_of_int (s1.cpu_busy.(i) - s0.cpu_busy.(i))
                  /. (window *. 1e9 *. float_of_int p.Params.cores));
           })
         t.hosts)
  in
  let breakdown, spans = obs_finish t in
  {
    Metrics.throughput_tps =
      (if window > 0.0 then float_of_int t.completed_txns /. window else 0.0);
    ops_per_second = (if window > 0.0 then float_of_int t.completed_ops /. window else 0.0);
    latency = t.latencies;
    completed_txns = t.completed_txns;
    fast_path_txns = t.fast_txns;
    cert_path_txns = t.cert_txns;
    replicas;
    messages_sent = s1.msgs - s0.msgs;
    bytes_sent = s1.bytes - s0.bytes;
    ledger_blocks = s1.blocks - s0.blocks;
    faults = fault_report t;
    breakdown;
    spans;
  }

let measure_bounded ?max_events (t : t) : Metrics.t * completion =
  let p = t.p in
  start t;
  let remaining = ref max_events in
  let run_to limit =
    match !remaining with
    | None ->
      Sim.run ~until:limit t.sim;
      true
    | Some budget -> (
      match Sim.run_bounded ~until:limit ~max_events:budget t.sim with
      | `Completed n ->
        remaining := Some (budget - n);
        true
      | `Exhausted ->
        remaining := Some 0;
        false)
  in
  let warm_ok = run_to p.Params.warmup in
  let s0 = snapshot t in
  t.measuring <- true;
  let meas_ok = warm_ok && run_to (p.Params.warmup + p.Params.measure) in
  t.measuring <- false;
  let s1 = snapshot t in
  let metrics = metrics_between t s0 s1 in
  (metrics, if meas_ok then Completed else Event_budget_exhausted)

let measure (t : t) : Metrics.t = fst (measure_bounded t)

(* Release OS resources held by durable backends (WAL + B-tree file
   handles); a no-op on in-memory deployments.  The fault campaign runs
   hundreds of clusters per process, so leaked descriptors would otherwise
   accumulate. *)
let close t = Array.iter (fun h -> Ledger.close h.ledger) t.hosts

let run_bounded ?max_events (p : Params.t) = measure_bounded ?max_events (create p)

let run (p : Params.t) : Metrics.t = measure (create p)

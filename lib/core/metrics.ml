(** Results of one simulated cluster run. *)

module Stats = Rdb_des.Stats
module Breakdown = Rdb_obs.Breakdown

type stage_saturation = { stage : string; percent : float }
(** Occupied-time percentage of one pipeline stage over the measured
    window (100 = every worker of the stage busy the whole window). *)

(** Fault-injection accounting, over the whole run (not just the measured
    window): how hostile the network was and how the cluster coped. *)
type faults = {
  msgs_dropped : int;  (** by crash + loss + partition, at the network *)
  msgs_duplicated : int;
  retransmissions : int;  (** client request re-sends (with backoff) *)
  view_changes : int;  (** completed view changes (final view number) *)
  time_to_recovery_s : float option;
      (** primary crash to the first client completion afterwards; [None]
          when no primary crash was injected or nothing completed after *)
  state_transfers : int;
      (** checkpoint-driven state transfers that installed a chain segment
          (a recovered or horizon-lagging replica catching up in O(gap)) *)
  time_to_catch_up_s : float option;
      (** first State_request broadcast to the first successful segment
          install; [None] when no state transfer was needed *)
  rejected_forgeries : int;
      (** messages whose MAC or digest failed verification at a replica and
          were dropped before reaching a consensus core (Byzantine
          [Corrupt_mac] / [Corrupt_digest] nemesis strategies); a rejected
          forgery is never admitted to the verify-sharing cache *)
  equivocations_detected : int;
      (** conflicting proposals observed for an occupied slot — two
          pre-prepares (PBFT) or order-requests (Zyzzyva) with different
          digests for the same (view, seq) — recorded as evidence against
          the equivocating primary and dropped *)
  vc_spam_suppressed : int;
      (** view-change messages discarded by the per-sender rate limit
          before they could pool towards a bogus view-change quorum
          (Byzantine [View_change_spam] nemesis strategy) *)
}

(** The all-zero fault record reported by a healthy, unfaulted run. *)
let no_faults =
  {
    msgs_dropped = 0;
    msgs_duplicated = 0;
    retransmissions = 0;
    view_changes = 0;
    time_to_recovery_s = None;
    state_transfers = 0;
    time_to_catch_up_s = None;
    rejected_forgeries = 0;
    equivocations_detected = 0;
    vc_spam_suppressed = 0;
  }

type replica_report = {
  replica : int;
  is_primary : bool;  (** primary of the {e final} view *)
  stages : stage_saturation list;
  cpu_utilization : float;  (** fraction of core capacity used, 0..1 *)
}
(** Per-replica saturation summary for the measured window. *)

type span_phase = {
  phase : string;  (** ["batch"], ["consensus"], ["execute"] or ["reply"] *)
  time : Stats.t;  (** seconds spent in the phase, one sample per txn *)
}
(** One phase of the per-transaction span: client-visible latency is split
    into consecutive, non-overlapping phases that telescope — the phase
    means sum to the mean end-to-end latency (tested in [test_obs]). *)

type t = {
  throughput_tps : float;  (** transactions completed per second, measured window *)
  ops_per_second : float;  (** operations completed per second *)
  latency : Stats.t;  (** seconds, per transaction *)
  completed_txns : int;
  fast_path_txns : int;  (** Zyzzyva: completed with 3f+1 matching replies *)
  cert_path_txns : int;  (** Zyzzyva: completed through a commit certificate *)
  replicas : replica_report list;
  messages_sent : int;
  bytes_sent : int;
  ledger_blocks : int;  (** blocks appended at replica 0 during the run *)
  faults : faults;
  breakdown : Breakdown.t option;
      (** per-stage queue/service latency split; [Some] only when the run
          was traced ({!Params.obs_enabled}) *)
  spans : span_phase list;
      (** per-transaction phase latencies; empty unless the run was traced *)
}
(** Everything a bench figure needs from one run.  [breakdown] and [spans]
    are populated only when tracing is on; all other fields are identical
    with tracing on or off (tested in [test_obs]). *)

(** Mean end-to-end transaction latency in seconds. *)
let latency_avg t = Stats.mean t.latency

type outcome_facts = {
  of_completed : int;  (** transactions completed in the measured window *)
  of_throughput_tps : float;
  of_view_changes : int;
  of_recovery_s : float option;  (** {!faults.time_to_recovery_s} *)
  of_catch_up_s : float option;  (** {!faults.time_to_catch_up_s} *)
  of_perturbed : bool;
      (** whether the run shows any fault evidence at all (drops,
          duplicates, retransmissions, view changes, state transfers,
          byzantine counters): [false] means the run is observationally
          fault-free *)
}
(** The compact projection a fault-campaign classifier consumes: progress,
    recovery and perturbation evidence, without the full per-replica
    detail.  See [Rdb_campaign.Classify]. *)

let outcome_facts t =
  let f = t.faults in
  {
    of_completed = t.completed_txns;
    of_throughput_tps = t.throughput_tps;
    of_view_changes = f.view_changes;
    of_recovery_s = f.time_to_recovery_s;
    of_catch_up_s = f.time_to_catch_up_s;
    of_perturbed = f <> no_faults;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>throughput: %.0f txn/s (%.0f op/s)@ latency: avg %.4fs p50 %.4fs p99 %.4fs@ completed: %d (fast %d, cert %d)@ network: %d msgs, %.1f MB@ blocks: %d"
    t.throughput_tps t.ops_per_second (Stats.mean t.latency)
    (Stats.percentile t.latency 50.0)
    (Stats.percentile t.latency 99.0)
    t.completed_txns t.fast_path_txns t.cert_path_txns t.messages_sent
    (float_of_int t.bytes_sent /. 1e6)
    t.ledger_blocks;
  if t.faults <> no_faults then
    Format.fprintf ppf
      "@ faults: %d dropped, %d duplicated, %d retransmissions, %d view changes%s"
      t.faults.msgs_dropped t.faults.msgs_duplicated t.faults.retransmissions
      t.faults.view_changes
      (match t.faults.time_to_recovery_s with
       | Some s -> Printf.sprintf ", recovered in %.3fs" s
       | None -> "");
  if t.faults.state_transfers > 0 then
    Format.fprintf ppf "@ state transfers: %d%s" t.faults.state_transfers
      (match t.faults.time_to_catch_up_s with
       | Some s -> Printf.sprintf ", caught up in %.3fs" s
       | None -> "");
  if
    t.faults.rejected_forgeries > 0
    || t.faults.equivocations_detected > 0
    || t.faults.vc_spam_suppressed > 0
  then
    Format.fprintf ppf
      "@ byzantine: %d forgeries rejected, %d equivocations detected, %d view-change spam \
       suppressed"
      t.faults.rejected_forgeries t.faults.equivocations_detected t.faults.vc_spam_suppressed;
  Format.fprintf ppf "@]"

(** The bottleneck-shift report for this run ({!Rdb_obs.Bottleneck}): the
    primary replica's per-stage occupancies ranked by saturation, with
    queue-vs-service evidence from the breakdown when the run was traced.
    [window_s] is the measurement window the occupancies were taken over
    (pass [Rdb_des.Sim.to_seconds p.measure]). *)
let bottleneck_report ~window_s t =
  let stages =
    match List.find_opt (fun r -> r.is_primary) t.replicas with
    | Some r -> List.map (fun s -> (s.stage, s.percent)) r.stages
    | None -> []
  in
  Rdb_obs.Bottleneck.analyze ?breakdown:t.breakdown ~window_s stages

(** Per-replica stage saturation and CPU utilization table. *)
let pp_saturation ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "@[replica %d%s cpu %.0f%%:" r.replica
        (if r.is_primary then " (primary)" else "")
        (100.0 *. r.cpu_utilization);
      List.iter (fun s -> Format.fprintf ppf " %s=%.0f%%" s.stage s.percent) r.stages;
      Format.fprintf ppf "@]@ ")
    t.replicas

(** Per-stage latency breakdown table (time-in-queue vs time-in-service per
    completed job, milliseconds).  Prints nothing when the run was not
    traced. *)
let pp_breakdown ppf t =
  match t.breakdown with
  | None -> ()
  | Some b ->
    Format.fprintf ppf "@[<v>%-24s %10s %12s %12s %12s %12s@ " "stage" "jobs"
      "q mean ms" "q p99 ms" "svc mean ms" "svc p99 ms";
    List.iter
      (fun (r : Breakdown.row) ->
        if Breakdown.jobs r > 0 then
          Format.fprintf ppf "%-24s %10d %12.4f %12.4f %12.4f %12.4f@ " r.label
            (Breakdown.jobs r)
            (1e3 *. Stats.mean r.queue)
            (1e3 *. Stats.percentile r.queue 99.0)
            (1e3 *. Stats.mean r.service)
            (1e3 *. Stats.percentile r.service 99.0))
      (Breakdown.rows b);
    Format.fprintf ppf "@]"

(** Per-transaction span phases (milliseconds): where client-visible latency
    is spent, phase means summing to the end-to-end mean.  Prints nothing
    when the run was not traced. *)
let pp_spans ppf t =
  match t.spans with
  | [] -> ()
  | spans ->
    Format.fprintf ppf "@[<v>%-12s %10s %12s %12s %12s@ " "phase" "txns"
      "mean ms" "p50 ms" "p99 ms";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-12s %10d %12.4f %12.4f %12.4f@ " s.phase
          (Stats.count s.time)
          (1e3 *. Stats.mean s.time)
          (1e3 *. Stats.percentile s.time 50.0)
          (1e3 *. Stats.percentile s.time 99.0))
      spans;
    Format.fprintf ppf "%-12s %10d %12.4f %12.4f %12.4f@ " "end-to-end"
      (Stats.count t.latency)
      (1e3 *. Stats.mean t.latency)
      (1e3 *. Stats.percentile t.latency 50.0)
      (1e3 *. Stats.percentile t.latency 99.0);
    Format.fprintf ppf "@]"

(** Declarative fault injection ("nemesis") for the simulated cluster.

    A schedule is a list of [(time, fault)] entries applied against the
    running cluster's discrete-event clock — crash the primary at 200 ms,
    cut {0,1} off from {2,3} for 100 ms, open a 2% loss window, and so on.
    Schedules live in {!Params.t} (field [nemesis]), so any experiment can
    be made adversarial without code changes; {!Cluster.create} installs
    them automatically.

    Times are absolute simulation time (warmup starts at 0), in
    nanoseconds; {!at_ms} and the [*_window] helpers cover the common
    cases. *)

(** What a byzantine replica is currently doing.  Each replica has exactly
    one behavior at a time — installing a new one replaces the old, and
    [Honest] restores normal operation.  Behaviors are enacted by an
    adversarial interposition layer on the replica's {e outbound} network
    links ([Rdb_net.Net.set_interpose]), so the consensus cores themselves
    run unmodified and are attacked from outside. *)
type behavior =
  | Honest  (** no interference (the initial state of every replica) *)
  | Equivocating
      (** when proposing, send conflicting proposals for the same sequence
          number to disjoint replica subsets (different batch digests per
          subset) *)
  | Corrupting_digest of float
      (** tamper the batch digest of outbound proposals at the given rate:
          the authenticator still verifies but the content hash does not *)
  | Corrupting_mac of float
      (** forge the MAC/signature of outbound protocol messages at the
          given rate: receivers pay full verification cost, then reject *)
  | Silent_towards of int list
      (** suppress every message towards the listed peers while speaking
          normally to everyone else — distinct from a crash, which is total
          and detectable *)
  | Spamming_view_changes of Rdb_des.Sim.time
      (** broadcast a bogus view-change message every [period]
          nanoseconds, trying to stampede the cluster into needless view
          changes *)

type fault =
  | Crash_primary
      (** crash whatever replica is primary at the scheduled instant *)
  | Crash_instance_primary of int
      (** multi-primary deployments ({!Params.t}[.instances] > 1): crash the
          replica currently leading the given consensus instance (taken
          modulo the instance count), exercising that instance's view change
          while its siblings keep ordering *)
  | Crash of int  (** crash one replica (fail-stop) *)
  | Recover of int
  | Partition of { name : string; side_a : int list; side_b : int list }
      (** cut all traffic between the two (disjoint) replica sets *)
  | Heal of string  (** remove the named partition *)
  | Loss of float  (** set the global per-message drop probability *)
  | Duplication of float  (** set the global duplication probability *)
  | Extra_jitter of Rdb_des.Sim.time
      (** set the additional reordering jitter on every link *)
  | Equivocate of int  (** make the replica {!behavior.Equivocating} *)
  | Corrupt_digest of { node : int; rate : float }
      (** make the replica corrupt outbound proposal digests at [rate]
          ({!behavior.Corrupting_digest}) *)
  | Corrupt_mac of { node : int; rate : float }
      (** make the replica forge outbound MACs at [rate]
          ({!behavior.Corrupting_mac}) *)
  | Silence of { node : int; peers : int list }
      (** make the replica drop all its traffic towards [peers]
          ({!behavior.Silent_towards}) *)
  | View_change_spam of { node : int; period : Rdb_des.Sim.time }
      (** make the replica broadcast a bogus view change every [period]
          nanoseconds ({!behavior.Spamming_view_changes}) *)
  | Restore_honest of int
      (** end the replica's byzantine behavior ({!behavior.Honest}) *)

type entry = { at : Rdb_des.Sim.time; fault : fault }

type schedule = entry list

(** {2 Schedule combinators}

    Schedules are plain lists, so they compose by concatenation:
    [crash_primary_at (Sim.ms 200.0) @ loss_window ~from_:(Sim.ms 300.0)
    ~until:(Sim.ms 500.0) 0.02] crashes the primary {e and} opens a loss
    window, in one schedule.  Entries need not be sorted — each is scheduled
    independently on the DES clock. *)

val at : Rdb_des.Sim.time -> fault -> entry
(** One entry at an absolute simulation time (nanoseconds). *)

val at_ms : float -> fault -> entry
(** {!at} with the time given in milliseconds. *)

val loss_window : from_:Rdb_des.Sim.time -> until:Rdb_des.Sim.time -> float -> schedule
(** Loss at the given rate between [from_] and [until], then back to 0.
    Raises [Invalid_argument] when the window ends before it starts. *)

val duplication_window :
  from_:Rdb_des.Sim.time -> until:Rdb_des.Sim.time -> float -> schedule
(** Message duplication at the given rate over the window, then back to 0. *)

val partition_window :
  from_:Rdb_des.Sim.time ->
  until:Rdb_des.Sim.time ->
  name:string ->
  int list ->
  int list ->
  schedule
(** Named partition installed at [from_] and healed at [until].  The name
    lets several overlapping partitions coexist and be healed
    independently. *)

val crash_primary_at : Rdb_des.Sim.time -> schedule
(** Crash whichever replica is primary at that instant (resolved at
    injection time, so it follows view changes that happened before). *)

val crash_instance_primary_at : Rdb_des.Sim.time -> int -> schedule
(** [crash_instance_primary_at time i]: crash the current primary of
    consensus instance [i] (multi-primary deployments; see
    {!fault.Crash_instance_primary}). *)

val equivocate_window : from_:Rdb_des.Sim.time -> until:Rdb_des.Sim.time -> int -> schedule
(** The replica equivocates over the window, then returns to honesty. *)

val corrupt_digest_window :
  from_:Rdb_des.Sim.time -> until:Rdb_des.Sim.time -> int -> float -> schedule
(** The replica corrupts outbound proposal digests at the given rate over
    the window, then returns to honesty. *)

val corrupt_mac_window :
  from_:Rdb_des.Sim.time -> until:Rdb_des.Sim.time -> int -> float -> schedule
(** The replica forges outbound MACs at the given rate over the window,
    then returns to honesty. *)

val silence_window :
  from_:Rdb_des.Sim.time -> until:Rdb_des.Sim.time -> int -> int list -> schedule
(** The replica suppresses all traffic towards the listed peers over the
    window, then returns to honesty. *)

val view_change_spam_window :
  from_:Rdb_des.Sim.time ->
  until:Rdb_des.Sim.time ->
  int ->
  period:Rdb_des.Sim.time ->
  schedule
(** The replica broadcasts a bogus view change every [period] nanoseconds
    over the window, then returns to honesty. *)

val behavior_of_fault : fault -> behavior option
(** The behavior a byzantine fault installs ([None] for network and crash
    faults). *)

val is_byzantine : fault -> bool
(** [true] for the attack strategies ({!fault.Equivocate},
    {!fault.Corrupt_digest}, {!fault.Corrupt_mac}, {!fault.Silence},
    {!fault.View_change_spam}); [false] for {!fault.Restore_honest} and all
    network/crash faults. *)

val attacker_of : fault -> int option
(** The replica a byzantine fault (or restoration) targets. *)

val describe : fault -> string

val pp_fault : Format.formatter -> fault -> unit

val validate : n:int -> schedule -> unit
(** Raises [Invalid_argument] on out-of-range replica ids, overlapping
    partition sides, rates outside [\[0, 1)], negative times, or a schedule
    whose distinct byzantine attackers exceed f = ⌊(n−1)/3⌋ (the bound the
    hardening guarantees cover). *)

(** {2 Random schedule generation}

    One source for randomized fault schedules, shared by the fault-campaign
    harness ([Rdb_campaign]), the qcheck safety properties
    ([test/testkit.ml] wraps these into QCheck generators) and the
    examples.  Every draw comes from the caller's deterministic
    {!Rdb_des.Rng.t}, so a (family, seed) pair names one schedule forever —
    the property campaign reports depend on.  Generated times target
    sub-second runs: faults land inside the first ~450 ms in 20–120 ms
    windows, except {!Gen.family.Heavy_loss}, which deliberately covers
    most of the run. *)

module Gen : sig
  (** A schedule {e family}: a named distribution over schedules, the
      fault axis of a campaign matrix cell. *)
  type family =
    | Fault_free  (** the empty schedule — every cell's throughput twin *)
    | Crashes  (** one fail-stop crash (primary or random backup) *)
    | Partitions  (** one half-vs-half partition window *)
    | Loss  (** one 10% loss window *)
    | Heavy_loss
        (** one 35–55% loss window covering most of the run: the
            liveness-cliff probe (see EXPERIMENTS.md "Fault campaigns") *)
    | Duplication  (** one 20% duplication window *)
    | Byzantine
        (** one attacker window drawn from the five adversarial behaviors
            (single attacker, so always within the f bound) *)
    | Mixed  (** {!random_benign} plus, half the time, an attacker window *)

  val all_families : family list

  val family_name : family -> string
  (** Stable wire name (["none"], ["crash"], ["partition"], ["loss"],
      ["heavy-loss"], ["dup"], ["byzantine"], ["mixed"]) used in campaign
      reports and CLI flags. *)

  val family_of_name : string -> family option

  val generate : family -> n:int -> Rdb_des.Rng.t -> schedule
  (** Draw one schedule of the family for an [n]-replica deployment.  The
      result always passes {!validate} for that [n]. *)

  val random_benign : n:int -> Rdb_des.Rng.t -> schedule
  (** The benign mix thrown at small clusters by the qcheck safety
      properties: optional crash, partition window, loss window,
      duplication window and jitter spike, each present with probability
      1/2. *)

  val random_attack : n:int -> Rdb_des.Rng.t -> schedule
  (** One byzantine attacker window (one replica, one of the five
      strategies, bounded interval, honesty restored after). *)

  val random_schedule : n:int -> Rdb_des.Rng.t -> schedule
  (** {!random_benign} plus, half the time, {!random_attack}: the full
      fault model the cluster-level safety properties run under. *)
end

(** {2 Driving a schedule}

    The cluster exposes itself as a narrow capability record; {!install}
    schedules every entry on the DES clock. *)

type driver = {
  sim : Rdb_des.Sim.t;
  current_primary : unit -> int;
  current_instance_primary : int -> int;
      (** the replica leading one consensus instance right now (instance
          taken modulo the deployment's instance count) *)
  crash : int -> unit;
  recover : int -> unit;
  partition : name:string -> int list -> int list -> unit;
  heal : name:string -> unit;
  set_loss : float -> unit;
  set_duplication : float -> unit;
  set_extra_jitter : Rdb_des.Sim.time -> unit;
  set_behavior : node:int -> behavior -> unit;
      (** install (or with {!behavior.Honest}, remove) a byzantine behavior
          on one replica's outbound links *)
  note : fault -> unit;  (** observation hook, fired as each fault is injected *)
}

val apply : driver -> fault -> unit
(** Inject one fault immediately. *)

val install : driver -> schedule -> unit
(** Schedule every entry of the schedule on [driver.sim]. *)

module Codec = Rdb_consensus.Codec
module Signer = Rdb_crypto.Signer

type t =
  | Request of {
      client : int;
      reply_host : string;
      reply_port : int;
      txn_id : int;
      payload : string;
      signature : string;
    }
  | Consensus of { msg : Rdb_consensus.Message.t; tag : string; attachments : attachment list }
  | Reply of { txn_id : int; from : int; result : string }

and attachment = {
  a_txn_id : int;
  a_client : int;
  a_reply_host : string;
  a_reply_port : int;
  a_payload : string;
}

let w_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

exception Bad of string

type cursor = { data : string; mutable pos : int }

let r_u32 c =
  if c.pos + 4 > String.length c.data then raise (Bad "truncated");
  let v =
    (Char.code c.data.[c.pos] lsl 24)
    lor (Char.code c.data.[c.pos + 1] lsl 16)
    lor (Char.code c.data.[c.pos + 2] lsl 8)
    lor Char.code c.data.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let r_str c =
  let n = r_u32 c in
  if c.pos + n > String.length c.data then raise (Bad "truncated string");
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* All three encoders run through the codec's pooled scratch buffers (§4.8):
   no per-message [Buffer] allocation, and a [Consensus] record appends its
   protocol message in place via [Codec.encode_into] instead of encoding to
   an intermediate string. *)
let encode wire =
  Codec.with_buffer (fun b ->
      (match wire with
      | Request { client; reply_host; reply_port; txn_id; payload; signature } ->
        Buffer.add_char b 'R';
        w_u32 b client;
        w_str b reply_host;
        w_u32 b reply_port;
        w_u32 b txn_id;
        w_str b payload;
        w_str b signature
      | Consensus { msg; tag; attachments } ->
        Buffer.add_char b 'M';
        w_str b tag;
        w_u32 b (List.length attachments);
        List.iter
          (fun a ->
            w_u32 b a.a_txn_id;
            w_u32 b a.a_client;
            w_str b a.a_reply_host;
            w_u32 b a.a_reply_port;
            w_str b a.a_payload)
          attachments;
        Codec.encode_into b msg
      | Reply { txn_id; from; result } ->
        Buffer.add_char b 'Y';
        w_u32 b txn_id;
        w_u32 b from;
        w_str b result);
      Buffer.contents b)

let decode s =
  try
    if String.length s = 0 then Error "empty"
    else begin
      let c = { data = s; pos = 1 } in
      match s.[0] with
      | 'R' ->
        let client = r_u32 c in
        let reply_host = r_str c in
        let reply_port = r_u32 c in
        let txn_id = r_u32 c in
        let payload = r_str c in
        let signature = r_str c in
        if c.pos <> String.length s then Error "trailing bytes"
        else Ok (Request { client; reply_host; reply_port; txn_id; payload; signature })
      | 'M' -> (
        let tag = r_str c in
        let count = r_u32 c in
        if count > 1_000_000 then Error "oversized attachment list"
        else begin
          let attachments =
            List.init count (fun _ ->
                let a_txn_id = r_u32 c in
                let a_client = r_u32 c in
                let a_reply_host = r_str c in
                let a_reply_port = r_u32 c in
                let a_payload = r_str c in
                { a_txn_id; a_client; a_reply_host; a_reply_port; a_payload })
          in
          (* Zero-copy: the protocol message is decoded from its window of
             [s] directly instead of being copied out first. *)
          match Codec.decode_sub s ~pos:c.pos ~len:(String.length s - c.pos) with
          | Ok msg -> Ok (Consensus { msg; tag; attachments })
          | Error e -> Error e
        end)
      | 'Y' ->
        let txn_id = r_u32 c in
        let from = r_u32 c in
        let result = r_str c in
        if c.pos <> String.length s then Error "trailing bytes"
        else Ok (Reply { txn_id; from; result })
      | k -> Error (Printf.sprintf "unknown kind %C" k)
    end
  with Bad reason -> Error reason

let request_auth ~client ~txn_id ~payload = Printf.sprintf "req|%d|%d|%s" client txn_id payload

let sign_request signer ~client ~txn_id ~payload =
  Signer.sign signer (request_auth ~client ~txn_id ~payload)

let verify_request verifier ~client ~txn_id ~payload ~signature =
  Signer.verify verifier (request_auth ~client ~txn_id ~payload) ~signature
